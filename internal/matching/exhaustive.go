package matching

import (
	"context"

	"repro/internal/xmlschema"
)

// Exhaustive is the original system S1: it enumerates every mapping of
// the search space with ∆ ≤ δ. Pruning is admissible only (a partial
// cost already above δ can never shrink because every contribution of
// ∆ is non-negative), so the answer set is provably complete —
// exhaustiveness is what the bounds technique assumes about S1.
//
// All node-pair scores come from the Problem's cost tables, which are
// built from the problem's engine.Scorer — the matcher never invokes a
// string metric itself, so every system sharing the Problem (and every
// Problem sharing a memoized scorer) scores pairs identically.
type Exhaustive struct{}

// Name implements Matcher.
func (Exhaustive) Name() string { return "exhaustive" }

// Match implements Matcher.
func (Exhaustive) Match(p *Problem, delta float64) (*AnswerSet, error) {
	return Exhaustive{}.MatchContext(context.Background(), p, delta)
}

// MatchContext implements Matcher: the enumeration checks ctx
// periodically and returns ctx.Err() when cancelled mid-search.
func (Exhaustive) MatchContext(ctx context.Context, p *Problem, delta float64) (*AnswerSet, error) {
	set, _, err := Exhaustive{}.MatchStatsContext(ctx, p, delta)
	return set, err
}

// Enumerate generates every valid mapping of the personal schema into
// repository schema s with total cost ≤ delta, invoking yield for each.
// Personal elements are assigned in pre-order (ID order), which
// guarantees a parent is assigned before its children.
//
// A non-nil allowed predicate restricts the candidates of personal
// element pid to repository elements rid with allowed(pid, rid) — the
// hook used by the cluster-restricted non-exhaustive matcher. Because
// restriction only removes candidates and never alters costs, any
// restricted run produces a subset of the unrestricted run with
// identical scores.
//
// For a cancellable enumeration use EnumerateContext.
func Enumerate(p *Problem, s *xmlschema.Schema, delta float64, allowed func(pid, rid int) bool, yield func(Mapping, float64)) {
	EnumerateWithStats(p, s, delta, allowed, yield)
}
