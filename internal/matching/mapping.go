// Package matching implements the schema matching model of the
// reproduced paper (following its companion formalization, Smiljanić et
// al., DEXA 2005): a matching problem Q matches a small personal schema
// against a large repository; the search space SS is the set of schema
// mappings, each assigning every personal-schema element to one element
// of a single repository schema while preserving ancestry; mappings are
// ranked by an objective function ∆ (lower is better); the answer set
// at threshold δ contains every mapping with ∆ ≤ δ.
//
// The package provides the mapping and answer-set types shared by all
// matchers, the objective function, and the exhaustive reference system
// S1. Non-exhaustive improvements live in internal/matchers.
package matching

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmlschema"
)

// Mapping assigns each element of the personal schema (indexed by its
// pre-order ID) to one element of a single repository schema.
type Mapping struct {
	// Schema is the repository schema the mapping points into.
	Schema string
	// Targets[i] is the repository element ID assigned to personal
	// element i. len(Targets) equals the personal schema size.
	Targets []int
}

// Key returns a canonical string identity for set operations across
// matchers ("schema:3,7,9").
func (m Mapping) Key() string {
	var b strings.Builder
	b.WriteString(m.Schema)
	b.WriteByte(':')
	for i, t := range m.Targets {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(t))
	}
	return b.String()
}

// Refs expands the mapping into repository element Refs, one per
// personal element in ID order.
func (m Mapping) Refs() []xmlschema.Ref {
	out := make([]xmlschema.Ref, len(m.Targets))
	for i, t := range m.Targets {
		out[i] = xmlschema.Ref{Schema: m.Schema, ID: t}
	}
	return out
}

// Equal reports whether two mappings are identical.
func (m Mapping) Equal(o Mapping) bool {
	if m.Schema != o.Schema || len(m.Targets) != len(o.Targets) {
		return false
	}
	for i := range m.Targets {
		if m.Targets[i] != o.Targets[i] {
			return false
		}
	}
	return true
}

// Answer is one ranked element of an answer set: a mapping and its
// objective score ∆ (lower is better).
type Answer struct {
	Mapping Mapping
	Score   float64
}

// AnswerSet is an immutable, deterministically ordered result of a
// matcher run: answers sorted by ascending score, ties broken by
// mapping key so that different matchers order identical answers
// identically.
type AnswerSet struct {
	answers []Answer
}

// NewAnswerSet sorts the answers (score, then key) and returns the set.
// Duplicate mappings are collapsed, keeping the lower score — matchers
// must not produce true duplicates, but the collapse makes the set a
// set.
func NewAnswerSet(answers []Answer) *AnswerSet {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score < answers[j].Score
		}
		return answers[i].Mapping.Key() < answers[j].Mapping.Key()
	})
	dedup := answers[:0]
	seen := make(map[string]bool, len(answers))
	for _, a := range answers {
		k := a.Mapping.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		dedup = append(dedup, a)
	}
	return &AnswerSet{answers: dedup}
}

// Len returns the total number of answers.
func (s *AnswerSet) Len() int { return len(s.answers) }

// All returns all answers in rank order. Callers must not modify the
// returned slice.
func (s *AnswerSet) All() []Answer { return s.answers }

// CountAt returns |A(δ)|: the number of answers with score ≤ delta.
func (s *AnswerSet) CountAt(delta float64) int {
	return sort.Search(len(s.answers), func(i int) bool { return s.answers[i].Score > delta })
}

// At returns the prefix of answers with score ≤ delta (the answer set
// A(δ) in rank order). The slice aliases the set's storage.
func (s *AnswerSet) At(delta float64) []Answer {
	return s.answers[:s.CountAt(delta)]
}

// TopN returns the first n answers (or fewer).
func (s *AnswerSet) TopN(n int) []Answer {
	if n > len(s.answers) {
		n = len(s.answers)
	}
	return s.answers[:n]
}

// Keys returns the mapping keys of answers with score ≤ delta.
func (s *AnswerSet) Keys(delta float64) map[string]bool {
	out := make(map[string]bool)
	for _, a := range s.At(delta) {
		out[a.Mapping.Key()] = true
	}
	return out
}

// MaxScore returns the largest score in the set, or 0 for an empty set.
func (s *AnswerSet) MaxScore() float64 {
	if len(s.answers) == 0 {
		return 0
	}
	return s.answers[len(s.answers)-1].Score
}

// SubsetOf reports whether every answer of s (at any threshold) also
// appears in big with the same score — the A_S2 ⊆ A_S1 containment the
// paper's technique rests on. It returns a descriptive error for the
// first violation. Callers checking many sets against one superset
// should build big.ScoreMap() once and use SubsetOfScores.
func (s *AnswerSet) SubsetOf(big *AnswerSet) error {
	return s.SubsetOfScores(big.ScoreMap())
}

// ScoreMap returns the mapping-key → score index of the set, for
// repeated SubsetOfScores checks against one superset.
func (s *AnswerSet) ScoreMap() map[string]float64 {
	scores := make(map[string]float64, len(s.answers))
	for _, a := range s.answers {
		scores[a.Mapping.Key()] = a.Score
	}
	return scores
}

// SubsetOfScores is SubsetOf against a prebuilt ScoreMap.
func (s *AnswerSet) SubsetOfScores(scores map[string]float64) error {
	for _, a := range s.answers {
		sc, ok := scores[a.Mapping.Key()]
		if !ok {
			return fmt.Errorf("matching: answer %s missing from superset", a.Mapping.Key())
		}
		if sc != a.Score {
			return fmt.Errorf("matching: answer %s scored %v vs %v — objective functions differ",
				a.Mapping.Key(), a.Score, sc)
		}
	}
	return nil
}

// Matcher is a schema matching system: it solves a Problem, returning
// every answer it finds with score ≤ delta. Exhaustive systems return
// all of SS∩{∆≤δ}; non-exhaustive improvements return a subset, scored
// by the same ∆.
type Matcher interface {
	// Name identifies the system in reports. The string is the
	// matcher's canonical registry spec ("exhaustive", "beam:8",
	// "topk:0.05") and round-trips through the match package's Parse.
	Name() string
	// Match returns the system's answer set for thresholds up to delta.
	// It is MatchContext under context.Background().
	Match(p *Problem, delta float64) (*AnswerSet, error)
	// MatchContext is the context-aware entry point: the search honors
	// cancellation and deadlines, returning ctx.Err() promptly
	// (checked periodically, off the per-node fast path) with a nil
	// answer set when the context ends mid-search.
	MatchContext(ctx context.Context, p *Problem, delta float64) (*AnswerSet, error)
}

// StatsMatcher is implemented by matchers that can report their search
// work alongside the answers. All matchers in this repository
// implement it; the match.Service uses it to fill Result.Stats.
type StatsMatcher interface {
	Matcher
	// MatchStatsContext runs the system under ctx and reports the
	// search-work counters accumulated during the run.
	MatchStatsContext(ctx context.Context, p *Problem, delta float64) (*AnswerSet, SearchStats, error)
}
