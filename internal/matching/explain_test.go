package matching

import (
	"math"
	"strings"
	"testing"
)

func TestExplainTotalsMatchScore(t *testing.T) {
	p := fixture(t)
	set, err := Exhaustive{}.Match(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range set.TopN(20) {
		ex, err := p.Explain(a.Mapping)
		if err != nil {
			t.Fatalf("Explain(%s): %v", a.Mapping.Key(), err)
		}
		if math.Abs(ex.Total-a.Score) > 1e-9 {
			t.Errorf("%s: explanation total %v != score %v", a.Mapping.Key(), ex.Total, a.Score)
		}
		if len(ex.PerElement) != p.M() {
			t.Errorf("per-element entries = %d", len(ex.PerElement))
		}
		// Root carries no edge cost.
		if ex.PerElement[0].EdgeCost != 0 || ex.PerElement[0].Stretch != 0 {
			t.Errorf("root has edge cost: %+v", ex.PerElement[0])
		}
	}
}

func TestExplainRejectsInvalid(t *testing.T) {
	p := fixture(t)
	if _, err := p.Explain(Mapping{Schema: "nope", Targets: []int{0, 1, 2}}); err == nil {
		t.Error("invalid mapping should error")
	}
}

func TestExplainString(t *testing.T) {
	p := fixture(t)
	set, err := Exhaustive{}.Match(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.Explain(set.All()[0].Mapping)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	for _, frag := range []string{"∆=", "contact", "name="} {
		if !strings.Contains(out, frag) {
			t.Errorf("explanation missing %q:\n%s", frag, out)
		}
	}
}
