package matching

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// randomProblem builds a small random matching problem from a seed:
// a 2–4 element personal schema and 2–4 repository schemas of up to 12
// elements each, names drawn from a small shared pool so collisions
// and near-misses occur.
func randomProblem(seed uint64) (*Problem, error) {
	rng := stats.NewRNG(seed)
	pool := []string{"alpha", "beta", "gamma", "delta", "item", "price",
		"name", "code", "value", "node", "entry", "field"}

	buildTree := func(size int, prefix string) *xmlschema.Element {
		root := xmlschema.NewElement(stats.Pick(rng, pool))
		nodes := []*xmlschema.Element{root}
		for len(nodes) < size {
			parent := stats.Pick(rng, nodes)
			if len(parent.Children) >= 3 {
				continue
			}
			child := xmlschema.NewElement(stats.Pick(rng, pool))
			parent.Add(child)
			nodes = append(nodes, child)
		}
		return root
	}
	personal, err := xmlschema.NewSchema("p", buildTree(2+rng.Intn(3), "p"))
	if err != nil {
		return nil, err
	}
	repo := xmlschema.NewRepository()
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		s, err := xmlschema.NewSchema(fmt.Sprintf("s%d", i), buildTree(4+rng.Intn(9), "r"))
		if err != nil {
			return nil, err
		}
		if err := repo.Add(s); err != nil {
			return nil, err
		}
	}
	return NewProblem(personal, repo, DefaultConfig())
}

// Property: every answer the exhaustive matcher emits is valid, scored
// consistently with the reference Score, and within the threshold.
func TestExhaustiveSoundnessProperty(t *testing.T) {
	f := func(seed uint64, deltaRaw uint8) bool {
		prob, err := randomProblem(seed)
		if err != nil {
			return false
		}
		delta := float64(deltaRaw%100) / 100
		set, err := Exhaustive{}.Match(prob, delta)
		if err != nil {
			return false
		}
		for _, a := range set.All() {
			if !prob.Valid(a.Mapping) {
				return false
			}
			ref, err := prob.Score(a.Mapping)
			if err != nil || absF(ref-a.Score) > 1e-9 {
				return false
			}
			if a.Score > delta+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: completeness — Match(δ) returns exactly the prefix of
// Match(δmax) with score ≤ δ (no answers are lost at lower thresholds).
func TestExhaustiveCompletenessProperty(t *testing.T) {
	f := func(seed uint64, deltaRaw uint8) bool {
		prob, err := randomProblem(seed)
		if err != nil {
			return false
		}
		full, err := Exhaustive{}.Match(prob, 2)
		if err != nil {
			return false
		}
		delta := float64(deltaRaw%100) / 100
		sub, err := Exhaustive{}.Match(prob, delta)
		if err != nil {
			return false
		}
		if sub.Len() != full.CountAt(delta) {
			return false
		}
		return sub.SubsetOf(full) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the parallel matcher agrees with the sequential one on
// random problems.
func TestParallelEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		prob, err := randomProblem(seed)
		if err != nil {
			return false
		}
		seq, err := Exhaustive{}.Match(prob, 0.6)
		if err != nil {
			return false
		}
		par, err := ParallelExhaustive{Workers: 3}.Match(prob, 0.6)
		if err != nil {
			return false
		}
		if seq.Len() != par.Len() {
			return false
		}
		for i := range seq.All() {
			if !seq.All()[i].Mapping.Equal(par.All()[i].Mapping) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
