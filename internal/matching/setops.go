package matching

// Set operations over answer sets. The bounds technique reasons about
// increments A(δ2) \ A(δ1) and containments A_S2 ⊆ A_S1; these helpers
// make those relations directly computable for diagnostics and tests.

// Intersect returns the answers present in both sets (by mapping key),
// with a's scores. The result is a valid AnswerSet.
func Intersect(a, b *AnswerSet) *AnswerSet {
	inB := make(map[string]bool, b.Len())
	for _, ans := range b.All() {
		inB[ans.Mapping.Key()] = true
	}
	var out []Answer
	for _, ans := range a.All() {
		if inB[ans.Mapping.Key()] {
			out = append(out, ans)
		}
	}
	return NewAnswerSet(out)
}

// Diff returns the answers of a that are absent from b — for the
// exhaustive system and an improvement, exactly the answers the
// improvement misses.
func Diff(a, b *AnswerSet) *AnswerSet {
	inB := make(map[string]bool, b.Len())
	for _, ans := range b.All() {
		inB[ans.Mapping.Key()] = true
	}
	var out []Answer
	for _, ans := range a.All() {
		if !inB[ans.Mapping.Key()] {
			out = append(out, ans)
		}
	}
	return NewAnswerSet(out)
}

// Union merges answer sets whose mapping keys are pairwise disjoint —
// the scatter-gather case, where each input covers a distinct schema
// partition — into one set with exactly the deterministic (score, key)
// order a single matcher run over the whole repository would produce.
// Because every AnswerSet is already sorted, the merge is a k-way pick
// of the smallest head: no re-sort, no dedup map, O(total·k)
// comparisons for k sets. Nil sets are skipped. Overlapping inputs are
// NOT collapsed; callers merging possibly-duplicated answers build the
// set with NewAnswerSet instead.
func Union(sets ...*AnswerSet) *AnswerSet {
	n := 0
	live := make([][]Answer, 0, len(sets))
	for _, s := range sets {
		if s != nil && s.Len() > 0 {
			live = append(live, s.All())
			n += s.Len()
		}
	}
	if len(live) == 1 {
		return &AnswerSet{answers: live[0]}
	}
	out := make([]Answer, 0, n)
	for len(live) > 0 {
		best := 0
		for i := 1; i < len(live); i++ {
			if answerLess(live[i][0], live[best][0]) {
				best = i
			}
		}
		out = append(out, live[best][0])
		if live[best] = live[best][1:]; len(live[best]) == 0 {
			live = append(live[:best], live[best+1:]...)
		}
	}
	return &AnswerSet{answers: out}
}

// answerLess is the canonical answer order (score, then mapping key —
// the order NewAnswerSet sorts by); keys are only materialized on score
// ties.
func answerLess(a, b Answer) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Mapping.Key() < b.Mapping.Key()
}

// Increment returns the answers of set with δ1 < score ≤ δ2 — the
// paper's Â(δ1–δ2) = A(δ2) \ A(δ1). δ2 < δ1 yields an empty set.
func Increment(set *AnswerSet, delta1, delta2 float64) []Answer {
	lo := set.CountAt(delta1)
	hi := set.CountAt(delta2)
	if hi < lo {
		return nil
	}
	return set.All()[lo:hi]
}
