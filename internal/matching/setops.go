package matching

// Set operations over answer sets. The bounds technique reasons about
// increments A(δ2) \ A(δ1) and containments A_S2 ⊆ A_S1; these helpers
// make those relations directly computable for diagnostics and tests.

// Intersect returns the answers present in both sets (by mapping key),
// with a's scores. The result is a valid AnswerSet.
func Intersect(a, b *AnswerSet) *AnswerSet {
	inB := make(map[string]bool, b.Len())
	for _, ans := range b.All() {
		inB[ans.Mapping.Key()] = true
	}
	var out []Answer
	for _, ans := range a.All() {
		if inB[ans.Mapping.Key()] {
			out = append(out, ans)
		}
	}
	return NewAnswerSet(out)
}

// Diff returns the answers of a that are absent from b — for the
// exhaustive system and an improvement, exactly the answers the
// improvement misses.
func Diff(a, b *AnswerSet) *AnswerSet {
	inB := make(map[string]bool, b.Len())
	for _, ans := range b.All() {
		inB[ans.Mapping.Key()] = true
	}
	var out []Answer
	for _, ans := range a.All() {
		if !inB[ans.Mapping.Key()] {
			out = append(out, ans)
		}
	}
	return NewAnswerSet(out)
}

// Increment returns the answers of set with δ1 < score ≤ δ2 — the
// paper's Â(δ1–δ2) = A(δ2) \ A(δ1). δ2 < δ1 yields an empty set.
func Increment(set *AnswerSet, delta1, delta2 float64) []Answer {
	lo := set.CountAt(delta1)
	hi := set.CountAt(delta2)
	if hi < lo {
		return nil
	}
	return set.All()[lo:hi]
}
