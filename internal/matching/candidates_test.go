package matching_test

import (
	"testing"

	"repro/internal/candindex"
	"repro/internal/engine"
	"repro/internal/matching"
	"repro/internal/similarity"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

func candidateFixture(t *testing.T, seed uint64, schemas int) (*xmlschema.Schema, *xmlschema.Repository, *candindex.Index, engine.Scorer) {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.NumSchemas = schemas
	sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scorer := engine.New(nil)
	ix, err := candindex.Build(sc.Repo, candindex.Config{Metric: scorer.Metric()})
	if err != nil {
		t.Fatal(err)
	}
	return sc.Personal, sc.Repo, ix, scorer
}

func filteredConfig(scorer engine.Scorer, ix *candindex.Index, delta float64) matching.Config {
	cfg := matching.DefaultConfig()
	cfg.Scorer = scorer
	cfg.Candidates = ix
	cfg.CandidateDelta = delta
	return cfg
}

// TestFilteredProblemParity: at every delta within the horizon the
// filtered problem yields the exact exhaustive answer set of an
// unfiltered one, and above the horizon ExactWithin turns false.
func TestFilteredProblemParity(t *testing.T) {
	personal, repo, ix, scorer := candidateFixture(t, 31, 30)
	const horizon = 0.3
	plainCfg := matching.DefaultConfig()
	plainCfg.Scorer = scorer
	plain, err := matching.NewProblem(personal, repo, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := matching.NewProblem(personal, repo, filteredConfig(scorer, ix, horizon))
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := filtered.CandidateStats()
	if !ok {
		t.Fatal("filtered problem reports no candidate stats")
	}
	if cs.Pairs == 0 {
		t.Fatal("candidate stats cover zero pairs")
	}
	for _, delta := range []float64{0.1, 0.2, 0.3} {
		if !filtered.ExactWithin(delta) {
			t.Fatalf("ExactWithin(%v) false within the horizon", delta)
		}
		want, _, err := matching.Exhaustive{}.MatchWithStats(plain, delta)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := matching.Exhaustive{}.MatchWithStats(filtered, delta)
		if err != nil {
			t.Fatal(err)
		}
		if want.Len() != got.Len() {
			t.Fatalf("δ=%v: filtered %d answers, unfiltered %d", delta, got.Len(), want.Len())
		}
		wa, ga := want.All(), got.All()
		for i := range wa {
			if !wa[i].Mapping.Equal(ga[i].Mapping) || wa[i].Score != ga[i].Score {
				t.Fatalf("δ=%v rank %d: %s@%v vs %s@%v", delta, i,
					ga[i].Mapping.Key(), ga[i].Score, wa[i].Mapping.Key(), wa[i].Score)
			}
		}
	}
	if filtered.ExactWithin(0.45) {
		t.Fatal("ExactWithin(0.45) true above a 0.3 horizon")
	}
	if plain.CandidateSkip(repo.Schemas()[0].Name, 0.2) {
		t.Fatal("unfiltered problem claimed a candidate skip")
	}
}

// TestFilteredProblemConfigValidation: the horizon and the metric
// agreement are construction-time errors.
func TestFilteredProblemConfigValidation(t *testing.T) {
	personal, repo, ix, scorer := candidateFixture(t, 33, 6)
	cfg := filteredConfig(scorer, ix, 0)
	if _, err := matching.NewProblem(personal, repo, cfg); err == nil {
		t.Fatal("accepted a candidate filter with zero CandidateDelta")
	}
	cfg = filteredConfig(engine.NewUncached(similarity.EditSim{}), ix, 0.3)
	if _, err := matching.NewProblem(personal, repo, cfg); err == nil {
		t.Fatal("accepted a filter whose metric differs from the scorer's")
	}
}

// TestRebaseCandidates: rebase transfers filtered tables for shared
// schemas, refilters changed ones with the fresh filter, and rejects a
// fresh filter on an unfiltered problem.
func TestRebaseCandidates(t *testing.T) {
	personal, repo, ix, scorer := candidateFixture(t, 35, 20)
	const horizon = 0.45
	filtered, err := matching.NewProblem(personal, repo, filteredConfig(scorer, ix, horizon))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := xmlschema.NewSnapshot(repo)
	if err != nil {
		t.Fatal(err)
	}
	victim := snap.Schemas()[0]
	repl, err := snap.Schemas()[1].CloneAs(victim.Name)
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Replace(repl)
	if err != nil {
		t.Fatal(err)
	}
	nix, err := ix.Apply(next.Repository(), xmlschema.DiffSnapshots(snap, next))
	if err != nil {
		t.Fatal(err)
	}
	rebased, err := filtered.RebaseCandidates(next.Repository(), nix)
	if err != nil {
		t.Fatal(err)
	}
	// The rebased problem must agree with a from-scratch filtered build.
	scratch, err := matching.NewProblem(personal, next.Repository(),
		filteredConfig(scorer, nix, horizon))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := matching.Exhaustive{}.MatchWithStats(scratch, horizon)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := matching.Exhaustive{}.MatchWithStats(rebased, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != got.Len() {
		t.Fatalf("rebase diverges from scratch build: %d vs %d answers", got.Len(), want.Len())
	}
	wa, ga := want.All(), got.All()
	for i := range wa {
		if !wa[i].Mapping.Equal(ga[i].Mapping) || wa[i].Score != ga[i].Score {
			t.Fatalf("rank %d differs after rebase", i)
		}
	}
	if _, ok := rebased.CandidateStats(); !ok {
		t.Fatal("rebased problem lost its filtering record")
	}

	// Plain rebase keeps the old (now partially stale) filter and stays
	// exact: the changed schema rebuilds unfiltered via the pointer guard.
	plainRebase, err := filtered.Rebase(next.Repository())
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := matching.Exhaustive{}.MatchWithStats(plainRebase, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != want.Len() {
		t.Fatalf("plain rebase diverges: %d vs %d answers", got2.Len(), want.Len())
	}

	// A fresh filter cannot be introduced onto an unfiltered problem.
	plainCfg := matching.DefaultConfig()
	plainCfg.Scorer = scorer
	unfiltered, err := matching.NewProblem(personal, repo, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unfiltered.RebaseCandidates(next.Repository(), nix); err == nil {
		t.Fatal("RebaseCandidates accepted a filter on an unfiltered problem")
	}
}
