package matching

import "testing"

func setFrom(pairs ...struct {
	s string
	v float64
}) *AnswerSet {
	var answers []Answer
	for _, p := range pairs {
		answers = append(answers, Answer{
			Mapping: Mapping{Schema: p.s, Targets: []int{1}},
			Score:   p.v,
		})
	}
	return NewAnswerSet(answers)
}

func pair(s string, v float64) struct {
	s string
	v float64
} {
	return struct {
		s string
		v float64
	}{s, v}
}

func TestIntersect(t *testing.T) {
	a := setFrom(pair("x", 0.1), pair("y", 0.2), pair("z", 0.3))
	b := setFrom(pair("y", 0.2), pair("z", 0.3), pair("w", 0.4))
	got := Intersect(a, b)
	if got.Len() != 2 {
		t.Fatalf("Intersect len = %d", got.Len())
	}
	keys := got.Keys(1)
	if !keys["y:1"] || !keys["z:1"] {
		t.Errorf("Intersect keys = %v", keys)
	}
	// Empty intersection.
	if Intersect(a, setFrom(pair("q", 0.5))).Len() != 0 {
		t.Error("disjoint sets should intersect empty")
	}
}

func TestDiff(t *testing.T) {
	a := setFrom(pair("x", 0.1), pair("y", 0.2), pair("z", 0.3))
	b := setFrom(pair("y", 0.2))
	got := Diff(a, b)
	if got.Len() != 2 {
		t.Fatalf("Diff len = %d", got.Len())
	}
	keys := got.Keys(1)
	if !keys["x:1"] || !keys["z:1"] || keys["y:1"] {
		t.Errorf("Diff keys = %v", keys)
	}
	if Diff(a, a).Len() != 0 {
		t.Error("Diff with itself should be empty")
	}
	if Diff(a, NewAnswerSet(nil)).Len() != a.Len() {
		t.Error("Diff with empty should be identity")
	}
}

func TestIncrement(t *testing.T) {
	set := setFrom(pair("a", 0.1), pair("b", 0.2), pair("c", 0.3), pair("d", 0.4))
	inc := Increment(set, 0.1, 0.3)
	if len(inc) != 2 {
		t.Fatalf("Increment len = %d", len(inc))
	}
	if inc[0].Mapping.Schema != "b" || inc[1].Mapping.Schema != "c" {
		t.Errorf("Increment = %v", inc)
	}
	if got := Increment(set, 0.3, 0.1); got != nil {
		t.Errorf("reversed increment = %v, want nil", got)
	}
	if got := Increment(set, 0, 0.05); len(got) != 0 {
		t.Errorf("empty increment = %v", got)
	}
	// Full range.
	if got := Increment(set, 0, 1); len(got) != 4 {
		t.Errorf("full increment = %d", len(got))
	}
}

// TestIncrementConsistentWithCounts ties Increment to the count
// arithmetic the bounds package performs.
func TestIncrementConsistentWithCounts(t *testing.T) {
	set := setFrom(pair("a", 0.1), pair("b", 0.2), pair("c", 0.2), pair("d", 0.4))
	d1, d2 := 0.15, 0.35
	inc := Increment(set, d1, d2)
	if len(inc) != set.CountAt(d2)-set.CountAt(d1) {
		t.Errorf("increment size %d != count difference %d",
			len(inc), set.CountAt(d2)-set.CountAt(d1))
	}
}

// TestUnionDisjointMergeOrder: the k-way merge of disjoint sorted sets
// must be bit-identical to building one set from the concatenated
// answers — same answers, same (score, key) order — including score
// ties broken by key across sets.
func TestUnionDisjointMergeOrder(t *testing.T) {
	a := setFrom(pair("a", 0.3), pair("c", 0.1), pair("e", 0.2))
	b := setFrom(pair("b", 0.2), pair("d", 0.1)) // score ties with a's answers
	c := setFrom(pair("f", 0.05))
	got := Union(a, b, c)
	var all []Answer
	for _, s := range []*AnswerSet{a, b, c} {
		all = append(all, s.All()...)
	}
	want := NewAnswerSet(all)
	if got.Len() != want.Len() {
		t.Fatalf("Union len = %d, want %d", got.Len(), want.Len())
	}
	for i, ans := range got.All() {
		w := want.All()[i]
		if !ans.Mapping.Equal(w.Mapping) || ans.Score != w.Score {
			t.Fatalf("rank %d: %s@%v, want %s@%v", i,
				ans.Mapping.Key(), ans.Score, w.Mapping.Key(), w.Score)
		}
	}
}

// TestUnionEdgeCases: nil and empty inputs are skipped; a single live
// set passes through; no inputs yield an empty set.
func TestUnionEdgeCases(t *testing.T) {
	if got := Union(); got.Len() != 0 {
		t.Fatalf("Union() len = %d", got.Len())
	}
	if got := Union(nil, setFrom(), nil); got.Len() != 0 {
		t.Fatalf("Union(nil, empty, nil) len = %d", got.Len())
	}
	one := setFrom(pair("x", 0.2), pair("y", 0.1))
	got := Union(nil, one)
	if got.Len() != 2 || got.All()[0].Mapping.Schema != "y" {
		t.Fatalf("single-set Union = %+v", got.All())
	}
}
