package matching

import (
	"testing"

	"repro/internal/xmlschema"
)

// multiSchemaProblem builds a problem over several schemas so the
// parallel matcher actually fans out.
func multiSchemaProblem(t *testing.T) *Problem {
	t.Helper()
	personal, err := xmlschema.NewSchema("p",
		xmlschema.NewElement("item").Add(
			xmlschema.NewElement("price"),
		))
	if err != nil {
		t.Fatal(err)
	}
	repo := xmlschema.NewRepository()
	shapes := []func(i int) *xmlschema.Element{
		func(i int) *xmlschema.Element {
			return xmlschema.NewElement("store").Add(
				xmlschema.NewElement("item").Add(xmlschema.NewElement("price")),
				xmlschema.NewElement("misc"),
			)
		},
		func(i int) *xmlschema.Element {
			return xmlschema.NewElement("catalog").Add(
				xmlschema.NewElement("product").Add(xmlschema.NewElement("cost")),
			)
		},
		func(i int) *xmlschema.Element {
			return xmlschema.NewElement("junk").Add(
				xmlschema.NewElement("widget"),
				xmlschema.NewElement("gadget").Add(xmlschema.NewElement("sprocket")),
			)
		},
	}
	for i := 0; i < 9; i++ {
		s, err := xmlschema.NewSchema(
			"s"+string(rune('0'+i)),
			shapes[i%len(shapes)](i))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	prob, err := NewProblem(personal, repo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestParallelMatchesSequential(t *testing.T) {
	prob := multiSchemaProblem(t)
	for _, delta := range []float64{0.1, 0.3, 0.6, 1.0} {
		seq, err := Exhaustive{}.Match(prob, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 100} {
			par, err := ParallelExhaustive{Workers: workers}.Match(prob, delta)
			if err != nil {
				t.Fatal(err)
			}
			if par.Len() != seq.Len() {
				t.Fatalf("workers=%d δ=%v: %d vs %d answers", workers, delta, par.Len(), seq.Len())
			}
			for i := range seq.All() {
				if !par.All()[i].Mapping.Equal(seq.All()[i].Mapping) || par.All()[i].Score != seq.All()[i].Score {
					t.Fatalf("workers=%d δ=%v: rank %d differs", workers, delta, i)
				}
			}
		}
	}
}

func TestParallelName(t *testing.T) {
	if (ParallelExhaustive{}).Name() != "parallel" {
		t.Error("Name changed")
	}
	if (ParallelExhaustive{Workers: 4}).Name() != "parallel:4" {
		t.Error("bounded-worker Name changed")
	}
}

func TestEnumerateWithStats(t *testing.T) {
	prob := multiSchemaProblem(t)
	set, stats, err := Exhaustive{}.MatchWithStats(prob, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Yielded != set.Len() {
		t.Errorf("Yielded = %d but set has %d", stats.Yielded, set.Len())
	}
	if stats.Candidates < stats.Yielded {
		t.Errorf("Candidates (%d) < Yielded (%d)", stats.Candidates, stats.Yielded)
	}
	if stats.Pruned == 0 {
		t.Error("no pruning at δ=0.6; fixture too easy to be informative")
	}
	// A lower threshold must examine no more candidates and prune no
	// fewer completions proportionally.
	_, tight, err := Exhaustive{}.MatchWithStats(prob, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Yielded > stats.Yielded {
		t.Errorf("tighter threshold yielded more (%d > %d)", tight.Yielded, stats.Yielded)
	}
}

func TestSearchStatsAdd(t *testing.T) {
	a := SearchStats{Candidates: 1, Pruned: 2, Yielded: 3}
	a.Add(SearchStats{Candidates: 10, Pruned: 20, Yielded: 30})
	if a.Candidates != 11 || a.Pruned != 22 || a.Yielded != 33 {
		t.Errorf("Add = %+v", a)
	}
}
