package matching

import "repro/internal/xmlschema"

// SearchStats quantifies the work one enumeration performed — the
// efficiency side of the paper's efficiency/effectiveness trade-off.
type SearchStats struct {
	// Candidates is the number of (personal element, repository
	// element) assignments examined.
	Candidates int
	// Pruned counts branches cut by the admissible threshold prune.
	Pruned int
	// Yielded counts complete mappings produced.
	Yielded int
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.Candidates += other.Candidates
	s.Pruned += other.Pruned
	s.Yielded += other.Yielded
}

// EnumerateWithStats is Enumerate with work counters. Enumerate is the
// thin uninstrumented wrapper; the search logic lives here.
func EnumerateWithStats(p *Problem, s *xmlschema.Schema, delta float64, allowed func(pid, rid int) bool, yield func(Mapping, float64)) SearchStats {
	var st SearchStats
	m := p.M()
	targets := make([]int, m)
	used := make([]bool, s.Len())

	var assign func(pid int, cost float64)
	assign = func(pid int, cost float64) {
		if pid == m {
			st.Yielded++
			yield(Mapping{Schema: s.Name, Targets: append([]int(nil), targets...)}, cost)
			return
		}
		par := p.ParentOf(pid)
		try := func(re *xmlschema.Element) {
			rid := re.ID()
			if used[rid] {
				return
			}
			if allowed != nil && !allowed(pid, rid) {
				return
			}
			st.Candidates++
			c := cost + p.NameCost(s, pid, rid)
			if par >= 0 {
				parentImg := s.ByID(targets[par])
				c += p.EdgeCost(re.Depth() - parentImg.Depth())
			}
			if c > delta+1e-12 {
				st.Pruned++
				return // admissible prune: contributions only grow
			}
			used[rid] = true
			targets[pid] = rid
			assign(pid+1, c)
			used[rid] = false
		}
		if par < 0 {
			// Root of the personal schema may map to any element.
			for _, re := range s.Elements() {
				try(re)
			}
			return
		}
		// Children must map to descendants of the parent's image
		// within the depth stretch.
		parentImg := s.ByID(targets[par])
		maxDepth := parentImg.Depth() + p.Config().MaxDepthStretch
		parentImg.Walk(func(re *xmlschema.Element) bool {
			if re == parentImg {
				return true
			}
			if re.Depth() > maxDepth {
				return false // prune deeper subtree
			}
			try(re)
			return true
		})
	}
	assign(0, 0)
	return st
}

// MatchWithStats runs the exhaustive system and reports the search
// work alongside the answers.
func (Exhaustive) MatchWithStats(p *Problem, delta float64) (*AnswerSet, SearchStats, error) {
	var answers []Answer
	var total SearchStats
	for _, s := range p.Repo.Schemas() {
		st := EnumerateWithStats(p, s, delta, nil, func(m Mapping, score float64) {
			answers = append(answers, Answer{Mapping: m, Score: score})
		})
		total.Add(st)
	}
	return NewAnswerSet(answers), total, nil
}
