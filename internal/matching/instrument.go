package matching

import (
	"context"

	"repro/internal/xmlschema"
)

// SearchStats quantifies the work one enumeration performed — the
// efficiency side of the paper's efficiency/effectiveness trade-off.
type SearchStats struct {
	// Candidates is the number of (personal element, repository
	// element) assignments examined.
	Candidates int
	// Pruned counts branches cut by the admissible threshold prune.
	Pruned int
	// Yielded counts complete mappings produced.
	Yielded int
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.Candidates += other.Candidates
	s.Pruned += other.Pruned
	s.Yielded += other.Yielded
}

// CancelCheckMask paces the cancellation checks in every matcher's
// search hot loop (this package's enumeration and the matchers under
// internal/matchers): ctx.Err() is consulted once every
// CancelCheckMask+1 candidates, so the per-node fast path pays one
// increment and one bitmask test, never a channel read. 1024
// candidates take microseconds, which bounds the cancellation latency
// well below any deadline a caller would set.
const CancelCheckMask = 1<<10 - 1

// EnumerateWithStats is Enumerate with work counters. The search logic
// lives in EnumerateContext; this wrapper runs it under a background
// context, where cancellation is impossible.
func EnumerateWithStats(p *Problem, s *xmlschema.Schema, delta float64, allowed func(pid, rid int) bool, yield func(Mapping, float64)) SearchStats {
	st, _ := EnumerateContext(context.Background(), p, s, delta, allowed, yield)
	return st
}

// EnumerateContext is the instrumented, cancellable enumeration every
// exhaustive-family matcher runs on. It generates mappings exactly like
// Enumerate and additionally honors ctx: the context is polled every
// CancelCheckMask+1 candidates (a counter test on the hot path, the
// channel read off it), and on cancellation the search unwinds
// immediately and returns ctx.Err() with the stats accumulated so far.
// Mappings already yielded stay yielded; no further yields happen after
// the context ends.
func EnumerateContext(ctx context.Context, p *Problem, s *xmlschema.Schema, delta float64, allowed func(pid, rid int) bool, yield func(Mapping, float64)) (SearchStats, error) {
	var st SearchStats
	if p.CandidateSkip(s.Name, delta) {
		// The candidate filter proved the schema answer-free within
		// delta before any table entry existed; an unfiltered run would
		// enumerate and prune its way to the same empty yield set.
		return st, nil
	}
	done := ctx.Done() // nil for background contexts: checks compile to two ALU ops
	if done != nil {
		// Entry check: schemas small enough to finish between periodic
		// checks still observe cancellation once per schema.
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
	stopped := false
	m := p.M()
	targets := make([]int, m)
	used := make([]bool, s.Len())

	var assign func(pid int, cost float64)
	assign = func(pid int, cost float64) {
		if stopped {
			return
		}
		if pid == m {
			st.Yielded++
			yield(Mapping{Schema: s.Name, Targets: append([]int(nil), targets...)}, cost)
			return
		}
		par := p.ParentOf(pid)
		try := func(re *xmlschema.Element) {
			rid := re.ID()
			if used[rid] {
				return
			}
			if allowed != nil && !allowed(pid, rid) {
				return
			}
			st.Candidates++
			if done != nil && st.Candidates&CancelCheckMask == 0 && ctx.Err() != nil {
				stopped = true
				return
			}
			c := cost + p.NameCost(s, pid, rid)
			if par >= 0 {
				parentImg := s.ByID(targets[par])
				c += p.EdgeCost(re.Depth() - parentImg.Depth())
			}
			if c > delta+1e-12 {
				st.Pruned++
				return // admissible prune: contributions only grow
			}
			used[rid] = true
			targets[pid] = rid
			assign(pid+1, c)
			used[rid] = false
		}
		if par < 0 {
			// Root of the personal schema may map to any element.
			for _, re := range s.Elements() {
				if stopped {
					return
				}
				try(re)
			}
			return
		}
		// Children must map to descendants of the parent's image
		// within the depth stretch.
		parentImg := s.ByID(targets[par])
		maxDepth := parentImg.Depth() + p.Config().MaxDepthStretch
		parentImg.Walk(func(re *xmlschema.Element) bool {
			if stopped {
				return false
			}
			if re == parentImg {
				return true
			}
			if re.Depth() > maxDepth {
				return false // prune deeper subtree
			}
			try(re)
			return !stopped
		})
	}
	assign(0, 0)
	if stopped {
		return st, ctx.Err()
	}
	return st, nil
}

// MatchWithStats runs the exhaustive system and reports the search
// work alongside the answers.
func (Exhaustive) MatchWithStats(p *Problem, delta float64) (*AnswerSet, SearchStats, error) {
	return Exhaustive{}.MatchStatsContext(context.Background(), p, delta)
}

// MatchStatsContext implements StatsMatcher.
func (Exhaustive) MatchStatsContext(ctx context.Context, p *Problem, delta float64) (*AnswerSet, SearchStats, error) {
	var answers []Answer
	var total SearchStats
	for _, s := range p.Repo.Schemas() {
		st, err := EnumerateContext(ctx, p, s, delta, nil, func(m Mapping, score float64) {
			answers = append(answers, Answer{Mapping: m, Score: score})
		})
		total.Add(st)
		if err != nil {
			return nil, total, err
		}
	}
	return NewAnswerSet(answers), total, nil
}
