package matching

import (
	"fmt"
	"testing"

	"repro/internal/xmlschema"
)

// benchRepo builds n copies of a moderately sized schema so the
// enumeration work scales linearly with n.
func benchRepo(b *testing.B, n int) (*xmlschema.Schema, *xmlschema.Repository) {
	b.Helper()
	personal, err := xmlschema.NewSchema("p",
		xmlschema.NewElement("order").Add(
			xmlschema.NewElement("customer"),
			xmlschema.NewElement("item").Add(xmlschema.NewElement("price")),
		))
	if err != nil {
		b.Fatal(err)
	}
	repo := xmlschema.NewRepository()
	for i := 0; i < n; i++ {
		root := xmlschema.NewElement("store").Add(
			xmlschema.NewElement("order").Add(
				xmlschema.NewElement("customer").Add(
					xmlschema.NewElement("name"),
					xmlschema.NewElement("address"),
				),
				xmlschema.NewElement("item").Add(
					xmlschema.NewElement("product"),
					xmlschema.NewElement("price"),
					xmlschema.NewElement("quantity"),
				),
				xmlschema.NewElement("total"),
			),
			xmlschema.NewElement("inventory").Add(
				xmlschema.NewElement("product"),
				xmlschema.NewElement("stock"),
			),
		)
		s, err := xmlschema.NewSchema(fmt.Sprintf("s%03d", i), root)
		if err != nil {
			b.Fatal(err)
		}
		if err := repo.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	return personal, repo
}

func BenchmarkNewProblemPrecompute(b *testing.B) {
	personal, repo := benchRepo(b, 50)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewProblem(personal, repo, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveScaling(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		personal, repo := benchRepo(b, n)
		prob, err := NewProblem(personal, repo, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("schemas%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (Exhaustive{}).Match(prob, 0.45); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelSpeedup(b *testing.B) {
	personal, repo := benchRepo(b, 200)
	prob, err := NewProblem(personal, repo, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (ParallelExhaustive{Workers: workers}).Match(prob, 0.45); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThresholdSensitivity(b *testing.B) {
	personal, repo := benchRepo(b, 50)
	prob, err := NewProblem(personal, repo, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, delta := range []float64{0.15, 0.3, 0.45, 0.6} {
		b.Run(fmt.Sprintf("delta%.2f", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (Exhaustive{}).Match(prob, delta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAnswerSetCountAt(b *testing.B) {
	personal, repo := benchRepo(b, 50)
	prob, err := NewProblem(personal, repo, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	set, err := Exhaustive{}.Match(prob, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = set.CountAt(0.3)
	}
}
