package matching

import (
	"repro/internal/xmlschema"
)

// candEps is the safety margin, in cost space, that every candidate
// pruning decision must clear. The enumeration prune uses
// c > delta + 1e-12; pruning only when a cost lower bound exceeds
// delta + candEps therefore guarantees both the filtered and the
// unfiltered run discard the same partials, keeping answer sets
// bit-identical.
const candEps = 1e-9

// CandidateFilter supplies per-pair similarity upper bounds for the
// candidate-filtered cost-table build. The canonical implementation is
// internal/candindex.Index.
type CandidateFilter interface {
	// MetricName identifies the metric the bounds are admissible for.
	// NewProblem rejects a filter whose metric differs from the
	// Scorer's: a bound for the wrong metric is not a bound at all.
	MetricName() string
	// Prepare resolves the personal-side names once and returns a
	// bounder for them, or nil when the filter cannot bound its metric
	// (the build then falls back to scoring every pair). The returned
	// bounder must be safe for concurrent use.
	Prepare(personalNames []string) CandidateBounder
}

// CandidateBounder serves similarity upper bounds for one prepared set
// of personal names against indexed repository schemas.
type CandidateBounder interface {
	// BoundRow fills out[rid] with an upper bound on the similarity of
	// personalNames[pi] and the name of element rid of s, for every
	// element id of s. It returns false when s is not the exact schema
	// object the filter indexed (stale or foreign pointer); the caller
	// must then score that schema unfiltered.
	BoundRow(pi int, s *xmlschema.Schema, out []float64) bool
}

// CandidateTableBounder is an optional CandidateBounder extension the
// table build fast-paths through: the bounder hands back a precomputed
// per-schema cost lower-bound table (lb[pi*n+rid] = max(0, 1 − bound),
// the exact values the BoundRow path would derive) together with the
// sum over personal elements of the per-row minimum. With it, a schema
// the filter skips costs one map lookup per build instead of an O(m·n)
// scan — the bound work amortizes across every problem build sharing
// the prepared bounder. The returned slice is owned by the bounder;
// callers must not mutate it.
type CandidateTableBounder interface {
	CandidateBounder
	SchemaLB(s *xmlschema.Schema) (lb []float64, rowMinSum float64, ok bool)
}

// CandidateStats summarizes how much of a problem's cost table the
// candidate filter proved irrelevant at the pruning horizon.
type CandidateStats struct {
	// Delta is the pruning horizon the tables were filtered at. Answers
	// at or below it are exact; above it the problem is heuristic.
	Delta float64
	// Floor is the per-pair similarity floor implied by Delta: a pair
	// scoring below it cannot appear in any answer within Delta. Values
	// ≤ 0 mean pair-level pruning is inactive at this horizon (schema-
	// level skipping may still fire).
	Floor float64
	// Pairs counts every (personal element, repository element) pair
	// across all schemas; Pruned counts those whose table entry is a
	// conservative bound instead of a computed score, including every
	// pair of a skipped schema.
	Pairs, Pruned int64
	// SkippedSchemas counts repository schemas proven to hold no answer
	// within Delta before any metric evaluation.
	SkippedSchemas int
}

// Ratio returns Pruned/Pairs, or 0 for an empty table.
func (cs CandidateStats) Ratio() float64 {
	if cs.Pairs == 0 {
		return 0
	}
	return float64(cs.Pruned) / float64(cs.Pairs)
}

// schemaCand is the per-schema candidate-filtering record a filtered
// Problem keeps alongside its cost table.
type schemaCand struct {
	// skip marks the whole schema as provably answer-free within the
	// pruning horizon: the sum over personal elements of the cheapest
	// name-cost lower bound already exceeds the budget.
	skip bool
	// pruned counts table entries holding a bound instead of a score.
	pruned int
}

// CandidateSkip reports whether schema name is provably answer-free at
// delta, so a matcher may skip it without enumerating. It only fires
// for requests within the pruning horizon; above the horizon the proof
// does not apply and every schema must be visited.
func (p *Problem) CandidateSkip(name string, delta float64) bool {
	if p.cand == nil || delta > p.candDelta+candEps {
		return false
	}
	c, ok := p.cand[name]
	return ok && c.skip
}

// ExactWithin reports whether answer sets at delta are provably
// complete and exactly scored on this problem. Unfiltered problems are
// exact everywhere; filtered problems only within their horizon.
func (p *Problem) ExactWithin(delta float64) bool {
	return p.cand == nil || delta <= p.candDelta+candEps
}

// CandidateStats aggregates the filtering record over the problem's
// current repository; ok is false for unfiltered problems.
func (p *Problem) CandidateStats() (CandidateStats, bool) {
	if p.cand == nil {
		return CandidateStats{}, false
	}
	cs := CandidateStats{Delta: p.candDelta, Floor: p.candFloor}
	for _, s := range p.Repo.Schemas() {
		c, ok := p.cand[s.Name]
		if !ok {
			continue
		}
		cs.Pairs += int64(p.m * s.Len())
		cs.Pruned += int64(c.pruned)
		if c.skip {
			cs.SkippedSchemas++
		}
	}
	return cs, true
}
