package matching

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/similarity"
	"repro/internal/xmlschema"
)

// fixture builds a tiny problem:
//
//	personal:  contact { name, phone }
//	repo/s1:   customers { customer { fullname, telephone, address } }
//	repo/s2:   misc { widget { gadget } }
func fixture(t *testing.T) *Problem {
	t.Helper()
	personal, err := xmlschema.NewSchema("personal",
		xmlschema.NewElement("contact").Add(
			xmlschema.NewElement("name"),
			xmlschema.NewElement("phone"),
		))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := xmlschema.NewSchema("s1",
		xmlschema.NewElement("customers").Add(
			xmlschema.NewElement("customer").Add(
				xmlschema.NewElement("fullname"),
				xmlschema.NewElement("telephone"),
				xmlschema.NewElement("address"),
			),
		))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := xmlschema.NewSchema("s2",
		xmlschema.NewElement("misc").Add(
			xmlschema.NewElement("widget").Add(xmlschema.NewElement("gadget")),
		))
	if err != nil {
		t.Fatal(err)
	}
	repo := xmlschema.NewRepository()
	for _, s := range []*xmlschema.Schema{s1, s2} {
		if err := repo.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewProblem(personal, repo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMappingKeyAndRefs(t *testing.T) {
	m := Mapping{Schema: "s1", Targets: []int{1, 2, 3}}
	if m.Key() != "s1:1,2,3" {
		t.Errorf("Key = %q", m.Key())
	}
	refs := m.Refs()
	if len(refs) != 3 || refs[0] != (xmlschema.Ref{Schema: "s1", ID: 1}) {
		t.Errorf("Refs = %v", refs)
	}
	if !m.Equal(Mapping{Schema: "s1", Targets: []int{1, 2, 3}}) {
		t.Error("Equal false negative")
	}
	if m.Equal(Mapping{Schema: "s1", Targets: []int{1, 2}}) {
		t.Error("Equal ignores length")
	}
	if m.Equal(Mapping{Schema: "s2", Targets: []int{1, 2, 3}}) {
		t.Error("Equal ignores schema")
	}
}

func TestNewProblemValidation(t *testing.T) {
	personal, _ := xmlschema.NewSchema("p", xmlschema.NewElement("r"))
	repo := xmlschema.NewRepository()
	if _, err := NewProblem(nil, repo, DefaultConfig()); err == nil {
		t.Error("nil personal should error")
	}
	if _, err := NewProblem(personal, nil, DefaultConfig()); err == nil {
		t.Error("nil repo should error")
	}
	if _, err := NewProblem(personal, repo, Config{NameWeight: -1, StructWeight: 1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewProblem(personal, repo, Config{}); err == nil {
		t.Error("zero weights should error")
	}
}

func TestConfigNormalization(t *testing.T) {
	personal, _ := xmlschema.NewSchema("p", xmlschema.NewElement("r"))
	repo := xmlschema.NewRepository()
	p, err := NewProblem(personal, repo, Config{NameWeight: 3, StructWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if math.Abs(cfg.NameWeight-0.75) > 1e-12 || math.Abs(cfg.StructWeight-0.25) > 1e-12 {
		t.Errorf("weights = %v/%v", cfg.NameWeight, cfg.StructWeight)
	}
	if cfg.MaxDepthStretch != 3 {
		t.Errorf("default stretch = %d", cfg.MaxDepthStretch)
	}
	if cfg.Scorer == nil {
		t.Error("scorer not defaulted")
	}
}

func TestExhaustiveFindsPlantedMapping(t *testing.T) {
	p := fixture(t)
	set, err := Exhaustive{}.Match(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no answers at δ=1")
	}
	// The best answer should be customer→{fullname,telephone}.
	best := set.All()[0]
	s1 := p.Repo.Schema("s1")
	wantRoot := s1.FindByName("customer")[0].ID()
	wantName := s1.FindByName("fullname")[0].ID()
	wantPhone := s1.FindByName("telephone")[0].ID()
	want := Mapping{Schema: "s1", Targets: []int{wantRoot, wantName, wantPhone}}
	if !best.Mapping.Equal(want) {
		t.Errorf("best = %v (%.4f), want %v", best.Mapping, best.Score, want)
	}
	if best.Score > 0.4 {
		t.Errorf("best score = %v, want low", best.Score)
	}
}

func TestExhaustiveScoresMatchReference(t *testing.T) {
	p := fixture(t)
	set, err := Exhaustive{}.Match(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range set.All() {
		ref, err := p.Score(a.Mapping)
		if err != nil {
			t.Fatalf("Score(%v): %v", a.Mapping, err)
		}
		if math.Abs(ref-a.Score) > 1e-9 {
			t.Errorf("mapping %v: search score %v != reference %v", a.Mapping, a.Score, ref)
		}
		if !p.Valid(a.Mapping) {
			t.Errorf("mapping %v outside SS", a.Mapping)
		}
	}
}

func TestExhaustiveRespectsAncestryAndInjectivity(t *testing.T) {
	p := fixture(t)
	set, err := Exhaustive{}.Match(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range set.All() {
		s := p.Repo.Schema(a.Mapping.Schema)
		seen := map[int]bool{}
		for pid, rid := range a.Mapping.Targets {
			if seen[rid] {
				t.Fatalf("mapping %v not injective", a.Mapping)
			}
			seen[rid] = true
			if par := p.ParentOf(pid); par >= 0 {
				child := s.ByID(rid)
				parent := s.ByID(a.Mapping.Targets[par])
				if !child.HasAncestor(parent) {
					t.Fatalf("mapping %v breaks ancestry", a.Mapping)
				}
				if d := child.Depth() - parent.Depth(); d > p.Config().MaxDepthStretch {
					t.Fatalf("mapping %v stretches %d levels", a.Mapping, d)
				}
			}
		}
	}
}

func TestExhaustiveThresholdMonotone(t *testing.T) {
	p := fixture(t)
	full, err := Exhaustive{}.Match(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, d := range []float64{0, 0.1, 0.2, 0.4, 0.8, 2} {
		n := full.CountAt(d)
		if n < prev {
			t.Fatalf("CountAt not monotone at δ=%v", d)
		}
		prev = n
		// Matching at a lower threshold returns exactly the prefix.
		sub, err := Exhaustive{}.Match(p, d)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Len() != n {
			t.Errorf("Match(δ=%v) found %d answers, full set has %d ≤ δ", d, sub.Len(), n)
		}
		if err := sub.SubsetOf(full); err != nil {
			t.Errorf("δ=%v: %v", d, err)
		}
	}
}

func TestSearchSpaceSize(t *testing.T) {
	p := fixture(t)
	n := p.SearchSpaceSize()
	set, err := Exhaustive{}.Match(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != n {
		t.Errorf("search space %d vs exhaustive at δ=2 %d", n, set.Len())
	}
	if n == 0 {
		t.Error("search space empty")
	}
}

func TestScoreErrors(t *testing.T) {
	p := fixture(t)
	if _, err := p.Score(Mapping{Schema: "nope", Targets: []int{0, 1, 2}}); err == nil {
		t.Error("unknown schema should error")
	}
	if _, err := p.Score(Mapping{Schema: "s1", Targets: []int{0}}); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := p.Score(Mapping{Schema: "s1", Targets: []int{0, 99, 1}}); err == nil {
		t.Error("unknown target should error")
	}
	// Ancestry violation: name under misc root but phone under widget.
	if _, err := p.Score(Mapping{Schema: "s2", Targets: []int{2, 0, 1}}); err == nil {
		t.Error("ancestry violation should error")
	}
}

func TestValid(t *testing.T) {
	p := fixture(t)
	s1 := p.Repo.Schema("s1")
	cust := s1.FindByName("customer")[0].ID()
	fn := s1.FindByName("fullname")[0].ID()
	tel := s1.FindByName("telephone")[0].ID()
	good := Mapping{Schema: "s1", Targets: []int{cust, fn, tel}}
	if !p.Valid(good) {
		t.Error("planted mapping should be valid")
	}
	if p.Valid(Mapping{Schema: "s1", Targets: []int{cust, fn, fn}}) {
		t.Error("non-injective mapping should be invalid")
	}
	if p.Valid(Mapping{Schema: "zzz", Targets: []int{0, 1, 2}}) {
		t.Error("unknown schema should be invalid")
	}
	// Root of s1 mapped as child of customer: wrong direction.
	if p.Valid(Mapping{Schema: "s1", Targets: []int{fn, cust, tel}}) {
		t.Error("upward mapping should be invalid")
	}
}

func TestAnswerSetOperations(t *testing.T) {
	answers := []Answer{
		{Mapping: Mapping{Schema: "b", Targets: []int{1}}, Score: 0.2},
		{Mapping: Mapping{Schema: "a", Targets: []int{1}}, Score: 0.1},
		{Mapping: Mapping{Schema: "c", Targets: []int{1}}, Score: 0.2},
		{Mapping: Mapping{Schema: "a", Targets: []int{1}}, Score: 0.3}, // dup, worse
	}
	set := NewAnswerSet(answers)
	if set.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", set.Len())
	}
	all := set.All()
	if all[0].Mapping.Schema != "a" || all[0].Score != 0.1 {
		t.Errorf("first = %+v", all[0])
	}
	// Tie at 0.2 broken by key: b before c.
	if all[1].Mapping.Schema != "b" || all[2].Mapping.Schema != "c" {
		t.Errorf("tie order = %v, %v", all[1].Mapping, all[2].Mapping)
	}
	if set.CountAt(0.15) != 1 || set.CountAt(0.2) != 3 || set.CountAt(0) != 0 {
		t.Errorf("CountAt wrong: %d %d %d", set.CountAt(0.15), set.CountAt(0.2), set.CountAt(0))
	}
	if got := set.TopN(2); len(got) != 2 {
		t.Errorf("TopN = %d", len(got))
	}
	if got := set.TopN(99); len(got) != 3 {
		t.Errorf("TopN overflow = %d", len(got))
	}
	keys := set.Keys(0.15)
	if len(keys) != 1 || !keys["a:1"] {
		t.Errorf("Keys = %v", keys)
	}
	if set.MaxScore() != 0.2 {
		t.Errorf("MaxScore = %v", set.MaxScore())
	}
	empty := NewAnswerSet(nil)
	if empty.MaxScore() != 0 || empty.Len() != 0 {
		t.Error("empty set invariants")
	}
}

func TestSubsetOfDetectsViolations(t *testing.T) {
	big := NewAnswerSet([]Answer{
		{Mapping: Mapping{Schema: "a", Targets: []int{1}}, Score: 0.1},
		{Mapping: Mapping{Schema: "b", Targets: []int{1}}, Score: 0.2},
	})
	good := NewAnswerSet([]Answer{{Mapping: Mapping{Schema: "a", Targets: []int{1}}, Score: 0.1}})
	if err := good.SubsetOf(big); err != nil {
		t.Errorf("valid subset rejected: %v", err)
	}
	missing := NewAnswerSet([]Answer{{Mapping: Mapping{Schema: "x", Targets: []int{1}}, Score: 0.1}})
	if err := missing.SubsetOf(big); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing answer not detected: %v", err)
	}
	rescored := NewAnswerSet([]Answer{{Mapping: Mapping{Schema: "a", Targets: []int{1}}, Score: 0.15}})
	if err := rescored.SubsetOf(big); err == nil || !strings.Contains(err.Error(), "objective") {
		t.Errorf("score mismatch not detected: %v", err)
	}
}

func TestEdgeCostShape(t *testing.T) {
	p := fixture(t)
	if p.EdgeCost(1) != 0 {
		t.Errorf("direct child cost = %v, want 0", p.EdgeCost(1))
	}
	if p.EdgeCost(2) <= p.EdgeCost(1) || p.EdgeCost(3) <= p.EdgeCost(2) {
		t.Error("edge cost should grow with stretch")
	}
	if p.EdgeCost(0) < 1 || p.EdgeCost(4) < 1 {
		t.Error("out-of-range stretch should cost above any threshold")
	}
}

func TestSingleElementPersonalSchema(t *testing.T) {
	personal, _ := xmlschema.NewSchema("p", xmlschema.NewElement("book"))
	repo := xmlschema.NewRepository()
	s, _ := xmlschema.NewSchema("r", xmlschema.NewElement("library").Add(xmlschema.NewElement("book")))
	if err := repo.Add(s); err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(personal, repo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	set, err := Exhaustive{}.Match(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every element of r is a candidate: 2 mappings.
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
	if best := set.All()[0]; best.Score != 0 {
		t.Errorf("exact name match score = %v, want 0", best.Score)
	}
}

func TestCustomMetricIsUsed(t *testing.T) {
	personal, _ := xmlschema.NewSchema("p", xmlschema.NewElement("x"))
	repo := xmlschema.NewRepository()
	s, _ := xmlschema.NewSchema("r", xmlschema.NewElement("y"))
	if err := repo.Add(s); err != nil {
		t.Fatal(err)
	}
	constant := similarity.MetricFunc{Fn: func(a, b string) float64 { return 0.25 }, Label: "const"}
	p, err := NewProblem(personal, repo, Config{Scorer: engine.NewUncached(constant), NameWeight: 1, StructWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	set, err := Exhaustive{}.Match(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 || math.Abs(set.All()[0].Score-0.75) > 1e-12 {
		t.Errorf("custom metric ignored: %+v", set.All())
	}
}
