package matching

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/xmlschema"
)

// Config parameterizes the objective function ∆ and the search space.
// The same Config must be shared by an original system and its
// non-exhaustive improvements — the paper's technique requires that the
// improvement "uses the same objective function".
type Config struct {
	// Scorer is the scoring engine that supplies element-name
	// similarities. Nil selects a fresh memoized engine over
	// similarity.DefaultNameMetric. Thread one engine.Scorer through
	// every matcher, clusterer, and pipeline stage of an experiment so
	// they share a single memo table (see internal/engine).
	Scorer engine.Scorer
	// NameWeight and StructWeight blend the name and structure
	// components of ∆. They are normalized to sum to 1; both zero is an
	// error.
	NameWeight   float64
	StructWeight float64
	// MaxDepthStretch bounds how many tree levels an edge of the
	// personal schema may stretch across in the repository schema
	// (image of a child must be a descendant of the image of its
	// parent, at most this many levels below). It is part of the search
	// space definition SS, identical for all systems. Values < 1
	// default to 3.
	MaxDepthStretch int
	// BuildWorkers bounds the worker pool that precomputes the
	// per-schema name-cost tables in NewProblem. Values < 1 select
	// GOMAXPROCS.
	BuildWorkers int
	// Candidates, when non-nil, enables the candidate-filtered table
	// build: pairs (and whole schemas) whose similarity upper bound
	// proves them irrelevant within CandidateDelta receive a
	// conservative cost bound instead of a computed score. Answers at
	// or below CandidateDelta are provably identical to an unfiltered
	// build; above it the problem is heuristic (see Problem). The
	// filter's MetricName must equal the Scorer's.
	Candidates CandidateFilter
	// CandidateDelta is the pruning horizon; it must be > 0 when
	// Candidates is set.
	CandidateDelta float64
}

// normalized returns a validated copy with defaults applied.
func (c Config) normalized() (Config, error) {
	if c.Scorer == nil {
		c.Scorer = engine.New(nil)
	}
	if c.NameWeight < 0 || c.StructWeight < 0 {
		return c, fmt.Errorf("matching: negative weight (name=%v struct=%v)", c.NameWeight, c.StructWeight)
	}
	total := c.NameWeight + c.StructWeight
	if total == 0 {
		return c, fmt.Errorf("matching: both weights zero")
	}
	c.NameWeight /= total
	c.StructWeight /= total
	if c.MaxDepthStretch < 1 {
		c.MaxDepthStretch = 3
	}
	if c.Candidates != nil {
		if !(c.CandidateDelta > 0) {
			return c, fmt.Errorf("matching: candidate filter needs CandidateDelta > 0 (got %v)", c.CandidateDelta)
		}
		if mn := c.Candidates.MetricName(); mn != c.Scorer.MetricName() {
			return c, fmt.Errorf("matching: candidate filter bounds metric %q but scorer computes %q", mn, c.Scorer.MetricName())
		}
	}
	return c, nil
}

// DefaultConfig returns the configuration used by all experiments
// unless stated otherwise: default name metric, 0.7/0.3 name/structure
// blend, depth stretch 3.
func DefaultConfig() Config {
	return Config{NameWeight: 0.7, StructWeight: 0.3, MaxDepthStretch: 3}
}

// Problem is one schema matching problem Q: a personal schema matched
// against a repository under a fixed objective configuration. The
// constructor precomputes the per-(personal element, repository
// element) name costs through the configured engine.Scorer so that
// every matcher draws node-pair scores from one shared source;
// exhaustive search then runs on table lookups. With a memoized scorer
// shared across problems (engine.Memo), repeated names — and repeated
// problem builds under different objective weights — cost one metric
// evaluation in total.
type Problem struct {
	Personal *xmlschema.Schema
	Repo     *xmlschema.Repository

	cfg Config
	// nameCost[schemaName][p*stride+r] = 1 - sim(name_p, name_r),
	// p = personal element ID, r = repository element ID.
	nameCost map[string][]float64
	// edgeCost[d] = structural penalty of stretching one personal edge
	// across d repository levels (1 ≤ d ≤ MaxDepthStretch).
	edgeCost []float64
	m        int // personal schema size
	edges    int // number of personal parent-child edges (= m-1)
	parent   []int
	// Candidate filtering (nil cand = unfiltered). For a filtered
	// problem, table entries the filter pruned hold a cost lower bound
	// instead of a computed score, so Score and SearchSpaceSize are only
	// exact for mappings/thresholds within candDelta; every answer the
	// matchers report at delta ≤ candDelta touches exclusively computed
	// entries and is exact.
	cand      map[string]schemaCand
	candDelta float64
	candFloor float64
}

// NewProblemContext is NewProblem with tracing: when ctx carries an
// obs span, the cost-table construction is recorded as a "cost_tables"
// child span annotated with the corpus fan-out and, for candidate-
// filtered builds, the pruning counters. The build itself is identical
// — construction stays deterministic and non-cancellable.
func NewProblemContext(ctx context.Context, personal *xmlschema.Schema, repo *xmlschema.Repository, cfg Config) (*Problem, error) {
	_, sp := obs.StartSpan(ctx, "cost_tables")
	p, err := NewProblem(personal, repo, cfg)
	if sp.Active() {
		if err == nil {
			sp.SetInt("schemas", int64(p.Repo.Len()))
			sp.SetInt("personal_elements", int64(p.m))
			if cs, ok := p.CandidateStats(); ok {
				sp.SetInt("pairs", cs.Pairs)
				sp.SetInt("pairs_pruned", cs.Pruned)
			}
		} else {
			sp.SetBool("err", true)
		}
	}
	sp.End()
	return p, err
}

// NewProblem validates the configuration and precomputes cost tables.
func NewProblem(personal *xmlschema.Schema, repo *xmlschema.Repository, cfg Config) (*Problem, error) {
	if personal == nil || personal.Len() == 0 {
		return nil, fmt.Errorf("matching: empty personal schema")
	}
	if repo == nil {
		return nil, fmt.Errorf("matching: nil repository")
	}
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	p := &Problem{
		Personal: personal,
		Repo:     repo,
		cfg:      ncfg,
		nameCost: make(map[string][]float64, repo.Len()),
		m:        personal.Len(),
	}
	p.edges = p.m - 1
	p.parent = make([]int, p.m)
	for _, e := range personal.Elements() {
		if e.Parent() != nil {
			p.parent[e.ID()] = e.Parent().ID()
		} else {
			p.parent[e.ID()] = -1
		}
	}
	// Edge penalty: a direct parent-child image costs 0; every extra
	// level of stretch costs more, asymptotically 1: 1 - 1/d.
	p.edgeCost = make([]float64, ncfg.MaxDepthStretch+1)
	for d := 1; d <= ncfg.MaxDepthStretch; d++ {
		p.edgeCost[d] = 1 - 1/float64(d)
	}
	// Build the per-schema name-cost tables through the scoring engine,
	// fanning schemas out over a worker pool. Each worker writes a
	// distinct schema's table; the only shared state is the scorer and
	// the candidate bounder, both concurrency-safe by contract.
	tb := p.newTableBuilder()
	if tb.bounder != nil {
		p.cand = make(map[string]schemaCand, repo.Len())
		p.candDelta = ncfg.CandidateDelta
		p.candFloor = 1 - ncfg.CandidateDelta*float64(p.m)/ncfg.NameWeight
	}
	schemas := repo.Schemas()
	tables, cands := tb.buildAll(schemas, ncfg.BuildWorkers)
	for si, s := range schemas {
		p.nameCost[s.Name] = tables[si]
		if p.cand != nil {
			p.cand[s.Name] = cands[si]
		}
	}
	return p, nil
}

// tableBuilder constructs one schema's name-cost table, filtered
// through the configured CandidateFilter when possible. A nil bounder
// (no filter, or a filter that cannot bound the metric) scores every
// pair exactly like the pre-candidate build did.
type tableBuilder struct {
	p             *Problem
	personalNames []string
	bounder       CandidateBounder
	tables        CandidateTableBounder // non-nil fast path of bounder
}

// tableWorker is one pool worker's scoring state: a row-scoring session
// into the shared scorer plus scratch reused across the worker's
// schemas. Jobs on a worker run sequentially (engine.ForEachWorker), so
// the state needs no locking.
type tableWorker struct {
	sess engine.RowSession
	keep []bool
	row  []float64
}

func (tw *tableWorker) session(sc engine.Scorer) engine.RowSession {
	if tw.sess == nil {
		tw.sess = engine.NewRowSession(sc)
	}
	return tw.sess
}

// buildAll builds every schema's table over a worker pool, one scoring
// session per worker, and closes the sessions when the fan-out drains.
func (tb *tableBuilder) buildAll(schemas []*xmlschema.Schema, workers int) ([][]float64, []schemaCand) {
	tables := make([][]float64, len(schemas))
	cands := make([]schemaCand, len(schemas))
	pool := make([]tableWorker, engine.ResolveWorkers(workers, len(schemas)))
	engine.ForEachWorker(len(schemas), workers, func(w, si int) {
		tables[si], cands[si] = tb.build(schemas[si], &pool[w])
	})
	for i := range pool {
		if pool[i].sess != nil {
			pool[i].sess.Close()
		}
	}
	return tables, cands
}

func (p *Problem) newTableBuilder() *tableBuilder {
	tb := &tableBuilder{p: p, personalNames: make([]string, p.m)}
	for _, pe := range p.Personal.Elements() {
		tb.personalNames[pe.ID()] = pe.Name
	}
	if p.cfg.Candidates != nil {
		tb.bounder = p.cfg.Candidates.Prepare(tb.personalNames)
		tb.tables, _ = tb.bounder.(CandidateTableBounder)
	}
	return tb
}

// buildFull scores every pair of the schema — the unfiltered path.
func (tb *tableBuilder) buildFull(s *xmlschema.Schema, names []string, tw *tableWorker) []float64 {
	n := len(names)
	table := make([]float64, tb.p.m*n)
	sess := tw.session(tb.p.cfg.Scorer)
	for pi, pn := range tb.personalNames {
		row := table[pi*n : (pi+1)*n]
		sess.ScoreRow(pn, names, row)
		for j, sim := range row {
			row[j] = 1 - sim
		}
	}
	return table
}

// build returns the schema's cost table and its candidate record.
//
// The filtered path is parity-safe by construction. Write
// scale = NameWeight/m, so a table entry c contributes scale·c to any
// mapping cost, and let lb[pi][rid] = max(0, 1 − bound) ≤ the true cost
// entry. Two prunes apply:
//
//   - Schema skip: if scale·Σ_pi min_rid lb[pi][rid] > Δc + ε, every
//     mapping into the schema costs more than Δc in the unfiltered
//     build too, so neither run yields an answer there and the schema
//     is never enumerated.
//   - Pair floor: if scale·lb[pi][rid] > Δc + ε, that single name-cost
//     contribution already exceeds the enumeration threshold, so every
//     matcher discards any partial containing the pair immediately —
//     in the filtered run (where the entry holds lb) and the
//     unfiltered run (where the true entry is ≥ lb) alike. Surviving
//     frontiers, and hence beam/topk results, are identical.
//
// Kept pairs are scored exactly, so answers within Δc are bit-identical
// to an unfiltered build.
func (tb *tableBuilder) build(s *xmlschema.Schema, tw *tableWorker) ([]float64, schemaCand) {
	if tb.bounder == nil {
		return tb.buildFull(s, namesOf(s), tw), schemaCand{}
	}
	if tb.tables != nil {
		// Fast path: the bounder precomputed this schema's lb table and
		// row-min sum (bit-identical to what the loop below derives), so
		// a skipped schema costs one lookup — no names, no allocation.
		// The shared slice is only copied when kept entries must be
		// overwritten with scores.
		lb, sum, ok := tb.tables.SchemaLB(s)
		if !ok {
			// Stale index after a rebase: score exhaustively — exact, and
			// therefore always parity-safe.
			return tb.buildFull(s, namesOf(s), tw), schemaCand{}
		}
		return tb.buildFromLB(s, lb, sum, true, tw)
	}
	p := tb.p
	n := s.Len()
	lb := make([]float64, p.m*n)
	if cap(tw.row) < n {
		tw.row = make([]float64, n)
	}
	row := tw.row[:n]
	sum := 0.0
	for pi := 0; pi < p.m; pi++ {
		if !tb.bounder.BoundRow(pi, s, row) {
			// The filter does not hold this exact schema object (stale
			// index after a rebase); score it exhaustively — exact, and
			// therefore always parity-safe.
			return tb.buildFull(s, namesOf(s), tw), schemaCand{}
		}
		rowMin := 2.0
		for rid := 0; rid < n; rid++ {
			c := 1 - row[rid]
			if c < 0 {
				c = 0
			}
			lb[pi*n+rid] = c
			if c < rowMin {
				rowMin = c
			}
		}
		sum += rowMin
	}
	return tb.buildFromLB(s, lb, sum, false, tw)
}

// namesOf collects a schema's element names indexed by element ID.
func namesOf(s *xmlschema.Schema) []string {
	names := make([]string, s.Len())
	for _, re := range s.Elements() {
		names[re.ID()] = re.Name
	}
	return names
}

// buildFromLB finishes a filtered table build from the schema's cost
// lower-bound table and row-min sum: decide the schema skip, then score
// the kept pairs. shared marks lb as bounder-owned; it is copied before
// any entry is overwritten (the skip path returns it as-is — the table
// is never mutated afterwards).
func (tb *tableBuilder) buildFromLB(s *xmlschema.Schema, lb []float64, sum float64, shared bool, tw *tableWorker) ([]float64, schemaCand) {
	p := tb.p
	n := s.Len()
	scale := p.cfg.NameWeight / float64(p.m)
	budget := p.candDelta + candEps
	if n == 0 || scale*sum > budget {
		return lb, schemaCand{skip: true, pruned: p.m * n}
	}
	names := namesOf(s)
	if shared {
		lb = append([]float64(nil), lb...)
	}
	if cap(tw.keep) < n {
		tw.keep = make([]bool, n)
	}
	if cap(tw.row) < n {
		tw.row = make([]float64, n)
	}
	keep, row := tw.keep[:n], tw.row[:n]
	sess := tw.session(p.cfg.Scorer)
	pruned := 0
	for pi := 0; pi < p.m; pi++ {
		base := pi * n
		kept := 0
		for rid := 0; rid < n; rid++ {
			k := scale*lb[base+rid] <= budget
			keep[rid] = k
			if k {
				kept++
			}
		}
		pruned += n - kept
		if kept == 0 {
			continue
		}
		sess.ScoreRowMasked(tb.personalNames[pi], names, row, keep)
		for rid := 0; rid < n; rid++ {
			if keep[rid] {
				lb[base+rid] = 1 - row[rid]
			}
		}
	}
	return lb, schemaCand{pruned: pruned}
}

// Rebase returns a new Problem for the same personal schema and
// configuration over repo, reusing the cost table of every schema
// shared (pointer-identical under its name) with the problem's current
// repository and building tables only for schemas new to or changed in
// repo. With copy-on-write repository snapshots this makes a
// single-schema repository update cost one schema's table build instead
// of a full NewProblem. The receiver is not modified and stays valid
// for in-flight searches against the old repository.
//
// On a candidate-filtered problem the filtering record of transferred
// schemas carries over, while changed schemas rebuild unfiltered (the
// old filter cannot hold the new schema objects); the result stays
// exact within the pruning horizon. Use RebaseCandidates with a fresh
// filter to keep changed schemas filtered as well.
func (p *Problem) Rebase(repo *xmlschema.Repository) (*Problem, error) {
	return p.RebaseCandidates(repo, nil)
}

// RebaseCandidates is Rebase with a replacement candidate filter built
// over repo, so schemas new to or changed in repo get filtered tables
// instead of exhaustive ones. A nil filter keeps the problem's current
// filter (which safely degrades to exhaustive scoring for changed
// schemas). Passing a filter on an unfiltered problem is an error: the
// horizon the problem was built without cannot be introduced
// retroactively.
func (p *Problem) RebaseCandidates(repo *xmlschema.Repository, filter CandidateFilter) (*Problem, error) {
	if repo == nil {
		return nil, fmt.Errorf("matching: nil repository")
	}
	np := &Problem{
		Personal:  p.Personal,
		Repo:      repo,
		cfg:       p.cfg,
		nameCost:  make(map[string][]float64, repo.Len()),
		edgeCost:  p.edgeCost,
		m:         p.m,
		edges:     p.edges,
		parent:    p.parent,
		candDelta: p.candDelta,
		candFloor: p.candFloor,
	}
	if filter != nil {
		if p.cand == nil {
			return nil, fmt.Errorf("matching: RebaseCandidates on an unfiltered problem")
		}
		if mn := filter.MetricName(); mn != p.cfg.Scorer.MetricName() {
			return nil, fmt.Errorf("matching: candidate filter bounds metric %q but scorer computes %q", mn, p.cfg.Scorer.MetricName())
		}
		np.cfg.Candidates = filter
	}
	if p.cand != nil {
		np.cand = make(map[string]schemaCand, repo.Len())
	}
	schemas := repo.Schemas()
	// Changed schemas fan out over the same worker pool NewProblem
	// uses; unchanged ones transfer their (immutable) tables directly.
	var changed []int
	for si, s := range schemas {
		if p.Repo.Schema(s.Name) == s {
			np.nameCost[s.Name] = p.nameCost[s.Name]
			if np.cand != nil {
				np.cand[s.Name] = p.cand[s.Name]
			}
		} else {
			changed = append(changed, si)
		}
	}
	if len(changed) > 0 {
		tb := np.newTableBuilder()
		changedSchemas := make([]*xmlschema.Schema, len(changed))
		for ci, si := range changed {
			changedSchemas[ci] = schemas[si]
		}
		tables, cands := tb.buildAll(changedSchemas, p.cfg.BuildWorkers)
		for ci, si := range changed {
			np.nameCost[schemas[si].Name] = tables[ci]
			if np.cand != nil {
				np.cand[schemas[si].Name] = cands[ci]
			}
		}
	}
	return np, nil
}

// Scorer returns the scoring engine the problem's cost tables were
// built from — the shared source matchers and clusterers should reuse.
func (p *Problem) Scorer() engine.Scorer { return p.cfg.Scorer }

// Config returns the problem's normalized configuration.
func (p *Problem) Config() Config { return p.cfg }

// M returns the personal schema size.
func (p *Problem) M() int { return p.m }

// ParentOf returns the pre-order ID of the parent of personal element
// id, or -1 for the root.
func (p *Problem) ParentOf(id int) int { return p.parent[id] }

// NameCost returns the normalized name dissimilarity contribution of
// assigning personal element pid to element rid of schema s: the raw
// cost divided by m and weighted.
func (p *Problem) NameCost(s *xmlschema.Schema, pid, rid int) float64 {
	return p.cfg.NameWeight * p.nameCost[s.Name][pid*s.Len()+rid] / float64(p.m)
}

// EdgeCost returns the weighted structural contribution of one personal
// edge whose images are d levels apart (1 ≤ d ≤ MaxDepthStretch).
// Out-of-range d yields +Inf semantics via a value above any threshold.
func (p *Problem) EdgeCost(d int) float64 {
	if d < 1 || d > p.cfg.MaxDepthStretch {
		return 2 // outside SS; above any normalized ∆
	}
	if p.edges == 0 {
		return 0
	}
	return p.cfg.StructWeight * p.edgeCost[d] / float64(p.edges)
}

// Score computes ∆(mapping) from scratch. Matchers accumulate the same
// contributions incrementally during search; Score is the reference
// implementation used by tests to verify matcher-reported scores.
func (p *Problem) Score(m Mapping) (float64, error) {
	s := p.Repo.Schema(m.Schema)
	if s == nil {
		return 0, fmt.Errorf("matching: mapping into unknown schema %q", m.Schema)
	}
	if len(m.Targets) != p.m {
		return 0, fmt.Errorf("matching: mapping has %d targets, want %d", len(m.Targets), p.m)
	}
	total := 0.0
	for pid, rid := range m.Targets {
		if s.ByID(rid) == nil {
			return 0, fmt.Errorf("matching: target %d not in schema %q", rid, m.Schema)
		}
		total += p.NameCost(s, pid, rid)
		if par := p.parent[pid]; par >= 0 {
			child := s.ByID(rid)
			parentImg := s.ByID(m.Targets[par])
			if !child.HasAncestor(parentImg) {
				return 0, fmt.Errorf("matching: mapping violates ancestry for personal element %d", pid)
			}
			total += p.EdgeCost(child.Depth() - parentImg.Depth())
		}
	}
	return total, nil
}

// Valid reports whether m lies in the search space SS: targets in one
// known schema, injective, ancestry preserved within the depth stretch.
func (p *Problem) Valid(m Mapping) bool {
	s := p.Repo.Schema(m.Schema)
	if s == nil || len(m.Targets) != p.m {
		return false
	}
	used := make(map[int]bool, p.m)
	for pid, rid := range m.Targets {
		e := s.ByID(rid)
		if e == nil || used[rid] {
			return false
		}
		used[rid] = true
		if par := p.parent[pid]; par >= 0 {
			pe := s.ByID(m.Targets[par])
			if pe == nil || !e.HasAncestor(pe) {
				return false
			}
			if d := e.Depth() - pe.Depth(); d < 1 || d > p.cfg.MaxDepthStretch {
				return false
			}
		}
	}
	return true
}

// SearchSpaceSize counts the mappings in SS by running the exhaustive
// enumeration with an infinite threshold and counting instead of
// collecting. It is exponential in the worst case; intended for the
// small problems of the experiments.
func (p *Problem) SearchSpaceSize() int {
	n := 0
	for _, s := range p.Repo.Schemas() {
		Enumerate(p, s, 2, nil, func(Mapping, float64) { n++ })
	}
	return n
}
