package matching

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/xmlschema"
)

// Config parameterizes the objective function ∆ and the search space.
// The same Config must be shared by an original system and its
// non-exhaustive improvements — the paper's technique requires that the
// improvement "uses the same objective function".
type Config struct {
	// Scorer is the scoring engine that supplies element-name
	// similarities. Nil selects a fresh memoized engine over
	// similarity.DefaultNameMetric. Thread one engine.Scorer through
	// every matcher, clusterer, and pipeline stage of an experiment so
	// they share a single memo table (see internal/engine).
	Scorer engine.Scorer
	// NameWeight and StructWeight blend the name and structure
	// components of ∆. They are normalized to sum to 1; both zero is an
	// error.
	NameWeight   float64
	StructWeight float64
	// MaxDepthStretch bounds how many tree levels an edge of the
	// personal schema may stretch across in the repository schema
	// (image of a child must be a descendant of the image of its
	// parent, at most this many levels below). It is part of the search
	// space definition SS, identical for all systems. Values < 1
	// default to 3.
	MaxDepthStretch int
	// BuildWorkers bounds the worker pool that precomputes the
	// per-schema name-cost tables in NewProblem. Values < 1 select
	// GOMAXPROCS.
	BuildWorkers int
}

// normalized returns a validated copy with defaults applied.
func (c Config) normalized() (Config, error) {
	if c.Scorer == nil {
		c.Scorer = engine.New(nil)
	}
	if c.NameWeight < 0 || c.StructWeight < 0 {
		return c, fmt.Errorf("matching: negative weight (name=%v struct=%v)", c.NameWeight, c.StructWeight)
	}
	total := c.NameWeight + c.StructWeight
	if total == 0 {
		return c, fmt.Errorf("matching: both weights zero")
	}
	c.NameWeight /= total
	c.StructWeight /= total
	if c.MaxDepthStretch < 1 {
		c.MaxDepthStretch = 3
	}
	return c, nil
}

// DefaultConfig returns the configuration used by all experiments
// unless stated otherwise: default name metric, 0.7/0.3 name/structure
// blend, depth stretch 3.
func DefaultConfig() Config {
	return Config{NameWeight: 0.7, StructWeight: 0.3, MaxDepthStretch: 3}
}

// Problem is one schema matching problem Q: a personal schema matched
// against a repository under a fixed objective configuration. The
// constructor precomputes the per-(personal element, repository
// element) name costs through the configured engine.Scorer so that
// every matcher draws node-pair scores from one shared source;
// exhaustive search then runs on table lookups. With a memoized scorer
// shared across problems (engine.Memo), repeated names — and repeated
// problem builds under different objective weights — cost one metric
// evaluation in total.
type Problem struct {
	Personal *xmlschema.Schema
	Repo     *xmlschema.Repository

	cfg Config
	// nameCost[schemaName][p*stride+r] = 1 - sim(name_p, name_r),
	// p = personal element ID, r = repository element ID.
	nameCost map[string][]float64
	// edgeCost[d] = structural penalty of stretching one personal edge
	// across d repository levels (1 ≤ d ≤ MaxDepthStretch).
	edgeCost []float64
	m        int // personal schema size
	edges    int // number of personal parent-child edges (= m-1)
	parent   []int
}

// NewProblem validates the configuration and precomputes cost tables.
func NewProblem(personal *xmlschema.Schema, repo *xmlschema.Repository, cfg Config) (*Problem, error) {
	if personal == nil || personal.Len() == 0 {
		return nil, fmt.Errorf("matching: empty personal schema")
	}
	if repo == nil {
		return nil, fmt.Errorf("matching: nil repository")
	}
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	p := &Problem{
		Personal: personal,
		Repo:     repo,
		cfg:      ncfg,
		nameCost: make(map[string][]float64, repo.Len()),
		m:        personal.Len(),
	}
	p.edges = p.m - 1
	p.parent = make([]int, p.m)
	for _, e := range personal.Elements() {
		if e.Parent() != nil {
			p.parent[e.ID()] = e.Parent().ID()
		} else {
			p.parent[e.ID()] = -1
		}
	}
	// Edge penalty: a direct parent-child image costs 0; every extra
	// level of stretch costs more, asymptotically 1: 1 - 1/d.
	p.edgeCost = make([]float64, ncfg.MaxDepthStretch+1)
	for d := 1; d <= ncfg.MaxDepthStretch; d++ {
		p.edgeCost[d] = 1 - 1/float64(d)
	}
	// Build the per-schema name-cost tables through the scoring engine,
	// fanning schemas out over a worker pool. Each worker writes a
	// distinct schema's table; the only shared state is the scorer,
	// which is concurrency-safe by contract.
	personalNames := make([]string, p.m)
	for _, pe := range personal.Elements() {
		personalNames[pe.ID()] = pe.Name
	}
	schemas := repo.Schemas()
	tables := make([][]float64, len(schemas))
	buildTable := func(si int) {
		s := schemas[si]
		names := make([]string, s.Len())
		for _, re := range s.Elements() {
			names[re.ID()] = re.Name
		}
		mx := engine.BuildMatrix(personalNames, names, ncfg.Scorer, 1)
		table := mx.Values()
		for i, sim := range table {
			table[i] = 1 - sim
		}
		tables[si] = table
	}
	engine.ForEach(len(schemas), ncfg.BuildWorkers, buildTable)
	for si, s := range schemas {
		p.nameCost[s.Name] = tables[si]
	}
	return p, nil
}

// Rebase returns a new Problem for the same personal schema and
// configuration over repo, reusing the cost table of every schema
// shared (pointer-identical under its name) with the problem's current
// repository and building tables only for schemas new to or changed in
// repo. With copy-on-write repository snapshots this makes a
// single-schema repository update cost one schema's table build instead
// of a full NewProblem. The receiver is not modified and stays valid
// for in-flight searches against the old repository.
func (p *Problem) Rebase(repo *xmlschema.Repository) (*Problem, error) {
	if repo == nil {
		return nil, fmt.Errorf("matching: nil repository")
	}
	np := &Problem{
		Personal: p.Personal,
		Repo:     repo,
		cfg:      p.cfg,
		nameCost: make(map[string][]float64, repo.Len()),
		edgeCost: p.edgeCost,
		m:        p.m,
		edges:    p.edges,
		parent:   p.parent,
	}
	personalNames := make([]string, p.m)
	for _, pe := range p.Personal.Elements() {
		personalNames[pe.ID()] = pe.Name
	}
	schemas := repo.Schemas()
	// Changed schemas fan out over the same worker pool NewProblem
	// uses; unchanged ones transfer their (immutable) tables directly.
	var changed []int
	for si, s := range schemas {
		if p.Repo.Schema(s.Name) == s {
			np.nameCost[s.Name] = p.nameCost[s.Name]
		} else {
			changed = append(changed, si)
		}
	}
	tables := make([][]float64, len(changed))
	engine.ForEach(len(changed), p.cfg.BuildWorkers, func(ci int) {
		s := schemas[changed[ci]]
		names := make([]string, s.Len())
		for _, re := range s.Elements() {
			names[re.ID()] = re.Name
		}
		mx := engine.BuildMatrix(personalNames, names, p.cfg.Scorer, 1)
		table := mx.Values()
		for i, sim := range table {
			table[i] = 1 - sim
		}
		tables[ci] = table
	})
	for ci, si := range changed {
		np.nameCost[schemas[si].Name] = tables[ci]
	}
	return np, nil
}

// Scorer returns the scoring engine the problem's cost tables were
// built from — the shared source matchers and clusterers should reuse.
func (p *Problem) Scorer() engine.Scorer { return p.cfg.Scorer }

// Config returns the problem's normalized configuration.
func (p *Problem) Config() Config { return p.cfg }

// M returns the personal schema size.
func (p *Problem) M() int { return p.m }

// ParentOf returns the pre-order ID of the parent of personal element
// id, or -1 for the root.
func (p *Problem) ParentOf(id int) int { return p.parent[id] }

// NameCost returns the normalized name dissimilarity contribution of
// assigning personal element pid to element rid of schema s: the raw
// cost divided by m and weighted.
func (p *Problem) NameCost(s *xmlschema.Schema, pid, rid int) float64 {
	return p.cfg.NameWeight * p.nameCost[s.Name][pid*s.Len()+rid] / float64(p.m)
}

// EdgeCost returns the weighted structural contribution of one personal
// edge whose images are d levels apart (1 ≤ d ≤ MaxDepthStretch).
// Out-of-range d yields +Inf semantics via a value above any threshold.
func (p *Problem) EdgeCost(d int) float64 {
	if d < 1 || d > p.cfg.MaxDepthStretch {
		return 2 // outside SS; above any normalized ∆
	}
	if p.edges == 0 {
		return 0
	}
	return p.cfg.StructWeight * p.edgeCost[d] / float64(p.edges)
}

// Score computes ∆(mapping) from scratch. Matchers accumulate the same
// contributions incrementally during search; Score is the reference
// implementation used by tests to verify matcher-reported scores.
func (p *Problem) Score(m Mapping) (float64, error) {
	s := p.Repo.Schema(m.Schema)
	if s == nil {
		return 0, fmt.Errorf("matching: mapping into unknown schema %q", m.Schema)
	}
	if len(m.Targets) != p.m {
		return 0, fmt.Errorf("matching: mapping has %d targets, want %d", len(m.Targets), p.m)
	}
	total := 0.0
	for pid, rid := range m.Targets {
		if s.ByID(rid) == nil {
			return 0, fmt.Errorf("matching: target %d not in schema %q", rid, m.Schema)
		}
		total += p.NameCost(s, pid, rid)
		if par := p.parent[pid]; par >= 0 {
			child := s.ByID(rid)
			parentImg := s.ByID(m.Targets[par])
			if !child.HasAncestor(parentImg) {
				return 0, fmt.Errorf("matching: mapping violates ancestry for personal element %d", pid)
			}
			total += p.EdgeCost(child.Depth() - parentImg.Depth())
		}
	}
	return total, nil
}

// Valid reports whether m lies in the search space SS: targets in one
// known schema, injective, ancestry preserved within the depth stretch.
func (p *Problem) Valid(m Mapping) bool {
	s := p.Repo.Schema(m.Schema)
	if s == nil || len(m.Targets) != p.m {
		return false
	}
	used := make(map[int]bool, p.m)
	for pid, rid := range m.Targets {
		e := s.ByID(rid)
		if e == nil || used[rid] {
			return false
		}
		used[rid] = true
		if par := p.parent[pid]; par >= 0 {
			pe := s.ByID(m.Targets[par])
			if pe == nil || !e.HasAncestor(pe) {
				return false
			}
			if d := e.Depth() - pe.Depth(); d < 1 || d > p.cfg.MaxDepthStretch {
				return false
			}
		}
	}
	return true
}

// SearchSpaceSize counts the mappings in SS by running the exhaustive
// enumeration with an infinite threshold and counting instead of
// collecting. It is exponential in the worst case; intended for the
// small problems of the experiments.
func (p *Problem) SearchSpaceSize() int {
	n := 0
	for _, s := range p.Repo.Schemas() {
		Enumerate(p, s, 2, nil, func(Mapping, float64) { n++ })
	}
	return n
}
