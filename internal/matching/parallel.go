package matching

import (
	"runtime"
	"sync"

	"repro/internal/xmlschema"
)

// ParallelExhaustive is the exhaustive system S1 with the per-schema
// enumeration fanned out over worker goroutines. It produces exactly
// the same answer set as Exhaustive (the per-schema enumerations are
// independent and NewAnswerSet orders deterministically); only the
// wall-clock changes. Workers defaults to GOMAXPROCS when ≤ 0.
//
// The workers read the Problem's scorer-built cost tables; when the
// problem was built over a shared engine.Memo, its per-shard locks let
// this matcher, the cluster index, and repeated improvement runs grow
// one cache without serializing on a single lock.
type ParallelExhaustive struct {
	// Workers bounds the number of concurrent schema enumerations.
	Workers int
}

// Name implements Matcher.
func (p ParallelExhaustive) Name() string { return "exhaustive-parallel" }

// Match implements Matcher.
func (p ParallelExhaustive) Match(prob *Problem, delta float64) (*AnswerSet, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	schemas := prob.Repo.Schemas()
	if workers > len(schemas) {
		workers = len(schemas)
	}
	if workers <= 1 {
		return Exhaustive{}.Match(prob, delta)
	}

	jobs := make(chan *xmlschema.Schema)
	var mu sync.Mutex
	var answers []Answer
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Collect locally, merge once per schema batch to keep the
			// critical section short.
			var local []Answer
			for s := range jobs {
				Enumerate(prob, s, delta, nil, func(m Mapping, score float64) {
					local = append(local, Answer{Mapping: m, Score: score})
				})
			}
			mu.Lock()
			answers = append(answers, local...)
			mu.Unlock()
		}()
	}
	for _, s := range schemas {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return NewAnswerSet(answers), nil
}
