package matching

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/xmlschema"
)

// ParallelExhaustive is the exhaustive system S1 with the per-schema
// enumeration fanned out over worker goroutines. It produces exactly
// the same answer set as Exhaustive (the per-schema enumerations are
// independent and NewAnswerSet orders deterministically); only the
// wall-clock changes. Workers defaults to GOMAXPROCS when ≤ 0.
//
// The workers read the Problem's scorer-built cost tables; when the
// problem was built over a shared engine.Memo, its per-shard locks let
// this matcher, the cluster index, and repeated improvement runs grow
// one cache without serializing on a single lock.
type ParallelExhaustive struct {
	// Workers bounds the number of concurrent schema enumerations.
	Workers int
}

// Name implements Matcher: "parallel", or "parallel:N" when a worker
// bound is set.
func (p ParallelExhaustive) Name() string {
	if p.Workers > 0 {
		return fmt.Sprintf("parallel:%d", p.Workers)
	}
	return "parallel"
}

// Match implements Matcher.
func (p ParallelExhaustive) Match(prob *Problem, delta float64) (*AnswerSet, error) {
	return p.MatchContext(context.Background(), prob, delta)
}

// MatchContext implements Matcher: on cancellation the job feed stops,
// every worker unwinds its enumeration at the next periodic check, and
// the call returns ctx.Err() once all workers have exited — no worker
// goroutine outlives the call.
func (p ParallelExhaustive) MatchContext(ctx context.Context, prob *Problem, delta float64) (*AnswerSet, error) {
	set, _, err := p.MatchStatsContext(ctx, prob, delta)
	return set, err
}

// MatchStatsContext implements StatsMatcher, summing the search work
// across workers.
func (p ParallelExhaustive) MatchStatsContext(ctx context.Context, prob *Problem, delta float64) (*AnswerSet, SearchStats, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	schemas := prob.Repo.Schemas()
	if workers > len(schemas) {
		workers = len(schemas)
	}
	if workers <= 1 {
		return Exhaustive{}.MatchStatsContext(ctx, prob, delta)
	}

	jobs := make(chan *xmlschema.Schema)
	done := ctx.Done()
	var mu sync.Mutex
	var answers []Answer
	var total SearchStats
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Collect locally, merge once per schema batch to keep the
			// critical section short.
			var local []Answer
			var localStats SearchStats
			for s := range jobs {
				st, err := EnumerateContext(ctx, prob, s, delta, nil, func(m Mapping, score float64) {
					local = append(local, Answer{Mapping: m, Score: score})
				})
				localStats.Add(st)
				if err != nil {
					// Cancelled: drain remaining jobs so the feeder
					// never blocks, without enumerating them.
					for range jobs {
					}
					break
				}
			}
			mu.Lock()
			answers = append(answers, local...)
			total.Add(localStats)
			mu.Unlock()
		}()
	}
feed:
	for _, s := range schemas {
		select {
		case jobs <- s:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	return NewAnswerSet(answers), total, nil
}
