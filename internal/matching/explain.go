package matching

import (
	"fmt"
	"strings"
)

// Explanation breaks a mapping's objective score ∆ into its
// per-element contributions, so a user (or a test) can see exactly why
// a mapping ranks where it does — the transparency a matcher needs to
// be debuggable.
type Explanation struct {
	Mapping Mapping
	// PerElement holds one entry per personal element, in ID order.
	PerElement []ElementCost
	// Total is the sum of all contributions (= the mapping's score).
	Total float64
}

// ElementCost is one personal element's contribution to ∆.
type ElementCost struct {
	// PersonalName and TargetName are the matched element names.
	PersonalName, TargetName string
	// NameCost is the weighted, normalized name dissimilarity part.
	NameCost float64
	// EdgeCost is the weighted structural part of the edge to the
	// parent image (0 for the root).
	EdgeCost float64
	// Stretch is the number of repository levels between this target
	// and its parent's target (0 for the root).
	Stretch int
}

// Explain computes the cost breakdown of a mapping. It returns an
// error when the mapping is not in the search space.
func (p *Problem) Explain(m Mapping) (*Explanation, error) {
	if !p.Valid(m) {
		return nil, fmt.Errorf("matching: cannot explain mapping outside the search space: %s", m.Key())
	}
	s := p.Repo.Schema(m.Schema)
	ex := &Explanation{Mapping: m, PerElement: make([]ElementCost, p.m)}
	for pid, rid := range m.Targets {
		ec := ElementCost{
			PersonalName: p.Personal.ByID(pid).Name,
			TargetName:   s.ByID(rid).Name,
			NameCost:     p.NameCost(s, pid, rid),
		}
		if par := p.parent[pid]; par >= 0 {
			child := s.ByID(rid)
			parentImg := s.ByID(m.Targets[par])
			ec.Stretch = child.Depth() - parentImg.Depth()
			ec.EdgeCost = p.EdgeCost(ec.Stretch)
		}
		ex.Total += ec.NameCost + ec.EdgeCost
		ex.PerElement[pid] = ec
	}
	return ex, nil
}

// String renders the explanation as an aligned breakdown.
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mapping %s  ∆=%.4f\n", ex.Mapping.Key(), ex.Total)
	for _, ec := range ex.PerElement {
		fmt.Fprintf(&b, "  %-16s → %-20s name=%.4f", ec.PersonalName, ec.TargetName, ec.NameCost)
		if ec.Stretch > 0 {
			fmt.Fprintf(&b, " edge=%.4f (stretch %d)", ec.EdgeCost, ec.Stretch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
