package matching

import (
	"testing"

	"repro/internal/xmlschema"
)

// rebaseFixture builds the matching_test fixture's problem plus a
// snapshot over its repository, so tests can derive mutated snapshots
// with structural sharing.
func rebaseFixture(t *testing.T) (*Problem, *xmlschema.Snapshot) {
	t.Helper()
	p := fixture(t)
	snap, err := xmlschema.NewSnapshot(p.Repo)
	if err != nil {
		t.Fatal(err)
	}
	return p, snap
}

// freshEqual asserts that a rebased problem answers identically to a
// problem built from scratch over the same repository.
func freshEqual(t *testing.T, rebased *Problem, repo *xmlschema.Repository) {
	t.Helper()
	fresh, err := NewProblem(rebased.Personal, repo, rebased.cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Exhaustive{}.Match(rebased, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exhaustive{}.Match(fresh, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("rebased answers %d, fresh %d", a.Len(), b.Len())
	}
	if err := a.SubsetOf(b); err != nil {
		t.Fatalf("rebased answers diverge from fresh build: %v", err)
	}
}

func TestProblemRebaseSharesUnchangedTables(t *testing.T) {
	p, snap := rebaseFixture(t)
	s3, err := xmlschema.NewSchema("s3",
		xmlschema.NewElement("people").Add(
			xmlschema.NewElement("person").Add(
				xmlschema.NewElement("name"),
				xmlschema.NewElement("phone"),
			),
		))
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Add(s3)
	if err != nil {
		t.Fatal(err)
	}
	np, err := p.Rebase(next.Repository())
	if err != nil {
		t.Fatal(err)
	}
	// The untouched schemas transfer their cost tables by reference.
	for _, name := range []string{"s1", "s2"} {
		if len(np.nameCost[name]) == 0 || &np.nameCost[name][0] != &p.nameCost[name][0] {
			t.Errorf("schema %q cost table rebuilt instead of shared", name)
		}
	}
	if len(np.nameCost["s3"]) == 0 {
		t.Fatal("added schema has no cost table")
	}
	if p.Repo.Schema("s3") != nil {
		t.Fatal("Rebase mutated the old problem's repository")
	}
	freshEqual(t, np, next.Repository())
}

func TestProblemRebaseReplaceAndRemove(t *testing.T) {
	p, snap := rebaseFixture(t)
	// Replace s1 with a variant (same name, different content) and
	// remove s2.
	s1b, err := xmlschema.NewSchema("s1",
		xmlschema.NewElement("clients").Add(
			xmlschema.NewElement("client").Add(
				xmlschema.NewElement("clientname"),
				xmlschema.NewElement("phone"),
			),
		))
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Replace(s1b)
	if err != nil {
		t.Fatal(err)
	}
	next, err = next.Remove("s2")
	if err != nil {
		t.Fatal(err)
	}
	np, err := p.Rebase(next.Repository())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := np.nameCost["s2"]; ok {
		t.Error("removed schema's cost table survived Rebase")
	}
	if len(np.nameCost["s1"]) != p.m*s1b.Len() {
		t.Errorf("replaced schema table has %d entries, want %d", len(np.nameCost["s1"]), p.m*s1b.Len())
	}
	freshEqual(t, np, next.Repository())

	// The old problem still scores against the old repository.
	old, err := Exhaustive{}.Match(p, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() == 0 {
		t.Error("old problem unusable after Rebase")
	}

	if _, err := p.Rebase(nil); err == nil {
		t.Error("Rebase(nil) should error")
	}
}
