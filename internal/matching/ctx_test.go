package matching_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/matching"
	"repro/internal/synth"
)

func ctxTestProblem(t *testing.T) *matching.Problem {
	t.Helper()
	cfg := synth.DefaultConfig(9)
	cfg.NumSchemas = 40
	sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(sc.Personal, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// TestEnumerateContextCancelMidSearch cancels from inside the yield
// callback: the enumeration must unwind at the next periodic check and
// return ctx.Err(), never running to completion.
func TestEnumerateContextCancelMidSearch(t *testing.T) {
	prob := ctxTestProblem(t)
	full, _, err := matching.Exhaustive{}.MatchWithStats(prob, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() == 0 {
		t.Fatal("corpus yields no answers — test needs a non-trivial search")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	var sawErr error
	for _, s := range prob.Repo.Schemas() {
		_, err := matching.EnumerateContext(ctx, prob, s, 0.6, nil, func(matching.Mapping, float64) {
			yields++
			cancel()
		})
		if err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", sawErr)
	}
	if yields >= full.Len() {
		t.Errorf("cancellation yielded all %d answers — search never stopped early", yields)
	}
}

// TestMatchContextPreCancelled: every matcher entry point returns
// immediately on an already-cancelled context.
func TestMatchContextPreCancelled(t *testing.T) {
	prob := ctxTestProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []matching.Matcher{matching.Exhaustive{}, matching.ParallelExhaustive{}, matching.ParallelExhaustive{Workers: 2}} {
		set, err := m.MatchContext(ctx, prob, 0.6)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", m.Name(), err)
		}
		if set != nil {
			t.Errorf("%s: cancelled match returned answers", m.Name())
		}
	}
}

// TestParallelCancellationJoinsWorkers: cancelling a parallel match
// mid-search returns promptly and leaves no worker goroutines behind.
func TestParallelCancellationJoinsWorkers(t *testing.T) {
	prob := ctxTestProblem(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := matching.ParallelExhaustive{Workers: 4}.MatchContext(ctx, prob, 0.6)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// err == nil is possible if the search beat the 2ms cancel; the
	// goroutine check below is the invariant either way.
	if elapsed > 2*time.Second {
		t.Errorf("parallel cancellation took %s", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d vs %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMatchContextBackgroundParity: under a background context the
// ctx-aware path returns exactly what Match returns — the periodic
// checks must not perturb the enumeration.
func TestMatchContextBackgroundParity(t *testing.T) {
	prob := ctxTestProblem(t)
	for _, m := range []matching.Matcher{matching.Exhaustive{}, matching.ParallelExhaustive{Workers: 3}} {
		plain, err := m.Match(prob, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := m.MatchContext(context.Background(), prob, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Len() != withCtx.Len() {
			t.Fatalf("%s: %d vs %d answers", m.Name(), plain.Len(), withCtx.Len())
		}
		pa, ca := plain.All(), withCtx.All()
		for i := range pa {
			if !pa[i].Mapping.Equal(ca[i].Mapping) || pa[i].Score != ca[i].Score {
				t.Fatalf("%s: rank %d differs", m.Name(), i)
			}
		}
	}
}
