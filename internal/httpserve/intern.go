package httpserve

import (
	"sync"

	"repro/internal/lru"
	"repro/internal/xmlschema"
)

// interner deduplicates decoded personal schemas: structurally
// identical wire schemas resolve to one *xmlschema.Schema instance, so
// repeated wire queries hit the per-personal session caches (cost
// tables, baseline answers) of the tenant services exactly as repeated
// in-process queries sharing a pointer do. Without it every HTTP
// request would build a fresh schema object and pay a full session
// build — the wire path would never be comparable to in-process.
//
// The map is LRU-bounded; an evicted schema simply costs its next
// request a session rebuild. Sharing one instance across tenants is
// safe: services key sessions per (service, pointer) and never mutate
// the personal schema.
type interner struct {
	mu sync.Mutex
	m  *lru.Map[string, *xmlschema.Schema]
}

func newInterner(size int) *interner {
	if size < 1 {
		size = DefaultInternSize
	}
	return &interner{m: lru.New[string, *xmlschema.Schema](size)}
}

// intern resolves the wire schema to its canonical instance, building
// and caching it on first sight. Build errors are not cached — they
// are cheap to recompute and an entry would only shadow the LRU.
func (in *interner) intern(ws *Schema) (*xmlschema.Schema, error) {
	key := ws.key()
	in.mu.Lock()
	if s, ok := in.m.Get(key); ok {
		in.mu.Unlock()
		return s, nil
	}
	in.mu.Unlock()
	s, err := ws.Build()
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	// A racing request may have built the same schema; keep the first
	// so both callers share one pointer.
	if prev, ok := in.m.Get(key); ok {
		in.mu.Unlock()
		return prev, nil
	}
	in.m.Put(key, s)
	in.mu.Unlock()
	return s, nil
}
