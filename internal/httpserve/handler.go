package httpserve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/xmlschema"
	"repro/match"
)

// Defaults of the handler limits; see Config.
const (
	DefaultMaxBodyBytes        = 1 << 20 // 1 MiB
	DefaultMaxPersonalElements = 512
	DefaultMaxBatchRequests    = 256
	DefaultMaxDeadline         = 2 * time.Minute
	DefaultInternSize          = 256
)

// DeadlineHeader carries the per-request deadline in integer
// milliseconds; see the package documentation.
const DeadlineHeader = "X-Match-Deadline-Ms"

// TraceHeader carries the trace identifier: inbound it forces a span
// trace under the given id; outbound it reports the id of the trace
// this request recorded (absent when the request was not traced).
const TraceHeader = "X-Match-Trace-Id"

// Config bundles the handler's policy knobs. The zero value serves an
// open (unauthenticated) endpoint with the default limits.
type Config struct {
	// Auth is the bearer-token table; nil serves unauthenticated.
	Auth *AuthConfig
	// MaxBodyBytes bounds every request body (≤ 0: 1 MiB). Larger
	// bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxPersonalElements bounds the personal schema size per request
	// (≤ 0: 512).
	MaxPersonalElements int
	// MaxBatchRequests bounds one batch (≤ 0: 256).
	MaxBatchRequests int
	// MaxDeadline caps client-requested deadlines (≤ 0: 2 minutes).
	MaxDeadline time.Duration
	// InternSize bounds the personal-schema interner (≤ 0: 256).
	InternSize int
	// Log, when non-nil, receives one structured access-log record per
	// request: method, path, route, status, bytes in, duration, and —
	// when present — trace id and tenant.
	Log *slog.Logger
	// Tracer, when non-nil, enables span tracing: sampled (or forced)
	// requests record a stage-granular span tree, the trace id is
	// returned in the TraceHeader response header, and finished traces
	// land in the tracer's rings, served by GET /debug/traces (admin
	// auth). A nil Tracer still serves /debug/traces but reports
	// tracing disabled.
	Tracer *obs.Tracer
	// StoreMetrics, when non-nil, is polled at every /metrics scrape
	// for the durable store's per-tenant state (matchd wires it when
	// running with -store-dir).
	StoreMetrics func() []StoreTenantMetrics
	// EnablePprof mounts net/http/pprof under /debug/pprof/, gated by
	// the same admin auth as the admin surface — with no admin tokens
	// configured the routes exist but always refuse. Off by default:
	// profiles expose operational internals.
	EnablePprof bool
}

// Handler serves the wire protocol over one match.Server. It is an
// http.Handler; create it with New and mount it as the root handler.
type Handler struct {
	srv    *match.Server
	cfg    Config
	mux    *http.ServeMux
	met    *metrics
	intern *interner
}

// New builds the handler stack over srv: routing, auth, deadlines,
// limits, metrics, and logging.
func New(srv *match.Server, cfg Config) *Handler {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxPersonalElements <= 0 {
		cfg.MaxPersonalElements = DefaultMaxPersonalElements
	}
	if cfg.MaxBatchRequests <= 0 {
		cfg.MaxBatchRequests = DefaultMaxBatchRequests
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = DefaultMaxDeadline
	}
	h := &Handler{
		srv:    srv,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		met:    newMetrics(),
		intern: newInterner(cfg.InternSize),
	}
	h.mux.HandleFunc("POST /v1/match/{tenant}", h.handleMatch)
	h.mux.HandleFunc("POST /v1/batch", h.handleBatch)
	h.mux.HandleFunc("GET /v1/tenants", h.handleTenants)
	h.mux.HandleFunc("GET /v1/tenants/{tenant}/stats", h.handleTenantStats)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("POST /admin/v1/tenants/{tenant}", h.handleAdminRegister)
	h.mux.HandleFunc("PUT /admin/v1/tenants/{tenant}", h.handleAdminUpdate)
	h.mux.HandleFunc("GET /debug/traces", h.adminOnly(h.handleTraces))
	if cfg.EnablePprof {
		h.mux.HandleFunc("GET /debug/pprof/", h.adminOnly(pprof.Index))
		h.mux.HandleFunc("GET /debug/pprof/cmdline", h.adminOnly(pprof.Cmdline))
		h.mux.HandleFunc("GET /debug/pprof/profile", h.adminOnly(pprof.Profile))
		h.mux.HandleFunc("GET /debug/pprof/symbol", h.adminOnly(pprof.Symbol))
		h.mux.HandleFunc("GET /debug/pprof/trace", h.adminOnly(pprof.Trace))
	}
	return h
}

// adminOnly wraps a handler behind the admin bearer-token check.
func (h *Handler) adminOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !h.authorizeAdmin(w, r) {
			return
		}
		next(w, r)
	}
}

// statusWriter records the response status and size for the access log
// and the request counters. It also carries the per-request trace
// state: the ServeMux clones the request, so handlers cannot hand data
// back through the request context — they record the tenant (and a
// late-started trace) onto this shared writer instead.
type statusWriter struct {
	http.ResponseWriter
	status int
	start  time.Time
	tenant string
	trace  *obs.Trace
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// routeLabel classifies the request path into the bounded label space
// of the request counters.
func routeLabel(path string) string {
	switch {
	case path == "/metrics":
		return "metrics"
	case path == "/healthz":
		return "healthz"
	case path == "/v1/batch":
		return "batch"
	case len(path) >= len("/v1/match/") && path[:len("/v1/match/")] == "/v1/match/":
		return "match"
	case len(path) >= len("/v1/tenants") && path[:len("/v1/tenants")] == "/v1/tenants":
		return "tenants"
	case len(path) >= len("/admin/") && path[:len("/admin/")] == "/admin/":
		return "admin"
	default:
		return "other"
	}
}

// ServeHTTP runs the outer middleware: in-flight gauge, panic
// containment, status recording, request counters, trace capture, and
// the structured access log.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.met.inFlight.Add(1)
	sw := &statusWriter{ResponseWriter: w, start: start}
	// Edge trace decision: an inbound trace id forces a trace under
	// that id; otherwise head sampling decides. (A body-level opt-in is
	// decided later by handleMatch, retroactively, onto sw.)
	if tr := h.cfg.Tracer; tr != nil {
		inbound := r.Header.Get(TraceHeader)
		if t := tr.Begin(inbound, "http_request", start, inbound != ""); t != nil {
			sw.trace = t
			root := t.Root()
			root.SetStr("method", r.Method)
			root.SetStr("route", routeLabel(r.URL.Path))
			w.Header().Set(TraceHeader, t.ID())
			r = r.WithContext(obs.ContextWith(r.Context(), root))
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			// A panicking handler must cost one 500, never the process.
			if sw.status == 0 {
				writeCode(sw, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("panic: %v", rec))
			}
		}
		d := time.Since(start)
		route := routeLabel(r.URL.Path)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		h.met.observe(route, sw.status, d)
		h.met.inFlight.Add(-1)
		if t := sw.trace; t != nil {
			root := t.Root()
			root.SetInt("status", int64(sw.status))
			if sw.tenant != "" {
				root.SetStr("tenant", sw.tenant)
			}
			h.cfg.Tracer.Capture(t, time.Now(), sw.status >= 500)
		}
		if h.cfg.Log != nil {
			attrs := make([]slog.Attr, 0, 8)
			attrs = append(attrs,
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes_in", r.ContentLength),
				slog.Duration("duration", d.Round(time.Microsecond)),
			)
			if sw.tenant != "" {
				attrs = append(attrs, slog.String("tenant", sw.tenant))
			}
			if sw.trace != nil {
				attrs = append(attrs, slog.String("trace_id", sw.trace.ID()))
			}
			h.cfg.Log.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
		}
	}()
	h.mux.ServeHTTP(sw, r)
}

// requestContext derives the request context: the client's deadline
// header (clamped to the configured maximum) becomes a context
// deadline the whole matching pipeline honors. ok=false means the
// header was malformed and the 400 has been written.
func (h *Handler) requestContext(w http.ResponseWriter, r *http.Request) (ctx context.Context, cancel context.CancelFunc, ok bool) {
	ctx = r.Context()
	raw := r.Header.Get(DeadlineHeader)
	if raw == "" {
		return ctx, func() {}, true
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		writeCode(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("invalid %s header %q: want a positive integer millisecond count", DeadlineHeader, raw))
		return nil, nil, false
	}
	d := time.Duration(ms) * time.Millisecond
	if d > h.cfg.MaxDeadline {
		d = h.cfg.MaxDeadline
	}
	ctx, cancel = context.WithTimeout(ctx, d)
	return ctx, cancel, true
}

// authorizeTenant enforces serving auth for one tenant; on failure the
// response has been written.
func (h *Handler) authorizeTenant(w http.ResponseWriter, r *http.Request, tenant string) bool {
	if !h.cfg.Auth.enabled() {
		return true
	}
	tok := bearerToken(r)
	if tok == "" {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeCode(w, http.StatusUnauthorized, CodeUnauthorized, "missing bearer token")
		return false
	}
	if !h.cfg.Auth.allowTenant(tok, tenant) {
		writeCode(w, http.StatusForbidden, CodeForbidden, fmt.Sprintf("token not authorized for tenant %q", tenant))
		return false
	}
	return true
}

// authorizeAdmin enforces admin auth; on failure the response has been
// written. With no admin tokens configured the admin surface is
// disabled outright.
func (h *Handler) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if h.cfg.Auth == nil || len(h.cfg.Auth.AdminTokens) == 0 {
		writeCode(w, http.StatusForbidden, CodeForbidden, "admin surface disabled: no admin tokens configured")
		return false
	}
	tok := bearerToken(r)
	if tok == "" {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeCode(w, http.StatusUnauthorized, CodeUnauthorized, "missing bearer token")
		return false
	}
	if !h.cfg.Auth.allowAdmin(tok) {
		writeCode(w, http.StatusForbidden, CodeForbidden, "token not authorized for admin")
		return false
	}
	return true
}

// handleMatch serves POST /v1/match/{tenant}.
func (h *Handler) handleMatch(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	sw, _ := w.(*statusWriter)
	if sw != nil {
		sw.tenant = tenant
	}
	if !h.authorizeTenant(w, r, tenant) {
		return
	}
	ctx, cancel, ok := h.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	wreq, err := DecodeMatchRequest(body, h.cfg.MaxPersonalElements)
	if err != nil {
		status, code := decodeStatus(err)
		writeCode(w, status, code, err.Error())
		return
	}
	if wreq.Trace && h.cfg.Tracer != nil && sw != nil && sw.trace == nil {
		// The opt-in rides the body, which is only decoded after the
		// edge timestamp: force-start the trace retroactively at the
		// edge instant, with the decode recorded as its first span.
		if t := h.cfg.Tracer.Begin("", "http_request", sw.start, true); t != nil {
			root := t.Root()
			root.SetStr("method", r.Method)
			root.SetStr("route", "match")
			root.Record("decode", sw.start, time.Now())
			sw.trace = t
			w.Header().Set(TraceHeader, t.ID())
			ctx = obs.ContextWith(ctx, root)
		}
	}
	personal, err := h.intern.intern(wreq.Personal)
	if err != nil {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("personal schema: %v", err))
		return
	}
	res, err := h.srv.Match(ctx, tenant, match.Request{
		Personal: personal,
		Delta:    wreq.Delta,
		Matcher:  wreq.Matcher,
		Limit:    wreq.Limit,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	h.met.observeResult(res)
	resp := buildResponse(res)
	if wreq.Trace && sw != nil && sw.trace != nil {
		// Inline export: the root span is still open and closes at the
		// export instant, so the wire trace stays coherent while the
		// capture at middleware exit records the full wall.
		resp.Trace = sw.trace.Export(time.Now())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/batch: the closed-loop MatchBatch path.
// Wire-invalid batches fail whole with 400; runtime failures are
// per-item, mirroring the in-process contract.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := h.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	wreq, err := DecodeBatchRequest(body, h.cfg.MaxPersonalElements, h.cfg.MaxBatchRequests)
	if err != nil {
		status, code := decodeStatus(err)
		writeCode(w, status, code, err.Error())
		return
	}
	// One auth check per distinct tenant: the token must cover every
	// tenant the batch names.
	if h.cfg.Auth.enabled() {
		tok := bearerToken(r)
		if tok == "" {
			w.Header().Set("WWW-Authenticate", "Bearer")
			writeCode(w, http.StatusUnauthorized, CodeUnauthorized, "missing bearer token")
			return
		}
		seen := make(map[string]bool)
		for _, it := range wreq.Requests {
			if seen[it.Tenant] {
				continue
			}
			seen[it.Tenant] = true
			if !h.cfg.Auth.allowTenant(tok, it.Tenant) {
				writeCode(w, http.StatusForbidden, CodeForbidden,
					fmt.Sprintf("token not authorized for tenant %q", it.Tenant))
				return
			}
		}
	}
	reqs := make([]match.BatchRequest, len(wreq.Requests))
	for i, it := range wreq.Requests {
		personal, err := h.intern.intern(it.Personal)
		if err != nil {
			writeCode(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("request %d: personal schema: %v", i, err))
			return
		}
		reqs[i] = match.BatchRequest{
			Tenant: it.Tenant,
			Request: match.Request{
				Personal: personal,
				Delta:    it.Delta,
				Matcher:  it.Matcher,
				Limit:    it.Limit,
			},
		}
	}
	results := h.srv.MatchBatch(ctx, reqs)
	out := BatchResponse{Results: make([]BatchResult, len(results))}
	for i, br := range results {
		if br.Err != nil {
			_, info := errorInfo(br.Err)
			out.Results[i] = BatchResult{Error: &info}
			continue
		}
		h.met.observeResult(br.Result)
		out.Results[i] = BatchResult{Response: buildResponse(br.Result)}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTenants serves GET /v1/tenants (admin: tenant names are
// topology).
func (h *Handler) handleTenants(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Auth != nil && !h.authorizeAdmin(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tenants []string `json:"tenants"`
	}{Tenants: h.srv.Tenants()})
}

// handleTenantStats serves GET /v1/tenants/{tenant}/stats.
func (h *Handler) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !h.authorizeTenant(w, r, tenant) {
		return
	}
	ts, err := h.srv.TenantStats(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TenantStatsResponse{
		Tenant:   ts.Tenant,
		Resident: ts.Resident,
		InFlight: ts.InFlight,
		Version:  ts.Version,
		Cache:    CacheStats{Hits: ts.Cache.Hits, Misses: ts.Cache.Misses, Entries: ts.Cache.Entries},
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = h.writeMetrics(w)
}

// handleTraces serves GET /debug/traces: the tracer's ring snapshot —
// recent and slow/errored traces with full span trees — behind admin
// auth (traces expose tenant names and matcher specs).
func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Tracer == nil {
		writeCode(w, http.StatusNotFound, CodeBadRequest, "tracing disabled: no tracer configured")
		return
	}
	writeJSON(w, http.StatusOK, h.cfg.Tracer.Snapshot())
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while
// draining or closed, so load balancers stop routing before the drain
// finishes.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if h.srv.Stats().Draining {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// readRepositoryBody decodes a repository XML body under the size
// limit.
func (h *Handler) readRepositoryBody(w http.ResponseWriter, r *http.Request) (*xmlschema.Repository, bool) {
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	repo, err := xmlschema.ReadRepository(body)
	if err != nil {
		status, code := decodeStatus(err)
		writeCode(w, status, code, err.Error())
		return nil, false
	}
	if repo.Len() == 0 {
		writeCode(w, http.StatusBadRequest, CodeBadRequest, "repository holds no schemas")
		return nil, false
	}
	return repo, true
}

// handleAdminRegister serves POST /admin/v1/tenants/{tenant}: register
// a new tenant from a repository XML body.
func (h *Handler) handleAdminRegister(w http.ResponseWriter, r *http.Request) {
	if !h.authorizeAdmin(w, r) {
		return
	}
	tenant := r.PathValue("tenant")
	repo, ok := h.readRepositoryBody(w, r)
	if !ok {
		return
	}
	if err := h.srv.AddTenant(tenant, repo); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, struct {
		Tenant  string `json:"tenant"`
		Schemas int    `json:"schemas"`
	}{Tenant: tenant, Schemas: repo.Len()})
}

// handleAdminUpdate serves PUT /admin/v1/tenants/{tenant}: atomically
// replace the tenant's repository with the body via UpdateTenant —
// requests admitted before the swap finish on the old snapshot,
// requests admitted after see the new one.
func (h *Handler) handleAdminUpdate(w http.ResponseWriter, r *http.Request) {
	if !h.authorizeAdmin(w, r) {
		return
	}
	tenant := r.PathValue("tenant")
	repo, ok := h.readRepositoryBody(w, r)
	if !ok {
		return
	}
	err := h.srv.UpdateTenantContext(r.Context(), tenant, func(cur *xmlschema.Snapshot) (*xmlschema.Snapshot, error) {
		return replaceAll(cur, repo)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	ts, err := h.srv.TenantStats(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tenant  string `json:"tenant"`
		Schemas int    `json:"schemas"`
		Version uint64 `json:"version"`
	}{Tenant: tenant, Schemas: repo.Len(), Version: ts.Version})
}

// replaceAll derives the snapshot holding exactly repo's schemas from
// cur: removals, replacements, and additions in one pass each, so
// unchanged schemas keep their identity (and the incremental index
// maintenance patches only what actually changed).
func replaceAll(cur *xmlschema.Snapshot, repo *xmlschema.Repository) (*xmlschema.Snapshot, error) {
	next := cur
	var gone []string
	for _, s := range cur.Schemas() {
		if repo.Schema(s.Name) == nil {
			gone = append(gone, s.Name)
		}
	}
	if len(gone) > 0 {
		var err error
		if next, err = next.Remove(gone...); err != nil {
			return nil, err
		}
	}
	var adds, reps []*xmlschema.Schema
	for _, s := range repo.Schemas() {
		if cur.Schema(s.Name) != nil {
			reps = append(reps, s)
		} else {
			adds = append(adds, s)
		}
	}
	if len(reps) > 0 {
		var err error
		if next, err = next.Replace(reps...); err != nil {
			return nil, err
		}
	}
	if len(adds) > 0 {
		var err error
		if next, err = next.Add(adds...); err != nil {
			return nil, err
		}
	}
	return next, nil
}
