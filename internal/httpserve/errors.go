package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/match"
)

// Error codes of the wire protocol.
const (
	CodeBadRequest       = "bad_request"
	CodeUnauthorized     = "unauthorized"
	CodeForbidden        = "forbidden"
	CodeUnknownTenant    = "unknown_tenant"
	CodeTenantExists     = "tenant_exists"
	CodeTooLarge         = "too_large"
	CodeOverloaded       = "overloaded"
	CodeServerClosed     = "server_closed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeInternal         = "internal"
)

// mapError translates one serving error into its HTTP status and wire
// code — the typed contract clients branch on.
func mapError(err error) (status int, code string) {
	switch {
	case errors.Is(err, match.ErrOverloaded):
		return http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, match.ErrUnknownTenant):
		return http.StatusNotFound, CodeUnknownTenant
	case errors.Is(err, match.ErrTenantExists):
		return http.StatusConflict, CodeTenantExists
	case errors.Is(err, match.ErrServerClosed):
		return http.StatusServiceUnavailable, CodeServerClosed
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// errorInfo builds the wire error of one serving failure.
func errorInfo(err error) (int, ErrorInfo) {
	status, code := mapError(err)
	return status, ErrorInfo{Code: code, Message: err.Error()}
}

// writeJSON writes v with the given status; encoding failures are
// ignored (the connection is gone).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps err and writes the error body, adding the backoff
// hint on admission rejections.
func writeError(w http.ResponseWriter, err error) {
	status, info := errorInfo(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorBody{Error: info})
}

// writeCode writes an error with an explicit status and code (the
// decode/auth paths, where the status is decided at the call site).
func writeCode(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: message}})
}

// decodeStatus classifies a body-decoding failure: oversized bodies
// (http.MaxBytesReader) are 413, everything else 400.
func decodeStatus(err error) (int, string) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge, CodeTooLarge
	}
	return http.StatusBadRequest, CodeBadRequest
}
