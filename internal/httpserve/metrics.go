package httpserve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/match"
)

// metrics aggregates the HTTP layer's own counters. Everything here is
// monotone over the handler's lifetime (the /metrics test depends on
// it); point-in-time server and tenant state is read fresh from
// match.Server at scrape time instead of being cached here.
type metrics struct {
	inFlight atomic.Int64

	mu       sync.Mutex
	requests map[routeCode]int64
	seconds  map[string]float64 // per route, cumulative request time

	answers  atomic.Int64
	searches atomic.Int64 // successfully served match requests

	shardedRequests atomic.Int64
	shardWallNs     atomic.Int64 // summed per-shard work
	shardCriticalNs atomic.Int64 // summed slowest-shard walls
	shardMergeNs    atomic.Int64

	candRequests       atomic.Int64
	candPairs          atomic.Int64
	candPruned         atomic.Int64
	candSchemasSkipped atomic.Int64

	// httpDur holds one request-duration histogram per route (created
	// on first use under mu); the stage histograms are fixed — they are
	// fed from every served result, sampled or not, so p99 per stage is
	// observable from a scrape alone.
	httpDur      map[string]*obs.Histogram
	queueWait    *obs.Histogram
	sessionBuild *obs.Histogram
	baselineWait *obs.Histogram
	searchDur    *obs.Histogram
	shardCrit    *obs.Histogram
	mergeDur     *obs.Histogram
}

// stageHistograms lists the per-stage duration histograms in their
// exposition order, keyed by the value of the stage label.
func (m *metrics) stageHistograms() []struct {
	Stage string
	H     *obs.Histogram
} {
	return []struct {
		Stage string
		H     *obs.Histogram
	}{
		{"queue_wait", m.queueWait},
		{"session_build", m.sessionBuild},
		{"baseline_wait", m.baselineWait},
		{"search", m.searchDur},
		{"shard_critical", m.shardCrit},
		{"merge", m.mergeDur},
	}
}

type routeCode struct {
	route string
	code  int
}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[routeCode]int64),
		seconds:      make(map[string]float64),
		httpDur:      make(map[string]*obs.Histogram),
		queueWait:    obs.NewHistogram(nil),
		sessionBuild: obs.NewHistogram(nil),
		baselineWait: obs.NewHistogram(nil),
		searchDur:    obs.NewHistogram(nil),
		shardCrit:    obs.NewHistogram(nil),
		mergeDur:     obs.NewHistogram(nil),
	}
}

// observe records one finished HTTP request.
func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[routeCode{route, code}]++
	m.seconds[route] += d.Seconds()
	h := m.httpDur[route]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.httpDur[route] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// observeResult folds one successful matching result into the
// aggregated engine telemetry and the per-stage latency histograms.
func (m *metrics) observeResult(res *match.Result) {
	m.searches.Add(1)
	m.answers.Add(int64(res.Stats.Answers))
	m.queueWait.Observe(res.Stats.QueueWait)
	m.sessionBuild.Observe(res.Stats.SessionBuild)
	m.searchDur.Observe(res.Stats.Wall)
	if res.Stats.BaselineWait > 0 {
		m.baselineWait.Observe(res.Stats.BaselineWait)
	}
	if ss := res.Stats.Sharded; ss != nil {
		m.shardedRequests.Add(1)
		m.shardWallNs.Add(int64(ss.SumShardWall()))
		m.shardCriticalNs.Add(int64(ss.MaxShardWall()))
		m.shardMergeNs.Add(int64(ss.Merge))
		m.shardCrit.Observe(ss.MaxShardWall())
		m.mergeDur.Observe(ss.Merge)
	}
	if cs := res.Stats.Candidates; cs != nil {
		m.candRequests.Add(1)
		m.candPairs.Add(cs.Pairs)
		m.candPruned.Add(cs.Pruned)
		m.candSchemasSkipped.Add(int64(cs.SkippedSchemas))
	}
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promWriter accumulates one exposition; families are written with
// HELP/TYPE headers and deterministically ordered series so scrapes
// diff cleanly.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) family(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// %g keeps integers integral and renders large counters exactly.
	_, p.err = fmt.Fprintf(p.w, "%s%s %g\n", name, labels, v)
}

// histogram emits one series of a histogram family: the cumulative
// le-buckets (including +Inf, which equals _count), the _sum, and the
// _count, with the le label appended after any series labels.
func (p *promWriter) histogram(name, labels string, s obs.HistogramSnapshot) {
	le := func(bound string) string {
		if labels == "" {
			return fmt.Sprintf(`le="%s"`, bound)
		}
		return fmt.Sprintf(`%s,le="%s"`, labels, bound)
	}
	for _, b := range s.Buckets {
		p.sample(name+"_bucket", le(fmt.Sprintf("%g", b.UpperBound)), float64(b.CumulativeCount))
	}
	p.sample(name+"_bucket", le("+Inf"), float64(s.Count))
	p.sample(name+"_sum", labels, s.Sum)
	p.sample(name+"_count", labels, float64(s.Count))
}

// writeMetrics renders the full exposition: HTTP-layer counters, the
// server's admission snapshot, and per-tenant serving state.
func (h *Handler) writeMetrics(w io.Writer) error {
	p := &promWriter{w: w}
	m := h.met

	p.family("matchd_http_in_flight", "HTTP requests currently being served.", "gauge")
	p.sample("matchd_http_in_flight", "", float64(m.inFlight.Load()))

	m.mu.Lock()
	reqKeys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	reqVals := make([]int64, len(reqKeys))
	for i, k := range reqKeys {
		reqVals[i] = m.requests[k]
	}
	secRoutes := make([]string, 0, len(m.seconds))
	for r := range m.seconds {
		secRoutes = append(secRoutes, r)
	}
	sort.Strings(secRoutes)
	secVals := make([]float64, len(secRoutes))
	for i, r := range secRoutes {
		secVals[i] = m.seconds[r]
	}
	m.mu.Unlock()

	durRoutes := make([]string, 0, len(m.httpDur))
	durHists := make([]*obs.Histogram, 0, len(m.httpDur))
	m.mu.Lock()
	for r := range m.httpDur {
		durRoutes = append(durRoutes, r)
	}
	sort.Strings(durRoutes)
	for _, r := range durRoutes {
		durHists = append(durHists, m.httpDur[r])
	}
	m.mu.Unlock()

	p.family("matchd_http_requests_total", "HTTP requests served, by route and status code.", "counter")
	for i, k := range reqKeys {
		p.sample("matchd_http_requests_total",
			fmt.Sprintf(`route="%s",code="%d"`, escapeLabel(k.route), k.code), float64(reqVals[i]))
	}
	p.family("matchd_http_request_seconds_total", "Cumulative request handling time, by route.", "counter")
	for i, r := range secRoutes {
		p.sample("matchd_http_request_seconds_total",
			fmt.Sprintf(`route="%s"`, escapeLabel(r)), secVals[i])
	}
	p.family("matchd_http_request_duration_seconds", "End-to-end request latency distribution, by route.", "histogram")
	for i, r := range durRoutes {
		p.histogram("matchd_http_request_duration_seconds",
			fmt.Sprintf(`route="%s"`, escapeLabel(r)), durHists[i].Snapshot())
	}
	p.family("matchd_stage_duration_seconds", "Per-stage latency distribution of served matching requests.", "histogram")
	for _, sh := range m.stageHistograms() {
		p.histogram("matchd_stage_duration_seconds",
			fmt.Sprintf(`stage="%s"`, sh.Stage), sh.H.Snapshot())
	}

	p.family("matchd_match_requests_total", "Successfully served matching requests (single and batch items).", "counter")
	p.sample("matchd_match_requests_total", "", float64(m.searches.Load()))
	p.family("matchd_answers_total", "Answers returned across all served requests, before Limit truncation.", "counter")
	p.sample("matchd_answers_total", "", float64(m.answers.Load()))

	p.family("matchd_sharded_requests_total", "Served requests that ran scatter-gather sharded search.", "counter")
	p.sample("matchd_sharded_requests_total", "", float64(m.shardedRequests.Load()))
	p.family("matchd_shard_work_seconds_total", "Summed per-shard search work of sharded requests.", "counter")
	p.sample("matchd_shard_work_seconds_total", "", float64(m.shardWallNs.Load())/1e9)
	p.family("matchd_shard_critical_seconds_total", "Summed slowest-shard walls (the scatter critical path).", "counter")
	p.sample("matchd_shard_critical_seconds_total", "", float64(m.shardCriticalNs.Load())/1e9)
	p.family("matchd_shard_merge_seconds_total", "Summed answer-set merge time of sharded requests.", "counter")
	p.sample("matchd_shard_merge_seconds_total", "", float64(m.shardMergeNs.Load())/1e9)

	p.family("matchd_candidate_requests_total", "Served requests answered from candidate-filtered cost tables.", "counter")
	p.sample("matchd_candidate_requests_total", "", float64(m.candRequests.Load()))
	p.family("matchd_candidate_pairs_total", "Cost-table pairs considered by candidate-filtered requests.", "counter")
	p.sample("matchd_candidate_pairs_total", "", float64(m.candPairs.Load()))
	p.family("matchd_candidate_pruned_total", "Cost-table pairs served as provable bounds instead of scores.", "counter")
	p.sample("matchd_candidate_pruned_total", "", float64(m.candPruned.Load()))
	p.family("matchd_candidate_schemas_skipped_total", "Repository schemas proven answer-free before any metric evaluation.", "counter")
	p.sample("matchd_candidate_schemas_skipped_total", "", float64(m.candSchemasSkipped.Load()))

	st := h.srv.Stats()
	p.family("matchd_server_workers", "Worker pool size.", "gauge")
	p.sample("matchd_server_workers", "", float64(st.Workers))
	p.family("matchd_server_queue_depth", "Admission queue bound.", "gauge")
	p.sample("matchd_server_queue_depth", "", float64(st.QueueDepth))
	p.family("matchd_server_resident_tenants", "Tenants whose service is currently built.", "gauge")
	p.sample("matchd_server_resident_tenants", "", float64(st.ResidentTenants))
	p.family("matchd_server_inflight_groups", "Admitted request groups not yet completed.", "gauge")
	p.sample("matchd_server_inflight_groups", "", float64(st.InFlight))
	p.family("matchd_server_draining", "1 while the server drains (or is closed), 0 while serving.", "gauge")
	draining := 0.0
	if st.Draining {
		draining = 1.0
	}
	p.sample("matchd_server_draining", "", draining)
	p.family("matchd_server_accepted_total", "Request groups admitted past admission control.", "counter")
	p.sample("matchd_server_accepted_total", "", float64(st.Accepted))
	p.family("matchd_server_completed_total", "Request groups fully executed.", "counter")
	p.sample("matchd_server_completed_total", "", float64(st.Completed))
	p.family("matchd_server_overloaded_total", "Typed admission rejections delivered to callers.", "counter")
	p.sample("matchd_server_overloaded_total", "", float64(st.Overloaded))
	p.family("matchd_server_queue_wait_seconds_total", "Cumulative admission-to-execution wait across executed request groups.", "counter")
	p.sample("matchd_server_queue_wait_seconds_total", "", st.QueueWaitTotal.Seconds())
	p.family("matchd_server_queue_wait_max_seconds", "Worst single request-group admission-to-execution wait since boot.", "gauge")
	p.sample("matchd_server_queue_wait_max_seconds", "", st.QueueWaitMax.Seconds())

	if tr := h.cfg.Tracer; tr != nil {
		snap := tr.Snapshot()
		p.family("matchd_traces_sampled_total", "Span traces begun (head-sampled or forced).", "counter")
		p.sample("matchd_traces_sampled_total", "", float64(snap.Sampled))
		p.family("matchd_traces_captured_total", "Finished span traces filed into the capture rings.", "counter")
		p.sample("matchd_traces_captured_total", "", float64(snap.Captured))
	}

	// Go runtime telemetry: overload investigations need the runtime
	// pressure next to the serving counters.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.family("go_goroutines", "Goroutines currently live.", "gauge")
	p.sample("go_goroutines", "", float64(runtime.NumGoroutine()))
	p.family("go_memstats_heap_alloc_bytes", "Heap bytes allocated and still in use.", "gauge")
	p.sample("go_memstats_heap_alloc_bytes", "", float64(ms.HeapAlloc))
	p.family("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge")
	p.sample("go_memstats_heap_sys_bytes", "", float64(ms.HeapSys))
	p.family("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter")
	p.sample("go_gc_pause_seconds_total", "", float64(ms.PauseTotalNs)/1e9)
	p.family("go_gc_cycles_total", "Completed GC cycles.", "counter")
	p.sample("go_gc_cycles_total", "", float64(ms.NumGC))
	p.family("go_gomaxprocs", "The effective GOMAXPROCS.", "gauge")
	p.sample("go_gomaxprocs", "", float64(runtime.GOMAXPROCS(0)))

	tenants := h.srv.Tenants()
	p.family("matchd_tenant_resident", "1 when the tenant's service is built and resident.", "gauge")
	type tenantRow struct {
		name string
		st   match.TenantStats
	}
	rows := make([]tenantRow, 0, len(tenants))
	for _, name := range tenants {
		ts, err := h.srv.TenantStats(name)
		if err != nil {
			continue // unregistered between listing and stats: skip
		}
		rows = append(rows, tenantRow{name, ts})
	}
	for _, r := range rows {
		v := 0.0
		if r.st.Resident {
			v = 1.0
		}
		p.sample("matchd_tenant_resident", fmt.Sprintf(`tenant="%s"`, escapeLabel(r.name)), v)
	}
	p.family("matchd_tenant_inflight_groups", "The tenant's admitted request groups not yet completed.", "gauge")
	for _, r := range rows {
		p.sample("matchd_tenant_inflight_groups", fmt.Sprintf(`tenant="%s"`, escapeLabel(r.name)), float64(r.st.InFlight))
	}
	p.family("matchd_tenant_version", "The tenant's current repository snapshot version (0 when not resident).", "gauge")
	for _, r := range rows {
		p.sample("matchd_tenant_version", fmt.Sprintf(`tenant="%s"`, escapeLabel(r.name)), float64(r.st.Version))
	}
	p.family("matchd_tenant_cache_hits_total", "Scoring-engine cache hits of the tenant's resident service (resets on eviction).", "counter")
	for _, r := range rows {
		p.sample("matchd_tenant_cache_hits_total", fmt.Sprintf(`tenant="%s"`, escapeLabel(r.name)), float64(r.st.Cache.Hits))
	}
	p.family("matchd_tenant_cache_misses_total", "Scoring-engine cache misses of the tenant's resident service (resets on eviction).", "counter")
	for _, r := range rows {
		p.sample("matchd_tenant_cache_misses_total", fmt.Sprintf(`tenant="%s"`, escapeLabel(r.name)), float64(r.st.Cache.Misses))
	}
	p.family("matchd_tenant_cache_entries", "Memoized scoring pairs held by the tenant's resident service.", "gauge")
	for _, r := range rows {
		p.sample("matchd_tenant_cache_entries", fmt.Sprintf(`tenant="%s"`, escapeLabel(r.name)), float64(r.st.Cache.Entries))
	}

	if h.cfg.StoreMetrics != nil {
		srows := h.cfg.StoreMetrics()
		label := func(s StoreTenantMetrics) string {
			return fmt.Sprintf(`tenant="%s"`, escapeLabel(s.Tenant))
		}
		p.family("matchd_store_size_bytes", "Committed bytes of the tenant's durable log file.", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_size_bytes", label(s), float64(s.SizeBytes))
		}
		p.family("matchd_store_log_records", "Committed records in the tenant's durable log.", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_log_records", label(s), float64(s.LogRecords))
		}
		p.family("matchd_store_diff_records", "Diff records appended since the tenant's last base record (compaction resets it).", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_diff_records", label(s), float64(s.DiffRecords))
		}
		p.family("matchd_store_tail_version", "Last durably committed snapshot version of the tenant.", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_tail_version", label(s), float64(s.TailVersion))
		}
		p.family("matchd_store_last_compaction_timestamp_seconds", "Unix time the tenant's log was last rewritten from a full base (0: unknown).", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_last_compaction_timestamp_seconds", label(s), float64(s.LastCompactionUnix))
		}
		p.family("matchd_store_gap_heals_total", "Version-gap appends healed by a full base rewrite since boot.", "counter")
		for _, s := range srows {
			p.sample("matchd_store_gap_heals_total", label(s), float64(s.GapHeals))
		}
		p.family("matchd_store_recovery_seconds", "Wall time spent recovering the tenant from its log at boot (0: not recovered this boot).", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_recovery_seconds", label(s), s.RecoverySeconds)
		}
		p.family("matchd_store_recovered_version", "Snapshot version the tenant was recovered to at boot (0: not recovered this boot).", "gauge")
		for _, s := range srows {
			p.sample("matchd_store_recovered_version", label(s), float64(s.RecoveredVersion))
		}
		p.family("matchd_store_index_restored", "1 when the tenant's cluster index was rehydrated from the log and passed the parity self-check.", "gauge")
		for _, s := range srows {
			v := 0.0
			if s.IndexRestored {
				v = 1.0
			}
			p.sample("matchd_store_index_restored", label(s), v)
		}
	}
	return p.err
}

// StoreTenantMetrics is one tenant's durable-store state as exposed on
// /metrics; producers fill what they know and leave the rest zero.
type StoreTenantMetrics struct {
	// Tenant is the tenant name (the metric label).
	Tenant string
	// SizeBytes, LogRecords, DiffRecords, and TailVersion mirror the
	// store's committed log shape.
	SizeBytes   int64
	LogRecords  int
	DiffRecords int
	TailVersion uint64
	// LastCompactionUnix is the unix-seconds stamp of the last full
	// base rewrite.
	LastCompactionUnix int64
	// GapHeals counts appends healed by a full base rewrite.
	GapHeals int64
	// RecoverySeconds and RecoveredVersion describe this boot's
	// recovery of the tenant (zero when the tenant was not recovered).
	RecoverySeconds  float64
	RecoveredVersion uint64
	// IndexRestored reports that the cluster index was rehydrated from
	// persisted state (parity-checked) instead of re-clustered.
	IndexRestored bool
}
