package httpserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/xmlschema"
	"repro/match"
)

// Version is the wire-protocol version; every serving route lives
// under this path prefix.
const Version = "v1"

// Element is the wire form of one schema-tree node.
type Element struct {
	Name     string    `json:"name"`
	Type     string    `json:"type,omitempty"`
	Children []Element `json:"children,omitempty"`
}

// Schema is the wire form of a personal schema: a named tree.
type Schema struct {
	Name string  `json:"name"`
	Root Element `json:"root"`
}

// MatchRequest is the body of POST /v1/match/{tenant}.
type MatchRequest struct {
	// Personal is the personal (query) schema. Required.
	Personal *Schema `json:"personal"`
	// Delta is the answer threshold δ (finite, ≥ 0).
	Delta float64 `json:"delta"`
	// Matcher is a registry spec; empty selects the tenant's baseline.
	Matcher string `json:"matcher,omitempty"`
	// Limit truncates the returned answers (0 = all).
	Limit int `json:"limit,omitempty"`
	// Trace opts this request into span tracing: when the server has a
	// tracer, the request is traced regardless of sampling and the
	// response inlines the span breakdown (MatchResponse.Trace).
	Trace bool `json:"trace,omitempty"`
}

// BatchItem is one element of a batch: a tenant plus its request.
type BatchItem struct {
	Tenant string `json:"tenant"`
	MatchRequest
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// Answer is the wire form of one ranked mapping.
type Answer struct {
	// Schema names the repository schema the mapping points into;
	// Targets[i] is the repository element ID assigned to personal
	// element i (pre-order IDs).
	Schema  string  `json:"schema"`
	Targets []int   `json:"targets"`
	Score   float64 `json:"score"`
}

// SearchStats mirrors matching.SearchStats.
type SearchStats struct {
	Candidates int `json:"candidates"`
	Pruned     int `json:"pruned"`
	Yielded    int `json:"yielded"`
}

// CacheStats mirrors engine.Stats.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// ShardStat is one shard's slice of a scatter-gather request.
type ShardStat struct {
	WallNs  int64       `json:"wall_ns"`
	Answers int         `json:"answers"`
	Search  SearchStats `json:"search"`
}

// ShardStats mirrors shard.Stats: the fan-out of one sharded request.
type ShardStats struct {
	Shards   int         `json:"shards"`
	Searched int         `json:"searched"`
	PerShard []ShardStat `json:"per_shard,omitempty"`
	MergeNs  int64       `json:"merge_ns"`
	WallNs   int64       `json:"wall_ns"`
}

// CandidateStats mirrors matching.CandidateStats: how much of the cost
// table the candidate filter proved irrelevant.
type CandidateStats struct {
	Delta          float64 `json:"delta"`
	Floor          float64 `json:"floor"`
	Pairs          int64   `json:"pairs"`
	Pruned         int64   `json:"pruned"`
	SkippedSchemas int     `json:"skipped_schemas"`
}

// Stats is the wire form of match.Stats.
type Stats struct {
	Matcher    string          `json:"matcher"`
	WallNs     int64           `json:"wall_ns"`
	Search     SearchStats     `json:"search"`
	Cache      CacheStats      `json:"cache"`
	Sharded    *ShardStats     `json:"sharded,omitempty"`
	Candidates *CandidateStats `json:"candidates,omitempty"`
	Answers    int             `json:"answers"`
	// QueueWaitNs, SessionBuildNs, and BaselineWaitNs are the request's
	// stage walls outside the search itself (see match.Stats).
	QueueWaitNs    int64 `json:"queue_wait_ns,omitempty"`
	SessionBuildNs int64 `json:"session_build_ns,omitempty"`
	BaselineWaitNs int64 `json:"baseline_wait_ns,omitempty"`
}

// BoundsPoint is the wire form of one bounds.Point.
type BoundsPoint struct {
	Delta   float64 `json:"delta"`
	Ratio   float64 `json:"ratio"`
	BestP   float64 `json:"best_p"`
	BestR   float64 `json:"best_r"`
	WorstP  float64 `json:"worst_p"`
	WorstR  float64 `json:"worst_r"`
	RandomP float64 `json:"random_p"`
	RandomR float64 `json:"random_r"`
}

// MatchResponse is the body of a successful match.
type MatchResponse struct {
	Answers []Answer      `json:"answers"`
	Stats   Stats         `json:"stats"`
	Bounds  []BoundsPoint `json:"bounds,omitempty"`
	// Trace is the inline span breakdown, present only when the request
	// set MatchRequest.Trace and the server traces.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// ErrorInfo is the machine-readable error of a failed request.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody wraps ErrorInfo as the body of every error response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// BatchResult is one element of a batch response; exactly one of
// Response and Error is set.
type BatchResult struct {
	Response *MatchResponse `json:"response,omitempty"`
	Error    *ErrorInfo     `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/batch, results in input order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// TenantStatsResponse is the body of GET /v1/tenants/{tenant}/stats.
type TenantStatsResponse struct {
	Tenant   string     `json:"tenant"`
	Resident bool       `json:"resident"`
	InFlight int        `json:"in_flight"`
	Version  uint64     `json:"version"`
	Cache    CacheStats `json:"cache"`
}

// decodeStrict decodes exactly one JSON value from r into v, rejecting
// unknown fields and trailing data.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// DecodeMatchRequest decodes and validates one MatchRequest from r.
// maxElements bounds the personal schema size (≤ 0 selects
// DefaultMaxPersonalElements). It never panics on malformed input; any
// rejection maps to 400 at the handler.
func DecodeMatchRequest(r io.Reader, maxElements int) (*MatchRequest, error) {
	var req MatchRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.validate(maxElements); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeBatchRequest decodes and validates a BatchRequest from r.
// maxRequests bounds the batch size (≤ 0 selects
// DefaultMaxBatchRequests).
func DecodeBatchRequest(r io.Reader, maxElements, maxRequests int) (*BatchRequest, error) {
	var req BatchRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if maxRequests <= 0 {
		maxRequests = DefaultMaxBatchRequests
	}
	if len(req.Requests) == 0 {
		return nil, errors.New("empty batch")
	}
	if len(req.Requests) > maxRequests {
		return nil, fmt.Errorf("batch of %d requests exceeds the limit of %d", len(req.Requests), maxRequests)
	}
	for i := range req.Requests {
		it := &req.Requests[i]
		if it.Tenant == "" {
			return nil, fmt.Errorf("request %d: empty tenant", i)
		}
		if err := it.validate(maxElements); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	return &req, nil
}

// validate enforces the wire contract on one request: a present,
// bounded personal schema, a finite non-negative δ, a non-negative
// limit, and (when given) a parseable matcher spec.
func (req *MatchRequest) validate(maxElements int) error {
	if maxElements <= 0 {
		maxElements = DefaultMaxPersonalElements
	}
	if req.Personal == nil {
		return errors.New("missing personal schema")
	}
	if req.Personal.Name == "" {
		return errors.New("personal schema has no name")
	}
	if n := req.Personal.Root.count(maxElements + 1); n > maxElements {
		return fmt.Errorf("personal schema exceeds %d elements", maxElements)
	}
	if math.IsNaN(req.Delta) || math.IsInf(req.Delta, 0) {
		return errors.New("delta must be finite")
	}
	if req.Delta < 0 {
		return errors.New("delta must be non-negative")
	}
	if req.Limit < 0 {
		return errors.New("limit must be non-negative")
	}
	if req.Matcher != "" {
		if _, err := match.Parse(req.Matcher); err != nil {
			return fmt.Errorf("matcher: %w", err)
		}
	}
	return nil
}

// count returns the subtree size, stopping early once it exceeds
// limit — a hostile deeply-or-widely nested body costs at most limit
// visits.
func (e *Element) count(limit int) int {
	n := 1
	for i := range e.Children {
		if n >= limit {
			return n
		}
		n += e.Children[i].count(limit - n)
	}
	return n
}

// Build converts the wire schema into a validated xmlschema.Schema.
func (ws *Schema) Build() (*xmlschema.Schema, error) {
	return xmlschema.NewSchema(ws.Name, toElement(&ws.Root))
}

func toElement(we *Element) *xmlschema.Element {
	e := &xmlschema.Element{Name: we.Name, Type: we.Type}
	for i := range we.Children {
		e.Children = append(e.Children, toElement(&we.Children[i]))
	}
	return e
}

// WireSchema converts a schema to its wire form (the client side of
// Build).
func WireSchema(s *xmlschema.Schema) *Schema {
	return &Schema{Name: s.Name, Root: *fromElement(s.Root())}
}

func fromElement(e *xmlschema.Element) *Element {
	we := &Element{Name: e.Name, Type: e.Type}
	for _, c := range e.Children {
		we.Children = append(we.Children, *fromElement(c))
	}
	return we
}

// key returns an unambiguous canonical encoding of the wire schema,
// the interner's identity: length-prefixed names and types in
// pre-order with explicit child grouping.
func (ws *Schema) key() string {
	var b strings.Builder
	writeToken(&b, ws.Name)
	writeElementKey(&b, &ws.Root)
	return b.String()
}

func writeToken(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func writeElementKey(b *strings.Builder, e *Element) {
	writeToken(b, e.Name)
	writeToken(b, e.Type)
	b.WriteByte('(')
	for i := range e.Children {
		writeElementKey(b, &e.Children[i])
	}
	b.WriteByte(')')
}

// buildResponse converts one in-process Result to its wire form.
func buildResponse(res *match.Result) *MatchResponse {
	out := &MatchResponse{
		Answers: make([]Answer, len(res.Answers)),
		Stats:   wireStats(res.Stats),
		Bounds:  wireBounds(res.Bounds),
	}
	for i, a := range res.Answers {
		out.Answers[i] = wireAnswer(a)
	}
	return out
}

func wireAnswer(a matching.Answer) Answer {
	targets := make([]int, len(a.Mapping.Targets))
	copy(targets, a.Mapping.Targets)
	return Answer{Schema: a.Mapping.Schema, Targets: targets, Score: a.Score}
}

func wireStats(st match.Stats) Stats {
	out := Stats{
		Matcher:        st.Matcher,
		WallNs:         st.Wall.Nanoseconds(),
		Search:         SearchStats(st.Search),
		Cache:          CacheStats{Hits: st.Cache.Hits, Misses: st.Cache.Misses, Entries: st.Cache.Entries},
		Answers:        st.Answers,
		QueueWaitNs:    st.QueueWait.Nanoseconds(),
		SessionBuildNs: st.SessionBuild.Nanoseconds(),
		BaselineWaitNs: st.BaselineWait.Nanoseconds(),
	}
	if ss := st.Sharded; ss != nil {
		ws := &ShardStats{
			Shards:   ss.Shards,
			Searched: ss.Searched,
			MergeNs:  ss.Merge.Nanoseconds(),
			WallNs:   ss.Wall.Nanoseconds(),
		}
		for _, ps := range ss.PerShard {
			ws.PerShard = append(ws.PerShard, ShardStat{
				WallNs:  ps.Wall.Nanoseconds(),
				Answers: ps.Answers,
				Search:  SearchStats(ps.Search),
			})
		}
		out.Sharded = ws
	}
	if cs := st.Candidates; cs != nil {
		out.Candidates = &CandidateStats{
			Delta:          cs.Delta,
			Floor:          cs.Floor,
			Pairs:          cs.Pairs,
			Pruned:         cs.Pruned,
			SkippedSchemas: cs.SkippedSchemas,
		}
	}
	return out
}

func wireBounds(c bounds.Curve) []BoundsPoint {
	if len(c) == 0 {
		return nil
	}
	out := make([]BoundsPoint, len(c))
	for i, p := range c {
		out[i] = BoundsPoint{
			Delta: p.Delta, Ratio: p.Ratio,
			BestP: p.BestP, BestR: p.BestR,
			WorstP: p.WorstP, WorstR: p.WorstR,
			RandomP: p.RandomP, RandomR: p.RandomR,
		}
	}
	return out
}
