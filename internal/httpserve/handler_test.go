package httpserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/synth"
	"repro/internal/xmlschema"
	"repro/match"
)

// testFleet generates a small deterministic tenant fleet.
func testFleet(t *testing.T, seed uint64, tenants, personals, schemas int) []*synth.Tenant {
	t.Helper()
	cfg := synth.DefaultConfig(0)
	cfg.NumSchemas = schemas
	out, err := synth.GenerateTenants(seed, tenants, personals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// newTestServer stands up a match.Server with the fleet registered and
// an httptest server around its handler.
func newTestServer(t *testing.T, fleet []*synth.Tenant, cfg Config, opts ...match.ServerOption) (*match.Server, *httptest.Server) {
	t.Helper()
	srv := match.NewServer(opts...)
	t.Cleanup(srv.Close)
	for _, tn := range fleet {
		if err := srv.AddTenant(tn.Name, tn.Repo()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(srv, cfg))
	t.Cleanup(ts.Close)
	return srv, ts
}

func wireRequest(p *xmlschema.Schema, delta float64, matcher string) *MatchRequest {
	return &MatchRequest{Personal: WireSchema(p), Delta: delta, Matcher: matcher}
}

// waitGoroutines polls until the goroutine count drops back to at most
// want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitInflight polls until the server reports exactly n admitted
// in-flight groups.
func waitInflight(t *testing.T, srv *match.Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InFlight != n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight groups stuck at %d, want %d", srv.Stats().InFlight, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMatchWireParity proves the wire path returns exactly what the
// in-process call returns: same answers, same scores, same stats
// totals — serialization must not change semantics.
func TestMatchWireParity(t *testing.T) {
	fleet := testFleet(t, 11, 2, 2, 16)
	srv, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()

	ctx := context.Background()
	for _, tn := range fleet {
		for _, p := range tn.Personals() {
			for _, spec := range []string{"exhaustive", "beam:8", "topk:0.05"} {
				want, err := srv.Match(ctx, tn.Name, match.Request{Personal: p, Delta: 0.4, Matcher: spec})
				if err != nil {
					t.Fatal(err)
				}
				got, err := cl.Match(ctx, tn.Name, wireRequest(p, 0.4, spec))
				if err != nil {
					t.Fatalf("%s/%s %s: %v", tn.Name, p.Name, spec, err)
				}
				if len(got.Answers) != len(want.Answers) {
					t.Fatalf("%s %s: %d answers over the wire, %d in process", tn.Name, spec, len(got.Answers), len(want.Answers))
				}
				for i, a := range got.Answers {
					w := want.Answers[i]
					if a.Schema != w.Mapping.Schema || a.Score != w.Score {
						t.Fatalf("answer %d: got (%s, %g), want (%s, %g)", i, a.Schema, a.Score, w.Mapping.Schema, w.Score)
					}
					if len(a.Targets) != len(w.Mapping.Targets) {
						t.Fatalf("answer %d: %d targets, want %d", i, len(a.Targets), len(w.Mapping.Targets))
					}
				}
				if got.Stats.Answers != want.Stats.Answers || got.Stats.Matcher != want.Stats.Matcher {
					t.Fatalf("stats diverge: got (%d, %s), want (%d, %s)",
						got.Stats.Answers, got.Stats.Matcher, want.Stats.Answers, want.Stats.Matcher)
				}
				if len(got.Bounds) != len(want.Bounds) {
					t.Fatalf("bounds: %d points over the wire, %d in process", len(got.Bounds), len(want.Bounds))
				}
			}
		}
	}
}

// TestBatchWire exercises POST /v1/batch: results in order, runtime
// failures per item, wire-invalid batches rejected whole.
func TestBatchWire(t *testing.T) {
	fleet := testFleet(t, 12, 2, 1, 12)
	_, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()

	p := fleet[0].Personals()[0]
	req := &BatchRequest{Requests: []BatchItem{
		{Tenant: fleet[0].Name, MatchRequest: *wireRequest(p, 0.4, "beam:8")},
		{Tenant: "no-such-tenant", MatchRequest: *wireRequest(p, 0.4, "")},
		{Tenant: fleet[1].Name, MatchRequest: *wireRequest(p, 0.4, "topk:0.05")},
	}}
	ctx := context.Background()
	resp, err := cl.MatchBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Response == nil || resp.Results[0].Error != nil {
		t.Fatalf("item 0 should succeed: %+v", resp.Results[0].Error)
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeUnknownTenant {
		t.Fatalf("item 1 should fail with %s: %+v", CodeUnknownTenant, resp.Results[1])
	}
	if resp.Results[2].Response == nil {
		t.Fatalf("item 2 should succeed: %+v", resp.Results[2].Error)
	}

	// A wire-invalid item rejects the whole batch with 400.
	bad := &BatchRequest{Requests: []BatchItem{
		{Tenant: fleet[0].Name, MatchRequest: *wireRequest(p, 0.4, "")},
		{Tenant: fleet[0].Name, MatchRequest: MatchRequest{Personal: WireSchema(p), Delta: -1}},
	}}
	if _, err := cl.MatchBatch(ctx, bad); err == nil {
		t.Fatal("negative delta in a batch item should reject the batch")
	} else if ae := new(APIError); !asAPIErr(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
}

func asAPIErr(err error, target **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*target = ae
	}
	return ok
}

// TestAuth covers the token matrix: open serving without tokens,
// 401/403 on missing and wrong tokens, tenant-scoped versus global
// tokens, the batch check covering every named tenant, and the admin
// surface staying shut without admin tokens.
func TestAuth(t *testing.T) {
	fleet := testFleet(t, 13, 2, 1, 10)
	auth := &AuthConfig{
		TenantTokens: map[string][]string{fleet[0].Name: {"t0-token"}},
		GlobalTokens: []string{"global-token"},
		AdminTokens:  []string{"admin-token"},
	}
	_, ts := newTestServer(t, fleet, Config{Auth: auth})
	p := fleet[0].Personals()[0]
	ctx := context.Background()

	check := func(t *testing.T, cl *Client, tenant string, wantStatus int) {
		t.Helper()
		_, err := cl.Match(ctx, tenant, wireRequest(p, 0.4, ""))
		if wantStatus == 0 {
			if err != nil {
				t.Fatalf("want success, got %v", err)
			}
			return
		}
		var ae *APIError
		if !asAPIErr(err, &ae) || ae.StatusCode != wantStatus {
			t.Fatalf("want status %d, got %v", wantStatus, err)
		}
	}

	noTok := NewClient(ts.URL, "")
	defer noTok.Close()
	t0 := NewClient(ts.URL, "t0-token")
	defer t0.Close()
	global := NewClient(ts.URL, "global-token")
	defer global.Close()
	admin := NewClient(ts.URL, "admin-token")
	defer admin.Close()

	check(t, noTok, fleet[0].Name, http.StatusUnauthorized)
	check(t, t0, fleet[0].Name, 0)
	check(t, t0, fleet[1].Name, http.StatusForbidden)
	check(t, global, fleet[0].Name, 0)
	check(t, global, fleet[1].Name, 0)
	// The admin token is not a serving token.
	check(t, admin, fleet[0].Name, http.StatusForbidden)

	// A batch must be authorized for every tenant it names.
	batch := &BatchRequest{Requests: []BatchItem{
		{Tenant: fleet[0].Name, MatchRequest: *wireRequest(p, 0.4, "")},
		{Tenant: fleet[1].Name, MatchRequest: *wireRequest(p, 0.4, "")},
	}}
	if _, err := t0.MatchBatch(ctx, batch); err == nil {
		t.Fatal("tenant-scoped token should not cover a foreign tenant in a batch")
	}
	if _, err := global.MatchBatch(ctx, batch); err != nil {
		t.Fatalf("global token should cover the batch: %v", err)
	}

	// Tenant listing is admin-only.
	if _, err := t0.Tenants(ctx); err == nil {
		t.Fatal("tenant listing should require the admin token")
	}
	names, err := admin.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(fleet) {
		t.Fatalf("got %d tenants, want %d", len(names), len(fleet))
	}

	// /metrics and /healthz stay open.
	if _, err := noTok.Metrics(ctx); err != nil {
		t.Fatalf("metrics should be open: %v", err)
	}
	if ok, err := noTok.Health(ctx); err != nil || !ok {
		t.Fatalf("healthz should be open and healthy: %v %v", ok, err)
	}
}

// TestAdminDisabledWithoutTokens: with no admin tokens configured the
// admin surface refuses everything, even on an otherwise open server.
func TestAdminDisabledWithoutTokens(t *testing.T) {
	fleet := testFleet(t, 14, 1, 1, 8)
	_, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "whatever")
	defer cl.Close()
	err := cl.RegisterTenant(context.Background(), "new", fleet[0].Repo())
	var ae *APIError
	if !asAPIErr(err, &ae) || ae.StatusCode != http.StatusForbidden {
		t.Fatalf("want 403 on the disabled admin surface, got %v", err)
	}
}

// TestAdminRegisterUpdate drives the tenant lifecycle over the wire:
// register from XML, match against it, conflict on re-register,
// atomic repository replacement bumping the snapshot version.
func TestAdminRegisterUpdate(t *testing.T) {
	fleet := testFleet(t, 15, 2, 1, 10)
	auth := &AuthConfig{GlobalTokens: []string{"g"}, AdminTokens: []string{"a"}}
	_, ts := newTestServer(t, fleet[:1], Config{Auth: auth})
	admin := NewClient(ts.URL, "a")
	defer admin.Close()
	serve := NewClient(ts.URL, "g")
	defer serve.Close()
	ctx := context.Background()

	newcomer := fleet[1]
	if err := admin.RegisterTenant(ctx, newcomer.Name, newcomer.Repo()); err != nil {
		t.Fatal(err)
	}
	res, err := serve.Match(ctx, newcomer.Name, wireRequest(newcomer.Personals()[0], 0.4, "beam:8"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Answers == 0 {
		t.Fatal("freshly registered tenant returned no answers at delta 0.4")
	}

	err = admin.RegisterTenant(ctx, newcomer.Name, newcomer.Repo())
	var ae *APIError
	if !asAPIErr(err, &ae) || ae.StatusCode != http.StatusConflict || ae.Code != CodeTenantExists {
		t.Fatalf("want 409 %s on duplicate register, got %v", CodeTenantExists, err)
	}

	before, err := serve.TenantStats(ctx, newcomer.Name)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the repository with a shrunken copy: every schema but the
	// first survives.
	shrunk := xmlschema.NewRepository()
	for _, s := range newcomer.Repo().Schemas()[1:] {
		if err := shrunk.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := admin.UpdateTenant(ctx, newcomer.Name, shrunk); err != nil {
		t.Fatal(err)
	}
	after, err := serve.TenantStats(ctx, newcomer.Name)
	if err != nil {
		t.Fatal(err)
	}
	if after.Version <= before.Version {
		t.Fatalf("snapshot version did not advance: %d -> %d", before.Version, after.Version)
	}

	// Updating an unknown tenant is 404.
	err = admin.UpdateTenant(ctx, "ghost", shrunk)
	if !asAPIErr(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404 updating unknown tenant, got %v", err)
	}
}

// TestUnknownTenant maps match.ErrUnknownTenant to 404 with the typed
// code.
func TestUnknownTenant(t *testing.T) {
	fleet := testFleet(t, 16, 1, 1, 8)
	_, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()
	_, err := cl.Match(context.Background(), "ghost", wireRequest(fleet[0].Personals()[0], 0.4, ""))
	var ae *APIError
	if !asAPIErr(err, &ae) || ae.StatusCode != http.StatusNotFound || ae.Code != CodeUnknownTenant {
		t.Fatalf("want 404 %s, got %v", CodeUnknownTenant, err)
	}
}

// TestOverloaded fills a one-slot queue behind a blocked worker and
// asserts the next request is rejected with 429 and a Retry-After
// hint.
func TestOverloaded(t *testing.T) {
	fleet := testFleet(t, 17, 1, 1, 8)
	srv := match.NewServer(match.WithWorkers(1), match.WithQueueDepth(1))
	defer srv.Close()
	gate := make(chan struct{})
	var once sync.Once
	tn := fleet[0]
	if err := srv.Register(tn.Name, func() (*match.Service, error) {
		once.Do(func() { <-gate })
		return match.NewService(tn.Repo())
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(srv, Config{}))
	defer ts.Close()
	cl := NewClient(ts.URL, "")
	defer cl.Close()

	before := runtime.NumGoroutine()
	ctx := context.Background()
	p := tn.Personals()[0]
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Match(ctx, tn.Name, wireRequest(p, 0.4, ""))
		}(i)
		waitInflight(t, srv, int64(i+1))
	}
	// Worker blocked, queue full: the next request must bounce.
	_, err := cl.Match(ctx, tn.Name, wireRequest(p, 0.4, ""))
	if !IsOverloaded(err) {
		t.Fatalf("want a 429 admission rejection, got %v", err)
	}
	var ae *APIError
	asAPIErr(err, &ae)
	if ae.Code != CodeOverloaded {
		t.Fatalf("want code %s, got %s", CodeOverloaded, ae.Code)
	}
	// Retry-After travels on the raw response; check it directly.
	resp, rerr := http.Post(ts.URL+"/v1/match/"+tn.Name, "application/json",
		strings.NewReader(mustBody(t, wireRequest(p, 0.4, ""))))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	resp.Body.Close()

	close(gate)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("admitted request %d failed: %v", i, e)
		}
	}
	// Idle pooled connections carry goroutines; drop them before the
	// leak check so it sees only what the server side holds.
	cl.Close()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutines(t, before+4)
}

// TestDeadline: a blocked tenant and a short wire deadline produce 504
// without leaking the admitted work.
func TestDeadline(t *testing.T) {
	fleet := testFleet(t, 18, 1, 1, 8)
	srv := match.NewServer(match.WithWorkers(1))
	defer srv.Close()
	gate := make(chan struct{})
	var once sync.Once
	tn := fleet[0]
	if err := srv.Register(tn.Name, func() (*match.Service, error) {
		once.Do(func() { <-gate })
		return match.NewService(tn.Repo())
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(srv, Config{}))
	defer ts.Close()
	cl := NewClient(ts.URL, "")
	defer cl.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := cl.Match(ctx, tn.Name, wireRequest(tn.Personals()[0], 0.4, ""))
	var ae *APIError
	if asAPIErr(err, &ae) {
		if ae.StatusCode != http.StatusGatewayTimeout || ae.Code != CodeDeadlineExceeded {
			t.Fatalf("want 504 %s, got %v", CodeDeadlineExceeded, err)
		}
	} else if err == nil {
		t.Fatal("blocked tenant served within a 100ms deadline")
	}
	// The client may also observe its own context expiry as a transport
	// error; either way the server must unwind cleanly.
	close(gate)
	cl.Close()
	waitGoroutines(t, before+4)

	// With the gate open the same request now succeeds.
	res, err := cl.Match(context.Background(), tn.Name, wireRequest(tn.Personals()[0], 0.4, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Answers == 0 {
		t.Fatal("unblocked request returned no answers")
	}

	// A malformed deadline header is 400, not a hang.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/match/"+tn.Name,
		strings.NewReader(mustBody(t, wireRequest(tn.Personals()[0], 0.4, ""))))
	req.Header.Set(DeadlineHeader, "soon")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline header: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDrainServing: after Drain the serving surface answers 503 with
// the typed server_closed code and /healthz flips to draining.
func TestDrainServing(t *testing.T) {
	fleet := testFleet(t, 19, 1, 1, 8)
	srv, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()
	ctx := context.Background()

	if ok, _ := cl.Health(ctx); !ok {
		t.Fatal("server should report healthy before drain")
	}
	if _, err := cl.Match(ctx, fleet[0].Name, wireRequest(fleet[0].Personals()[0], 0.4, "")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ok, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("healthz should report draining after Drain")
	}
	_, err = cl.Match(ctx, fleet[0].Name, wireRequest(fleet[0].Personals()[0], 0.4, ""))
	var ae *APIError
	if !asAPIErr(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable || ae.Code != CodeServerClosed {
		t.Fatalf("want 503 %s after drain, got %v", CodeServerClosed, err)
	}
}

// TestBadRequests walks the 4xx decode surface.
func TestBadRequests(t *testing.T) {
	fleet := testFleet(t, 20, 1, 1, 8)
	_, ts := newTestServer(t, fleet, Config{MaxBodyBytes: 4096, MaxPersonalElements: 4})
	tn := fleet[0].Name
	post := func(t *testing.T, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/match/"+tn, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb ErrorBody
		code := ""
		if decErr := decodeStrict(resp.Body, &eb); decErr == nil {
			code = eb.Error.Code
		}
		return resp.StatusCode, code
	}

	small := `{"personal":{"name":"p","root":{"name":"r"}},"delta":0.4}`
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{"personal":`, http.StatusBadRequest},
		{"unknown field", `{"personal":{"name":"p","root":{"name":"r"}},"delta":0.4,"zeta":1}`, http.StatusBadRequest},
		{"trailing data", small + ` {"again":true}`, http.StatusBadRequest},
		{"missing personal", `{"delta":0.4}`, http.StatusBadRequest},
		{"unnamed personal", `{"personal":{"name":"","root":{"name":"r"}},"delta":0.4}`, http.StatusBadRequest},
		{"negative delta", `{"personal":{"name":"p","root":{"name":"r"}},"delta":-0.1}`, http.StatusBadRequest},
		{"overflowing delta", `{"personal":{"name":"p","root":{"name":"r"}},"delta":1e999}`, http.StatusBadRequest},
		{"negative limit", `{"personal":{"name":"p","root":{"name":"r"}},"delta":0.4,"limit":-1}`, http.StatusBadRequest},
		{"bad matcher", `{"personal":{"name":"p","root":{"name":"r"}},"delta":0.4,"matcher":"quantum"}`, http.StatusBadRequest},
		{"oversized personal", `{"personal":{"name":"p","root":{"name":"r","children":[{"name":"a"},{"name":"b"},{"name":"c"},{"name":"d"}]}},"delta":0.4}`, http.StatusBadRequest},
		{"oversized body", fmt.Sprintf(`{"personal":{"name":"p","root":{"name":"r","type":%q}},"delta":0.4}`, strings.Repeat("x", 8192)), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := post(t, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (code %q)", status, tc.status, code)
			}
			if code == "" {
				t.Fatal("error body missing the typed code")
			}
		})
	}

	// The well-formed control case still succeeds under the tight
	// limits.
	resp, err := http.Post(ts.URL+"/v1/match/"+tn, "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control request failed with %d", resp.StatusCode)
	}
}

// TestSessionInterning: repeated wire requests with the same personal
// schema must share one schema instance so the tenant's session caches
// hit, exactly as repeated in-process calls do.
func TestSessionInterning(t *testing.T) {
	fleet := testFleet(t, 21, 1, 2, 10)
	_, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()
	ctx := context.Background()
	tn := fleet[0]
	p := tn.Personals()[0]

	if _, err := cl.Match(ctx, tn.Name, wireRequest(p, 0.4, "beam:8")); err != nil {
		t.Fatal(err)
	}
	first, err := cl.TenantStats(ctx, tn.Name)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache.Hits+first.Cache.Misses == 0 {
		t.Fatal("first request should have generated scoring-engine traffic")
	}
	if _, err := cl.Match(ctx, tn.Name, wireRequest(p, 0.4, "beam:8")); err != nil {
		t.Fatal(err)
	}
	second, err := cl.TenantStats(ctx, tn.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The second request decodes into the same interned schema
	// instance, hits the tenant's session cache, and does no scoring
	// work at all. A broken interner would rebuild the session and move
	// these counters.
	if second.Cache.Hits != first.Cache.Hits || second.Cache.Misses != first.Cache.Misses {
		t.Fatalf("second identical wire request caused scoring traffic: (%d,%d) -> (%d,%d)",
			first.Cache.Hits, first.Cache.Misses, second.Cache.Hits, second.Cache.Misses)
	}
}

func mustBody(t *testing.T, req *MatchRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPprofGated: the pprof surface is absent by default, and when
// enabled it sits behind the admin bearer-token check — fail-closed
// without admin tokens.
func TestPprofGated(t *testing.T) {
	fleet := testFleet(t, 15, 1, 1, 8)
	get := func(ts *httptest.Server, token string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/debug/pprof/", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	_, off := newTestServer(t, fleet, Config{})
	if got := get(off, ""); got != http.StatusNotFound {
		t.Fatalf("pprof disabled: want 404, got %d", got)
	}

	auth := &AuthConfig{AdminTokens: []string{"admin-token"}}
	_, on := newTestServer(t, fleet, Config{Auth: auth, EnablePprof: true})
	if got := get(on, ""); got != http.StatusUnauthorized {
		t.Fatalf("pprof without token: want 401, got %d", got)
	}
	if got := get(on, "wrong"); got != http.StatusForbidden {
		t.Fatalf("pprof with wrong token: want 403, got %d", got)
	}
	if got := get(on, "admin-token"); got != http.StatusOK {
		t.Fatalf("pprof with admin token: want 200, got %d", got)
	}

	_, noTokens := newTestServer(t, fleet, Config{EnablePprof: true})
	if got := get(noTokens, "anything"); got != http.StatusForbidden {
		t.Fatalf("pprof with no admin tokens configured: want 403, got %d", got)
	}
}
