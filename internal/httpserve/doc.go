// Package httpserve is the network front end of the serving layer: a
// versioned HTTP/JSON wire protocol over match.Server, with per-tenant
// bearer-token authentication, per-request deadline propagation,
// request-size limits, typed error→status mapping, access logging, and
// a Prometheus text-format /metrics endpoint exposing the admission,
// cache, shard fan-out, and candidate-pruning telemetry the lower
// layers collect. cmd/matchd owns the listener lifecycle (TLS, signal
// driven graceful drain); this package owns everything between the
// connection and the Server.
//
// # Wire protocol (v1)
//
// All serving routes live under the /v1 prefix; bodies are JSON
// (requests are decoded strictly: unknown fields, trailing data,
// non-finite or negative deltas, and malformed matcher specs are
// rejected with 400).
//
//	POST /v1/match/{tenant}          one matching request
//	POST /v1/batch                   a cross-tenant batch (MatchBatch)
//	GET  /v1/tenants                 registered tenant names (admin)
//	GET  /v1/tenants/{tenant}/stats  one tenant's serving stats
//	GET  /metrics                    Prometheus text format (open)
//	GET  /healthz                    200 serving / 503 draining (open)
//	POST /admin/v1/tenants/{tenant}  register a tenant (repository XML body)
//	PUT  /admin/v1/tenants/{tenant}  replace a tenant's repository (XML body)
//
// A match request carries the personal schema as a JSON tree plus the
// familiar Request fields:
//
//	{"personal": {"name": "library",
//	              "root": {"name": "library", "children": [
//	                        {"name": "book", "children": [
//	                          {"name": "title", "type": "string"}]}]}},
//	 "delta": 0.3, "matcher": "beam:8", "limit": 10}
//
// Requests carrying structurally identical personal schemas are
// interned to one *xmlschema.Schema instance, so repeated wire queries
// hit the service's per-personal session cache (cost tables, baseline
// answers) exactly as repeated in-process queries do.
//
// # Authentication
//
// When a Config.Auth is set, serving routes require a bearer token
// (`Authorization: Bearer <token>`) that authorizes the named tenant —
// either a tenant-scoped token (AuthConfig.TenantTokens) or a global
// one (AuthConfig.GlobalTokens). A batch needs authorization for every
// tenant it names. The admin surface requires an AdminTokens entry.
// Missing credentials yield 401, insufficient ones 403; token
// comparison is constant-time. A nil Auth leaves the server open
// (benchmark and smoke-test mode). /metrics and /healthz are always
// unauthenticated.
//
// # Deadlines
//
// The X-Match-Deadline-Ms request header bounds one request end to
// end: its value (integer milliseconds > 0, clamped to
// Config.MaxDeadline) becomes a context deadline, which the engine's
// cancellation plumbing honors at every enumeration loop — expiry
// returns 504 promptly with no goroutine left running the search. The
// client also cancels the context when its connection drops.
//
// # Error mapping
//
// Typed serving errors map onto statuses; every error response body is
// {"error": {"code": ..., "message": ...}}:
//
//	match.ErrOverloaded    429 overloaded (Retry-After: 1)
//	match.ErrUnknownTenant 404 unknown_tenant
//	match.ErrTenantExists  409 tenant_exists (admin)
//	match.ErrServerClosed  503 server_closed
//	context deadline/cancel 504 deadline_exceeded
//	malformed request       400 bad_request
//	oversized body          413 too_large
//	missing/bad credentials 401/403 unauthorized/forbidden
//
// # Drain semantics
//
// During a graceful drain (Server.Drain, driven by cmd/matchd on
// SIGTERM/SIGINT) /healthz flips to 503 so load balancers stop routing
// here, new matching requests are rejected with 503 server_closed, and
// requests admitted before the drain run to completion and deliver
// their results.
package httpserve
