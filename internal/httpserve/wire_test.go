package httpserve

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

// TestWireSchemaRoundTrip: WireSchema then Build reproduces the schema
// byte-for-byte in structure (same canonical key, same element count).
func TestWireSchemaRoundTrip(t *testing.T) {
	cfg := synth.DefaultConfig(0)
	cfg.NumSchemas = 6
	tenants, err := synth.GenerateTenants(31, 1, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	schemas := append(tenants[0].Personals(), tenants[0].Repo().Schemas()...)
	for _, s := range schemas {
		ws := WireSchema(s)
		back, err := ws.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if back.Name != s.Name || back.Len() != s.Len() {
			t.Fatalf("%s: round trip changed shape: (%s,%d) -> (%s,%d)",
				s.Name, s.Name, s.Len(), back.Name, back.Len())
		}
		if WireSchema(back).key() != ws.key() {
			t.Fatalf("%s: canonical key not stable across a round trip", s.Name)
		}
	}
}

// TestSchemaKeyUnambiguous: the canonical key must separate schema
// shapes that naive concatenation would conflate.
func TestSchemaKeyUnambiguous(t *testing.T) {
	cases := []struct{ a, b Schema }{
		// Same names flattened, different nesting.
		{
			Schema{Name: "s", Root: Element{Name: "r", Children: []Element{{Name: "a", Children: []Element{{Name: "b"}}}}}},
			Schema{Name: "s", Root: Element{Name: "r", Children: []Element{{Name: "a"}, {Name: "b"}}}},
		},
		// Name/type boundary ambiguity.
		{
			Schema{Name: "s", Root: Element{Name: "ab", Type: "c"}},
			Schema{Name: "s", Root: Element{Name: "a", Type: "bc"}},
		},
		// Schema name versus root name.
		{
			Schema{Name: "sx", Root: Element{Name: "r"}},
			Schema{Name: "s", Root: Element{Name: "xr"}},
		},
		// Length-prefix digits versus content.
		{
			Schema{Name: "1", Root: Element{Name: "a"}},
			Schema{Name: "", Root: Element{Name: "1a"}},
		},
	}
	for i, c := range cases {
		if c.a.key() == c.b.key() {
			t.Fatalf("case %d: distinct schemas share the key %q", i, c.a.key())
		}
	}
	// And the key is deterministic.
	s := Schema{Name: "s", Root: Element{Name: "r", Type: "t", Children: []Element{{Name: "a"}}}}
	if s.key() != s.key() {
		t.Fatal("key not deterministic")
	}
}

// TestElementCountEarlyExit: hostile nesting stops counting at the
// limit instead of walking the whole tree.
func TestElementCountEarlyExit(t *testing.T) {
	wide := Element{Name: "r"}
	for i := 0; i < 10000; i++ {
		wide.Children = append(wide.Children, Element{Name: "c"})
	}
	if n := wide.count(16); n > 16 {
		t.Fatalf("count overran its limit: %d", n)
	}
	deep := Element{Name: "leaf"}
	for i := 0; i < 10000; i++ {
		deep = Element{Name: "n", Children: []Element{deep}}
	}
	if n := deep.count(16); n > 16 {
		t.Fatalf("deep count overran its limit: %d", n)
	}
}

// TestDecodeStrict: unknown fields and trailing data are rejected.
func TestDecodeStrict(t *testing.T) {
	if _, err := DecodeMatchRequest(strings.NewReader(`{"personal":{"name":"p","root":{"name":"r"}},"delta":0.1}`), 0); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	for _, body := range []string{
		`{"personal":{"name":"p","root":{"name":"r"}},"delta":0.1,"extra":1}`,
		`{"personal":{"name":"p","root":{"name":"r"}},"delta":0.1} trailing`,
		`{"personal":{"name":"p","root":{"name":"r"}},"delta":0.1}{"x":1}`,
	} {
		if _, err := DecodeMatchRequest(strings.NewReader(body), 0); err == nil {
			t.Fatalf("accepted %q", body)
		}
	}
	if _, err := DecodeBatchRequest(strings.NewReader(`{"requests":[]}`), 0, 0); err == nil {
		t.Fatal("accepted an empty batch")
	}
	if _, err := DecodeBatchRequest(strings.NewReader(
		`{"requests":[{"tenant":"a","personal":{"name":"p","root":{"name":"r"}},"delta":0.1},`+
			`{"tenant":"b","personal":{"name":"p","root":{"name":"r"}},"delta":0.1}]}`), 0, 1); err == nil {
		t.Fatal("accepted a batch over the request limit")
	}
}
