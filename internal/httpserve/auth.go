package httpserve

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"strings"
)

// AuthConfig is the bearer-token authorization table of a handler. A
// nil AuthConfig (or one with no tokens at all) leaves the serving
// surface open — the benchmark and smoke-test mode. Admin routes are
// refused outright when no AdminTokens are configured, open serving or
// not: an open matcher is harmless, an open admin surface is not.
type AuthConfig struct {
	// TenantTokens maps tenant name → bearer tokens accepted for that
	// tenant's requests.
	TenantTokens map[string][]string
	// GlobalTokens are accepted for every tenant.
	GlobalTokens []string
	// AdminTokens guard the /admin surface and the tenant listing.
	AdminTokens []string
}

// enabled reports whether serving routes require a token.
func (a *AuthConfig) enabled() bool {
	return a != nil && (len(a.TenantTokens) > 0 || len(a.GlobalTokens) > 0)
}

// tokenEqual compares two tokens in constant time; hashing first makes
// the comparison length-independent.
func tokenEqual(a, b string) bool {
	ha, hb := sha256.Sum256([]byte(a)), sha256.Sum256([]byte(b))
	return subtle.ConstantTimeCompare(ha[:], hb[:]) == 1
}

func tokenIn(token string, set []string) bool {
	ok := false
	for _, t := range set {
		// Every candidate is compared so the scan time does not reveal
		// the matching position.
		if tokenEqual(token, t) {
			ok = true
		}
	}
	return ok
}

// allowTenant reports whether token authorizes requests for tenant.
func (a *AuthConfig) allowTenant(token, tenant string) bool {
	if !a.enabled() {
		return true
	}
	if tokenIn(token, a.GlobalTokens) {
		return true
	}
	return tokenIn(token, a.TenantTokens[tenant])
}

// allowAdmin reports whether token authorizes the admin surface.
func (a *AuthConfig) allowAdmin(token string) bool {
	return a != nil && tokenIn(token, a.AdminTokens)
}

// bearerToken extracts the token of an "Authorization: Bearer <tok>"
// header; empty when absent or malformed.
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}
