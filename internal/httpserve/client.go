package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/xmlschema"
)

// APIError is the typed client-side form of a wire error: the HTTP
// status plus the decoded error body.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("httpserve: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// IsOverloaded reports whether err is a 429 admission rejection — the
// client-side analogue of errors.Is(err, match.ErrOverloaded).
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// Client speaks the wire protocol to one matchd instance. It is safe
// for concurrent use; the underlying transport pools connections.
type Client struct {
	base  string
	token string
	hc    *http.Client
}

// NewClient returns a client for the server at addr (a host:port or a
// full http(s) URL). token, when non-empty, is sent as a bearer token
// on every request.
func NewClient(addr, token string) *Client {
	base := addr
	if len(base) < 7 || (base[:7] != "http://" && (len(base) < 8 || base[:8] != "https://")) {
		base = "http://" + base
	}
	tr := &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     30 * time.Second,
	}
	return &Client{base: base, token: token, hc: &http.Client{Transport: tr}}
}

// do runs one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	// Propagate the context deadline onto the wire so the server stops
	// working when the client would discard the result anyway.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		msg := resp.Status
		code := CodeInternal
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error.Code != "" {
			code, msg = eb.Error.Code, eb.Error.Message
		}
		return &APIError{StatusCode: resp.StatusCode, Code: code, Message: msg}
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Match runs one matching request against tenant.
func (c *Client) Match(ctx context.Context, tenant string, req *MatchRequest) (*MatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out MatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/match/"+tenant, "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MatchBatch runs one batch; per-item failures arrive inside the
// response, transport and whole-batch failures as the returned error.
func (c *Client) MatchBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantStats fetches one tenant's serving statistics.
func (c *Client) TenantStats(ctx context.Context, tenant string) (*TenantStatsResponse, error) {
	var out TenantStatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/tenants/"+tenant+"/stats", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tenants lists the registered tenants (requires an admin token when
// auth is configured).
func (c *Client) Tenants(ctx context.Context) ([]string, error) {
	var out struct {
		Tenants []string `json:"tenants"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/tenants", "", nil, &out); err != nil {
		return nil, err
	}
	return out.Tenants, nil
}

// Health reports whether the server is serving (true) or draining /
// closed (false); transport failures are returned as errors.
func (c *Client) Health(ctx context.Context) (bool, error) {
	err := c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)
	if err == nil {
		return true, nil
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable {
		return false, nil
	}
	return false, err
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Code: CodeInternal, Message: string(b)}
	}
	return string(b), nil
}

// TracesResponse is the body of GET /debug/traces: the tracer's ring
// snapshot, newest-first.
type TracesResponse struct {
	Sampled  int64            `json:"sampled"`
	Captured int64            `json:"captured"`
	Recent   []*obs.TraceData `json:"recent"`
	Slow     []*obs.TraceData `json:"slow"`
}

// Traces fetches the server's captured span traces (admin token
// required).
func (c *Client) Traces(ctx context.Context) (*TracesResponse, error) {
	var out TracesResponse
	if err := c.do(ctx, http.MethodGet, "/debug/traces", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// marshalRepository renders a repository as the XML body the admin
// routes accept.
func marshalRepository(repo *xmlschema.Repository) ([]byte, error) {
	var buf bytes.Buffer
	if err := xmlschema.WriteRepository(&buf, repo); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RegisterTenant registers a new tenant from repo (admin token
// required).
func (c *Client) RegisterTenant(ctx context.Context, tenant string, repo *xmlschema.Repository) error {
	body, err := marshalRepository(repo)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/admin/v1/tenants/"+tenant, "application/xml", body, nil)
}

// UpdateTenant atomically replaces tenant's repository with repo
// (admin token required).
func (c *Client) UpdateTenant(ctx context.Context, tenant string, repo *xmlschema.Repository) error {
	body, err := marshalRepository(repo)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPut, "/admin/v1/tenants/"+tenant, "application/xml", body, nil)
}

// Close releases idle pooled connections.
func (c *Client) Close() {
	if tr, ok := c.hc.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}
