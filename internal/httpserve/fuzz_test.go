package httpserve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// FuzzDecodeRequest hammers the wire decoder with arbitrary bodies:
// it must never panic, and whatever it accepts must satisfy the wire
// contract (present personal, finite non-negative delta, parseable
// matcher, bounded size).
func FuzzDecodeRequest(f *testing.F) {
	// The matcher specs of FuzzParseSpec's corpus, wrapped into
	// otherwise valid bodies, so the matcher-validation path is seeded
	// deep.
	specs := []string{
		"exhaustive", "parallel", "parallel:4", "beam:8", "topk:0.05",
		"topk:0", "clustered", "clustered:3", "", ":", "beam", "beam:",
		"beam:0", "beam:-1", "beam:1e3", "topk", "topk:-1", "topk:NaN",
		"topk:+Inf", "topk:1e-300", "parallel:0",
		"parallel:9999999999999999999", "clustered:x", "quantum",
		"exhaustive:1", "beam:8:9", "topk:0x1p-3", "topk:.5",
		"sharded", "sharded:4", "sharded:0", "sharded:x",
		"sharded:4:beam:8", "sharded:2:topk:0.05", "sharded:2:sharded:2",
	}
	for _, sp := range specs {
		b, _ := json.Marshal(MatchRequest{
			Personal: &Schema{Name: "p", Root: Element{Name: "r", Children: []Element{{Name: "a", Type: "t"}}}},
			Delta:    0.4,
			Matcher:  sp,
		})
		f.Add(string(b))
	}
	// Structural edge cases.
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"personal":null,"delta":0.1}`)
	f.Add(`{"personal":{"name":"","root":{"name":""}},"delta":0}`)
	f.Add(`{"personal":{"name":"p","root":{"name":"r"}},"delta":-1}`)
	f.Add(`{"personal":{"name":"p","root":{"name":"r"}},"delta":1e999}`)
	f.Add(`{"personal":{"name":"p","root":{"name":"r"}},"delta":0.1,"limit":-3}`)
	f.Add(`{"personal":{"name":"p","root":{"name":"r"}},"delta":0.1} {"x":1}`)
	f.Add(`{"personal":{"name":"p","root":{"name":"r","children":[{"name":"c"}]}},"delta":0.1,"unknown":true}`)
	// Deep nesting.
	deep := strings.Repeat(`{"name":"n","children":[`, 40) + `{"name":"leaf"}` + strings.Repeat(`]}`, 40)
	f.Add(`{"personal":{"name":"p","root":` + deep + `},"delta":0.1}`)

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeMatchRequest(strings.NewReader(body), 64)
		if err != nil {
			return
		}
		// Accepted: the invariants the handler relies on must hold.
		if req.Personal == nil || req.Personal.Name == "" {
			t.Fatalf("accepted request without a named personal: %q", body)
		}
		if !(req.Delta >= 0) || req.Delta != req.Delta {
			t.Fatalf("accepted non-finite or negative delta %v: %q", req.Delta, body)
		}
		if req.Limit < 0 {
			t.Fatalf("accepted negative limit %d: %q", req.Limit, body)
		}
		if n := req.Personal.Root.count(65); n > 64 {
			t.Fatalf("accepted oversized personal (%d elements): %q", n, body)
		}
		// The accepted schema must build, and the canonical key must be
		// stable — the interner's correctness rests on both.
		s, err := req.Personal.Build()
		if err != nil {
			return // structural rejects at build time are fine
		}
		if got := WireSchema(s); got.key() != req.Personal.key() {
			t.Fatalf("canonical key unstable across build round trip: %q", body)
		}
	})
}

// FuzzDecodeBatch covers the batch decoder the same way.
func FuzzDecodeBatch(f *testing.F) {
	item := `{"tenant":"t","personal":{"name":"p","root":{"name":"r"}},"delta":0.1}`
	f.Add(`{"requests":[` + item + `]}`)
	f.Add(`{"requests":[` + item + `,` + item + `]}`)
	f.Add(`{"requests":[]}`)
	f.Add(`{"requests":[{"tenant":"","personal":{"name":"p","root":{"name":"r"}},"delta":0.1}]}`)
	f.Add(fmt.Sprintf(`{"requests":[%s,%s,%s,%s,%s]}`, item, item, item, item, item))
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeBatchRequest(strings.NewReader(body), 64, 4)
		if err != nil {
			return
		}
		if len(req.Requests) == 0 || len(req.Requests) > 4 {
			t.Fatalf("accepted batch of %d requests: %q", len(req.Requests), body)
		}
		for i := range req.Requests {
			if req.Requests[i].Tenant == "" {
				t.Fatalf("accepted item %d without tenant: %q", i, body)
			}
			if req.Requests[i].Personal == nil {
				t.Fatalf("accepted item %d without personal: %q", i, body)
			}
		}
	})
}
