package httpserve

import (
	"bufio"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition validates Prometheus text format line by line and
// returns the sample values keyed by "name{labels}". It fails the test
// on any malformed line, out-of-order family, or sample without a
// preceding TYPE.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if strings.HasPrefix(l, "# HELP ") {
			f := strings.SplitN(strings.TrimPrefix(l, "# HELP "), " ", 2)
			if len(f) != 2 || f[0] == "" || f[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", line, l)
			}
			helped[f[0]] = true
			continue
		}
		if strings.HasPrefix(l, "# TYPE ") {
			f := strings.Fields(strings.TrimPrefix(l, "# TYPE "))
			if len(f) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", line, l)
			}
			if f[1] != "counter" && f[1] != "gauge" && f[1] != "histogram" {
				t.Fatalf("line %d: unknown type %q", line, f[1])
			}
			if !helped[f[0]] {
				t.Fatalf("line %d: TYPE for %s without HELP", line, f[0])
			}
			typed[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(l, "#") {
			t.Fatalf("line %d: unknown comment form: %q", line, l)
		}
		sp := strings.LastIndexByte(l, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value: %q", line, l)
		}
		series, valStr := l[:sp], l[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", line, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unbalanced label braces: %q", line, l)
			}
			name = series[:i]
		}
		if _, ok := typed[name]; !ok {
			// Histogram families expose their samples under the
			// _bucket/_sum/_count suffixes of the declared family name.
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suf) {
					base = strings.TrimSuffix(name, suf)
					break
				}
			}
			if typed[base] != "histogram" {
				t.Fatalf("line %d: sample %s without a TYPE header", line, name)
			}
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", line, series)
		}
		samples[series] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	return samples
}

// TestMetricsEndpoint scrapes /metrics under concurrent traffic,
// asserts the exposition parses, the expected families are present,
// and every counter is monotone between two scrapes.
func TestMetricsEndpoint(t *testing.T) {
	fleet := testFleet(t, 23, 2, 2, 12)
	_, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()
	ctx := context.Background()

	// First traffic wave: every tenant and personal, mixed specs, plus
	// some guaranteed error responses so the code label space is
	// populated.
	wave := func() {
		var wg sync.WaitGroup
		for _, tn := range fleet {
			for _, p := range tn.Personals() {
				wg.Add(1)
				go func(tn string, req *MatchRequest) {
					defer wg.Done()
					if _, err := cl.Match(ctx, tn, req); err != nil {
						t.Error(err)
					}
				}(tn.Name, wireRequest(p, 0.4, "sharded:2:beam:8"))
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = cl.Match(ctx, "ghost", wireRequest(fleet[0].Personals()[0], 0.4, ""))
		}()
		wg.Wait()
	}
	wave()

	text1, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	first := parseExposition(t, text1)

	for _, want := range []string{
		"matchd_http_in_flight",
		`matchd_http_requests_total{route="match",code="200"}`,
		`matchd_http_requests_total{route="match",code="404"}`,
		`matchd_http_request_seconds_total{route="match"}`,
		"matchd_match_requests_total",
		"matchd_answers_total",
		"matchd_sharded_requests_total",
		"matchd_shard_work_seconds_total",
		"matchd_server_workers",
		"matchd_server_accepted_total",
		fmt.Sprintf("matchd_tenant_version{tenant=%q}", fleet[0].Name),
		fmt.Sprintf("matchd_tenant_cache_misses_total{tenant=%q}", fleet[0].Name),
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("series %s missing from the exposition", want)
		}
	}
	if first["matchd_sharded_requests_total"] == 0 {
		t.Error("sharded traffic not reflected in matchd_sharded_requests_total")
	}
	if first["matchd_match_requests_total"] == 0 {
		t.Error("no match requests counted")
	}

	// Second wave, then re-scrape: every *_total counter the first
	// scrape reported must not decrease.
	wave()
	text2, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second := parseExposition(t, text2)
	for series, v1 := range first {
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		v2, ok := second[series]
		if !ok {
			t.Errorf("counter series %s disappeared between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v1, v2)
		}
	}
	if second["matchd_match_requests_total"] <= first["matchd_match_requests_total"] {
		t.Error("second traffic wave did not advance matchd_match_requests_total")
	}
}

// histogramSeries collects one histogram series from parsed samples:
// the le → cumulative-count buckets (excluding +Inf) in ascending le
// order, plus the +Inf bucket, _sum, and _count values.
func histogramSeries(t *testing.T, samples map[string]float64, family, labels string) (les []float64, cums []float64, inf, sum, count float64) {
	t.Helper()
	prefix := family + "_bucket{" + labels + `,le="`
	for series, v := range samples {
		if !strings.HasPrefix(series, prefix) {
			continue
		}
		le := strings.TrimSuffix(strings.TrimPrefix(series, prefix), `"}`)
		if le == "+Inf" {
			inf = v
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("series %s: bad le %q: %v", series, le, err)
		}
		// Insertion sort by le: bucket counts stay paired with bounds.
		i := len(les)
		for i > 0 && les[i-1] > b {
			i--
		}
		les = append(les[:i], append([]float64{b}, les[i:]...)...)
		cums = append(cums[:i], append([]float64{v}, cums[i:]...)...)
	}
	sum = samples[family+"_sum{"+labels+"}"]
	count = samples[family+"_count{"+labels+"}"]
	return
}

// TestMetricsHistogramBuckets: the histogram families expose cumulative
// le-buckets that are monotone, end in a +Inf bucket equal to _count,
// and count every served request.
func TestMetricsHistogramBuckets(t *testing.T) {
	fleet := testFleet(t, 29, 2, 2, 12)
	_, ts := newTestServer(t, fleet, Config{})
	cl := NewClient(ts.URL, "")
	defer cl.Close()
	ctx := context.Background()

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := cl.Match(ctx, fleet[0].Name, wireRequest(fleet[0].Personals()[0], 0.4, "sharded:2:beam:8")); err != nil {
			t.Fatal(err)
		}
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, text)

	check := func(family, labels string, wantCount float64) {
		t.Helper()
		les, cums, inf, sum, count := histogramSeries(t, samples, family, labels)
		if len(les) == 0 {
			t.Fatalf("%s{%s}: no le buckets in the exposition", family, labels)
		}
		prev := 0.0
		for i, c := range cums {
			if c < prev {
				t.Errorf("%s{%s}: cumulative count decreased at le=%g", family, labels, les[i])
			}
			prev = c
		}
		if inf != count {
			t.Errorf("%s{%s}: +Inf bucket %g != _count %g", family, labels, inf, count)
		}
		if inf < prev {
			t.Errorf("%s{%s}: +Inf bucket %g below last finite bucket %g", family, labels, inf, prev)
		}
		if wantCount > 0 && count != wantCount {
			t.Errorf("%s{%s}: _count = %g, want %g", family, labels, count, wantCount)
		}
		if count > 0 && sum < 0 {
			t.Errorf("%s{%s}: negative _sum %g", family, labels, sum)
		}
	}
	check("matchd_http_request_duration_seconds", `route="match"`, n)
	check("matchd_stage_duration_seconds", `stage="search"`, n)
	check("matchd_stage_duration_seconds", `stage="queue_wait"`, n)
	check("matchd_stage_duration_seconds", `stage="session_build"`, n)
	check("matchd_stage_duration_seconds", `stage="shard_critical"`, n)
	check("matchd_stage_duration_seconds", `stage="merge"`, n)
}

// TestMetricsLabelEscaping: tenant names with quotes, backslashes, and
// newlines must render as valid exposition text.
func TestMetricsLabelEscaping(t *testing.T) {
	if escapeLabel(`a"b\c`+"\n") != `a\"b\\c\n` {
		t.Fatalf("escapeLabel: got %q", escapeLabel(`a"b\c`+"\n"))
	}
	fleet := testFleet(t, 24, 1, 1, 8)
	srv, ts := newTestServer(t, fleet, Config{})
	weird := `ten"ant\x`
	if err := srv.AddTenant(weird, fleet[0].Repo()); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(ts.URL, "")
	defer cl.Close()
	text, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := parseExposition(t, text)
	series := fmt.Sprintf("matchd_tenant_version{tenant=\"%s\"}", escapeLabel(weird))
	if _, ok := got[series]; !ok {
		t.Fatalf("escaped tenant series %s missing", series)
	}
}
