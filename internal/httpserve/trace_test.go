package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a bytes.Buffer safe for the concurrent writes slog
// handlers perform.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// traceConfig returns a Config with an always-sample tracer and an
// admin token so /debug/traces is reachable.
func traceConfig(rate float64) Config {
	return Config{
		Tracer: obs.New(obs.Config{SampleRate: rate, Slow: time.Hour}),
		Auth:   &AuthConfig{AdminTokens: []string{"admin"}},
	}
}

// spanNames collects the set of span names of a trace.
func spanNames(td *obs.TraceData) map[string]int {
	out := map[string]int{}
	for _, sp := range td.Spans {
		out[sp.Name]++
	}
	return out
}

// TestTraceOptInRoundtrip: a request with trace:true gets the span
// breakdown inlined in the response, the trace id in the response
// header, and the full trace on /debug/traces afterwards.
func TestTraceOptInRoundtrip(t *testing.T) {
	fleet := testFleet(t, 31, 1, 1, 10)
	_, ts := newTestServer(t, fleet, traceConfig(0)) // sampling off: opt-in must force
	cl := NewClient(ts.URL, "admin")
	defer cl.Close()
	ctx := context.Background()

	req := wireRequest(fleet[0].Personals()[0], 0.4, "sharded:2:beam:8")
	req.Trace = true
	res, err := cl.Match(ctx, fleet[0].Name, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace:true response carries no inline trace")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	names := spanNames(res.Trace)
	for _, want := range []string{"decode", "queue_wait", "request", "session_build", "cost_tables", "search", "shard", "merge"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from inline trace (got %v)", want, names)
		}
	}
	if names["shard"] != 2 {
		t.Errorf("want 2 shard spans for a 2-shard scatter, got %d", names["shard"])
	}
	if res.Stats.SessionBuildNs <= 0 {
		t.Error("wire stats carry no session_build wall")
	}

	// The capture ring must hold the same trace, with the id the
	// response reported.
	tr, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Captured == 0 || len(tr.Recent) == 0 {
		t.Fatalf("no captured traces after a forced trace: %+v", tr)
	}
	found := false
	for _, td := range tr.Recent {
		if td.ID == res.Trace.ID {
			found = true
			if err := td.Validate(); err != nil {
				t.Error(err)
			}
			// The captured trace closed at middleware exit, so its wall
			// covers at least the inline export's.
			if td.WallNs < res.Trace.WallNs {
				t.Errorf("captured wall %d < inline wall %d", td.WallNs, res.Trace.WallNs)
			}
		}
	}
	if !found {
		t.Errorf("trace %s not in the recent ring", res.Trace.ID)
	}
}

// TestTraceInboundHeader: an inbound X-Match-Trace-Id forces a trace
// under that id and echoes it on the response.
func TestTraceInboundHeader(t *testing.T) {
	fleet := testFleet(t, 32, 1, 1, 8)
	_, ts := newTestServer(t, fleet, traceConfig(0))
	ctx := context.Background()

	body, err := json.Marshal(wireRequest(fleet[0].Personals()[0], 0.4, ""))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/match/"+fleet[0].Name, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set(TraceHeader, "caller-trace-1")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "caller-trace-1" {
		t.Fatalf("response trace id %q, want the inbound id", got)
	}

	cl := NewClient(ts.URL, "admin")
	defer cl.Close()
	tr, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, td := range tr.Recent {
		if td.ID == "caller-trace-1" {
			found = true
			if err := td.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
	if !found {
		t.Error("inbound-forced trace not captured")
	}
}

// TestTraceSampledEdge: with SampleRate 1 every request is traced at
// the edge even without opting in, and the trace id comes back in the
// header but not the body.
func TestTraceSampledEdge(t *testing.T) {
	fleet := testFleet(t, 33, 1, 1, 8)
	_, ts := newTestServer(t, fleet, traceConfig(1))
	cl := NewClient(ts.URL, "admin")
	defer cl.Close()
	ctx := context.Background()

	res, err := cl.Match(ctx, fleet[0].Name, wireRequest(fleet[0].Personals()[0], 0.4, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("sampled (not opted-in) response must not inline the trace")
	}
	tr, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Recent) == 0 {
		t.Fatal("sampled request not captured")
	}
	names := spanNames(tr.Recent[0])
	for _, want := range []string{"queue_wait", "request", "session_build", "search"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from sampled trace (got %v)", want, names)
		}
	}
}

// TestTracesEndpointAuth: /debug/traces refuses without an admin token.
func TestTracesEndpointAuth(t *testing.T) {
	fleet := testFleet(t, 34, 1, 1, 8)
	_, ts := newTestServer(t, fleet, traceConfig(1))
	cl := NewClient(ts.URL, "") // no token
	defer cl.Close()
	_, err := cl.Traces(context.Background())
	if err == nil {
		t.Fatal("unauthenticated /debug/traces must refuse")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnauthorized {
		t.Fatalf("want 401, got %v", err)
	}
}

// TestStructuredAccessLog: the slog access log carries trace id,
// tenant, route, status, and duration as structured attributes.
func TestStructuredAccessLog(t *testing.T) {
	fleet := testFleet(t, 35, 1, 1, 8)
	var buf syncBuffer
	cfg := traceConfig(1)
	cfg.Log = slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, fleet, cfg)
	cl := NewClient(ts.URL, "admin")
	defer cl.Close()

	if _, err := cl.Match(context.Background(), fleet[0].Name, wireRequest(fleet[0].Personals()[0], 0.4, "")); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no access-log output")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, line)
	}
	if rec["route"] != "match" {
		t.Errorf("route = %v, want match", rec["route"])
	}
	if rec["status"] != float64(http.StatusOK) {
		t.Errorf("status = %v, want 200", rec["status"])
	}
	if rec["tenant"] != fleet[0].Name {
		t.Errorf("tenant = %v, want %s", rec["tenant"], fleet[0].Name)
	}
	if s, _ := rec["trace_id"].(string); s == "" {
		t.Error("access log missing trace_id")
	}
	if _, ok := rec["duration"]; !ok {
		t.Error("access log missing duration")
	}
}
