package similarity

import (
	"math"
	"sync"
)

// kernelFn scores one interned profile pair using (only) the session's
// scratch buffers. Kernels are compiled per metric tree and must return
// the exact float64 the reference Metric.Similarity returns — the
// engine's memo tables, persisted warm memos, and the candidate index's
// parity guarantees all depend on bit-identical scores.
type kernelFn func(a, b *NameProfile, s *Scratch) float64

// Kernel is a compiled, allocation-free evaluator for one metric tree
// over interned NameProfiles. Compile once per metric (NewKernel),
// then open one KernelSession per worker goroutine; the session's
// scratch buffers make the warm scoring path allocation-free for the
// edit, OSA, Jaro, Jaro-Winkler, q-gram, and token families. Metrics
// without a native kernel (Soundex, MetricFunc, non-trigram q-grams,
// unknown implementations) compile to a fallback that calls the
// reference Similarity, so NewKernel never fails and parity is
// trivially preserved.
type Kernel struct {
	metric Metric
	fn     kernelFn
	in     *Interner
	pool   sync.Pool
}

// NewKernel compiles metric; nil selects DefaultNameMetric. The
// kernel's interner carries the synonym dictionary discovered in the
// metric tree, so profiles expose the matching class features.
func NewKernel(metric Metric) *Kernel {
	if metric == nil {
		metric = DefaultNameMetric()
	}
	fn, dict := compileKernel(metric)
	k := &Kernel{metric: metric, fn: fn, in: NewInterner(dict)}
	k.pool.New = func() any { return newScratch() }
	return k
}

// Metric returns the compiled metric.
func (k *Kernel) Metric() Metric { return k.metric }

// Interner returns the kernel's profile interner — share it with the
// candidate index (candindex.Config.Profiles) so both sides profile
// each distinct name once.
func (k *Kernel) Interner() *Interner { return k.in }

// Session returns a scoring session holding pooled scratch. Sessions
// are not safe for concurrent use: open one per goroutine and Close it
// to return the scratch to the pool.
func (k *Kernel) Session() *KernelSession {
	return &KernelSession{k: k, s: k.pool.Get().(*Scratch)}
}

// KernelSession scores pairs through a compiled kernel with private
// scratch. The warm path (profiles interned, buffers grown) performs
// zero heap allocations per scored pair for the natively compiled
// metric families.
type KernelSession struct {
	k *Kernel
	s *Scratch
}

// Similarity returns exactly Metric.Similarity(a, b) for the kernel's
// metric.
func (ks *KernelSession) Similarity(a, b string) float64 {
	in := ks.k.in
	return ks.k.fn(in.Profile(a), in.Profile(b), ks.s)
}

// Profile interns and returns the profile of name; pair it with
// SimilarityProfiles to amortize the row-name lookup across a row.
func (ks *KernelSession) Profile(name string) *NameProfile { return ks.k.in.Profile(name) }

// SimilarityProfiles scores two profiles of this kernel's interner.
func (ks *KernelSession) SimilarityProfiles(a, b *NameProfile) float64 {
	return ks.k.fn(a, b, ks.s)
}

// Close returns the session's scratch to the kernel pool. The session
// must not be used afterwards.
func (ks *KernelSession) Close() {
	if ks.s != nil {
		ks.k.pool.Put(ks.s)
		ks.s = nil
	}
}

// compileKernel builds the kernel for a metric tree and reports the
// synonym dictionary discovered in it, if any.
func compileKernel(m Metric) (kernelFn, *SynonymDict) {
	switch t := m.(type) {
	case *Cached:
		// The kernel bypasses the metric-level memo; values are identical
		// by the parity contract.
		return compileKernel(t.Inner())
	case SynonymSim:
		return compileSynonym(t)
	case *Combined:
		parts := t.Parts()
		fns := make([]kernelFn, len(parts))
		ws := make([]float64, len(parts))
		var dict *SynonymDict
		for i, p := range parts {
			var pd *SynonymDict
			fns[i], pd = compileKernel(p.Metric)
			ws[i] = p.Weight
			if dict == nil {
				dict = pd
			}
		}
		return func(a, b *NameProfile, s *Scratch) float64 {
			sum := 0.0
			for i, f := range fns {
				sum += ws[i] * f(a, b, s)
			}
			return clamp01(sum)
		}, dict
	case QGramSim:
		if t.Q() == GramQ {
			return qgramKernel, nil
		}
		return fallbackKernel(m), nil
	case EditSim:
		return editKernel, nil
	case OSASim:
		return osaKernel, nil
	case JaroSim:
		return jaroKernel, nil
	case JaroWinklerSim:
		return jaroWinklerKernel, nil
	case JaccardSim:
		return jaccardKernel, nil
	case DiceSim:
		return diceKernel, nil
	case CosineSim:
		return cosineKernel, nil
	case CommonPrefixSim:
		return prefixKernel, nil
	case CommonSuffixSim:
		return suffixKernel, nil
	case LCSSim:
		return lcsKernel, nil
	case MongeElkan:
		inner := t.Inner
		if inner == nil {
			inner = JaroWinklerSim{}
		}
		fn, dict := compileKernel(inner)
		return mongeElkanKernel(fn, false), dict
	case SymMongeElkan:
		inner := t.Inner
		if inner == nil {
			inner = JaroWinklerSim{}
		}
		fn, dict := compileKernel(inner)
		return mongeElkanKernel(fn, true), dict
	default:
		// SoundexSim, MetricFunc, non-trigram q-grams, and anything
		// unknown: no native kernel, evaluate the reference.
		return fallbackKernel(m), nil
	}
}

func fallbackKernel(m Metric) kernelFn {
	return func(a, b *NameProfile, _ *Scratch) float64 {
		return m.Similarity(a.Name, b.Name)
	}
}

func compileSynonym(t SynonymSim) (kernelFn, *SynonymDict) {
	base := t.Base
	if base == nil {
		base = EditSim{}
	}
	bf, _ := compileKernel(base)
	if t.Dict == nil {
		return bf, nil
	}
	return func(a, b *NameProfile, s *Scratch) float64 {
		// NormID equality is exactly normWord equality, and Class carries
		// SynonymDict.ClassID, so this mirrors Dict.Synonyms(a, b).
		if a.NormID == b.NormID || (a.Class >= 0 && a.Class == b.Class) {
			return 1
		}
		if len(a.Toks) > 0 && len(b.Toks) > 0 {
			sum := 0.0
			for _, x := range a.Toks {
				best := 0.0
				for _, y := range b.Toks {
					var sc float64
					if x.NormID == y.NormID || (x.Class >= 0 && x.Class == y.Class) {
						sc = 1
					} else {
						sc = bf(x, y, s)
					}
					if sc > best {
						best = sc
					}
				}
				sum += best
			}
			tokScore := sum / float64(len(a.Toks))
			if bs := bf(a, b, s); bs > tokScore {
				return bs
			}
			return tokScore
		}
		return bf(a, b, s)
	}, t.Dict
}

// ---------------------------------------------------------------------------
// Edit-distance family
// ---------------------------------------------------------------------------

func editKernel(a, b *NameProfile, s *Scratch) float64 {
	la, lb := len(a.Runes), len(b.Runes)
	if la == 0 && lb == 0 {
		return 1
	}
	mx := la
	if lb > mx {
		mx = lb
	}
	p, t := a, b
	if len(p.Runes) > len(t.Runes) {
		p, t = t, p
	}
	d := s.myersDistance(p.Runes, t.Runes, p.ASCII)
	return 1 - float64(d)/float64(mx)
}

func osaKernel(a, b *NameProfile, s *Scratch) float64 {
	la, lb := len(a.Runes), len(b.Runes)
	if la == 0 && lb == 0 {
		return 1
	}
	mx := la
	if lb > mx {
		mx = lb
	}
	return 1 - float64(osaDistance(a.Runes, b.Runes, s))/float64(mx)
}

// osaDistance is OSADistance on rune slices with scratch-backed rows.
func osaDistance(ra, rb []rune, s *Scratch) int {
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	s.rowA = growInts(s.rowA, m+1)
	s.rowB = growInts(s.rowB, m+1)
	s.rowC = growInts(s.rowC, m+1)
	prev2, prev, cur := s.rowA, s.rowB, s.rowC
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < cur[j] {
					cur[j] = t
				}
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[m]
}

// ---------------------------------------------------------------------------
// Jaro family
// ---------------------------------------------------------------------------

func jaroKernel(a, b *NameProfile, s *Scratch) float64 {
	ra, rb := a.Runes, b.Runes
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	// Disjoint bitmaps prove zero matches; the reference returns 0 then.
	if a.Bitmap&b.Bitmap == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	s.matchedA = growBools(s.matchedA, la)
	s.matchedB = growBools(s.matchedB, lb)
	matchedA, matchedB := s.matchedA, s.matchedB
	for i := range matchedA {
		matchedA[i] = false
	}
	for j := range matchedB {
		matchedB[j] = false
	}
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

func jaroWinklerKernel(a, b *NameProfile, s *Scratch) float64 {
	j := jaroKernel(a, b, s)
	prefix := 0
	ra, rb := a.Runes, b.Runes
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// ---------------------------------------------------------------------------
// q-gram overlap
// ---------------------------------------------------------------------------

func qgramKernel(a, b *NameProfile, _ *Scratch) float64 {
	if len(a.Runes) == 0 && len(b.Runes) == 0 {
		return 1
	}
	total := len(a.Grams) + len(b.Grams)
	if total == 0 {
		return 0
	}
	inter := MergeCount(a.Grams, b.Grams)
	return 2 * float64(inter) / float64(total)
}

// ---------------------------------------------------------------------------
// Token-set measures
// ---------------------------------------------------------------------------

func jaccardKernel(a, b *NameProfile, _ *Scratch) float64 {
	if len(a.TokIDs) == 0 && len(b.TokIDs) == 0 {
		return 1
	}
	inter := MergeCount(a.TokIDs, b.TokIDs)
	union := len(a.TokIDs) + len(b.TokIDs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func diceKernel(a, b *NameProfile, _ *Scratch) float64 {
	if len(a.TokIDs) == 0 && len(b.TokIDs) == 0 {
		return 1
	}
	if len(a.TokIDs)+len(b.TokIDs) == 0 {
		return 0
	}
	inter := MergeCount(a.TokIDs, b.TokIDs)
	return 2 * float64(inter) / float64(len(a.TokIDs)+len(b.TokIDs))
}

func cosineKernel(a, b *NameProfile, _ *Scratch) float64 {
	if len(a.Toks) == 0 && len(b.Toks) == 0 {
		return 1
	}
	// Integer-valued float64 sums are exact, so accumulation order does
	// not matter and the merge below reproduces the reference's
	// map-iteration sums bit for bit.
	dot, na, nb := 0.0, 0.0, 0.0
	i, j := 0, 0
	for i < len(a.TokIDs) && j < len(b.TokIDs) {
		switch {
		case a.TokIDs[i] < b.TokIDs[j]:
			x := int(a.TokCounts[i])
			na += float64(x * x)
			i++
		case a.TokIDs[i] > b.TokIDs[j]:
			y := int(b.TokCounts[j])
			nb += float64(y * y)
			j++
		default:
			x, y := int(a.TokCounts[i]), int(b.TokCounts[j])
			na += float64(x * x)
			nb += float64(y * y)
			dot += float64(x * y)
			i++
			j++
		}
	}
	for ; i < len(a.TokIDs); i++ {
		x := int(a.TokCounts[i])
		na += float64(x * x)
	}
	for ; j < len(b.TokIDs); j++ {
		y := int(b.TokCounts[j])
		nb += float64(y * y)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func mongeElkanKernel(inner kernelFn, symmetric bool) kernelFn {
	asym := func(a, b *NameProfile, s *Scratch) float64 {
		if len(a.Toks) == 0 && len(b.Toks) == 0 {
			return 1
		}
		if len(a.Toks) == 0 || len(b.Toks) == 0 {
			return 0
		}
		sum := 0.0
		for _, x := range a.Toks {
			best := 0.0
			for _, y := range b.Toks {
				if sc := inner(x, y, s); sc > best {
					best = sc
				}
			}
			sum += best
		}
		return sum / float64(len(a.Toks))
	}
	if !symmetric {
		return asym
	}
	return func(a, b *NameProfile, s *Scratch) float64 {
		return (asym(a, b, s) + asym(b, a, s)) / 2
	}
}

// ---------------------------------------------------------------------------
// Affix and substring measures
// ---------------------------------------------------------------------------

func prefixKernel(a, b *NameProfile, _ *Scratch) float64 {
	ra, rb := a.Lower, b.Lower
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	n := minInt2(len(ra), len(rb))
	if n == 0 {
		return 0
	}
	i := 0
	for i < n && ra[i] == rb[i] {
		i++
	}
	return float64(i) / float64(n)
}

func suffixKernel(a, b *NameProfile, _ *Scratch) float64 {
	ra, rb := a.Lower, b.Lower
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	n := minInt2(len(ra), len(rb))
	if n == 0 {
		return 0
	}
	i := 0
	for i < n && ra[len(ra)-1-i] == rb[len(rb)-1-i] {
		i++
	}
	return float64(i) / float64(n)
}

func lcsKernel(a, b *NameProfile, s *Scratch) float64 {
	la, lb := len(a.Runes), len(b.Runes)
	if la == 0 && lb == 0 {
		return 1
	}
	n := minInt2(la, lb)
	if n == 0 {
		return 0
	}
	return float64(lcsLength(a.Lower, b.Lower, s)) / float64(n)
}

// lcsLength is LongestCommonSubstring on rune slices with scratch rows.
func lcsLength(ra, rb []rune, s *Scratch) int {
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	s.rowA = growInts(s.rowA, len(rb)+1)
	s.rowB = growInts(s.rowB, len(rb)+1)
	prev, cur := s.rowA, s.rowB
	for j := range prev {
		prev[j] = 0
	}
	best := 0
	for i := 1; i <= len(ra); i++ {
		cur[0] = 0
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}
