package similarity

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// parityMetrics is every metric the kernel compiler handles natively,
// plus fallback cases (soundex, bigram) where parity is structural.
func parityMetrics(t testing.TB) map[string]Metric {
	ms := make(map[string]Metric)
	for _, name := range MetricNames() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		ms[name] = m
	}
	ms["sym-monge-elkan"] = SymMongeElkan{}
	ms["monge-elkan-edit"] = MongeElkan{Inner: EditSim{}}
	ms["synonym-bare"] = SynonymSim{Dict: DefaultSchemaSynonyms()}
	ms["cached-default"] = NewCached(DefaultNameMetric())
	return ms
}

// parityCorpus exercises ASCII, Unicode, case boundaries, separators,
// whitespace normalization, long strings (single- and multi-word
// Myers), and synonym-dictionary hits.
func parityCorpus() []string {
	long := strings.Repeat("abcdef_", 12) + "tail" // > 64 runes
	longer := strings.Repeat("schemaElement", 12)  // > 128 runes
	uni := "ünïcødé-Ératosthène"                   //
	uniLong := strings.Repeat("Ωμέγα", 30)         // > 64 unicode runes
	return []string{
		"", " ", "  ", "#", "a", "A", "customerName", "client_name",
		"CustomerName", "customer name", " customer ", "customer",
		"XMLSchemaID", "xml schema id", "zipcode", "postcode",
		"addr", "address", "orderItem2Price", "order-item.price",
		"aaaaaa", "ababab", "bababa", "İstanbul", "istanbul",
		"ﬀoo", "ffoo", "a\tb", "\t", "\n", "née", "nee",
		long, long + "x", longer, uni, uniLong, uniLong + "ß",
	}
}

// TestKernelParity requires exact float64 equality between every
// compiled kernel and its reference metric across the corpus.
func TestKernelParity(t *testing.T) {
	corpus := parityCorpus()
	for name, m := range parityMetrics(t) {
		k := NewKernel(m)
		sess := k.Session()
		for _, a := range corpus {
			for _, b := range corpus {
				got := sess.Similarity(a, b)
				want := m.Similarity(a, b)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s(%q, %q): kernel %v (%x) != reference %v (%x)",
						name, a, b, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
		sess.Close()
	}
}

// TestMyersMatchesDP cross-checks all three bit-parallel variants
// against the reference DP, pinning the word-boundary lengths.
func TestMyersMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabets := [][]rune{
		[]rune("ab"),
		[]rune("abcde"),
		[]rune("abcdefghijklmnopqrstuvwxyz0123456789"),
		[]rune("αβγδε漢字#"),
	}
	lengths := []int{0, 1, 2, 7, 31, 63, 64, 65, 100, 127, 128, 129, 200}
	randStr := func(n int, alpha []rune) string {
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(rs)
	}
	s := newScratch()
	for _, alpha := range alphabets {
		for _, la := range lengths {
			for _, lb := range lengths {
				a, b := randStr(la, alpha), randStr(lb, alpha)
				ra, rb := []rune(a), []rune(b)
				ascii := true
				for _, r := range ra {
					if r >= 128 {
						ascii = false
					}
				}
				got := s.myersDistance(ra, rb, ascii)
				want := Levenshtein(a, b)
				if got != want {
					t.Fatalf("myersDistance(%q, %q) = %d, want %d", a, b, got, want)
				}
			}
		}
	}
}

// TestKernelZeroAlloc pins the warm batched path at zero heap
// allocations per scored pair for the edit and token families (and the
// full default metric, which composes both).
func TestKernelZeroAlloc(t *testing.T) {
	pairs := [][2]string{
		{"customerName", "client_name"},
		{"XMLSchemaID", "order-item.price"},
		{strings.Repeat("abcdef_", 12) + "tail", strings.Repeat("schemaElement", 12)},
		{"ünïcødé-Ératosthène", strings.Repeat("Ωμέγα", 30)},
	}
	for _, name := range []string{"edit", "osa", "jaro", "jaro-winkler", "jaccard", "dice", "cosine", "trigram", "lcs", "prefix", "suffix", "default"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k := NewKernel(m)
		sess := k.Session()
		// Warm: intern every profile and grow the scratch buffers.
		for _, p := range pairs {
			sess.Similarity(p[0], p[1])
		}
		allocs := testing.AllocsPerRun(100, func() {
			for _, p := range pairs {
				sess.Similarity(p[0], p[1])
			}
		})
		sess.Close()
		if allocs != 0 {
			t.Errorf("%s: %v allocs per warm run, want 0", name, allocs)
		}
	}
}

// countingMetric counts Similarity invocations.
type countingMetric struct {
	calls *int
	inner Metric
}

func (c countingMetric) Similarity(a, b string) float64 {
	*c.calls++
	return c.inner.Similarity(a, b)
}
func (c countingMetric) Name() string { return "counting" }

// TestMongeElkanTokenizesOnce verifies the restructured Monge-Elkan:
// the symmetric variant equals the mean of both asymmetric directions
// exactly, and the inner metric is invoked exactly |ta|·|tb| times per
// direction — i.e. the token slices are computed once and reused, not
// re-derived inside the alignment loops.
func TestMongeElkanTokenizesOnce(t *testing.T) {
	corpus := parityCorpus()
	for _, a := range corpus {
		for _, b := range corpus {
			me := MongeElkan{}
			sym := SymMongeElkan{}
			want := (me.Similarity(a, b) + me.Similarity(b, a)) / 2
			got := sym.Similarity(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("SymMongeElkan(%q, %q) = %v, want mean of directions %v", a, b, got, want)
			}
		}
	}
	calls := 0
	inner := countingMetric{calls: &calls, inner: JaroWinklerSim{}}
	a, b := "customer full name", "client_name_label"
	na, nb := len(Tokenize(a)), len(Tokenize(b))
	MongeElkan{Inner: inner}.Similarity(a, b)
	if calls != na*nb {
		t.Errorf("MongeElkan inner calls = %d, want %d", calls, na*nb)
	}
	calls = 0
	SymMongeElkan{Inner: inner}.Similarity(a, b)
	if calls != 2*na*nb {
		t.Errorf("SymMongeElkan inner calls = %d, want %d", calls, 2*na*nb)
	}
}

// TestInternerSharedTokens checks structural interning invariants the
// kernels and the candidate index rely on.
func TestInternerSharedTokens(t *testing.T) {
	in := NewInterner(DefaultSchemaSynonyms())
	p := in.Profile("customerName")
	if len(p.Toks) != 2 {
		t.Fatalf("customerName tokens = %d, want 2", len(p.Toks))
	}
	if tok := in.Profile("customer"); tok != p.Toks[0] {
		t.Errorf("token profile not shared with top-level name")
	}
	single := in.Profile("name")
	if len(single.Toks) != 1 || single.Toks[0] != single {
		t.Errorf("single-token name must reference itself")
	}
	if p.Class >= 0 {
		t.Errorf("compound name should have no whole-string synonym class")
	}
	if c := in.Profile("customer").Class; c < 0 {
		t.Errorf("dictionary word should carry a synonym class")
	}
	q := in.Profile("customerName")
	if q != p {
		t.Errorf("re-interning must return the same profile")
	}
}
