package similarity

import "strings"

// Soundex implements the classic American Soundex code: the first
// letter followed by three digits classifying subsequent consonants.
// Phonetic coding is one of the matcher building blocks surveyed by
// Rahm & Bernstein; it catches spelling-by-ear variants ("Smith" /
// "Smyth") that edit distance ranks poorly.
func Soundex(s string) string {
	s = strings.ToUpper(strings.TrimSpace(s))
	// Keep only A-Z.
	var letters []byte
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			letters = append(letters, s[i])
		}
	}
	if len(letters) == 0 {
		return ""
	}
	code := func(c byte) byte {
		switch c {
		case 'B', 'F', 'P', 'V':
			return '1'
		case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'D', 'T':
			return '3'
		case 'L':
			return '4'
		case 'M', 'N':
			return '5'
		case 'R':
			return '6'
		default: // vowels, H, W, Y
			return 0
		}
	}
	out := []byte{letters[0]}
	prev := code(letters[0])
	for _, c := range letters[1:] {
		d := code(c)
		// H and W are transparent: the previous code persists across
		// them; vowels reset it.
		if c == 'H' || c == 'W' {
			continue
		}
		if d == 0 {
			prev = 0
			continue
		}
		if d != prev {
			out = append(out, d)
			if len(out) == 4 {
				break
			}
		}
		prev = d
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexSim scores 1 when two strings share a Soundex code and 0
// otherwise — a coarse but cheap phonetic signal, typically blended
// with finer metrics.
type SoundexSim struct{}

// Similarity implements Metric.
func (SoundexSim) Similarity(a, b string) float64 {
	ca, cb := Soundex(a), Soundex(b)
	if ca == "" && cb == "" {
		return 1
	}
	if ca == cb {
		return 1
	}
	return 0
}

// Name implements Metric.
func (SoundexSim) Name() string { return "soundex" }
