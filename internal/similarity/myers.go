package similarity

// Bit-parallel exact Levenshtein distance (Myers 1999, in Hyyrö's
// formulation): the DP column is packed into machine words as positive/
// negative delta bit vectors, so one text character costs a handful of
// word operations instead of a DP row. Distances are computed over
// runes, so Unicode input stays exact. Patterns up to 64 runes run in a
// single word — an ASCII pattern through a table-indexed Peq, anything
// else through a reused map — and longer patterns fall back to the
// multi-word block variant with a horizontal ±1 carry chain between
// blocks. All paths return exactly Levenshtein(a, b).

// Scratch owns every buffer the kernels reuse across scored pairs: Peq
// tables, block vectors, DP rows, and Jaro match flags. One Scratch
// serves one session (goroutine) at a time; Kernel pools them.
type Scratch struct {
	peqASCII [128]uint64     // single-word Peq for ASCII patterns
	peqMap   map[rune]uint64 // single-word Peq for Unicode patterns
	mwOff    map[rune]int    // multi-word: rune → offset into peqBuf
	peqBuf   []uint64        // multi-word Peq, w words per distinct rune
	vp, vn   []uint64        // multi-word delta vectors
	rowA     []int           // DP rows (OSA, LCS)
	rowB     []int
	rowC     []int
	matchedA []bool // Jaro match flags
	matchedB []bool
}

func newScratch() *Scratch {
	return &Scratch{
		peqMap: make(map[rune]uint64),
		mwOff:  make(map[rune]int),
	}
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// myersDistance returns Levenshtein(pat, txt) choosing the cheapest
// bit-parallel variant for the pattern. patASCII marks every pattern
// rune < 128. Callers pass the shorter string as the pattern.
func (s *Scratch) myersDistance(pat, txt []rune, patASCII bool) int {
	switch {
	case len(pat) == 0:
		return len(txt)
	case len(txt) == 0:
		return len(pat)
	case len(pat) <= 64 && patASCII:
		return s.myersASCII(pat, txt)
	case len(pat) <= 64:
		return s.myersMap(pat, txt)
	default:
		return s.myersBlocks(pat, txt)
	}
}

// myersASCII is the single-word kernel with a table-indexed Peq; the
// table is built and cleared by iterating the pattern, so the array
// never needs a full wipe.
func (s *Scratch) myersASCII(pat, txt []rune) int {
	peq := &s.peqASCII
	for i, r := range pat {
		peq[r] |= 1 << uint(i)
	}
	m := len(pat)
	last := uint64(1) << uint(m-1)
	pv, mv := ^uint64(0), uint64(0)
	score := m
	for _, c := range txt {
		var eq uint64
		if c < 128 {
			eq = peq[c]
		}
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	for _, r := range pat {
		peq[r] = 0
	}
	return score
}

// myersMap is the single-word kernel for Unicode patterns: identical to
// myersASCII with the Peq table behind a reused map.
func (s *Scratch) myersMap(pat, txt []rune) int {
	peq := s.peqMap
	for i, r := range pat {
		peq[r] |= 1 << uint(i)
	}
	m := len(pat)
	last := uint64(1) << uint(m-1)
	pv, mv := ^uint64(0), uint64(0)
	score := m
	for _, c := range txt {
		eq := peq[c]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	clear(peq)
	return score
}

// myersBlocks is the multi-word variant for patterns over 64 runes: the
// pattern is split into ⌈m/64⌉ blocks processed low to high per text
// character, with the horizontal delta (±1) carried between blocks. The
// score is tracked at the pattern's real last row — bit (m−1) mod 64 of
// the top block, read before the shift — so the top block needs no
// padding and its unused high bits never influence the result (carries
// only propagate upward).
func (s *Scratch) myersBlocks(pat, txt []rune) int {
	m := len(pat)
	w := (m + 63) / 64
	s.vp = growWords(s.vp, w)
	s.vn = growWords(s.vn, w)
	for i := 0; i < w; i++ {
		s.vp[i] = ^uint64(0)
		s.vn[i] = 0
	}
	clear(s.mwOff)
	s.peqBuf = s.peqBuf[:0]
	for i, r := range pat {
		off, ok := s.mwOff[r]
		if !ok {
			off = len(s.peqBuf)
			for k := 0; k < w; k++ {
				s.peqBuf = append(s.peqBuf, 0)
			}
			s.mwOff[r] = off
		}
		s.peqBuf[off+i/64] |= 1 << uint(i%64)
	}
	score := m
	lastBit := uint64(1) << uint((m-1)%64)
	for _, c := range txt {
		off, known := s.mwOff[c]
		hin := 1
		for b := 0; b < w; b++ {
			var eq uint64
			if known {
				eq = s.peqBuf[off+b]
			}
			pv, mv := s.vp[b], s.vn[b]
			var hinNeg uint64
			if hin < 0 {
				hinNeg = 1
			}
			xv := eq | mv
			eq |= hinNeg
			xh := (((eq & pv) + pv) ^ pv) | eq
			ph := mv | ^(xh | pv)
			mh := pv & xh
			top := uint64(1) << 63
			if b == w-1 {
				top = lastBit
			}
			hout := 0
			if ph&top != 0 {
				hout = 1
			} else if mh&top != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hinNeg == 1 {
				mh |= 1
			} else if hin > 0 {
				ph |= 1
			}
			s.vp[b] = mh | ^(xv | ph)
			s.vn[b] = ph & xv
			hin = hout
		}
		score += hin
	}
	return score
}
