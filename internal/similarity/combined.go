package similarity

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Weighted is one component of a Combined metric.
type Weighted struct {
	Metric Metric
	Weight float64
}

// Combined is a convex combination of metrics — the usual shape of the
// lexical part of a schema matcher's objective function (COMA-style
// combination of matchers). Weights are normalized on construction.
type Combined struct {
	parts []Weighted
	label string
}

// NewCombined builds a Combined metric. It returns an error when no
// parts are given, a weight is negative, or all weights are zero.
func NewCombined(parts ...Weighted) (*Combined, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("similarity: combined metric needs at least one part")
	}
	total := 0.0
	for _, p := range parts {
		if p.Metric == nil {
			return nil, fmt.Errorf("similarity: combined metric part has nil metric")
		}
		if p.Weight < 0 {
			return nil, fmt.Errorf("similarity: negative weight %v for %s", p.Weight, p.Metric.Name())
		}
		total += p.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("similarity: all weights zero")
	}
	norm := make([]Weighted, len(parts))
	names := make([]string, len(parts))
	for i, p := range parts {
		norm[i] = Weighted{Metric: p.Metric, Weight: p.Weight / total}
		names[i] = fmt.Sprintf("%s:%.2f", p.Metric.Name(), p.Weight/total)
	}
	return &Combined{parts: norm, label: "combined(" + strings.Join(names, ",") + ")"}, nil
}

// Similarity implements Metric as the weighted mean of the parts.
func (c *Combined) Similarity(a, b string) float64 {
	s := 0.0
	for _, p := range c.parts {
		s += p.Weight * p.Metric.Similarity(a, b)
	}
	return clamp01(s)
}

// Name implements Metric.
func (c *Combined) Name() string { return c.label }

// Parts returns a copy of the normalized components in combination
// order. Consumers that need the exact convex structure (for example
// the candidate index deriving per-part similarity upper bounds)
// read it from here instead of re-parsing the label.
func (c *Combined) Parts() []Weighted {
	out := make([]Weighted, len(c.parts))
	copy(out, c.parts)
	return out
}

// Weights returns a copy of the normalized component weights keyed by
// metric name, for reporting.
func (c *Combined) Weights() map[string]float64 {
	out := make(map[string]float64, len(c.parts))
	for _, p := range c.parts {
		out[p.Metric.Name()] = p.Weight
	}
	return out
}

// DefaultNameMetric returns the metric used by the matchers for element
// names unless configured otherwise: a synonym-aware blend of
// Jaro-Winkler, trigram overlap, token Jaccard and common affixes. The
// blend is the standard "hybrid matcher" recipe from the schema
// matching literature the paper builds on; the affix components catch
// abbreviations and compounds ("addr"/"address", "name"/"fullname")
// that sit outside the Jaro match window.
func DefaultNameMetric() Metric {
	tri, err := NewQGramSim(3)
	if err != nil {
		panic("similarity: impossible: " + err.Error()) // q=3 is valid by construction
	}
	base, err := NewCombined(
		Weighted{Metric: JaroWinklerSim{}, Weight: 0.3},
		Weighted{Metric: tri, Weight: 0.25},
		Weighted{Metric: JaccardSim{}, Weight: 0.15},
		Weighted{Metric: CommonPrefixSim{}, Weight: 0.15},
		Weighted{Metric: CommonSuffixSim{}, Weight: 0.15},
	)
	if err != nil {
		panic("similarity: impossible: " + err.Error())
	}
	return SynonymSim{Dict: DefaultSchemaSynonyms(), Base: base}
}

// Cached memoizes another metric behind a single RWMutex. Superseded
// for the matching hot path by the sharded engine.Memo
// (internal/engine), which the matchers and pipeline thread instead;
// Cached is retained for metric-level comparisons in tests and
// benchmarks. Safe for concurrent use.
type Cached struct {
	mu    sync.RWMutex
	inner Metric
	table map[[2]string]float64
}

// NewCached wraps inner with an unbounded memo table.
func NewCached(inner Metric) *Cached {
	return &Cached{inner: inner, table: make(map[[2]string]float64)}
}

// Similarity implements Metric with memoization. The cache key is
// order-normalized only if the inner metric is symmetric in practice;
// we keep ordered keys for full generality.
func (c *Cached) Similarity(a, b string) float64 {
	key := [2]string{a, b}
	c.mu.RLock()
	v, ok := c.table[key]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = c.inner.Similarity(a, b)
	c.mu.Lock()
	c.table[key] = v
	c.mu.Unlock()
	return v
}

// Name implements Metric.
func (c *Cached) Name() string { return "cached(" + c.inner.Name() + ")" }

// Inner returns the wrapped metric.
func (c *Cached) Inner() Metric { return c.inner }

// Size returns the number of memoized pairs.
func (c *Cached) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.table)
}

// Registry maps metric names to constructors so CLIs can select metrics
// by flag value.
var registry = map[string]func() Metric{
	"edit":         func() Metric { return EditSim{} },
	"osa":          func() Metric { return OSASim{} },
	"jaro":         func() Metric { return JaroSim{} },
	"jaro-winkler": func() Metric { return JaroWinklerSim{} },
	"jaccard":      func() Metric { return JaccardSim{} },
	"dice":         func() Metric { return DiceSim{} },
	"cosine":       func() Metric { return CosineSim{} },
	"lcs":          func() Metric { return LCSSim{} },
	"prefix":       func() Metric { return CommonPrefixSim{} },
	"suffix":       func() Metric { return CommonSuffixSim{} },
	"monge-elkan":  func() Metric { return MongeElkan{Inner: JaroWinklerSim{}} },
	"soundex":      func() Metric { return SoundexSim{} },
	"trigram": func() Metric {
		m, _ := NewQGramSim(3)
		return m
	},
	"bigram": func() Metric {
		m, _ := NewQGramSim(2)
		return m
	},
	"default": DefaultNameMetric,
}

// ByName returns the metric registered under name, or an error listing
// the known names.
func ByName(name string) (Metric, error) {
	if f, ok := registry[strings.ToLower(name)]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("similarity: unknown metric %q (known: %s)", name, strings.Join(MetricNames(), ", "))
}

// MetricNames lists the registered metric names, sorted.
func MetricNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
