package similarity

import "testing"

func TestSoundexKnownCodes(t *testing.T) {
	// Canonical examples from the Soundex specification.
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // H transparent between S and C
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"Smith", "S530"},
		{"Smyth", "S530"},
		{"", ""},
		{"123", ""},
		{"a", "A000"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexCaseInsensitive(t *testing.T) {
	if Soundex("SMITH") != Soundex("smith") {
		t.Error("case should not matter")
	}
}

func TestSoundexSim(t *testing.T) {
	m := SoundexSim{}
	if m.Similarity("Smith", "Smyth") != 1 {
		t.Error("phonetic equivalents should score 1")
	}
	if m.Similarity("Smith", "Jones") != 0 {
		t.Error("different codes should score 0")
	}
	if m.Similarity("", "") != 1 {
		t.Error("both empty should score 1")
	}
	if m.Name() != "soundex" {
		t.Error("Name changed")
	}
}

func TestSoundexRegistered(t *testing.T) {
	m, err := ByName("soundex")
	if err != nil {
		t.Fatalf("soundex not registered: %v", err)
	}
	if m.Similarity("Robert", "Rupert") != 1 {
		t.Error("registered soundex broken")
	}
}
