package similarity

import (
	"math"
	"sync"
	"testing"
)

// fuzzKernels compiles each registry metric (plus the symmetric
// Monge-Elkan) once per process; fuzz executions reuse the kernels and
// their interners.
var fuzzKernels struct {
	once sync.Once
	ks   []*Kernel
}

func fuzzKernelSet() []*Kernel {
	fuzzKernels.once.Do(func() {
		for _, name := range MetricNames() {
			m, err := ByName(name)
			if err != nil {
				panic(err)
			}
			fuzzKernels.ks = append(fuzzKernels.ks, NewKernel(m))
		}
		fuzzKernels.ks = append(fuzzKernels.ks, NewKernel(SymMongeElkan{}))
	})
	return fuzzKernels.ks
}

// FuzzKernelParity feeds arbitrary (including invalid-UTF-8) string
// pairs through every registry metric and requires the compiled kernel
// to reproduce the reference similarity bit for bit.
func FuzzKernelParity(f *testing.F) {
	seeds := [][2]string{
		{"customerName", "client_name"},
		{"", ""},
		{" customer ", "client"},
		{"İstanbul", "istanbul\xff"},
		{"XMLSchemaID", "xml schema id"},
		{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "aba"},
		{"Ωμέγα#ß", "\t\n"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 2048 || len(b) > 2048 {
			t.Skip()
		}
		for _, k := range fuzzKernelSet() {
			sess := k.Session()
			got := sess.Similarity(a, b)
			want := k.Metric().Similarity(a, b)
			sess.Close()
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s(%q, %q): kernel %v (%x) != reference %v (%x)",
					k.Metric().Name(), a, b, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	})
}
