package similarity

import (
	"fmt"
	"strings"
	"testing"
)

var benchPairs = [][2]string{
	{"customerName", "client_name"},
	{"zipcode", "postal_code"},
	{"orderLineItemQuantity", "order_item_qty"},
	{"x", "completely_different_thing"},
}

func benchMetricPairs(b *testing.B, m Metric) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchPairs[i%len(benchPairs)]
		_ = m.Similarity(p[0], p[1])
	}
}

func BenchmarkLevenshtein(b *testing.B)   { benchMetricPairs(b, EditSim{}) }
func BenchmarkOSA(b *testing.B)           { benchMetricPairs(b, OSASim{}) }
func BenchmarkJaro(b *testing.B)          { benchMetricPairs(b, JaroSim{}) }
func BenchmarkJaroWinklerB(b *testing.B)  { benchMetricPairs(b, JaroWinklerSim{}) }
func BenchmarkTrigram(b *testing.B)       { g, _ := NewQGramSim(3); benchMetricPairs(b, g) }
func BenchmarkJaccard(b *testing.B)       { benchMetricPairs(b, JaccardSim{}) }
func BenchmarkCosine(b *testing.B)        { benchMetricPairs(b, CosineSim{}) }
func BenchmarkMongeElkanB(b *testing.B)   { benchMetricPairs(b, MongeElkan{Inner: JaroWinklerSim{}}) }
func BenchmarkLCSB(b *testing.B)          { benchMetricPairs(b, LCSSim{}) }
func BenchmarkDefaultMetric(b *testing.B) { benchMetricPairs(b, DefaultNameMetric()) }

// BenchmarkEditScaling shows the quadratic growth of edit distance
// with name length.
func BenchmarkEditScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		a := strings.Repeat("ab", n/2)
		c := strings.Repeat("ba", n/2)
		b.Run(fmt.Sprintf("len%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Levenshtein(a, c)
			}
		})
	}
}

func BenchmarkTokenize(b *testing.B) {
	names := []string{"XMLSchemaElementID", "customer_order_line_item", "simpleword"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(names[i%len(names)])
	}
}

func BenchmarkSynonymLookup(b *testing.B) {
	d := DefaultSchemaSynonyms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Synonyms("zip", "postcode")
	}
}

func BenchmarkCachedHitPath(b *testing.B) {
	c := NewCached(DefaultNameMetric())
	c.Similarity("warm", "cache") // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Similarity("warm", "cache")
	}
}
