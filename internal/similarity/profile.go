package similarity

import (
	"slices"
	"strings"
	"sync"
	"unicode"
)

// GramQ is the q-gram width of NameProfile.Grams. It matches the
// trigram component of DefaultNameMetric, which is the only QGramSim
// width the kernels (and the candidate index) treat non-trivially.
const GramQ = 3

// NameProfile is the precomputed feature vector of one name: everything
// the batched kernels and the candidate index's bounders need to score
// or bound a pair without touching the string again. Profiles are
// interned (one per distinct name per Interner, shared across index
// generations and scoring sessions) and immutable once published.
type NameProfile struct {
	// ID is the interner-local identity; equal IDs mean equal names.
	ID uint32
	// Name is the raw name the profile was built from.
	Name string
	// Runes is the raw rune decoding of Name; Lower is its per-rune
	// unicode.ToLower image (identical length — strings.ToLower applies
	// the same simple, one-to-one case mapping).
	Runes []rune
	Lower []rune
	// ASCII marks every raw rune < 128, enabling the table-indexed
	// Myers fast path.
	ASCII bool
	// Bitmap folds the raw runes onto 64 bits (rune mod 64). Disjoint
	// bitmaps prove two names share no rune, so Jaro is zero.
	Bitmap uint64
	// Grams is the sorted multiset of interned, padded, lower-cased
	// q-gram IDs (q = GramQ). IDs are exact — equal ID means equal
	// gram — so multiset intersections equal QGramSim's.
	Grams []uint32
	// CharCnt buckets the lower-cased runes into 32 classes (rune % 32)
	// for the Jaro matches bound. BigChar marks names long enough for a
	// uint8 bucket to saturate, in which case the bound falls back to
	// min(len, len).
	CharCnt [32]uint8
	BigChar bool
	// Prefix/Suffix hold the first/last ≤8 lower-cased runes; Suffix is
	// stored reversed so both compare front-to-front.
	Prefix []rune
	Suffix []rune
	// Toks are the interned sub-profiles of Tokenize(Name), in token
	// order with multiplicity. A single-token name references itself.
	Toks []*NameProfile
	// TokIDs/TokCounts are the sorted distinct token profile IDs with
	// their multiplicities (the token count vector of CosineSim);
	// TokClasses are the sorted distinct known synonym-class IDs.
	TokIDs     []uint32
	TokCounts  []uint32
	TokClasses []int32
	// NormID identifies the synonym-normalized whole name (trimmed,
	// lower-cased — exactly SynonymDict's normWord): two profiles with
	// equal NormID satisfy Synonyms(a, b).
	NormID uint32
	// Class is the synonym class of the whole name, -1 when unknown.
	Class int32
}

// RuneLen returns the rune length of the raw name.
func (p *NameProfile) RuneLen() int { return len(p.Runes) }

// GramTotal is the padded gram count of the name: runes + GramQ − 1,
// the denominator side of the Dice and count-filter bounds.
func (p *NameProfile) GramTotal() int { return len(p.Grams) }

// Interner builds and caches NameProfiles. One Interner is shared by a
// scoring kernel and everything derived from it (candidate-index
// generations, per-shard derives), so a name is profiled once per
// process lifetime, not once per snapshot or per session. It only ever
// grows; profiles are small and the vocabulary of a workload is bounded
// in practice. Safe for concurrent use; the lookup fast path is a
// read-locked map hit.
type Interner struct {
	mu     sync.RWMutex
	dict   *SynonymDict // may be nil: no synonym-class features
	byName map[string]*NameProfile
	norm   map[string]uint32
	// grams interns q-gram windows by their packed key: GramQ runes of
	// ≤21 bits each (runes never exceed 0x10FFFF) shifted into one
	// uint64, so the per-gram map operation hashes a machine word
	// instead of a rune array.
	grams map[uint64]uint32
	next  uint32
}

// NewInterner returns an empty interner whose profiles carry synonym
// features from dict (nil: no synonym features).
func NewInterner(dict *SynonymDict) *Interner {
	return &Interner{
		dict:   dict,
		byName: make(map[string]*NameProfile),
		norm:   make(map[string]uint32),
		grams:  make(map[uint64]uint32),
	}
}

// Dict returns the synonym dictionary the profiles were built against.
func (in *Interner) Dict() *SynonymDict { return in.dict }

// Profile returns the profile of name, building it on first use.
func (in *Interner) Profile(name string) *NameProfile {
	in.mu.RLock()
	p, ok := in.byName[name]
	in.mu.RUnlock()
	if ok {
		return p
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.buildLocked(name)
}

// Len returns the number of interned profiles.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.byName)
}

func (in *Interner) buildLocked(name string) *NameProfile {
	if p, ok := in.byName[name]; ok {
		return p
	}
	rs := []rune(name)
	// Lower aliases Runes until a rune actually changes case — most
	// schema names are already lower-case, and profiles are immutable,
	// so sharing the backing array is safe.
	lower := rs
	ascii := true
	var bitmap uint64
	for i, r := range rs {
		if l := unicode.ToLower(r); l != r {
			if &lower[0] == &rs[0] {
				lower = append([]rune(nil), rs...)
			}
			lower[i] = l
		}
		if r >= 128 {
			ascii = false
		}
		bitmap |= 1 << uint(r&63)
	}
	p := &NameProfile{
		ID:     in.next,
		Name:   name,
		Runes:  rs,
		Lower:  lower,
		ASCII:  ascii,
		Bitmap: bitmap,
		Class:  -1,
	}
	in.next++
	p.Grams = in.gramsLocked(lower)
	for _, r := range lower {
		b := r % 32
		if b < 0 {
			b += 32
		}
		if p.CharCnt[b] == 255 {
			p.BigChar = true
		} else {
			p.CharCnt[b]++
		}
	}
	n := len(lower)
	k := n
	if k > 8 {
		k = 8
	}
	// Prefix can alias the (immutable) lowered runes; Suffix is stored
	// reversed, so it needs its own backing.
	p.Prefix = lower[:k:k]
	if k > 0 {
		p.Suffix = make([]rune, k)
		for i := 0; i < k; i++ {
			p.Suffix[i] = lower[n-1-i]
		}
	}
	norm := strings.ToLower(strings.TrimSpace(name))
	nid, ok := in.norm[norm]
	if !ok {
		nid = uint32(len(in.norm))
		in.norm[norm] = nid
	}
	p.NormID = nid
	if in.dict != nil {
		if c, ok := in.dict.ClassID(name); ok {
			p.Class = int32(c)
		}
	}
	// Publish before interning tokens: a single-token name tokenizes to
	// itself, and the recursive lookup must find the (scalar-complete)
	// profile instead of rebuilding it forever.
	in.byName[name] = p
	for _, t := range Tokenize(name) {
		p.Toks = append(p.Toks, in.buildLocked(t))
	}
	if len(p.Toks) > 0 {
		ids := make([]uint32, len(p.Toks))
		for i, t := range p.Toks {
			ids[i] = t.ID
		}
		slices.Sort(ids)
		for i := 0; i < len(ids); {
			j := i + 1
			for j < len(ids) && ids[j] == ids[i] {
				j++
			}
			p.TokIDs = append(p.TokIDs, ids[i])
			p.TokCounts = append(p.TokCounts, uint32(j-i))
			i = j
		}
		for _, t := range p.Toks {
			if t.Class >= 0 {
				p.TokClasses = append(p.TokClasses, t.Class)
			}
		}
		slices.Sort(p.TokClasses)
		p.TokClasses = slices.Compact(p.TokClasses)
	}
	return p
}

// gramsLocked returns the sorted multiset of interned IDs of the q-wide
// rune windows of rs padded with q−1 '#' runes on each side — the exact
// gram set QGramSim extracts. The window rolls through a packed uint64
// key (runeBits bits per rune), so each gram is one word-keyed map
// operation with no scratch slice.
func (in *Interner) gramsLocked(rs []rune) []uint32 {
	const (
		q        = GramQ
		runeBits = 21 // runes are ≤ 0x10FFFF
		window   = uint64(1)<<(q*runeBits) - 1
	)
	out := make([]uint32, 0, len(rs)+q-1)
	var key uint64
	for i := 0; i < q-1; i++ {
		key = key<<runeBits | '#'
	}
	push := func(r rune) {
		key = (key<<runeBits | uint64(r)) & window
		id, ok := in.grams[key]
		if !ok {
			id = uint32(len(in.grams))
			in.grams[key] = id
		}
		out = append(out, id)
	}
	for _, r := range rs {
		push(r)
	}
	for i := 0; i < q-1; i++ {
		push('#')
	}
	slices.Sort(out)
	return out
}

// MergeCount returns the multiset intersection size of two sorted ID
// slices (for sorted distinct slices this is plain |A ∩ B|).
func MergeCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
