package similarity

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"schema", "schemas", 1},
		{"straße", "strasse", 2}, // rune-level: ß ≠ ss
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOSATransposition(t *testing.T) {
	if got := OSADistance("ab", "ba"); got != 1 {
		t.Errorf("OSA(ab,ba) = %d, want 1 (transposition)", got)
	}
	if got := Levenshtein("ab", "ba"); got != 2 {
		t.Errorf("Levenshtein(ab,ba) = %d, want 2", got)
	}
	if got := OSADistance("address", "adderss"); got != 1 {
		t.Errorf("OSA typo distance = %d, want 1", got)
	}
}

func TestOSANeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool { return OSADistance(a, b) <= Levenshtein(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaroKnown(t *testing.T) {
	// Classic textbook values.
	if got := Jaro("MARTHA", "MARHTA"); math.Abs(got-0.944444) > 1e-4 {
		t.Errorf("Jaro(MARTHA,MARHTA) = %v, want ~0.9444", got)
	}
	if got := Jaro("DIXON", "DICKSONX"); math.Abs(got-0.766667) > 1e-4 {
		t.Errorf("Jaro(DIXON,DICKSONX) = %v, want ~0.7667", got)
	}
	if Jaro("", "") != 1 {
		t.Error("Jaro of two empty strings should be 1")
	}
	if Jaro("abc", "") != 0 {
		t.Error("Jaro vs empty should be 0")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("Jaro of disjoint strings should be 0")
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	j := Jaro("prefixed", "prefixes")
	jw := JaroWinkler("prefixed", "prefixes")
	if jw <= j {
		t.Errorf("JaroWinkler %v should exceed Jaro %v on shared prefix", jw, j)
	}
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.961111) > 1e-4 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %v, want ~0.9611", got)
	}
}

func TestQGramValidation(t *testing.T) {
	if _, err := NewQGramSim(0); err == nil {
		t.Error("q=0 should be rejected")
	}
	g, err := NewQGramSim(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Q() != 3 {
		t.Errorf("Q = %d", g.Q())
	}
}

func TestQGramBehaviour(t *testing.T) {
	g, _ := NewQGramSim(3)
	if got := g.Similarity("night", "night"); got != 1 {
		t.Errorf("identical strings = %v, want 1", got)
	}
	if got := g.Similarity("", ""); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
	nn := g.Similarity("night", "nacht")
	if nn <= 0 || nn >= 1 {
		t.Errorf("night/nacht = %v, want strictly between 0 and 1", nn)
	}
	if got := g.Similarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	// Case-insensitive.
	if g.Similarity("Name", "name") != 1 {
		t.Error("q-gram should be case-insensitive")
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"firstName", []string{"first", "name"}},
		{"FirstName", []string{"first", "name"}},
		{"first_name", []string{"first", "name"}},
		{"first-name", []string{"first", "name"}},
		{"first.name", []string{"first", "name"}},
		{"XMLSchemaID", []string{"xml", "schema", "id"}},
		{"address2", []string{"address", "2"}},
		{"zip_code_99", []string{"zip", "code", "99"}},
		{"", nil},
		{"simple", []string{"simple"}},
		{"HTTPServer", []string{"http", "server"}},
		{"ns:element", []string{"ns", "element"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJaccardDiceCosine(t *testing.T) {
	metrics := []Metric{JaccardSim{}, DiceSim{}, CosineSim{}}
	for _, m := range metrics {
		if got := m.Similarity("first_name", "FirstName"); got < 1-1e-9 {
			t.Errorf("%s on equal token sets = %v, want 1", m.Name(), got)
		}
		if got := m.Similarity("alpha", "omega"); got != 0 {
			t.Errorf("%s on disjoint = %v, want 0", m.Name(), got)
		}
		if got := m.Similarity("", ""); got != 1 {
			t.Errorf("%s on empty = %v, want 1", m.Name(), got)
		}
	}
	// Jaccard of one shared token out of three total.
	if got := (JaccardSim{}).Similarity("order_id", "order_date"); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := (DiceSim{}).Similarity("order_id", "order_date"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Dice = %v, want 0.5", got)
	}
}

func TestMongeElkan(t *testing.T) {
	me := MongeElkan{Inner: JaroWinklerSim{}}
	if got := me.Similarity("customer name", "name customer"); got < 0.99 {
		t.Errorf("reordered tokens = %v, want ~1", got)
	}
	if me.Similarity("", "") != 1 {
		t.Error("empty/empty should be 1")
	}
	if me.Similarity("a", "") != 0 {
		t.Error("nonempty/empty should be 0")
	}
	// Default inner metric path.
	var def MongeElkan
	if got := def.Similarity("abc", "abc"); got != 1 {
		t.Errorf("default inner = %v, want 1", got)
	}
	sym := SymMongeElkan{Inner: JaroWinklerSim{}}
	a, b := "order line item", "item"
	if s1, s2 := sym.Similarity(a, b), sym.Similarity(b, a); math.Abs(s1-s2) > 1e-12 {
		t.Errorf("SymMongeElkan not symmetric: %v vs %v", s1, s2)
	}
}

func TestAffixMetrics(t *testing.T) {
	p := CommonPrefixSim{}
	if got := p.Similarity("addr", "address"); got != 1 {
		t.Errorf("prefix(addr,address) = %v, want 1 (full shorter string)", got)
	}
	if got := p.Similarity("xyz", "abc"); got != 0 {
		t.Errorf("prefix disjoint = %v, want 0", got)
	}
	s := CommonSuffixSim{}
	if got := s.Similarity("postcode", "code"); got != 1 {
		t.Errorf("suffix = %v, want 1", got)
	}
	if p.Similarity("", "") != 1 || s.Similarity("", "") != 1 {
		t.Error("affix metrics on empty pair should be 1")
	}
	if p.Similarity("", "a") != 0 || s.Similarity("a", "") != 0 {
		t.Error("affix metrics vs empty should be 0")
	}
}

func TestLCS(t *testing.T) {
	if got := LongestCommonSubstring("zipcode", "postcode"); got != 4 {
		t.Errorf("LCS(zipcode,postcode) = %d, want 4 (\"code\")", got)
	}
	if got := LongestCommonSubstring("", "x"); got != 0 {
		t.Errorf("LCS with empty = %d", got)
	}
	m := LCSSim{}
	if got := m.Similarity("code", "postcode"); got != 1 {
		t.Errorf("LCSSim = %v, want 1", got)
	}
}

func TestEditSim(t *testing.T) {
	m := EditSim{}
	if m.Similarity("", "") != 1 {
		t.Error("empty pair should be 1")
	}
	if got := m.Similarity("abcd", "abcx"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("EditSim = %v, want 0.75", got)
	}
	if m.Similarity("abc", "xyz") != 0 {
		t.Error("fully different equal-length strings should be 0")
	}
}

// Property: every registered metric stays within [0,1] and scores
// identical strings as 1.
func TestAllMetricsRangeProperty(t *testing.T) {
	for _, name := range MetricNames() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		f := func(a, b string) bool {
			s := m.Similarity(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
			return m.Similarity(a, a) > 0.999
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("metric %s: %v", name, err)
		}
	}
}

func TestDistanceComplement(t *testing.T) {
	m := EditSim{}
	if d := Distance(m, "abc", "abc"); d != 0 {
		t.Errorf("Distance of identical = %v", d)
	}
	if d := Distance(m, "abc", "xyz"); d != 1 {
		t.Errorf("Distance of disjoint = %v", d)
	}
}

func TestMetricFunc(t *testing.T) {
	m := MetricFunc{Fn: func(a, b string) float64 { return 2.5 }, Label: "test"}
	if m.Similarity("x", "y") != 1 {
		t.Error("MetricFunc should clamp to [0,1]")
	}
	if m.Name() != "test" {
		t.Error("Name not propagated")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-metric"); err == nil {
		t.Error("unknown metric should error")
	}
}
