// Package similarity implements the string similarity measures used to
// build the objective function ∆ of the schema matchers. Every measure
// is normalized: a Metric returns a similarity score in [0, 1] where 1
// means identical and 0 means maximally dissimilar. Distances (lower is
// better) are obtained via Distance.
//
// The measures here are the classical ones surveyed by Rahm & Bernstein
// ("A survey of approaches to automatic schema matching", VLDB J. 2001),
// which the reproduced paper cites as the source of XML schema matching
// heuristics: edit distance, Jaro/Jaro-Winkler, q-grams, token overlap
// (Jaccard, Dice, cosine), longest common prefix/suffix/substring, a
// Monge-Elkan token aligner, and a synonym-dictionary lookup.
//
// # Kernels, profiles, and the parity contract
//
// The Metric implementations above are the reference: straightforward,
// allocation-heavy, and the definition of correctness. The hot path
// runs through compiled kernels instead (NewKernel): each distinct name
// is interned once into a NameProfile (rune slices, lower-cased form,
// token splits, q-gram IDs, character bitmaps — see Interner), and a
// KernelSession scores profile pairs against per-session scratch
// buffers, so the warm path performs zero heap allocations per pair.
// Edit distance runs bit-parallel (Myers 1999): ASCII patterns up to 64
// runes through a table-indexed fast path, Unicode patterns through a
// reused map, and longer patterns through the multi-word block variant
// — all rune-mapped, so Unicode input stays exact.
//
// Kernels must return bit-identical float64 values to the reference
// Similarity for every input — not merely close: memo tables, persisted
// warm memos, and the candidate index's answer-set guarantees compare
// floats exactly. Metrics without a native kernel (Soundex, MetricFunc,
// non-trigram q-grams, unknown implementations) compile to a fallback
// invoking the reference, so compilation never fails and the contract
// holds trivially. FuzzKernelParity enforces exact equality across the
// registry metrics on arbitrary Unicode input.
package similarity

import (
	"fmt"
	"math"
	"strings"
	"unicode"
)

// Metric scores the similarity of two strings in [0, 1].
type Metric interface {
	// Similarity returns a score in [0,1]; 1 means identical.
	Similarity(a, b string) float64
	// Name identifies the metric in reports and configs.
	Name() string
}

// Distance converts a Metric similarity into a dissimilarity in [0,1].
func Distance(m Metric, a, b string) float64 {
	return 1 - clamp01(m.Similarity(a, b))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	if math.IsNaN(x) {
		return 0
	}
	return x
}

// MetricFunc adapts a plain function to the Metric interface.
type MetricFunc struct {
	Fn    func(a, b string) float64
	Label string
}

// Similarity calls the wrapped function and clamps the result to [0,1].
func (m MetricFunc) Similarity(a, b string) float64 { return clamp01(m.Fn(a, b)) }

// Name returns the metric label.
func (m MetricFunc) Name() string { return m.Label }

// ---------------------------------------------------------------------------
// Edit-distance family
// ---------------------------------------------------------------------------

// Levenshtein computes the classic edit distance (insert, delete,
// substitute, unit costs) between a and b, operating on runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// OSADistance computes the optimal string alignment distance: Levenshtein
// extended with transposition of adjacent runes (Damerau's restriction:
// no substring is edited twice).
func OSADistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	// Three rolling rows are enough for the transposition lookback.
	prev2 := make([]int, m+1)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < cur[j] {
					cur[j] = t
				}
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[m]
}

// EditSim is the Levenshtein distance normalized by the longer string:
// 1 - lev(a,b)/max(|a|,|b|). Identical strings score 1; when either
// string is empty the score is 1 only if both are.
type EditSim struct{}

// Similarity implements Metric.
func (EditSim) Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	mx := la
	if lb > mx {
		mx = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(mx)
}

// Name implements Metric.
func (EditSim) Name() string { return "edit" }

// OSASim normalizes OSADistance the same way EditSim normalizes
// Levenshtein; it forgives adjacent-character transpositions (typos).
type OSASim struct{}

// Similarity implements Metric.
func (OSASim) Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	mx := la
	if lb > mx {
		mx = lb
	}
	return 1 - float64(OSADistance(a, b))/float64(mx)
}

// Name implements Metric.
func (OSASim) Name() string { return "osa" }

// ---------------------------------------------------------------------------
// Jaro and Jaro-Winkler
// ---------------------------------------------------------------------------

// Jaro computes the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters in order.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro for strings sharing a common prefix of up to
// four runes, using the standard scaling factor p=0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// JaroSim exposes Jaro as a Metric.
type JaroSim struct{}

// Similarity implements Metric.
func (JaroSim) Similarity(a, b string) float64 { return Jaro(a, b) }

// Name implements Metric.
func (JaroSim) Name() string { return "jaro" }

// JaroWinklerSim exposes JaroWinkler as a Metric.
type JaroWinklerSim struct{}

// Similarity implements Metric.
func (JaroWinklerSim) Similarity(a, b string) float64 { return JaroWinkler(a, b) }

// Name implements Metric.
func (JaroWinklerSim) Name() string { return "jaro-winkler" }

// ---------------------------------------------------------------------------
// q-gram overlap
// ---------------------------------------------------------------------------

// QGramSim measures Dice overlap of padded q-gram multisets. Q must be
// at least 1; NewQGramSim validates it.
type QGramSim struct {
	q int
}

// NewQGramSim returns a q-gram metric. It returns an error for q < 1.
func NewQGramSim(q int) (QGramSim, error) {
	if q < 1 {
		return QGramSim{}, fmt.Errorf("similarity: q-gram size %d < 1", q)
	}
	return QGramSim{q: q}, nil
}

// Q returns the gram size.
func (g QGramSim) Q() int { return g.q }

// grams returns the multiset of padded q-grams of s as a count map.
func (g QGramSim) grams(s string) map[string]int {
	pad := strings.Repeat("#", g.q-1)
	padded := pad + strings.ToLower(s) + pad
	rs := []rune(padded)
	out := make(map[string]int)
	for i := 0; i+g.q <= len(rs); i++ {
		out[string(rs[i:i+g.q])]++
	}
	return out
}

// Similarity implements Metric via the Dice coefficient on q-gram
// multisets: 2·|A∩B| / (|A|+|B|).
func (g QGramSim) Similarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	ga, gb := g.grams(a), g.grams(b)
	inter, total := 0, 0
	for k, ca := range ga {
		total += ca
		if cb, ok := gb[k]; ok {
			inter += minInt2(ca, cb)
		}
	}
	for _, cb := range gb {
		total += cb
	}
	if total == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(total)
}

// Name implements Metric.
func (g QGramSim) Name() string { return fmt.Sprintf("%d-gram", g.q) }

// ---------------------------------------------------------------------------
// Token-set measures
// ---------------------------------------------------------------------------

// Tokenize splits a schema element name into lower-cased word tokens.
// It understands camelCase, PascalCase, snake_case, kebab-case, dotted
// names, digit boundaries and acronym runs (e.g. "XMLSchemaID" →
// ["xml", "schema", "id"]).
func Tokenize(s string) []string {
	var tokens []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			tokens = append(tokens, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
	}
	rs := []rune(s)
	for i, r := range rs {
		switch {
		case r == '_' || r == '-' || r == '.' || r == '/' || r == ' ' || r == ':':
			flush()
		case unicode.IsDigit(r):
			if len(cur) > 0 && !unicode.IsDigit(cur[len(cur)-1]) {
				flush()
			}
			cur = append(cur, r)
		case unicode.IsUpper(r):
			if len(cur) > 0 {
				prev := cur[len(cur)-1]
				// Boundary at lower→Upper, and at the last capital of an
				// acronym run followed by a lowercase ("XMLSchema" → XML|Schema).
				nextLower := i+1 < len(rs) && unicode.IsLower(rs[i+1])
				if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && nextLower) {
					flush()
				}
			}
			cur = append(cur, r)
		default:
			if len(cur) > 0 && unicode.IsDigit(cur[len(cur)-1]) {
				flush()
			}
			cur = append(cur, r)
		}
	}
	flush()
	return tokens
}

func tokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// JaccardSim is token-set Jaccard overlap |A∩B|/|A∪B| after Tokenize.
type JaccardSim struct{}

// Similarity implements Metric.
func (JaccardSim) Similarity(a, b string) float64 {
	sa, sb := tokenSet(a), tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Name implements Metric.
func (JaccardSim) Name() string { return "jaccard" }

// DiceSim is the token-set Dice coefficient 2|A∩B|/(|A|+|B|).
type DiceSim struct{}

// Similarity implements Metric.
func (DiceSim) Similarity(a, b string) float64 {
	sa, sb := tokenSet(a), tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	if len(sa)+len(sb) == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// Name implements Metric.
func (DiceSim) Name() string { return "dice" }

// CosineSim is cosine similarity over token count vectors.
type CosineSim struct{}

// Similarity implements Metric.
func (CosineSim) Similarity(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	ca := make(map[string]int)
	for _, t := range ta {
		ca[t]++
	}
	cb := make(map[string]int)
	for _, t := range tb {
		cb[t]++
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for t, x := range ca {
		na += float64(x * x)
		if y, ok := cb[t]; ok {
			dot += float64(x * y)
		}
	}
	for _, y := range cb {
		nb += float64(y * y)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Name implements Metric.
func (CosineSim) Name() string { return "cosine" }

// MongeElkan aligns the tokens of a against their best-matching tokens
// of b under an inner metric, averaging the best scores. It is
// asymmetric by definition; SymMongeElkan symmetrizes it.
type MongeElkan struct {
	Inner Metric
}

func (m MongeElkan) inner() Metric {
	if m.Inner == nil {
		return JaroWinklerSim{}
	}
	return m.Inner
}

// mongeElkanTokens is the token-level core: both strings are tokenized
// exactly once by the caller and the slices are reused across the whole
// alignment (and, in SymMongeElkan, across both directions).
func mongeElkanTokens(inner Metric, ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := inner.Similarity(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// Similarity implements Metric (asymmetric variant, a against b).
func (m MongeElkan) Similarity(a, b string) float64 {
	return mongeElkanTokens(m.inner(), Tokenize(a), Tokenize(b))
}

// Name implements Metric.
func (m MongeElkan) Name() string { return "monge-elkan" }

// SymMongeElkan is the symmetric mean of MongeElkan both ways.
type SymMongeElkan struct {
	Inner Metric
}

// Similarity implements Metric. Each string is tokenized once and the
// token slices serve both alignment directions.
func (m SymMongeElkan) Similarity(a, b string) float64 {
	inner := MongeElkan{Inner: m.Inner}.inner()
	ta, tb := Tokenize(a), Tokenize(b)
	return (mongeElkanTokens(inner, ta, tb) + mongeElkanTokens(inner, tb, ta)) / 2
}

// Name implements Metric.
func (m SymMongeElkan) Name() string { return "sym-monge-elkan" }

// ---------------------------------------------------------------------------
// Affix measures
// ---------------------------------------------------------------------------

// CommonPrefixSim scores the longest common prefix relative to the
// shorter string, a cheap signal that catches abbreviations
// ("addr" vs "address").
type CommonPrefixSim struct{}

// Similarity implements Metric.
func (CommonPrefixSim) Similarity(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	n := minInt2(len(ra), len(rb))
	if n == 0 {
		return 0
	}
	i := 0
	for i < n && ra[i] == rb[i] {
		i++
	}
	return float64(i) / float64(n)
}

// Name implements Metric.
func (CommonPrefixSim) Name() string { return "prefix" }

// CommonSuffixSim mirrors CommonPrefixSim for suffixes.
type CommonSuffixSim struct{}

// Similarity implements Metric.
func (CommonSuffixSim) Similarity(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	n := minInt2(len(ra), len(rb))
	if n == 0 {
		return 0
	}
	i := 0
	for i < n && ra[len(ra)-1-i] == rb[len(rb)-1-i] {
		i++
	}
	return float64(i) / float64(n)
}

// Name implements Metric.
func (CommonSuffixSim) Name() string { return "suffix" }

// LongestCommonSubstring returns the length of the longest common
// contiguous rune sequence of a and b.
func LongestCommonSubstring(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// LCSSim normalizes LongestCommonSubstring by the shorter string.
type LCSSim struct{}

// Similarity implements Metric.
func (LCSSim) Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	n := minInt2(la, lb)
	if n == 0 {
		return 0
	}
	return float64(LongestCommonSubstring(strings.ToLower(a), strings.ToLower(b))) / float64(n)
}

// Name implements Metric.
func (LCSSim) Name() string { return "lcs" }

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func minInt(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
