package similarity

import (
	"strings"
	"testing"
)

func TestSynonymGroups(t *testing.T) {
	d := NewSynonymDict()
	d.AddGroup("zip", "postcode")
	if !d.Synonyms("zip", "postcode") {
		t.Error("zip/postcode should be synonyms")
	}
	if !d.Synonyms("ZIP", "Postcode") {
		t.Error("lookup should be case-insensitive")
	}
	if d.Synonyms("zip", "city") {
		t.Error("zip/city should not be synonyms")
	}
	if !d.Synonyms("unknown", "unknown") {
		t.Error("identical words are always synonyms")
	}
}

func TestSynonymTransitiveMerge(t *testing.T) {
	d := NewSynonymDict()
	d.AddGroup("a", "b")
	d.AddGroup("c", "d")
	if d.Synonyms("a", "c") {
		t.Fatal("premature merge")
	}
	d.AddGroup("b", "c") // merges both classes
	for _, pair := range [][2]string{{"a", "c"}, {"a", "d"}, {"b", "d"}} {
		if !d.Synonyms(pair[0], pair[1]) {
			t.Errorf("%v should be synonyms after merge", pair)
		}
	}
}

func TestSynonymClassOf(t *testing.T) {
	d := NewSynonymDict()
	d.AddGroup("x", "y", "z")
	got := d.ClassOf("y")
	if len(got) != 3 {
		t.Errorf("ClassOf = %v", got)
	}
	if got := d.ClassOf("nope"); len(got) != 1 || got[0] != "nope" {
		t.Errorf("ClassOf unknown = %v", got)
	}
}

func TestSynonymEmptyGroupNoop(t *testing.T) {
	d := NewSynonymDict()
	d.AddGroup()
	if d.Len() != 0 {
		t.Error("empty AddGroup should be a no-op")
	}
}

func TestParseSynonyms(t *testing.T) {
	src := `
# comment line
zip, postcode, zipcode
phone tel   # trailing comment
`
	d, err := ParseSynonyms(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Synonyms("zip", "zipcode") || !d.Synonyms("phone", "tel") {
		t.Error("parsed groups incomplete")
	}
	if d.Synonyms("zip", "tel") {
		t.Error("groups leaked into each other")
	}
}

func TestParseSynonymsSingleWordError(t *testing.T) {
	if _, err := ParseSynonyms(strings.NewReader("lonely\n")); err == nil {
		t.Error("single-word line should error")
	}
}

func TestDefaultSchemaSynonyms(t *testing.T) {
	d := DefaultSchemaSynonyms()
	pairs := [][2]string{
		{"zip", "postcode"},
		{"price", "cost"},
		{"customer", "client"},
		{"qty", "quantity"},
	}
	for _, p := range pairs {
		if !d.Synonyms(p[0], p[1]) {
			t.Errorf("default dict should know %v", p)
		}
	}
	if d.Synonyms("zip", "price") {
		t.Error("unrelated classes merged in default dict")
	}
	if len(d.Words()) < 100 {
		t.Errorf("default dict suspiciously small: %d words", len(d.Words()))
	}
}

func TestSynonymSim(t *testing.T) {
	m := SynonymSim{Dict: DefaultSchemaSynonyms(), Base: EditSim{}}
	if got := m.Similarity("zip", "postcode"); got != 1 {
		t.Errorf("synonym pair = %v, want 1", got)
	}
	// Token-level synonym recognition.
	if got := m.Similarity("customer_name", "client_name"); got != 1 {
		t.Errorf("tokenwise synonym pair = %v, want 1", got)
	}
	// Falls back to base for unrelated words: score strictly below 1.
	if got := m.Similarity("giraffe", "quark"); got >= 0.8 {
		t.Errorf("unrelated pair = %v, want low", got)
	}
}

func TestSynonymSimNilParts(t *testing.T) {
	var m SynonymSim // nil dict and base
	if got := m.Similarity("abc", "abc"); got != 1 {
		t.Errorf("nil-part SynonymSim identical = %v", got)
	}
	m2 := SynonymSim{Dict: NewSynonymDict()}
	if got := m2.Similarity("abcd", "abcx"); got < 0.7 || got > 0.8 {
		t.Errorf("nil base should default to EditSim: got %v", got)
	}
}

func TestCombinedValidation(t *testing.T) {
	if _, err := NewCombined(); err == nil {
		t.Error("no parts should error")
	}
	if _, err := NewCombined(Weighted{Metric: EditSim{}, Weight: -1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewCombined(Weighted{Metric: EditSim{}, Weight: 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := NewCombined(Weighted{Metric: nil, Weight: 1}); err == nil {
		t.Error("nil metric should error")
	}
}

func TestCombinedNormalizesWeights(t *testing.T) {
	c, err := NewCombined(
		Weighted{Metric: EditSim{}, Weight: 2},
		Weighted{Metric: JaroSim{}, Weight: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Weights()
	if w["edit"] != 0.5 || w["jaro"] != 0.5 {
		t.Errorf("weights not normalized: %v", w)
	}
	if got := c.Similarity("same", "same"); got != 1 {
		t.Errorf("combined identical = %v", got)
	}
}

func TestDefaultNameMetric(t *testing.T) {
	m := DefaultNameMetric()
	if got := m.Similarity("zip", "postcode"); got != 1 {
		t.Errorf("default metric should use synonyms: %v", got)
	}
	hi := m.Similarity("customerName", "customer_name")
	if hi < 0.9 {
		t.Errorf("case-convention variants = %v, want high", hi)
	}
	lo := m.Similarity("velocity", "marmalade")
	if lo >= hi {
		t.Errorf("unrelated %v should score below related %v", lo, hi)
	}
}

func TestCachedMetric(t *testing.T) {
	calls := 0
	inner := MetricFunc{Fn: func(a, b string) float64 { calls++; return 0.5 }, Label: "counting"}
	c := NewCached(inner)
	for i := 0; i < 10; i++ {
		if got := c.Similarity("a", "b"); got != 0.5 {
			t.Fatalf("cached value = %v", got)
		}
	}
	if calls != 1 {
		t.Errorf("inner metric called %d times, want 1", calls)
	}
	if c.Size() != 1 {
		t.Errorf("cache size = %d", c.Size())
	}
	c.Similarity("b", "a") // ordered keys: new entry
	if c.Size() != 2 {
		t.Errorf("cache size after reversed pair = %d, want 2", c.Size())
	}
	if !strings.Contains(c.Name(), "counting") {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCachedConcurrent(t *testing.T) {
	c := NewCached(EditSim{})
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				c.Similarity("alpha", "beta")
				c.Similarity("gamma", "delta")
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Size() != 2 {
		t.Errorf("cache size = %d, want 2", c.Size())
	}
}
