package similarity

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SynonymDict groups tokens into synonym classes so that the matchers
// recognize, e.g., "zip" ≈ "postcode". Classes are symmetric and
// transitive (union-find over declared groups). Lookup is by lower-cased
// token.
type SynonymDict struct {
	class map[string]int
	next  int
}

// NewSynonymDict returns an empty dictionary.
func NewSynonymDict() *SynonymDict {
	return &SynonymDict{class: make(map[string]int)}
}

// AddGroup declares that all words belong to one synonym class. Words
// already in classes cause those classes to be merged.
func (d *SynonymDict) AddGroup(words ...string) {
	if len(words) == 0 {
		return
	}
	// Find an existing class among the words, if any.
	id := -1
	for _, w := range words {
		if c, ok := d.class[normWord(w)]; ok {
			id = c
			break
		}
	}
	if id == -1 {
		id = d.next
		d.next++
	}
	// Collect classes to merge, then relabel.
	merge := make(map[int]bool)
	for _, w := range words {
		if c, ok := d.class[normWord(w)]; ok && c != id {
			merge[c] = true
		}
	}
	if len(merge) > 0 {
		for w, c := range d.class {
			if merge[c] {
				d.class[w] = id
			}
		}
	}
	for _, w := range words {
		d.class[normWord(w)] = id
	}
}

func normWord(w string) string { return strings.ToLower(strings.TrimSpace(w)) }

// Synonyms reports whether a and b are in the same synonym class.
// Identical tokens are always synonyms.
func (d *SynonymDict) Synonyms(a, b string) bool {
	na, nb := normWord(a), normWord(b)
	if na == nb {
		return true
	}
	ca, ok1 := d.class[na]
	cb, ok2 := d.class[nb]
	return ok1 && ok2 && ca == cb
}

// Words returns all tokens known to the dictionary, sorted.
func (d *SynonymDict) Words() []string {
	out := make([]string, 0, len(d.class))
	for w := range d.class {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// ClassOf returns the words sharing a synonym class with w (including w
// itself when known), sorted. Unknown words yield just {w}.
func (d *SynonymDict) ClassOf(w string) []string {
	nw := normWord(w)
	c, ok := d.class[nw]
	if !ok {
		return []string{nw}
	}
	var out []string
	for word, cls := range d.class {
		if cls == c {
			out = append(out, word)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of known tokens.
func (d *SynonymDict) Len() int { return len(d.class) }

// ClassID returns the opaque synonym-class id of w and whether w is
// known to the dictionary. Two known words are synonyms exactly when
// their ids are equal, which gives callers precomputing per-word
// features (e.g. the candidate index) an O(1) equivalent of Synonyms
// without holding the words themselves.
func (d *SynonymDict) ClassID(w string) (int, bool) {
	c, ok := d.class[normWord(w)]
	return c, ok
}

// ParseSynonyms reads one synonym group per line, words separated by
// commas or whitespace; '#' starts a comment. Returns the populated
// dictionary.
func ParseSynonyms(r io.Reader) (*SynonymDict, error) {
	d := NewSynonymDict()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		var words []string
		for _, f := range fields {
			if f = strings.TrimSpace(f); f != "" {
				words = append(words, f)
			}
		}
		if len(words) < 2 {
			return nil, fmt.Errorf("similarity: synonym line %d has fewer than 2 words", lineno)
		}
		d.AddGroup(words...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("similarity: reading synonyms: %w", err)
	}
	return d, nil
}

// DefaultSchemaSynonyms returns a dictionary of synonym classes common
// in database and XML schema vocabularies. The classes double as the
// rename pool of the synthetic corpus generator, so the matchers and the
// generator agree on what "the same concept under a different name"
// means — exactly the situation the paper's matchers face on the Web.
func DefaultSchemaSynonyms() *SynonymDict {
	d := NewSynonymDict()
	groups := [][]string{
		{"id", "identifier", "key", "code", "nr", "num", "number"},
		{"name", "title", "label", "caption"},
		{"address", "addr", "location", "residence"},
		{"zip", "zipcode", "postcode", "postalcode"},
		{"city", "town", "municipality"},
		{"state", "province", "region"},
		{"country", "nation", "land"},
		{"phone", "telephone", "tel", "mobile", "cell"},
		{"email", "mail", "emailaddress"},
		{"price", "cost", "amount", "fee", "charge"},
		{"quantity", "qty", "count", "cnt"},
		{"date", "day", "when"},
		{"year", "yr"},
		{"month", "mon"},
		{"author", "writer", "creator"},
		{"book", "publication", "volume"},
		{"publisher", "press", "imprint"},
		{"customer", "client", "buyer", "purchaser"},
		{"order", "purchase", "sale"},
		{"item", "product", "article", "goods"},
		{"employee", "worker", "staff", "personnel"},
		{"salary", "wage", "pay", "compensation"},
		{"department", "dept", "division", "unit"},
		{"company", "firm", "organization", "org", "enterprise"},
		{"person", "individual", "human"},
		{"first", "given", "fore"},
		{"last", "family", "sur"},
		{"birth", "born", "dob"},
		{"description", "desc", "summary", "abstract", "info"},
		{"comment", "note", "remark", "annotation"},
		{"category", "class", "type", "kind", "genre"},
		{"status", "state2", "condition"},
		{"begin", "start", "from", "since"},
		{"end", "finish", "to", "until"},
		{"supplier", "vendor", "provider", "seller"},
		{"invoice", "bill", "receipt"},
		{"payment", "remittance", "settlement"},
		{"account", "acct", "acc"},
		{"student", "pupil", "learner"},
		{"course", "class2", "subject", "module"},
		{"grade", "mark", "score", "result"},
		{"teacher", "instructor", "professor", "lecturer"},
		{"school", "college", "university", "institute"},
		{"hotel", "inn", "lodge", "accommodation"},
		{"room", "chamber", "suite"},
		{"flight", "trip", "journey"},
		{"car", "auto", "vehicle", "automobile"},
		{"movie", "film", "picture"},
		{"song", "track", "tune"},
		{"artist", "performer", "musician"},
		{"isbn", "bookid"},
		{"url", "link", "href", "website"},
		{"image", "img", "picture2", "photo"},
		{"size", "dimension", "measure"},
		{"weight", "mass"},
		{"height", "tallness"},
		{"width", "breadth"},
		{"color", "colour", "hue"},
		{"gender", "sex"},
		{"age", "years"},
		{"total", "sum", "aggregate"},
		{"tax", "vat", "duty"},
		{"discount", "rebate", "reduction"},
		{"shipping", "delivery", "freight"},
		{"manager", "supervisor", "boss", "head"},
	}
	for _, g := range groups {
		d.AddGroup(g...)
	}
	return d
}

// SynonymSim wraps a base metric, returning 1 whenever the full strings
// or all aligned tokens are synonyms, and the base score otherwise.
// It makes any lexical metric dictionary-aware.
type SynonymSim struct {
	Dict *SynonymDict
	Base Metric
}

// Similarity implements Metric.
func (s SynonymSim) Similarity(a, b string) float64 {
	base := s.Base
	if base == nil {
		base = EditSim{}
	}
	if s.Dict == nil {
		return base.Similarity(a, b)
	}
	if s.Dict.Synonyms(a, b) {
		return 1
	}
	// Token-level: score each token of a against its best token of b
	// where synonym pairs count as exact matches.
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) > 0 && len(tb) > 0 {
		sum := 0.0
		for _, x := range ta {
			best := 0.0
			for _, y := range tb {
				var sc float64
				if s.Dict.Synonyms(x, y) {
					sc = 1
				} else {
					sc = base.Similarity(x, y)
				}
				if sc > best {
					best = sc
				}
			}
			sum += best
		}
		tokScore := sum / float64(len(ta))
		if bs := base.Similarity(a, b); bs > tokScore {
			return bs
		}
		return tokScore
	}
	return base.Similarity(a, b)
}

// Name implements Metric.
func (s SynonymSim) Name() string { return "synonym" }
