package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanBasic(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if !almostEq(m, 2.5) {
		t.Errorf("Mean = %v, want 2.5", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceConstant(t *testing.T) {
	v, err := Variance([]float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 0) {
		t.Errorf("Variance of constants = %v, want 0", v)
	}
}

func TestStdDevKnown(t *testing.T) {
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sd, 2) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 5 {
		t.Errorf("Min,Max = %v,%v, want -1,5", mn, mx)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil) should be ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should be ErrEmpty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if !almostEq(got, tc.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 3) {
		t.Errorf("Quantile = %v, want 3", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("want ErrEmpty on empty input")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("want error on q > 1")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("want error on q < 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || !almostEq(s.Mean, 2) || !almostEq(s.Median, 2) || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should be ErrEmpty")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d/100 draws", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		frac := float64(c) / draws
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("value %d drawn with frequency %v, want ~0.1", v, frac)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(5)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestSample(t *testing.T) {
	r := NewRNG(9)
	src := []string{"a", "b", "c", "d", "e"}
	got := Sample(r, src, 3)
	if len(got) != 3 {
		t.Fatalf("Sample len = %d", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Errorf("duplicate %q in sample", s)
		}
		seen[s] = true
	}
	// Oversampling returns everything.
	if got := Sample(r, src, 10); len(got) != 5 {
		t.Errorf("oversample len = %d, want 5", len(got))
	}
	// Source must not be mutated.
	if src[0] != "a" || src[4] != "e" {
		t.Errorf("Sample mutated source: %v", src)
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(13)
	xs := []int{10, 20, 30}
	for i := 0; i < 50; i++ {
		v := Pick(r, xs)
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("Pick returned foreign value %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// Property: quantile is monotone in q for any sample.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa, err1 := Quantile(xs, a)
		qb, err2 := Quantile(xs, b)
		return err1 == nil && err2 == nil && qa <= qb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, _ := Mean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
