// Package stats provides small numeric helpers shared by the matching,
// clustering and bounds packages: descriptive statistics, histograms,
// and a deterministic pseudo-random source used by every synthetic
// workload so that experiments are exactly reproducible from a seed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
// It returns ErrEmpty when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Summary bundles the usual descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	mn, _ := Min(xs)
	md, _ := Median(xs)
	mx, _ := Max(xs)
	return Summary{N: len(xs), Mean: mean, StdDev: sd, Min: mn, Median: md, Max: mx}, nil
}

// String renders the summary in a single line suitable for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
