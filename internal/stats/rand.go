package stats

import "math"

// A deterministic, dependency-free pseudo-random source. All synthetic
// workloads in this repository draw randomness exclusively through RNG so
// that every experiment is exactly reproducible from its seed, on every
// platform and Go version (math/rand's stream is not guaranteed stable
// across releases, which would silently change "the corpus" under us).

// RNG is a small, fast, deterministic random number generator
// (xorshift64* scrambled by a splitmix64 seed expansion).
// The zero value is NOT valid; use NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed. Two RNGs built from the same
// seed produce identical streams forever.
func NewRNG(seed uint64) *RNG {
	// splitmix64 step makes trivially related seeds (0,1,2,..) diverge.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &RNG{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform pseudo-random int in [0, n).
// It panics if n <= 0, mirroring math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap,
// in the manner of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on empty xs.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Sample returns k distinct elements of xs chosen uniformly without
// replacement (reservoir-free Fisher–Yates prefix). If k >= len(xs) a
// shuffled copy of the whole slice is returned.
func Sample[T any](r *RNG, xs []T, k int) []T {
	cp := append([]T(nil), xs...)
	if k > len(cp) {
		k = len(cp)
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:k]
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// stddev 1, via the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
