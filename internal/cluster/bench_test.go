package cluster

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/stats"
)

func randomMatrix(n int, seed uint64) *Matrix {
	rng := stats.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	m, err := NewMatrix(n, func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) })
	if err != nil {
		panic(err)
	}
	return m
}

func BenchmarkMatrixBuild(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = randomMatrix(n, 1)
			}
		})
	}
}

func BenchmarkKMedoidsScaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		m := randomMatrix(n, 2)
		k := n / 16
		if k < 2 {
			k = 2
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := KMedoids(m, k, stats.NewRNG(3)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAgglomerativeScaling(b *testing.B) {
	for _, n := range []int{50, 150} {
		m := randomMatrix(n, 4)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Agglomerative(m, n/10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSilhouette(b *testing.B) {
	m := randomMatrix(300, 5)
	c, err := KMedoids(m, 20, stats.NewRNG(6))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Silhouette(m, c)
	}
}
