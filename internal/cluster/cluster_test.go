package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/similarity"
	"repro/internal/stats"
)

// twoBlobs builds 2n points on a line: n near 0 and n near 10, with
// distance = |x_i - x_j| / 10 clamped to [0,1].
func twoBlobs(n int) (*Matrix, []float64) {
	xs := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		xs = append(xs, float64(i)*0.1)
	}
	for i := 0; i < n; i++ {
		xs = append(xs, 10+float64(i)*0.1)
	}
	m, err := NewMatrix(len(xs), func(i, j int) float64 {
		d := math.Abs(xs[i]-xs[j]) / 12
		if d > 1 {
			d = 1
		}
		return d
	})
	if err != nil {
		panic(err)
	}
	return m, xs
}

func TestMatrixSymmetry(t *testing.T) {
	m, _ := twoBlobs(4)
	for i := 0; i < m.Len(); i++ {
		if m.At(i, i) != 0 {
			t.Errorf("self distance At(%d,%d) = %v", i, i, m.At(i, i))
		}
		for j := 0; j < m.Len(); j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetric At(%d,%d)", i, j)
			}
		}
	}
}

func TestNewMatrixNegative(t *testing.T) {
	if _, err := NewMatrix(-1, nil); err == nil {
		t.Error("negative n should error")
	}
}

func TestNewMatrixEmptyAndSingle(t *testing.T) {
	m, err := NewMatrix(0, nil)
	if err != nil || m.Len() != 0 {
		t.Errorf("empty matrix: %v, %d", err, m.Len())
	}
	m1, err := NewMatrix(1, func(i, j int) float64 { return 1 })
	if err != nil || m1.At(0, 0) != 0 {
		t.Error("single item matrix broken")
	}
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	m, _ := twoBlobs(5)
	c, err := KMedoids(m, 2, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 2 || len(c.Medoids) != 2 {
		t.Fatalf("clustering = %+v", c)
	}
	// All of the first 5 items in one cluster, the rest in the other.
	first := c.Assign[0]
	for i := 1; i < 5; i++ {
		if c.Assign[i] != first {
			t.Errorf("item %d escaped blob 1: %v", i, c.Assign)
		}
	}
	for i := 5; i < 10; i++ {
		if c.Assign[i] == first {
			t.Errorf("item %d joined blob 1: %v", i, c.Assign)
		}
	}
}

func TestKMedoidsValidation(t *testing.T) {
	m, _ := twoBlobs(3)
	for _, k := range []int{0, -1, 7} {
		if _, err := KMedoids(m, k, stats.NewRNG(1)); err == nil {
			t.Errorf("k=%d should error for n=6", k)
		}
	}
}

func TestKMedoidsNilRNG(t *testing.T) {
	m, _ := twoBlobs(3)
	if _, err := KMedoids(m, 2, nil); err != nil {
		t.Errorf("nil rng should default: %v", err)
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	m, _ := twoBlobs(6)
	a, err := KMedoids(m, 3, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(m, 3, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	m, _ := twoBlobs(2)
	c, err := KMedoids(m, 4, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range c.Assign {
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("k=n should give singletons, got %v", c.Assign)
	}
}

func TestAgglomerativeSeparatesBlobs(t *testing.T) {
	m, _ := twoBlobs(5)
	c, err := Agglomerative(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := c.Assign[0]
	for i := 1; i < 5; i++ {
		if c.Assign[i] != first {
			t.Errorf("agglomerative split blob 1: %v", c.Assign)
		}
	}
	for i := 5; i < 10; i++ {
		if c.Assign[i] == first {
			t.Errorf("agglomerative merged blobs: %v", c.Assign)
		}
	}
}

func TestAgglomerativeValidation(t *testing.T) {
	m, _ := twoBlobs(2)
	for _, k := range []int{0, 5} {
		if _, err := Agglomerative(m, k); err == nil {
			t.Errorf("k=%d should error for n=4", k)
		}
	}
}

func TestAgglomerativeKEqualsN(t *testing.T) {
	m, _ := twoBlobs(2)
	c, err := Agglomerative(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 4 {
		t.Errorf("K = %d", c.K)
	}
}

func TestMembersAndSizes(t *testing.T) {
	c := &Clustering{Assign: []int{0, 1, 0, 1, 0}, K: 2}
	m0 := c.Members(0)
	if len(m0) != 3 || m0[0] != 0 || m0[1] != 2 || m0[2] != 4 {
		t.Errorf("Members(0) = %v", m0)
	}
	sizes := c.Sizes()
	if sizes[0] != 3 || sizes[1] != 2 {
		t.Errorf("Sizes = %v", sizes)
	}
}

func TestSilhouettePrefersTrueK(t *testing.T) {
	m, _ := twoBlobs(5)
	c2, err := Agglomerative(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := Agglomerative(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Silhouette(m, c2)
	s5 := Silhouette(m, c5)
	if s2 <= s5 {
		t.Errorf("silhouette k=2 (%v) should beat k=5 (%v) on two blobs", s2, s5)
	}
	if s2 < 0.8 {
		t.Errorf("silhouette for perfect split = %v, want high", s2)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	m, _ := NewMatrix(0, nil)
	if s := Silhouette(m, &Clustering{K: 0}); s != 0 {
		t.Errorf("empty silhouette = %v", s)
	}
	// One cluster holding everything: b undefined → contributions skipped.
	m2, _ := twoBlobs(3)
	one := &Clustering{Assign: make([]int, 6), K: 1}
	if s := Silhouette(m2, one); s != 0 {
		t.Errorf("single-cluster silhouette = %v, want 0", s)
	}
}

// Property: every item is assigned to a valid cluster index for random
// datasets, and k-medoids keeps exactly k medoids.
func TestKMedoidsAssignValidProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawK uint8) bool {
		n := int(rawN%20) + 2
		k := int(rawK)%n + 1
		rng := stats.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		m, err := NewMatrix(n, func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) })
		if err != nil {
			return false
		}
		c, err := KMedoids(m, k, stats.NewRNG(seed+1))
		if err != nil {
			return false
		}
		if len(c.Medoids) != k {
			return false
		}
		for _, a := range c.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		// Every medoid must be assigned to its own cluster.
		for ci, md := range c.Medoids {
			if c.Assign[md] != ci {
				// Ties can re-assign a medoid only if distance 0 to
				// another medoid; accept that case.
				if m.At(md, c.Medoids[c.Assign[md]]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNewNameMatrix checks the engine-built name-distance matrix
// agrees with the serial DistFunc path and is worker-count invariant.
func TestNewNameMatrix(t *testing.T) {
	names := []string{"customer", "client", "zipcode", "postal_code", "title", "booktitle"}
	metric := similarity.DefaultNameMetric()
	want, err := NewMatrix(len(names), func(i, j int) float64 {
		return 1 - metric.Similarity(names[i], names[j])
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := NewNameMatrix(names, engine.New(metric), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range names {
			for j := range names {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("workers=%d At(%d,%d) = %v, want %v", workers, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
	if _, err := NewNameMatrix(names, nil, 1); err == nil {
		t.Error("nil scorer accepted")
	}
}
