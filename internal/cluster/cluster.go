// Package cluster implements the element-clustering substrate used by
// the non-exhaustive "clustered" matcher, reproducing the efficiency
// technique of Smiljanić et al. (WIRI 2006) that motivates the paper:
// repository elements are grouped by name similarity so that a query
// only searches the most promising clusters. Mappings whose targets
// span unselected clusters are lost — which is precisely what makes the
// improved system non-exhaustive and creates the need for effectiveness
// bounds.
//
// Two algorithms are provided — k-medoids (PAM-style) and average-link
// agglomerative clustering — plus the silhouette quality index and a
// symmetric distance matrix with O(1) lookup. Name-distance matrices
// are built through the shared scoring engine (NewNameMatrix), so the
// clusterer and the matchers draw node-pair scores from one memo table.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
)

// DistFunc returns a dissimilarity in [0, 1] for the items with indices
// i and j. Implementations must be symmetric with zero self-distance.
type DistFunc func(i, j int) float64

// Matrix stores the lower triangle of a symmetric pairwise distance
// matrix for n items.
type Matrix struct {
	n    int
	data []float64
}

// NewMatrix evaluates dist for every unordered pair of the n items and
// stores the result. It returns an error for n < 0.
func NewMatrix(n int, dist DistFunc) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative item count %d", n)
	}
	m := &Matrix{n: n, data: make([]float64, n*(n-1)/2)}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			m.data[m.index(i, j)] = dist(i, j)
		}
	}
	return m, nil
}

// NewNameMatrix builds the pairwise name-distance matrix for names
// through the scoring engine: the distance of names i and j is
// 1 − sc.Score(names[i], names[j]). The all-pairs evaluation runs on
// the engine's worker-pool builder (workers < 1 selects GOMAXPROCS),
// so building a large index warms the same memo table the matchers
// read from. The triangle layouts of engine.SymMatrix and Matrix are
// identical, so the scores transfer without re-indexing.
func NewNameMatrix(names []string, sc engine.Scorer, workers int) (*Matrix, error) {
	if sc == nil {
		return nil, fmt.Errorf("cluster: nil scorer")
	}
	sym := engine.BuildSymmetric(names, sc, workers)
	data := sym.Values() // each build allocates; ownership transfers
	for i, s := range data {
		data[i] = 1 - s
	}
	return &Matrix{n: len(names), data: data}, nil
}

// NearestMedoid returns the index of the medoid name nearest to name —
// THE assignment rule of this package's k-medoids clustering, shared by
// every consumer that inserts names into an existing clustering (the
// clustered matcher's incremental index maintenance, the shard
// partitioner's routing). Keeping it here keeps all call sites
// bit-identical: distances are evaluated in the distance matrix's
// argument orientation (greater name first, matching BuildSymmetric's
// (names[i], names[j]) with i > j over a sorted name list, so a
// slightly asymmetric metric reproduces the matrix's values exactly),
// the medoid name itself is distance 0 (the matrix's zero diagonal),
// and ties keep the lowest index via strict-< comparison. k-medoids
// terminates on a full nearest-medoid assignment, which is what makes
// insertion by this rule equivalent to a fresh membership build.
func NearestMedoid(name string, medoidNames []string, sc engine.Scorer) int {
	best, bestD := 0, MedoidDist(name, medoidNames[0], sc)
	for c := 1; c < len(medoidNames); c++ {
		if d := MedoidDist(name, medoidNames[c], sc); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// MedoidDist evaluates the name-to-medoid distance in the matrix's
// orientation; see NearestMedoid.
func MedoidDist(name, medoid string, sc engine.Scorer) float64 {
	switch {
	case name == medoid:
		return 0
	case name > medoid:
		return 1 - sc.Score(name, medoid)
	default:
		return 1 - sc.Score(medoid, name)
	}
}

func (m *Matrix) index(i, j int) int {
	if i < j {
		i, j = j, i
	}
	return i*(i-1)/2 + j
}

// At returns the stored distance between items i and j.
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.data[m.index(i, j)]
}

// Len returns the number of items.
func (m *Matrix) Len() int { return m.n }

// Clustering assigns each of n items to one of K clusters.
type Clustering struct {
	// Assign[i] is the cluster index of item i, in [0, K).
	Assign []int
	// K is the number of clusters.
	K int
	// Medoids holds a representative item per cluster when the
	// algorithm produces one (k-medoids); nil otherwise.
	Medoids []int
}

// Members returns the item indices of cluster c, ascending.
func (c *Clustering) Members(k int) []int {
	var out []int
	for i, a := range c.Assign {
		if a == k {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns the number of items per cluster.
func (c *Clustering) Sizes() []int {
	sizes := make([]int, c.K)
	for _, a := range c.Assign {
		sizes[a]++
	}
	return sizes
}

// KMedoids clusters n items into k clusters by Voronoi iteration
// (alternating assignment and medoid recomputation — the fast
// k-means-style k-medoids variant) on the given distance matrix, using
// rng for the initial medoid draw. It returns an error when k is out
// of (0, n].
func KMedoids(m *Matrix, k int, rng *stats.RNG) (*Clustering, error) {
	n := m.Len()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range for %d items", k, n)
	}
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	// Initial medoids: random distinct items.
	perm := rng.Perm(n)
	medoids := append([]int(nil), perm[:k]...)
	sort.Ints(medoids)

	assign := make([]int, n)
	assignAll := func() {
		for i := 0; i < n; i++ {
			best, bestD := 0, m.At(i, medoids[0])
			for c := 1; c < k; c++ {
				if d := m.At(i, medoids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
	}
	assignAll()

	for iter := 0; iter < 50; iter++ {
		changed := false
		// Recompute each cluster's medoid: the member minimizing the
		// total distance to the cluster's other members.
		for c := 0; c < k; c++ {
			members := membersOf(assign, c)
			if len(members) == 0 {
				continue // keep the old medoid for empty clusters
			}
			best, bestSum := medoids[c], sumDist(m, medoids[c], members)
			for _, cand := range members {
				if s := sumDist(m, cand, members); s+1e-12 < bestSum {
					best, bestSum = cand, s
				}
			}
			if best != medoids[c] {
				medoids[c] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		assignAll()
	}
	assignAll()
	return &Clustering{Assign: assign, K: k, Medoids: append([]int(nil), medoids...)}, nil
}

func membersOf(assign []int, c int) []int {
	var out []int
	for i, a := range assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

func sumDist(m *Matrix, center int, members []int) float64 {
	total := 0.0
	for _, i := range members {
		total += m.At(center, i)
	}
	return total
}

// Agglomerative performs average-link hierarchical clustering, cutting
// the dendrogram when k clusters remain. It returns an error when k is
// out of (0, n].
func Agglomerative(m *Matrix, k int) (*Clustering, error) {
	n := m.Len()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range for %d items", k, n)
	}
	// active clusters as member lists.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	// Average-link distance between two member lists.
	linkage := func(a, b []int) float64 {
		sum := 0.0
		for _, i := range a {
			for _, j := range b {
				sum += m.At(i, j)
			}
		}
		return sum / float64(len(a)*len(b))
	}
	for len(clusters) > k {
		bi, bj, best := -1, -1, 0.0
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				d := linkage(clusters[i], clusters[j])
				if bi == -1 || d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		merged := append(append([]int(nil), clusters[bi]...), clusters[bj]...)
		clusters[bi] = merged
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	assign := make([]int, n)
	for c, members := range clusters {
		for _, i := range members {
			assign[i] = c
		}
	}
	return &Clustering{Assign: assign, K: len(clusters)}, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering in
// [-1, 1]; higher is better. Items in singleton clusters contribute 0,
// following the standard convention.
func Silhouette(m *Matrix, c *Clustering) float64 {
	n := m.Len()
	if n == 0 {
		return 0
	}
	sizes := c.Sizes()
	total := 0.0
	for i := 0; i < n; i++ {
		own := c.Assign[i]
		if sizes[own] <= 1 {
			continue // contributes 0
		}
		// a: mean intra-cluster distance; b: min mean distance to
		// another cluster.
		sumIn := 0.0
		sumsOut := make([]float64, c.K)
		countsOut := make([]int, c.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if c.Assign[j] == own {
				sumIn += m.At(i, j)
			} else {
				sumsOut[c.Assign[j]] += m.At(i, j)
				countsOut[c.Assign[j]]++
			}
		}
		a := sumIn / float64(sizes[own]-1)
		b := -1.0
		for cl := 0; cl < c.K; cl++ {
			if cl == own || countsOut[cl] == 0 {
				continue
			}
			if mean := sumsOut[cl] / float64(countsOut[cl]); b < 0 || mean < b {
				b = mean
			}
		}
		if b < 0 {
			continue // only one non-empty cluster
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}
