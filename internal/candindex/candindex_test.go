package candindex

import (
	"fmt"
	"testing"

	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

// soundnessEps is the slack a bound may be under the true similarity by
// before the test calls it unsound — the same candEps-scale tolerance
// the matching layer prunes with.
const soundnessEps = 1e-9

// corpusNames collects the distinct element names of a synthetic
// scenario, personal and repository side.
func corpusNames(t *testing.T, seed uint64) (personal []string, repo *xmlschema.Repository) {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.NumSchemas = 40
	sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range sc.Personal.Elements() {
		if !seen[e.Name] {
			seen[e.Name] = true
			personal = append(personal, e.Name)
		}
	}
	// A few adversarial shapes the generator rarely emits.
	personal = append(personal, "x", "", "Price_List", "zzzzzz", "author")
	return personal, sc.Repo
}

// TestBoundSoundness is the admissibility property behind every pruning
// decision: for every registry metric whose compiled bounder is
// non-trivial, bound(a, b) + eps ≥ metric(a, b) over a synthetic corpus
// of name pairs.
func TestBoundSoundness(t *testing.T) {
	names := append(similarity.MetricNames(), "default")
	for _, mn := range names {
		mn := mn
		t.Run(mn, func(t *testing.T) {
			t.Parallel()
			metric, err := similarity.ByName(mn)
			if err != nil {
				t.Fatal(err)
			}
			personal, repo := corpusNames(t, 7)
			ix, err := Build(repo, Config{Metric: metric})
			if err != nil {
				t.Fatal(err)
			}
			bnd := ix.Prepare(personal)
			if bnd == nil {
				if ix.Boundable() {
					t.Fatal("Boundable() true but Prepare returned nil")
				}
				t.Skipf("metric %s has no non-trivial bound", mn)
			}
			checked := 0
			for _, s := range repo.Schemas() {
				row := make([]float64, s.Len())
				for pi, pn := range personal {
					if !bnd.BoundRow(pi, s, row) {
						t.Fatalf("BoundRow refused schema %s it indexed", s.Name)
					}
					for _, re := range s.Elements() {
						got := row[re.ID()]
						want := metric.Similarity(pn, re.Name)
						if got+soundnessEps < want {
							t.Fatalf("unsound bound for (%q, %q): bound %v < sim %v",
								pn, re.Name, got, want)
						}
						if got < 0 || got > 1+soundnessEps {
							t.Fatalf("bound for (%q, %q) out of range: %v", pn, re.Name, got)
						}
						checked++
					}
				}
			}
			if checked == 0 {
				t.Fatal("no pairs checked")
			}
		})
	}
}

// TestBoundsAreUseful guards against the trivial-bound failure mode of
// the soundness test: for the default metric the bounds must actually
// separate dissimilar pairs, not return 1 everywhere.
func TestBoundsAreUseful(t *testing.T) {
	personal, repo := corpusNames(t, 11)
	ix, err := Build(repo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bnd := ix.Prepare(personal)
	if bnd == nil {
		t.Fatal("default metric must be boundable")
	}
	below := 0
	total := 0
	for _, s := range repo.Schemas() {
		row := make([]float64, s.Len())
		for pi := range personal {
			if !bnd.BoundRow(pi, s, row) {
				t.Fatalf("BoundRow refused schema %s", s.Name)
			}
			for _, v := range row {
				total++
				if v < 0.8 {
					below++
				}
			}
		}
	}
	if frac := float64(below) / float64(total); frac < 0.2 {
		t.Fatalf("bounds too loose to prune: only %.1f%% of %d pairs bounded below 0.8", 100*frac, total)
	}
}

// randomChurn applies n random snapshot mutations and returns the
// snapshot after each step.
func randomChurn(t *testing.T, snap *xmlschema.Snapshot, rng *stats.RNG, n int) []*xmlschema.Snapshot {
	t.Helper()
	var steps []*xmlschema.Snapshot
	serial := 0
	for step := 0; step < n; step++ {
		cur := snap
		var next *xmlschema.Snapshot
		var err error
		switch rng.Intn(3) {
		case 0: // add
			root := xmlschema.NewElement("added_node").Add(
				xmlschema.NewElement(fmt.Sprintf("extra_%d", serial)),
				xmlschema.NewElement("price"),
			)
			var sch *xmlschema.Schema
			sch, err = xmlschema.NewSchema(fmt.Sprintf("churn%04d", serial), root)
			if err != nil {
				t.Fatal(err)
			}
			serial++
			next, err = cur.Add(sch)
		case 1: // remove (keep at least 2 schemas)
			if cur.Len() < 3 {
				continue
			}
			victim := cur.Schemas()[rng.Intn(cur.Len())]
			next, err = cur.Remove(victim.Name)
		default: // replace with a structurally different clone
			victim := cur.Schemas()[rng.Intn(cur.Len())]
			root := xmlschema.NewElement("swapped_root").Add(
				xmlschema.NewElement(fmt.Sprintf("swap_%d", serial)),
			)
			serial++
			var repl *xmlschema.Schema
			repl, err = xmlschema.NewSchema(victim.Name, root)
			if err != nil {
				t.Fatal(err)
			}
			next, err = cur.Replace(repl)
		}
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, next)
		snap = next
	}
	return steps
}

// sameBounds asserts two indexes over the same repository serve
// identical bounds for every (probe, element) pair — the behavioral
// equality that matters, independent of slot assignment.
func sameBounds(t *testing.T, a, b *Index, probes []string) {
	t.Helper()
	if a.DistinctNames() != b.DistinctNames() {
		t.Fatalf("distinct names diverge: %d vs %d", a.DistinctNames(), b.DistinctNames())
	}
	ba, bb := a.Prepare(probes), b.Prepare(probes)
	if (ba == nil) != (bb == nil) {
		t.Fatal("one index prepared a bounder, the other did not")
	}
	if ba == nil {
		return
	}
	for _, s := range a.Repository().Schemas() {
		rowA := make([]float64, s.Len())
		rowB := make([]float64, s.Len())
		for pi := range probes {
			okA := ba.BoundRow(pi, s, rowA)
			okB := bb.BoundRow(pi, s, rowB)
			if !okA || !okB {
				t.Fatalf("BoundRow refused schema %s: applied=%v scratch=%v", s.Name, okA, okB)
			}
			for rid := range rowA {
				if rowA[rid] != rowB[rid] {
					t.Fatalf("bound diverges at schema %s probe %q rid %d: applied %v, scratch %v",
						s.Name, probes[pi], rid, rowA[rid], rowB[rid])
				}
			}
		}
	}
}

// TestApplyMatchesScratch is the incremental-maintenance regression: an
// index advanced through random diff sequences must serve bounds
// identical to one built from scratch over the final repository.
func TestApplyMatchesScratch(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := synth.DefaultConfig(seed)
			cfg.NumSchemas = 25
			sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := xmlschema.NewSnapshot(sc.Repo)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Build(snap.Repository(), Config{})
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRNG(seed * 977)
			steps := randomChurn(t, snap, rng, 30)
			cur := snap
			for _, next := range steps {
				diff := xmlschema.DiffSnapshots(cur, next)
				applied, err := ix.Apply(next.Repository(), diff)
				if err != nil {
					t.Fatal(err)
				}
				ix = applied
				cur = next
			}
			final := cur
			if ix.Repository() != final.Repository() {
				t.Fatal("applied index is not over the final repository")
			}
			scratch, err := Build(final.Repository(), Config{})
			if err != nil {
				t.Fatal(err)
			}
			probes := []string{"book", "title", "author", "price", "swapped_root", "added_node", "nonexistent_zz"}
			sameBounds(t, ix, scratch, probes)
		})
	}
}

// TestApplyRejectsForeignDiff: a diff that does not describe the
// index's generation must error, not corrupt.
func TestApplyRejectsForeignDiff(t *testing.T) {
	_, repo := corpusNames(t, 3)
	snap, err := xmlschema.NewSnapshot(repo)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(repo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := snap.Schemas()[0]
	next, err := snap.Remove(victim.Name)
	if err != nil {
		t.Fatal(err)
	}
	diff := xmlschema.DiffSnapshots(snap, next)
	// Applying the same removal twice: the second application removes a
	// schema the (advanced) index no longer holds.
	applied, err := ix.Apply(next.Repository(), diff)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := applied.Apply(next.Repository(), diff); err == nil {
		t.Fatal("re-applying a consumed diff must fail")
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(xmlschema.NewRepository(), Config{}); err == nil {
		t.Fatal("Build over an empty repository must fail")
	}
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("Build over a nil repository must fail")
	}
}

// TestDeriveMatchesDirectBuild: a shard index derived from the global
// one must bound exactly like an index built directly over the
// sub-repository.
func TestDeriveMatchesDirectBuild(t *testing.T) {
	personal, repo := corpusNames(t, 5)
	global, err := Build(repo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sub := xmlschema.NewRepository()
	for i, s := range repo.Schemas() {
		if i%3 == 0 {
			if err := sub.Add(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	derived, err := global.Derive(sub)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Build(sub, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sameBounds(t, derived, direct, personal)
}

// TestBounderRejectsForeignSchema: the pointer guard behind rebase
// safety — a schema object the index never saw yields false.
func TestBounderRejectsForeignSchema(t *testing.T) {
	personal, repo := corpusNames(t, 9)
	ix, err := Build(repo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bnd := ix.Prepare(personal)
	if bnd == nil {
		t.Fatal("default metric must be boundable")
	}
	orig := repo.Schemas()[0]
	clone := orig.Clone()
	row := make([]float64, clone.Len())
	if bnd.BoundRow(0, clone, row) {
		t.Fatal("BoundRow accepted a cloned schema object it never indexed")
	}
	if !bnd.BoundRow(0, orig, row) {
		t.Fatal("BoundRow refused the exact schema object it indexed")
	}
}
