package candindex

import (
	"repro/internal/similarity"
)

// gramQ is the q-gram width the index is built on: the shared profile
// gram width, which matches the trigram component of
// similarity.DefaultNameMetric — the only QGramSim width the bounder
// treats non-trivially.
const gramQ = similarity.GramQ

// profile is the shared interned feature vector of one name — the same
// object the similarity kernels score with, so an index built with
// Config.Profiles never re-derives grams, tokens, or histograms the
// scoring path already computed. Grams are exact interned IDs (not
// hashes), so gram-multiset intersections — and every bound derived
// from them — are exact rather than collision-inflated.
type profile = similarity.NameProfile

// interCount returns |A ∩ B| for two sorted distinct slices.
func interCount[T uint32 | int32](a, b []T) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
