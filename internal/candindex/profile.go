package candindex

import (
	"slices"
	"strings"
	"sync"

	"repro/internal/similarity"
)

// gramQ is the q-gram width the index is built on. It matches the
// trigram component of similarity.DefaultNameMetric, which is the only
// QGramSim width the bounder treats non-trivially.
const gramQ = 3

// profile is the precomputed feature vector of one name: everything the
// per-metric bounders need to upper-bound a similarity score without
// touching the strings again. Profiles are interned (one per distinct
// name, shared across index generations) and immutable once published.
type profile struct {
	id    uint32
	name  string
	runes int // rune length of the raw name
	// grams is the sorted multiset of hashed, padded, lower-cased
	// q-grams. Hash collisions only ever merge distinct grams, which
	// inflates intersections — safe, since every bounder uses the
	// intersection on the side that raises the bound.
	grams []uint64
	// charCnt buckets the lower-cased runes into 32 classes (rune % 32)
	// for the Jaro matches bound. bigChar marks names long enough for a
	// uint8 bucket to saturate, in which case the bound falls back to
	// min(len, len).
	charCnt [32]uint8
	bigChar bool
	// prefix/suffix hold the first/last ≤8 lower-cased runes; suffix is
	// stored reversed so both compare front-to-front.
	prefix []rune
	suffix []rune
	// toks are the interned sub-profiles of similarity.Tokenize(name),
	// in token order. A single-token name references itself.
	toks []*profile
	// tokIDs / tokClasses are the sorted distinct token profile ids and
	// known synonym-class ids, for exact token-set metrics and O(1)
	// synonym tests.
	tokIDs     []uint32
	tokClasses []int32
	// normID identifies the synonym-normalized whole name (lower-cased,
	// trimmed): two profiles with equal normID satisfy Synonyms(a, b).
	normID uint32
	// class is the synonym class of the whole name, -1 when unknown.
	class int32
}

// interner builds and caches profiles. It is shared by an index and
// everything derived from it (Apply generations, per-shard Derive), so
// a name is profiled once per process lifetime, not once per snapshot.
// It only ever grows; profiles are small and the vocabulary of a
// workload is bounded in practice.
type interner struct {
	mu     sync.Mutex
	dict   *similarity.SynonymDict // may be nil: no synonym features
	byName map[string]*profile
	norm   map[string]uint32
	next   uint32
}

func newInterner(dict *similarity.SynonymDict) *interner {
	return &interner{
		dict:   dict,
		byName: make(map[string]*profile),
		norm:   make(map[string]uint32),
	}
}

// intern returns the profile of name, building it on first use.
func (in *interner) intern(name string) *profile {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.getLocked(name)
}

func (in *interner) getLocked(name string) *profile {
	if p, ok := in.byName[name]; ok {
		return p
	}
	lower := strings.ToLower(name)
	rs := []rune(lower)
	p := &profile{
		id:    in.next,
		name:  name,
		runes: len([]rune(name)),
		grams: hashGrams(rs, gramQ),
		class: -1,
	}
	in.next++
	for _, r := range rs {
		b := r % 32
		if b < 0 {
			b += 32
		}
		if p.charCnt[b] == 255 {
			p.bigChar = true
		} else {
			p.charCnt[b]++
		}
	}
	n := len(rs)
	p.prefix = append(p.prefix, rs[:min(8, n)]...)
	for i := 0; i < min(8, n); i++ {
		p.suffix = append(p.suffix, rs[n-1-i])
	}
	norm := strings.TrimSpace(lower)
	nid, ok := in.norm[norm]
	if !ok {
		nid = uint32(len(in.norm))
		in.norm[norm] = nid
	}
	p.normID = nid
	if in.dict != nil {
		if c, ok := in.dict.ClassID(name); ok {
			p.class = int32(c)
		}
	}
	// Publish before interning tokens: a single-token name tokenizes to
	// itself, and the recursive lookup must find the (scalar-complete)
	// profile instead of rebuilding it forever.
	in.byName[name] = p
	for _, t := range similarity.Tokenize(name) {
		p.toks = append(p.toks, in.getLocked(t))
	}
	for _, t := range p.toks {
		p.tokIDs = append(p.tokIDs, t.id)
		if t.class >= 0 {
			p.tokClasses = append(p.tokClasses, t.class)
		}
	}
	slices.Sort(p.tokIDs)
	p.tokIDs = slices.Compact(p.tokIDs)
	slices.Sort(p.tokClasses)
	p.tokClasses = slices.Compact(p.tokClasses)
	return p
}

// hashGrams returns the sorted multiset of FNV-1a hashes of the q-wide
// rune windows of rs padded with q−1 '#' runes on each side — the same
// gram set similarity.QGramSim extracts, modulo hashing.
func hashGrams(rs []rune, q int) []uint64 {
	padded := make([]rune, 0, len(rs)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, '#')
	}
	padded = append(padded, rs...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, '#')
	}
	out := make([]uint64, 0, len(padded)-q+1)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	for i := 0; i+q <= len(padded); i++ {
		h := uint64(offset64)
		for _, r := range padded[i : i+q] {
			h ^= uint64(uint32(r))
			h *= prime64
		}
		out = append(out, h)
	}
	slices.Sort(out)
	return out
}

// gramTotal is the padded gram count of the profile's name:
// runes + q − 1, the denominator side of the Dice and count-filter
// bounds.
func (p *profile) gramTotal() int { return len(p.grams) }

// mergeInter returns the multiset intersection size of two sorted hash
// slices.
func mergeInter(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// interCount returns |A ∩ B| for two sorted distinct slices.
func interCount[T uint32 | int32](a, b []T) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
