package candindex

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/matching"
	"repro/internal/similarity"
	"repro/internal/xmlschema"
)

// Config parameterizes Build.
type Config struct {
	// Metric is the similarity metric the bounds must be admissible
	// for — pass the exact metric the problem's Scorer computes (e.g.
	// engine.Memo.Metric()). Nil selects similarity.DefaultNameMetric.
	Metric similarity.Metric
	// Profiles, when non-nil, is a profile interner to share — pass the
	// scoring engine's (engine.Memo.Profiles()) so index and kernels
	// profile each distinct name once between them. It is only adopted
	// when its synonym dictionary is the one discovered in Metric;
	// otherwise a private interner is built, so a mismatched interner
	// can never change class features.
	Profiles *similarity.Interner
}

// Index is an inverted q-gram index over the distinct element names of
// one repository generation, plus per-name feature profiles. For a
// personal-schema name it serves, in one postings sweep, a similarity
// upper bound against every repository name — the input of the
// candidate-filtered cost-table build in internal/matching.
//
// An Index is immutable; Apply produces the next generation by
// copy-on-write, sharing untouched postings lists, profiles, and
// per-schema element maps with its parent, mirroring
// clustered.Index.Apply.
type Index struct {
	repo       *xmlschema.Repository
	metric     similarity.Metric
	bnd        boundFn
	nontrivial bool
	in         *similarity.Interner

	// names: slot-addressed distinct-name table. refs counts element
	// occurrences per name, postings map interned gram ID → (slot, gram
	// count) lists over live names.
	profs    []*profile
	refs     []int32
	free     []uint32
	slotOf   map[string]uint32
	postings map[uint32][]posting

	// schemas maps schema name → per-element slot assignment, pinned to
	// the exact schema object indexed.
	schemas map[string]*schemaIndex

	// prep memoizes prepared bounders per personal-name set, so repeated
	// problem builds against one index generation pay the bound
	// computation once. Shared across the shallow copies an empty-diff
	// Apply produces (identical postings ⇒ identical bounds).
	prep *prepCache
}

// prepCache is the per-generation bounder memo. Bounded: serving many
// distinct personal schemas (multi-tenant load) evicts arbitrarily
// rather than growing without limit.
type prepCache struct {
	mu sync.Mutex
	m  map[string]*bounder
}

const prepCacheCap = 8

func newPrepCache() *prepCache {
	return &prepCache{m: make(map[string]*bounder)}
}

type posting struct {
	slot  uint32
	count uint16
}

type schemaIndex struct {
	schema *xmlschema.Schema
	slot   []uint32 // element ID → name slot
}

// Build indexes every element name of repo.
func Build(repo *xmlschema.Repository, cfg Config) (*Index, error) {
	metric := cfg.Metric
	if metric == nil {
		metric = similarity.DefaultNameMetric()
	}
	bnd, nontrivial, dict := compile(metric)
	in := cfg.Profiles
	if in == nil || in.Dict() != dict {
		in = similarity.NewInterner(dict)
	}
	return build(repo, metric, bnd, nontrivial, in)
}

func build(repo *xmlschema.Repository, metric similarity.Metric, bnd boundFn, nontrivial bool, in *similarity.Interner) (*Index, error) {
	if repo == nil || repo.Len() == 0 {
		return nil, fmt.Errorf("candindex: empty repository")
	}
	ix := &Index{
		repo:       repo,
		metric:     metric,
		bnd:        bnd,
		nontrivial: nontrivial,
		in:         in,
		slotOf:     make(map[string]uint32),
		postings:   make(map[uint32][]posting),
		schemas:    make(map[string]*schemaIndex, repo.Len()),
		prep:       newPrepCache(),
	}
	for _, s := range repo.Schemas() {
		ix.schemas[s.Name] = ix.indexSchema(s)
	}
	return ix, nil
}

// indexSchema interns every element name of s and bumps its refcount,
// inserting postings for names new to the index.
func (ix *Index) indexSchema(s *xmlschema.Schema) *schemaIndex {
	sx := &schemaIndex{schema: s, slot: make([]uint32, s.Len())}
	for _, e := range s.Elements() {
		sx.slot[e.ID()] = ix.addName(e.Name, nil)
	}
	return sx
}

// addName increments the refcount of name, allocating a slot and
// posting its grams on the 0→1 transition. copied tracks postings lists
// already privatized during one Apply; nil means the maps are not
// shared and lists may be appended in place.
func (ix *Index) addName(name string, copied map[uint32]bool) uint32 {
	if slot, ok := ix.slotOf[name]; ok {
		ix.refs[slot]++
		return slot
	}
	p := ix.in.Profile(name)
	var slot uint32
	if n := len(ix.free); n > 0 {
		slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.profs[slot] = p
		ix.refs[slot] = 1
	} else {
		slot = uint32(len(ix.profs))
		ix.profs = append(ix.profs, p)
		ix.refs = append(ix.refs, 1)
	}
	ix.slotOf[name] = slot
	eachGramRun(p.Grams, func(g uint32, count int) {
		list := ix.postings[g]
		if copied != nil && !copied[g] {
			copied[g] = true
			list = append(make([]posting, 0, len(list)+1), list...)
		}
		ix.postings[g] = append(list, posting{slot: slot, count: uint16(min(count, 1<<16-1))})
	})
	return slot
}

// dropName decrements the refcount of name, releasing the slot and its
// postings on the 1→0 transition. It returns an error when the index
// does not hold the name — the diff does not describe this generation.
func (ix *Index) dropName(name string, copied map[uint32]bool) error {
	slot, ok := ix.slotOf[name]
	if !ok {
		return fmt.Errorf("candindex: diff removes name %q the index does not hold", name)
	}
	ix.refs[slot]--
	if ix.refs[slot] > 0 {
		return nil
	}
	p := ix.profs[slot]
	eachGramRun(p.Grams, func(g uint32, _ int) {
		list := ix.postings[g]
		if copied != nil && !copied[g] {
			copied[g] = true
			list = append(make([]posting, 0, len(list)), list...)
		}
		w := list[:0]
		for _, pst := range list {
			if pst.slot != slot {
				w = append(w, pst)
			}
		}
		if len(w) == 0 {
			delete(ix.postings, g)
		} else {
			ix.postings[g] = w
		}
	})
	delete(ix.slotOf, name)
	ix.profs[slot] = nil
	ix.refs[slot] = 0
	ix.free = append(ix.free, slot)
	return nil
}

// eachGramRun calls fn once per distinct gram of a sorted multiset with
// its multiplicity.
func eachGramRun(grams []uint32, fn func(g uint32, count int)) {
	for i := 0; i < len(grams); {
		j := i + 1
		for j < len(grams) && grams[j] == grams[i] {
			j++
		}
		fn(grams[i], j-i)
		i = j
	}
}

// Apply returns the index for the repository that diff turns this
// index's repository into, reusing every untouched posting list,
// profile, and schema map. It mirrors clustered.Index.Apply: the
// receiver is immutable and stays valid, and a diff that does not
// describe this generation (removing unknown names or schemas) is an
// error rather than silent corruption.
func (ix *Index) Apply(next *xmlschema.Repository, diff xmlschema.Diff) (*Index, error) {
	if next == nil || next.Len() == 0 {
		return nil, fmt.Errorf("candindex: diff empties the repository")
	}
	if diff.Empty() {
		// Share everything, but pin the result to the new repository so
		// callers may compare Repository() against the generation they
		// serve (the maps are immutable after build; sharing is safe).
		nix := *ix
		nix.repo = next
		return &nix, nil
	}
	nix := &Index{
		repo:       next,
		metric:     ix.metric,
		bnd:        ix.bnd,
		nontrivial: ix.nontrivial,
		in:         ix.in,
		profs:      append([]*profile(nil), ix.profs...),
		refs:       append([]int32(nil), ix.refs...),
		free:       append([]uint32(nil), ix.free...),
		slotOf:     make(map[string]uint32, len(ix.slotOf)),
		postings:   make(map[uint32][]posting, len(ix.postings)),
		schemas:    make(map[string]*schemaIndex, len(ix.schemas)),
		prep:       newPrepCache(),
	}
	for k, v := range ix.slotOf {
		nix.slotOf[k] = v
	}
	for g, list := range ix.postings {
		nix.postings[g] = list
	}
	for name, sx := range ix.schemas {
		nix.schemas[name] = sx
	}
	copied := make(map[uint32]bool)
	drop := func(s *xmlschema.Schema) error {
		if old, ok := nix.schemas[s.Name]; !ok || old.schema != s {
			return fmt.Errorf("candindex: diff removes schema %q the index does not hold", s.Name)
		}
		var err error
		s.Walk(func(e *xmlschema.Element) bool {
			if err = nix.dropName(e.Name, copied); err != nil {
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		delete(nix.schemas, s.Name)
		return nil
	}
	add := func(s *xmlschema.Schema) {
		sx := &schemaIndex{schema: s, slot: make([]uint32, s.Len())}
		for _, e := range s.Elements() {
			sx.slot[e.ID()] = nix.addName(e.Name, copied)
		}
		nix.schemas[s.Name] = sx
	}
	for _, s := range diff.Removed {
		if err := drop(s); err != nil {
			return nil, err
		}
	}
	for _, ch := range diff.Replaced {
		if err := drop(ch.Old); err != nil {
			return nil, err
		}
		add(ch.New)
	}
	for _, s := range diff.Added {
		add(s)
	}
	if len(nix.slotOf) == 0 {
		return nil, fmt.Errorf("candindex: diff empties the repository")
	}
	return nix, nil
}

// Derive builds an index over a sub-repository (a shard) sharing this
// index's interner, bounder, and metric, so per-shard derivation never
// re-profiles a name the global index has seen.
func (ix *Index) Derive(repo *xmlschema.Repository) (*Index, error) {
	return build(repo, ix.metric, ix.bnd, ix.nontrivial, ix.in)
}

// Repository returns the repository generation this index describes.
func (ix *Index) Repository() *xmlschema.Repository { return ix.repo }

// MetricName implements matching.CandidateFilter.
func (ix *Index) MetricName() string { return ix.metric.Name() }

// Boundable reports whether the metric admits a non-trivial bound; a
// false value means Prepare returns nil and the index never prunes.
func (ix *Index) Boundable() bool { return ix.nontrivial }

// DistinctNames returns the number of live distinct names.
func (ix *Index) DistinctNames() int { return len(ix.slotOf) }

// Prepare implements matching.CandidateFilter: one postings sweep plus
// one bounder evaluation per (personal name, distinct repository name)
// pair, amortized across every schema's BoundRow calls — and memoized
// per personal-name set, so every problem build after the first against
// this generation reuses the prepared bounder (including its per-schema
// cost-bound tables; see SchemaLB).
func (ix *Index) Prepare(personalNames []string) matching.CandidateBounder {
	if !ix.nontrivial {
		return nil
	}
	key := strings.Join(personalNames, "\x00")
	ix.prep.mu.Lock()
	b, ok := ix.prep.m[key]
	ix.prep.mu.Unlock()
	if ok {
		return b
	}
	b = ix.prepare(personalNames)
	ix.prep.mu.Lock()
	if len(ix.prep.m) >= prepCacheCap {
		for k := range ix.prep.m {
			delete(ix.prep.m, k)
			break
		}
	}
	ix.prep.m[key] = b
	ix.prep.mu.Unlock()
	return b
}

// prepare computes a bounder from scratch: per-slot similarity bounds
// for every personal name, then per-schema cost lower-bound tables with
// their row-min sums — the exact values the filtered table build needs,
// precomputed once per (personal names, generation) pair.
func (ix *Index) prepare(personalNames []string) *bounder {
	m := len(personalNames)
	bounds := make([][]float64, m)
	cache := make(map[string][]float64, m)
	for i, name := range personalNames {
		if b, ok := cache[name]; ok {
			bounds[i] = b
			continue
		}
		b := ix.boundAll(name)
		cache[name] = b
		bounds[i] = b
	}
	b := &bounder{ix: ix, bounds: bounds, lb: make(map[string]*schemaLB, len(ix.schemas))}
	for name, sx := range ix.schemas {
		n := len(sx.slot)
		lb := make([]float64, m*n)
		sum := 0.0
		for pi := 0; pi < m; pi++ {
			bv := bounds[pi]
			rowMin := 2.0
			base := pi * n
			for rid, slot := range sx.slot {
				c := 1 - bv[slot]
				if c < 0 {
					c = 0
				}
				lb[base+rid] = c
				if c < rowMin {
					rowMin = c
				}
			}
			sum += rowMin
		}
		b.lb[name] = &schemaLB{schema: sx.schema, lb: lb, sum: sum}
	}
	return b
}

// boundAll computes the upper bound of name against every live slot.
func (ix *Index) boundAll(name string) []float64 {
	p := ix.in.Profile(name)
	inter := make([]int32, len(ix.profs))
	eachGramRun(p.Grams, func(g uint32, count int) {
		for _, pst := range ix.postings[g] {
			inter[pst.slot] += int32(min(count, int(pst.count)))
		}
	})
	out := make([]float64, len(ix.profs))
	for slot, rp := range ix.profs {
		if rp != nil && ix.refs[slot] > 0 {
			out[slot] = ix.bnd(p, rp, int(inter[slot]))
		}
	}
	return out
}

// bounder implements matching.CandidateBounder (and the
// matching.CandidateTableBounder fast path) over prepared per-slot
// bound vectors and per-schema cost-bound tables. It is immutable after
// prepare and safe for concurrent use.
type bounder struct {
	ix     *Index
	bounds [][]float64
	lb     map[string]*schemaLB
}

// schemaLB is one schema's precomputed cost lower-bound table
// (lb[pi*n+rid] = max(0, 1 − bound)) and the sum over personal elements
// of the per-row minimum — the schema-skip statistic. The schema
// pointer pins the entry to the exact object indexed.
type schemaLB struct {
	schema *xmlschema.Schema
	lb     []float64
	sum    float64
}

// SchemaLB implements matching.CandidateTableBounder: the precomputed
// cost lower-bound table and row-min sum for s. The returned slice is
// shared across problem builds and must not be mutated. The pointer
// check mirrors BoundRow's staleness guard.
func (b *bounder) SchemaLB(s *xmlschema.Schema) ([]float64, float64, bool) {
	e := b.lb[s.Name]
	if e == nil || e.schema != s {
		return nil, 0, false
	}
	return e.lb, e.sum, true
}

// BoundRow implements matching.CandidateBounder. The pointer check
// makes stale indexes safe: a rebased problem holding schemas this
// index never saw gets false and falls back to exhaustive scoring.
func (b *bounder) BoundRow(pi int, s *xmlschema.Schema, out []float64) bool {
	sx := b.ix.schemas[s.Name]
	if sx == nil || sx.schema != s {
		return false
	}
	bv := b.bounds[pi]
	for rid, slot := range sx.slot {
		out[rid] = bv[slot]
	}
	return true
}
