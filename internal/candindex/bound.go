package candindex

import (
	"repro/internal/similarity"
)

// boundFn upper-bounds metric.Similarity(a.Name, b.Name) given the
// gram multiset intersection of the two profiles. Implementations
// must be admissible: boundFn(a, b, I) ≥ Similarity(a.Name, b.Name) for
// every pair, within floating-point noise.
type boundFn func(a, b *profile, inter int) float64

// one is the trivial bounder for metrics the index cannot bound.
func one(*profile, *profile, int) float64 { return 1 }

// compile builds the bounder for a metric tree. nontrivial reports
// whether the result ever returns < 1; a trivial top-level bounder
// disables candidate filtering entirely (the index stays maintainable
// but prunes nothing). dict is the synonym dictionary discovered in the
// tree, if any, so profiles carry the matching class features.
func compile(m similarity.Metric) (fn boundFn, nontrivial bool, dict *similarity.SynonymDict) {
	switch t := m.(type) {
	case *similarity.Cached:
		return compile(t.Inner())
	case similarity.SynonymSim:
		base := t.Base
		if base == nil {
			base = similarity.EditSim{}
		}
		bb, ok, _ := compile(base)
		if !ok {
			// With a trivial base the whole metric is unbounded anyway.
			return one, false, t.Dict
		}
		return synonymBound(t.Dict, bb), true, t.Dict
	case *similarity.Combined:
		parts := t.Parts()
		fns := make([]boundFn, len(parts))
		ws := make([]float64, len(parts))
		any := false
		var d *similarity.SynonymDict
		for i, p := range parts {
			var ok bool
			var pd *similarity.SynonymDict
			fns[i], ok, pd = compile(p.Metric)
			ws[i] = p.Weight
			any = any || ok
			if d == nil {
				d = pd
			}
		}
		if !any {
			return one, false, d
		}
		return func(a, b *profile, inter int) float64 {
			s := 0.0
			for i, f := range fns {
				s += ws[i] * f(a, b, inter)
			}
			if s > 1 {
				return 1
			}
			return s
		}, true, d
	case similarity.QGramSim:
		if t.Q() != gramQ {
			return one, false, nil
		}
		return qgramBound, true, nil
	case similarity.EditSim:
		return editBound, true, nil
	case similarity.OSASim:
		return osaBound, true, nil
	case similarity.JaroSim:
		return jaroBound, true, nil
	case similarity.JaroWinklerSim:
		return jaroWinklerBound, true, nil
	case similarity.JaccardSim:
		return jaccardBound, true, nil
	case similarity.DiceSim:
		return diceBound, true, nil
	case similarity.CosineSim:
		return cosineBound, true, nil
	case similarity.CommonPrefixSim:
		return prefixBound, true, nil
	case similarity.CommonSuffixSim:
		return suffixBound, true, nil
	case similarity.LCSSim:
		return lcsBound, true, nil
	default:
		// MongeElkan, SymMongeElkan, SoundexSim, MetricFunc, and anything
		// unknown: no sound cheap bound, so never prune on their account.
		return one, false, nil
	}
}

// qgramBound is exact: QGramSim(q=3) is the Dice coefficient
// 2I/(|Ga|+|Gb|) over padded gram multisets, and interned gram IDs make
// I the true intersection size.
func qgramBound(a, b *profile, inter int) float64 {
	total := a.GramTotal() + b.GramTotal()
	if a.RuneLen() == 0 && b.RuneLen() == 0 {
		return 1
	}
	if total == 0 {
		return 0
	}
	s := 2 * float64(inter) / float64(total)
	if s > 1 {
		return 1
	}
	return s
}

// editBound applies q-gram count filtering: one edit destroys at most q
// padded grams, so lev(a, b) ≥ (maxG − I)/q and
// EditSim = 1 − lev/max(|a|,|b|) ≤ 1 − (maxG − I)/(q·max(|a|,|b|)).
// Grams are lower-cased; lowering never increases edit distance, so the
// derived lev floor also holds for the raw strings the metric sees.
func editBound(a, b *profile, inter int) float64 {
	return countFilterBound(a, b, inter, gramQ)
}

// osaBound is editBound with divisor q+1: a transposition touches at
// most q+1 padded grams.
func osaBound(a, b *profile, inter int) float64 {
	return countFilterBound(a, b, inter, gramQ+1)
}

func countFilterBound(a, b *profile, inter, perOp int) float64 {
	mx := max(a.RuneLen(), b.RuneLen())
	if mx == 0 {
		return 1
	}
	maxG := max(a.GramTotal(), b.GramTotal())
	destroyed := float64(maxG - inter)
	if destroyed <= 0 {
		return 1
	}
	s := 1 - destroyed/(float64(perOp)*float64(mx))
	if s < 0 {
		return 0
	}
	return s
}

// jaroMatchesUB bounds the Jaro match count by the multiset
// intersection of the 32-bucket lower-cased rune histograms. Bucket
// folding and lower-casing only merge classes, which inflates the
// intersection; saturated histograms fall back to min(|a|, |b|).
func jaroMatchesUB(a, b *profile) int {
	if a.BigChar || b.BigChar {
		return min(a.RuneLen(), b.RuneLen())
	}
	c := 0
	for i := 0; i < 32; i++ {
		c += int(min(a.CharCnt[i], b.CharCnt[i]))
	}
	return min(c, a.RuneLen(), b.RuneLen())
}

// jaroBound: with m matches and t transpositions,
// jaro = (m/|a| + m/|b| + (m−t)/m)/3 ≤ (c/|a| + c/|b| + 1)/3 for any
// c ≥ m.
func jaroBound(a, b *profile, _ int) float64 {
	la, lb := a.RuneLen(), b.RuneLen()
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	c := jaroMatchesUB(a, b)
	if c == 0 {
		return 0
	}
	s := (float64(c)/float64(la) + float64(c)/float64(lb) + 1) / 3
	if s > 1 {
		return 1
	}
	return s
}

// jaroWinklerBound boosts jaroBound with the common-prefix length of
// the stored lower-cased prefixes, capped at 4. The metric compares raw
// runes, and a lower-cased common prefix is at least as long, while
// jw = j + 0.1·ℓ·(1−j) is increasing in both j and ℓ.
func jaroWinklerBound(a, b *profile, inter int) float64 {
	j := jaroBound(a, b, inter)
	l := 0
	k := min(len(a.Prefix), len(b.Prefix), 4)
	for l < k && a.Prefix[l] == b.Prefix[l] {
		l++
	}
	s := j + 0.1*float64(l)*(1-j)
	if s > 1 {
		return 1
	}
	return s
}

// jaccardBound is exact: token sets are interned, so the distinct-id
// intersection equals the metric's lower-cased token-set intersection.
func jaccardBound(a, b *profile, _ int) float64 {
	if len(a.TokIDs) == 0 && len(b.TokIDs) == 0 {
		return 1
	}
	in := interCount(a.TokIDs, b.TokIDs)
	un := len(a.TokIDs) + len(b.TokIDs) - in
	if un == 0 {
		return 0
	}
	return float64(in) / float64(un)
}

// diceBound is exact, like jaccardBound.
func diceBound(a, b *profile, _ int) float64 {
	total := len(a.TokIDs) + len(b.TokIDs)
	if total == 0 {
		return 1
	}
	return 2 * float64(interCount(a.TokIDs, b.TokIDs)) / float64(total)
}

// cosineBound: zero token overlap forces 0 (1 when both are empty);
// any overlap is bounded by the trivial 1.
func cosineBound(a, b *profile, _ int) float64 {
	if len(a.TokIDs) == 0 && len(b.TokIDs) == 0 {
		return 1
	}
	if len(a.TokIDs) == 0 || len(b.TokIDs) == 0 {
		return 0
	}
	if interCount(a.TokIDs, b.TokIDs) == 0 {
		return 0
	}
	return 1
}

// prefixBound is exact whenever the stored 8-rune windows witness the
// divergence point; beyond them it degrades to 1.
func prefixBound(a, b *profile, _ int) float64 {
	return affixBound(a.Prefix, b.Prefix, a.RuneLen(), b.RuneLen())
}

// suffixBound mirrors prefixBound on the reversed suffix windows.
func suffixBound(a, b *profile, _ int) float64 {
	return affixBound(a.Suffix, b.Suffix, a.RuneLen(), b.RuneLen())
}

func affixBound(pa, pb []rune, la, lb int) float64 {
	if la == 0 && lb == 0 {
		return 1
	}
	n := min(la, lb)
	if n == 0 {
		return 0
	}
	k := min(len(pa), len(pb))
	i := 0
	for i < k && pa[i] == pb[i] {
		i++
	}
	if i < k {
		// Divergence inside both windows: the common-affix length is
		// exactly i.
		return float64(i) / float64(n)
	}
	return 1
}

// lcsBound: a common substring of length L contributes L−q+1 shared
// padded grams (with multiplicity), so L ≤ I + q − 1 and
// LCSSim = L/min(|a|,|b|) ≤ (I + q − 1)/min(|a|,|b|).
func lcsBound(a, b *profile, inter int) float64 {
	if a.RuneLen() == 0 && b.RuneLen() == 0 {
		return 1
	}
	mn := min(a.RuneLen(), b.RuneLen())
	if mn == 0 {
		return 0
	}
	s := float64(inter+gramQ-1) / float64(mn)
	if s > 1 {
		return 1
	}
	return s
}

// synonymBound mirrors SynonymSim.Similarity: 1 for whole-string
// synonyms, otherwise the max of the base bound and the token-alignment
// bound, where synonym token pairs — the metric's exact test, NormID or
// class equality — count as exact matches.
func synonymBound(dict *similarity.SynonymDict, base boundFn) boundFn {
	if dict == nil {
		return base
	}
	return func(a, b *profile, inter int) float64 {
		if a.NormID == b.NormID {
			return 1
		}
		if a.Class >= 0 && a.Class == b.Class {
			return 1
		}
		s := base(a, b, inter)
		if len(a.Toks) > 0 && len(b.Toks) > 0 && s < 1 {
			sum := 0.0
			for _, x := range a.Toks {
				best := 0.0
				for _, y := range b.Toks {
					var sc float64
					if x.NormID == y.NormID || (x.Class >= 0 && x.Class == y.Class) {
						sc = 1
					} else {
						sc = base(x, y, similarity.MergeCount(x.Grams, y.Grams))
					}
					if sc > best {
						best = sc
						if best == 1 {
							break
						}
					}
				}
				sum += best
			}
			if ts := sum / float64(len(a.Toks)); ts > s {
				s = ts
			}
		}
		return s
	}
}
