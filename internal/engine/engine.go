package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/similarity"
)

// Scorer is the single source of node-pair similarity scores for the
// matching system. Score returns the name similarity of a and b in
// [0, 1]; MetricName identifies the underlying metric for reports and
// cache keys. Implementations must be deterministic and safe for
// concurrent use (see the package documentation for the full contract).
type Scorer interface {
	// Score returns the similarity of the two names in [0, 1].
	Score(a, b string) float64
	// MetricName identifies the metric ("cached(combined(...))").
	MetricName() string
}

// Uncached adapts a similarity.Metric to the Scorer interface without
// memoization: every Score call pays the full metric cost. It is the
// baseline the engine benchmarks compare Memo against.
type Uncached struct {
	metric similarity.Metric
	// kern lazily holds the compiled row kernel; the pointer is shared
	// by value copies so a metric is compiled at most once.
	kern *kernelCell
}

// NewUncached wraps metric; nil selects similarity.DefaultNameMetric.
func NewUncached(metric similarity.Metric) Uncached {
	if metric == nil {
		metric = similarity.DefaultNameMetric()
	}
	return Uncached{metric: metric, kern: &kernelCell{}}
}

// Score implements Scorer.
func (u Uncached) Score(a, b string) float64 { return u.metric.Similarity(a, b) }

// MetricName implements Scorer.
func (u Uncached) MetricName() string { return u.metric.Name() }

// Metric returns the wrapped metric — the source of truth a candidate
// index must derive its similarity upper bounds from.
func (u Uncached) Metric() similarity.Metric { return u.metric }

// DefaultShards is the shard count of Memo scorers built with New. 64
// shards keep lock contention negligible for the worker counts the
// matchers use (GOMAXPROCS-bounded pools) while the per-shard maps stay
// densely used.
const DefaultShards = 64

// Memo is the sharded, memoized similarity matrix: a Scorer that pays
// the metric once per distinct ordered name pair and serves every later
// evaluation from a per-shard locked table. One Memo is intended to be
// shared across all matchers, threshold sweeps, and improvement runs of
// a problem — that sharing is where the speedup comes from.
type Memo struct {
	metric similarity.Metric
	shards []memoShard
	// kern lazily holds the compiled row kernel backing NewSession and
	// Profiles; Score itself keeps using the metric directly.
	kern kernelCell
}

type memoShard struct {
	mu    sync.RWMutex
	table map[pairKey]float64
	// hit/miss counters live per shard so the hot path never touches a
	// cache line shared across shards.
	hits   atomic.Int64
	misses atomic.Int64
}

// pairKey is the ordered (a, b) cache key; ordering is preserved so
// asymmetric metrics memoize correctly.
type pairKey struct {
	a, b string
}

// New returns a Memo over metric with DefaultShards shards; nil selects
// similarity.DefaultNameMetric.
func New(metric similarity.Metric) *Memo { return NewSharded(metric, DefaultShards) }

// NewSharded returns a Memo with the given shard count (values < 1
// default to 1).
func NewSharded(metric similarity.Metric, shards int) *Memo {
	if metric == nil {
		metric = similarity.DefaultNameMetric()
	}
	if shards < 1 {
		shards = 1
	}
	m := &Memo{metric: metric, shards: make([]memoShard, shards)}
	for i := range m.shards {
		m.shards[i].table = make(map[pairKey]float64)
	}
	return m
}

// shardOf hashes the ordered pair onto a shard: FNV-1a over a, a NUL
// separator (names never contain NUL), and b. The hash is inlined over
// the string bytes so the hit path — the path memoization exists to
// make cheap — performs zero allocations. Row sessions hash the row
// once with fnvRow and continue per column with shardCont.
func (m *Memo) shardOf(a, b string) *memoShard {
	return m.shardCont(fnvRow(a), b)
}

// fnvRow is the row half of shardOf's hash: FNV-1a over a plus the NUL
// separator step.
func fnvRow(a string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(a); i++ {
		h ^= uint32(a[i])
		h *= prime32
	}
	h *= prime32 // NUL separator: h ^= 0 is a no-op
	return h
}

// shardCont finishes fnvRow's hash over b and picks the shard.
func (m *Memo) shardCont(h uint32, b string) *memoShard {
	const prime32 = 16777619
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= prime32
	}
	return &m.shards[h%uint32(len(m.shards))]
}

// Score implements Scorer with memoization.
func (m *Memo) Score(a, b string) float64 {
	key := pairKey{a, b}
	sh := m.shardOf(a, b)
	sh.mu.RLock()
	v, ok := sh.table[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
		return v
	}
	sh.misses.Add(1)
	v = m.metric.Similarity(a, b)
	sh.mu.Lock()
	sh.table[key] = v
	sh.mu.Unlock()
	return v
}

// MetricName implements Scorer.
func (m *Memo) MetricName() string { return m.metric.Name() }

// Metric returns the memoized metric — the source of truth a candidate
// index must derive its similarity upper bounds from.
func (m *Memo) Metric() similarity.Metric { return m.metric }

// Remove deletes every memoized pair for which pred returns true and
// reports how many entries were dropped. Scores are pure functions of
// their name pair, so removal never changes results — it releases the
// memory of entries that stopped earning their keep, e.g. pairs
// touching names retired from a repository snapshot. Hit/miss counters
// are left untouched; removed pairs simply miss (and re-memoize) on
// their next Score call.
func (m *Memo) Remove(pred func(a, b string) bool) int {
	removed := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for k := range sh.table {
			if pred(k.a, k.b) {
				delete(sh.table, k)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// MemoEntry is one memoized score in exported form: the ordered name
// pair and the metric value cached for it. It is the unit of warm-memo
// persistence — a bounded slice of entries saved at shutdown and
// seeded back at boot so a recovered service starts with a warm table.
type MemoEntry struct {
	A, B  string
	Score float64
}

// Entries exports up to max memoized entries (max ≤ 0: all), sorted by
// (A, B) so the export is deterministic regardless of shard iteration
// order. When the table exceeds max, the lexicographically first max
// entries are returned — an arbitrary but stable bound; the memo is a
// cache, so any slice of it is a valid warm hint.
func (m *Memo) Entries(max int) []MemoEntry {
	var out []MemoEntry
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for k, v := range sh.table {
			out = append(out, MemoEntry{A: k.a, B: k.b, Score: v})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Seed inserts persisted entries into the memo table. Persisted scores
// are only trusted after spot verification: up to verify entries
// (evenly spread over the slice) are recomputed against the metric,
// and any disagreement beyond 1e-9 rejects the whole slice without
// inserting anything — a memo seeded from a file written under a
// different metric would silently change answer sets, which is exactly
// what the durable store's corruption discipline forbids. Entries for
// pairs already memoized are skipped (the live value wins).
func (m *Memo) Seed(entries []MemoEntry, verify int) error {
	if len(entries) == 0 {
		return nil
	}
	if verify > 0 {
		if verify > len(entries) {
			verify = len(entries)
		}
		step := len(entries) / verify
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(entries); i += step {
			e := entries[i]
			got := m.metric.Similarity(e.A, e.B)
			if diff := got - e.Score; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("engine: seeded score %q/%q = %v disagrees with metric value %v",
					e.A, e.B, e.Score, got)
			}
		}
	}
	for _, e := range entries {
		sh := m.shardOf(e.A, e.B)
		key := pairKey{e.A, e.B}
		sh.mu.Lock()
		if _, ok := sh.table[key]; !ok {
			sh.table[key] = e.Score
		}
		sh.mu.Unlock()
	}
	return nil
}

// Stats is a point-in-time snapshot of a Memo's cache behaviour.
type Stats struct {
	// Hits and Misses count Score calls served from and missing the
	// table. A miss that races another miss on the same pair is still
	// one miss per caller; both compute the (identical) value.
	Hits, Misses int64
	// Entries is the number of memoized pairs.
	Entries int
}

// Sub returns the traffic between two snapshots of the same Memo:
// s - prev, counter by counter. Callers attributing cross-request
// cache behaviour to one request (or one tenant) snapshot before and
// after and keep the difference; under concurrency the attribution is
// approximate, as concurrent traffic blends into whichever snapshots
// are in flight.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:    s.Hits - prev.Hits,
		Misses:  s.Misses - prev.Misses,
		Entries: s.Entries - prev.Entries,
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 before any Score call.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters, summed over shards.
func (m *Memo) Stats() Stats {
	var st Stats
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		st.Entries += len(sh.table)
		sh.mu.RUnlock()
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
	}
	return st
}
