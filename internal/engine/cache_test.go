package engine

import (
	"fmt"
	"testing"
)

func TestCacheSharesPerKey(t *testing.T) {
	c := NewCache()
	a := c.Scorer("corpus-a", nil)
	if b := c.Scorer("corpus-a", nil); a != b {
		t.Error("same (problem, metric) key returned distinct scorers")
	}
	if b := c.Scorer("corpus-b", nil); a == b {
		t.Error("different problems shared a scorer")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache()
	a := c.Scorer("corpus", nil)
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
	if b := c.Scorer("corpus", nil); a == b {
		t.Error("Reset did not drop the held scorer")
	}
}

func TestCacheLimitEvictsLRU(t *testing.T) {
	c := NewCacheWithLimit(2)
	if c.Limit() != 2 {
		t.Fatalf("Limit = %d", c.Limit())
	}
	a := c.Scorer("a", nil)
	c.Scorer("b", nil)
	c.Scorer("a", nil) // touch a: b is now least recently used
	c.Scorer("c", nil) // evicts b
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if got := c.Scorer("a", nil); got != a {
		t.Error("recently used scorer was evicted")
	}
	// b was evicted: asking again creates a fresh memo (and evicts the
	// current LRU), keeping the cache at its bound.
	c.Scorer("b", nil)
	if c.Len() != 2 {
		t.Errorf("Len after refill = %d, want 2", c.Len())
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCache()
	first := c.Scorer("p0", nil)
	for i := 1; i < 100; i++ {
		c.Scorer(fmt.Sprintf("p%d", i), nil)
	}
	if c.Len() != 100 {
		t.Errorf("Len = %d, want 100", c.Len())
	}
	if got := c.Scorer("p0", nil); got != first {
		t.Error("unbounded cache dropped an entry")
	}
}
