package engine

import (
	"fmt"
	"testing"
)

func TestCacheSharesPerKey(t *testing.T) {
	c := NewCache()
	a := c.Scorer("corpus-a", nil)
	if b := c.Scorer("corpus-a", nil); a != b {
		t.Error("same (problem, metric) key returned distinct scorers")
	}
	if b := c.Scorer("corpus-b", nil); a == b {
		t.Error("different problems shared a scorer")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache()
	a := c.Scorer("corpus", nil)
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
	if b := c.Scorer("corpus", nil); a == b {
		t.Error("Reset did not drop the held scorer")
	}
}

func TestCacheRemove(t *testing.T) {
	c := NewCache()
	a := c.Scorer("corpus-a", nil)
	b := c.Scorer("corpus-b", nil)
	if n := c.Remove(func(problem, _ string) bool { return problem == "corpus-a" }); n != 1 {
		t.Fatalf("Remove dropped %d scorers, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after Remove", c.Len())
	}
	if got := c.Scorer("corpus-b", nil); got != b {
		t.Error("Remove dropped an unmatched scorer")
	}
	if got := c.Scorer("corpus-a", nil); got == a {
		t.Error("Remove kept the matched scorer")
	}
}

func TestMemoRemove(t *testing.T) {
	m := New(nil)
	m.Score("alpha", "beta")
	m.Score("alpha", "gamma")
	m.Score("delta", "beta")
	if st := m.Stats(); st.Entries != 3 {
		t.Fatalf("Entries = %d, want 3", st.Entries)
	}
	retired := map[string]bool{"alpha": true}
	n := m.Remove(func(a, b string) bool { return retired[a] || retired[b] })
	if n != 2 {
		t.Fatalf("Remove dropped %d pairs, want 2", n)
	}
	if st := m.Stats(); st.Entries != 1 {
		t.Fatalf("Entries = %d after Remove, want 1", st.Entries)
	}
	// Removed pairs recompute identically on the next call.
	before := m.Stats()
	v := m.Score("alpha", "beta")
	after := m.Stats()
	if after.Misses != before.Misses+1 {
		t.Error("removed pair did not miss on re-Score")
	}
	if v2 := m.Score("alpha", "beta"); v2 != v {
		t.Errorf("re-memoized score changed: %v vs %v", v2, v)
	}
	if n := m.Remove(func(a, b string) bool { return false }); n != 0 {
		t.Errorf("no-op Remove dropped %d", n)
	}
}

func TestCacheLimitEvictsLRU(t *testing.T) {
	c := NewCacheWithLimit(2)
	if c.Limit() != 2 {
		t.Fatalf("Limit = %d", c.Limit())
	}
	a := c.Scorer("a", nil)
	c.Scorer("b", nil)
	c.Scorer("a", nil) // touch a: b is now least recently used
	c.Scorer("c", nil) // evicts b
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if got := c.Scorer("a", nil); got != a {
		t.Error("recently used scorer was evicted")
	}
	// b was evicted: asking again creates a fresh memo (and evicts the
	// current LRU), keeping the cache at its bound.
	c.Scorer("b", nil)
	if c.Len() != 2 {
		t.Errorf("Len after refill = %d, want 2", c.Len())
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCache()
	first := c.Scorer("p0", nil)
	for i := 1; i < 100; i++ {
		c.Scorer(fmt.Sprintf("p%d", i), nil)
	}
	if c.Len() != 100 {
		t.Errorf("Len = %d, want 100", c.Len())
	}
	if got := c.Scorer("p0", nil); got != first {
		t.Error("unbounded cache dropped an entry")
	}
}
