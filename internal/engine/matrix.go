package engine

import (
	"runtime"
	"sync"
)

// Matrix is a dense rows×cols score matrix: Vals[i*cols+j] is the score
// of (rowNames[i], colNames[j]). It is immutable after construction.
type Matrix struct {
	rows, cols int
	vals       []float64
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the score of row i against column j.
func (m *Matrix) At(i, j int) float64 { return m.vals[i*m.cols+j] }

// Values returns the backing row-major slice. Every Build call
// allocates fresh storage, so the caller owns the returned slice and
// may transform it in place (the matchers negate it into cost tables);
// after such a transform the Matrix accessors reflect the new values.
func (m *Matrix) Values() []float64 { return m.vals }

// ResolveWorkers clamps a requested worker count to [1, jobs], with
// values < 1 defaulting to GOMAXPROCS. It is the sizing rule ForEach
// and ForEachWorker apply, exported so callers allocating per-worker
// state (row-scoring sessions, scratch rows) can size their slices to
// the pool that will actually run.
func ResolveWorkers(workers, jobs int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on a worker pool of the
// given size (< 1 selects GOMAXPROCS, clamped to n). It is the single
// fan-out primitive behind the matrix builders and the problem table
// build; fn must be safe to call concurrently for distinct i.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn(w, i) runs job i on
// worker w, where w < ResolveWorkers(workers, n). Jobs on the same
// worker run sequentially, so fn may keep per-w state (a scoring
// session, scratch buffers) without synchronization.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = ResolveWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// sessionSet lazily materializes one RowSession per worker. Sessions
// are created on a worker's first job — a pool larger than the row
// count never pays for unused sessions — and must be Closed after the
// fan-out completes.
type sessionSet struct {
	sc       Scorer
	sessions []RowSession
}

func newSessionSet(sc Scorer, workers int) *sessionSet {
	return &sessionSet{sc: sc, sessions: make([]RowSession, workers)}
}

func (ss *sessionSet) session(w int) RowSession {
	if ss.sessions[w] == nil {
		ss.sessions[w] = NewRowSession(ss.sc)
	}
	return ss.sessions[w]
}

func (ss *sessionSet) close() {
	for _, s := range ss.sessions {
		if s != nil {
			s.Close()
		}
	}
}

// BuildMatrix evaluates sc on every (row, col) name pair with a
// worker pool of the given size (< 1 selects GOMAXPROCS), fanning rows
// out over the workers. Each worker writes a disjoint row range and
// scores through its own RowSession (per-pair fallback for plain
// Scorers), so the only synchronization is inside the Scorer — with a
// Memo, concurrent builders warm one shared cache.
func BuildMatrix(rowNames, colNames []string, sc Scorer, workers int) *Matrix {
	m := &Matrix{rows: len(rowNames), cols: len(colNames), vals: make([]float64, len(rowNames)*len(colNames))}
	ss := newSessionSet(sc, ResolveWorkers(workers, m.rows))
	ForEachWorker(m.rows, workers, func(w, i int) {
		ss.session(w).ScoreRow(rowNames[i], colNames, m.vals[i*m.cols:(i+1)*m.cols])
	})
	ss.close()
	return m
}

// BuildMatrixMasked is BuildMatrix restricted to the pairs mask
// admits: entries with mask(i, j) == false are never scored and stay
// zero in the returned matrix (the caller substitutes its own value —
// the matching layer writes a conservative cost bound there). A nil
// mask scores every pair, exactly like BuildMatrix. The mask must be
// safe to call concurrently for distinct rows.
func BuildMatrixMasked(rowNames, colNames []string, sc Scorer, workers int, mask func(i, j int) bool) *Matrix {
	if mask == nil {
		return BuildMatrix(rowNames, colNames, sc, workers)
	}
	m := &Matrix{rows: len(rowNames), cols: len(colNames), vals: make([]float64, len(rowNames)*len(colNames))}
	nw := ResolveWorkers(workers, m.rows)
	ss := newSessionSet(sc, nw)
	keeps := make([][]bool, nw)
	ForEachWorker(m.rows, workers, func(w, i int) {
		keep := keeps[w]
		if keep == nil {
			keep = make([]bool, m.cols)
			keeps[w] = keep
		}
		any := false
		for j := range colNames {
			k := mask(i, j)
			keep[j] = k
			any = any || k
		}
		if any {
			ss.session(w).ScoreRowMasked(rowNames[i], colNames, m.vals[i*m.cols:(i+1)*m.cols], keep)
		}
	})
	ss.close()
	return m
}

// SymMatrix stores scores for every unordered pair of n items as a
// lower triangle. The diagonal is not stored: At(i, i) returns 1
// (every name is fully similar to itself).
type SymMatrix struct {
	n    int
	vals []float64
}

// Len returns the item count.
func (m *SymMatrix) Len() int { return m.n }

func (m *SymMatrix) index(i, j int) int {
	if i < j {
		i, j = j, i
	}
	return i*(i-1)/2 + j
}

// At returns the score of items i and j (1 on the diagonal).
func (m *SymMatrix) At(i, j int) float64 {
	if i == j {
		return 1
	}
	return m.vals[m.index(i, j)]
}

// Values returns the backing lower-triangle slice, indexed
// i*(i-1)/2 + j for i > j. As with Matrix.Values, each Build call
// allocates fresh storage and the caller owns the slice.
func (m *SymMatrix) Values() []float64 { return m.vals }

// BuildSymmetric evaluates sc on every unordered name pair with a
// worker pool (workers < 1 selects GOMAXPROCS), fanning rows of the
// lower triangle out over the workers. Pairs are evaluated as
// (names[i], names[j]) with i > j — the same orientation the serial
// cluster matrix builder uses — so asymmetric metrics score
// deterministically regardless of worker count.
func BuildSymmetric(names []string, sc Scorer, workers int) *SymMatrix {
	n := len(names)
	m := &SymMatrix{n: n, vals: make([]float64, n*(n-1)/2)}
	ss := newSessionSet(sc, ResolveWorkers(workers, n-1))
	// Hand out large rows first so the pool drains evenly.
	ForEachWorker(n-1, workers, func(w, k int) {
		i := n - 1 - k
		base := i * (i - 1) / 2
		ss.session(w).ScoreRow(names[i], names[:i], m.vals[base:base+i])
	})
	ss.close()
	return m
}
