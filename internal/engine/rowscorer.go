package engine

import (
	"sync"

	"repro/internal/similarity"
)

// RowSession scores batches of pairs sharing a row name. Sessions own
// per-worker scratch (compiled-kernel buffers, profile lookups), so a
// session must be used by one goroutine at a time and Closed when the
// build finishes. Scores are bit-identical to Scorer.Score on the same
// scorer — a session is an execution strategy, not a different metric.
type RowSession interface {
	// ScoreRow writes Score(row, cols[j]) into out[j] for every j.
	ScoreRow(row string, cols []string, out []float64)
	// ScoreRowMasked is ScoreRow restricted to columns with keep[j]
	// true; other entries of out are left untouched.
	ScoreRowMasked(row string, cols []string, out []float64, keep []bool)
	// Close releases the session's scratch. The session must not be
	// used afterwards.
	Close()
}

// RowScorer is the optional batching extension of Scorer: scorers that
// can amortize profile derivation and buffer setup across a row expose
// sessions; plain Scorers keep working through the per-pair fallback.
// Memo and Uncached both implement it over compiled similarity kernels.
type RowScorer interface {
	Scorer
	// NewSession returns a fresh row-scoring session for one worker.
	NewSession() RowSession
}

// NewRowSession returns a scoring session for sc: its own when sc
// implements RowScorer, otherwise a fallback delegating to Score.
func NewRowSession(sc Scorer) RowSession {
	if rs, ok := sc.(RowScorer); ok {
		return rs.NewSession()
	}
	return scorerSession{sc: sc}
}

// scorerSession is the per-pair fallback for plain Scorers.
type scorerSession struct{ sc Scorer }

func (s scorerSession) ScoreRow(row string, cols []string, out []float64) {
	for j, c := range cols {
		out[j] = s.sc.Score(row, c)
	}
}

func (s scorerSession) ScoreRowMasked(row string, cols []string, out []float64, keep []bool) {
	for j, c := range cols {
		if keep[j] {
			out[j] = s.sc.Score(row, c)
		}
	}
}

func (s scorerSession) Close() {}

// kernelCell lazily compiles one similarity kernel per scorer. It is
// held by pointer so value copies of Uncached share the compilation.
type kernelCell struct {
	once sync.Once
	k    *similarity.Kernel
}

func (c *kernelCell) kernel(m similarity.Metric) *similarity.Kernel {
	c.once.Do(func() { c.k = similarity.NewKernel(m) })
	return c.k
}

// NewSession implements RowScorer: scoring runs through the compiled
// kernel (bit-identical to the metric), with the row profile interned
// once per row.
func (u Uncached) NewSession() RowSession {
	if u.kern == nil {
		// Zero-value Uncached: no kernel cell to share, fall back.
		return scorerSession{sc: u}
	}
	return &uncachedSession{ks: u.kern.kernel(u.metric).Session()}
}

// colCache memoizes the interned profiles of a column slice across the
// rows of one batch. Builders score many rows against the same backing
// array (possibly re-sliced, as in BuildSymmetric's growing triangle
// rows), so only the first row pays the per-column interner lookups.
// Holding a pointer into the array keeps it alive, so a matching base
// pointer always means the same array; callers must not mutate a cols
// slice between ScoreRow calls that share it (the builders never do).
type colCache struct {
	base  *string
	profs []*similarity.NameProfile
}

func (cc *colCache) profiles(ks *similarity.KernelSession, cols []string) []*similarity.NameProfile {
	if len(cols) == 0 {
		return nil
	}
	if cc.base != &cols[0] {
		cc.base = &cols[0]
		cc.profs = cc.profs[:0]
	}
	if len(cols) <= len(cc.profs) {
		return cc.profs[:len(cols)]
	}
	for _, c := range cols[len(cc.profs):] {
		cc.profs = append(cc.profs, ks.Profile(c))
	}
	return cc.profs
}

type uncachedSession struct {
	ks   *similarity.KernelSession
	cols colCache
}

func (s *uncachedSession) ScoreRow(row string, cols []string, out []float64) {
	rp := s.ks.Profile(row)
	for j, cp := range s.cols.profiles(s.ks, cols) {
		out[j] = s.ks.SimilarityProfiles(rp, cp)
	}
}

func (s *uncachedSession) ScoreRowMasked(row string, cols []string, out []float64, keep []bool) {
	rp := s.ks.Profile(row)
	for j, cp := range s.cols.profiles(s.ks, cols) {
		if keep[j] {
			out[j] = s.ks.SimilarityProfiles(rp, cp)
		}
	}
}

func (s *uncachedSession) Close() { s.ks.Close() }

// kernel returns the memo's lazily compiled kernel.
func (m *Memo) kernel() *similarity.Kernel {
	return m.kern.kernel(m.metric)
}

// Profiles returns the interner backing the memo's compiled kernel, so
// callers building a candidate index over the same metric can share
// profiles instead of re-deriving them (candindex.Config.Profiles).
func (m *Memo) Profiles() *similarity.Interner {
	return m.kernel().Interner()
}

// NewSession implements RowScorer. The session shares the memo table —
// hits and misses count exactly as in Score — but computes misses
// through the compiled kernel, which returns bit-identical values.
func (m *Memo) NewSession() RowSession {
	return &memoSession{m: m, ks: m.kernel().Session()}
}

type memoSession struct {
	m    *Memo
	ks   *similarity.KernelSession
	cols colCache
	// Cached row state: the interned profile and partial shard hash of
	// the last row, looked up once per row instead of once per pair.
	row  string
	rp   *similarity.NameProfile
	rowH uint32
}

func (s *memoSession) setRow(row string) {
	if s.rp == nil || s.row != row {
		s.row = row
		s.rp = s.ks.Profile(row)
		s.rowH = fnvRow(row)
	}
}

// score is one memo evaluation against the cached row: the exact
// hit/miss protocol of Memo.Score, with misses computed through the
// kernel (bit-identical by the kernel contract). cp is the column's
// profile when the caller already holds it, nil to defer the interner
// lookup to the miss path — hits never need a profile.
func (s *memoSession) score(c string, cp *similarity.NameProfile) float64 {
	key := pairKey{s.row, c}
	sh := s.m.shardCont(s.rowH, c)
	sh.mu.RLock()
	v, ok := sh.table[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
		return v
	}
	sh.misses.Add(1)
	if cp == nil {
		cp = s.ks.Profile(c)
	}
	v = s.ks.SimilarityProfiles(s.rp, cp)
	sh.mu.Lock()
	sh.table[key] = v
	sh.mu.Unlock()
	return v
}

func (s *memoSession) ScoreRow(row string, cols []string, out []float64) {
	s.setRow(row)
	for j, cp := range s.cols.profiles(s.ks, cols) {
		out[j] = s.score(cols[j], cp)
	}
}

// ScoreRowMasked skips the column-profile cache: pruned builds keep few
// columns and warm builds hit the memo table, so per-column profiles
// are fetched lazily, only when a kept pair actually misses.
func (s *memoSession) ScoreRowMasked(row string, cols []string, out []float64, keep []bool) {
	s.setRow(row)
	for j, c := range cols {
		if keep[j] {
			out[j] = s.score(c, nil)
		}
	}
}

func (s *memoSession) Close() { s.ks.Close() }
