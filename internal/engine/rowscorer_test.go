package engine

import (
	"math"
	"testing"

	"repro/internal/similarity"
)

var rowNamesFixture = []string{
	"customerName", "client_name", "XMLSchemaID", "order-item.price",
	"İstanbul", "zipcode", "postcode", "", " customer ",
}

// TestBuildMatrixSessionParity pins the session-backed builders to the
// per-cell Score reference, bit for bit, for both scorer kinds and for
// a plain (non-RowScorer) wrapper.
func TestBuildMatrixSessionParity(t *testing.T) {
	rows := rowNamesFixture
	cols := append([]string{"client", "priceOfOrderItem"}, rowNamesFixture...)
	scorers := map[string]Scorer{
		"uncached": NewUncached(nil),
		"memo":     New(nil),
		"plain":    plainScorer{NewUncached(nil)},
	}
	for name, sc := range scorers {
		for _, workers := range []int{1, 4} {
			m := BuildMatrix(rows, cols, sc, workers)
			for i, rn := range rows {
				for j, cn := range cols {
					want := sc.Score(rn, cn)
					if math.Float64bits(m.At(i, j)) != math.Float64bits(want) {
						t.Fatalf("%s/w=%d: At(%d,%d)=%v, want %v", name, workers, i, j, m.At(i, j), want)
					}
				}
			}
			sm := BuildSymmetric(rows, sc, workers)
			for i := range rows {
				for j := 0; j < i; j++ {
					want := sc.Score(rows[i], rows[j])
					if math.Float64bits(sm.At(i, j)) != math.Float64bits(want) {
						t.Fatalf("%s/w=%d: sym At(%d,%d)=%v, want %v", name, workers, i, j, sm.At(i, j), want)
					}
				}
			}
			mask := func(i, j int) bool { return (i+j)%3 != 0 }
			mm := BuildMatrixMasked(rows, cols, sc, workers, mask)
			for i, rn := range rows {
				for j, cn := range cols {
					want := 0.0
					if mask(i, j) {
						want = sc.Score(rn, cn)
					}
					if math.Float64bits(mm.At(i, j)) != math.Float64bits(want) {
						t.Fatalf("%s/w=%d: masked At(%d,%d)=%v, want %v", name, workers, i, j, mm.At(i, j), want)
					}
				}
			}
		}
	}
}

// plainScorer hides RowScorer so NewRowSession exercises the fallback.
type plainScorer struct{ sc Scorer }

func (p plainScorer) Score(a, b string) float64 { return p.sc.Score(a, b) }
func (p plainScorer) MetricName() string        { return p.sc.MetricName() }

// TestMemoSessionSharesTable verifies a session's misses land in the
// memo table (visible to Score) and its hits/misses feed the same
// counters Score uses.
func TestMemoSessionSharesTable(t *testing.T) {
	m := New(similarity.EditSim{})
	sess := m.NewSession()
	defer sess.Close()

	cols := []string{"alpha", "beta", "gamma"}
	out := make([]float64, len(cols))
	sess.ScoreRow("alphabet", cols, out)
	st := m.Stats()
	if st.Misses != 3 || st.Hits != 0 || st.Entries != 3 {
		t.Fatalf("after first row: %+v, want 3 misses / 0 hits / 3 entries", st)
	}
	// Score must now hit the entries the session populated.
	for j, c := range cols {
		if got := m.Score("alphabet", c); math.Float64bits(got) != math.Float64bits(out[j]) {
			t.Fatalf("Score(alphabet, %s) = %v, want session value %v", c, got, out[j])
		}
	}
	st = m.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("after re-score: %+v, want 3 hits / 3 misses", st)
	}
	// And the session must hit entries Score populated.
	m.Score("beta", "gamma")
	sess.ScoreRow("beta", []string{"gamma"}, out[:1])
	st = m.Stats()
	if st.Hits != 4 || st.Misses != 4 {
		t.Fatalf("after cross hit: %+v, want 4 hits / 4 misses", st)
	}
}

// TestUncachedSessionZeroAlloc pins the warm batched uncached path —
// the path BuildMatrix drives — at zero heap allocations per row.
func TestUncachedSessionZeroAlloc(t *testing.T) {
	sc := NewUncached(nil)
	sess := sc.NewSession()
	defer sess.Close()
	cols := rowNamesFixture
	out := make([]float64, len(cols))
	// Warm: intern every profile, grow scratch.
	sess.ScoreRow("customer full name", cols, out)
	allocs := testing.AllocsPerRun(100, func() {
		sess.ScoreRow("customer full name", cols, out)
	})
	if allocs != 0 {
		t.Errorf("warm uncached ScoreRow: %v allocs, want 0", allocs)
	}
}
