// Package engine is the shared scoring substrate of the matching
// system: a single, memoized source of node-pair similarity scores that
// every matcher (exhaustive, parallel, beam, top-k), the clusterer, and
// the experiment pipeline draw from instead of invoking a
// similarity.Metric directly.
//
// # The Scorer contract
//
// A Scorer returns the name similarity of two strings in [0, 1] (1 =
// identical) and identifies the metric it evaluates. Implementations
// must be deterministic — Score(a, b) always returns the same value for
// the same pair — and safe for concurrent use; the matchers and the
// worker-pool builders call Score from many goroutines at once.
// Determinism is what makes memoization sound and what guarantees that
// a cached and an uncached run of the same matcher produce identical
// answer sets.
//
// Two implementations are provided:
//
//   - Uncached wraps a similarity.Metric one-to-one: every Score call
//     pays the full string-metric cost. It is the reference baseline
//     the engine benchmarks compare against.
//   - Memo is the production scorer: a sharded, concurrently built,
//     memoized similarity matrix. The first evaluation of a pair pays
//     the metric; every later evaluation — from any matcher, any
//     threshold sweep, any improvement run sharing the scorer — is a
//     lock-cheap table lookup.
//
// # Cache-key scheme
//
// Memo keys its table by the ordered name pair (a, b); no symmetry is
// assumed, so asymmetric metrics (e.g. Monge-Elkan) memoize correctly.
// The pair hashes (FNV-1a over a, a NUL separator, and b) onto one of a
// fixed number of shards, each an independently locked map, so
// concurrent builders and matchers contend only when they touch the
// same shard — this is what lets ParallelExhaustive's workers and
// repeated RunImprovement calls grow one cache without serializing on a
// single lock.
//
// One level up, Cache keys whole scorers by (problem, metric): the
// problem is a caller-chosen identity (typically the scenario or
// repository name) and the metric is identified by Metric.Name(). Two
// pipelines matching the same problem under the same metric therefore
// share one memo table, while different metrics or different corpora
// stay isolated. Metric names are trusted to identify behaviour — two
// different metrics must not share a name within one Cache.
//
// # Builders
//
// BuildMatrix and BuildSymmetric are the worker-pool builders: they
// evaluate a dense rows×cols (or all-unordered-pairs) score matrix by
// fanning row blocks out over a bounded pool of goroutines, each
// hitting the shared Scorer. Used with a Memo they warm the cache while
// producing the dense tables the matchers index during enumeration.
//
// # Row scoring sessions
//
// RowScorer is the batching extension of Scorer. Instead of paying the
// per-pair setup of Score for every cell — re-deriving the row name's
// tokens, grams, and rune forms cols times — a RowScorer hands out
// RowSessions: single-goroutine contexts that score one row name
// against a whole column slice (ScoreRow / ScoreRowMasked) over
// interned name profiles and reused scratch buffers. Both Uncached and
// Memo implement RowScorer by compiling their metric into a
// similarity.Kernel; the kernel contract guarantees bit-identical
// scores, so a session is purely an execution strategy — answer sets,
// memo contents, and reports are unchanged.
//
// The builders (and the matching layer's cost-table construction)
// create one session per pool worker via NewRowSession, which falls
// back to a per-pair Score loop for plain Scorers — third-party Scorer
// implementations keep working unmodified. Sessions must be Closed
// after the fan-out so their scratch returns to the kernel's pool.
// ForEachWorker exposes the worker identity that makes per-worker
// sessions sound: jobs on one worker run sequentially.
package engine
