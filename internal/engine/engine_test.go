package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/similarity"
)

// countingMetric wraps a metric with an atomic evaluation counter, so
// tests can observe how much work memoization avoided.
type countingMetric struct {
	inner similarity.Metric
	calls atomic.Int64
}

func (c *countingMetric) Similarity(a, b string) float64 {
	c.calls.Add(1)
	return c.inner.Similarity(a, b)
}

func (c *countingMetric) Name() string { return "counting(" + c.inner.Name() + ")" }

func TestMemoMatchesMetric(t *testing.T) {
	metric := similarity.DefaultNameMetric()
	memo := New(metric)
	pairs := [][2]string{
		{"customerName", "client_name"},
		{"zipcode", "postal_code"},
		{"title", "title"},
		{"", "x"},
	}
	for _, p := range pairs {
		want := metric.Similarity(p[0], p[1])
		if got := memo.Score(p[0], p[1]); got != want {
			t.Errorf("Score(%q, %q) = %v, want %v", p[0], p[1], got, want)
		}
		// Second call must hit the cache and return the same value.
		if got := memo.Score(p[0], p[1]); got != want {
			t.Errorf("cached Score(%q, %q) = %v, want %v", p[0], p[1], got, want)
		}
	}
	st := memo.Stats()
	if st.Entries != len(pairs) {
		t.Errorf("Entries = %d, want %d", st.Entries, len(pairs))
	}
	if st.Hits != int64(len(pairs)) || st.Misses != int64(len(pairs)) {
		t.Errorf("Hits/Misses = %d/%d, want %d/%d", st.Hits, st.Misses, len(pairs), len(pairs))
	}
	if hr := st.HitRate(); math.Abs(hr-0.5) > 1e-12 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
}

func TestMemoOrderedKeys(t *testing.T) {
	// Asymmetric metric: the ordered (a, b) key must keep both
	// directions distinct.
	asym := similarity.MongeElkan{Inner: similarity.JaroWinklerSim{}}
	memo := New(asym)
	a, b := "customer full name", "name"
	if got, want := memo.Score(a, b), asym.Similarity(a, b); got != want {
		t.Errorf("Score(a,b) = %v, want %v", got, want)
	}
	if got, want := memo.Score(b, a), asym.Similarity(b, a); got != want {
		t.Errorf("Score(b,a) = %v, want %v", got, want)
	}
	if memo.Stats().Entries != 2 {
		t.Errorf("Entries = %d, want 2 (ordered keys)", memo.Stats().Entries)
	}
}

func TestMemoSerialEvaluatesOncePerPair(t *testing.T) {
	cm := &countingMetric{inner: similarity.EditSim{}}
	memo := New(cm)
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				memo.Score(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
			}
		}
	}
	if got := cm.calls.Load(); got != 100 {
		t.Errorf("metric evaluated %d times, want 100 (once per distinct pair)", got)
	}
}

// TestMemoConcurrentAccess hammers one Memo from many goroutines over
// an overlapping key set — run under -race this is the cache's
// concurrent-access safety test. Afterwards every stored value must
// equal the metric's, and the entry count must equal the distinct
// pairs touched (racing misses may recompute but never corrupt).
func TestMemoConcurrentAccess(t *testing.T) {
	metric := similarity.EditSim{}
	memo := NewSharded(metric, 8)
	names := make([]string, 24)
	for i := range names {
		names[i] = fmt.Sprintf("element_%d", i)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				for i := range names {
					a := names[(i+g)%len(names)]
					b := names[(i*7+r)%len(names)]
					want := metric.Similarity(a, b)
					if got := memo.Score(a, b); got != want {
						t.Errorf("concurrent Score(%q, %q) = %v, want %v", a, b, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := memo.Stats(); st.Entries > len(names)*len(names) {
		t.Errorf("Entries = %d, impossible for %d names", st.Entries, len(names))
	}
}

func TestBuildMatrixWorkerCountInvariance(t *testing.T) {
	rows := []string{"book", "title", "author", "price"}
	cols := make([]string, 40)
	for i := range cols {
		cols[i] = fmt.Sprintf("field%c%d", 'a'+i%3, i)
	}
	sc := NewUncached(similarity.DefaultNameMetric())
	serial := BuildMatrix(rows, cols, sc, 1)
	parallel := BuildMatrix(rows, cols, New(similarity.DefaultNameMetric()), 8)
	if serial.Rows() != len(rows) || serial.Cols() != len(cols) {
		t.Fatalf("dims = %dx%d", serial.Rows(), serial.Cols())
	}
	for i := range rows {
		for j := range cols {
			if s, p := serial.At(i, j), parallel.At(i, j); s != p {
				t.Fatalf("At(%d,%d): serial %v != parallel %v", i, j, s, p)
			}
		}
	}
}

func TestBuildSymmetricWorkerCountInvariance(t *testing.T) {
	names := make([]string, 30)
	for i := range names {
		names[i] = fmt.Sprintf("name_%d_%c", i, 'a'+i%5)
	}
	sc := NewUncached(similarity.DefaultNameMetric())
	serial := BuildSymmetric(names, sc, 1)
	parallel := BuildSymmetric(names, New(similarity.DefaultNameMetric()), 8)
	for i := range names {
		if serial.At(i, i) != 1 {
			t.Fatalf("At(%d,%d) = %v, want 1", i, i, serial.At(i, i))
		}
		for j := range names {
			if s, p := serial.At(i, j), parallel.At(i, j); s != p {
				t.Fatalf("At(%d,%d): serial %v != parallel %v", i, j, s, p)
			}
			if serial.At(i, j) != serial.At(j, i) {
				t.Fatalf("At(%d,%d) not symmetric", i, j)
			}
		}
	}
}

func TestBuildMatrixWarmsSharedMemo(t *testing.T) {
	cm := &countingMetric{inner: similarity.EditSim{}}
	memo := New(cm)
	rows := []string{"a", "b", "c"}
	cols := []string{"x", "y", "z", "a"}
	BuildMatrix(rows, cols, memo, 4)
	calls := cm.calls.Load()
	// A second build of the same block must be pure cache hits.
	BuildMatrix(rows, cols, memo, 4)
	if got := cm.calls.Load(); got != calls {
		t.Errorf("second build evaluated the metric %d more times", got-calls)
	}
}

func TestCacheKeysByProblemAndMetric(t *testing.T) {
	c := NewCache()
	edit := similarity.EditSim{}
	m1 := c.Scorer("corpus-1", edit)
	if m2 := c.Scorer("corpus-1", similarity.EditSim{}); m2 != m1 {
		t.Error("same (problem, metric) returned a different scorer")
	}
	if m3 := c.Scorer("corpus-2", edit); m3 == m1 {
		t.Error("different problem shared a scorer")
	}
	if m4 := c.Scorer("corpus-1", similarity.JaroSim{}); m4 == m1 {
		t.Error("different metric shared a scorer")
	}
	if c.Len() != 3 {
		t.Errorf("Cache.Len = %d, want 3", c.Len())
	}
	if c.Scorer("corpus-1", nil).MetricName() != similarity.DefaultNameMetric().Name() {
		t.Error("nil metric did not default")
	}
}

func TestUncachedPassesThrough(t *testing.T) {
	cm := &countingMetric{inner: similarity.EditSim{}}
	u := NewUncached(cm)
	u.Score("a", "b")
	u.Score("a", "b")
	if got := cm.calls.Load(); got != 2 {
		t.Errorf("Uncached evaluated %d times, want 2 (no memoization)", got)
	}
	if NewUncached(nil).MetricName() != similarity.DefaultNameMetric().Name() {
		t.Error("nil metric did not default")
	}
}
