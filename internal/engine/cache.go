package engine

import (
	"sync"

	"repro/internal/lru"
	"repro/internal/similarity"
)

// Cache shares Memo scorers across pipeline stages, keyed by
// (problem, metric): problem is a caller-chosen identity for the
// matching problem (typically the scenario or repository name) and the
// metric is identified by its Name(). Asking twice for the same key
// returns the same *Memo, so an exhaustive baseline, its improvements,
// and the clusterer all grow one table. Different problems or metrics
// never share entries.
//
// A Cache built with NewCache is unbounded — appropriate for
// experiment drivers that touch a handful of corpora per process.
// Long-lived services should either own their scorers directly (the
// match.Service does) or bound the cache with NewCacheWithLimit, which
// evicts the least-recently-used scorer once the limit is exceeded.
type Cache struct {
	mu    sync.Mutex
	memos *lru.Map[cacheKey, *Memo]
}

type cacheKey struct {
	problem, metric string
}

// NewCache returns an empty, unbounded scorer cache.
func NewCache() *Cache {
	return NewCacheWithLimit(0)
}

// NewCacheWithLimit returns a scorer cache holding at most limit
// scorers, evicting the least recently used beyond that. A limit < 1
// means unbounded.
func NewCacheWithLimit(limit int) *Cache {
	return &Cache{memos: lru.New[cacheKey, *Memo](limit)}
}

// Scorer returns the shared Memo for (problem, metric), creating it on
// first use. A nil metric selects similarity.DefaultNameMetric. Metric
// names are trusted to identify behaviour: two metrics that share a
// name within one Cache must compute the same function.
func (c *Cache) Scorer(problem string, metric similarity.Metric) *Memo {
	if metric == nil {
		metric = similarity.DefaultNameMetric()
	}
	key := cacheKey{problem: problem, metric: metric.Name()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.memos.Get(key); ok {
		return m
	}
	m := New(metric)
	c.memos.Put(key, m)
	return m
}

// Len returns the number of distinct (problem, metric) scorers held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memos.Len()
}

// Limit returns the maximum number of scorers held, 0 for unbounded.
func (c *Cache) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memos.Limit()
}

// Reset drops every held scorer, releasing their memo tables. Scorers
// already handed out keep working; they are simply no longer shared
// with future callers.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memos.Reset()
}

// Remove drops every scorer whose (problem, metric) key matches pred
// and returns how many were dropped — the targeted alternative to
// Reset when one problem's corpus is retired (or re-versioned) while
// other problems keep their warm memo tables. Scorers already handed
// out keep working; they are simply no longer shared.
func (c *Cache) Remove(pred func(problem, metric string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memos.RemoveFunc(func(k cacheKey, _ *Memo) bool {
		return pred(k.problem, k.metric)
	})
}
