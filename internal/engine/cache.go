package engine

import (
	"sync"

	"repro/internal/similarity"
)

// Cache shares Memo scorers across pipeline stages, keyed by
// (problem, metric): problem is a caller-chosen identity for the
// matching problem (typically the scenario or repository name) and the
// metric is identified by its Name(). Asking twice for the same key
// returns the same *Memo, so an exhaustive baseline, its improvements,
// and the clusterer all grow one table. Different problems or metrics
// never share entries.
type Cache struct {
	mu    sync.Mutex
	memos map[cacheKey]*Memo
}

type cacheKey struct {
	problem, metric string
}

// NewCache returns an empty scorer cache.
func NewCache() *Cache {
	return &Cache{memos: make(map[cacheKey]*Memo)}
}

// Scorer returns the shared Memo for (problem, metric), creating it on
// first use. A nil metric selects similarity.DefaultNameMetric. Metric
// names are trusted to identify behaviour: two metrics that share a
// name within one Cache must compute the same function.
func (c *Cache) Scorer(problem string, metric similarity.Metric) *Memo {
	if metric == nil {
		metric = similarity.DefaultNameMetric()
	}
	key := cacheKey{problem: problem, metric: metric.Name()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.memos[key]; ok {
		return m
	}
	m := New(metric)
	c.memos[key] = m
	return m
}

// Len returns the number of distinct (problem, metric) scorers held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.memos)
}
