package eval

import (
	"fmt"

	"repro/internal/matching"
)

// Complementary effectiveness measures. The paper works exclusively
// with precision/recall curves; these single-number summaries are the
// standard companions used throughout the schema matching evaluation
// literature the paper cites (Do, Melnik & Rahm, "Comparison of schema
// matching evaluations"), and the benchmark harness reports them
// alongside the curves.

// FMeasure returns the F_β score of one (precision, recall) point.
// β > 1 weighs recall higher, β < 1 precision. It returns 0 when both
// inputs are 0.
func FMeasure(precision, recall, beta float64) float64 {
	if precision <= 0 && recall <= 0 {
		return 0
	}
	b2 := beta * beta
	den := b2*precision + recall
	if den == 0 {
		return 0
	}
	return (1 + b2) * precision * recall / den
}

// F1 is FMeasure with β = 1.
func F1(precision, recall float64) float64 { return FMeasure(precision, recall, 1) }

// Overall is the schema-matching "overall" measure of Melnik et al.
// (also called accuracy in the matching literature): recall·(2 − 1/precision).
// Unlike F1 it can go negative when precision < 0.5, expressing that
// repairing the result costs more than doing the match manually.
func Overall(precision, recall float64) float64 {
	if precision <= 0 {
		if recall <= 0 {
			return 0
		}
		return -1
	}
	return recall * (2 - 1/precision)
}

// AveragePrecision returns the rank-based average precision of an
// answer list against truth: the mean of precision@k over the ranks k
// holding a correct answer, divided by |H|-normalization
// (uninterpolated AP as used in TREC). It returns 1 when truth is
// empty.
func AveragePrecision(answers []matching.Answer, truth *Truth) float64 {
	if truth.Size() == 0 {
		return 1
	}
	correct := 0
	sum := 0.0
	for i, a := range answers {
		if truth.Contains(a.Mapping.Key()) {
			correct++
			sum += float64(correct) / float64(i+1)
		}
	}
	return sum / float64(truth.Size())
}

// RPrecision returns precision@|H|: the precision of the first |H|
// ranked answers. It returns 1 when truth is empty.
func RPrecision(answers []matching.Answer, truth *Truth) float64 {
	r := truth.Size()
	if r == 0 {
		return 1
	}
	if r > len(answers) {
		r = len(answers)
	}
	if r == 0 {
		return 0
	}
	correct := 0
	for _, a := range answers[:r] {
		if truth.Contains(a.Mapping.Key()) {
			correct++
		}
	}
	return float64(correct) / float64(truth.Size())
}

// PrecisionAtK returns precision of the first k ranked answers; k
// beyond the list length uses the whole list. k < 1 is an error.
func PrecisionAtK(answers []matching.Answer, truth *Truth, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("eval: precision@%d undefined", k)
	}
	if k > len(answers) {
		k = len(answers)
	}
	if k == 0 {
		return 1, nil // empty prefix: nothing wrong
	}
	correct := 0
	for _, a := range answers[:k] {
		if truth.Contains(a.Mapping.Key()) {
			correct++
		}
	}
	return float64(correct) / float64(k), nil
}

// Summary bundles the single-number measures of one answer list.
type Summary struct {
	Precision, Recall float64
	F1                float64
	Overall           float64
	AveragePrecision  float64
	RPrecision        float64
	Answers           int
}

// Summarize computes all single-number measures of answers at once.
func Summarize(answers []matching.Answer, truth *Truth) Summary {
	p, r := PR(answers, truth)
	return Summary{
		Precision:        p,
		Recall:           r,
		F1:               F1(p, r),
		Overall:          Overall(p, r),
		AveragePrecision: AveragePrecision(answers, truth),
		RPrecision:       RPrecision(answers, truth),
		Answers:          len(answers),
	}
}
