package eval

import (
	"fmt"

	"repro/internal/matching"
)

// Pool-depth analysis, after Zobel (SIGIR 1998), who asked how deep a
// pool must be judged before the measured effectiveness stabilizes —
// the paper's Section 1 cites both his depth-100 adequacy result and
// his shallow-pool extrapolation idea. CoverageByDepth reports, for a
// sweep of pool depths, what fraction of the full truth the pool
// covers; the depth where coverage saturates is the cheapest adequate
// pool.
type DepthPoint struct {
	// Depth is the per-system top-N cutoff.
	Depth int
	// PoolSize is the number of distinct pooled answers.
	PoolSize int
	// TruthCovered is |pool ∩ H|.
	TruthCovered int
	// Coverage is TruthCovered / |H| (1 when |H| = 0).
	Coverage float64
}

// CoverageByDepth pools the given systems at each depth and measures
// truth coverage. Depths must be positive and ascending.
func CoverageByDepth(sets []*matching.AnswerSet, truth *Truth, depths []int) ([]DepthPoint, error) {
	prev := 0
	out := make([]DepthPoint, 0, len(depths))
	for _, d := range depths {
		if d <= 0 {
			return nil, fmt.Errorf("eval: non-positive pool depth %d", d)
		}
		if d < prev {
			return nil, fmt.Errorf("eval: pool depths must ascend (%d after %d)", d, prev)
		}
		prev = d
		pool := Pool(sets, d)
		covered := 0
		for k := range pool {
			if truth.Contains(k) {
				covered++
			}
		}
		cov := 1.0
		if truth.Size() > 0 {
			cov = float64(covered) / float64(truth.Size())
		}
		out = append(out, DepthPoint{
			Depth:        d,
			PoolSize:     len(pool),
			TruthCovered: covered,
			Coverage:     cov,
		})
	}
	return out, nil
}

// AdequateDepth returns the smallest sampled depth whose coverage
// reaches the target fraction, or -1 when none does.
func AdequateDepth(points []DepthPoint, target float64) int {
	for _, p := range points {
		if p.Coverage >= target {
			return p.Depth
		}
	}
	return -1
}
