package eval

import (
	"fmt"
	"sort"

	"repro/internal/matching"
)

// Rank agreement between two systems' answer lists. The bounds
// technique presumes S2 ranks its (retained) answers exactly like S1 —
// "the same objective function". KendallTau measures that agreement on
// the common answers, so an experiment can *verify* the presumption on
// real systems instead of assuming it: τ = 1 means identical order.

// KendallTau returns the Kendall rank correlation coefficient (τ-a)
// between the orderings that a and b assign to their common answers,
// in [-1, 1]. It returns an error when fewer than two answers are
// shared (correlation undefined).
func KendallTau(a, b *matching.AnswerSet) (float64, error) {
	rankB := make(map[string]int, b.Len())
	for i, ans := range b.All() {
		rankB[ans.Mapping.Key()] = i
	}
	// Collect b-ranks of the common answers in a's order.
	var seq []int
	for _, ans := range a.All() {
		if r, ok := rankB[ans.Mapping.Key()]; ok {
			seq = append(seq, r)
		}
	}
	n := len(seq)
	if n < 2 {
		return 0, fmt.Errorf("eval: %d common answers; rank correlation needs ≥ 2", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case seq[i] < seq[j]:
				concordant++
			case seq[i] > seq[j]:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// RankOfKey returns the 0-based rank of a mapping key in the set, or
// -1 when absent.
func RankOfKey(set *matching.AnswerSet, key string) int {
	for i, a := range set.All() {
		if a.Mapping.Key() == key {
			return i
		}
	}
	return -1
}

// TruthRanks returns the sorted 0-based ranks at which the set places
// correct answers — the raw material of rank-based effectiveness
// measures.
func TruthRanks(set *matching.AnswerSet, truth *Truth) []int {
	var out []int
	for i, a := range set.All() {
		if truth.Contains(a.Mapping.Key()) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
