package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/matching"
)

func TestFMeasureKnown(t *testing.T) {
	if got := F1(0.5, 0.5); !almostEq(got, 0.5) {
		t.Errorf("F1(0.5,0.5) = %v", got)
	}
	if got := F1(1, 1); !almostEq(got, 1) {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %v", got)
	}
	if got := F1(1, 0); got != 0 {
		t.Errorf("F1(1,0) = %v", got)
	}
	// F2 weighs recall: with high recall it beats F0.5.
	f2 := FMeasure(0.2, 0.9, 2)
	fHalf := FMeasure(0.2, 0.9, 0.5)
	if f2 <= fHalf {
		t.Errorf("F2 (%v) should exceed F0.5 (%v) when recall dominates", f2, fHalf)
	}
}

func TestFMeasureBoundedProperty(t *testing.T) {
	f := func(rawP, rawR, rawB float64) bool {
		p := math.Abs(math.Mod(rawP, 1))
		r := math.Abs(math.Mod(rawR, 1))
		beta := math.Abs(math.Mod(rawB, 4)) + 0.01
		fm := FMeasure(p, r, beta)
		if fm < 0 || fm > 1 || math.IsNaN(fm) {
			return false
		}
		// F lies between min and max of (p, r).
		lo, hi := math.Min(p, r), math.Max(p, r)
		return fm >= lo-1e-9 && fm <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestOverall(t *testing.T) {
	if got := Overall(1, 1); !almostEq(got, 1) {
		t.Errorf("Overall(1,1) = %v", got)
	}
	// Precision 0.5 is the break-even point: overall 0.
	if got := Overall(0.5, 0.8); !almostEq(got, 0) {
		t.Errorf("Overall(0.5,·) = %v, want 0", got)
	}
	if got := Overall(0.25, 0.5); got >= 0 {
		t.Errorf("Overall below precision 0.5 should be negative: %v", got)
	}
	if got := Overall(0, 0.5); got != -1 {
		t.Errorf("Overall with zero precision = %v, want -1", got)
	}
	if got := Overall(0, 0); got != 0 {
		t.Errorf("Overall(0,0) = %v", got)
	}
}

func apFixture() ([]matching.Answer, *Truth) {
	truth := NewTruth(map[string]bool{"a:1": true, "a:2": true, "a:3": true})
	answers := []matching.Answer{
		mkAnswer("a", 1, 0.1), // rank 1: correct, P@1 = 1
		mkAnswer("x", 8, 0.2), // rank 2: incorrect
		mkAnswer("a", 2, 0.3), // rank 3: correct, P@3 = 2/3
		mkAnswer("x", 9, 0.4), // rank 4: incorrect
	}
	return answers, truth
}

func TestAveragePrecisionKnown(t *testing.T) {
	answers, truth := apFixture()
	// AP = (1 + 2/3) / 3 = 5/9 (a:3 never retrieved).
	if got := AveragePrecision(answers, truth); !almostEq(got, 5.0/9) {
		t.Errorf("AP = %v, want 5/9", got)
	}
	if got := AveragePrecision(nil, truth); got != 0 {
		t.Errorf("AP of empty answers = %v", got)
	}
	if got := AveragePrecision(answers, NewTruth(nil)); got != 1 {
		t.Errorf("AP with empty truth = %v", got)
	}
}

func TestRPrecision(t *testing.T) {
	answers, truth := apFixture()
	// |H| = 3 → precision of first 3 = 2 correct / 3 = 2/3.
	if got := RPrecision(answers, truth); !almostEq(got, 2.0/3) {
		t.Errorf("RPrecision = %v, want 2/3", got)
	}
	// Short lists: 1 answer, correct → 1/3.
	if got := RPrecision(answers[:1], truth); !almostEq(got, 1.0/3) {
		t.Errorf("RPrecision short = %v, want 1/3", got)
	}
	if got := RPrecision(nil, truth); got != 0 {
		t.Errorf("RPrecision empty = %v", got)
	}
	if got := RPrecision(answers, NewTruth(nil)); got != 1 {
		t.Errorf("RPrecision empty truth = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	answers, truth := apFixture()
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1}, {2, 0.5}, {3, 2.0 / 3}, {4, 0.5}, {100, 0.5},
	}
	for _, c := range cases {
		got, err := PrecisionAtK(answers, truth, c.k)
		if err != nil {
			t.Fatalf("P@%d: %v", c.k, err)
		}
		if !almostEq(got, c.want) {
			t.Errorf("P@%d = %v, want %v", c.k, got, c.want)
		}
	}
	if _, err := PrecisionAtK(answers, truth, 0); err == nil {
		t.Error("P@0 should error")
	}
	got, err := PrecisionAtK(nil, truth, 5)
	if err != nil || got != 1 {
		t.Errorf("P@k of empty list = %v, %v", got, err)
	}
}

func TestSummarize(t *testing.T) {
	answers, truth := apFixture()
	s := Summarize(answers, truth)
	if s.Answers != 4 {
		t.Errorf("Answers = %d", s.Answers)
	}
	if !almostEq(s.Precision, 0.5) || !almostEq(s.Recall, 2.0/3) {
		t.Errorf("P/R = %v/%v", s.Precision, s.Recall)
	}
	if !almostEq(s.F1, F1(0.5, 2.0/3)) {
		t.Errorf("F1 = %v", s.F1)
	}
	if !almostEq(s.AveragePrecision, 5.0/9) {
		t.Errorf("AP = %v", s.AveragePrecision)
	}
	if !almostEq(s.Overall, Overall(0.5, 2.0/3)) {
		t.Errorf("Overall = %v", s.Overall)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCurveCSVRoundTrip(t *testing.T) {
	orig := Curve{
		{Delta: 0, Precision: 1, Recall: 0, Answers: 0, Correct: 0},
		{Delta: 0.15, Precision: 0.8605, Recall: 0.6271, Answers: 43, Correct: 37},
		{Delta: 0.45, Precision: 0.035, Recall: 1, Answers: 1685, Correct: 59},
	}
	// Round precision values to count-consistent ones for CheckCurve.
	orig[1].Precision = 37.0 / 43
	orig[2].Precision = 59.0 / 1685
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCurveCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip length %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("point %d: %+v vs %+v", i, back[i], orig[i])
		}
	}
}

func TestReadCurveCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n1,2\n",
		"delta,precision,recall,answers,correct\nnotanumber,1,0,0,0\n",
		"delta,precision,recall,answers,correct\n0.1,1,0,xx,0\n",
		// Valid CSV, invalid curve (correct > answers).
		"delta,precision,recall,answers,correct\n0.1,1,0.5,1,2\n",
	}
	for i, src := range cases {
		if _, err := ReadCurveCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
