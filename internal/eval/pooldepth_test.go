package eval

import (
	"fmt"
	"testing"

	"repro/internal/matching"
)

// depthFixture: one system ranking 10 answers, truth = answers at
// ranks 1, 3, 5, 7 (scores 0.1, 0.3, 0.5, 0.7).
func depthFixture() ([]*matching.AnswerSet, *Truth) {
	var answers []matching.Answer
	truthKeys := map[string]bool{}
	for i := 1; i <= 10; i++ {
		a := mkAnswer("s", i, float64(i)/10)
		answers = append(answers, a)
		if i%2 == 1 && i <= 7 {
			truthKeys[a.Mapping.Key()] = true
		}
	}
	return []*matching.AnswerSet{matching.NewAnswerSet(answers)}, NewTruth(truthKeys)
}

func TestCoverageByDepth(t *testing.T) {
	sets, truth := depthFixture()
	points, err := CoverageByDepth(sets, truth, []int{1, 3, 5, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	wantCovered := []int{1, 2, 3, 4, 4}
	for i, p := range points {
		if p.TruthCovered != wantCovered[i] {
			t.Errorf("depth %d covered %d, want %d", p.Depth, p.TruthCovered, wantCovered[i])
		}
		if p.PoolSize != points[0].Depth*0+minInt(p.Depth, 10) {
			t.Errorf("depth %d pool size %d", p.Depth, p.PoolSize)
		}
	}
	// Coverage is monotone.
	for i := 1; i < len(points); i++ {
		if points[i].Coverage < points[i-1].Coverage {
			t.Error("coverage decreased with depth")
		}
	}
	if points[4].Coverage != 1 {
		t.Errorf("full-depth coverage = %v", points[4].Coverage)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCoverageByDepthErrors(t *testing.T) {
	sets, truth := depthFixture()
	if _, err := CoverageByDepth(sets, truth, []int{0}); err == nil {
		t.Error("zero depth should error")
	}
	if _, err := CoverageByDepth(sets, truth, []int{5, 3}); err == nil {
		t.Error("descending depths should error")
	}
}

func TestCoverageEmptyTruth(t *testing.T) {
	sets, _ := depthFixture()
	points, err := CoverageByDepth(sets, NewTruth(nil), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Coverage != 1 {
		t.Errorf("empty-truth coverage = %v, want 1", points[0].Coverage)
	}
}

func TestAdequateDepth(t *testing.T) {
	sets, truth := depthFixture()
	points, err := CoverageByDepth(sets, truth, []int{1, 3, 5, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := AdequateDepth(points, 0.75); got != 5 {
		t.Errorf("AdequateDepth(0.75) = %d, want 5", got)
	}
	if got := AdequateDepth(points, 1.0); got != 7 {
		t.Errorf("AdequateDepth(1.0) = %d, want 7", got)
	}
	if got := AdequateDepth(points, 1.01); got != -1 {
		t.Errorf("unreachable target = %d, want -1", got)
	}
}

// TestMultiSystemPoolCoverage: two systems with disjoint tails cover
// more truth together than either alone.
func TestMultiSystemPoolCoverage(t *testing.T) {
	truthKeys := map[string]bool{}
	var aAnswers, bAnswers []matching.Answer
	for i := 1; i <= 6; i++ {
		a := mkAnswer("a", i, float64(i)/10)
		b := mkAnswer("b", i, float64(i)/10)
		aAnswers = append(aAnswers, a)
		bAnswers = append(bAnswers, b)
		truthKeys[a.Mapping.Key()] = true
		truthKeys[b.Mapping.Key()] = true
	}
	truth := NewTruth(truthKeys)
	setA := matching.NewAnswerSet(aAnswers)
	setB := matching.NewAnswerSet(bAnswers)
	solo, err := CoverageByDepth([]*matching.AnswerSet{setA}, truth, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	both, err := CoverageByDepth([]*matching.AnswerSet{setA, setB}, truth, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if both[0].Coverage <= solo[0].Coverage {
		t.Errorf("pooling two systems (%v) should beat one (%v)",
			both[0].Coverage, solo[0].Coverage)
	}
	if fmt.Sprintf("%.2f", both[0].Coverage) != "1.00" {
		t.Errorf("joint coverage = %v", both[0].Coverage)
	}
}
