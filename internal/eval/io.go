package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Curve (de)serialization. Measured curves are the interchange format
// of the bounds technique — a published curve travels from one paper
// to another as a handful of (δ, P, R, |A|) rows — so the library can
// write and read them as CSV.

var curveHeader = []string{"delta", "precision", "recall", "answers", "correct"}

// WriteCurveCSV writes a measured curve as CSV with a header row.
func WriteCurveCSV(w io.Writer, c Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(curveHeader); err != nil {
		return fmt.Errorf("eval: writing curve header: %w", err)
	}
	for _, pt := range c {
		rec := []string{
			strconv.FormatFloat(pt.Delta, 'g', -1, 64),
			strconv.FormatFloat(pt.Precision, 'g', -1, 64),
			strconv.FormatFloat(pt.Recall, 'g', -1, 64),
			strconv.Itoa(pt.Answers),
			strconv.Itoa(pt.Correct),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: writing curve row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCurveCSV parses a curve written by WriteCurveCSV and validates
// it with CheckCurve.
func ReadCurveCSV(r io.Reader) (Curve, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("eval: reading curve CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("eval: empty curve CSV")
	}
	if len(records[0]) != len(curveHeader) || records[0][0] != "delta" {
		return nil, fmt.Errorf("eval: unexpected curve CSV header %v", records[0])
	}
	var curve Curve
	for i, rec := range records[1:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("eval: curve CSV row %d has %d fields", i+1, len(rec))
		}
		var pt PRPoint
		if pt.Delta, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("eval: row %d delta: %w", i+1, err)
		}
		if pt.Precision, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("eval: row %d precision: %w", i+1, err)
		}
		if pt.Recall, err = strconv.ParseFloat(rec[2], 64); err != nil {
			return nil, fmt.Errorf("eval: row %d recall: %w", i+1, err)
		}
		if pt.Answers, err = strconv.Atoi(rec[3]); err != nil {
			return nil, fmt.Errorf("eval: row %d answers: %w", i+1, err)
		}
		if pt.Correct, err = strconv.Atoi(rec[4]); err != nil {
			return nil, fmt.Errorf("eval: row %d correct: %w", i+1, err)
		}
		curve = append(curve, pt)
	}
	if err := CheckCurve(curve); err != nil {
		return nil, err
	}
	return curve, nil
}
