package eval

import (
	"math"
	"testing"

	"repro/internal/matching"
)

func mkAnswer(schema string, id int, score float64) matching.Answer {
	return matching.Answer{
		Mapping: matching.Mapping{Schema: schema, Targets: []int{id}},
		Score:   score,
	}
}

func mkSet(answers ...matching.Answer) *matching.AnswerSet {
	return matching.NewAnswerSet(answers)
}

func TestTruthBasics(t *testing.T) {
	tr := NewTruth(map[string]bool{"a:1": true, "b:2": true, "c:3": false})
	if tr.Size() != 2 {
		t.Errorf("Size = %d, want 2 (false entries dropped)", tr.Size())
	}
	if !tr.Contains("a:1") || tr.Contains("c:3") || tr.Contains("zzz") {
		t.Error("Contains broken")
	}
}

func TestNewTruthFromMappings(t *testing.T) {
	ms := []matching.Mapping{
		{Schema: "a", Targets: []int{1}},
		{Schema: "b", Targets: []int{2}},
		{Schema: "a", Targets: []int{1}}, // dup
	}
	tr := NewTruthFromMappings(ms)
	if tr.Size() != 2 {
		t.Errorf("Size = %d, want 2", tr.Size())
	}
}

func TestPR(t *testing.T) {
	tr := NewTruth(map[string]bool{"a:1": true, "a:2": true, "a:3": true, "a:4": true})
	answers := []matching.Answer{
		mkAnswer("a", 1, 0.1), // correct
		mkAnswer("a", 2, 0.2), // correct
		mkAnswer("x", 9, 0.3), // incorrect
	}
	p, r := PR(answers, tr)
	if math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 2/3", p)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("recall = %v, want 0.5", r)
	}
}

func TestPRConventions(t *testing.T) {
	tr := NewTruth(map[string]bool{"a:1": true})
	p, r := PR(nil, tr)
	if p != 1 || r != 0 {
		t.Errorf("empty answers: P=%v R=%v, want 1, 0", p, r)
	}
	empty := NewTruth(nil)
	p, r = PR([]matching.Answer{mkAnswer("a", 1, 0.1)}, empty)
	if r != 1 {
		t.Errorf("empty truth recall = %v, want 1", r)
	}
	if p != 0 {
		t.Errorf("precision vs empty truth = %v, want 0", p)
	}
}

func TestThresholds(t *testing.T) {
	ts := Thresholds(0, 0.25, 5)
	if len(ts) != 6 || ts[0] != 0 || math.Abs(ts[5]-0.25) > 1e-12 {
		t.Errorf("Thresholds = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("not ascending: %v", ts)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid sweep should panic")
		}
	}()
	Thresholds(1, 0, 5)
}

func TestMeasuredCurve(t *testing.T) {
	tr := NewTruth(map[string]bool{"a:1": true, "a:2": true})
	set := mkSet(
		mkAnswer("a", 1, 0.05), // correct
		mkAnswer("x", 7, 0.15), // incorrect
		mkAnswer("a", 2, 0.25), // correct
	)
	curve := MeasuredCurve(set, tr, []float64{0.3, 0.1, 0.2, 0.0}) // unsorted on purpose
	if err := CheckCurve(curve); err != nil {
		t.Fatalf("CheckCurve: %v", err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve len = %d", len(curve))
	}
	// After sorting: δ=0 → 0 answers; 0.1 → 1 answer (correct);
	// 0.2 → 2 answers (1 correct); 0.3 → 3 answers (2 correct).
	if curve[0].Answers != 0 || curve[0].Precision != 1 || curve[0].Recall != 0 {
		t.Errorf("point 0 = %+v", curve[0])
	}
	if curve[1].Answers != 1 || curve[1].Precision != 1 || curve[1].Recall != 0.5 {
		t.Errorf("point 1 = %+v", curve[1])
	}
	if curve[2].Answers != 2 || curve[2].Precision != 0.5 || curve[2].Recall != 0.5 {
		t.Errorf("point 2 = %+v", curve[2])
	}
	if curve[3].Answers != 3 || math.Abs(curve[3].Precision-2.0/3) > 1e-12 || curve[3].Recall != 1 {
		t.Errorf("point 3 = %+v", curve[3])
	}
}

func TestCheckCurveCatchesViolations(t *testing.T) {
	good := Curve{
		{Delta: 0.1, Precision: 1, Recall: 0.25, Answers: 1, Correct: 1},
		{Delta: 0.2, Precision: 0.5, Recall: 0.25, Answers: 2, Correct: 1},
	}
	if err := CheckCurve(good); err != nil {
		t.Fatalf("good curve rejected: %v", err)
	}
	bad := []Curve{
		{{Delta: 0.1, Precision: 1, Recall: 0, Answers: 1, Correct: 2}},                                                                           // correct > answers
		{{Delta: 0.1, Precision: 2, Recall: 0, Answers: 0, Correct: 0}},                                                                           // P out of range
		{{Delta: 0.2, Answers: 0, Precision: 1}, {Delta: 0.1, Answers: 0, Precision: 1}},                                                          // deltas descend
		{{Delta: 0.1, Answers: 5, Correct: 1, Precision: 0.2}, {Delta: 0.2, Answers: 3, Correct: 1, Precision: 1.0 / 3}},                          // answers shrink
		{{Delta: 0.1, Answers: 2, Correct: 2, Precision: 1, Recall: 0.5}, {Delta: 0.2, Answers: 3, Correct: 1, Precision: 1.0 / 3, Recall: 0.25}}, // correct shrink
		{{Delta: 0.1, Answers: 4, Correct: 1, Precision: 0.5}},                                                                                    // precision inconsistent
	}
	for i, c := range bad {
		if err := CheckCurve(c); err == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestCurveAccessors(t *testing.T) {
	c := Curve{
		{Delta: 0.1, Answers: 2, Correct: 1, Precision: 0.5, Recall: 0.1},
		{Delta: 0.2, Answers: 6, Correct: 3, Precision: 0.5, Recall: 0.3},
	}
	sz := c.Sizes()
	if len(sz) != 2 || sz[0] != 2 || sz[1] != 6 {
		t.Errorf("Sizes = %v", sz)
	}
	ds := c.Deltas()
	if len(ds) != 2 || ds[0] != 0.1 || ds[1] != 0.2 {
		t.Errorf("Deltas = %v", ds)
	}
	if h := c.ImpliedH(); h != 10 {
		t.Errorf("ImpliedH = %d, want 10", h)
	}
	if h := (Curve{{Delta: 0.1}}).ImpliedH(); h != 0 {
		t.Errorf("ImpliedH of zero-recall curve = %d, want 0", h)
	}
}

func TestInterpolate(t *testing.T) {
	// Measured: (R=0.2, P=0.8), (R=0.5, P=0.6), (R=0.7, P=0.3).
	c := Curve{
		{Delta: 0.1, Precision: 0.8, Recall: 0.2, Answers: 5, Correct: 4},
		{Delta: 0.2, Precision: 0.6, Recall: 0.5, Answers: 10, Correct: 6}, // counts illustrative
		{Delta: 0.3, Precision: 0.3, Recall: 0.7, Answers: 40, Correct: 12},
	}
	ip := Interpolate(c)
	if ip.At(0) != 0.8 || ip.At(1) != 0.8 || ip.At(2) != 0.8 {
		t.Errorf("levels 0–2 = %v %v %v, want 0.8", ip.At(0), ip.At(1), ip.At(2))
	}
	if ip.At(3) != 0.6 || ip.At(4) != 0.6 || ip.At(5) != 0.6 {
		t.Errorf("levels 3–5 should be 0.6: %v", ip)
	}
	if ip.At(6) != 0.3 || ip.At(7) != 0.3 {
		t.Errorf("levels 6–7 should be 0.3: %v", ip)
	}
	if ip.At(8) != 0 || ip.At(10) != 0 {
		t.Errorf("levels beyond max recall should be 0: %v", ip)
	}
}

func TestInterpolateMonotoneNonIncreasing(t *testing.T) {
	// Whatever the measured curve, the interpolated curve must be
	// non-increasing in recall (max-to-the-right rule guarantees it).
	c := Curve{
		{Delta: 0.1, Precision: 0.3, Recall: 0.1, Answers: 10, Correct: 3},
		{Delta: 0.2, Precision: 0.9, Recall: 0.4, Answers: 12, Correct: 11}, // precision went UP
		{Delta: 0.3, Precision: 0.5, Recall: 0.8, Answers: 30, Correct: 15},
	}
	ip := Interpolate(c)
	for l := 1; l <= 10; l++ {
		if ip.At(l) > ip.At(l-1)+1e-12 {
			t.Errorf("interpolated precision increases at level %d: %v", l, ip)
		}
	}
}

func TestPool(t *testing.T) {
	s1 := mkSet(mkAnswer("a", 1, 0.1), mkAnswer("a", 2, 0.2), mkAnswer("a", 3, 0.3))
	s2 := mkSet(mkAnswer("a", 2, 0.2), mkAnswer("b", 9, 0.25))
	pool := Pool([]*matching.AnswerSet{s1, s2, nil}, 2)
	want := []string{"a:1", "a:2", "b:9"}
	if len(pool) != len(want) {
		t.Fatalf("pool = %v", pool)
	}
	for _, k := range want {
		if !pool[k] {
			t.Errorf("pool missing %s", k)
		}
	}
}

func TestPooledTruth(t *testing.T) {
	full := NewTruth(map[string]bool{"a:1": true, "a:2": true, "hidden:5": true})
	pool := map[string]bool{"a:1": true, "a:2": true, "x:9": true}
	pt := PooledTruth(full, pool)
	if pt.Size() != 2 {
		t.Errorf("pooled truth size = %d, want 2", pt.Size())
	}
	if pt.Contains("hidden:5") {
		t.Error("unpooled truth leaked through")
	}
	if pt.Contains("x:9") {
		t.Error("pool member outside truth counted as correct")
	}
}

// Pooling must never overstate truth: pooled recall computed against the
// full truth is a lower bound of true recall.
func TestPoolingUnderestimatesRecall(t *testing.T) {
	full := NewTruth(map[string]bool{"a:1": true, "a:2": true, "a:3": true, "a:4": true})
	set := mkSet(
		mkAnswer("a", 1, 0.1),
		mkAnswer("a", 2, 0.2),
		mkAnswer("a", 3, 0.3),
		mkAnswer("a", 4, 0.4),
	)
	pool := Pool([]*matching.AnswerSet{set}, 2) // judges only top 2
	pooled := PooledTruth(full, pool)
	_, rPooled := PR(set.All(), pooled)
	_, rFull := PR(set.All(), full)
	// Recall vs pooled truth uses the pooled |H|; the comparison the
	// paper cares about is correct counts: pooled correct ≤ full correct.
	if pooled.CountCorrect(set.All()) > full.CountCorrect(set.All()) {
		t.Error("pooling created correct answers out of thin air")
	}
	_ = rPooled
	_ = rFull
}
