package eval

import (
	"math"
	"testing"

	"repro/internal/matching"
)

func rankedSet(keys ...string) *matching.AnswerSet {
	var answers []matching.Answer
	for i, k := range keys {
		answers = append(answers, matching.Answer{
			Mapping: matching.Mapping{Schema: k, Targets: []int{1}},
			Score:   float64(i+1) / 100,
		})
	}
	return matching.NewAnswerSet(answers)
}

func TestKendallTauIdenticalOrder(t *testing.T) {
	a := rankedSet("w", "x", "y", "z")
	tau, err := KendallTau(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 1 {
		t.Errorf("τ of identical sets = %v, want 1", tau)
	}
}

func TestKendallTauSubsetSameObjective(t *testing.T) {
	// A subset ranked by the same scores keeps perfect agreement —
	// the situation the bounds technique requires.
	full := rankedSet("a", "b", "c", "d", "e")
	sub := rankedSet("b", "d", "e") // scores differ but order matches full's
	tau, err := KendallTau(sub, full)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 1 {
		t.Errorf("τ of order-preserving subset = %v, want 1", tau)
	}
}

func TestKendallTauReversed(t *testing.T) {
	a := rankedSet("p", "q", "r", "s")
	b := rankedSet("s", "r", "q", "p")
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tau != -1 {
		t.Errorf("τ of reversed order = %v, want -1", tau)
	}
}

func TestKendallTauPartial(t *testing.T) {
	a := rankedSet("1", "2", "3", "4")
	b := rankedSet("1", "3", "2", "4") // one adjacent swap: 5 concordant, 1 discordant
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-4.0/6) > 1e-12 {
		t.Errorf("τ = %v, want 2/3", tau)
	}
}

func TestKendallTauErrors(t *testing.T) {
	a := rankedSet("only")
	if _, err := KendallTau(a, a); err == nil {
		t.Error("single common answer should error")
	}
	if _, err := KendallTau(rankedSet("x"), rankedSet("y")); err == nil {
		t.Error("no common answers should error")
	}
}

func TestRankOfKey(t *testing.T) {
	s := rankedSet("a", "b", "c")
	if RankOfKey(s, "b:1") != 1 {
		t.Errorf("rank of b = %d", RankOfKey(s, "b:1"))
	}
	if RankOfKey(s, "zzz") != -1 {
		t.Error("missing key should rank -1")
	}
}

func TestTruthRanks(t *testing.T) {
	s := rankedSet("a", "b", "c", "d")
	truth := NewTruth(map[string]bool{"b:1": true, "d:1": true})
	ranks := TruthRanks(s, truth)
	if len(ranks) != 2 || ranks[0] != 1 || ranks[1] != 3 {
		t.Errorf("TruthRanks = %v", ranks)
	}
	if got := TruthRanks(s, NewTruth(nil)); len(got) != 0 {
		t.Errorf("empty truth ranks = %v", got)
	}
}
