// Package eval implements the quality measurement machinery of the
// paper's Section 2: truth sets H, precision and recall, measured P/R
// curves over threshold sweeps, the 11-point interpolated P/R curve,
// and TREC-style pooling (the related-work baseline for reducing
// assessment effort that Section 1 discusses).
package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matching"
)

// Truth is the set H of correct mappings, identified by canonical
// mapping keys.
type Truth struct {
	keys map[string]bool
}

// NewTruth copies the given key set into a Truth.
func NewTruth(keys map[string]bool) *Truth {
	cp := make(map[string]bool, len(keys))
	for k, v := range keys {
		if v {
			cp[k] = true
		}
	}
	return &Truth{keys: cp}
}

// NewTruthFromMappings builds a Truth from mappings.
func NewTruthFromMappings(ms []matching.Mapping) *Truth {
	keys := make(map[string]bool, len(ms))
	for _, m := range ms {
		keys[m.Key()] = true
	}
	return &Truth{keys: keys}
}

// Size returns |H|.
func (t *Truth) Size() int { return len(t.keys) }

// Contains reports whether the mapping key is correct.
func (t *Truth) Contains(key string) bool { return t.keys[key] }

// CountCorrect returns |A ∩ H| for a slice of answers.
func (t *Truth) CountCorrect(answers []matching.Answer) int {
	n := 0
	for _, a := range answers {
		if t.keys[a.Mapping.Key()] {
			n++
		}
	}
	return n
}

// PR returns precision and recall of an answer slice against truth.
// Precision of an empty answer set is 1 by convention (no answer is
// wrong); recall over an empty truth is 1.
func PR(answers []matching.Answer, truth *Truth) (precision, recall float64) {
	correct := truth.CountCorrect(answers)
	if len(answers) == 0 {
		precision = 1
	} else {
		precision = float64(correct) / float64(len(answers))
	}
	if truth.Size() == 0 {
		recall = 1
	} else {
		recall = float64(correct) / float64(truth.Size())
	}
	return precision, recall
}

// PRPoint is one point of a measured P/R curve: the quality of an
// answer set A(δ) at one threshold.
type PRPoint struct {
	// Delta is the threshold the point was measured at.
	Delta float64
	// Precision and Recall at this threshold.
	Precision, Recall float64
	// Answers is |A(δ)|.
	Answers int
	// Correct is |T(δ)| = |A(δ) ∩ H|.
	Correct int
}

// Curve is a measured P/R curve: points at ascending thresholds.
// Construct with MeasuredCurve or validate external data with
// CheckCurve.
type Curve []PRPoint

// Thresholds returns n+1 equally spaced threshold values from lo to hi
// inclusive. It panics on n < 1 or hi < lo, which indicates a
// programming error in the experiment driver.
func Thresholds(lo, hi float64, n int) []float64 {
	if n < 1 || hi < lo {
		panic(fmt.Sprintf("eval: invalid threshold sweep [%v,%v]/%d", lo, hi, n))
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return out
}

// MeasuredCurve evaluates an answer set against truth at each
// threshold, in ascending order.
func MeasuredCurve(set *matching.AnswerSet, truth *Truth, thresholds []float64) Curve {
	ts := append([]float64(nil), thresholds...)
	sort.Float64s(ts)
	curve := make(Curve, 0, len(ts))
	for _, d := range ts {
		answers := set.At(d)
		p, r := PR(answers, truth)
		curve = append(curve, PRPoint{
			Delta:     d,
			Precision: p,
			Recall:    r,
			Answers:   len(answers),
			Correct:   truth.CountCorrect(answers),
		})
	}
	return curve
}

// CheckCurve validates the structural invariants of a measured curve:
// ascending thresholds, monotone non-decreasing answer and correct
// counts, correct ≤ answers, consistency of precision with the counts.
func CheckCurve(c Curve) error {
	for i, pt := range c {
		if pt.Answers < 0 || pt.Correct < 0 || pt.Correct > pt.Answers {
			return fmt.Errorf("eval: point %d has impossible counts (%d correct of %d)", i, pt.Correct, pt.Answers)
		}
		if pt.Precision < 0 || pt.Precision > 1 || pt.Recall < 0 || pt.Recall > 1 {
			return fmt.Errorf("eval: point %d has out-of-range P/R (%v, %v)", i, pt.Precision, pt.Recall)
		}
		if pt.Answers > 0 {
			want := float64(pt.Correct) / float64(pt.Answers)
			if math.Abs(want-pt.Precision) > 1e-9 {
				return fmt.Errorf("eval: point %d precision %v inconsistent with counts %d/%d", i, pt.Precision, pt.Correct, pt.Answers)
			}
		}
		if i > 0 {
			prev := c[i-1]
			if pt.Delta < prev.Delta {
				return fmt.Errorf("eval: thresholds not ascending at point %d", i)
			}
			if pt.Answers < prev.Answers {
				return fmt.Errorf("eval: answer count shrinks at point %d", i)
			}
			if pt.Correct < prev.Correct {
				return fmt.Errorf("eval: correct count shrinks at point %d", i)
			}
			if pt.Recall+1e-12 < prev.Recall {
				return fmt.Errorf("eval: recall shrinks at point %d", i)
			}
		}
	}
	return nil
}

// Sizes extracts |A(δ)| per point.
func (c Curve) Sizes() []int {
	out := make([]int, len(c))
	for i, pt := range c {
		out[i] = pt.Answers
	}
	return out
}

// Deltas extracts the thresholds.
func (c Curve) Deltas() []float64 {
	out := make([]float64, len(c))
	for i, pt := range c {
		out[i] = pt.Delta
	}
	return out
}

// ImpliedH returns the |H| implied by the curve's counts
// (Correct/Recall), or 0 when the curve never reaches positive recall.
func (c Curve) ImpliedH() int {
	for i := len(c) - 1; i >= 0; i-- {
		if c[i].Recall > 0 {
			return int(math.Round(float64(c[i].Correct) / c[i].Recall))
		}
	}
	return 0
}

// Interpolated is the standard 11-point interpolated P/R curve:
// precision at recall levels 0, 0.1, …, 1.0, computed by the
// max-to-the-right rule (the "intended way" of Section 2.4).
type Interpolated [11]float64

// Interpolate builds the 11-point curve from a measured curve:
// P(r) = max{ precision of any measured point with recall ≥ r }.
// Levels beyond the maximum measured recall get precision 0.
func Interpolate(c Curve) Interpolated {
	var out Interpolated
	for level := 0; level <= 10; level++ {
		r := float64(level) / 10
		best := 0.0
		for _, pt := range c {
			if pt.Recall >= r-1e-12 && pt.Precision > best {
				best = pt.Precision
			}
		}
		out[level] = best
	}
	return out
}

// At returns the interpolated precision at recall level l (0..10).
func (ip Interpolated) At(l int) float64 { return ip[l] }

// Pool implements TREC-style pooling (Harman, SIGIR 1993; discussed in
// the paper's Section 1): the union of the top-N answers of each
// participating system. Human assessors would judge only the pool; the
// returned key set is the pool's membership.
func Pool(sets []*matching.AnswerSet, topN int) map[string]bool {
	pool := make(map[string]bool)
	for _, s := range sets {
		if s == nil {
			continue
		}
		for _, a := range s.TopN(topN) {
			pool[a.Mapping.Key()] = true
		}
	}
	return pool
}

// PooledTruth intersects a full truth with a pool, modeling the
// incomplete relevance judgments that pooling produces: a correct
// mapping outside the pool is never judged and silently counts as
// incorrect.
func PooledTruth(full *Truth, pool map[string]bool) *Truth {
	keys := make(map[string]bool)
	for k := range full.keys {
		if pool[k] {
			keys[k] = true
		}
	}
	return &Truth{keys: keys}
}
