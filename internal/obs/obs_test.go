package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanTreeShape: children parent correctly, retroactive spans keep
// their explicit times, and the export is structurally valid.
func TestSpanTreeShape(t *testing.T) {
	start := time.Now()
	tr := NewTrace("t1", "root", start)
	root := tr.Root()
	if !root.Active() {
		t.Fatal("root handle inactive")
	}

	a := root.StartChild("stage_a")
	a.SetStr("tenant", "acme")
	a.SetInt("answers", 7)
	a.SetFloat("delta", 0.4)
	a.SetBool("cache_hit", true)
	b := a.StartChild("stage_a_inner")
	b.End()
	a.End()
	root.Record("queue_wait", start, start.Add(3*time.Millisecond))

	tr.Finish(start.Add(10 * time.Millisecond))
	td := tr.Export(time.Now())
	if err := td.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	if got := byName["stage_a"].Parent; got != 0 {
		t.Errorf("stage_a parent = %d, want 0", got)
	}
	if got, want := td.Spans[byName["stage_a_inner"].Parent].Name, "stage_a"; got != want {
		t.Errorf("stage_a_inner parent = %q, want %q", got, want)
	}
	if got := byName["queue_wait"].DurationNs; got != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("retroactive span duration = %d, want 3ms", got)
	}
	if td.WallNs != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("trace wall = %d, want 10ms", td.WallNs)
	}
	attrs := map[string]any{}
	for _, a := range byName["stage_a"].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["tenant"] != "acme" || attrs["answers"] != int64(7) || attrs["cache_hit"] != true {
		t.Errorf("attrs mismatch: %v", attrs)
	}
}

// TestContextPropagation: StartSpan threads the child through the
// context; without a trace the context is returned unchanged.
func TestContextPropagation(t *testing.T) {
	base := context.Background()
	ctx2, sp := StartSpan(base, "noop")
	if sp.Active() {
		t.Error("span active without a trace on the context")
	}
	if ctx2 != base {
		t.Error("StartSpan without a trace must return the context unchanged")
	}

	tr := NewTrace("t", "root", time.Now())
	ctx := ContextWith(base, tr.Root())
	ctx3, child := StartSpan(ctx, "stage")
	if !child.Active() {
		t.Fatal("child inactive with a trace on the context")
	}
	if got := FromContext(ctx3); got != child {
		t.Error("context does not carry the child span")
	}
	child.End()
}

// TestDisabledSpanZeroAlloc: the whole disabled-tracer fast path —
// context lookup, child start, attributes, end — must not allocate.
func TestDisabledSpanZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartSpan(ctx, "stage")
		sp.SetStr("tenant", "acme")
		sp.SetInt("answers", 1)
		sp.SetFloat("delta", 0.4)
		sp.SetBool("hit", true)
		sp.Record("queue_wait", time.Time{}, time.Time{})
		sp.End()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f times per op, want 0", allocs)
	}
	var tr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		tr.Capture(nil, time.Time{}, false)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer capture allocates %.1f times per op, want 0", allocs)
	}
}

// TestTracerSampling: rate 1 traces everything, rate 0 nothing, 1/N
// deterministically every Nth, and forced requests always record.
func TestTracerSampling(t *testing.T) {
	always := New(Config{SampleRate: 1})
	for i := 0; i < 5; i++ {
		if always.Begin("", "r", time.Now(), false) == nil {
			t.Fatal("rate 1 must sample every request")
		}
	}
	never := New(Config{SampleRate: 0})
	if never.Begin("", "r", time.Now(), false) != nil {
		t.Fatal("rate 0 must sample nothing")
	}
	if never.Begin("forced-id", "r", time.Now(), true) == nil {
		t.Fatal("forced request must record at rate 0")
	}
	quarter := New(Config{SampleRate: 0.25})
	n := 0
	for i := 0; i < 400; i++ {
		if quarter.Begin("", "r", time.Now(), false) != nil {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("rate 0.25 sampled %d of 400, want exactly 100 (deterministic 1-in-4)", n)
	}
}

// TestTracerIDs: minted ids are unique; an inbound id is preserved.
func TestTracerIDs(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tc := tr.Begin("", "r", time.Now(), false)
		if seen[tc.ID()] {
			t.Fatalf("duplicate trace id %s", tc.ID())
		}
		seen[tc.ID()] = true
	}
	if got := tr.Begin("inbound-7", "r", time.Now(), true).ID(); got != "inbound-7" {
		t.Fatalf("inbound id not preserved: %s", got)
	}
}

// TestCaptureRings: every capture lands in recent; slow and errored
// traces additionally land in the slow ring; rings bound and order
// newest-first.
func TestCaptureRings(t *testing.T) {
	tr := New(Config{SampleRate: 1, Slow: 50 * time.Millisecond, RecentRing: 4, SlowRing: 4})
	start := time.Now()
	mk := func(id string, wall time.Duration, errored bool) {
		tc := tr.Begin(id, "req", start, false)
		tr.Capture(tc, start.Add(wall), errored)
	}
	mk("fast-1", time.Millisecond, false)
	mk("slow-1", 60*time.Millisecond, false)
	mk("err-1", time.Millisecond, true)
	for i := 0; i < 6; i++ {
		mk(fmt.Sprintf("fast-%d", i+2), time.Millisecond, false)
	}

	snap := tr.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent ring holds %d, want 4", len(snap.Recent))
	}
	if snap.Recent[0].ID != "fast-7" {
		t.Errorf("recent[0] = %s, want newest fast-7", snap.Recent[0].ID)
	}
	slowIDs := map[string]bool{}
	for _, td := range snap.Slow {
		slowIDs[td.ID] = true
		if err := td.Validate(); err != nil {
			t.Error(err)
		}
	}
	if !slowIDs["slow-1"] || !slowIDs["err-1"] {
		t.Errorf("slow ring %v must tail-capture slow-1 and err-1", slowIDs)
	}
	if slowIDs["fast-1"] {
		t.Error("fast trace leaked into the slow ring")
	}
	if snap.Sampled != 9 || snap.Captured != 9 {
		t.Errorf("counters sampled=%d captured=%d, want 9/9", snap.Sampled, snap.Captured)
	}
	if !snap.Slow[0].Err && snap.Slow[0].ID == "err-1" {
		t.Error("errored capture lost its Err mark")
	}
}

// TestConcurrentSpans: concurrent children and captures race-free (run
// under -race by the suite).
func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	tc := tr.Begin("", "root", time.Now(), false)
	root := tc.Root()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.StartChild("shard")
				sp.SetInt("g", int64(g))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	tr.Capture(tc, time.Now(), false)
	snap := tr.Snapshot()
	td := snap.Recent[0]
	if err := td.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(td.Spans) != 1+8*50 {
		t.Fatalf("got %d spans, want %d", len(td.Spans), 1+8*50)
	}
}

// TestValidate rejects malformed trees.
func TestValidate(t *testing.T) {
	bad := &TraceData{ID: "x", Spans: []SpanData{{Name: "root", Parent: -1}, {Name: "c", Parent: 5}}}
	if bad.Validate() == nil {
		t.Error("forward parent reference must fail validation")
	}
	empty := &TraceData{ID: "x"}
	if empty.Validate() == nil {
		t.Error("empty trace must fail validation")
	}
	neg := &TraceData{ID: "x", Spans: []SpanData{{Name: "root", Parent: -1, DurationNs: -5}}}
	if neg.Validate() == nil {
		t.Error("negative duration must fail validation")
	}
}
