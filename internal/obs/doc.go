// Package obs is the serving stack's dependency-free observability
// kernel: stage-granular span tracing propagated through
// context.Context, bounded ring buffers with tail-based capture of slow
// and errored traces, and lock-free latency histograms for the
// Prometheus exposition.
//
// # Spans
//
// A Trace is one request's flat span tree: spans are appended under a
// single mutex and refer to their parent by index, so recording a span
// costs one short critical section and (amortized) one slice slot —
// tracing sits at stage granularity (queue wait, session build, cost
// tables, search, per-shard scatter, merge), never on the scored-pair
// hot path. Span is a value-type handle; the zero Span no-ops every
// method, so code instruments unconditionally:
//
//	ctx, sp := obs.StartSpan(ctx, "cost_tables")
//	defer sp.End()
//	sp.SetInt("pairs_pruned", pruned)
//
// When no trace rides the context, StartSpan returns the context
// unchanged and the zero Span: the disabled path performs no
// allocations (guarded by TestDisabledSpanZeroAlloc). Attribute setters
// are typed (SetStr/SetInt/SetFloat/SetBool) so values are never boxed
// through interface{} on the way in.
//
// Spans can also be recorded retroactively (Record, with explicit start
// and end times) for stages measured before the trace existed — the
// HTTP edge uses this when a request opts into tracing via its body,
// which is only decoded after the edge timestamp was taken.
//
// # Tracer
//
// A Tracer decides which requests get a Trace (deterministic 1-in-N
// head sampling from SampleRate, forced for requests that ask) and
// captures finished traces into two bounded rings: every captured trace
// enters the recent ring, and traces that were slow (≥ Slow) or errored
// also enter the slow ring — tail-based capture, so the interesting
// traces survive long after the recent ring has wrapped. Snapshot
// exports both rings newest-first for the /debug/traces endpoint.
//
// # Histograms
//
// Histogram is a fixed-bucket latency histogram: atomic per-bucket
// counters, an atomic nanosecond sum, no locks on Observe. Snapshot
// returns cumulative bucket counts in Prometheus le-order (the +Inf
// bucket equals the total count). DefaultLatencyBuckets spans 100µs to
// 10s, wide enough for both stage and end-to-end request durations.
package obs
