package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed span attribute. Exactly one of the value fields is
// meaningful, selected by kind; the typed setters on Span fill it
// without boxing the value through an interface.
type Attr struct {
	Key  string
	kind uint8
	str  string
	num  int64
	flt  float64
}

const (
	attrStr = iota
	attrInt
	attrFloat
	attrBool
)

// Value returns the attribute's value as an interface — the export
// path; the hot path never calls it.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.num
	case attrFloat:
		return a.flt
	case attrBool:
		return a.num != 0
	default:
		return a.str
	}
}

// spanRec is one recorded span. Parent is the index of the parent span
// in the trace's flat slice (-1 for the root); parents are always
// appended before their children, so parent < own index everywhere.
type spanRec struct {
	name   string
	parent int32
	start  time.Time
	end    time.Time // zero while the span is open
	attrs  []Attr
}

// Trace is one request's span record: a flat, append-only span slice
// guarded by a mutex. Spans are recorded at stage granularity, so the
// critical sections are short and rare relative to the work they
// bracket. A Trace is created by Tracer.Begin (or NewTrace in tests)
// and handed to Tracer.Capture exactly once when the request finishes.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []spanRec
}

// NewTrace creates a trace whose root span is named name and starts at
// start. The root span is span index 0; Finish (or Tracer.Capture)
// closes it.
func NewTrace(id, name string, start time.Time) *Trace {
	t := &Trace{id: id, start: start}
	t.spans = append(t.spans, spanRec{name: name, parent: -1, start: start})
	return t
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Start returns the trace's start time (the root span's start).
func (t *Trace) Start() time.Time { return t.start }

// Root returns the handle of the root span.
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, ix: 0}
}

// Finish closes the root span at end (no-op if already closed).
func (t *Trace) Finish(end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.spans[0].end.IsZero() {
		t.spans[0].end = end
	}
	t.mu.Unlock()
}

// newSpan appends a child span under parent and returns its index.
func (t *Trace) newSpan(name string, parent int32, start, end time.Time) int32 {
	t.mu.Lock()
	ix := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{name: name, parent: parent, start: start, end: end})
	t.mu.Unlock()
	return ix
}

// Span is a value-type handle onto one span of a trace. The zero Span
// is a valid no-op: every method returns immediately, so callers
// instrument unconditionally and pay nothing when tracing is off.
type Span struct {
	t  *Trace
	ix int32
}

// Active reports whether the handle refers to a recorded span.
func (s Span) Active() bool { return s.t != nil }

// Trace returns the span's trace (nil for the zero Span).
func (s Span) Trace() *Trace { return s.t }

// StartChild opens a child span named name starting now.
func (s Span) StartChild(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, ix: s.t.newSpan(name, s.ix, time.Now(), time.Time{})}
}

// Record appends an already-finished child span with explicit start and
// end times — the retroactive form, for stages measured before the
// trace existed or timed outside the span API.
func (s Span) Record(name string, start, end time.Time) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, ix: s.t.newSpan(name, s.ix, start, end)}
}

// End closes the span now (no-op if already closed).
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.t.spans[s.ix].end.IsZero() {
		s.t.spans[s.ix].end = time.Now()
	}
	s.t.mu.Unlock()
}

// setAttr appends one attribute under the trace lock.
func (s Span) setAttr(a Attr) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.ix].attrs = append(s.t.spans[s.ix].attrs, a)
	s.t.mu.Unlock()
}

// SetStr attaches a string attribute.
func (s Span) SetStr(key, v string) { s.setAttr(Attr{Key: key, kind: attrStr, str: v}) }

// SetInt attaches an integer attribute.
func (s Span) SetInt(key string, v int64) { s.setAttr(Attr{Key: key, kind: attrInt, num: v}) }

// SetFloat attaches a float attribute.
func (s Span) SetFloat(key string, v float64) { s.setAttr(Attr{Key: key, kind: attrFloat, flt: v}) }

// SetBool attaches a boolean attribute.
func (s Span) SetBool(key string, v bool) {
	n := int64(0)
	if v {
		n = 1
	}
	s.setAttr(Attr{Key: key, kind: attrBool, num: n})
}

// ctxKey is the private context key type of the span value.
type ctxKey struct{}

// ContextWith returns a context carrying sp. A zero span returns ctx
// unchanged, so the disabled path never allocates a context node.
func ContextWith(ctx context.Context, sp Span) context.Context {
	if sp.t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span riding ctx, or the zero Span.
func FromContext(ctx context.Context) Span {
	sp, _ := ctx.Value(ctxKey{}).(Span)
	return sp
}

// StartSpan opens a child of the context's span and returns a context
// carrying the child. With no span on ctx it returns ctx unchanged and
// the zero Span — no allocations.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	parent := FromContext(ctx)
	if parent.t == nil {
		return ctx, Span{}
	}
	child := parent.StartChild(name)
	return ContextWith(ctx, child), child
}

// AttrData is the export form of one attribute.
type AttrData struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is the export form of one span: times are offsets from the
// trace start, so exported traces are self-contained and compact.
type SpanData struct {
	Name string `json:"name"`
	// Parent is the index of the parent span in the trace's Spans slice
	// (-1 for the root). Parents always precede their children.
	Parent int `json:"parent"`
	// StartNs is the span's start offset from the trace start.
	StartNs int64 `json:"start_ns"`
	// DurationNs is the span's duration. Spans still open at export
	// time are closed at the export instant.
	DurationNs int64      `json:"duration_ns"`
	Attrs      []AttrData `json:"attrs,omitempty"`
}

// TraceData is the export form of one trace — the shape served by
// /debug/traces and inlined into wire responses that asked for a trace.
type TraceData struct {
	ID    string `json:"id"`
	Start string `json:"start"` // RFC3339Nano
	// WallNs is the root span's duration.
	WallNs int64 `json:"wall_ns"`
	// Err marks traces captured for an errored request.
	Err   bool       `json:"err,omitempty"`
	Spans []SpanData `json:"spans"`
}

// Duration returns sp's duration as a time.Duration.
func (sp SpanData) Duration() time.Duration { return time.Duration(sp.DurationNs) }

// Export renders the trace at instant now: spans still open are closed
// at now for the export only (the live trace is not modified), so a
// mid-request export — the inline wire trace — still reports coherent
// durations.
func (t *Trace) Export(now time.Time) *TraceData {
	t.mu.Lock()
	spans := make([]SpanData, len(t.spans))
	for i, r := range t.spans {
		end := r.end
		if end.IsZero() {
			end = now
		}
		sd := SpanData{
			Name:       r.name,
			Parent:     int(r.parent),
			StartNs:    r.start.Sub(t.start).Nanoseconds(),
			DurationNs: end.Sub(r.start).Nanoseconds(),
		}
		if len(r.attrs) > 0 {
			sd.Attrs = make([]AttrData, len(r.attrs))
			for j, a := range r.attrs {
				sd.Attrs[j] = AttrData{Key: a.Key, Value: a.Value()}
			}
		}
		spans[i] = sd
	}
	t.mu.Unlock()
	return &TraceData{
		ID:     t.id,
		Start:  t.start.UTC().Format(time.RFC3339Nano),
		WallNs: spans[0].DurationNs,
		Spans:  spans,
	}
}

// Validate checks structural well-formedness of an exported trace:
// exactly one root, every parent index referring to an earlier span,
// and no negative durations. The load driver and the serve smoke test
// gate on it.
func (t *TraceData) Validate() error {
	if len(t.Spans) == 0 {
		return fmt.Errorf("obs: trace %s has no spans", t.ID)
	}
	for i, sp := range t.Spans {
		switch {
		case i == 0 && sp.Parent != -1:
			return fmt.Errorf("obs: trace %s: span 0 %q is not a root", t.ID, sp.Name)
		case i > 0 && (sp.Parent < 0 || sp.Parent >= i):
			return fmt.Errorf("obs: trace %s: span %d %q has invalid parent %d", t.ID, i, sp.Name, sp.Parent)
		case sp.DurationNs < 0:
			return fmt.Errorf("obs: trace %s: span %d %q has negative duration", t.ID, i, sp.Name)
		}
	}
	return nil
}

// ring is a bounded mutex-guarded ring buffer of exported traces. The
// lock is held only to swing one slot pointer; exports are built
// outside it.
type ring struct {
	mu   sync.Mutex
	buf  []*TraceData
	next int
	n    int
}

func newRing(size int) *ring { return &ring{buf: make([]*TraceData, size)} }

func (r *ring) add(t *TraceData) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the held traces newest-first.
func (r *ring) snapshot() []*TraceData {
	r.mu.Lock()
	out := make([]*TraceData, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	r.mu.Unlock()
	return out
}

// Defaults of the tracer rings; see Config.
const (
	DefaultRecentRing = 64
	DefaultSlowRing   = 64
)

// Config parameterizes a Tracer.
type Config struct {
	// SampleRate is the fraction of requests that get a span trace:
	// ≤ 0 disables head sampling (forced traces still record), ≥ 1
	// traces every request, and values in between sample
	// deterministically 1-in-round(1/rate).
	SampleRate float64
	// Slow is the tail-capture threshold: captured traces at least this
	// slow enter the slow ring regardless of how long ago they ran.
	// ≤ 0 disables slow capture.
	Slow time.Duration
	// RecentRing and SlowRing bound the two capture buffers
	// (≤ 0: 64 each).
	RecentRing, SlowRing int
}

// Tracer owns the sampling decision and the capture rings. It is safe
// for concurrent use.
type Tracer struct {
	every int64 // sample 1-in-every (0: never)
	slow  time.Duration

	seq     atomic.Int64 // sampling counter
	idSeq   atomic.Int64 // trace-id counter
	idEpoch int64        // process-start nanos mixed into ids

	recent *ring
	slowR  *ring

	sampled  atomic.Int64
	captured atomic.Int64
}

// New builds a tracer from cfg.
func New(cfg Config) *Tracer {
	every := int64(0)
	switch {
	case cfg.SampleRate >= 1:
		every = 1
	case cfg.SampleRate > 0:
		every = int64(1/cfg.SampleRate + 0.5)
		if every < 1 {
			every = 1
		}
	}
	recent := cfg.RecentRing
	if recent <= 0 {
		recent = DefaultRecentRing
	}
	slowRing := cfg.SlowRing
	if slowRing <= 0 {
		slowRing = DefaultSlowRing
	}
	return &Tracer{
		every:   every,
		slow:    cfg.Slow,
		idEpoch: time.Now().UnixNano(),
		recent:  newRing(recent),
		slowR:   newRing(slowRing),
	}
}

// NewID mints a process-unique trace identifier.
func (tr *Tracer) NewID() string {
	return fmt.Sprintf("%012x%06x", tr.idEpoch&0xffffffffffff, tr.idSeq.Add(1)&0xffffff)
}

// sample makes one head-sampling decision.
func (tr *Tracer) sample() bool {
	if tr.every == 0 {
		return false
	}
	return tr.seq.Add(1)%tr.every == 0
}

// Begin decides whether this request gets a trace and creates it: a
// nil return means the request is unsampled (the zero-cost path).
// forced skips sampling — requests carrying an inbound trace ID or an
// explicit trace flag always record. An empty id mints a fresh one.
// start is the edge timestamp the root span (named name) begins at.
func (tr *Tracer) Begin(id, name string, start time.Time, forced bool) *Trace {
	if tr == nil {
		return nil
	}
	if !forced && !tr.sample() {
		return nil
	}
	if id == "" {
		id = tr.NewID()
	}
	tr.sampled.Add(1)
	return NewTrace(id, name, start)
}

// Capture finalizes t (closing its root at end), exports it, and files
// it in the rings: always the recent ring, and additionally the slow
// ring when the trace errored or its wall is at least the slow
// threshold. Nil traces are ignored, so the unsampled path needs no
// branch at the caller.
func (tr *Tracer) Capture(t *Trace, end time.Time, errored bool) {
	if tr == nil || t == nil {
		return
	}
	t.Finish(end)
	td := t.Export(end)
	td.Err = errored
	tr.captured.Add(1)
	tr.recent.add(td)
	if errored || (tr.slow > 0 && time.Duration(td.WallNs) >= tr.slow) {
		tr.slowR.add(td)
	}
}

// Snapshot is the export of a tracer's rings, newest-first.
type Snapshot struct {
	// Sampled counts traces begun; Captured those filed in the rings.
	Sampled  int64 `json:"sampled"`
	Captured int64 `json:"captured"`
	// Recent holds the last captures; Slow the tail-captured slow and
	// errored traces.
	Recent []*TraceData `json:"recent"`
	Slow   []*TraceData `json:"slow"`
}

// Snapshot exports both rings newest-first.
func (tr *Tracer) Snapshot() Snapshot {
	return Snapshot{
		Sampled:  tr.sampled.Load(),
		Captured: tr.captured.Load(),
		Recent:   tr.recent.snapshot(),
		Slow:     tr.slowR.snapshot(),
	}
}
