package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets is the upper-bound grid (seconds) shared by the
// request and stage duration histograms: 100µs to 10s in a 1-2.5-5
// progression, wide enough for sub-millisecond stage work and
// multi-second overloaded tails alike.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bucket duration histogram: per-bucket atomic
// counters and an atomic nanosecond sum, so Observe takes no locks and
// the hot path never allocates. Buckets are cumulative only at
// Snapshot time.
type Histogram struct {
	bounds []float64 // ascending upper bounds, seconds
	counts []atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (seconds). Nil or empty bounds select DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1) // +1: the +Inf bucket
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// HistogramBucket is one cumulative bucket of a snapshot.
type HistogramBucket struct {
	// UpperBound is the bucket's le value in seconds.
	UpperBound float64
	// CumulativeCount counts observations ≤ UpperBound.
	CumulativeCount uint64
}

// HistogramSnapshot is a point-in-time view of a histogram in
// Prometheus shape: cumulative buckets (excluding +Inf, whose count is
// Count), the total count, and the sum in seconds.
type HistogramSnapshot struct {
	Buckets []HistogramBucket
	Count   uint64
	Sum     float64
}

// Snapshot returns the cumulative bucket counts. Under concurrent
// Observe traffic the buckets, count, and sum are each individually
// consistent; tiny transient skews between them are inherent to the
// lock-free design and resolve by the next scrape.
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Buckets: make([]HistogramBucket, len(h.bounds))}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out.Buckets[i] = HistogramBucket{UpperBound: b, CumulativeCount: cum}
	}
	out.Count = cum + h.counts[len(h.bounds)].Load()
	out.Sum = float64(h.sumNs.Load()) / 1e9
	return out
}
