package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketPlacement: observations land in the correct le
// bucket, including exactly-on-boundary values (le is inclusive).
func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // ≤ 0.001
	h.Observe(1 * time.Millisecond)   // boundary: still ≤ 0.001
	h.Observe(5 * time.Millisecond)   // ≤ 0.01
	h.Observe(50 * time.Millisecond)  // ≤ 0.1
	h.Observe(2 * time.Second)        // +Inf only

	s := h.Snapshot()
	want := []uint64{2, 3, 4}
	for i, b := range s.Buckets {
		if b.CumulativeCount != want[i] {
			t.Errorf("bucket le=%g cumulative = %d, want %d", b.UpperBound, b.CumulativeCount, want[i])
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 2
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

// TestHistogramCumulativeMonotone: cumulative counts never decrease
// across buckets and the +Inf total dominates the last bound.
func TestHistogramCumulativeMonotone(t *testing.T) {
	h := NewHistogram(nil) // default grid
	for _, d := range []time.Duration{
		50 * time.Microsecond, 300 * time.Microsecond, 2 * time.Millisecond,
		40 * time.Millisecond, 700 * time.Millisecond, 30 * time.Second,
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if len(s.Buckets) != len(DefaultLatencyBuckets()) {
		t.Fatalf("bucket count %d != default grid %d", len(s.Buckets), len(DefaultLatencyBuckets()))
	}
	var prev uint64
	for _, b := range s.Buckets {
		if b.CumulativeCount < prev {
			t.Fatalf("cumulative count decreased at le=%g", b.UpperBound)
		}
		prev = b.CumulativeCount
	}
	if s.Count < prev {
		t.Fatalf("total count %d below last bucket %d", s.Count, prev)
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
}

// TestHistogramConcurrent: lock-free observes from many goroutines add
// up (run under -race by the suite).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%200) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
}

// TestHistogramObserveZeroAlloc: the hot path must not allocate.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(nil)
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Millisecond) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per op, want 0", allocs)
	}
}
