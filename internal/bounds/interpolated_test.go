package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/eval"
)

// TestFigure13Endpoints reproduces Section 4.2's example exactly:
// |H| = 100, (R,P) = (30/100, 30/50) at δ1 and (36/100, 36/70) at δ2,
// the rebuilt system produces 50 and 70 answers, and 54 at δ′. The
// worst-case point is (30/100, 30/54), the best (34/100, 34/54).
func TestFigure13Endpoints(t *testing.T) {
	in := SubIncrementInput{H: 100, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 54}
	worst, best, err := SubIncrementBounds(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(worst.Recall, 0.30) || !almost(worst.Precision, 30.0/54) {
		t.Errorf("worst = (R=%v, P=%v), want (0.30, 30/54)", worst.Recall, worst.Precision)
	}
	if !almost(best.Recall, 0.34) || !almost(best.Precision, 34.0/54) {
		t.Errorf("best = (R=%v, P=%v), want (0.34, 34/54)", best.Recall, best.Precision)
	}
	if worst.Correct != 30 || best.Correct != 34 {
		t.Errorf("correct counts = %d, %d, want 30, 34", worst.Correct, best.Correct)
	}
}

// TestFigure13EndpointsAtMeasuredThresholds: at δ′ = δ1 and δ′ = δ2
// the segment degenerates to the measured point.
func TestFigure13EndpointsAtMeasuredThresholds(t *testing.T) {
	base := SubIncrementInput{H: 100, T1: 30, A1: 50, T2: 36, A2: 70}

	at1 := base
	at1.APrime = 50
	worst, best, err := SubIncrementBounds(at1)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Correct != 30 || best.Correct != 30 {
		t.Errorf("δ′=δ1: correct = %d..%d, want exactly 30", worst.Correct, best.Correct)
	}

	at2 := base
	at2.APrime = 70
	worst, best, err = SubIncrementBounds(at2)
	if err != nil {
		t.Fatal(err)
	}
	// All 20 new answers present: 6 correct forced in the worst case
	// (only 14 incorrect slots in the increment) and capped at 6 in the
	// best case.
	if worst.Correct != 36 || best.Correct != 36 {
		t.Errorf("δ′=δ2: correct = %d..%d, want exactly 36", worst.Correct, best.Correct)
	}
}

// TestFigure13PigeonholeWorstCase: when the new answers outnumber the
// increment's incorrect answers, some must be correct even in the
// worst case.
func TestFigure13PigeonholeWorstCase(t *testing.T) {
	// Increment has 6 correct + 2 incorrect; at δ′ 5 new answers have
	// appeared, so at least 3 are correct.
	in := SubIncrementInput{H: 50, T1: 10, A1: 20, T2: 16, A2: 28, APrime: 25}
	worst, best, err := SubIncrementBounds(in)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Correct != 13 {
		t.Errorf("worst correct = %d, want 13 (pigeonhole)", worst.Correct)
	}
	if best.Correct != 15 {
		t.Errorf("best correct = %d, want 15", best.Correct)
	}
	_ = best
}

func TestSubIncrementValidation(t *testing.T) {
	good := SubIncrementInput{H: 100, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 54}
	bad := []SubIncrementInput{
		{H: 0, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 54},
		{H: 100, T1: 40, A1: 50, T2: 36, A2: 70, APrime: 54}, // T2 < T1
		{H: 100, T1: 30, A1: 25, T2: 36, A2: 70, APrime: 54}, // A1 < T1
		{H: 100, T1: 30, A1: 50, T2: 80, A2: 70, APrime: 54}, // A2 < T2
		{H: 100, T1: 30, A1: 50, T2: 36, A2: 40, APrime: 54}, // A2 < A1
		{H: 30, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 54},  // T2 > H
		{H: 100, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 49}, // δ′ below δ1
		{H: 100, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 71}, // δ′ above δ2
	}
	if _, _, err := SubIncrementBounds(good); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	for i, in := range bad {
		if _, _, err := SubIncrementBounds(in); err == nil {
			t.Errorf("bad input %d accepted: %+v", i, in)
		}
	}
}

// TestSubIncrementWorstLeqBestProperty: for every consistent input the
// worst point never exceeds the best point, and both stay feasible.
func TestSubIncrementWorstLeqBestProperty(t *testing.T) {
	f := func(seed int64) bool {
		state := uint64(seed)*2862933555777941757 + 3037000493
		next := func(mod int) int {
			state = state*2862933555777941757 + 3037000493
			return int(state>>33) % mod
		}
		t1 := next(30)
		a1 := t1 + next(30)
		dt := next(20)
		di := next(20)
		in := SubIncrementInput{
			H:      t1 + dt + next(50) + 1,
			T1:     t1,
			A1:     a1,
			T2:     t1 + dt,
			A2:     a1 + dt + di,
			APrime: a1 + next(dt+di+1),
		}
		worst, best, err := SubIncrementBounds(in)
		if err != nil {
			return false
		}
		if worst.Correct > best.Correct {
			return false
		}
		if worst.Correct < in.T1 || best.Correct > in.T2 {
			return false
		}
		return worst.Precision <= best.Precision+1e-12 && worst.Recall <= best.Recall+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSubIncrementMidpoint(t *testing.T) {
	in := SubIncrementInput{H: 100, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 54}
	mid, err := SubIncrementMidpoint(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mid.Recall, 0.32) || !almost(mid.Precision, 32.0/54) {
		t.Errorf("midpoint = (R=%v, P=%v), want (0.32, 32/54)", mid.Recall, mid.Precision)
	}
	if _, err := SubIncrementMidpoint(SubIncrementInput{}); err == nil {
		t.Error("invalid input should propagate")
	}
}

func TestFromInterpolatedReconstruction(t *testing.T) {
	// An interpolated curve with precision 0.8 up to recall 0.3, then
	// 0.5 to recall 0.6, zero beyond.
	var ip eval.Interpolated
	for l := 0; l <= 3; l++ {
		ip[l] = 0.8
	}
	for l := 4; l <= 6; l++ {
		ip[l] = 0.5
	}
	curve, err := FromInterpolated(ip, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 7 {
		t.Fatalf("curve has %d points, want 7 (levels 0–6)", len(curve))
	}
	// Level 3: correct = 300, answers = 300/0.8 = 375.
	if curve[3].Correct != 300 || curve[3].Answers != 375 {
		t.Errorf("level 3 = %+v, want 300 correct / 375 answers", curve[3])
	}
	// Level 6: correct = 600, answers = 1200.
	if curve[6].Correct != 600 || curve[6].Answers != 1200 {
		t.Errorf("level 6 = %+v", curve[6])
	}
	if err := eval.CheckCurve(curve); err != nil {
		t.Errorf("reconstructed curve invalid: %v", err)
	}
}

func TestFromInterpolatedRoundTrip(t *testing.T) {
	// Reconstructing with the TRUE |H| from an interpolated curve of a
	// measured curve whose points sit exactly on recall levels must
	// reproduce the original answer counts.
	h := 200
	orig := eval.Curve{
		{Delta: 0.1, Precision: 1.0, Recall: 0.1, Answers: 20, Correct: 20},
		{Delta: 0.2, Precision: 0.5, Recall: 0.2, Answers: 80, Correct: 40},
		{Delta: 0.3, Precision: 0.25, Recall: 0.3, Answers: 240, Correct: 60},
	}
	ip := eval.Interpolate(orig)
	back, err := FromInterpolated(ip, h)
	if err != nil {
		t.Fatal(err)
	}
	// back has levels 0..3; compare the three positive levels.
	for i, want := range orig {
		got := back[i+1]
		if got.Answers != want.Answers || got.Correct != want.Correct {
			t.Errorf("level %d: got %d/%d, want %d/%d", i+1, got.Correct, got.Answers, want.Correct, want.Answers)
		}
	}
}

func TestFromInterpolatedHSensitivity(t *testing.T) {
	var ip eval.Interpolated
	for l := 0; l <= 5; l++ {
		ip[l] = 0.6
	}
	small, err := FromInterpolated(ip, 100)
	if err != nil {
		t.Fatal(err)
	}
	large, err := FromInterpolated(ip, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Same P/R shape, proportionally scaled counts.
	for i := range small {
		if !almost(small[i].Recall, large[i].Recall) {
			t.Errorf("recall differs at %d: %v vs %v", i, small[i].Recall, large[i].Recall)
		}
		ratio := float64(large[i].Answers) / math.Max(1, float64(small[i].Answers))
		if small[i].Answers > 0 && math.Abs(ratio-100) > 5 {
			t.Errorf("answer scaling at %d = %v, want ~100", i, ratio)
		}
	}
}

func TestFromInterpolatedErrors(t *testing.T) {
	var ip eval.Interpolated
	if _, err := FromInterpolated(ip, 0); err == nil {
		t.Error("non-positive |H| should error")
	}
}

// TestInterpolatedPipelineEndToEnd mirrors Figure 12: bounds computed
// from an interpolated curve + |H| guess must still be valid bounds
// (contain the random baseline, keep worst ≤ best).
func TestInterpolatedPipelineEndToEnd(t *testing.T) {
	var ip eval.Interpolated
	vals := []float64{0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5, 0.35, 0.2, 0.1, 0.05}
	copy(ip[:], vals)
	curve, err := FromInterpolated(ip, 15000)
	if err != nil {
		t.Fatal(err)
	}
	sizes2, err := FixedRatioSizes(curve.Sizes(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Incremental(Input{S1: curve, Sizes2: sizes2, HOverride: 15000})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range b {
		if pt.WorstP > pt.BestP+1e-9 || pt.WorstR > pt.BestR+1e-9 {
			t.Errorf("point %d: worst exceeds best: %+v", i, pt)
		}
		if pt.RandomP+1e-9 < pt.WorstP || pt.RandomP > pt.BestP+1e-9 {
			t.Errorf("point %d: random precision outside bounds: %+v", i, pt)
		}
	}
}
