// Package bounds implements the paper's contribution: guaranteed lower
// and upper bounds on the precision and recall of a non-exhaustive
// improvement S2 of an exhaustive schema matching system S1, derived
// solely from
//
//   - the measured P/R curve of S1 (possibly on another collection —
//     the paper assumes effectiveness is independent of collection
//     size), and
//   - the answer-set sizes of S1 and S2 on the collection under study,
//
// with no human relevance judgments. The technique requires that S2
// uses the same objective function as S1, so A_S2(δ) ⊆ A_S1(δ).
//
// Three computations are provided, following Sections 3 and 4:
//
//   - Naive per-threshold bounds (Eqs 1–6), applied independently at
//     each threshold.
//   - Incremental bounds (Section 3.2): the threshold axis is cut into
//     increments, Eqs 1–6 are applied per increment, and bounds are
//     accumulated — never looser, usually strictly tighter.
//   - The random-system baseline (Section 3.4, Eqs 9–10): the expected
//     curve of an "improvement" that keeps a random subset of each
//     increment, a more realistic lower bound for sane systems.
//
// Section 4's tools are also implemented: reconstructing a measured
// curve from a published 11-point interpolated curve plus a guess of
// |H| (§4.1), and sub-increment interpolation boundaries (§4.2).
//
// Internally all curve computations run in count space: the number of
// correct answers t(δ) = P(δ)·|A(δ)| is tracked directly, which is
// numerically robust (no 0/0 increments) and provably equivalent to the
// paper's ratio formulas — the package tests verify the equivalence
// against Eqs 2, 3, 5 and 6 symbolically and on the paper's own
// worked example (Figure 8).
package bounds

import (
	"fmt"
	"math"

	"repro/internal/eval"
)

// BestCase implements Equations (2) and (3): best-case precision and
// recall of S2 at one threshold, from S1's precision p1 and recall r1
// and the answer size ratio  = |A_S2|/|A_S1| at that threshold.
// Inputs must satisfy 0 ≤ p1, r1 ≤ 1 and 0 ≤ ratio ≤ 1; p1 = 0 with a
// positive ratio yields best-case precision min(1, …) capped at
// ratio-scaled feasibility (the equations handle it via the min).
func BestCase(p1, r1, ratio float64) (p2, r2 float64) {
	if ratio == 0 {
		// S2 returns nothing: empty-set precision convention 1, recall 0.
		return 1, 0
	}
	// Eq (2): P2 = P1 · min(1/Â, 1/P1) = min(P1/Â, 1).
	p2 = math.Min(p1/ratio, 1)
	// Eq (3): R2 = R1 · min(1, Â/P1).
	if p1 == 0 {
		r2 = 0 // no correct answers exist in A_S1 to inherit
	} else {
		r2 = r1 * math.Min(1, ratio/p1)
	}
	return p2, r2
}

// WorstCase implements Equations (5) and (6): worst-case precision and
// recall of S2 at one threshold.
func WorstCase(p1, r1, ratio float64) (p2, r2 float64) {
	if ratio == 0 {
		return 1, 0 // empty answer set
	}
	// Eq (5): P2 = max(0, 1 - (1-P1)/Â).
	p2 = math.Max(0, 1-(1-p1)/ratio)
	// Eq (6): R2 = max(0, R1·((Â-1)/P1 + 1)).
	if p1 == 0 {
		r2 = 0
	} else {
		r2 = math.Max(0, r1*((ratio-1)/p1+1))
	}
	return p2, r2
}

// Point carries the computed effectiveness bounds of S2 at one
// threshold, alongside the random-system baseline.
type Point struct {
	// Delta is the threshold.
	Delta float64
	// Ratio is the cumulative answer size ratio Â = |A_S2|/|A_S1|
	// (1 when S1 has no answers yet).
	Ratio float64
	// Best-case precision and recall (upper bounds).
	BestP, BestR float64
	// Worst-case precision and recall (lower bounds).
	WorstP, WorstR float64
	// Random-system baseline (Section 3.4).
	RandomP, RandomR float64
}

// Contains reports whether a (precision, recall) observation lies
// inside this point's [worst, best] intervals, with a small tolerance
// for float rounding.
func (p Point) Contains(precision, recall float64) bool {
	const eps = 1e-9
	return precision+eps >= p.WorstP && precision <= p.BestP+eps &&
		recall+eps >= p.WorstR && recall <= p.BestR+eps
}

// Curve is a bounds curve over ascending thresholds.
type Curve []Point

// Input bundles what the technique consumes: S1's measured curve and
// S2's answer counts at the same thresholds.
type Input struct {
	// S1 is the measured P/R curve of the exhaustive system, with
	// answer counts. Correct counts are derived from Precision·Answers;
	// |H| from the curve (ImpliedH) unless HOverride is set.
	S1 eval.Curve
	// Sizes2[i] is |A_S2| at S1[i].Delta.
	Sizes2 []int
	// HOverride, when positive, fixes |H| instead of deriving it from
	// the S1 curve. Required when the curve never reaches positive
	// recall.
	HOverride int
}

func (in Input) validate() (h float64, t1 []float64, err error) {
	if len(in.S1) == 0 {
		return 0, nil, fmt.Errorf("bounds: empty S1 curve")
	}
	if len(in.Sizes2) != len(in.S1) {
		return 0, nil, fmt.Errorf("bounds: %d S2 sizes for %d S1 points", len(in.Sizes2), len(in.S1))
	}
	if err := eval.CheckCurve(in.S1); err != nil {
		return 0, nil, err
	}
	t1 = make([]float64, len(in.S1))
	for i, pt := range in.S1 {
		t1[i] = pt.Precision * float64(pt.Answers)
		if i > 0 && t1[i]+1e-9 < t1[i-1] {
			return 0, nil, fmt.Errorf("bounds: implied correct count shrinks at point %d", i)
		}
	}
	prev := 0
	for i, a2 := range in.Sizes2 {
		if a2 < 0 {
			return 0, nil, fmt.Errorf("bounds: negative S2 size at point %d", i)
		}
		if a2 > in.S1[i].Answers {
			return 0, nil, fmt.Errorf("bounds: S2 has %d answers at point %d but S1 only %d — subset violated",
				a2, i, in.S1[i].Answers)
		}
		if a2 < prev {
			return 0, nil, fmt.Errorf("bounds: S2 sizes not monotone at point %d", i)
		}
		prev = a2
	}
	if in.HOverride > 0 {
		h = float64(in.HOverride)
	} else if ih := in.S1.ImpliedH(); ih > 0 {
		h = float64(ih)
	} else {
		return 0, nil, fmt.Errorf("bounds: cannot derive |H| from a zero-recall curve; set HOverride")
	}
	return h, t1, nil
}

// Naive computes per-threshold bounds by applying Equations (1)–(6)
// independently at every threshold — the baseline the incremental
// algorithm improves on (Section 3.2's motivating example shows it is
// unnecessarily pessimistic).
func Naive(in Input) (Curve, error) {
	h, t1, err := in.validate()
	if err != nil {
		return nil, err
	}
	out := make(Curve, len(in.S1))
	for i, pt := range in.S1 {
		a1, a2 := float64(pt.Answers), float64(in.Sizes2[i])
		p := Point{Delta: pt.Delta, Ratio: 1}
		if a1 > 0 {
			p.Ratio = a2 / a1
		}
		// Count-space Eqs (1)/(4): best t2 = min(t1, a2);
		// worst t2 = max(0, a2 - (a1 - t1)).
		bestT := math.Min(t1[i], a2)
		worstT := math.Max(0, a2-(a1-t1[i]))
		p.BestP, p.BestR = prFromCounts(bestT, a2, h)
		p.WorstP, p.WorstR = prFromCounts(worstT, a2, h)
		// The naive random baseline keeps S1's precision and scales
		// recall by the cumulative ratio (the whole set treated as one
		// increment).
		randT := 0.0
		if a1 > 0 {
			randT = t1[i] * (a2 / a1)
		}
		p.RandomP, p.RandomR = prFromCounts(randT, a2, h)
		out[i] = p
	}
	return out, nil
}

// Incremental computes the bounds with the four-step incremental
// algorithm of Section 3.2 and the random baseline of Section 3.4:
// Equations (7)–(8) decompose S1's curve into increments, Equations
// (1)–(6) bound each increment, and the increments accumulate.
func Incremental(in Input) (Curve, error) {
	h, t1, err := in.validate()
	if err != nil {
		return nil, err
	}
	out := make(Curve, len(in.S1))
	// Accumulated correct counts of the three hypothetical systems.
	bestT, worstT, randT := 0.0, 0.0, 0.0
	prevA1, prevA2, prevT1 := 0.0, 0.0, 0.0
	for i, pt := range in.S1 {
		a1, a2 := float64(pt.Answers), float64(in.Sizes2[i])
		da1 := a1 - prevA1
		da2 := a2 - prevA2
		dt1 := t1[i] - prevT1
		if dt1 < 0 {
			dt1 = 0 // guard against float noise; validate() checked monotone
		}
		// Step 3: per-increment Eqs (1)/(4) in count space.
		bestT += math.Min(dt1, da2)
		worstT += math.Max(0, da2-(da1-dt1))
		// Section 3.4, Eqs (9)–(10): the random system keeps the
		// increment's precision, scaling correct count by the
		// increment ratio.
		if da1 > 0 {
			randT += dt1 * (da2 / da1)
		}
		p := Point{Delta: pt.Delta, Ratio: 1}
		if a1 > 0 {
			p.Ratio = a2 / a1
		}
		// Step 4: accumulate to per-threshold P/R.
		p.BestP, p.BestR = prFromCounts(bestT, a2, h)
		p.WorstP, p.WorstR = prFromCounts(worstT, a2, h)
		p.RandomP, p.RandomR = prFromCounts(randT, a2, h)
		out[i] = p
		prevA1, prevA2, prevT1 = a1, a2, t1[i]
	}
	return out, nil
}

// prFromCounts converts a correct count t and answer count a into
// (P, R) given |H| = h, with the empty-set precision convention.
func prFromCounts(t, a, h float64) (p, r float64) {
	if a == 0 {
		p = 1
	} else {
		p = clamp01(t / a)
	}
	if h == 0 {
		r = 1
	} else {
		r = clamp01(t / h)
	}
	return p, r
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// IncrementPR implements Equations (7) and (8) directly: the precision
// and recall of the increment δ1–δ2 of a system, from its P/R at the
// two thresholds. Equation (7) is independent of |H|. It returns an
// error when the increment is empty (|A| does not grow), where
// increment precision is undefined.
func IncrementPR(p1, r1, p2, r2 float64) (incP, incR float64, err error) {
	if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 || r1 < 0 || r2 > 1 || r2 < r1 {
		return 0, 0, fmt.Errorf("bounds: invalid P/R pair (%v,%v)→(%v,%v)", p1, r1, p2, r2)
	}
	// Denominator of Eq (7): R2/P2 − R1/P1 = (|A2|−|A1|)/|H|.
	if p2 == 0 || (p1 == 0 && r1 > 0) {
		return 0, 0, fmt.Errorf("bounds: zero precision with answers present")
	}
	var a1 float64 // |A1|/|H|
	if r1 > 0 {
		a1 = r1 / p1
	}
	den := r2/p2 - a1
	if den <= 0 {
		return 0, 0, fmt.Errorf("bounds: empty increment (answer count does not grow)")
	}
	incR = r2 - r1                  // Eq (8)
	incP = clamp01((r2 - r1) / den) // Eq (7)
	return incP, incR, nil
}

// FixedRatioSizes synthesizes S2 answer counts that keep a fixed
// per-increment ratio of S1's counts — the hypothetical system of
// Figure 9 (Â = 0.9 at every increment). Counts are accumulated in
// exact fractional form and floored per threshold, preserving
// monotonicity.
func FixedRatioSizes(s1Sizes []int, ratio float64) ([]int, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("bounds: ratio %v out of [0,1]", ratio)
	}
	out := make([]int, len(s1Sizes))
	acc := 0.0
	prev := 0
	for i, a1 := range s1Sizes {
		if a1 < prev {
			return nil, fmt.Errorf("bounds: S1 sizes not monotone at %d", i)
		}
		acc += ratio * float64(a1-prev)
		out[i] = int(math.Floor(acc + 1e-9))
		prev = a1
	}
	return out, nil
}
