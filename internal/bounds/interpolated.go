package bounds

import (
	"fmt"
	"math"

	"repro/internal/eval"
)

// FromInterpolated reconstructs a measured P/R curve from a published
// 11-point interpolated curve and a guess of |H| (Section 4.1). A
// published interpolated curve lacks the threshold points; with |H|
// guessed, each recall level r with positive precision p implies an
// answer count |A| = r·|H|/p, which re-anchors the curve so the
// bounds machinery can correlate it with answer sets measured on a
// different collection. Recall levels with zero precision (beyond the
// system's maximum recall) are dropped. The recall level index doubles
// as the pseudo-threshold (δ = level/10).
func FromInterpolated(ip eval.Interpolated, hGuess int) (eval.Curve, error) {
	if hGuess <= 0 {
		return nil, fmt.Errorf("bounds: |H| guess must be positive, got %d", hGuess)
	}
	var curve eval.Curve
	prevA, prevT := 0, 0
	for level := 0; level <= 10; level++ {
		p := ip.At(level)
		r := float64(level) / 10
		if level > 0 && p == 0 {
			break // beyond the system's measured recall
		}
		correct := int(math.Round(r * float64(hGuess)))
		answers := correct
		if p > 0 {
			answers = int(math.Round(float64(correct) / p))
		}
		// Monotonicity can break under rounding; clamp upward.
		if answers < prevA {
			answers = prevA
		}
		if correct < prevT {
			correct = prevT
		}
		if answers < correct {
			answers = correct
		}
		prec := 1.0
		if answers > 0 {
			prec = float64(correct) / float64(answers)
		}
		curve = append(curve, eval.PRPoint{
			Delta:     float64(level) / 10,
			Precision: prec,
			Recall:    float64(correct) / float64(hGuess),
			Answers:   answers,
			Correct:   correct,
		})
		prevA, prevT = answers, correct
	}
	if err := eval.CheckCurve(curve); err != nil {
		return nil, fmt.Errorf("bounds: reconstructed curve invalid: %w", err)
	}
	return curve, nil
}

// SubIncrementInput describes Section 4.2's situation: literature
// reports |H| and exact P/R at two thresholds δ1 < δ2; a rebuilt
// system (same objective function) produces A1 and A2 answers at those
// thresholds and APrime answers at some intermediate threshold
// δ1 ≤ δ′ ≤ δ2. T1 and T2 are the correct counts at δ1 and δ2 implied
// by the published figures.
type SubIncrementInput struct {
	H      int
	T1, A1 int
	T2, A2 int
	APrime int
}

// SubIncrementBounds returns the worst-case and best-case (recall,
// precision) points between which the true P/R point at δ′ must lie —
// the endpoints of the thick line of Figure 13. Of the APrime−A1 new
// answers, in the best case min(new, T2−T1) are correct; in the worst
// case only those forced by the pigeonhole on incorrect answers,
// max(0, new − ((A2−T2) − (A1−T1))), are.
func SubIncrementBounds(in SubIncrementInput) (worst, best eval.PRPoint, err error) {
	if in.H <= 0 {
		return worst, best, fmt.Errorf("bounds: non-positive |H|")
	}
	if in.T1 < 0 || in.T2 < in.T1 || in.A1 < in.T1 || in.A2 < in.T2 || in.A2 < in.A1 {
		return worst, best, fmt.Errorf("bounds: inconsistent counts %+v", in)
	}
	if in.T2 > in.H {
		return worst, best, fmt.Errorf("bounds: more correct answers than |H|")
	}
	if in.APrime < in.A1 || in.APrime > in.A2 {
		return worst, best, fmt.Errorf("bounds: δ′ answer count %d outside [%d,%d]", in.APrime, in.A1, in.A2)
	}
	newAnswers := in.APrime - in.A1
	incCorrect := in.T2 - in.T1
	incIncorrect := (in.A2 - in.T2) - (in.A1 - in.T1)
	bestNew := minInt(newAnswers, incCorrect)
	worstNew := maxInt(0, newAnswers-incIncorrect)

	mk := func(extra int) eval.PRPoint {
		t := in.T1 + extra
		p := 1.0
		if in.APrime > 0 {
			p = float64(t) / float64(in.APrime)
		}
		return eval.PRPoint{
			Precision: p,
			Recall:    float64(t) / float64(in.H),
			Answers:   in.APrime,
			Correct:   t,
		}
	}
	return mk(worstNew), mk(bestNew), nil
}

// SubIncrementMidpoint returns the midpoint of the worst–best segment —
// the safest interpolation choice Section 4.2 identifies (smallest
// maximum error). Note it generally differs from linear interpolation
// between the two measured P/R points.
func SubIncrementMidpoint(in SubIncrementInput) (eval.PRPoint, error) {
	worst, best, err := SubIncrementBounds(in)
	if err != nil {
		return eval.PRPoint{}, err
	}
	return eval.PRPoint{
		Precision: (worst.Precision + best.Precision) / 2,
		Recall:    (worst.Recall + best.Recall) / 2,
		Answers:   in.APrime,
		Correct:   (worst.Correct + best.Correct) / 2,
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
