package bounds

import (
	"repro/internal/eval"
)

// F-measure bounds derived from the P/R bounds. F_β(p, r) is monotone
// non-decreasing in both arguments, so if the true point satisfies
// worstP ≤ p ≤ bestP and worstR ≤ r ≤ bestR, then
//
//	F_β(worstP, worstR) ≤ F_β(p, r) ≤ F_β(bestP, bestR).
//
// The interval is valid but not tight in general: the coordinate-wise
// extremes (worstP, worstR) and (bestP, bestR) need not be jointly
// achievable, so the F interval may be wider than the set of reachable
// F values. It is still a guarantee in the paper's sense.

// FPoint carries the F_β bounds at one threshold.
type FPoint struct {
	Delta         float64
	WorstF, BestF float64
	RandomF       float64
	Beta          float64
}

// FBounds converts a bounds curve into F_β bounds per threshold.
func FBounds(c Curve, beta float64) []FPoint {
	out := make([]FPoint, len(c))
	for i, pt := range c {
		out[i] = FPoint{
			Delta:   pt.Delta,
			WorstF:  eval.FMeasure(pt.WorstP, pt.WorstR, beta),
			BestF:   eval.FMeasure(pt.BestP, pt.BestR, beta),
			RandomF: eval.FMeasure(pt.RandomP, pt.RandomR, beta),
			Beta:    beta,
		}
	}
	return out
}

// F1Bounds is FBounds with β = 1.
func F1Bounds(c Curve) []FPoint { return FBounds(c, 1) }
