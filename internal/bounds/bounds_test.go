package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/eval"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// figure8Input encodes the paper's worked example (Figure 8): S1 has
// stable precision 3/8 at both thresholds, producing 40 and 72
// answers; S2 produces 32 and 48. |H| is not given in the paper — the
// precision bounds are independent of it — so any consistent value
// works; we use 100.
func figure8Input() Input {
	return Input{
		S1: eval.Curve{
			{Delta: 0.1, Precision: 3.0 / 8, Recall: 0.15, Answers: 40, Correct: 15},
			{Delta: 0.2, Precision: 3.0 / 8, Recall: 0.27, Answers: 72, Correct: 27},
		},
		Sizes2:    []int{32, 48},
		HOverride: 100,
	}
}

// TestFigure8NaiveWorstCase reproduces the per-threshold worst-case
// precisions the paper derives first: 7/32 at δ1 and 1/16 at δ2.
func TestFigure8NaiveWorstCase(t *testing.T) {
	curve, err := Naive(figure8Input())
	if err != nil {
		t.Fatal(err)
	}
	if !almost(curve[0].WorstP, 7.0/32) {
		t.Errorf("naive worst P(δ1) = %v, want 7/32 = %v", curve[0].WorstP, 7.0/32)
	}
	if !almost(curve[1].WorstP, 1.0/16) {
		t.Errorf("naive worst P(δ2) = %v, want 1/16 = %v", curve[1].WorstP, 1.0/16)
	}
}

// TestFigure8IncrementalWorstCase reproduces the paper's tighter
// incremental bound: P(δ2) = 7/48 instead of 1/16.
func TestFigure8IncrementalWorstCase(t *testing.T) {
	curve, err := Incremental(figure8Input())
	if err != nil {
		t.Fatal(err)
	}
	// First increment equals the naive bound (0−δ1 is computed directly).
	if !almost(curve[0].WorstP, 7.0/32) {
		t.Errorf("incremental worst P(δ1) = %v, want 7/32", curve[0].WorstP)
	}
	if !almost(curve[1].WorstP, 7.0/48) {
		t.Errorf("incremental worst P(δ2) = %v, want 7/48 = %v", curve[1].WorstP, 7.0/48)
	}
}

// TestFigure8IncrementArithmetic walks the example's interior numbers:
// the second increment has 32 S1 answers of which 12 correct, S2 takes
// 16; worst case none correct.
func TestFigure8IncrementArithmetic(t *testing.T) {
	// Eq (7) on the example: P̂(δ1–δ2) = 3/8 (stable precision).
	incP, incR, err := IncrementPR(3.0/8, 0.15, 3.0/8, 0.27)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(incP, 3.0/8) {
		t.Errorf("increment precision = %v, want 3/8", incP)
	}
	if !almost(incR, 0.12) {
		t.Errorf("increment recall = %v, want 0.12", incR)
	}
	// Worst case of the increment via Eq (5) with Â = 16/32 = 1/2:
	// max(0, 1 - (1-3/8)/(1/2)) = max(0, -1/4) = 0.
	p2, _ := WorstCase(3.0/8, 0.12, 0.5)
	if p2 != 0 {
		t.Errorf("increment worst precision = %v, want 0", p2)
	}
}

// TestBestWorstEquationsKnownValues exercises Eqs (2),(3),(5),(6) on
// hand-computed values.
func TestBestWorstEquationsKnownValues(t *testing.T) {
	// P1=0.5, R1=0.4, Â=0.8:
	// best:  P2 = min(0.5/0.8, 1) = 0.625; R2 = 0.4·min(1, 0.8/0.5) = 0.4.
	// worst: P2 = max(0, 1-0.5/0.8) = 0.375; R2 = 0.4·((0.8-1)/0.5+1) = 0.24.
	bp, br := BestCase(0.5, 0.4, 0.8)
	if !almost(bp, 0.625) || !almost(br, 0.4) {
		t.Errorf("best = (%v,%v), want (0.625,0.4)", bp, br)
	}
	wp, wr := WorstCase(0.5, 0.4, 0.8)
	if !almost(wp, 0.375) || !almost(wr, 0.24) {
		t.Errorf("worst = (%v,%v), want (0.375,0.24)", wp, wr)
	}
	// Small Â detaches the worst case entirely (Figure 7(c)).
	wp, wr = WorstCase(0.5, 0.4, 0.3)
	if wp != 0 || wr != 0 {
		t.Errorf("detached worst = (%v,%v), want (0,0)", wp, wr)
	}
	// Small Â pins the best case to all-correct (Figure 7(a)).
	bp, br = BestCase(0.5, 0.4, 0.3)
	if !almost(bp, 1) {
		t.Errorf("best precision with tiny Â = %v, want 1", bp)
	}
	if !almost(br, 0.4*0.6) {
		t.Errorf("best recall with tiny Â = %v, want 0.24", br)
	}
}

// TestRatioOneCollapsesBounds: Â = 1 means S2 = S1, so best = worst =
// S1's own P/R (the paper's sanity observation in Section 3.3).
func TestRatioOneCollapsesBounds(t *testing.T) {
	for _, pr := range [][2]float64{{0.3, 0.1}, {0.5, 0.5}, {1, 1}, {0.9, 0.05}} {
		p1, r1 := pr[0], pr[1]
		bp, br := BestCase(p1, r1, 1)
		wp, wr := WorstCase(p1, r1, 1)
		if !almost(bp, p1) || !almost(wp, p1) || !almost(br, r1) || !almost(wr, r1) {
			t.Errorf("Â=1, (P1,R1)=(%v,%v): best (%v,%v), worst (%v,%v)", p1, r1, bp, br, wp, wr)
		}
	}
	// And on whole curves.
	in := figure8Input()
	in.Sizes2 = []int{40, 72}
	for _, algo := range []func(Input) (Curve, error){Naive, Incremental} {
		curve, err := algo(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range curve {
			if !almost(pt.BestP, in.S1[i].Precision) || !almost(pt.WorstP, in.S1[i].Precision) ||
				!almost(pt.BestR, in.S1[i].Recall) || !almost(pt.WorstR, in.S1[i].Recall) {
				t.Errorf("point %d: bounds did not collapse to S1 curve: %+v", i, pt)
			}
		}
	}
}

// TestBestWorstOrderProperty: for any valid inputs, worst ≤ best in
// both dimensions, and both stay in [0,1].
func TestBestWorstOrderProperty(t *testing.T) {
	f := func(rawP, rawR, rawRatio float64) bool {
		p1 := math.Abs(math.Mod(rawP, 1))
		r1 := math.Abs(math.Mod(rawR, 1))
		ratio := math.Abs(math.Mod(rawRatio, 1))
		bp, br := BestCase(p1, r1, ratio)
		wp, wr := WorstCase(p1, r1, ratio)
		for _, v := range []float64{bp, br, wp, wr} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return wp <= bp+1e-9 && wr <= br+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCountSpaceMatchesEquations: the count-space implementation used
// by Naive must agree with the paper's ratio equations at every point.
func TestCountSpaceMatchesEquations(t *testing.T) {
	in := figure8Input()
	curve, err := Naive(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range curve {
		p1 := in.S1[i].Precision
		r1 := in.S1[i].Recall
		ratio := float64(in.Sizes2[i]) / float64(in.S1[i].Answers)
		bp, br := BestCase(p1, r1, ratio)
		wp, wr := WorstCase(p1, r1, ratio)
		if !almost(pt.BestP, bp) || !almost(pt.BestR, br) {
			t.Errorf("point %d best: count space (%v,%v) vs equations (%v,%v)", i, pt.BestP, pt.BestR, bp, br)
		}
		if !almost(pt.WorstP, wp) || !almost(pt.WorstR, wr) {
			t.Errorf("point %d worst: count space (%v,%v) vs equations (%v,%v)", i, pt.WorstP, pt.WorstR, wp, wr)
		}
	}
}

// TestIncrementalNeverLooser: the incremental worst bound dominates the
// naive worst bound, and the incremental best bound is no higher than
// the naive best bound (Section 3.2's gain in accuracy).
func TestIncrementalNeverLooserProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		in := randomInput(seed, n)
		naive, err1 := Naive(in)
		inc, err2 := Incremental(in)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both reject together
		}
		for i := range naive {
			if inc[i].WorstP+1e-9 < naive[i].WorstP || inc[i].WorstR+1e-9 < naive[i].WorstR {
				return false
			}
			if inc[i].BestP > naive[i].BestP+1e-9 || inc[i].BestR > naive[i].BestR+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestRandomWithinBounds: the random baseline lies between worst and
// best everywhere, for the incremental computation.
func TestRandomWithinBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		in := randomInput(seed, n)
		inc, err := Incremental(in)
		if err != nil {
			return true
		}
		for _, pt := range inc {
			if pt.RandomP+1e-9 < pt.WorstP || pt.RandomP > pt.BestP+1e-9 {
				return false
			}
			if pt.RandomR+1e-9 < pt.WorstR || pt.RandomR > pt.BestR+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// randomInput fabricates a consistent S1 curve and S2 sizes from a
// seed using a simple LCG (deterministic for quick.Check shrinking).
func randomInput(seed int64, n int) Input {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int(state>>33) % mod
	}
	h := 50 + next(200)
	a1, t1, a2 := 0, 0, 0
	var curve eval.Curve
	var sizes []int
	for i := 0; i < n; i++ {
		da := next(40)
		dt := 0
		if da > 0 {
			dt = next(da + 1)
		}
		if t1+dt > h {
			dt = h - t1
		}
		a1 += da
		t1 += dt
		da2 := 0
		if da > 0 {
			da2 = next(da + 1)
		}
		a2 += da2
		if a2 > a1 {
			a2 = a1
		}
		prec := 1.0
		if a1 > 0 {
			prec = float64(t1) / float64(a1)
		}
		curve = append(curve, eval.PRPoint{
			Delta:     float64(i) / float64(n),
			Precision: prec,
			Recall:    float64(t1) / float64(h),
			Answers:   a1,
			Correct:   t1,
		})
		sizes = append(sizes, a2)
	}
	return Input{S1: curve, Sizes2: sizes, HOverride: h}
}

// TestBoundsContainTruthProperty: simulate full knowledge — draw a
// ground truth assignment of correct/incorrect to S1's answers and an
// arbitrary subset choice for S2 — and verify the computed bounds
// always contain S2's true P/R. This is the theorem the paper proves;
// here it is machine-checked on thousands of random worlds.
func TestBoundsContainTruthProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		world := randomWorld(seed, n)
		inc, err := Incremental(world.input)
		if err != nil {
			return true
		}
		naive, err := Naive(world.input)
		if err != nil {
			return true
		}
		for i := range inc {
			p, r := world.truePR(i)
			for _, c := range []Curve{inc, naive} {
				if p+1e-9 < c[i].WorstP || p > c[i].BestP+1e-9 {
					return false
				}
				if r+1e-9 < c[i].WorstR || r > c[i].BestR+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// world is a fully known universe: a ranked list of S1 answers each
// flagged correct/incorrect, and a subset retained by S2, grouped into
// increments.
type world struct {
	input Input
	// per threshold: S2's true correct and total counts.
	t2, a2 []int
	h      int
}

func (w *world) truePR(i int) (p, r float64) {
	p = 1
	if w.a2[i] > 0 {
		p = float64(w.t2[i]) / float64(w.a2[i])
	}
	r = float64(w.t2[i]) / float64(w.h)
	return p, r
}

func randomWorld(seed int64, n int) *world {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % mod
	}
	w := &world{h: 1} // grows below
	a1c, t1c, a2c, t2c := 0, 0, 0, 0
	var curve eval.Curve
	var sizes []int
	totalCorrect := 0
	for i := 0; i < n; i++ {
		// Increment: da1 answers, each independently correct with ~1/3
		// chance, each retained by S2 with ~1/2 chance.
		da1 := next(30)
		for k := 0; k < da1; k++ {
			correct := next(3) == 0
			kept := next(2) == 0
			a1c++
			if correct {
				t1c++
				totalCorrect++
			}
			if kept {
				a2c++
				if correct {
					t2c++
				}
			}
		}
		prec := 1.0
		if a1c > 0 {
			prec = float64(t1c) / float64(a1c)
		}
		curve = append(curve, eval.PRPoint{
			Delta:     float64(i) / float64(n),
			Precision: prec,
			Answers:   a1c,
			Correct:   t1c,
		})
		sizes = append(sizes, a2c)
		w.a2 = append(w.a2, a2c)
		w.t2 = append(w.t2, t2c)
	}
	// |H| must be at least the total number of correct answers; add
	// unreachable truths for realism.
	w.h = totalCorrect + next(20) + 1
	for i := range curve {
		curve[i].Recall = float64(curve[i].Correct) / float64(w.h)
	}
	w.input = Input{S1: curve, Sizes2: sizes, HOverride: w.h}
	return w
}

func TestInputValidation(t *testing.T) {
	good := figure8Input()
	if _, _, err := good.validate(); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Input)
	}{
		{"empty curve", func(in *Input) { in.S1 = nil }},
		{"size mismatch", func(in *Input) { in.Sizes2 = []int{32} }},
		{"negative size", func(in *Input) { in.Sizes2 = []int{-1, 48} }},
		{"subset violation", func(in *Input) { in.Sizes2 = []int{41, 72} }},
		{"non-monotone sizes", func(in *Input) { in.Sizes2 = []int{32, 20} }},
	}
	for _, tc := range cases {
		in := figure8Input()
		tc.mutate(&in)
		if _, err := Naive(in); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := Incremental(in); err == nil {
			t.Errorf("%s: accepted by Incremental", tc.name)
		}
	}
	// Zero-recall curve without HOverride.
	in := Input{
		S1:     eval.Curve{{Delta: 0.1, Precision: 1, Recall: 0, Answers: 0, Correct: 0}},
		Sizes2: []int{0},
	}
	if _, err := Naive(in); err == nil {
		t.Error("zero-recall curve without HOverride accepted")
	}
	in.HOverride = 10
	if _, err := Naive(in); err != nil {
		t.Errorf("HOverride should fix it: %v", err)
	}
}

func TestIncrementPRErrors(t *testing.T) {
	if _, _, err := IncrementPR(0.5, 0.2, 0.5, 0.1); err == nil {
		t.Error("shrinking recall should error")
	}
	if _, _, err := IncrementPR(0.5, 0.2, 0.5, 0.2); err == nil {
		t.Error("empty increment should error")
	}
	if _, _, err := IncrementPR(0.5, 0.2, 0, 0.4); err == nil {
		t.Error("zero precision with answers should error")
	}
	if _, _, err := IncrementPR(1.5, 0, 0.5, 0.1); err == nil {
		t.Error("out-of-range precision should error")
	}
}

func TestFixedRatioSizes(t *testing.T) {
	sizes, err := FixedRatioSizes([]int{10, 20, 30}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{9, 18, 27}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes = %v, want %v", sizes, want)
			break
		}
	}
	if _, err := FixedRatioSizes([]int{10}, 1.5); err == nil {
		t.Error("ratio > 1 should error")
	}
	if _, err := FixedRatioSizes([]int{10, 5}, 0.5); err == nil {
		t.Error("non-monotone S1 sizes should error")
	}
	// Ratio 1 reproduces S1 exactly; ratio 0 yields zeros.
	ones, err := FixedRatioSizes([]int{3, 7, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ones[0] != 3 || ones[1] != 7 || ones[2] != 12 {
		t.Errorf("ratio 1 sizes = %v", ones)
	}
	zeros, err := FixedRatioSizes([]int{3, 7, 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zeros[0] != 0 || zeros[2] != 0 {
		t.Errorf("ratio 0 sizes = %v", zeros)
	}
}

func TestFixedRatioSizesMonotone(t *testing.T) {
	f := func(raw []uint8, rRaw float64) bool {
		ratio := math.Abs(math.Mod(rRaw, 1))
		s1 := make([]int, len(raw))
		acc := 0
		for i, d := range raw {
			acc += int(d % 16)
			s1[i] = acc
		}
		out, err := FixedRatioSizes(s1, ratio)
		if err != nil {
			return false
		}
		prev := 0
		for i, v := range out {
			if v < prev || v > s1[i] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
