package bounds

import (
	"strings"
	"testing"

	"repro/internal/eval"
)

func topnInput() Input {
	return Input{
		S1: eval.Curve{
			{Delta: 0.1, Precision: 1.0, Recall: 0.2, Answers: 10, Correct: 10},
			{Delta: 0.2, Precision: 0.6, Recall: 0.36, Answers: 30, Correct: 18},
			{Delta: 0.3, Precision: 0.3, Recall: 0.48, Answers: 80, Correct: 24},
		},
		Sizes2:    []int{8, 20, 40},
		HOverride: 50,
	}
}

func TestTopNSelectsLargestFittingThreshold(t *testing.T) {
	in := topnInput()
	pt, err := TopN(in, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Sizes2 = 8, 20, 40: the largest ≤ 25 is 20, at δ=0.2.
	if pt.Delta != 0.2 {
		t.Errorf("TopN(25) at δ=%v, want 0.2", pt.Delta)
	}
	// Exactly at a size boundary.
	pt, err = TopN(in, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Delta != 0.2 {
		t.Errorf("TopN(20) at δ=%v, want 0.2", pt.Delta)
	}
	// Huge N: last point.
	pt, err = TopN(in, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Delta != 0.3 {
		t.Errorf("TopN(1000) at δ=%v, want 0.3", pt.Delta)
	}
}

func TestTopNErrors(t *testing.T) {
	in := topnInput()
	if _, err := TopN(in, -1); err == nil {
		t.Error("negative N should error")
	}
	if _, err := TopN(in, 5); err == nil {
		t.Error("N below the first size should error")
	}
	bad := in
	bad.Sizes2 = []int{8}
	if _, err := TopN(bad, 25); err == nil {
		t.Error("invalid input should propagate")
	}
}

// TestTopNNarrowAtLowRanks encodes the paper's conclusion: bounds in
// the top-N region are narrow, and widen with N.
func TestTopNNarrowAtLowRanks(t *testing.T) {
	in := topnInput()
	low, err := TopN(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	high, err := TopN(in, 40)
	if err != nil {
		t.Fatal(err)
	}
	lowWidth := low.BestP - low.WorstP
	highWidth := high.BestP - high.WorstP
	if lowWidth > highWidth {
		t.Errorf("top-8 interval (%.4f) wider than top-40 (%.4f)", lowWidth, highWidth)
	}
}

func TestMaxLoss(t *testing.T) {
	in := topnInput()
	b, err := Incremental(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := MaxLoss(in.S1, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Thresholds != 3 {
		t.Errorf("Thresholds = %d", tr.Thresholds)
	}
	if tr.MaxPrecisionLoss < 0 || tr.MaxPrecisionLoss > 1 || tr.MaxRecallLoss < 0 || tr.MaxRecallLoss > 1 {
		t.Errorf("losses out of range: %+v", tr)
	}
	// Hand check at δ=0.1: ratio 0.8, S1 P=1 →
	// worst P = max(0, 1-(1-1)/0.8) = 1 → precision loss 0 there.
	// Recall: worst T2 = max(0, 8-(10-10)) = 8 → R=8/50 = 0.16;
	// S1 R = 0.2 → loss = 0.2 at δ=0.1.
	if tr.MaxRecallLoss < 0.2-1e-9 {
		t.Errorf("MaxRecallLoss = %v, want ≥ 0.2", tr.MaxRecallLoss)
	}
	s := tr.String()
	if !strings.Contains(s, "guaranteed") || !strings.Contains(s, "%") {
		t.Errorf("String = %q", s)
	}
}

func TestMaxLossSubsetOfThresholds(t *testing.T) {
	in := topnInput()
	b, err := Incremental(in)
	if err != nil {
		t.Fatal(err)
	}
	all, err := MaxLoss(in.S1, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	firstOnly, err := MaxLoss(in.S1, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if firstOnly.MaxPrecisionLoss > all.MaxPrecisionLoss+1e-12 ||
		firstOnly.MaxRecallLoss > all.MaxRecallLoss+1e-12 {
		t.Error("loss over a prefix cannot exceed loss over the whole curve")
	}
	if firstOnly.Thresholds != 1 {
		t.Errorf("Thresholds = %d", firstOnly.Thresholds)
	}
}

func TestMaxLossMismatch(t *testing.T) {
	in := topnInput()
	b, _ := Incremental(in)
	if _, err := MaxLoss(in.S1[:2], b, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMaxLossPerfectImprovement(t *testing.T) {
	// S2 = S1 → zero loss everywhere.
	in := topnInput()
	in.Sizes2 = []int{10, 30, 80}
	b, err := Incremental(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := MaxLoss(in.S1, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxPrecisionLoss > 1e-9 || tr.MaxRecallLoss > 1e-9 {
		t.Errorf("identical system should lose nothing: %+v", tr)
	}
}

func TestIntervalWidth(t *testing.T) {
	b := Curve{
		{BestP: 0.9, WorstP: 0.7, BestR: 0.5, WorstR: 0.4},
		{BestP: 0.8, WorstP: 0.2, BestR: 0.9, WorstR: 0.3},
	}
	w := IntervalWidth(b, 0)
	if !almost(w.MeanP, 0.4) || !almost(w.MaxP, 0.6) {
		t.Errorf("precision widths = %+v", w)
	}
	if !almost(w.MeanR, 0.35) || !almost(w.MaxR, 0.6) {
		t.Errorf("recall widths = %+v", w)
	}
	first := IntervalWidth(b, 1)
	if !almost(first.MeanP, 0.2) || !almost(first.MaxP, 0.2) {
		t.Errorf("prefix widths = %+v", first)
	}
	empty := IntervalWidth(nil, 0)
	if empty.MeanP != 0 || empty.MaxR != 0 {
		t.Errorf("empty widths = %+v", empty)
	}
}
