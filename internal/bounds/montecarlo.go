package bounds

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Monte Carlo estimation, the counterpoint to the exact bounds. The
// paper positions its technique against *estimates*: "Many techniques
// are known to give estimates, but the aim of this paper is to give
// best and worst case bounds for such estimates." Simulate makes that
// comparison concrete — it samples random worlds consistent with the
// observed counts (each increment's correct answers assigned to S2
// uniformly without replacement, the null model of Section 3.4) and
// reports quantiles of the resulting P/R distribution. The spread of
// the estimate against the width of the exact bounds quantifies how
// conservative the guarantee is.

// MCResult summarizes the sampled distribution at one threshold.
type MCResult struct {
	Delta float64
	// MeanP/MeanR are the sample means (they converge to the
	// random-case curve of Eqs (9)–(10)).
	MeanP, MeanR float64
	// P05/P95 are the 5th and 95th percentile of sampled precision.
	P05, P95 float64
	// R05/R95 are the corresponding recall percentiles.
	R05, R95 float64
}

// Simulate draws trials random worlds for the given input and returns
// per-threshold distribution summaries. It returns an error for
// invalid inputs or trials < 1.
func Simulate(in Input, trials int, rng *stats.RNG) ([]MCResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("bounds: trials %d < 1", trials)
	}
	h, t1, err := in.validate()
	if err != nil {
		return nil, err
	}
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	n := len(in.S1)
	// Per-increment counts.
	type inc struct{ da1, dt1, da2 int }
	incs := make([]inc, n)
	prevA1, prevA2, prevT1 := 0, 0, 0.0
	for i := range in.S1 {
		a1 := in.S1[i].Answers
		incs[i] = inc{
			da1: a1 - prevA1,
			dt1: int(t1[i] - prevT1 + 0.5),
			da2: in.Sizes2[i] - prevA2,
		}
		prevA1, prevA2, prevT1 = a1, in.Sizes2[i], t1[i]
	}
	// Sample: per increment, S2 keeps da2 of the da1 answers uniformly;
	// the kept correct count is hypergeometric. Sample it by shuffling
	// a boolean pool.
	samplesP := make([][]float64, n)
	samplesR := make([][]float64, n)
	for i := range samplesP {
		samplesP[i] = make([]float64, 0, trials)
		samplesR[i] = make([]float64, 0, trials)
	}
	for tr := 0; tr < trials; tr++ {
		cumT2, cumA2 := 0, 0
		for i, ic := range incs {
			kept := sampleHypergeometric(rng, ic.da1, ic.dt1, ic.da2)
			cumT2 += kept
			cumA2 += ic.da2
			p := 1.0
			if cumA2 > 0 {
				p = float64(cumT2) / float64(cumA2)
			}
			r := 1.0
			if h > 0 {
				r = float64(cumT2) / h
			}
			samplesP[i] = append(samplesP[i], p)
			samplesR[i] = append(samplesR[i], r)
		}
	}
	out := make([]MCResult, n)
	for i := range out {
		out[i] = MCResult{
			Delta: in.S1[i].Delta,
			MeanP: mean(samplesP[i]),
			MeanR: mean(samplesR[i]),
			P05:   quantile(samplesP[i], 0.05),
			P95:   quantile(samplesP[i], 0.95),
			R05:   quantile(samplesR[i], 0.05),
			R95:   quantile(samplesR[i], 0.95),
		}
	}
	return out, nil
}

// sampleHypergeometric draws how many of the `correct` marked items
// appear in a uniform `draw`-subset of a population of size `total`.
func sampleHypergeometric(rng *stats.RNG, total, correct, draw int) int {
	if draw <= 0 || total <= 0 {
		return 0
	}
	if draw >= total {
		return correct
	}
	// Sequential sampling without replacement.
	got := 0
	remainingCorrect := correct
	remainingTotal := total
	for i := 0; i < draw; i++ {
		if rng.Float64() < float64(remainingCorrect)/float64(remainingTotal) {
			got++
			remainingCorrect--
		}
		remainingTotal--
	}
	return got
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}
