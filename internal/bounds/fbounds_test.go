package bounds

import (
	"testing"
	"testing/quick"

	"repro/internal/eval"
)

func TestF1BoundsKnown(t *testing.T) {
	c := Curve{
		{Delta: 0.1, WorstP: 0.5, BestP: 1, WorstR: 0.5, BestR: 1, RandomP: 0.75, RandomR: 0.75},
	}
	f := F1Bounds(c)
	if len(f) != 1 {
		t.Fatal("length")
	}
	if !almost(f[0].WorstF, 0.5) || !almost(f[0].BestF, 1) || !almost(f[0].RandomF, 0.75) {
		t.Errorf("F bounds = %+v", f[0])
	}
	if f[0].Beta != 1 || f[0].Delta != 0.1 {
		t.Errorf("metadata = %+v", f[0])
	}
}

// TestFBoundsContainTrueF: for random worlds the true F1 lies inside
// the derived interval (monotonicity argument made executable).
func TestFBoundsContainTrueFProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		w := randomWorld(seed, n)
		inc, err := Incremental(w.input)
		if err != nil {
			return true
		}
		fb := F1Bounds(inc)
		for i := range inc {
			p, r := w.truePR(i)
			trueF := eval.F1(p, r)
			if trueF+1e-9 < fb[i].WorstF || trueF > fb[i].BestF+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestFBoundsOrdering(t *testing.T) {
	in := figure8Input()
	c, err := Incremental(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []float64{0.5, 1, 2} {
		fb := FBounds(c, beta)
		for i, pt := range fb {
			if pt.WorstF > pt.BestF+1e-12 {
				t.Errorf("β=%v point %d: worstF %v > bestF %v", beta, i, pt.WorstF, pt.BestF)
			}
			if pt.RandomF+1e-12 < pt.WorstF || pt.RandomF > pt.BestF+1e-12 {
				t.Errorf("β=%v point %d: randomF outside interval", beta, i)
			}
		}
	}
}
