package bounds

import (
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/stats"
)

// syntheticCurve fabricates a consistent n-point S1 curve plus S2
// sizes with ratio 0.8 per increment.
func syntheticCurve(n int) Input {
	h := 50 * n
	var curve eval.Curve
	var sizes []int
	a1, t1, a2 := 0, 0, 0
	for i := 0; i < n; i++ {
		a1 += 37 + i
		t1 += 11
		if t1 > h {
			t1 = h
		}
		a2 += (37 + i) * 4 / 5
		if a2 > a1 {
			a2 = a1
		}
		curve = append(curve, eval.PRPoint{
			Delta:     float64(i) / float64(n),
			Precision: float64(t1) / float64(a1),
			Recall:    float64(t1) / float64(h),
			Answers:   a1,
			Correct:   t1,
		})
		sizes = append(sizes, a2)
	}
	return Input{S1: curve, Sizes2: sizes, HOverride: h}
}

func benchAlgo(b *testing.B, algo func(Input) (Curve, error)) {
	for _, n := range []int{8, 64, 512} {
		in := syntheticCurve(n)
		b.Run(fmt.Sprintf("points%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := algo(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNaiveScaling(b *testing.B)       { benchAlgo(b, Naive) }
func BenchmarkIncrementalScaling(b *testing.B) { benchAlgo(b, Incremental) }

func BenchmarkBestWorstEquations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BestCase(0.5, 0.4, 0.8)
		WorstCase(0.5, 0.4, 0.8)
	}
}

func BenchmarkSubIncrement(b *testing.B) {
	in := SubIncrementInput{H: 100, T1: 30, A1: 50, T2: 36, A2: 70, APrime: 54}
	for i := 0; i < b.N; i++ {
		if _, _, err := SubIncrementBounds(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromInterpolated(b *testing.B) {
	var ip eval.Interpolated
	vals := []float64{0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5, 0.35, 0.2, 0.1, 0.05}
	copy(ip[:], vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromInterpolated(ip, 15000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopNQuery(b *testing.B) {
	in := syntheticCurve(64)
	n := in.Sizes2[32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopN(in, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloSimulate(b *testing.B) {
	in := syntheticCurve(16)
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(in, 200, rng); err != nil {
			b.Fatal(err)
		}
	}
}
