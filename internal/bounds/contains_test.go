package bounds

import "testing"

func TestPointContains(t *testing.T) {
	p := Point{WorstP: 0.4, BestP: 0.8, WorstR: 0.1, BestR: 0.3}
	cases := []struct {
		prec, rec float64
		want      bool
	}{
		{0.6, 0.2, true},
		{0.4, 0.1, true}, // inclusive at the edges
		{0.8, 0.3, true}, // inclusive at the edges
		{0.39, 0.2, false},
		{0.81, 0.2, false},
		{0.6, 0.05, false},
		{0.6, 0.35, false},
	}
	for _, c := range cases {
		if got := p.Contains(c.prec, c.rec); got != c.want {
			t.Errorf("Contains(%v,%v) = %v, want %v", c.prec, c.rec, got, c.want)
		}
	}
}

func TestPointContainsTolerance(t *testing.T) {
	p := Point{WorstP: 0.5, BestP: 0.5, WorstR: 0.5, BestR: 0.5}
	if !p.Contains(0.5+1e-12, 0.5-1e-12) {
		t.Error("float noise within tolerance should be contained")
	}
}
