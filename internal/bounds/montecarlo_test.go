package bounds

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSimulateValidation(t *testing.T) {
	in := figure8Input()
	if _, err := Simulate(in, 0, stats.NewRNG(1)); err == nil {
		t.Error("zero trials should error")
	}
	bad := in
	bad.Sizes2 = []int{99, 48}
	if _, err := Simulate(bad, 10, stats.NewRNG(1)); err == nil {
		t.Error("invalid input should error")
	}
}

// TestSimulateConvergesToRandomCase: the sample mean approaches the
// analytic random-case curve of Eqs (9)–(10).
func TestSimulateConvergesToRandomCase(t *testing.T) {
	in := figure8Input()
	mc, err := Simulate(in, 4000, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := Incremental(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mc {
		if math.Abs(mc[i].MeanP-analytic[i].RandomP) > 0.02 {
			t.Errorf("point %d: MC mean P %v vs analytic random %v", i, mc[i].MeanP, analytic[i].RandomP)
		}
		if math.Abs(mc[i].MeanR-analytic[i].RandomR) > 0.02 {
			t.Errorf("point %d: MC mean R %v vs analytic random %v", i, mc[i].MeanR, analytic[i].RandomR)
		}
	}
}

// TestSimulateSamplesInsideBounds: every sampled quantile lies inside
// the exact [worst, best] interval — the estimate can never escape
// the guarantee.
func TestSimulateSamplesInsideBounds(t *testing.T) {
	in := figure8Input()
	mc, err := Simulate(in, 1000, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Incremental(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mc {
		if mc[i].P05+1e-9 < exact[i].WorstP || mc[i].P95 > exact[i].BestP+1e-9 {
			t.Errorf("point %d: precision quantiles [%v,%v] escape bounds [%v,%v]",
				i, mc[i].P05, mc[i].P95, exact[i].WorstP, exact[i].BestP)
		}
		if mc[i].R05+1e-9 < exact[i].WorstR || mc[i].R95 > exact[i].BestR+1e-9 {
			t.Errorf("point %d: recall quantiles escape bounds", i)
		}
	}
}

// TestSimulateQuantileOrdering: P05 ≤ mean ≤ P95.
func TestSimulateQuantileOrdering(t *testing.T) {
	in := figure8Input()
	mc, err := Simulate(in, 500, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range mc {
		if r.P05 > r.MeanP+1e-9 || r.MeanP > r.P95+1e-9 {
			t.Errorf("point %d: precision quantiles unordered: %+v", i, r)
		}
		if r.R05 > r.MeanR+1e-9 || r.MeanR > r.R95+1e-9 {
			t.Errorf("point %d: recall quantiles unordered: %+v", i, r)
		}
	}
}

func TestSimulateDeterministicWithSeed(t *testing.T) {
	in := figure8Input()
	a, err := Simulate(in, 100, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(in, 100, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at point %d", i)
		}
	}
	if _, err := Simulate(in, 10, nil); err != nil {
		t.Errorf("nil rng should default: %v", err)
	}
}

func TestSampleHypergeometricEdges(t *testing.T) {
	rng := stats.NewRNG(1)
	if got := sampleHypergeometric(rng, 10, 4, 0); got != 0 {
		t.Errorf("draw 0 = %d", got)
	}
	if got := sampleHypergeometric(rng, 10, 4, 10); got != 4 {
		t.Errorf("draw all = %d, want 4", got)
	}
	if got := sampleHypergeometric(rng, 0, 0, 5); got != 0 {
		t.Errorf("empty population = %d", got)
	}
	// Sampled mean ≈ draw·correct/total.
	sum := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += sampleHypergeometric(rng, 20, 8, 5)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("hypergeometric mean = %v, want 2.0", mean)
	}
}
