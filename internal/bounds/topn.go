package bounds

import (
	"fmt"
	"math"

	"repro/internal/eval"
)

// The paper's conclusion singles out the top-N region: "for schema
// matching systems as well as information retrieval systems in
// general, the top-N is usually the most interesting and for such
// recall levels, we can give useful, i.e., narrow effectiveness
// bounds." This file provides the rank-indexed view of the bounds and
// the headline "effectiveness loss at most x%" guarantee the paper's
// introduction promises.

// TopN returns the effectiveness bounds of S2 when it is cut off at
// its top n answers: the bounds point at the largest threshold whose
// S2 answer count does not exceed n. It returns an error when even the
// first threshold exceeds n, or when the curve computation fails.
func TopN(in Input, n int) (Point, error) {
	if n < 0 {
		return Point{}, fmt.Errorf("bounds: negative top-N %d", n)
	}
	curve, err := Incremental(in)
	if err != nil {
		return Point{}, err
	}
	best := -1
	for i := range curve {
		if in.Sizes2[i] <= n {
			best = i
		}
	}
	if best < 0 {
		return Point{}, fmt.Errorf("bounds: S2 already has %d answers at the first threshold, above top-%d",
			in.Sizes2[0], n)
	}
	return curve[best], nil
}

// Tradeoff is the headline guarantee of the paper's introduction: "the
// trade-off in effectiveness for an efficiency improvement is at most
// x%". MaxPrecisionLoss and MaxRecallLoss are the worst relative drops
// of S2's guaranteed (worst-case) precision and recall below S1's
// measured values, over the compared thresholds. A value of 0.25 reads
// "S2 loses at most 25% of S1's precision, guaranteed".
type Tradeoff struct {
	// MaxPrecisionLoss and MaxRecallLoss are relative losses in [0,1].
	MaxPrecisionLoss float64
	MaxRecallLoss    float64
	// AtDeltaP and AtDeltaR are the thresholds where the maxima occur.
	AtDeltaP, AtDeltaR float64
	// Thresholds is how many curve points were compared.
	Thresholds int
}

// MaxLoss computes the trade-off guarantee from S1's curve and S2's
// incremental bounds, comparing the first n points (n ≤ 0 compares
// all). Thresholds where S1 has zero precision or recall are skipped
// (a relative loss is undefined there).
func MaxLoss(s1 eval.Curve, b Curve, n int) (Tradeoff, error) {
	if len(s1) != len(b) {
		return Tradeoff{}, fmt.Errorf("bounds: curve length mismatch %d vs %d", len(s1), len(b))
	}
	if n <= 0 || n > len(b) {
		n = len(b)
	}
	out := Tradeoff{Thresholds: n}
	for i := 0; i < n; i++ {
		if s1[i].Precision > 0 {
			loss := (s1[i].Precision - b[i].WorstP) / s1[i].Precision
			if loss > out.MaxPrecisionLoss {
				out.MaxPrecisionLoss = clamp01(loss)
				out.AtDeltaP = b[i].Delta
			}
		}
		if s1[i].Recall > 0 {
			loss := (s1[i].Recall - b[i].WorstR) / s1[i].Recall
			if loss > out.MaxRecallLoss {
				out.MaxRecallLoss = clamp01(loss)
				out.AtDeltaR = b[i].Delta
			}
		}
	}
	return out, nil
}

// String renders the guarantee in the paper's phrasing.
func (t Tradeoff) String() string {
	return fmt.Sprintf("guaranteed: precision loss ≤ %.1f%% (at δ=%.3f), recall loss ≤ %.1f%% (at δ=%.3f) over %d thresholds",
		100*t.MaxPrecisionLoss, t.AtDeltaP, 100*t.MaxRecallLoss, t.AtDeltaR, t.Thresholds)
}

// Width summarizes how informative a bounds curve is: the mean and
// maximum width of the precision and recall intervals. Narrow widths
// in the top-N region are the paper's success criterion.
type Width struct {
	MeanP, MaxP float64
	MeanR, MaxR float64
}

// IntervalWidth measures the [worst, best] interval widths of a bounds
// curve over its first n points (n ≤ 0 measures all).
func IntervalWidth(b Curve, n int) Width {
	if n <= 0 || n > len(b) {
		n = len(b)
	}
	var w Width
	if n == 0 {
		return w
	}
	for i := 0; i < n; i++ {
		dp := b[i].BestP - b[i].WorstP
		dr := b[i].BestR - b[i].WorstR
		w.MeanP += dp
		w.MeanR += dr
		w.MaxP = math.Max(w.MaxP, dp)
		w.MaxR = math.Max(w.MaxR, dr)
	}
	w.MeanP /= float64(n)
	w.MeanR /= float64(n)
	return w
}
