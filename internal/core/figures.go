package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bounds"
	"repro/internal/eval"
)

// FigureResult is the printable reproduction of one paper artifact.
type FigureResult struct {
	// ID is the artifact identifier ("fig8").
	ID string
	// Title describes the artifact.
	Title string
	// Header and Rows form the data table (the series the paper plots).
	Header []string
	Rows   [][]string
	// Notes carries shape observations and caveats.
	Notes []string
}

// Render formats the result as an aligned text table.
func (f *FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	widths := make([]int, len(f.Header))
	for i, h := range f.Header {
		widths[i] = len(h)
	}
	for _, row := range f.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(f.Header)
	for _, row := range f.Rows {
		writeRow(row)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// Figure5 reproduces the measured P/R curve of the exhaustive system
// S1 (paper Figure 5).
func Figure5(pl *Pipeline) *FigureResult {
	res := &FigureResult{
		ID:     "fig5",
		Title:  "measured P/R curve of the exhaustive system S1",
		Header: []string{"delta", "|A1|", "correct", "precision", "recall"},
	}
	for _, pt := range pl.S1Curve {
		res.Rows = append(res.Rows, []string{
			f3(pt.Delta), fmt.Sprint(pt.Answers), fmt.Sprint(pt.Correct),
			f4(pt.Precision), f4(pt.Recall),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("|H| = %d planted mappings; repository: %d schemas, %d elements",
			pl.Truth.Size(), pl.Scenario.Repo.Len(), pl.Scenario.Repo.NumElements()),
		"expected shape: precision decays as recall rises with the threshold")
	return res
}

// Figure6 reproduces the 11-point interpolated P/R curve (paper
// Figure 6) of the S1 curve.
func Figure6(pl *Pipeline) *FigureResult {
	ip := eval.Interpolate(pl.S1Curve)
	res := &FigureResult{
		ID:     "fig6",
		Title:  "11-point interpolated P/R curve of S1",
		Header: []string{"recall-level", "interp-precision"},
	}
	for l := 0; l <= 10; l++ {
		res.Rows = append(res.Rows, []string{f3(float64(l) / 10), f4(ip.At(l))})
	}
	res.Notes = append(res.Notes, "max-to-the-right interpolation; non-increasing by construction")
	return res
}

// Figure8 reproduces the paper's worked example of incremental
// worst-case estimation with its exact literature numbers: naive
// bounds 7/32 and 1/16, incremental bound 7/48.
func Figure8() (*FigureResult, error) {
	in := bounds.Input{
		S1: eval.Curve{
			{Delta: 0.1, Precision: 3.0 / 8, Recall: 0.15, Answers: 40, Correct: 15},
			{Delta: 0.2, Precision: 3.0 / 8, Recall: 0.27, Answers: 72, Correct: 27},
		},
		Sizes2:    []int{32, 48},
		HOverride: 100,
	}
	naive, err := bounds.Naive(in)
	if err != nil {
		return nil, err
	}
	inc, err := bounds.Incremental(in)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		ID:     "fig8",
		Title:  "incremental vs naive worst-case estimation (paper's worked example)",
		Header: []string{"threshold", "|A1|", "|A2|", "naive-worst-P", "incremental-worst-P", "paper"},
	}
	paperVals := []string{"7/32 = 0.2188", "naive 1/16 = 0.0625, incremental 7/48 = 0.1458"}
	for i := range in.S1 {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("delta%d", i+1),
			fmt.Sprint(in.S1[i].Answers), fmt.Sprint(in.Sizes2[i]),
			f4(naive[i].WorstP), f4(inc[i].WorstP), paperVals[i],
		})
	}
	res.Notes = append(res.Notes, "exact arithmetic reproduction; unit tests assert 7/32, 1/16, 7/48")
	return res, nil
}

// Figure9 reproduces the best/worst-case P/R curves of a hypothetical
// improvement with fixed per-increment answer size ratio 0.9 (paper
// Figure 9).
func Figure9(pl *Pipeline, ratio float64) (*FigureResult, error) {
	sizes2, err := bounds.FixedRatioSizes(pl.S1Curve.Sizes(), ratio)
	if err != nil {
		return nil, err
	}
	in := bounds.Input{S1: pl.S1Curve, Sizes2: sizes2, HOverride: pl.Truth.Size()}
	curve, err := bounds.Incremental(in)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		ID:     "fig9",
		Title:  fmt.Sprintf("best/worst-case P/R curve for fixed ratio %.2f", ratio),
		Header: []string{"delta", "S1-P", "S1-R", "best-P", "best-R", "worst-P", "worst-R"},
	}
	for i, pt := range curve {
		res.Rows = append(res.Rows, []string{
			f3(pt.Delta), f4(pl.S1Curve[i].Precision), f4(pl.S1Curve[i].Recall),
			f4(pt.BestP), f4(pt.BestR), f4(pt.WorstP), f4(pt.WorstR),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: bounds bracket the S1 curve; gap stays moderate at ratio 0.9")
	return res, nil
}

// Figure10 reproduces the measured answer-size-ratio curves of the
// two real improvements (paper Figure 10): S2-one declines smoothly,
// S2-two rigorously drops the tail while retaining top answers.
func Figure10(pl *Pipeline, one, two *Run) *FigureResult {
	res := &FigureResult{
		ID:     "fig10",
		Title:  "measured answer size ratio A_S2/A_S1 per threshold",
		Header: []string{"delta", "|A1|", one.Name, "ratio-one", two.Name, "ratio-two"},
	}
	for i, d := range pl.Thresholds {
		res.Rows = append(res.Rows, []string{
			f3(d), fmt.Sprint(pl.S1Curve[i].Answers),
			fmt.Sprint(one.Sizes2[i]), f4(one.Ratios[i]),
			fmt.Sprint(two.Sizes2[i]), f4(two.Ratios[i]),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: S2-one declines smoothly with the threshold;",
		"S2-two retains the best-scored answers but loses most of the tail")
	return res
}

// Figure11 reproduces the best/worst/random P/R curves for both real
// improvements (paper Figure 11), with the true curve alongside — our
// synthetic truth lets us verify containment, which the paper could
// not.
func Figure11(pl *Pipeline, runs ...*Run) *FigureResult {
	res := &FigureResult{
		ID:    "fig11",
		Title: "best/worst/random-case P/R curves for the real improvements",
		Header: []string{"system", "delta", "worst-P", "random-P", "true-P", "best-P",
			"worst-R", "random-R", "true-R", "best-R"},
	}
	for _, run := range runs {
		for i, pt := range run.Bounds {
			res.Rows = append(res.Rows, []string{
				run.Name, f3(pt.Delta),
				f4(pt.WorstP), f4(pt.RandomP), f4(run.TrueCurve[i].Precision), f4(pt.BestP),
				f4(pt.WorstR), f4(pt.RandomR), f4(run.TrueCurve[i].Recall), f4(pt.BestR),
			})
		}
	}
	res.Notes = append(res.Notes,
		"guarantee: worst ≤ true ≤ best at every threshold (ValidateBounds asserts it);",
		"random baseline lies between the bounds and usually below the true curve")
	return res
}

// Figure12 reproduces the bounds computed from an 11-point
// interpolated curve plus a guess of |H| (paper Figure 12): the
// interpolated curve of Figure 6 is re-anchored to answer counts via
// the guess, the measured ratio curves of the improvements carry over,
// and the bounds pipeline runs on the reconstruction.
func Figure12(pl *Pipeline, hGuess int, runs ...*Run) (*FigureResult, error) {
	ip := eval.Interpolate(pl.S1Curve)
	recon, err := bounds.FromInterpolated(ip, hGuess)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		ID:    "fig12",
		Title: fmt.Sprintf("best/worst case from interpolated P/R curve (guess |H| = %d)", hGuess),
		Header: []string{"system", "recall-level", "ratio", "worst-P", "random-P", "best-P",
			"worst-R", "best-R"},
	}
	for _, run := range runs {
		// Re-anchor: each reconstructed point has |A1'|; the matching
		// real threshold is where S1 accumulates that many answers
		// (scaled), and the measured ratio at that threshold carries
		// over to the reconstruction.
		sizes2 := make([]int, len(recon))
		ratios := make([]float64, len(recon))
		prev := 0
		for i, pt := range recon {
			ratios[i] = ratioAtSize(pl, run, pt.Answers, hGuess)
			sizes2[i] = int(math.Round(ratios[i] * float64(pt.Answers)))
			if sizes2[i] < prev {
				sizes2[i] = prev
			}
			if sizes2[i] > pt.Answers {
				sizes2[i] = pt.Answers
			}
			prev = sizes2[i]
		}
		b, err := bounds.Incremental(bounds.Input{S1: recon, Sizes2: sizes2, HOverride: hGuess})
		if err != nil {
			return nil, fmt.Errorf("core: fig12 bounds for %s: %w", run.Name, err)
		}
		for i, pt := range b {
			res.Rows = append(res.Rows, []string{
				run.Name, f3(recon[i].Delta), f4(ratios[i]),
				f4(pt.WorstP), f4(pt.RandomP), f4(pt.BestP),
				f4(pt.WorstR), f4(pt.BestR),
			})
		}
	}
	res.Notes = append(res.Notes,
		"threshold points are lost in an interpolated curve; the |H| guess re-anchors them,",
		"making the bounds slightly less accurate than Figure 11's (the paper's observation)")
	return res, nil
}

// ratioAtSize finds the measured cumulative ratio of a run at the real
// threshold where S1's (guess-scaled) answer count reaches approximately
// reconAnswers.
func ratioAtSize(pl *Pipeline, run *Run, reconAnswers, hGuess int) float64 {
	// Scale the reconstructed count back to the real collection.
	trueH := pl.Truth.Size()
	want := float64(reconAnswers) * float64(trueH) / float64(hGuess)
	// Find the first threshold index where S1 reaches the scaled count.
	for i, pt := range pl.S1Curve {
		if float64(pt.Answers) >= want {
			return run.Ratios[i]
		}
	}
	return run.Ratios[len(run.Ratios)-1]
}

// Figure13 reproduces the sub-increment interpolation boundaries of
// Section 4.2 with the paper's exact numbers: |H|=100, measured points
// (30/100, 30/50) and (36/100, 36/70), and the rebuilt system's answer
// counts swept from 50 to 70.
func Figure13() (*FigureResult, error) {
	base := bounds.SubIncrementInput{H: 100, T1: 30, A1: 50, T2: 36, A2: 70}
	res := &FigureResult{
		ID:     "fig13",
		Title:  "sub-increment interpolation boundaries (|H| = 100)",
		Header: []string{"answers@delta'", "worst-R", "worst-P", "best-R", "best-P", "mid-R", "mid-P"},
	}
	for aPrime := base.A1; aPrime <= base.A2; aPrime += 2 {
		in := base
		in.APrime = aPrime
		worst, best, err := bounds.SubIncrementBounds(in)
		if err != nil {
			return nil, err
		}
		mid, err := bounds.SubIncrementMidpoint(in)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(aPrime),
			f4(worst.Recall), f4(worst.Precision),
			f4(best.Recall), f4(best.Precision),
			f4(mid.Recall), f4(mid.Precision),
		})
	}
	res.Notes = append(res.Notes,
		"the paper's δ' example (54 answers) lies on the line (0.30, 30/54)–(0.34, 34/54);",
		"midpoints are the safest interpolation choice (smallest maximum error)")
	return res, nil
}
