package core

import (
	"fmt"

	"repro/internal/synth"
)

// PerturbationAnalysis breaks S1's recall down by the perturbation
// kinds applied to each planted mapping — an analysis impossible on a
// real corpus (nobody knows *why* a human-judged mapping was hard) and
// a direct view of which schema-evolution patterns the objective
// function ∆ absorbs and which it does not.
func PerturbationAnalysis(pl *Pipeline) (*FigureResult, error) {
	sc := pl.Scenario
	if len(sc.Provenance) != len(sc.Truth) {
		return nil, fmt.Errorf("core: scenario has no perturbation provenance")
	}
	found := pl.S1.Keys(pl.MaxDelta())
	midFound := pl.S1.Keys(pl.Thresholds[len(pl.Thresholds)/2])

	type bucket struct {
		total, atMax, atMid int
	}
	kinds := []synth.PerturbKind{
		synth.PerturbNone, synth.PerturbSynonym, synth.PerturbAbbrev,
		synth.PerturbTypo, synth.PerturbCompound,
	}
	buckets := make(map[synth.PerturbKind]*bucket, len(kinds))
	for _, k := range kinds {
		buckets[k] = &bucket{}
	}
	stretched := &bucket{}
	for i, m := range sc.Truth {
		key := m.Key()
		info := sc.Provenance[i]
		seen := make(map[synth.PerturbKind]bool)
		for _, k := range info.Kinds {
			if seen[k] {
				continue
			}
			seen[k] = true
			b := buckets[k]
			b.total++
			if found[key] {
				b.atMax++
			}
			if midFound[key] {
				b.atMid++
			}
		}
		if info.StretchedEdges > 0 {
			stretched.total++
			if found[key] {
				stretched.atMax++
			}
			if midFound[key] {
				stretched.atMid++
			}
		}
	}
	res := &FigureResult{
		ID:     "analysis-perturb",
		Title:  "S1 recall of planted mappings by perturbation kind",
		Header: []string{"perturbation", "planted", "recall@midDelta", "recall@maxDelta"},
	}
	frac := func(n, of int) string {
		if of == 0 {
			return "-"
		}
		return f4(float64(n) / float64(of))
	}
	for _, k := range kinds {
		b := buckets[k]
		res.Rows = append(res.Rows, []string{
			k.String(), fmt.Sprint(b.total), frac(b.atMid, b.total), frac(b.atMax, b.total),
		})
	}
	res.Rows = append(res.Rows, []string{
		"edge-stretch", fmt.Sprint(stretched.total), frac(stretched.atMid, stretched.total), frac(stretched.atMax, stretched.total),
	})
	res.Notes = append(res.Notes,
		"a mapping counts toward every perturbation kind it contains;",
		"synonym swaps are absorbed by the dictionary-aware metric, compounds cost the most")
	return res, nil
}
