package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/synth"
)

// testPipeline builds a small but realistic pipeline shared by the
// tests in this file.
func testPipeline(t *testing.T, seed uint64) *Pipeline {
	t.Helper()
	scfg := synth.DefaultConfig(seed)
	scfg.NumSchemas = 60
	pl, err := NewPipeline(Options{Synth: scfg, Thresholds: eval.Thresholds(0, 0.45, 9)})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestNewPipelineDefaults(t *testing.T) {
	pl := testPipeline(t, 1)
	if pl.Truth.Size() == 0 {
		t.Fatal("no planted truth")
	}
	if pl.S1.Len() == 0 {
		t.Fatal("exhaustive system found nothing")
	}
	if len(pl.S1Curve) != len(pl.Thresholds) {
		t.Fatalf("curve has %d points for %d thresholds", len(pl.S1Curve), len(pl.Thresholds))
	}
	// The curve must reach useful recall by the top threshold.
	last := pl.S1Curve[len(pl.S1Curve)-1]
	if last.Recall < 0.3 {
		t.Errorf("S1 recall at max δ = %v; scenario too hard for the experiments", last.Recall)
	}
	if last.Recall > 0 && last.Precision >= 0.999 {
		t.Errorf("S1 precision never drops (%v); scenario has no distractors", last.Precision)
	}
}

func TestRunImprovementAndValidateBounds(t *testing.T) {
	pl := testPipeline(t, 2)
	one, two, err := pl.StandardImprovements()
	if err != nil {
		t.Fatal(err)
	}
	runOne, err := pl.RunImprovement(one)
	if err != nil {
		t.Fatal(err)
	}
	runTwo, err := pl.RunImprovement(two)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []*Run{runOne, runTwo} {
		if err := run.ValidateBounds(); err != nil {
			t.Errorf("bounds violated: %v", err)
		}
		if len(run.Sizes2) != len(pl.Thresholds) || len(run.Ratios) != len(pl.Thresholds) {
			t.Errorf("%s: wrong series lengths", run.Name)
		}
		for i, r := range run.Ratios {
			if r < 0 || r > 1+1e-9 {
				t.Errorf("%s: ratio[%d] = %v out of range", run.Name, i, r)
			}
		}
		// The improvement must actually prune somewhere.
		pruned := false
		for i := range run.Sizes2 {
			if run.Sizes2[i] < pl.S1Curve[i].Answers {
				pruned = true
			}
		}
		if !pruned {
			t.Errorf("%s retained everything; not a useful experiment subject", run.Name)
		}
	}
}

func TestBeamImprovementRun(t *testing.T) {
	pl := testPipeline(t, 3)
	bm, err := pl.BeamImprovement(8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := pl.RunImprovement(bm)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.ValidateBounds(); err != nil {
		t.Errorf("beam bounds violated: %v", err)
	}
}

func TestFigure5And6(t *testing.T) {
	pl := testPipeline(t, 4)
	f5 := Figure5(pl)
	if len(f5.Rows) != len(pl.Thresholds) {
		t.Errorf("fig5 rows = %d", len(f5.Rows))
	}
	out := f5.Render()
	for _, frag := range []string{"fig5", "precision", "recall"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig5 render missing %q", frag)
		}
	}
	f6 := Figure6(pl)
	if len(f6.Rows) != 11 {
		t.Errorf("fig6 rows = %d, want 11", len(f6.Rows))
	}
}

func TestFigure8(t *testing.T) {
	f8, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	out := f8.Render()
	// The table must contain the three canonical values.
	for _, frag := range []string{"0.2188", "0.0625", "0.1458"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig8 missing value %s in:\n%s", frag, out)
		}
	}
}

func TestFigure9(t *testing.T) {
	pl := testPipeline(t, 5)
	f9, err := Figure9(pl, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != len(pl.Thresholds) {
		t.Errorf("fig9 rows = %d", len(f9.Rows))
	}
	if _, err := Figure9(pl, 1.5); err == nil {
		t.Error("ratio > 1 should error")
	}
}

func TestFigures10Through12(t *testing.T) {
	pl := testPipeline(t, 6)
	one, two, err := pl.StandardImprovements()
	if err != nil {
		t.Fatal(err)
	}
	runOne, err := pl.RunImprovement(one)
	if err != nil {
		t.Fatal(err)
	}
	runTwo, err := pl.RunImprovement(two)
	if err != nil {
		t.Fatal(err)
	}
	f10 := Figure10(pl, runOne, runTwo)
	if len(f10.Rows) != len(pl.Thresholds) {
		t.Errorf("fig10 rows = %d", len(f10.Rows))
	}
	f11 := Figure11(pl, runOne, runTwo)
	if len(f11.Rows) != 2*len(pl.Thresholds) {
		t.Errorf("fig11 rows = %d", len(f11.Rows))
	}
	f12, err := Figure12(pl, 15000, runOne, runTwo)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Rows) == 0 {
		t.Error("fig12 empty")
	}
	if !strings.Contains(f12.Title, "15000") {
		t.Errorf("fig12 title = %q", f12.Title)
	}
}

func TestFigure13(t *testing.T) {
	f13, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	// 11 sampled δ′ points from 50 to 70 step 2.
	if len(f13.Rows) != 11 {
		t.Errorf("fig13 rows = %d, want 11", len(f13.Rows))
	}
	out := f13.Render()
	// 54 answers → worst (0.30, 0.5556), best (0.34, 0.6296).
	if !strings.Contains(out, "0.5556") || !strings.Contains(out, "0.6296") {
		t.Errorf("fig13 missing the paper's δ' example values:\n%s", out)
	}
}

func TestRenderAlignment(t *testing.T) {
	f := &FigureResult{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "longheader"},
		Rows:   [][]string{{"verylongcell", "b"}},
		Notes:  []string{"n1"},
	}
	out := f.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "note: ") {
		t.Errorf("notes not rendered: %q", lines[3])
	}
}

// TestDefaultScorerSharedAcrossPipelines pins the (problem, metric)
// cache wiring: two pipelines over the same corpus with no explicit
// scorer must share one memoized engine, and the second build must be
// served (at least partly) from cache hits; a different corpus must
// get its own engine.
func TestDefaultScorerSharedAcrossPipelines(t *testing.T) {
	// Start from an empty process-global cache so the hit-count
	// assertions below cannot be satisfied by earlier tests' corpora.
	ResetSharedScorers()
	opts := func(seed uint64) Options {
		scfg := synth.DefaultConfig(seed)
		scfg.NumSchemas = 12
		return Options{Synth: scfg, Thresholds: eval.Thresholds(0, 0.3, 4)}
	}
	pl1, err := NewPipeline(opts(21))
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := NewPipeline(opts(21))
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Scorer() != pl2.Scorer() {
		t.Error("same corpus, default options: pipelines did not share a scorer")
	}
	memo, ok := pl1.Scorer().(*engine.Memo)
	if !ok {
		t.Fatalf("default scorer is %T, want *engine.Memo", pl1.Scorer())
	}
	if st := memo.Stats(); st.Hits == 0 {
		t.Error("second pipeline build produced no cache hits")
	}
	pl3, err := NewPipeline(opts(22))
	if err != nil {
		t.Fatal(err)
	}
	if pl3.Scorer() == pl1.Scorer() {
		t.Error("different corpus shared the same default scorer")
	}
}
