package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/synth"
)

func TestAblationBeamWidth(t *testing.T) {
	pl := testPipeline(t, 31)
	res, err := AblationBeamWidth(pl, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Wider beams retain at least as many answers.
	prev := -1
	for _, row := range res.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Errorf("answers decreased with wider beam: %v", res.Rows)
		}
		prev = n
	}
	// Guaranteed precision loss must not grow with width.
	first, err := strconv.ParseFloat(res.Rows[0][5], 64)
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.ParseFloat(res.Rows[2][5], 64)
	if err != nil {
		t.Fatal(err)
	}
	if last > first+1e-9 {
		t.Errorf("precision loss grew with beam width: %v vs %v", first, last)
	}
}

func TestAblationClusterSelection(t *testing.T) {
	pl := testPipeline(t, 33)
	res, err := AblationClusterSelection(pl, []int{2, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	prev := -1
	for _, row := range res.Rows {
		n, _ := strconv.Atoi(row[1])
		if n < prev {
			t.Errorf("answers decreased with more clusters: %v", res.Rows)
		}
		prev = n
	}
}

func TestAblationGridResolution(t *testing.T) {
	pl := testPipeline(t, 35)
	one, _, err := pl.StandardImprovements()
	if err != nil {
		t.Fatal(err)
	}
	run, err := pl.RunImprovement(one)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AblationGridResolution(pl, run, []int{2, 5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The incremental width must never exceed the naive width (gain ≥ 0).
	for _, row := range res.Rows {
		gain, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if gain < -1e-9 {
			t.Errorf("negative incremental gain at %s steps: %v", row[0], gain)
		}
	}
}

func TestAblationObjectiveWeights(t *testing.T) {
	scfg := synth.DefaultConfig(37)
	scfg.NumSchemas = 40
	opt := Options{Synth: scfg, Thresholds: eval.Thresholds(0, 0.45, 7)}
	res, err := AblationObjectiveWeights(opt, [][2]float64{{1, 0}, {0.7, 0.3}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !strings.HasPrefix(row[4], "yes") {
			t.Errorf("bounds violated under weights %s/%s: %s", row[0], row[1], row[4])
		}
	}
}
