package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matching"
)

// Ablation drivers: parameter sweeps over the design choices the
// reproduction makes, each answering one "what if" about the technique
// or about the matchers feeding it. Each returns a FigureResult so the
// CLI and the benchmark harness render them like the paper figures.

// AblationBeamWidth sweeps the beam width of the S2-one-style
// improvement: wider beams retain more answers, so the bounds tighten —
// the efficiency/effectiveness dial the paper's introduction motivates,
// evaluated without ground truth.
func AblationBeamWidth(pl *Pipeline, widths []int) (*FigureResult, error) {
	res := &FigureResult{
		ID:    "ablation-beam",
		Title: "beam width vs retained answers and guaranteed effectiveness",
		Header: []string{"width", "answers", "ratio@max", "worstP@mid", "bestP@mid",
			"maxPrecLoss", "maxRecLoss"},
	}
	mid := len(pl.Thresholds) / 2
	for _, w := range widths {
		m, err := pl.BeamImprovement(w)
		if err != nil {
			return nil, err
		}
		run, err := pl.RunImprovement(m)
		if err != nil {
			return nil, err
		}
		loss, err := bounds.MaxLoss(pl.S1Curve, run.Bounds, 0)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(w),
			fmt.Sprint(run.Set.Len()),
			f4(run.Ratios[len(run.Ratios)-1]),
			f4(run.Bounds[mid].WorstP),
			f4(run.Bounds[mid].BestP),
			f4(loss.MaxPrecisionLoss),
			f4(loss.MaxRecallLoss),
		})
	}
	res.Notes = append(res.Notes,
		"wider beams retain more of the tail, narrowing the bounds and shrinking the guaranteed loss")
	return res, nil
}

// AblationClusterSelection sweeps how many clusters the
// cluster-restricted improvement searches per personal element — the
// exact dial of the paper's own system ([16]) whose validation cost
// motivated the bounds technique.
func AblationClusterSelection(pl *Pipeline, tops []int) (*FigureResult, error) {
	// The service's lazily built index backs every "clustered:N" spec
	// of the sweep, so the offline clustering happens exactly once.
	ix, err := pl.Service().Index()
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		ID:    "ablation-clusters",
		Title: fmt.Sprintf("clusters searched per element (of %d) vs guarantees", ix.K()),
		Header: []string{"top", "answers", "ratio@max", "worstP@mid", "worstR@mid",
			"maxPrecLoss", "maxRecLoss"},
	}
	mid := len(pl.Thresholds) / 2
	for _, top := range tops {
		if top > ix.K() {
			continue
		}
		run, err := pl.RunSpec(fmt.Sprintf("clustered:%d", top))
		if err != nil {
			return nil, err
		}
		loss, err := bounds.MaxLoss(pl.S1Curve, run.Bounds, 0)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(top),
			fmt.Sprint(run.Set.Len()),
			f4(run.Ratios[len(run.Ratios)-1]),
			f4(run.Bounds[mid].WorstP),
			f4(run.Bounds[mid].WorstR),
			f4(loss.MaxPrecisionLoss),
			f4(loss.MaxRecallLoss),
		})
	}
	res.Notes = append(res.Notes,
		"the trade-off table the paper wants to produce per setting without human judges")
	return res, nil
}

// AblationGridResolution recomputes the incremental and naive bounds
// of one improvement on coarser and finer threshold grids. The paper's
// Section 3.2 argues increments gain accuracy; this sweep quantifies
// how much of that gain survives coarse grids (fewer increments =
// closer to the naive bound).
func AblationGridResolution(pl *Pipeline, run *Run, steps []int) (*FigureResult, error) {
	res := &FigureResult{
		ID:     "ablation-grid",
		Title:  "threshold grid resolution vs bound tightness for " + run.Name,
		Header: []string{"steps", "meanWidthP(incremental)", "meanWidthP(naive)", "gain"},
	}
	maxDelta := pl.MaxDelta()
	for _, n := range steps {
		if n < 1 {
			continue
		}
		ts := eval.Thresholds(0, maxDelta, n)
		curve := eval.MeasuredCurve(pl.S1, pl.Truth, ts)
		sizes := make([]int, len(ts))
		for i, d := range ts {
			sizes[i] = run.Set.CountAt(d)
		}
		in := bounds.Input{S1: curve, Sizes2: sizes, HOverride: pl.Truth.Size()}
		inc, err := bounds.Incremental(in)
		if err != nil {
			return nil, err
		}
		naive, err := bounds.Naive(in)
		if err != nil {
			return nil, err
		}
		wInc := bounds.IntervalWidth(inc, 0)
		wNaive := bounds.IntervalWidth(naive, 0)
		gain := 0.0
		if wNaive.MeanP > 0 {
			gain = 1 - wInc.MeanP/wNaive.MeanP
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), f4(wInc.MeanP), f4(wNaive.MeanP), f4(gain),
		})
	}
	res.Notes = append(res.Notes,
		"finer grids give the incremental algorithm more increments to exploit;",
		"the naive bound is grid-insensitive by construction")
	return res, nil
}

// AblationObjectiveWeights re-runs the whole pipeline under different
// name/structure weightings of ∆ and validates that the bounds contain
// the truth under each — the technique is agnostic to the objective
// function as long as S1 and S2 share it.
func AblationObjectiveWeights(opt Options, weights [][2]float64) (*FigureResult, error) {
	res := &FigureResult{
		ID:     "ablation-weights",
		Title:  "objective weightings vs S1 effectiveness and bound validity",
		Header: []string{"nameW", "structW", "S1 P@mid", "S1 R@mid", "boundsContainTruth"},
	}
	// One memoized scorer spans the whole sweep: the name scores do not
	// depend on the objective weights, so every pipeline after the first
	// builds its cost tables from cache hits. The precedence mirrors
	// NewPipeline: Options.Scorer, then Match.Scorer, then a fresh memo.
	scorer := opt.Scorer
	if scorer == nil {
		scorer = opt.Match.Scorer
	}
	if scorer == nil {
		scorer = engine.New(nil)
	}
	for _, w := range weights {
		o := opt
		o.Scorer = scorer
		o.Match = matching.Config{
			Scorer:          scorer,
			NameWeight:      w[0],
			StructWeight:    w[1],
			MaxDepthStretch: 3,
		}
		pl, err := NewPipeline(o)
		if err != nil {
			return nil, err
		}
		one, _, err := pl.StandardImprovements()
		if err != nil {
			return nil, err
		}
		run, err := pl.RunImprovement(one)
		if err != nil {
			return nil, err
		}
		contained := "yes"
		if err := run.ValidateBounds(); err != nil {
			contained = "VIOLATED: " + err.Error()
		}
		mid := len(pl.Thresholds) / 2
		res.Rows = append(res.Rows, []string{
			f3(w[0]), f3(w[1]),
			f4(pl.S1Curve[mid].Precision), f4(pl.S1Curve[mid].Recall),
			contained,
		})
	}
	res.Notes = append(res.Notes,
		"the guarantee must hold under any ∆ shared by S1 and S2; only S1's own curve shifts")
	return res, nil
}
