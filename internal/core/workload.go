package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/eval"
	"repro/internal/matching"
)

// Workload evaluation: a real validation campaign matches many
// personal schemas, not one, and reports micro-averaged effectiveness
// (counts summed across problems before computing P and R). Because
// the bounds arithmetic is purely additive in count space, the
// guarantee survives aggregation: summed worst-case correct counts
// lower-bound the summed true correct counts, and likewise for best
// case. Workload makes that aggregate computation first-class.
type Workload struct {
	// Pipelines are the per-query experiments. All must share the same
	// threshold grid.
	Pipelines []*Pipeline
}

// NewWorkload builds pipelines for each option set and checks that the
// threshold grids agree.
func NewWorkload(opts []Options) (*Workload, error) {
	if len(opts) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	w := &Workload{}
	for i, o := range opts {
		pl, err := NewPipeline(o)
		if err != nil {
			return nil, fmt.Errorf("core: workload pipeline %d: %w", i, err)
		}
		if i > 0 {
			a, b := w.Pipelines[0].Thresholds, pl.Thresholds
			if len(a) != len(b) {
				return nil, fmt.Errorf("core: workload pipeline %d has %d thresholds, want %d", i, len(b), len(a))
			}
			for j := range a {
				if a[j] != b[j] {
					return nil, fmt.Errorf("core: workload pipeline %d disagrees on threshold %d", i, j)
				}
			}
		}
		w.Pipelines = append(w.Pipelines, pl)
	}
	return w, nil
}

// Thresholds returns the shared threshold grid.
func (w *Workload) Thresholds() []float64 { return w.Pipelines[0].Thresholds }

// TotalH returns Σ|H| across problems.
func (w *Workload) TotalH() int {
	total := 0
	for _, pl := range w.Pipelines {
		total += pl.Truth.Size()
	}
	return total
}

// aggregate micro-averages a list of per-problem curves: counts are
// summed per threshold, P and R recomputed from the sums.
func aggregate(curves []eval.Curve, totalH int, thresholds []float64) eval.Curve {
	out := make(eval.Curve, len(thresholds))
	for i, d := range thresholds {
		answers, correct := 0, 0
		for _, c := range curves {
			answers += c[i].Answers
			correct += c[i].Correct
		}
		p := 1.0
		if answers > 0 {
			p = float64(correct) / float64(answers)
		}
		r := 1.0
		if totalH > 0 {
			r = float64(correct) / float64(totalH)
		}
		out[i] = eval.PRPoint{Delta: d, Precision: p, Recall: r, Answers: answers, Correct: correct}
	}
	return out
}

// S1Curve returns the micro-averaged exhaustive curve of the workload.
func (w *Workload) S1Curve() eval.Curve {
	curves := make([]eval.Curve, len(w.Pipelines))
	for i, pl := range w.Pipelines {
		curves[i] = pl.S1Curve
	}
	return aggregate(curves, w.TotalH(), w.Thresholds())
}

// MatcherFactory builds an improvement for one pipeline (improvements
// like the clustered matcher are repository-specific, so each problem
// needs its own instance).
type MatcherFactory func(pl *Pipeline) (matching.Matcher, error)

// WorkloadRun is the aggregated outcome of one improvement across the
// workload.
type WorkloadRun struct {
	// Name of the improvement (from the first problem's instance).
	Name string
	// S1Curve is the micro-averaged exhaustive curve.
	S1Curve eval.Curve
	// Sizes2 are the summed improvement answer counts per threshold.
	Sizes2 []int
	// TrueCurve is the micro-averaged true curve of the improvement.
	TrueCurve eval.Curve
	// Bounds computed on the aggregate counts.
	Bounds bounds.Curve
}

// Run executes the factory's improvement on every problem and
// aggregates.
func (w *Workload) Run(factory MatcherFactory) (*WorkloadRun, error) {
	thresholds := w.Thresholds()
	sizes := make([]int, len(thresholds))
	var trueCurves []eval.Curve
	name := ""
	for i, pl := range w.Pipelines {
		m, err := factory(pl)
		if err != nil {
			return nil, fmt.Errorf("core: workload factory for problem %d: %w", i, err)
		}
		if name == "" {
			name = m.Name()
		}
		run, err := pl.RunImprovement(m)
		if err != nil {
			return nil, err
		}
		for j := range thresholds {
			sizes[j] += run.Sizes2[j]
		}
		trueCurves = append(trueCurves, run.TrueCurve)
	}
	s1 := w.S1Curve()
	b, err := bounds.Incremental(bounds.Input{S1: s1, Sizes2: sizes, HOverride: w.TotalH()})
	if err != nil {
		return nil, fmt.Errorf("core: workload bounds: %w", err)
	}
	return &WorkloadRun{
		Name:      name,
		S1Curve:   s1,
		Sizes2:    sizes,
		TrueCurve: aggregate(trueCurves, w.TotalH(), thresholds),
		Bounds:    b,
	}, nil
}

// ValidateBounds checks containment of the aggregated true curve.
func (r *WorkloadRun) ValidateBounds() error {
	for i, pt := range r.Bounds {
		if !pt.Contains(r.TrueCurve[i].Precision, r.TrueCurve[i].Recall) {
			return fmt.Errorf("core: workload %s at δ=%.3f: true (P=%.4f, R=%.4f) outside bounds",
				r.Name, pt.Delta, r.TrueCurve[i].Precision, r.TrueCurve[i].Recall)
		}
	}
	return nil
}
