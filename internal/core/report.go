package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bounds"
)

// WriteReport renders a complete markdown effectiveness-guarantee
// report for one improvement run: the scenario, the answer-size ratio
// series, the bounds table, the headline "loss at most x%" guarantee,
// interval-width diagnostics, and (because this pipeline knows the
// planted truth) the containment verification. This is the document a
// practitioner would attach to a parameter-tuning decision instead of
// a human evaluation campaign.
func WriteReport(w io.Writer, pl *Pipeline, run *Run) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Effectiveness guarantee report: %s\n\n", run.Name)

	fmt.Fprintf(&b, "## Scenario\n\n")
	st := pl.Scenario.Repo.ComputeStats()
	fmt.Fprintf(&b, "- repository: %d schemas, %d elements (mean size %.1f, max depth %d)\n",
		st.Schemas, st.Elements, st.MeanSize, st.MaxDepth)
	fmt.Fprintf(&b, "- personal schema: %s (%d elements)\n",
		pl.Scenario.Personal.Name, pl.Scenario.Personal.Len())
	fmt.Fprintf(&b, "- |H| (planted): %d; exhaustive answers at δ=%.3f: %d\n",
		pl.Truth.Size(), pl.MaxDelta(), pl.S1.Len())
	fmt.Fprintf(&b, "- improvement retained %d of %d answers (ratio %.3f at max δ)\n\n",
		run.Set.Len(), pl.S1.Len(), run.Ratios[len(run.Ratios)-1])

	fmt.Fprintf(&b, "## Guaranteed bounds per threshold\n\n")
	fmt.Fprintf(&b, "| δ | Â | worst P | best P | worst R | best R |\n")
	fmt.Fprintf(&b, "|---|---|---------|--------|---------|--------|\n")
	for _, pt := range run.Bounds {
		fmt.Fprintf(&b, "| %.3f | %.3f | %.4f | %.4f | %.4f | %.4f |\n",
			pt.Delta, pt.Ratio, pt.WorstP, pt.BestP, pt.WorstR, pt.BestR)
	}
	b.WriteString("\n")

	loss, err := bounds.MaxLoss(pl.S1Curve, run.Bounds, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "## Headline guarantee\n\n%s\n\n", loss.String())

	width := bounds.IntervalWidth(run.Bounds, 0)
	topWidth := bounds.IntervalWidth(run.Bounds, len(run.Bounds)/2)
	fmt.Fprintf(&b, "## Bound tightness\n\n")
	fmt.Fprintf(&b, "- mean precision interval width: %.4f overall, %.4f in the top-threshold half\n",
		width.MeanP, topWidth.MeanP)
	fmt.Fprintf(&b, "- mean recall interval width: %.4f overall, %.4f in the top-threshold half\n\n",
		width.MeanR, topWidth.MeanR)

	naiveWidth := bounds.IntervalWidth(run.NaiveBounds, 0)
	gain := 0.0
	if naiveWidth.MeanP > 0 {
		gain = 1 - width.MeanP/naiveWidth.MeanP
	}
	fmt.Fprintf(&b, "- incremental algorithm tightened the naive precision interval by %.1f%%\n\n", 100*gain)

	fmt.Fprintf(&b, "## Verification against planted truth\n\n")
	if err := run.ValidateBounds(); err != nil {
		fmt.Fprintf(&b, "**VIOLATION**: %v\n", err)
	} else {
		fmt.Fprintf(&b, "true precision and recall lie inside the computed bounds at all %d thresholds ✓\n",
			len(run.Bounds))
	}
	_, err = io.WriteString(w, b.String())
	return err
}
