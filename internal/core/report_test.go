package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	pl := testPipeline(t, 51)
	_, two, err := pl.StandardImprovements()
	if err != nil {
		t.Fatal(err)
	}
	run, err := pl.RunImprovement(two)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, pl, run); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# Effectiveness guarantee report",
		"## Scenario",
		"## Guaranteed bounds per threshold",
		"## Headline guarantee",
		"guaranteed: precision loss",
		"## Bound tightness",
		"## Verification against planted truth",
		"inside the computed bounds",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Error("report flags a violation on a valid run")
	}
	// One table row per threshold.
	rows := strings.Count(out, "\n| 0.")
	if rows != len(pl.Thresholds) {
		t.Errorf("report has %d bound rows for %d thresholds", rows, len(pl.Thresholds))
	}
}
