package core

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/matchers/beam"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/synth"
)

func workloadOptions(t *testing.T) []Options {
	t.Helper()
	var opts []Options
	for i, p := range []Options{
		{Personal: synth.PersonalLibrary()},
		{Personal: synth.PersonalContact()},
		{Personal: synth.PersonalOrder()},
	} {
		scfg := synth.DefaultConfig(uint64(100 + i))
		scfg.NumSchemas = 35
		p.Synth = scfg
		p.Thresholds = eval.Thresholds(0, 0.45, 9)
		opts = append(opts, p)
	}
	return opts
}

func TestNewWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(nil); err == nil {
		t.Error("empty workload should error")
	}
	opts := workloadOptions(t)
	opts[1].Thresholds = eval.Thresholds(0, 0.45, 5) // grid mismatch
	if _, err := NewWorkload(opts); err == nil {
		t.Error("threshold grid mismatch should error")
	}
}

func TestWorkloadAggregation(t *testing.T) {
	w, err := NewWorkload(workloadOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pipelines) != 3 {
		t.Fatalf("pipelines = %d", len(w.Pipelines))
	}
	totalH := 0
	for _, pl := range w.Pipelines {
		totalH += pl.Truth.Size()
	}
	if w.TotalH() != totalH {
		t.Errorf("TotalH = %d, want %d", w.TotalH(), totalH)
	}
	agg := w.S1Curve()
	if err := eval.CheckCurve(agg); err != nil {
		t.Fatalf("aggregate curve invalid: %v", err)
	}
	// Aggregate counts are the sums of the per-problem counts.
	last := len(agg) - 1
	sumAnswers := 0
	for _, pl := range w.Pipelines {
		sumAnswers += pl.S1Curve[last].Answers
	}
	if agg[last].Answers != sumAnswers {
		t.Errorf("aggregate answers = %d, want %d", agg[last].Answers, sumAnswers)
	}
}

// TestWorkloadBoundsContainAggregateTruth: the additive counting
// argument — aggregated bounds contain the aggregated truth.
func TestWorkloadBoundsContainAggregateTruth(t *testing.T) {
	w, err := NewWorkload(workloadOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]MatcherFactory{
		"beam": func(pl *Pipeline) (matching.Matcher, error) { return beam.New(24) },
		"clustered": func(pl *Pipeline) (matching.Matcher, error) {
			ix, err := clustered.BuildIndex(pl.Scenario.Repo, clustered.IndexConfig{Seed: 5})
			if err != nil {
				return nil, err
			}
			return clustered.New(ix, ix.K()/6+1, nil)
		},
	}
	for name, f := range factories {
		run, err := w.Run(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := run.ValidateBounds(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(run.Sizes2) != len(w.Thresholds()) {
			t.Errorf("%s: sizes length %d", name, len(run.Sizes2))
		}
	}
}

func TestWorkloadFactoryErrorPropagates(t *testing.T) {
	w, err := NewWorkload(workloadOptions(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	bad := func(pl *Pipeline) (matching.Matcher, error) { return beam.New(0) }
	if _, err := w.Run(bad); err == nil {
		t.Error("factory error should propagate")
	}
}
