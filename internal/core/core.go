// Package core wires the substrates into the paper's experimental
// pipeline: generate (or load) a matching scenario, run the exhaustive
// system S1 and its non-exhaustive improvements S2, measure curves and
// answer-size ratios, and compute the effectiveness bounds. The
// figure drivers in figures.go regenerate every evaluation artifact of
// the paper (Figures 5, 6, 8, 9, 10, 11, 12, 13) from this pipeline.
//
// Since the match façade landed, core is a thin experiment client of
// repro/match: every Pipeline owns a match.Service over its scenario's
// repository, and all matcher execution — the exhaustive baseline,
// every improvement run, registry-spec matcher construction — goes
// through it. What remains here is experiment-side: scenario
// generation, planted-truth evaluation, naive-bounds comparison, and
// the figure/ablation drivers.
package core

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/synth"
	"repro/internal/xmlschema"
	"repro/match"
)

// sharedScorers hands out the default scoring engines, keyed by
// (problem, metric): pipelines built over the same corpus under the
// same metric share one memo table. Explicit Options.Scorer /
// Match.Scorer values bypass it. The cache is LRU-bounded so a process
// sweeping many corpora (or a long-lived test binary) cannot grow it
// without limit; services that outlive experiments should use
// match.Service, which owns its scorer outright.
var sharedScorers = engine.NewCacheWithLimit(32)

// ResetSharedScorers drops the process-wide default scorers. Pipelines
// already built keep their engines; only future default handouts start
// cold.
func ResetSharedScorers() { sharedScorers.Reset() }

// Pipeline is one fully prepared experiment: scenario, problem, the
// exhaustive system's answers, and its measured curve against the
// planted truth. Matcher execution is delegated to the pipeline's
// match.Service.
type Pipeline struct {
	Scenario   *synth.Scenario
	Problem    *matching.Problem
	Thresholds []float64
	Truth      *eval.Truth
	// svc is the matching service every run goes through: it owns the
	// shared scoring engine, the cached baseline answers, and the
	// lazily built cluster index.
	svc *match.Service
	// S1 is the exhaustive answer set at the maximum threshold.
	S1 *matching.AnswerSet
	// S1Curve is S1's measured P/R curve on the planted truth.
	S1Curve eval.Curve
}

// Options configures NewPipeline. Zero values select the experiment
// defaults (see README.md).
type Options struct {
	// Personal schema; nil selects synth.PersonalLibrary.
	Personal *xmlschema.Schema
	// Synth configures the corpus; zero NumSchemas selects
	// synth.DefaultConfig(Seed) shrunk to 120 schemas.
	Synth synth.Config
	// Match configures the objective; zero selects
	// matching.DefaultConfig.
	Match matching.Config
	// Thresholds of the δ sweep; nil selects eval.Thresholds(0, 0.45, 15).
	Thresholds []float64
	// Scorer is the shared scoring engine. Nil selects a fresh memoized
	// engine over the default name metric (or Match.Scorer when that is
	// set). Pass one scorer to several pipelines to share its cache
	// across scenarios that reuse element names.
	Scorer engine.Scorer
	// Seed for the default synth config when Synth is zero.
	Seed uint64
	// Index configures the service's clustered index. The zero value
	// selects the pipeline default (Seed 17, as the paper-figure
	// experiments use); a nil Index.Scorer inherits the pipeline
	// scorer either way, so clustering always shares the memo.
	Index clustered.IndexConfig
}

// NewPipeline generates the scenario, builds the matching service,
// runs the exhaustive baseline at the maximum threshold, and measures
// its curve.
func NewPipeline(opt Options) (*Pipeline, error) {
	personal := opt.Personal
	if personal == nil {
		personal = synth.PersonalLibrary()
	}
	scfg := opt.Synth
	if scfg.NumSchemas == 0 {
		scfg = synth.DefaultConfig(opt.Seed)
		scfg.NumSchemas = 120
	}
	mcfg := opt.Match
	if mcfg.NameWeight == 0 && mcfg.StructWeight == 0 {
		scorer := mcfg.Scorer
		mcfg = matching.DefaultConfig()
		mcfg.Scorer = scorer
	}
	scorer := opt.Scorer
	if scorer == nil {
		scorer = mcfg.Scorer
	}
	if scorer == nil {
		// Default scorers come from the process-wide (problem, metric)
		// cache: two pipelines over the same corpus share one memo table
		// even when the caller threads nothing. The key covers the synth
		// parameters that shape the corpus; a residual collision (custom
		// personal schemas sharing a name, or custom synonym dicts) still
		// scores correctly — scorers are pure per metric — it merely
		// blends cache stats across the colliding corpora.
		scorer = sharedScorers.Scorer(
			fmt.Sprintf("%s/synth(seed=%d,n=%d,plant=%g,size=%d-%d,branch=%d,perturb=%g)",
				personal.Name, scfg.Seed, scfg.NumSchemas, scfg.PlantRate,
				scfg.MinSize, scfg.MaxSize, scfg.MaxChildren, scfg.PerturbStrength), nil)
	}
	mcfg.Scorer = scorer
	thresholds := opt.Thresholds
	if thresholds == nil {
		thresholds = eval.Thresholds(0, 0.45, 15)
	}
	sc, err := synth.Generate(personal, scfg)
	if err != nil {
		return nil, fmt.Errorf("core: generating scenario: %w", err)
	}
	truth := eval.NewTruth(sc.TruthKeys())
	ixCfg := opt.Index
	if ixCfg == (clustered.IndexConfig{}) {
		ixCfg = clustered.IndexConfig{Seed: 17}
	}
	if ixCfg.Scorer == nil {
		ixCfg.Scorer = scorer
	}
	// The façade owns everything matcher-side from here: problem cost
	// tables, the baseline run (ParallelExhaustive, whose workers warm
	// the shared memo for every later stage), the cluster index
	// (seeded like the paper's experiments), and the bounds attached
	// to improvement runs.
	svc, err := match.NewService(sc.Repo,
		match.WithScorer(scorer),
		match.WithMatchConfig(mcfg),
		match.WithThresholds(thresholds),
		match.WithTruth(truth),
		match.WithIndexConfig(ixCfg),
	)
	if err != nil {
		return nil, fmt.Errorf("core: building service: %w", err)
	}
	prob, err := svc.Problem(sc.Personal)
	if err != nil {
		return nil, fmt.Errorf("core: building problem: %w", err)
	}
	s1, curve, err := svc.Baseline(context.Background(), sc.Personal)
	if err != nil {
		return nil, fmt.Errorf("core: exhaustive matching: %w", err)
	}
	return &Pipeline{
		Scenario:   sc,
		Problem:    prob,
		Thresholds: thresholds,
		Truth:      truth,
		svc:        svc,
		S1:         s1,
		S1Curve:    curve,
	}, nil
}

// Service returns the pipeline's matching service façade.
func (pl *Pipeline) Service() *match.Service { return pl.svc }

// Scorer returns the pipeline's shared scoring engine.
func (pl *Pipeline) Scorer() engine.Scorer { return pl.svc.Scorer() }

// MaxDelta returns the top of the threshold sweep.
func (pl *Pipeline) MaxDelta() float64 { return pl.Thresholds[len(pl.Thresholds)-1] }

// Run is the outcome of running one non-exhaustive improvement through
// the pipeline: its answer set, size ratios, true measured curve (the
// pipeline knows the planted truth — the paper could not), and the
// bounds computed WITHOUT that truth.
type Run struct {
	// Name of the improvement.
	Name string
	// Set is the improvement's answer set at the maximum threshold.
	Set *matching.AnswerSet
	// Sizes2[i] = |A_S2(δ_i)|.
	Sizes2 []int
	// Ratios[i] = |A_S2(δ_i)| / |A_S1(δ_i)| (1 when S1 is empty).
	Ratios []float64
	// TrueCurve is the improvement's real measured P/R curve, used
	// only to validate the bounds.
	TrueCurve eval.Curve
	// Bounds are the incremental effectiveness bounds (Section 3.2 +
	// 3.4), as attached by the match service (computed from S1's curve
	// and the sizes alone).
	Bounds bounds.Curve
	// NaiveBounds are the per-threshold bounds (Section 3.1), for
	// comparison.
	NaiveBounds bounds.Curve
	// Stats is the service-reported work of the improvement run.
	Stats match.Stats
}

// RunImprovement executes matcher through the service façade — which
// verifies the subset containment the technique requires and attaches
// the incremental bounds — then adds the experiment-side extras: true
// curve, size ratios, and the naive bounds for comparison.
func (pl *Pipeline) RunImprovement(m matching.Matcher) (*Run, error) {
	return pl.RunImprovementContext(context.Background(), m)
}

// RunImprovementContext is RunImprovement under a caller context.
func (pl *Pipeline) RunImprovementContext(ctx context.Context, m matching.Matcher) (*Run, error) {
	res, err := pl.svc.Match(ctx, match.Request{
		Personal: pl.Scenario.Personal,
		Delta:    pl.MaxDelta(),
		System:   m,
	})
	if err != nil {
		return nil, fmt.Errorf("core: running %s: %w", m.Name(), err)
	}
	set := res.Set
	sizes := make([]int, len(pl.Thresholds))
	ratios := make([]float64, len(pl.Thresholds))
	for i, d := range pl.Thresholds {
		sizes[i] = set.CountAt(d)
		if a1 := pl.S1.CountAt(d); a1 > 0 {
			ratios[i] = float64(sizes[i]) / float64(a1)
		} else {
			ratios[i] = 1
		}
	}
	naive, err := bounds.Naive(bounds.Input{S1: pl.S1Curve, Sizes2: sizes, HOverride: pl.Truth.Size()})
	if err != nil {
		return nil, fmt.Errorf("core: naive bounds for %s: %w", m.Name(), err)
	}
	return &Run{
		Name:        m.Name(),
		Set:         set,
		Sizes2:      sizes,
		Ratios:      ratios,
		TrueCurve:   eval.MeasuredCurve(set, pl.Truth, pl.Thresholds),
		Bounds:      res.Bounds,
		NaiveBounds: naive,
		Stats:       res.Stats,
	}, nil
}

// RunSpec executes a registry-spec improvement ("beam:32",
// "clustered:3") through the façade.
func (pl *Pipeline) RunSpec(spec string) (*Run, error) {
	m, err := pl.svc.Matcher(spec)
	if err != nil {
		return nil, err
	}
	return pl.RunImprovement(m)
}

// ValidateBounds checks that the improvement's true P/R lies inside
// the computed incremental bounds at every threshold — the guarantee
// the paper proves. It returns a descriptive error on the first
// violation.
func (r *Run) ValidateBounds() error {
	for i, pt := range r.Bounds {
		tp := r.TrueCurve[i].Precision
		tr := r.TrueCurve[i].Recall
		if !pt.Contains(tp, tr) {
			return fmt.Errorf("core: %s at δ=%.3f: true (P=%.4f, R=%.4f) outside P[%.4f, %.4f] × R[%.4f, %.4f]",
				r.Name, pt.Delta, tp, tr, pt.WorstP, pt.BestP, pt.WorstR, pt.BestR)
		}
	}
	return nil
}

// StandardImprovements builds the two improvements whose behaviours
// reproduce the paper's S2-one and S2-two (Figure 10), resolved
// through the service's matcher registry:
//
//   - S2-one: beam search (width 32) — retains a smoothly declining
//     fraction of answers as the threshold grows, like the paper's
//     first real system.
//   - S2-two: cluster-restricted search at the default selection
//     (K/6+1 clusters per element) — retains the best-scored answers
//     with high probability but loses most of the tail, like the
//     paper's second, more rigorous system.
func (pl *Pipeline) StandardImprovements() (s2one, s2two matching.Matcher, err error) {
	one, err := pl.svc.Matcher("beam:32")
	if err != nil {
		return nil, nil, err
	}
	two, err := pl.svc.Matcher("clustered")
	if err != nil {
		return nil, nil, err
	}
	return one, two, nil
}

// BeamImprovement returns a beam-search improvement with the given
// width, for parameter sweeps.
func (pl *Pipeline) BeamImprovement(width int) (matching.Matcher, error) {
	return pl.svc.Matcher(fmt.Sprintf("beam:%d", width))
}

// TopkImprovement returns an aggressive-pruning improvement with the
// given margin (the Theobald-style probabilistic top-k family the
// paper cites), for the ablation benchmarks. Under the prefix
// evaluation semantics its answer losses concentrate near the top
// threshold.
func (pl *Pipeline) TopkImprovement(margin float64) (matching.Matcher, error) {
	return pl.svc.Matcher(match.Spec{Family: match.FamilyTopk, Margin: margin}.String())
}
