// Package core wires the substrates into the paper's experimental
// pipeline: generate (or load) a matching scenario, run the exhaustive
// system S1 and its non-exhaustive improvements S2, measure curves and
// answer-size ratios, and compute the effectiveness bounds. The
// figure drivers in figures.go regenerate every evaluation artifact of
// the paper (Figures 5, 6, 8, 9, 10, 11, 12, 13) from this pipeline.
package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/beam"
	"repro/internal/matchers/clustered"
	"repro/internal/matchers/topk"
	"repro/internal/matching"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

// sharedScorers hands out the default scoring engines, keyed by
// (problem, metric): pipelines built over the same corpus under the
// same metric share one memo table. Explicit Options.Scorer /
// Match.Scorer values bypass it. The cache lives for the process and
// never evicts — fine for the experiment drivers this package serves
// (a handful of corpora per run); long-lived services sweeping many
// corpora should thread their own scorers instead.
var sharedScorers = engine.NewCache()

// Pipeline is one fully prepared experiment: scenario, problem, the
// exhaustive system's answers, and its measured curve against the
// planted truth.
type Pipeline struct {
	Scenario   *synth.Scenario
	Problem    *matching.Problem
	Thresholds []float64
	Truth      *eval.Truth
	// scorer is the shared scoring engine every stage of the pipeline
	// draws node-pair scores from: the problem's cost tables, the
	// exhaustive baseline, every improvement run, and the cluster index.
	scorer engine.Scorer
	// S1 is the exhaustive answer set at the maximum threshold.
	S1 *matching.AnswerSet
	// S1Curve is S1's measured P/R curve on the planted truth.
	S1Curve eval.Curve
}

// Options configures NewPipeline. Zero values select the experiment
// defaults (see README.md).
type Options struct {
	// Personal schema; nil selects synth.PersonalLibrary.
	Personal *xmlschema.Schema
	// Synth configures the corpus; zero NumSchemas selects
	// synth.DefaultConfig(Seed) shrunk to 120 schemas.
	Synth synth.Config
	// Match configures the objective; zero selects
	// matching.DefaultConfig.
	Match matching.Config
	// Thresholds of the δ sweep; nil selects eval.Thresholds(0, 0.45, 15).
	Thresholds []float64
	// Scorer is the shared scoring engine. Nil selects a fresh memoized
	// engine over the default name metric (or Match.Scorer when that is
	// set). Pass one scorer to several pipelines to share its cache
	// across scenarios that reuse element names.
	Scorer engine.Scorer
	// Seed for the default synth config when Synth is zero.
	Seed uint64
}

// NewPipeline generates the scenario, runs the exhaustive matcher at
// the maximum threshold, and measures its curve.
func NewPipeline(opt Options) (*Pipeline, error) {
	personal := opt.Personal
	if personal == nil {
		personal = synth.PersonalLibrary()
	}
	scfg := opt.Synth
	if scfg.NumSchemas == 0 {
		scfg = synth.DefaultConfig(opt.Seed)
		scfg.NumSchemas = 120
	}
	mcfg := opt.Match
	if mcfg.NameWeight == 0 && mcfg.StructWeight == 0 {
		scorer := mcfg.Scorer
		mcfg = matching.DefaultConfig()
		mcfg.Scorer = scorer
	}
	scorer := opt.Scorer
	if scorer == nil {
		scorer = mcfg.Scorer
	}
	if scorer == nil {
		// Default scorers come from the process-wide (problem, metric)
		// cache: two pipelines over the same corpus share one memo table
		// even when the caller threads nothing. The key covers the synth
		// parameters that shape the corpus; a residual collision (custom
		// personal schemas sharing a name, or custom synonym dicts) still
		// scores correctly — scorers are pure per metric — it merely
		// blends cache stats across the colliding corpora.
		scorer = sharedScorers.Scorer(
			fmt.Sprintf("%s/synth(seed=%d,n=%d,plant=%g,size=%d-%d,branch=%d,perturb=%g)",
				personal.Name, scfg.Seed, scfg.NumSchemas, scfg.PlantRate,
				scfg.MinSize, scfg.MaxSize, scfg.MaxChildren, scfg.PerturbStrength), nil)
	}
	mcfg.Scorer = scorer
	thresholds := opt.Thresholds
	if thresholds == nil {
		thresholds = eval.Thresholds(0, 0.45, 15)
	}
	sc, err := synth.Generate(personal, scfg)
	if err != nil {
		return nil, fmt.Errorf("core: generating scenario: %w", err)
	}
	prob, err := matching.NewProblem(sc.Personal, sc.Repo, mcfg)
	if err != nil {
		return nil, fmt.Errorf("core: building problem: %w", err)
	}
	maxDelta := thresholds[len(thresholds)-1]
	// ParallelExhaustive produces exactly the exhaustive answer set;
	// its workers share the pipeline scorer's memo table, so the
	// baseline run doubles as the cache warm-up for every later stage.
	s1, err := matching.ParallelExhaustive{}.Match(prob, maxDelta)
	if err != nil {
		return nil, fmt.Errorf("core: exhaustive matching: %w", err)
	}
	truth := eval.NewTruth(sc.TruthKeys())
	curve := eval.MeasuredCurve(s1, truth, thresholds)
	if err := eval.CheckCurve(curve); err != nil {
		return nil, fmt.Errorf("core: S1 curve invalid: %w", err)
	}
	return &Pipeline{
		Scenario:   sc,
		Problem:    prob,
		Thresholds: thresholds,
		Truth:      truth,
		scorer:     scorer,
		S1:         s1,
		S1Curve:    curve,
	}, nil
}

// Scorer returns the pipeline's shared scoring engine.
func (pl *Pipeline) Scorer() engine.Scorer { return pl.scorer }

// MaxDelta returns the top of the threshold sweep.
func (pl *Pipeline) MaxDelta() float64 { return pl.Thresholds[len(pl.Thresholds)-1] }

// Run is the outcome of running one non-exhaustive improvement through
// the pipeline: its answer set, size ratios, true measured curve (the
// pipeline knows the planted truth — the paper could not), and the
// bounds computed WITHOUT that truth.
type Run struct {
	// Name of the improvement.
	Name string
	// Set is the improvement's answer set at the maximum threshold.
	Set *matching.AnswerSet
	// Sizes2[i] = |A_S2(δ_i)|.
	Sizes2 []int
	// Ratios[i] = |A_S2(δ_i)| / |A_S1(δ_i)| (1 when S1 is empty).
	Ratios []float64
	// TrueCurve is the improvement's real measured P/R curve, used
	// only to validate the bounds.
	TrueCurve eval.Curve
	// Bounds are the incremental effectiveness bounds (Section 3.2 +
	// 3.4), computed from S1's curve and the sizes alone.
	Bounds bounds.Curve
	// NaiveBounds are the per-threshold bounds (Section 3.1), for
	// comparison.
	NaiveBounds bounds.Curve
}

// RunImprovement executes matcher, verifies the subset containment the
// technique requires, and computes bounds and the true curve.
func (pl *Pipeline) RunImprovement(m matching.Matcher) (*Run, error) {
	set, err := m.Match(pl.Problem, pl.MaxDelta())
	if err != nil {
		return nil, fmt.Errorf("core: running %s: %w", m.Name(), err)
	}
	if err := set.SubsetOf(pl.S1); err != nil {
		return nil, fmt.Errorf("core: %s is not a valid improvement: %w", m.Name(), err)
	}
	sizes := make([]int, len(pl.Thresholds))
	ratios := make([]float64, len(pl.Thresholds))
	for i, d := range pl.Thresholds {
		sizes[i] = set.CountAt(d)
		if a1 := pl.S1.CountAt(d); a1 > 0 {
			ratios[i] = float64(sizes[i]) / float64(a1)
		} else {
			ratios[i] = 1
		}
	}
	in := bounds.Input{S1: pl.S1Curve, Sizes2: sizes, HOverride: pl.Truth.Size()}
	inc, err := bounds.Incremental(in)
	if err != nil {
		return nil, fmt.Errorf("core: incremental bounds for %s: %w", m.Name(), err)
	}
	naive, err := bounds.Naive(in)
	if err != nil {
		return nil, fmt.Errorf("core: naive bounds for %s: %w", m.Name(), err)
	}
	return &Run{
		Name:        m.Name(),
		Set:         set,
		Sizes2:      sizes,
		Ratios:      ratios,
		TrueCurve:   eval.MeasuredCurve(set, pl.Truth, pl.Thresholds),
		Bounds:      inc,
		NaiveBounds: naive,
	}, nil
}

// ValidateBounds checks that the improvement's true P/R lies inside
// the computed incremental bounds at every threshold — the guarantee
// the paper proves. It returns a descriptive error on the first
// violation.
func (r *Run) ValidateBounds() error {
	for i, pt := range r.Bounds {
		tp := r.TrueCurve[i].Precision
		tr := r.TrueCurve[i].Recall
		if !pt.Contains(tp, tr) {
			return fmt.Errorf("core: %s at δ=%.3f: true (P=%.4f, R=%.4f) outside P[%.4f, %.4f] × R[%.4f, %.4f]",
				r.Name, pt.Delta, tp, tr, pt.WorstP, pt.BestP, pt.WorstR, pt.BestR)
		}
	}
	return nil
}

// StandardImprovements builds the two improvements whose behaviours
// reproduce the paper's S2-one and S2-two (Figure 10):
//
//   - S2-one: beam search (width 32) — retains a smoothly declining
//     fraction of answers as the threshold grows, like the paper's
//     first real system.
//   - S2-two: cluster-restricted search — retains the best-scored
//     answers with high probability but loses most of the tail, like
//     the paper's second, more rigorous system.
func (pl *Pipeline) StandardImprovements() (s2one, s2two matching.Matcher, err error) {
	one, err := beam.New(32)
	if err != nil {
		return nil, nil, err
	}
	ix, err := clustered.BuildIndex(pl.Scenario.Repo, clustered.IndexConfig{Seed: 17, Scorer: pl.scorer})
	if err != nil {
		return nil, nil, err
	}
	two, err := clustered.New(ix, ix.K()/6+1, pl.scorer)
	if err != nil {
		return nil, nil, err
	}
	return one, two, nil
}

// BeamImprovement returns a beam-search improvement with the given
// width, for parameter sweeps.
func (pl *Pipeline) BeamImprovement(width int) (matching.Matcher, error) {
	return beam.New(width)
}

// TopkImprovement returns an aggressive-pruning improvement with the
// given margin (the Theobald-style probabilistic top-k family the
// paper cites), for the ablation benchmarks. Under the prefix
// evaluation semantics its answer losses concentrate near the top
// threshold.
func (pl *Pipeline) TopkImprovement(margin float64) (matching.Matcher, error) {
	return topk.New(margin)
}
