package core

import (
	"strconv"
	"testing"

	"repro/internal/eval"
	"repro/internal/synth"
)

func TestPerturbationAnalysis(t *testing.T) {
	pl := testPipeline(t, 41)
	res, err := PerturbationAnalysis(pl)
	if err != nil {
		t.Fatal(err)
	}
	// 5 kinds + edge-stretch row.
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	totalPlanted := 0
	for _, row := range res.Rows[:5] {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		totalPlanted += n
		// Recall at max δ ≥ recall at mid δ (monotone answer sets).
		if row[2] != "-" && row[3] != "-" {
			mid, _ := strconv.ParseFloat(row[2], 64)
			max, _ := strconv.ParseFloat(row[3], 64)
			if max+1e-9 < mid {
				t.Errorf("%s: recall@max %v < recall@mid %v", row[0], max, mid)
			}
		}
	}
	// Every planted mapping has at least one kind entry (none counts),
	// so buckets cover at least |H| in total.
	if totalPlanted < pl.Scenario.H() {
		t.Errorf("kind buckets cover %d < |H| = %d", totalPlanted, pl.Scenario.H())
	}
}

func TestPerturbationAnalysisUnperturbedRecall(t *testing.T) {
	// With zero perturbation, every planted mapping is verbatim and
	// scores 0 — recall of the "none" bucket must be 1 even at δ=0.
	scfg := synth.DefaultConfig(43)
	scfg.NumSchemas = 30
	scfg.PerturbStrength = 0
	pl, err := NewPipeline(Options{Synth: scfg, Thresholds: eval.Thresholds(0, 0.45, 9)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PerturbationAnalysis(pl)
	if err != nil {
		t.Fatal(err)
	}
	noneRow := res.Rows[0]
	if noneRow[0] != "none" {
		t.Fatalf("unexpected row order: %v", res.Rows)
	}
	if noneRow[3] != "1.0000" {
		t.Errorf("verbatim plants recall@max = %s, want 1.0000", noneRow[3])
	}
	// All other kind buckets must be empty.
	for _, row := range res.Rows[1:5] {
		if row[1] != "0" {
			t.Errorf("kind %s has %s planted at strength 0", row[0], row[1])
		}
	}
}

func TestPerturbationAnalysisRequiresProvenance(t *testing.T) {
	pl := testPipeline(t, 45)
	pl.Scenario.Provenance = nil
	if _, err := PerturbationAnalysis(pl); err == nil {
		t.Error("missing provenance should error")
	}
}
