// Package beam implements the beam-search non-exhaustive matcher — the
// iMap-style improvement the paper cites (Dhamankar et al., SIGMOD
// 2004) as a canonical example of a system that improves efficiency
// without changing the objective function.
//
// The matcher assigns personal-schema elements level by level, keeping
// only the Width best partial mappings per repository schema after each
// level. Scores of surviving complete mappings are identical to the
// exhaustive system's (the same cost contributions accumulate); the
// search merely discards partial states, so the answer set is a subset
// of the exhaustive one — the containment the effectiveness bounds
// technique requires. All scores are drawn from the Problem's
// engine.Scorer-built cost tables, never from a string metric directly.
package beam

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/matching"
	"repro/internal/xmlschema"
)

// Matcher is the beam-search system. The zero value is invalid; use New.
type Matcher struct {
	width int
}

// New returns a beam matcher keeping width partial states per level.
// It returns an error for width < 1.
func New(width int) (*Matcher, error) {
	if width < 1 {
		return nil, fmt.Errorf("beam: width %d < 1", width)
	}
	return &Matcher{width: width}, nil
}

// Name implements matching.Matcher: the canonical registry spec
// ("beam:8").
func (b *Matcher) Name() string { return fmt.Sprintf("beam:%d", b.width) }

// Width returns the beam width.
func (b *Matcher) Width() int { return b.width }

// state is one partial mapping during the level-wise search.
type state struct {
	targets []int // assigned repository element IDs, one per level so far
	cost    float64
}

// Match implements matching.Matcher.
func (b *Matcher) Match(p *matching.Problem, delta float64) (*matching.AnswerSet, error) {
	return b.MatchContext(context.Background(), p, delta)
}

// MatchContext implements matching.Matcher: the level-wise expansion
// polls ctx periodically and returns ctx.Err() when cancelled.
func (b *Matcher) MatchContext(ctx context.Context, p *matching.Problem, delta float64) (*matching.AnswerSet, error) {
	set, _, err := b.MatchStatsContext(ctx, p, delta)
	return set, err
}

// MatchStatsContext implements matching.StatsMatcher. Candidates counts
// the partial-state expansions examined, Pruned the expansions cut by
// the threshold, Yielded the complete mappings kept.
func (b *Matcher) MatchStatsContext(ctx context.Context, p *matching.Problem, delta float64) (*matching.AnswerSet, matching.SearchStats, error) {
	var answers []matching.Answer
	var st matching.SearchStats
	done := ctx.Done()
	for _, s := range p.Repo.Schemas() {
		if done != nil && ctx.Err() != nil {
			return nil, st, ctx.Err()
		}
		if p.CandidateSkip(s.Name, delta) {
			// Provably answer-free within delta: the unfiltered beam
			// would prune every frontier entry of this schema anyway.
			continue
		}
		if err := b.matchSchema(ctx, p, s, delta, &answers, &st); err != nil {
			return nil, st, err
		}
	}
	return matching.NewAnswerSet(answers), st, nil
}

func (b *Matcher) matchSchema(ctx context.Context, p *matching.Problem, s *xmlschema.Schema, delta float64, out *[]matching.Answer, st *matching.SearchStats) error {
	m := p.M()
	done := ctx.Done()
	stopped := false
	// Level 0: the personal root may map to any element.
	var frontier []state
	for _, re := range s.Elements() {
		st.Candidates++
		c := p.NameCost(s, 0, re.ID())
		if c > delta+1e-12 {
			st.Pruned++
			continue
		}
		frontier = append(frontier, state{targets: []int{re.ID()}, cost: c})
	}
	frontier = b.shrink(frontier)

	for pid := 1; pid < m && len(frontier) > 0; pid++ {
		par := p.ParentOf(pid)
		var next []state
		for _, cur := range frontier {
			parentImg := s.ByID(cur.targets[par])
			maxDepth := parentImg.Depth() + p.Config().MaxDepthStretch
			parentImg.Walk(func(re *xmlschema.Element) bool {
				if stopped {
					return false
				}
				if re == parentImg {
					return true
				}
				if re.Depth() > maxDepth {
					return false
				}
				rid := re.ID()
				for _, t := range cur.targets {
					if t == rid {
						return true // injectivity
					}
				}
				st.Candidates++
				if done != nil && st.Candidates&matching.CancelCheckMask == 0 && ctx.Err() != nil {
					stopped = true
					return false
				}
				c := cur.cost + p.NameCost(s, pid, rid) + p.EdgeCost(re.Depth()-parentImg.Depth())
				if c > delta+1e-12 {
					st.Pruned++
					return true
				}
				nt := make([]int, pid+1)
				copy(nt, cur.targets)
				nt[pid] = rid
				next = append(next, state{targets: nt, cost: c})
				return true
			})
			if stopped {
				return ctx.Err()
			}
		}
		frontier = b.shrink(next)
	}
	for _, cur := range frontier {
		if len(cur.targets) == m {
			st.Yielded++
			*out = append(*out, matching.Answer{
				Mapping: matching.Mapping{Schema: s.Name, Targets: cur.targets},
				Score:   cur.cost,
			})
		}
	}
	return nil
}

// shrink keeps the width best states, breaking cost ties by target
// sequence so runs are deterministic.
func (b *Matcher) shrink(states []state) []state {
	if len(states) <= b.width {
		return states
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].cost != states[j].cost {
			return states[i].cost < states[j].cost
		}
		return lessTargets(states[i].targets, states[j].targets)
	})
	return states[:b.width]
}

func lessTargets(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
