package beam

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/xmlschema"
)

// tinyProblem: personal a/{b} against one schema with two plausible
// homes, so beam ordering is observable.
func tinyProblem(t *testing.T) *matching.Problem {
	t.Helper()
	personal, err := xmlschema.NewSchema("p",
		xmlschema.NewElement("alpha").Add(xmlschema.NewElement("beta")))
	if err != nil {
		t.Fatal(err)
	}
	repo := xmlschema.NewRepository()
	s, err := xmlschema.NewSchema("r",
		xmlschema.NewElement("alpha").Add(
			xmlschema.NewElement("beta"),
			xmlschema.NewElement("alphax").Add(xmlschema.NewElement("betax")),
		))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(s); err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(personal, repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestBeamKeepsBestMapping(t *testing.T) {
	prob := tinyProblem(t)
	m, err := New(1) // keep only the single best partial per level
	if err != nil {
		t.Fatal(err)
	}
	set, err := m.Match(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("beam(1) kept %d answers, want 1", set.Len())
	}
	best := set.All()[0]
	// The exact-name mapping alpha→alpha(0), beta→beta(1) must survive.
	if best.Mapping.Targets[0] != 0 || best.Mapping.Targets[1] != 1 {
		t.Errorf("beam(1) kept %v, want the exact mapping", best.Mapping)
	}
	if best.Score > 0.2 {
		t.Errorf("kept score %v, want near 0", best.Score)
	}
}

func TestBeamWidthCapsAnswersPerSchema(t *testing.T) {
	prob := tinyProblem(t)
	for _, w := range []int{1, 2, 3} {
		m, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		set, err := m.Match(prob, 2)
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() > w {
			t.Errorf("beam(%d) produced %d answers from one schema", w, set.Len())
		}
	}
}

func TestBeamEqualsExhaustiveWhenWide(t *testing.T) {
	prob := tinyProblem(t)
	s1, err := matching.Exhaustive{}.Match(prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Match(prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s1.Len() {
		t.Errorf("infinite beam found %d, exhaustive %d", s2.Len(), s1.Len())
	}
	if err := s2.SubsetOf(s1); err != nil {
		t.Error(err)
	}
}

func TestBeamRespectsThreshold(t *testing.T) {
	prob := tinyProblem(t)
	m, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	set, err := m.Match(prob, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range set.All() {
		if a.Score > 0.05+1e-9 {
			t.Errorf("answer %v above threshold: %v", a.Mapping, a.Score)
		}
	}
}

func TestBeamEmptyRepo(t *testing.T) {
	personal, _ := xmlschema.NewSchema("p", xmlschema.NewElement("x"))
	prob, err := matching.NewProblem(personal, xmlschema.NewRepository(), matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(4)
	set, err := m.Match(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("empty repo produced %d answers", set.Len())
	}
}

func TestLessTargets(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 3}, true},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1}, false},
		{[]int{1, 2}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := lessTargets(c.a, c.b); got != c.want {
			t.Errorf("lessTargets(%v,%v) = %v", c.a, c.b, got)
		}
	}
}
