// Index persistence. State exports the part of an Index that cannot
// be recomputed cheaply — the medoid set the clustering fixed and the
// per-name membership — and Restore rebuilds a serving Index from it
// over a recovered repository. The trust discipline mirrors
// Apply/Rebase parity across the process boundary: membership is the
// deterministic function "name → nearest medoid", so Restore verifies
// every persisted assignment against that rule with the live scorer
// and rejects the whole state on the first divergence (a state written
// under a different metric, or bit-rotted past its checksums, must not
// serve). A fresh BuildIndex is NOT the right reference here: after
// incremental churn the name population differs from the one the
// medoids were fit on, so re-clustering would pick different medoids
// and flag perfectly healthy persisted state.

package clustered

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/xmlschema"
)

// State is the portable form of an Index: everything Restore needs to
// reconstruct a serving index over the same repository content,
// independent of process or machine. It is a value object — safe to
// serialize field by field.
type State struct {
	// K, Seed, Workers and RebuildFraction reproduce the build
	// configuration, so a restored index re-clusters (on drift) exactly
	// as the original would have.
	K               int
	Seed            uint64
	Workers         int
	RebuildFraction float64
	// Silhouette is the quality of the last full build, carried for
	// reports only.
	Silhouette float64
	// BaseNames and Drift restore the rebuild-threshold bookkeeping, so
	// a restart does not reset accumulated churn toward re-clustering.
	BaseNames int
	Drift     int
	// MedoidNames is the fixed medoid set, indexed by cluster. A medoid
	// name may no longer occur in the repository (incremental churn
	// keeps the medoid set while names leave) — it still anchors its
	// cluster.
	MedoidNames []string
	// Assign maps every distinct element name of the repository to its
	// cluster.
	Assign map[string]int
}

// State exports the index in portable form. The returned value shares
// nothing with the index and may be serialized or mutated freely.
func (ix *Index) State() *State {
	st := &State{
		K:               ix.clustering.K,
		Seed:            ix.cfg.Seed,
		Workers:         ix.cfg.Workers,
		RebuildFraction: ix.cfg.RebuildFraction,
		Silhouette:      ix.silhouette,
		BaseNames:       ix.baseNames,
		Drift:           ix.drift,
		MedoidNames:     append([]string(nil), ix.medoidNames...),
		Assign:          make(map[string]int, len(ix.nameCluster)),
	}
	for n, c := range ix.nameCluster {
		st.Assign[n] = c
	}
	return st
}

// Restore rebuilds a serving Index over repo from a persisted State.
// The state must describe exactly repo's distinct-name population —
// missing or surplus names fail — and every assignment is verified
// against the nearest-medoid rule with scorer (nil selects a fresh
// memoized engine): the same membership discipline Rebase rebuilds and
// ParityCheck enforces, now applied to state that crossed a process
// boundary. Any divergence rejects the state; the caller falls back to
// a lazy from-scratch build.
func Restore(repo *xmlschema.Repository, st State, scorer engine.Scorer) (*Index, error) {
	if repo == nil {
		return nil, fmt.Errorf("clustered: nil repository")
	}
	if st.K < 1 || st.K != len(st.MedoidNames) {
		return nil, fmt.Errorf("clustered: restore state has K=%d with %d medoids", st.K, len(st.MedoidNames))
	}
	nameCount := countNames(repo)
	if len(nameCount) == 0 {
		return nil, fmt.Errorf("clustered: empty repository")
	}
	if len(nameCount) != len(st.Assign) {
		return nil, fmt.Errorf("clustered: restore state assigns %d names, repository has %d",
			len(st.Assign), len(nameCount))
	}
	if scorer == nil {
		scorer = engine.New(nil)
	}
	names := sortedNames(nameCount)
	nameCluster := make(map[string]int, len(names))
	assign := make([]int, len(names))
	for i, n := range names {
		c, ok := st.Assign[n]
		if !ok {
			return nil, fmt.Errorf("clustered: restore state misses repository name %q", n)
		}
		if c < 0 || c >= st.K {
			return nil, fmt.Errorf("clustered: restore state assigns %q to cluster %d of %d", n, c, st.K)
		}
		// The parity self-check: persisted membership must equal the
		// nearest-medoid assignment the live scorer computes.
		if want := cluster.NearestMedoid(n, st.MedoidNames, scorer); want != c {
			return nil, fmt.Errorf("clustered: restored membership of %q is cluster %d, nearest medoid is %d", n, c, want)
		}
		nameCluster[n] = c
		assign[i] = c
	}
	medoidNames := append([]string(nil), st.MedoidNames...)
	// Medoid item indices are only reconstructible for medoids still in
	// the name population; the index never reads them after build, so
	// absent ones stay -1.
	medoids := make([]int, st.K)
	for c := range medoids {
		medoids[c] = -1
	}
	for i, n := range names {
		for c, mn := range medoidNames {
			if n == mn {
				medoids[c] = i
			}
		}
	}
	baseNames := st.BaseNames
	if baseNames < 1 {
		baseNames = len(names)
	}
	return &Index{
		repo:        repo,
		names:       names,
		clustering:  &cluster.Clustering{Assign: assign, K: st.K, Medoids: medoids},
		medoidNames: medoidNames,
		nameCluster: nameCluster,
		silhouette:  st.Silhouette,
		scorer:      scorer,
		cfg: IndexConfig{
			K:               st.K,
			Scorer:          scorer,
			Workers:         st.Workers,
			Seed:            st.Seed,
			RebuildFraction: st.RebuildFraction,
		},
		nameCount: nameCount,
		baseNames: baseNames,
		drift:     st.Drift,
	}, nil
}

// SortedAssignments returns the state's (name, cluster) pairs sorted
// by name — the deterministic iteration serializers need.
func (st *State) SortedAssignments() (names []string, clusters []int) {
	names = make([]string, 0, len(st.Assign))
	for n := range st.Assign {
		names = append(names, n)
	}
	sort.Strings(names)
	clusters = make([]int, len(names))
	for i, n := range names {
		clusters[i] = st.Assign[n]
	}
	return names, clusters
}
