package clustered

import (
	"testing"

	"repro/internal/xmlschema"
)

// nameRepo builds a repository whose element names form two obvious
// lexical families so the clustering is predictable.
func nameRepo(t *testing.T) *xmlschema.Repository {
	t.Helper()
	repo := xmlschema.NewRepository()
	a, err := xmlschema.NewSchema("a",
		xmlschema.NewElement("customer").Add(
			xmlschema.NewElement("customername"),
			xmlschema.NewElement("customerid"),
		))
	if err != nil {
		t.Fatal(err)
	}
	b, err := xmlschema.NewSchema("b",
		xmlschema.NewElement("flight").Add(
			xmlschema.NewElement("flightno"),
			xmlschema.NewElement("flightdate"),
		))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*xmlschema.Schema{a, b} {
		if err := repo.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

func TestBuildIndexClustersNameFamilies(t *testing.T) {
	repo := nameRepo(t)
	ix, err := BuildIndex(repo, IndexConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.K() != 2 {
		t.Fatalf("K = %d", ix.K())
	}
	if ix.DistinctNames() != 6 {
		t.Errorf("DistinctNames = %d, want 6", ix.DistinctNames())
	}
	// The three customer* names must share a cluster, likewise flight*.
	cust := ix.ClusterOfName("customer")
	if ix.ClusterOfName("customername") != cust || ix.ClusterOfName("customerid") != cust {
		t.Error("customer family split across clusters")
	}
	fl := ix.ClusterOfName("flight")
	if ix.ClusterOfName("flightno") != fl || ix.ClusterOfName("flightdate") != fl {
		t.Error("flight family split across clusters")
	}
	if cust == fl {
		t.Error("both families in one cluster")
	}
	if ix.Silhouette() <= 0 {
		t.Errorf("silhouette = %v, want positive for separable families", ix.Silhouette())
	}
}

func TestClusterOfByRef(t *testing.T) {
	repo := nameRepo(t)
	ix, err := BuildIndex(repo, IndexConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := repo.Schema("a")
	ref := xmlschema.RefOf(a, a.FindByName("customername")[0])
	if got := ix.ClusterOf(ref); got != ix.ClusterOfName("customername") {
		t.Errorf("ClusterOf(ref) = %d", got)
	}
	if got := ix.ClusterOf(xmlschema.Ref{Schema: "nope", ID: 0}); got != -1 {
		t.Errorf("unknown ref cluster = %d, want -1", got)
	}
	if got := ix.ClusterOfName("unknownname"); got != -1 {
		t.Errorf("unknown name cluster = %d, want -1", got)
	}
}

func TestBuildIndexDefaultsK(t *testing.T) {
	repo := nameRepo(t)
	ix, err := BuildIndex(repo, IndexConfig{Seed: 1}) // K unset
	if err != nil {
		t.Fatal(err)
	}
	if ix.K() < 2 || ix.K() > ix.DistinctNames() {
		t.Errorf("defaulted K = %d for %d names", ix.K(), ix.DistinctNames())
	}
	// K above the name count is clamped.
	ix2, err := BuildIndex(repo, IndexConfig{K: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix2.K() != ix2.DistinctNames() {
		t.Errorf("oversized K not clamped: %d", ix2.K())
	}
}

func TestBuildIndexEmptyRepo(t *testing.T) {
	if _, err := BuildIndex(xmlschema.NewRepository(), IndexConfig{}); err == nil {
		t.Error("empty repository should error")
	}
}

func TestSelectedClustersDeterministicOrder(t *testing.T) {
	repo := nameRepo(t)
	ix, err := BuildIndex(repo, IndexConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ix, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := m.SelectedClusters("customer")
	b := m.SelectedClusters("customer")
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Errorf("selection not deterministic: %v vs %v", a, b)
	}
	// The customer cluster must rank first for a customer query.
	if a[0] != ix.ClusterOfName("customer") {
		t.Errorf("best cluster for 'customer' = %d, want %d", a[0], ix.ClusterOfName("customer"))
	}
}
