// Incremental index maintenance. A repository snapshot swap changes a
// handful of schemas; rebuilding the whole cluster index (distance
// matrix + k-medoids, quadratic in distinct names) for every swap
// would dwarf the update itself. Apply instead patches the index: the
// clustering (the medoid set) is kept fixed, names that vanished from
// the repository leave their clusters, and new names join the cluster
// of their nearest medoid — exactly the assignment rule k-medoids
// itself terminates on, so membership stays the deterministic function
// "name → nearest medoid" and an incrementally maintained index is
// bit-identical to rebuilding membership from scratch over the same
// medoids (Rebase, which ParityCheck verifies). Clustering quality can
// still drift as the name population shifts, so Apply re-clusters from
// scratch once cumulative churn crosses IndexConfig.RebuildFraction.

package clustered

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/xmlschema"
)

// Repository returns the repository the index currently serves.
func (ix *Index) Repository() *xmlschema.Repository { return ix.repo }

// HasName reports whether any element of the index's repository
// carries the given name.
func (ix *Index) HasName(name string) bool { return ix.nameCount[name] > 0 }

// Drift returns the number of distinct names added plus removed since
// the last full (re)build — the quantity Apply's rebuild threshold is
// compared against.
func (ix *Index) Drift() int { return ix.drift }

// Apply returns a new index serving repo, patched by the given
// snapshot diff: elements of removed and replaced schemas leave the
// index, elements of added and replacement schemas join it, and only
// names whose global refcount crossed zero change cluster membership
// (new names are assigned to their nearest medoid). The receiver is
// not modified and keeps serving in-flight searches against the old
// repository. When cumulative drift since the last full build exceeds
// the configured RebuildFraction, Apply falls back to a full BuildIndex
// over repo with the original configuration (sharing the scorer, so
// the memo stays warm).
//
// repo must be the repository the diff leads to; a diff inconsistent
// with the index's refcounts (e.g. removing a schema it never held) is
// an error.
func (ix *Index) Apply(repo *xmlschema.Repository, diff xmlschema.Diff) (*Index, error) {
	if repo == nil {
		return nil, fmt.Errorf("clustered: nil repository")
	}
	if diff.Empty() {
		nix := *ix
		nix.repo = repo
		return &nix, nil
	}

	counts := make(map[string]int, len(ix.nameCount))
	for n, c := range ix.nameCount {
		counts[n] = c
	}
	var addedNames, removedNames []string
	dec := func(s *xmlschema.Schema) error {
		var bad error
		s.Walk(func(e *xmlschema.Element) bool {
			counts[e.Name]--
			switch {
			case counts[e.Name] == 0:
				removedNames = append(removedNames, e.Name)
				delete(counts, e.Name)
			case counts[e.Name] < 0:
				bad = fmt.Errorf("clustered: diff removes name %q the index does not hold", e.Name)
				return false
			}
			return true
		})
		return bad
	}
	inc := func(s *xmlschema.Schema) {
		s.Walk(func(e *xmlschema.Element) bool {
			counts[e.Name]++
			if counts[e.Name] == 1 {
				addedNames = append(addedNames, e.Name)
			}
			return true
		})
	}
	for _, s := range diff.Removed {
		if err := dec(s); err != nil {
			return nil, err
		}
	}
	for _, ch := range diff.Replaced {
		if err := dec(ch.Old); err != nil {
			return nil, err
		}
	}
	for _, ch := range diff.Replaced {
		inc(ch.New)
	}
	for _, s := range diff.Added {
		inc(s)
	}
	// A name can bounce 0→1→0 (or 1→0→1) within one diff; keep only
	// names whose presence really changed against the index.
	addedNames = filterNames(addedNames, func(n string) bool {
		return counts[n] > 0 && ix.nameCount[n] == 0
	})
	removedNames = filterNames(removedNames, func(n string) bool {
		return counts[n] == 0 && ix.nameCount[n] > 0
	})
	if len(counts) == 0 {
		return nil, fmt.Errorf("clustered: diff empties the repository")
	}

	drift := ix.drift + len(addedNames) + len(removedNames)
	frac := ix.cfg.RebuildFraction
	if frac == 0 {
		frac = DefaultRebuildFraction
	}
	if frac >= 0 && float64(drift) > frac*float64(ix.baseNames) {
		return BuildIndex(repo, ix.cfg)
	}

	nameCluster := make(map[string]int, len(counts))
	for n, c := range ix.nameCluster {
		nameCluster[n] = c
	}
	for _, n := range removedNames {
		delete(nameCluster, n)
	}
	for _, n := range addedNames {
		nameCluster[n] = ix.nearestMedoid(n)
	}
	nix := &Index{
		repo:        repo,
		names:       sortedNames(counts),
		clustering:  ix.clustering,
		medoidNames: ix.medoidNames,
		nameCluster: nameCluster,
		silhouette:  ix.silhouette,
		scorer:      ix.scorer,
		cfg:         ix.cfg,
		nameCount:   counts,
		baseNames:   ix.baseNames,
		drift:       drift,
	}
	if ix.cfg.ParityCheck {
		ref, err := ix.Rebase(repo)
		if err != nil {
			return nil, fmt.Errorf("clustered: parity reference: %w", err)
		}
		if err := membershipEqual(nix, ref); err != nil {
			return nil, fmt.Errorf("clustered: incremental apply diverged from fresh membership build: %w", err)
		}
	}
	return nix, nil
}

// Rebase rebuilds the index's membership from scratch over repo while
// keeping the clustering (the medoid set) fixed: every distinct name
// of repo is assigned to its nearest medoid. It is the from-scratch
// reference Apply must agree with — Apply(diff) over any diff sequence
// leading to repo yields the same membership — and doubles as a repair
// path when no diff is available.
func (ix *Index) Rebase(repo *xmlschema.Repository) (*Index, error) {
	if repo == nil {
		return nil, fmt.Errorf("clustered: nil repository")
	}
	counts := countNames(repo)
	if len(counts) == 0 {
		return nil, fmt.Errorf("clustered: empty repository")
	}
	nameCluster := make(map[string]int, len(counts))
	for n := range counts {
		nameCluster[n] = ix.nearestMedoid(n)
	}
	return &Index{
		repo:        repo,
		names:       sortedNames(counts),
		clustering:  ix.clustering,
		medoidNames: ix.medoidNames,
		nameCluster: nameCluster,
		silhouette:  ix.silhouette,
		scorer:      ix.scorer,
		cfg:         ix.cfg,
		nameCount:   counts,
		baseNames:   ix.baseNames,
		drift:       ix.drift,
	}, nil
}

// Derive returns a sub-repository index sharing the receiver's
// clustering: every distinct name of repo (whose schemas must be drawn
// from the same name population the receiver's medoids were fit on —
// typically a shard of the receiver's repository) is assigned to its
// nearest medoid, exactly as Rebase does, and the re-cluster fallback
// of Apply is disabled on the derived index. Pinning the fallback is
// what keeps a family of indexes derived from one clustering
// merge-compatible forever: a shard-local re-cluster would give that
// shard different medoids than its siblings, and a search scattered
// across the family would stop agreeing with the same search over a
// single repository-wide index. Quality-driven re-clustering therefore
// happens at the level of the index Derive was called on; derived
// indexes follow it by re-deriving.
func (ix *Index) Derive(repo *xmlschema.Repository) (*Index, error) {
	nix, err := ix.Rebase(repo)
	if err != nil {
		return nil, err
	}
	nix.cfg.RebuildFraction = -1
	return nix, nil
}

// SameClustering reports whether two indexes share one clustering (the
// same medoid set, by identity). Incremental Apply, Rebase and Derive
// all preserve the clustering; only a full (re)build replaces it.
func (ix *Index) SameClustering(o *Index) bool {
	return o != nil && ix.clustering == o.clustering
}

// nearestMedoid returns the cluster whose medoid name is nearest to
// name, by the package-shared k-medoids assignment rule
// (cluster.NearestMedoid: distance-matrix argument orientation, zero
// self-distance, strict-< lowest-index tie-break). Existing assignments
// already satisfy this rule — k-medoids terminates on a full
// nearest-medoid assignment — which is what makes incremental insertion
// equivalent to a fresh build.
func (ix *Index) nearestMedoid(name string) int {
	return cluster.NearestMedoid(name, ix.medoidNames, ix.scorer)
}

// membershipEqual reports (as an error) the first divergence between
// two indexes' name sets or cluster memberships.
func membershipEqual(a, b *Index) error {
	if len(a.nameCluster) != len(b.nameCluster) {
		return fmt.Errorf("%d names vs %d", len(a.nameCluster), len(b.nameCluster))
	}
	for n, ca := range a.nameCluster {
		cb, ok := b.nameCluster[n]
		if !ok {
			return fmt.Errorf("name %q missing from reference", n)
		}
		if ca != cb {
			return fmt.Errorf("name %q in cluster %d vs %d", n, ca, cb)
		}
	}
	return nil
}

// filterNames keeps the names satisfying keep, de-duplicated.
func filterNames(names []string, keep func(string) bool) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] && keep(n) {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
