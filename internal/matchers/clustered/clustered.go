// Package clustered implements the cluster-restricted non-exhaustive
// matcher — the paper authors' own efficiency technique (Smiljanić et
// al., WIRI 2006): repository elements are clustered by name
// similarity offline; at query time each personal-schema element
// selects the clusters whose medoids resemble it best, and the search
// considers only elements of selected clusters. Mappings located
// (partially) outside the selected clusters or spanning unselected
// clusters are never generated — the system is non-exhaustive, but
// every mapping it does produce carries the exhaustive system's score,
// because the restriction only removes candidates.
//
// Both the offline clustering and the online cluster selection draw
// name scores from a shared engine.Scorer; built with the same scorer
// as the matching.Problem, the index reuses (and further warms) the
// memo table the matchers enumerate against.
package clustered

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/matching"
	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// Index is the offline clustering of a repository's element names.
// Clustering operates on distinct names (elements with equal names
// always share a cluster, and name distance is all the clustering
// sees), which keeps the distance matrix small on large repositories.
// Build it once per repository with BuildIndex and share it across
// queries.
type Index struct {
	repo *xmlschema.Repository
	// names are the distinct element names, sorted (cluster item i =
	// names[i]).
	names []string
	// clustering over the name indices.
	clustering *cluster.Clustering
	// medoidNames[c] is the representative name of cluster c.
	medoidNames []string
	// nameCluster maps a name to its cluster.
	nameCluster map[string]int
	// silhouette quality of the clustering, for reports. After an
	// incremental Apply it is the value of the last full build.
	silhouette float64
	// scorer the distance matrix was built from; matchers over this
	// index default to it so online selection shares the same cache.
	scorer engine.Scorer
	// cfg is the build configuration (Scorer resolved), kept so the
	// rebuild-threshold fallback of Apply re-runs the same build.
	cfg IndexConfig
	// nameCount is the number of repository elements carrying each
	// distinct name — the refcount incremental maintenance needs to
	// know when a name appears or vanishes.
	nameCount map[string]int
	// baseNames is the distinct-name count at the last full build;
	// drift accumulates names added+removed since then. Apply falls
	// back to a full rebuild when drift crosses the threshold.
	baseNames int
	drift     int
}

// IndexConfig parameterizes BuildIndex.
type IndexConfig struct {
	// K is the number of clusters; values < 1 default to
	// max(2, distinctNames/8).
	K int
	// Scorer supplies element-name similarities for the distance
	// matrix. Nil selects a fresh memoized engine over
	// similarity.DefaultNameMetric; pass the problem's scorer to share
	// one cache between clustering and matching.
	Scorer engine.Scorer
	// Workers bounds the worker pool building the distance matrix.
	// Values < 1 select GOMAXPROCS.
	Workers int
	// Seed drives the k-medoids initialization.
	Seed uint64
	// RebuildFraction is the drift threshold of Apply: once the names
	// added+removed since the last full build exceed this fraction of
	// the names that build clustered, Apply re-clusters from scratch
	// instead of patching membership. 0 selects DefaultRebuildFraction;
	// negative values disable the fallback (always incremental).
	RebuildFraction float64
	// ParityCheck makes every incremental Apply verify its result
	// against a from-scratch membership rebuild (Rebase) and fail
	// loudly on divergence. Intended for tests and debugging; it costs
	// one nearest-medoid pass over all names per Apply.
	ParityCheck bool
}

// DefaultRebuildFraction is the Apply drift threshold when
// IndexConfig.RebuildFraction is zero: a quarter of the clustered
// names changing since the last full build triggers re-clustering.
const DefaultRebuildFraction = 0.25

// BuildIndex clusters all distinct element names of repo.
func BuildIndex(repo *xmlschema.Repository, cfg IndexConfig) (*Index, error) {
	if repo == nil {
		return nil, fmt.Errorf("clustered: nil repository")
	}
	nameCount := countNames(repo)
	if len(nameCount) == 0 {
		return nil, fmt.Errorf("clustered: empty repository")
	}
	names := sortedNames(nameCount)

	scorer := cfg.Scorer
	if scorer == nil {
		scorer = engine.New(nil)
	}
	cfg.Scorer = scorer // rebuilds via Apply share the same engine
	k := cfg.K
	if k < 1 {
		k = len(names) / 8
		if k < 2 {
			k = 2
		}
	}
	if k > len(names) {
		k = len(names)
	}
	mat, err := cluster.NewNameMatrix(names, scorer, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("clustered: building distance matrix: %w", err)
	}
	cl, err := cluster.KMedoids(mat, k, stats.NewRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("clustered: clustering: %w", err)
	}
	medoidNames := make([]string, cl.K)
	for c, md := range cl.Medoids {
		medoidNames[c] = names[md]
	}
	nameCluster := make(map[string]int, len(names))
	for i, n := range names {
		nameCluster[n] = cl.Assign[i]
	}
	return &Index{
		repo:        repo,
		names:       names,
		clustering:  cl,
		medoidNames: medoidNames,
		nameCluster: nameCluster,
		silhouette:  cluster.Silhouette(mat, cl),
		scorer:      scorer,
		cfg:         cfg,
		nameCount:   nameCount,
		baseNames:   len(names),
	}, nil
}

// countNames returns the element count of every distinct name in repo.
func countNames(repo *xmlschema.Repository) map[string]int {
	counts := make(map[string]int)
	for _, s := range repo.Schemas() {
		s.Walk(func(e *xmlschema.Element) bool {
			counts[e.Name]++
			return true
		})
	}
	return counts
}

// sortedNames returns the keys of counts, sorted.
func sortedNames(counts map[string]int) []string {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// K returns the number of clusters.
func (ix *Index) K() int { return ix.clustering.K }

// Scorer returns the scoring engine the index was built from.
func (ix *Index) Scorer() engine.Scorer { return ix.scorer }

// DistinctNames returns how many distinct element names were clustered.
func (ix *Index) DistinctNames() int { return len(ix.names) }

// Silhouette returns the clustering quality index in [-1, 1].
func (ix *Index) Silhouette() float64 { return ix.silhouette }

// ClusterOf returns the cluster index of ref's element name, or -1
// when the element is unknown.
func (ix *Index) ClusterOf(ref xmlschema.Ref) int {
	e := ix.repo.Resolve(ref)
	if e == nil {
		return -1
	}
	c, ok := ix.nameCluster[e.Name]
	if !ok {
		return -1
	}
	return c
}

// ClusterOfName returns the cluster of a name, or -1 when unknown.
func (ix *Index) ClusterOfName(name string) int {
	c, ok := ix.nameCluster[name]
	if !ok {
		return -1
	}
	return c
}

// Matcher is the cluster-restricted system. Create with New.
type Matcher struct {
	index *Index
	// topClusters is how many clusters each personal element selects.
	topClusters int
	scorer      engine.Scorer
}

// New returns a matcher searching only the topClusters best clusters
// per personal element. A nil scorer selects the index's own, so
// offline clustering and online cluster selection share one cache. It
// returns an error for topClusters < 1 or a nil index.
func New(index *Index, topClusters int, scorer engine.Scorer) (*Matcher, error) {
	if index == nil {
		return nil, fmt.Errorf("clustered: nil index")
	}
	if topClusters < 1 {
		return nil, fmt.Errorf("clustered: topClusters %d < 1", topClusters)
	}
	if scorer == nil {
		scorer = index.scorer
	}
	return &Matcher{index: index, topClusters: topClusters, scorer: scorer}, nil
}

// Name implements matching.Matcher: the canonical registry spec
// ("clustered:3"). The cluster count K is a property of the index the
// service resolves the spec against, not of the spec itself.
func (c *Matcher) Name() string {
	return fmt.Sprintf("clustered:%d", c.topClusters)
}

// TopClusters returns how many clusters each personal element selects.
func (c *Matcher) TopClusters() int { return c.topClusters }

// SelectedClusters returns, for one personal element name, the indices
// of the topClusters clusters whose medoid names are most similar.
func (c *Matcher) SelectedClusters(name string) []int {
	type scored struct {
		cluster int
		sim     float64
	}
	all := make([]scored, len(c.index.medoidNames))
	for i, mn := range c.index.medoidNames {
		all[i] = scored{cluster: i, sim: c.scorer.Score(name, mn)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sim != all[j].sim {
			return all[i].sim > all[j].sim
		}
		return all[i].cluster < all[j].cluster
	})
	n := c.topClusters
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].cluster
	}
	return out
}

// Match implements matching.Matcher: exhaustive enumeration restricted
// to elements of the selected clusters.
func (c *Matcher) Match(p *matching.Problem, delta float64) (*matching.AnswerSet, error) {
	return c.MatchContext(context.Background(), p, delta)
}

// MatchContext implements matching.Matcher: the restricted enumeration
// polls ctx periodically and returns ctx.Err() when cancelled.
func (c *Matcher) MatchContext(ctx context.Context, p *matching.Problem, delta float64) (*matching.AnswerSet, error) {
	set, _, err := c.MatchStatsContext(ctx, p, delta)
	return set, err
}

// MatchStatsContext implements matching.StatsMatcher.
func (c *Matcher) MatchStatsContext(ctx context.Context, p *matching.Problem, delta float64) (*matching.AnswerSet, matching.SearchStats, error) {
	var st matching.SearchStats
	if p.Repo != c.index.repo {
		return nil, st, fmt.Errorf("clustered: index built for a different repository")
	}
	// Per personal element: the set of allowed cluster indices.
	m := p.M()
	allowedClusters := make([]map[int]bool, m)
	for _, pe := range p.Personal.Elements() {
		sel := c.SelectedClusters(pe.Name)
		set := make(map[int]bool, len(sel))
		for _, cl := range sel {
			set[cl] = true
		}
		allowedClusters[pe.ID()] = set
	}
	var answers []matching.Answer
	for _, s := range p.Repo.Schemas() {
		schema := s
		allowed := func(pid, rid int) bool {
			e := schema.ByID(rid)
			if e == nil {
				return false
			}
			cl := c.index.ClusterOfName(e.Name)
			return cl >= 0 && allowedClusters[pid][cl]
		}
		schemaStats, err := matching.EnumerateContext(ctx, p, s, delta, allowed, func(mp matching.Mapping, score float64) {
			answers = append(answers, matching.Answer{Mapping: mp, Score: score})
		})
		st.Add(schemaStats)
		if err != nil {
			return nil, st, err
		}
	}
	return matching.NewAnswerSet(answers), st, nil
}
