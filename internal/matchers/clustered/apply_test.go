package clustered

import (
	"fmt"
	"testing"

	"repro/internal/matching"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

// applyScenario builds a small synthetic corpus wrapped in a snapshot.
func applyScenario(t *testing.T, seed uint64, schemas int) (*synth.Scenario, *xmlschema.Snapshot) {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.NumSchemas = schemas
	sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := xmlschema.NewSnapshot(sc.Repo)
	if err != nil {
		t.Fatal(err)
	}
	return sc, snap
}

// answersOf runs the clustered matcher over ix for the scenario's
// personal schema and returns the answer set.
func answersOf(t *testing.T, ix *Index, personal *xmlschema.Schema, delta float64) *matching.AnswerSet {
	t.Helper()
	mcfg := matching.DefaultConfig()
	mcfg.Scorer = ix.Scorer()
	prob, err := matching.NewProblem(personal, ix.Repository(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ix, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := m.Match(prob, delta)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// mutateStep applies one random snapshot mutation, cycling through
// add, replace, and remove, always keeping a few schemas around.
func mutateStep(t *testing.T, rng *stats.RNG, snap *xmlschema.Snapshot, step int) *xmlschema.Snapshot {
	t.Helper()
	schemas := snap.Schemas()
	pick := func() *xmlschema.Schema { return schemas[rng.Intn(len(schemas))] }
	var (
		next *xmlschema.Snapshot
		err  error
	)
	switch {
	case step%3 == 0:
		var clone *xmlschema.Schema
		clone, err = pick().CloneAs(fmt.Sprintf("applied%d", step))
		if err != nil {
			t.Fatal(err)
		}
		next, err = snap.Add(clone)
	case step%3 == 1:
		// Replace a schema with a clone of a different schema under the
		// same name: same name set churn, different content.
		victim := pick()
		var repl *xmlschema.Schema
		repl, err = pick().CloneAs(victim.Name)
		if err != nil {
			t.Fatal(err)
		}
		next, err = snap.Replace(repl)
	default:
		if snap.Len() <= 3 {
			return snap
		}
		next, err = snap.Remove(pick().Name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestApplyParityProperty drives Index.Apply through random sequences
// of add/remove/replace diffs and asserts, after every step, that the
// incrementally maintained index is identical to a from-scratch
// membership rebuild over the same repository (Rebase): same name set,
// same cluster memberships, and — the property the bounds technique
// rests on — the same answer set at every threshold, which also forces
// identical |A_S2(δ)| sizes and therefore identical effectiveness
// bounds. The built-in ParityCheck runs on every Apply as well. The
// incremental matcher's answers are additionally checked to be a
// subset of the exhaustive system's with equal scores (soundness of
// the restriction).
func TestApplyParityProperty(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc, snap := applyScenario(t, seed, 14)
			ix, err := BuildIndex(snap.Repository(), IndexConfig{
				Seed:            seed,
				ParityCheck:     true,
				RebuildFraction: -1, // force the incremental path throughout
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRNG(seed ^ 0xc4)
			const delta = 0.45
			for step := 0; step < 9; step++ {
				next := mutateStep(t, rng, snap, step)
				if next == snap {
					continue
				}
				diff := xmlschema.DiffSnapshots(snap, next)
				nix, err := ix.Apply(next.Repository(), diff)
				if err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				ref, err := ix.Rebase(next.Repository())
				if err != nil {
					t.Fatalf("step %d: Rebase: %v", step, err)
				}
				if err := membershipEqual(nix, ref); err != nil {
					t.Fatalf("step %d: membership parity: %v", step, err)
				}
				got := answersOf(t, nix, sc.Personal, delta)
				want := answersOf(t, ref, sc.Personal, delta)
				if got.Len() != want.Len() {
					t.Fatalf("step %d: incremental %d answers, fresh membership %d",
						step, got.Len(), want.Len())
				}
				if err := got.SubsetOf(want); err != nil {
					t.Fatalf("step %d: answer parity: %v", step, err)
				}
				// Soundness against the exhaustive system over the same
				// repository: restriction only removes candidates.
				mcfg := matching.DefaultConfig()
				mcfg.Scorer = nix.Scorer()
				prob, err := matching.NewProblem(sc.Personal, next.Repository(), mcfg)
				if err != nil {
					t.Fatal(err)
				}
				full, err := (matching.Exhaustive{}).Match(prob, delta)
				if err != nil {
					t.Fatal(err)
				}
				if err := got.SubsetOf(full); err != nil {
					t.Fatalf("step %d: clustered ⊄ exhaustive: %v", step, err)
				}
				snap, ix = next, nix
			}
			if ix.Drift() == 0 {
				t.Fatal("mutation sequence produced no drift — test is vacuous")
			}
		})
	}
}

// TestApplyRebuildFallback checks that once drift crosses the
// threshold, Apply re-clusters from scratch and the result is exactly
// a fresh BuildIndex of the new repository (same deterministic seed).
func TestApplyRebuildFallback(t *testing.T) {
	_, snap := applyScenario(t, 5, 10)
	cfg := IndexConfig{Seed: 5, RebuildFraction: 1e-9}
	ix, err := BuildIndex(snap.Repository(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := snap.Schemas()[0].CloneAs("freshcopy")
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Add(clone)
	if err != nil {
		t.Fatal(err)
	}
	nix, err := ix.Apply(next.Repository(), xmlschema.DiffSnapshots(snap, next))
	if err != nil {
		t.Fatal(err)
	}
	if nix.Drift() != 0 {
		t.Fatalf("fallback rebuild kept drift %d", nix.Drift())
	}
	want, err := BuildIndex(next.Repository(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nix.K() != want.K() || nix.DistinctNames() != want.DistinctNames() {
		t.Fatalf("fallback index K=%d names=%d, fresh build K=%d names=%d",
			nix.K(), nix.DistinctNames(), want.K(), want.DistinctNames())
	}
	if err := membershipEqual(nix, want); err != nil {
		t.Fatalf("fallback differs from fresh build: %v", err)
	}
}

// TestApplyValidation covers the error paths: nil repository,
// inconsistent diffs, emptied repositories, and the no-op diff.
func TestApplyValidation(t *testing.T) {
	_, snap := applyScenario(t, 7, 4)
	ix, err := BuildIndex(snap.Repository(), IndexConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Apply(nil, xmlschema.Diff{}); err == nil {
		t.Error("nil repository should error")
	}

	// No-op diff: same membership, new repository pointer.
	same, err := ix.Apply(snap.Repository(), xmlschema.Diff{})
	if err != nil {
		t.Fatal(err)
	}
	if same.Repository() != snap.Repository() || same.DistinctNames() != ix.DistinctNames() {
		t.Error("empty diff should only swap the repository")
	}

	// A diff removing a schema the index never held is inconsistent.
	foreign, err := snap.Schemas()[0].CloneAs("foreign")
	if err != nil {
		t.Fatal(err)
	}
	// Build a one-schema repo to get a valid *Schema not in ix.
	bogus := xmlschema.Diff{Removed: []*xmlschema.Schema{mustTimes(t, foreign, 40)}}
	if _, err := ix.Apply(snap.Repository(), bogus); err == nil {
		t.Error("inconsistent diff should error")
	}

	// Removing every schema empties the repository.
	names := make([]string, 0, snap.Len())
	for _, s := range snap.Schemas() {
		names = append(names, s.Name)
	}
	empty, err := snap.Remove(names...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Apply(empty.Repository(), xmlschema.DiffSnapshots(snap, empty)); err == nil {
		t.Error("emptying diff should error")
	}
}

// mustTimes inflates a schema with many repeated fresh names so its
// removal-by-diff necessarily underflows the index refcounts.
func mustTimes(t *testing.T, base *xmlschema.Schema, n int) *xmlschema.Schema {
	t.Helper()
	root := xmlschema.NewElement("inflatedroot")
	for i := 0; i < n; i++ {
		root.Add(xmlschema.NewElement(fmt.Sprintf("inflated%d", i)))
	}
	s, err := xmlschema.NewSchema(base.Name+"x", root)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
