package topk

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/xmlschema"
)

func tinyProblem(t *testing.T) *matching.Problem {
	t.Helper()
	personal, err := xmlschema.NewSchema("p",
		xmlschema.NewElement("order").Add(
			xmlschema.NewElement("customer"),
			xmlschema.NewElement("total"),
		))
	if err != nil {
		t.Fatal(err)
	}
	repo := xmlschema.NewRepository()
	s, err := xmlschema.NewSchema("r",
		xmlschema.NewElement("order").Add(
			xmlschema.NewElement("customer"),
			xmlschema.NewElement("total"),
			xmlschema.NewElement("widget").Add(
				xmlschema.NewElement("gadget"),
			),
		))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(s); err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(personal, repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestPerfectAnswerAlwaysSurvives(t *testing.T) {
	// A zero-cost mapping has zero prefix costs, so no margin can kill
	// it as long as margin·remaining ≤ δ.
	prob := tinyProblem(t)
	m, err := New(0.05)
	if err != nil {
		t.Fatal(err)
	}
	set, err := m.Match(prob, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no answers at all")
	}
	if best := set.All()[0]; best.Score > 1e-9 {
		t.Errorf("best score %v, want 0 (exact copy present)", best.Score)
	}
}

func TestMarginKillsNearThresholdAnswers(t *testing.T) {
	prob := tinyProblem(t)
	exact, err := matching.Exhaustive{}.Match(prob, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := New(0.12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pruned.Match(prob, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() >= exact.Len() {
		t.Fatalf("margin 0.12 pruned nothing (%d vs %d)", got.Len(), exact.Len())
	}
	// Every surviving answer carries the exhaustive score.
	if err := got.SubsetOf(exact); err != nil {
		t.Error(err)
	}
	// The losses concentrate at high scores: the best exhaustive answer
	// must be present.
	if got.Len() > 0 && exact.Len() > 0 {
		if got.All()[0].Score != exact.All()[0].Score {
			t.Errorf("best answer lost: %v vs %v", got.All()[0].Score, exact.All()[0].Score)
		}
	}
}

func TestHugeMarginReturnsNothingBeyondTrivial(t *testing.T) {
	prob := tinyProblem(t)
	m, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := m.Match(prob, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	// margin 10 × remaining ≥ 10 for any non-final level → everything
	// with m > 1 personal elements is pruned at the root.
	if set.Len() != 0 {
		t.Errorf("margin 10 still found %d answers", set.Len())
	}
}

func TestAccessors(t *testing.T) {
	m, err := New(0.07)
	if err != nil {
		t.Fatal(err)
	}
	if m.Margin() != 0.07 {
		t.Errorf("Margin = %v", m.Margin())
	}
	if m.Name() != "topk:0.07" {
		t.Errorf("Name = %q", m.Name())
	}
}
