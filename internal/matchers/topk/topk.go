// Package topk implements a non-exhaustive matcher in the spirit of
// probabilistic top-k pruning (Theobald, Weikum & Schenkel, VLDB 2004),
// the second improvement family the paper cites. During the
// depth-first assignment the matcher projects the final cost of a
// partial mapping as
//
//	projected = cost so far + margin · (elements still unassigned)
//
// and abandons the branch when the projection exceeds the threshold δ.
// The projection is *not* admissible: a branch whose remaining elements
// would have cost less than margin each is pruned even though its
// complete mapping scores ≤ δ. The matcher therefore misses answers —
// predominantly those near the threshold — while every answer it does
// return carries the exact exhaustive score — both are read from the
// Problem's engine.Scorer-built cost tables, never from a string metric
// directly. Larger margins prune more aggressively; margin 0
// degenerates to the exhaustive system.
package topk

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/matching"
	"repro/internal/xmlschema"
)

// Matcher is the aggressive-pruning system. Create with New.
type Matcher struct {
	margin float64
}

// New returns a matcher with the given per-unassigned-element cost
// projection. It returns an error for margins that are negative, NaN,
// or infinite (a NaN margin would silently disable pruning — NaN
// comparisons are always false — and break Name round-tripping).
func New(margin float64) (*Matcher, error) {
	if math.IsNaN(margin) || math.IsInf(margin, 0) || margin < 0 {
		return nil, fmt.Errorf("topk: margin %v is not a finite non-negative number", margin)
	}
	return &Matcher{margin: margin}, nil
}

// Name implements matching.Matcher: the canonical registry spec
// ("topk:0.05"), with the margin in the shortest exact decimal form so
// the name parses back to an identical matcher.
func (t *Matcher) Name() string {
	return "topk:" + strconv.FormatFloat(t.margin, 'g', -1, 64)
}

// Margin returns the pruning margin.
func (t *Matcher) Margin() float64 { return t.margin }

// Match implements matching.Matcher.
func (t *Matcher) Match(p *matching.Problem, delta float64) (*matching.AnswerSet, error) {
	return t.MatchContext(context.Background(), p, delta)
}

// MatchContext implements matching.Matcher: the depth-first assignment
// polls ctx periodically and returns ctx.Err() when cancelled.
func (t *Matcher) MatchContext(ctx context.Context, p *matching.Problem, delta float64) (*matching.AnswerSet, error) {
	set, _, err := t.MatchStatsContext(ctx, p, delta)
	return set, err
}

// MatchStatsContext implements matching.StatsMatcher.
func (t *Matcher) MatchStatsContext(ctx context.Context, p *matching.Problem, delta float64) (*matching.AnswerSet, matching.SearchStats, error) {
	var answers []matching.Answer
	var st matching.SearchStats
	done := ctx.Done()
	for _, s := range p.Repo.Schemas() {
		if done != nil && ctx.Err() != nil {
			return nil, st, ctx.Err()
		}
		if p.CandidateSkip(s.Name, delta) {
			// Provably answer-free within delta: the unfiltered search
			// would prune every branch of this schema anyway.
			continue
		}
		if err := t.matchSchema(ctx, p, s, delta, &answers, &st); err != nil {
			return nil, st, err
		}
	}
	return matching.NewAnswerSet(answers), st, nil
}

func (t *Matcher) matchSchema(ctx context.Context, p *matching.Problem, s *xmlschema.Schema, delta float64, out *[]matching.Answer, st *matching.SearchStats) error {
	m := p.M()
	targets := make([]int, m)
	used := make([]bool, s.Len())
	done := ctx.Done()
	stopped := false

	var assign func(pid int, cost float64)
	assign = func(pid int, cost float64) {
		if stopped {
			return
		}
		if pid == m {
			st.Yielded++
			*out = append(*out, matching.Answer{
				Mapping: matching.Mapping{Schema: s.Name, Targets: append([]int(nil), targets...)},
				Score:   cost,
			})
			return
		}
		par := p.ParentOf(pid)
		try := func(re *xmlschema.Element) {
			rid := re.ID()
			if used[rid] {
				return
			}
			st.Candidates++
			if done != nil && st.Candidates&matching.CancelCheckMask == 0 && ctx.Err() != nil {
				stopped = true
				return
			}
			c := cost + p.NameCost(s, pid, rid)
			if par >= 0 {
				parentImg := s.ByID(targets[par])
				c += p.EdgeCost(re.Depth() - parentImg.Depth())
			}
			// Aggressive projection: assume every remaining element
			// will contribute at least the margin.
			remaining := float64(m - pid - 1)
			if c+t.margin*remaining > delta+1e-12 {
				st.Pruned++
				return
			}
			used[rid] = true
			targets[pid] = rid
			assign(pid+1, c)
			used[rid] = false
		}
		if par < 0 {
			for _, re := range s.Elements() {
				if stopped {
					return
				}
				try(re)
			}
			return
		}
		parentImg := s.ByID(targets[par])
		maxDepth := parentImg.Depth() + p.Config().MaxDepthStretch
		parentImg.Walk(func(re *xmlschema.Element) bool {
			if stopped {
				return false
			}
			if re == parentImg {
				return true
			}
			if re.Depth() > maxDepth {
				return false
			}
			try(re)
			return !stopped
		})
	}
	assign(0, 0)
	if stopped {
		return ctx.Err()
	}
	return nil
}
