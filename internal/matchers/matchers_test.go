// Package matchers_test holds the cross-matcher integration tests: the
// paper's entire technique rests on every non-exhaustive improvement
// producing a subset of the exhaustive answer set under the same
// objective function. These tests verify that containment, score
// equality, and determinism for all three improvements on generated
// scenarios.
package matchers_test

import (
	"testing"

	"repro/internal/matchers/beam"
	"repro/internal/matchers/clustered"
	"repro/internal/matchers/topk"
	"repro/internal/matching"
	"repro/internal/synth"
)

const testDelta = 0.45

func scenario(t *testing.T, seed uint64) (*synth.Scenario, *matching.Problem) {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.NumSchemas = 40
	sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(sc.Personal, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sc, prob
}

func allImprovements(t *testing.T, sc *synth.Scenario) []matching.Matcher {
	t.Helper()
	bm, err := beam.New(16)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := topk.New(0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := clustered.BuildIndex(sc.Repo, clustered.IndexConfig{K: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clustered.New(ix, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []matching.Matcher{bm, tk, cm}
}

// TestSubsetContainment is the load-bearing invariant: A_S2(δ) ⊆ A_S1(δ)
// with identical scores, at every threshold.
func TestSubsetContainment(t *testing.T) {
	sc, prob := scenario(t, 21)
	s1, err := matching.Exhaustive{}.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() == 0 {
		t.Fatal("exhaustive found nothing; scenario too hard")
	}
	for _, m := range allImprovements(t, sc) {
		s2, err := m.Match(prob, testDelta)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := s2.SubsetOf(s1); err != nil {
			t.Errorf("%s violates containment: %v", m.Name(), err)
		}
		if s2.Len() > s1.Len() {
			t.Errorf("%s returned more answers (%d) than exhaustive (%d)", m.Name(), s2.Len(), s1.Len())
		}
		t.Logf("%s: %d/%d answers retained", m.Name(), s2.Len(), s1.Len())
	}
}

// TestImprovementsactuallyPrune guards against an "improvement" that
// silently degenerates to the exhaustive system (which would make the
// ratio curves trivially 1 and the experiments meaningless).
func TestImprovementsActuallyPrune(t *testing.T) {
	sc, prob := scenario(t, 23)
	s1, err := matching.Exhaustive{}.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allImprovements(t, sc) {
		s2, err := m.Match(prob, testDelta)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Len() >= s1.Len() {
			t.Errorf("%s retained everything (%d of %d): not a non-exhaustive improvement",
				m.Name(), s2.Len(), s1.Len())
		}
		if s2.Len() == 0 {
			t.Errorf("%s retained nothing: too aggressive for the experiments", m.Name())
		}
	}
}

func TestMatchersDeterministic(t *testing.T) {
	sc, prob := scenario(t, 29)
	for _, m := range allImprovements(t, sc) {
		a, err := m.Match(prob, testDelta)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Match(prob, testDelta)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%s nondeterministic: %d vs %d answers", m.Name(), a.Len(), b.Len())
		}
		for i := range a.All() {
			if !a.All()[i].Mapping.Equal(b.All()[i].Mapping) || a.All()[i].Score != b.All()[i].Score {
				t.Fatalf("%s nondeterministic at rank %d", m.Name(), i)
			}
		}
	}
}

func TestMatcherThresholdMonotone(t *testing.T) {
	sc, prob := scenario(t, 31)
	for _, m := range allImprovements(t, sc) {
		big, err := m.Match(prob, testDelta)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for _, d := range []float64{0.1, 0.2, 0.3, testDelta} {
			n := big.CountAt(d)
			if n < prev {
				t.Errorf("%s: CountAt(%v) = %d < previous %d", m.Name(), d, n, prev)
			}
			prev = n
		}
	}
	_ = sc
}

func TestBeamWiderFindsMore(t *testing.T) {
	_, prob := scenario(t, 37)
	narrow, err := beam.New(4)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := beam.New(64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := narrow.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() > b.Len() {
		t.Errorf("beam(4) found %d > beam(64) %d", a.Len(), b.Len())
	}
	// Narrow beam answers need not be a subset of wide beam answers in
	// general, but both are subsets of exhaustive — checked elsewhere.
}

func TestBeamValidation(t *testing.T) {
	if _, err := beam.New(0); err == nil {
		t.Error("beam width 0 should error")
	}
	b, err := beam.New(8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Width() != 8 || b.Name() != "beam:8" {
		t.Errorf("accessors: %d %s", b.Width(), b.Name())
	}
}

func TestTopkValidation(t *testing.T) {
	if _, err := topk.New(-0.1); err == nil {
		t.Error("negative margin should error")
	}
	m, err := topk.New(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if m.Margin() != 0.02 {
		t.Errorf("Margin = %v", m.Margin())
	}
}

// TestTopkZeroMarginIsExhaustive: margin 0 projects nothing, so the
// pruning is exactly the admissible one — the system degenerates to S1.
func TestTopkZeroMarginIsExhaustive(t *testing.T) {
	_, prob := scenario(t, 41)
	s1, err := matching.Exhaustive{}.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := topk.New(0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tk.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s1.Len() {
		t.Errorf("margin-0 topk found %d, exhaustive %d", s2.Len(), s1.Len())
	}
}

func TestTopkLargerMarginPrunesMore(t *testing.T) {
	_, prob := scenario(t, 43)
	small, _ := topk.New(0.02)
	large, _ := topk.New(0.10)
	a, err := small.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := large.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() > a.Len() {
		t.Errorf("margin 0.10 found %d > margin 0.02 %d", b.Len(), a.Len())
	}
}

func TestClusteredValidation(t *testing.T) {
	sc, _ := scenario(t, 47)
	if _, err := clustered.BuildIndex(nil, clustered.IndexConfig{}); err == nil {
		t.Error("nil repo should error")
	}
	ix, err := clustered.BuildIndex(sc.Repo, clustered.IndexConfig{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.K() != 10 {
		t.Errorf("K = %d", ix.K())
	}
	if _, err := clustered.New(nil, 3, nil); err == nil {
		t.Error("nil index should error")
	}
	if _, err := clustered.New(ix, 0, nil); err == nil {
		t.Error("topClusters 0 should error")
	}
}

func TestClusteredIndexMismatch(t *testing.T) {
	scA, _ := scenario(t, 53)
	scB, probB := scenario(t, 59)
	ix, err := clustered.BuildIndex(scA.Repo, clustered.IndexConfig{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clustered.New(ix, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Match(probB, testDelta); err == nil {
		t.Error("matching with a foreign index should error")
	}
	_ = scB
}

func TestClusteredMoreClustersFindMore(t *testing.T) {
	sc, prob := scenario(t, 61)
	ix, err := clustered.BuildIndex(sc.Repo, clustered.IndexConfig{K: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	few, err := clustered.New(ix, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	many, err := clustered.New(ix, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := few.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := many.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() > b.Len() {
		t.Errorf("top-2 clusters found %d > top-12 %d", a.Len(), b.Len())
	}
	// Selecting every cluster must recover the exhaustive set.
	all, err := clustered.New(ix, ix.K(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := all.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := matching.Exhaustive{}.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s1.Len() {
		t.Errorf("all-clusters matcher found %d, exhaustive %d", s2.Len(), s1.Len())
	}
}

func TestClusteredSelectedClusters(t *testing.T) {
	sc, _ := scenario(t, 67)
	ix, err := clustered.BuildIndex(sc.Repo, clustered.IndexConfig{K: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clustered.New(ix, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel := cm.SelectedClusters("title")
	if len(sel) != 4 {
		t.Fatalf("SelectedClusters = %v", sel)
	}
	seen := map[int]bool{}
	for _, c := range sel {
		if c < 0 || c >= ix.K() || seen[c] {
			t.Errorf("invalid cluster selection %v", sel)
		}
		seen[c] = true
	}
}

// TestTruthRecallOrdering: the exhaustive system must recall at least
// as many planted truths as any improvement at the same threshold.
func TestTruthRecallOrdering(t *testing.T) {
	sc, prob := scenario(t, 71)
	truth := sc.TruthKeys()
	recall := func(s *matching.AnswerSet) int {
		n := 0
		for _, a := range s.At(testDelta) {
			if truth[a.Mapping.Key()] {
				n++
			}
		}
		return n
	}
	s1, err := matching.Exhaustive{}.Match(prob, testDelta)
	if err != nil {
		t.Fatal(err)
	}
	r1 := recall(s1)
	if r1 == 0 {
		t.Fatal("exhaustive recalled no truths; scenario or matcher broken")
	}
	for _, m := range allImprovements(t, sc) {
		s2, err := m.Match(prob, testDelta)
		if err != nil {
			t.Fatal(err)
		}
		if r2 := recall(s2); r2 > r1 {
			t.Errorf("%s recalled %d truths > exhaustive %d", m.Name(), r2, r1)
		}
	}
}
