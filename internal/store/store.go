package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/matchers/clustered"
	"repro/internal/xmlschema"
)

// fileExt is the per-tenant file suffix.
const fileExt = ".mstore"

// Options configures a Store.
type Options struct {
	// Sync fsyncs the tenant file after every append and rewrite, so a
	// record reported committed survives power loss, not just process
	// death. Off, commits survive crashes of the process only.
	Sync bool
}

// Store is a directory of single-file tenant logs. Open it once and
// share it; Tenant handles are cached and safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	tenants map[string]*Tenant

	// wrapWriter, when set, wraps every file writer the store appends
	// or rewrites through — the crash-injection seam the property tests
	// drive with a FailingWriter. Production code never sets it.
	wrapWriter func(tenant string, w io.Writer) io.Writer
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, opt: opt, tenants: make(map[string]*Tenant)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Tenant returns the handle of one tenant's log (creating no file
// until the first write).
func (s *Store) Tenant(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &Tenant{store: s, name: name, path: filepath.Join(s.dir, escapeTenant(name)+fileExt)}
		s.tenants[name] = t
	}
	return t
}

// Tenants lists the tenant names that have a log file, sorted.
func (s *Store) Tenants() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), fileExt) {
			continue
		}
		name, err := unescapeTenant(strings.TrimSuffix(e.Name(), fileExt))
		if err != nil {
			continue // not a store file of ours
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// escapeTenant maps a tenant name onto a safe, reversible file stem:
// ASCII letters, digits, '.', '_' and '-' pass through, everything
// else becomes %XX per byte.
func escapeTenant(name string) string {
	const hex = "0123456789abcdef"
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		}
	}
	return b.String()
}

func unescapeTenant(stem string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(stem) {
			return "", fmt.Errorf("store: short escape in %q", stem)
		}
		hi, err1 := unhex(stem[i+1])
		lo, err2 := unhex(stem[i+2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("store: bad escape in %q", stem)
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), nil
}

func unhex(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	}
	return 0, fmt.Errorf("store: bad hex digit %q", c)
}

// Tenant is the handle of one tenant's log file. All operations
// serialize on the tenant; the cached tail state makes appends O(one
// record) after the first scan.
type Tenant struct {
	store *Store
	name  string
	path  string

	mu sync.Mutex
	// Cached tail of the file, valid while tailKnown. A failed write
	// invalidates it; the next operation rescans (and truncates any
	// torn suffix).
	tailKnown      bool
	tailVersion    uint64 // last committed snapshot version; 0 = no base
	validLen       int64  // bytes of the committed prefix
	records        int    // committed records
	diffsSinceBase int    // diff records after the last base
	lastCompaction int64  // unix seconds of the last base record write
	gapHeals       int64  // AppendDiff calls healed by a full base rewrite
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Path returns the tenant's log file path.
func (t *Tenant) Path() string { return t.path }

// scanTailLocked (re)builds the cached tail state by walking the file's
// committed records. A missing file is a valid empty log. Records are
// CRC-verified and version-chained exactly like a full load, so the
// appender never chains onto a prefix the loader would reject.
func (t *Tenant) scanTailLocked() error {
	t.tailKnown = false
	t.tailVersion, t.validLen, t.records, t.diffsSinceBase, t.lastCompaction = 0, 0, 0, 0, 0
	data, err := os.ReadFile(t.path)
	if errors.Is(err, fs.ErrNotExist) {
		t.tailKnown = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	validLen, _ := decodeTail(data, func(typ byte, payload []byte) error {
		switch typ {
		case recBase:
			snap, written, err := decodeBase(payload)
			if err != nil {
				return err
			}
			if t.tailVersion != 0 && snap.Version() < t.tailVersion {
				return fmt.Errorf("%w: base record rewinds version", ErrCorruptRecord)
			}
			t.tailVersion = snap.Version()
			t.diffsSinceBase = 0
			t.lastCompaction = written
		case recDiff:
			dd, err := decodeDiff(payload)
			if err != nil {
				return err
			}
			if t.tailVersion == 0 || dd.from != t.tailVersion {
				return fmt.Errorf("%w: diff does not chain", ErrCorruptRecord)
			}
			t.tailVersion = dd.to
			t.diffsSinceBase++
		case recIndex:
			if _, err := decodeIndex(payload); err != nil {
				return err
			}
		case recMemo:
			if _, _, err := decodeMemo(payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown record type %q", ErrCorruptRecord, typ)
		}
		t.records++
		return nil
	})
	t.validLen = validLen
	t.tailKnown = true
	return nil
}

// ensureTailLocked primes the tail cache on first use.
func (t *Tenant) ensureTailLocked() error {
	if t.tailKnown {
		return nil
	}
	return t.scanTailLocked()
}

// appendRecordLocked appends one framed record after truncating any
// invalid suffix, updating the tail cache only when every byte
// committed. The record is written in a single Write call, so an
// injected fault tears at most one record.
func (t *Tenant) appendRecordLocked(frame []byte) error {
	if err := t.ensureTailLocked(); err != nil {
		return err
	}
	fresh := t.validLen == 0
	flags := os.O_WRONLY | os.O_CREATE
	f, err := os.OpenFile(t.path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	defer f.Close()
	if fresh {
		// An empty (or headerless/garbage) log restarts from scratch.
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("store: %s: %w", t.name, err)
		}
	} else if fi, err := f.Stat(); err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	} else if fi.Size() != t.validLen {
		// A torn or damaged suffix from an earlier crash: drop it so the
		// new record chains onto the committed prefix.
		if err := f.Truncate(t.validLen); err != nil {
			return fmt.Errorf("store: %s: %w", t.name, err)
		}
	}
	var w io.Writer = f
	if t.store.wrapWriter != nil {
		w = t.store.wrapWriter(t.name, w)
	}
	written := 0
	if fresh {
		n, err := w.Write([]byte(magic))
		written += n
		if err == nil && n < len(magic) {
			err = io.ErrShortWrite
		}
		if err != nil {
			t.tailKnown = false
			return fmt.Errorf("store: %s: header: %w", t.name, err)
		}
	} else if _, err := f.Seek(t.validLen, io.SeekStart); err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	n, err := w.Write(frame)
	if err == nil && n < len(frame) {
		err = io.ErrShortWrite
	}
	if err != nil {
		// The file may hold a torn record now; the cache is dirty and the
		// next operation rescans + truncates.
		t.tailKnown = false
		return fmt.Errorf("store: %s: append: %w", t.name, err)
	}
	if t.store.opt.Sync {
		if err := f.Sync(); err != nil {
			t.tailKnown = false
			return fmt.Errorf("store: %s: sync: %w", t.name, err)
		}
	}
	if fresh {
		t.validLen = int64(len(magic))
	}
	t.validLen += int64(len(frame))
	t.records++
	return nil
}

// rewriteLocked atomically replaces the whole log file with header +
// the given frames, via temp file + rename.
func (t *Tenant) rewriteLocked(frames ...[]byte) error {
	tmp := t.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	var w io.Writer = f
	if t.store.wrapWriter != nil {
		w = t.store.wrapWriter(t.name, w)
	}
	size := int64(0)
	writeAll := func(b []byte) error {
		n, err := w.Write(b)
		size += int64(n)
		if err == nil && n < len(b) {
			err = io.ErrShortWrite
		}
		return err
	}
	err = writeAll([]byte(magic))
	for _, fr := range frames {
		if err != nil {
			break
		}
		err = writeAll(fr)
	}
	if err == nil && t.store.opt.Sync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %s: rewrite: %w", t.name, err)
	}
	if err := os.Rename(tmp, t.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	t.validLen = size
	t.records = len(frames)
	return nil
}

// SaveBase replaces the tenant's log with a single base record holding
// repo at the given version — the registration write of a fresh tenant
// and the healing write of a log with a version gap. It implements the
// match.TenantStore contract.
func (t *Tenant) SaveBase(version uint64, repo *xmlschema.Repository) error {
	if repo == nil {
		return fmt.Errorf("store: %s: nil repository", t.name)
	}
	if version < 1 {
		return fmt.Errorf("store: %s: base version %d < 1", t.name, version)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.saveBaseLocked(version, repo)
}

func (t *Tenant) saveBaseLocked(version uint64, repo *xmlschema.Repository) error {
	now := time.Now().Unix()
	payload, err := encodeBase(version, now, repo)
	if err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	if err := t.rewriteLocked(frameRecord(recBase, payload)); err != nil {
		t.tailKnown = false
		return err
	}
	t.tailKnown = true
	t.tailVersion = version
	t.diffsSinceBase = 0
	t.lastCompaction = now
	return nil
}

// AppendDiff makes the transition to snapshot next durable. It
// implements the match.TenantStore contract and is deliberately
// idempotent and self-healing, because the serving layer replays
// transitions in ways a naive appender would double-log:
//
//   - diff.To ≤ the committed tail version: the transition is already
//     durable (e.g. a fast-forward after residency eviction re-applies
//     an update the log has) — no-op;
//   - diff.From == the tail version: the common case, one appended
//     diff record;
//   - anything else is a version gap (the log missed transitions, e.g.
//     updates applied while durability was off, or a healed-from-
//     corruption prefix): the log is rewritten with a fresh base at
//     next's version, so it is correct again at the cost of one full
//     snapshot write.
func (t *Tenant) AppendDiff(next *xmlschema.Snapshot, diff xmlschema.Diff) error {
	if next == nil {
		return fmt.Errorf("store: %s: nil snapshot", t.name)
	}
	if diff.To != next.Version() {
		return fmt.Errorf("store: %s: diff leads to version %d, snapshot is %d",
			t.name, diff.To, next.Version())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ensureTailLocked(); err != nil {
		return err
	}
	switch {
	case t.tailVersion != 0 && diff.To <= t.tailVersion:
		return nil
	case t.tailVersion != 0 && diff.From == t.tailVersion:
		payload, err := encodeDiff(diff)
		if err != nil {
			return fmt.Errorf("store: %s: %w", t.name, err)
		}
		if err := t.appendRecordLocked(frameRecord(recDiff, payload)); err != nil {
			return err
		}
		t.tailVersion = diff.To
		t.diffsSinceBase++
		return nil
	default:
		if t.tailVersion != 0 {
			t.gapHeals++
		}
		return t.saveBaseLocked(next.Version(), next.Repository())
	}
}

// AppendIndex appends the cluster-index state as a warm-start hint for
// the snapshot version it was taken of.
func (t *Tenant) AppendIndex(version uint64, metric string, st *clustered.State) error {
	if st == nil {
		return fmt.Errorf("store: %s: nil index state", t.name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendRecordLocked(frameRecord(recIndex, encodeIndex(version, metric, st)))
}

// AppendMemo appends a bounded warm slice of the scoring memo.
func (t *Tenant) AppendMemo(metric string, entries []engine.MemoEntry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendRecordLocked(frameRecord(recMemo, encodeMemo(metric, entries)))
}

// Compact rewrites the log as one fresh base record at the given
// version (plus optional index and memo records), atomically. A
// version behind the committed tail fails with ErrStaleCompact — the
// caller's snapshot is older than what the log already holds, and
// compaction must never rewind durable state.
func (t *Tenant) Compact(version uint64, repo *xmlschema.Repository, indexMetric string, ixState *clustered.State, memoMetric string, memo []engine.MemoEntry) error {
	if repo == nil {
		return fmt.Errorf("store: %s: nil repository", t.name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ensureTailLocked(); err != nil {
		return err
	}
	if version < t.tailVersion {
		return fmt.Errorf("store: %s: compact at version %d, log at %d: %w",
			t.name, version, t.tailVersion, ErrStaleCompact)
	}
	now := time.Now().Unix()
	basePayload, err := encodeBase(version, now, repo)
	if err != nil {
		return fmt.Errorf("store: %s: %w", t.name, err)
	}
	frames := [][]byte{frameRecord(recBase, basePayload)}
	if ixState != nil {
		frames = append(frames, frameRecord(recIndex, encodeIndex(version, indexMetric, ixState)))
	}
	if len(memo) > 0 {
		frames = append(frames, frameRecord(recMemo, encodeMemo(memoMetric, memo)))
	}
	if err := t.rewriteLocked(frames...); err != nil {
		t.tailKnown = false
		return err
	}
	t.tailKnown = true
	t.tailVersion = version
	t.diffsSinceBase = 0
	t.lastCompaction = now
	return nil
}

// Load reads and replays the tenant's log (see DecodeTenant). The tail
// cache adopts the load's (authoritative) view of the valid prefix, so
// a later append truncates exactly what the loader would have dropped.
func (t *Tenant) Load() (*TenantState, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	data, err := os.ReadFile(t.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: %s: %w", t.name, ErrNoBase)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", t.name, err)
	}
	ts, err := DecodeTenant(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", t.name, err)
	}
	ts.Name = t.name
	// Adopt the replay's tail: it enforces strictly more than the scan
	// (full schema decode), so its valid prefix is the safe one.
	if err := t.scanTailLocked(); err == nil && ts.Report.TailError != nil {
		replayValid := int64(len(data)) - ts.Report.DroppedBytes
		if replayValid < t.validLen {
			t.validLen = replayValid
		}
	}
	return ts, nil
}

// CompactSelf compacts the log from its own contents: load, then
// rewrite as a fresh base (keeping a version-matched index hint and
// the memo slice). It serves the offline path — compacting a tenant
// whose service is not resident.
func (t *Tenant) CompactSelf() error {
	ts, err := t.Load()
	if err != nil {
		return err
	}
	return t.Compact(ts.Version(), ts.Snapshot.Repository(), ts.IndexMetric, ts.Index, ts.MemoMetric, ts.Memo)
}

// Stats is a point-in-time view of one tenant's log file.
type Stats struct {
	// Tenant is the tenant name.
	Tenant string
	// SizeBytes is the committed log length in bytes (invalid suffixes
	// excluded), 0 for a tenant with no file yet.
	SizeBytes int64
	// Records counts committed records; DiffRecords those after the
	// last base — the quantity compaction thresholds watch.
	Records     int
	DiffRecords int
	// TailVersion is the last committed snapshot version (0: no base).
	TailVersion uint64
	// LastCompactionUnix is the unix-seconds stamp of the last base
	// record write (0: unknown).
	LastCompactionUnix int64
	// GapHeals counts AppendDiff calls that had to heal a version gap
	// with a full base rewrite.
	GapHeals int64
}

// Stats scans the log if needed and reports its committed shape.
func (t *Tenant) Stats() (Stats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ensureTailLocked(); err != nil {
		return Stats{}, err
	}
	return Stats{
		Tenant:             t.name,
		SizeBytes:          t.validLen,
		Records:            t.records,
		DiffRecords:        t.diffsSinceBase,
		TailVersion:        t.tailVersion,
		LastCompactionUnix: t.lastCompaction,
		GapHeals:           t.gapHeals,
	}, nil
}

// FailingWriter wraps a writer and injects a write fault after a given
// number of bytes: the test seam crash-safety properties are driven
// through (Store.wrapWriter). Writes pass through until Remaining is
// exhausted; the write crossing the boundary is torn at exactly that
// byte and fails, like a crash mid-write.
type FailingWriter struct {
	W         io.Writer
	Remaining int
}

// ErrInjectedFault is the failure a FailingWriter injects.
var ErrInjectedFault = errors.New("store: injected write fault")

// Write implements io.Writer with the injected fault.
func (f *FailingWriter) Write(p []byte) (int, error) {
	if f.Remaining <= 0 {
		return 0, ErrInjectedFault
	}
	if len(p) <= f.Remaining {
		n, err := f.W.Write(p)
		f.Remaining -= n
		return n, err
	}
	n, err := f.W.Write(p[:f.Remaining])
	f.Remaining -= n
	if err == nil {
		err = ErrInjectedFault
	}
	return n, err
}
