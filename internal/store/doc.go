// Package store is the durable tenant store of the matching layer: an
// append-friendly, single-file-per-tenant log that persists a tenant's
// repository snapshot, its incremental diff history, its cluster-index
// state, and a bounded warm slice of the scoring memo — everything a
// restarted process needs to recover the tenant to its exact pre-crash
// Version() and serve warm without re-clustering.
//
// # File format
//
// Every tenant lives in one file, <dir>/<escaped-tenant>.mstore:
//
//	header:  8 bytes  "MSTORE1\n"
//	records: repeated until EOF
//
// and every record is independently framed and checksummed:
//
//	uint32 LE  payload length N (bounded by MaxRecordBytes)
//	byte       record type: 'B' base, 'D' diff, 'I' index, 'M' memo
//	N bytes    payload
//	uint32 LE  CRC32C (Castagnoli) over the preceding 5+N bytes
//
// A record is committed only when all of its bytes (including the
// trailing CRC) reached the file. The loader walks records front to
// back; the first frame that is short (ErrTruncatedLog), fails its
// CRC, or decodes inconsistently (ErrCorruptRecord) ends the walk, and
// the state recovered from the valid prefix is served instead — a torn
// tail or a bit flip can cost the last uncommitted records, never
// correctness. Appenders truncate the file back to the valid prefix
// before writing, so a crashed append does not wedge the log.
//
// Payloads use uvarint/length-prefixed-string/float64-LE primitives;
// schemas are embedded as their canonical XML (xmlschema.WriteSchema),
// so the store shares one serialization with the archive tooling.
//
//	base  ('B'): fmt=1, snapshot version, unix-seconds written,
//	             schema count, count × schema XML (repository order)
//	diff  ('D'): fmt=1, from version, to version,
//	             removed count × name,
//	             replaced count × schema XML (the new schema),
//	             added count × schema XML
//	index ('I'): fmt=1, snapshot version, metric name, K, seed,
//	             workers, rebuild fraction, silhouette, base names,
//	             drift, K × medoid name,
//	             assignment count × (name, cluster) sorted by name
//	memo  ('M'): fmt=1, metric name, entry count × (a, b, score)
//	             sorted by (a, b)
//
// # Replay and versions
//
// The latest base record resets replay; each following diff must chain
// exactly (diff.From == current version) and is applied with
// Snapshot.Remove/Replace/Add, then pinned to diff.To with AtVersion —
// one logical update may bump the live version by more than one
// (compound mutations derive intermediate snapshots), and replay must
// land on the same number. A diff that does not chain is corruption:
// the walk stops there.
//
// Index and memo records are warm-start hints, not truth: an index
// record is adopted only when its version matches the final replayed
// version and its membership passes the nearest-medoid parity check
// (clustered.Restore); a memo record only when its metric matches and
// spot re-computation agrees (engine.Memo.Seed). A rejected hint
// degrades to a lazy rebuild, never to a wrong answer.
//
// # Compaction
//
// AppendDiff grows the file by one diff record per update. Compact
// rewrites the file as header + one fresh base record (plus current
// index/memo records) via write-to-temp-and-rename, so readers and
// crashes only ever observe the old complete file or the new one.
// Compacting with a snapshot older than the log tail fails with
// ErrStaleCompact — compaction must never rewind durable state.
//
// # Concurrency
//
// A Store and its Tenant handles are safe for concurrent use; all
// operations on one tenant serialize on the tenant's mutex. Different
// tenants are fully independent (one file each).
package store
