package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/matchers/clustered"
	"repro/internal/xmlschema"
)

func mustSchema(t testing.TB, name string, leaves ...string) *xmlschema.Schema {
	t.Helper()
	root := xmlschema.NewElement(name + "Root")
	for _, l := range leaves {
		root.Add(xmlschema.NewElement(l))
	}
	s, err := xmlschema.NewSchema(name, root)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSnapshot(t testing.TB, schemas ...*xmlschema.Schema) *xmlschema.Snapshot {
	t.Helper()
	repo := xmlschema.NewRepository()
	for _, s := range schemas {
		if err := repo.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := xmlschema.NewSnapshot(repo)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// repoBytes is the canonical serialized form used for bit-identity
// assertions between recovered and live repositories.
func repoBytes(t testing.TB, repo *xmlschema.Repository) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := xmlschema.WriteRepository(&buf, repo); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openTestStore(t testing.TB) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRoundTripBaseAndDiffs(t *testing.T) {
	st := openTestStore(t)
	ten := st.Tenant("acme")

	snap := mustSnapshot(t, mustSchema(t, "a", "x", "y"), mustSchema(t, "b", "z"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}

	// A few updates: add, replace, remove — each appended as one diff.
	next, err := snap.Add(mustSchema(t, "c", "k1", "k2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}
	snap = next
	if next, err = snap.Replace(mustSchema(t, "b", "z", "z2")); err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}
	snap = next
	if next, err = snap.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}
	snap = next

	ts, err := ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Name != "acme" {
		t.Fatalf("recovered name %q", ts.Name)
	}
	if ts.Version() != snap.Version() {
		t.Fatalf("recovered version %d, live %d", ts.Version(), snap.Version())
	}
	if got, want := repoBytes(t, ts.Snapshot.Repository()), repoBytes(t, snap.Repository()); !bytes.Equal(got, want) {
		t.Fatalf("recovered repository differs:\n%s\nwant:\n%s", got, want)
	}
	if ts.Report.TailError != nil || ts.Report.DroppedBytes != 0 {
		t.Fatalf("clean log reported damage: %+v", ts.Report)
	}
	if ts.Report.DiffsReplayed != 3 {
		t.Fatalf("DiffsReplayed = %d, want 3", ts.Report.DiffsReplayed)
	}

	// The recovered lineage keeps counting past the persisted version.
	again, err := ts.Snapshot.Add(mustSchema(t, "d"))
	if err != nil {
		t.Fatal(err)
	}
	if again.Version() <= snap.Version() {
		t.Fatalf("recovered lineage version %d not past %d", again.Version(), snap.Version())
	}
}

func TestAppendDiffNoopAndGapHeal(t *testing.T) {
	st := openTestStore(t)
	ten := st.Tenant("t")

	snap := mustSnapshot(t, mustSchema(t, "a", "x"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}
	next, err := snap.Add(mustSchema(t, "b"))
	if err != nil {
		t.Fatal(err)
	}
	diff := xmlschema.DiffSnapshots(snap, next)
	if err := ten.AppendDiff(next, diff); err != nil {
		t.Fatal(err)
	}
	before, err := ten.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// Replaying the same transition (fast-forward path) must be a no-op.
	if err := ten.AppendDiff(next, diff); err != nil {
		t.Fatal(err)
	}
	after, err := ten.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("idempotent append changed the log: %+v -> %+v", before, after)
	}

	// A version gap (skipped transitions) heals with a full base.
	gap1, err := next.Add(mustSchema(t, "c"))
	if err != nil {
		t.Fatal(err)
	}
	gap2, err := gap1.Add(mustSchema(t, "d"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(gap2, xmlschema.DiffSnapshots(gap1, gap2)); err != nil {
		t.Fatal(err)
	}
	stats, err := ten.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.GapHeals != 1 {
		t.Fatalf("GapHeals = %d, want 1", stats.GapHeals)
	}
	if stats.TailVersion != gap2.Version() || stats.DiffRecords != 0 {
		t.Fatalf("gap heal left stats %+v", stats)
	}
	ts, err := ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Version() != gap2.Version() {
		t.Fatalf("recovered %d after gap heal, want %d", ts.Version(), gap2.Version())
	}
	if !bytes.Equal(repoBytes(t, ts.Snapshot.Repository()), repoBytes(t, gap2.Repository())) {
		t.Fatal("gap-healed repository differs from live")
	}
}

func TestCorruptSuffixFallsBackToPrefix(t *testing.T) {
	st := openTestStore(t)
	ten := st.Tenant("t")

	snap := mustSnapshot(t, mustSchema(t, "a", "x"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}
	next, err := snap.Add(mustSchema(t, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(ten.Path())
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip in the last record: load recovers the base, typed error.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0x40
	if err := os.WriteFile(ten.Path(), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := st.Tenant("t").Load() // same handle; cache rescans on load
	if err != nil {
		t.Fatal(err)
	}
	if ts.Version() != snap.Version() {
		t.Fatalf("recovered %d from flipped tail, want base %d", ts.Version(), snap.Version())
	}
	if !errors.Is(ts.Report.TailError, ErrCorruptRecord) {
		t.Fatalf("TailError = %v, want ErrCorruptRecord", ts.Report.TailError)
	}
	if ts.Report.DroppedBytes == 0 {
		t.Fatal("DroppedBytes = 0 for damaged tail")
	}

	// Truncation mid-record: same fallback, truncation-typed error.
	if err := os.WriteFile(ten.Path(), data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err = ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Version() != snap.Version() {
		t.Fatalf("recovered %d from truncated tail, want base %d", ts.Version(), snap.Version())
	}
	if !errors.Is(ts.Report.TailError, ErrTruncatedLog) {
		t.Fatalf("TailError = %v, want ErrTruncatedLog", ts.Report.TailError)
	}

	// Appending over the damaged file truncates the torn suffix and
	// chains onto the intact prefix.
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}
	ts, err = ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Version() != next.Version() || ts.Report.TailError != nil {
		t.Fatalf("repaired log recovered %d (tail err %v), want clean %d",
			ts.Version(), ts.Report.TailError, next.Version())
	}
}

func TestWholeFileGarbage(t *testing.T) {
	st := openTestStore(t)
	ten := st.Tenant("t")
	if err := os.WriteFile(ten.Path(), []byte("<xml>not a store</xml>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ten.Load(); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("Load over garbage = %v, want ErrBadHeader", err)
	}
	// Header intact but no base record at all.
	if err := os.WriteFile(ten.Path(), []byte(magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ten.Load(); !errors.Is(err, ErrNoBase) {
		t.Fatalf("Load over empty log = %v, want ErrNoBase", err)
	}
	// A garbage file is recoverable by a fresh base write.
	if err := os.WriteFile(ten.Path(), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := mustSnapshot(t, mustSchema(t, "a"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}
	if ts, err := ten.Load(); err != nil || ts.Version() != snap.Version() {
		t.Fatalf("Load after recovery write: %v", err)
	}
}

func TestLoadMissingTenant(t *testing.T) {
	st := openTestStore(t)
	if _, err := st.Tenant("nope").Load(); !errors.Is(err, ErrNoBase) {
		t.Fatalf("Load of absent tenant = %v, want ErrNoBase", err)
	}
}

func TestCompactAndStaleCompact(t *testing.T) {
	st := openTestStore(t)
	ten := st.Tenant("t")

	snap := mustSnapshot(t, mustSchema(t, "a", "x"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}
	var err error
	for _, name := range []string{"b", "c", "d"} {
		next, aerr := snap.Add(mustSchema(t, name))
		if aerr != nil {
			t.Fatal(aerr)
		}
		if err = ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
			t.Fatal(err)
		}
		snap = next
	}
	grown, err := ten.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if grown.DiffRecords != 3 {
		t.Fatalf("DiffRecords = %d, want 3", grown.DiffRecords)
	}

	// Compacting with an older snapshot must refuse.
	old := mustSnapshot(t, mustSchema(t, "a", "x"))
	if err := ten.Compact(old.Version(), old.Repository(), "", nil, "", nil); !errors.Is(err, ErrStaleCompact) {
		t.Fatalf("stale compact = %v, want ErrStaleCompact", err)
	}

	if err := ten.Compact(snap.Version(), snap.Repository(), "", nil, "", nil); err != nil {
		t.Fatal(err)
	}
	compacted, err := ten.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if compacted.DiffRecords != 0 || compacted.TailVersion != snap.Version() {
		t.Fatalf("post-compact stats %+v", compacted)
	}
	if compacted.SizeBytes >= grown.SizeBytes {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", grown.SizeBytes, compacted.SizeBytes)
	}
	if compacted.LastCompactionUnix == 0 {
		t.Fatal("LastCompactionUnix not stamped")
	}
	ts, err := ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Version() != snap.Version() {
		t.Fatalf("recovered %d post-compact, want %d", ts.Version(), snap.Version())
	}
	if !bytes.Equal(repoBytes(t, ts.Snapshot.Repository()), repoBytes(t, snap.Repository())) {
		t.Fatal("compacted repository differs from live")
	}

	// CompactSelf keeps the log loadable and at the same version.
	next, err := snap.Add(mustSchema(t, "e"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}
	if err := ten.CompactSelf(); err != nil {
		t.Fatal(err)
	}
	if ts, err = ten.Load(); err != nil || ts.Version() != next.Version() {
		t.Fatalf("CompactSelf: load %v version %d, want %d", err, ts.Version(), next.Version())
	}
}

func TestIndexAndMemoHints(t *testing.T) {
	st := openTestStore(t)
	ten := st.Tenant("t")

	snap := mustSnapshot(t, mustSchema(t, "a", "x"), mustSchema(t, "b", "x"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}
	ixState := &clustered.State{
		K:           1,
		MedoidNames: []string{"x"},
		BaseNames:   3,
		Assign:      map[string]int{"aRoot": 0, "bRoot": 0, "x": 0},
	}
	if err := ten.AppendIndex(snap.Version(), "jaccard-ngram", ixState); err != nil {
		t.Fatal(err)
	}
	memo := []engine.MemoEntry{{A: "aRoot", B: "bRoot", Score: 0.25}, {A: "aRoot", B: "x", Score: 0.5}}
	if err := ten.AppendMemo("jaccard-ngram", memo); err != nil {
		t.Fatal(err)
	}

	ts, err := ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Index == nil || ts.IndexMetric != "jaccard-ngram" {
		t.Fatalf("index hint not recovered: %+v", ts.Index)
	}
	if len(ts.Index.Assign) != 3 || ts.Index.Assign["x"] != 0 || ts.Index.K != 1 {
		t.Fatalf("index hint content %+v", ts.Index)
	}
	if ts.MemoMetric != "jaccard-ngram" || len(ts.Memo) != 2 || ts.Memo[1].Score != 0.5 {
		t.Fatalf("memo hint content %v %v", ts.MemoMetric, ts.Memo)
	}

	// A diff appended after the index record makes the hint stale: it
	// must be dropped, never served for the wrong version.
	next, err := snap.Add(mustSchema(t, "c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.AppendDiff(next, xmlschema.DiffSnapshots(snap, next)); err != nil {
		t.Fatal(err)
	}
	ts, err = ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Index != nil {
		t.Fatal("stale index hint survived a later diff")
	}
	if len(ts.Memo) != 2 {
		t.Fatal("memo hint should survive (validated by recompute, not version)")
	}
}

func TestTenantNameEscapingAndListing(t *testing.T) {
	names := []string{"plain", "has space", "slash/../dot", "uni·code", "UPPER_low-er.9"}
	st := openTestStore(t)
	snap := mustSnapshot(t, mustSchema(t, "a"))
	for _, n := range names {
		if err := st.Tenant(n).SaveBase(snap.Version(), snap.Repository()); err != nil {
			t.Fatalf("SaveBase(%q): %v", n, err)
		}
	}
	// Escaped stems must stay inside the store directory.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("%d files for %d tenants", len(entries), len(names))
	}
	for _, e := range entries {
		if filepath.Dir(filepath.Join(st.Dir(), e.Name())) != filepath.Clean(st.Dir()) {
			t.Fatalf("tenant file escaped the store dir: %q", e.Name())
		}
	}
	got, err := st.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), names...)
	sortStrings(want)
	if len(got) != len(want) {
		t.Fatalf("Tenants() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tenants() = %v, want %v", got, want)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestCompoundDiffReplaysToExactVersion(t *testing.T) {
	// One logical update bumping the version by three (remove + replace
	// + add, the admin full-replacement shape): replay must land on the
	// same version number, not just the same content.
	st := openTestStore(t)
	ten := st.Tenant("t")

	snap := mustSnapshot(t, mustSchema(t, "a", "x"), mustSchema(t, "b", "y"))
	if err := ten.SaveBase(snap.Version(), snap.Repository()); err != nil {
		t.Fatal(err)
	}
	s1, err := snap.Remove("a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s1.Replace(mustSchema(t, "b", "y", "y2"))
	if err != nil {
		t.Fatal(err)
	}
	s3, err := s2.Add(mustSchema(t, "c"))
	if err != nil {
		t.Fatal(err)
	}
	if s3.Version() != snap.Version()+3 {
		t.Fatalf("compound update version %d, want %d", s3.Version(), snap.Version()+3)
	}
	if err := ten.AppendDiff(s3, xmlschema.DiffSnapshots(snap, s3)); err != nil {
		t.Fatal(err)
	}
	ts, err := ten.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Version() != s3.Version() {
		t.Fatalf("replayed version %d, want %d", ts.Version(), s3.Version())
	}
	if !bytes.Equal(repoBytes(t, ts.Snapshot.Repository()), repoBytes(t, s3.Repository())) {
		t.Fatal("replayed repository differs")
	}
}
