package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/matchers/clustered"
	"repro/internal/xmlschema"
)

// encodeTenantFile builds a well-formed store file in memory: the seed
// corpus real archives mutate from.
func encodeTenantFile(t testing.TB) []byte {
	t.Helper()
	snap := mustSnapshot(t, mustSchema(t, "a", "x", "y"), mustSchema(t, "b", "z"))
	base, err := encodeBase(snap.Version(), 1754600000, snap.Repository())
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Add(mustSchema(t, "c", "k"))
	if err != nil {
		t.Fatal(err)
	}
	diffPayload, err := encodeDiff(xmlschema.DiffSnapshots(snap, next))
	if err != nil {
		t.Fatal(err)
	}
	ixPayload := encodeIndex(next.Version(), "m", &clustered.State{
		K: 1, MedoidNames: []string{"x"}, BaseNames: 4,
		Assign: map[string]int{"aRoot": 0, "bRoot": 0, "cRoot": 0, "x": 0, "y": 0, "z": 0, "k": 0},
	})
	memoPayload := encodeMemo("m", []engine.MemoEntry{{A: "x", B: "y", Score: 0.5}})
	var f bytes.Buffer
	f.WriteString(magic)
	f.Write(frameRecord(recBase, base))
	f.Write(frameRecord(recDiff, diffPayload))
	f.Write(frameRecord(recIndex, ixPayload))
	f.Write(frameRecord(recMemo, memoPayload))
	return f.Bytes()
}

// FuzzLoadTenant drives DecodeTenant — the whole read side of the
// store — with arbitrary bytes. The invariants under fuzzing:
//
//   - never panic, whatever the input;
//   - a non-nil error is always one of the typed classes
//     (ErrCorruptRecord wraps, or ErrNoBase);
//   - a returned state always carries a snapshot at version ≥ 1 whose
//     repository re-serializes (it decoded from schema XML, so it must
//     encode back);
//   - a returned index hint never crashes the parity self-check
//     (clustered.Restore verifies or rejects it, both are fine).
func FuzzLoadTenant(f *testing.F) {
	valid := encodeTenantFile(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("MSTORE2\n junk"))
	// Mutated header.
	h := append([]byte(nil), valid...)
	h[0] ^= 0xff
	f.Add(h)
	// Flipped CRC of the base record.
	c := append([]byte(nil), valid...)
	c[len(magic)+9] ^= 0x01
	f.Add(c)
	// Truncated mid-record.
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:len(magic)+3])
	// Length prefix inflated beyond the bound.
	l := append([]byte(nil), valid...)
	l[len(magic)+3] = 0xff
	f.Add(l)

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeTenant(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrNoBase) {
				t.Fatalf("untyped load error %v", err)
			}
			if ts != nil {
				t.Fatal("state returned alongside an error")
			}
			return
		}
		if ts.Snapshot == nil || ts.Version() < 1 {
			t.Fatalf("accepted state without a valid snapshot: %+v", ts)
		}
		var buf bytes.Buffer
		if werr := xmlschema.WriteRepository(&buf, ts.Snapshot.Repository()); werr != nil {
			t.Fatalf("recovered repository does not re-serialize: %v", werr)
		}
		if ts.Report.TailError != nil && !errors.Is(ts.Report.TailError, ErrCorruptRecord) {
			t.Fatalf("untyped tail error %v", ts.Report.TailError)
		}
		if ts.Index != nil {
			// The parity self-check must classify the hint, not panic on
			// it; a crafted state that fails parity must be rejected.
			if _, rerr := clustered.Restore(ts.Snapshot.Repository(), *ts.Index, nil); rerr != nil {
				return
			}
		}
		if len(ts.Memo) > 0 {
			// Seed with full verification either accepts or rejects.
			memo := engine.New(nil)
			if ts.MemoMetric == memo.MetricName() {
				_ = memo.Seed(ts.Memo, len(ts.Memo))
			}
		}
	})
}
