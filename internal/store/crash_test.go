package store

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/xmlschema"
)

// TestCrashRecoveryProperty is the crash-safety property test `make
// store-prop` runs (with -race -shuffle=on): a writer is killed at a
// random byte offset mid-append, the store is reopened like a fresh
// process would, and the recovered snapshot must be bit-identical to
// the last fully-committed version — every time, at every offset.
func TestCrashRecoveryProperty(t *testing.T) {
	const rounds = 60
	rng := rand.New(rand.NewSource(0x5eed))
	dir := t.TempDir()

	open := func() *Store {
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := open()
	live := mustSnapshot(t,
		mustSchema(t, "a", "x", "y"),
		mustSchema(t, "b", "z"),
	)
	if err := st.Tenant("t").SaveBase(live.Version(), live.Repository()); err != nil {
		t.Fatal(err)
	}
	// committed mirrors what the log has durably acknowledged.
	committed := live
	gen := 0

	mutate := func(s *xmlschema.Snapshot) *xmlschema.Snapshot {
		gen++
		var next *xmlschema.Snapshot
		var err error
		switch gen % 3 {
		case 0:
			next, err = s.Add(mustSchema(t, nameOf("g", gen), "l1", "l2"))
		case 1:
			next, err = s.Replace(mustSchema(t, "a", "x", nameOf("leaf", gen)))
		default:
			// Compound update: replace + add in one transition.
			if next, err = s.Replace(mustSchema(t, "b", "z", nameOf("zz", gen))); err == nil {
				next, err = next.Add(mustSchema(t, nameOf("h", gen)))
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		return next
	}

	for round := 0; round < rounds; round++ {
		next := mutate(live)
		diff := xmlschema.DiffSnapshots(live, next)

		// Kill the writer after a random number of bytes of this append
		// (0 = before the first byte; large = maybe no fault at all).
		budget := rng.Intn(200)
		st.wrapWriter = func(_ string, w io.Writer) io.Writer {
			return &FailingWriter{W: w, Remaining: budget}
		}
		err := st.Tenant("t").AppendDiff(next, diff)
		st.wrapWriter = nil

		if err == nil {
			committed = next
		} else if !errors.Is(err, ErrInjectedFault) && !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("round %d: unexpected append error %v", round, err)
		}
		live = next

		// "Crash": drop all in-memory state, reopen from disk alone.
		st = open()
		ts, lerr := st.Tenant("t").Load()
		if lerr != nil {
			t.Fatalf("round %d: recovery load: %v", round, lerr)
		}
		if ts.Version() != committed.Version() {
			t.Fatalf("round %d (fault after %d bytes): recovered version %d, committed %d",
				round, budget, ts.Version(), committed.Version())
		}
		if got, want := repoBytes(t, ts.Snapshot.Repository()), repoBytes(t, committed.Repository()); !bytes.Equal(got, want) {
			t.Fatalf("round %d: recovered repository not bit-identical to committed version %d",
				round, committed.Version())
		}

		// Re-apply the possibly-torn transition without faults: the store
		// must converge (append or gap-heal) so the next round chains.
		if err := st.Tenant("t").AppendDiff(live, xmlschema.DiffSnapshots(committed, live)); err != nil {
			t.Fatalf("round %d: repair append: %v", round, err)
		}
		committed = live

		// Occasionally compact mid-history, also under fault injection.
		if round%11 == 5 {
			budget := rng.Intn(300)
			st.wrapWriter = func(_ string, w io.Writer) io.Writer {
				return &FailingWriter{W: w, Remaining: budget}
			}
			cerr := st.Tenant("t").Compact(committed.Version(), committed.Repository(), "", nil, "", nil)
			st.wrapWriter = nil
			if cerr != nil && !errors.Is(cerr, ErrInjectedFault) && !errors.Is(cerr, io.ErrShortWrite) {
				t.Fatalf("round %d: compact error %v", round, cerr)
			}
			// Temp-and-rename: a torn compact must leave the old file whole.
			st = open()
			ts, lerr := st.Tenant("t").Load()
			if lerr != nil {
				t.Fatalf("round %d: load after compact fault: %v", round, lerr)
			}
			if ts.Version() != committed.Version() {
				t.Fatalf("round %d: compact (fault after %d bytes) moved version to %d, want %d",
					round, budget, ts.Version(), committed.Version())
			}
		}
	}
}

func nameOf(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{digits[n%10]}, b...)
		n /= 10
	}
	return prefix + string(b)
}

// TestFailingWriter pins the seam's own contract: pass-through until
// the budget, torn at exactly the boundary, failing ever after.
func TestFailingWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := &FailingWriter{W: &buf, Remaining: 5}
	n, err := fw.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	n, err = fw.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("crossing budget: n=%d err=%v", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("written %q, want %q", buf.String(), "abcde")
	}
	if n, err = fw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("after budget: n=%d err=%v", n, err)
	}
}
