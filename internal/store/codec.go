// Record payload codecs and the log replay. DecodeTenant is the whole
// read side of the store: it walks the framed records of one tenant
// file, replays base + diff records into a snapshot at the exact
// persisted version, and carries the index/memo warm-start hints out
// for the caller to validate. Everything here is pure — no file I/O —
// which is what makes the corruption discipline fuzzable.

package store

import (
	"bytes"
	"fmt"

	"repro/internal/engine"
	"repro/internal/matchers/clustered"
	"repro/internal/xmlschema"
)

const payloadFormat = 1

// encodeSchema serializes one schema as its canonical XML.
func (e *encoder) schema(s *xmlschema.Schema) error {
	var buf bytes.Buffer
	if err := xmlschema.WriteSchema(&buf, s); err != nil {
		return err
	}
	e.str(buf.String())
	return nil
}

// decodeSchema parses one embedded schema XML.
func (d *decoder) schema() *xmlschema.Schema {
	raw := d.str()
	if d.err != nil {
		return nil
	}
	s, err := xmlschema.ReadSchema(bytes.NewReader([]byte(raw)))
	if err != nil {
		d.fail("embedded schema: %v", err)
		return nil
	}
	return s
}

// encodeBase builds a base-record payload: the full repository at one
// version, plus the wall-clock second it was written (the persisted
// "last compaction" stamp; zero is allowed and means unknown).
func encodeBase(version uint64, writtenUnix int64, repo *xmlschema.Repository) ([]byte, error) {
	e := &encoder{}
	e.uvarint(payloadFormat)
	e.uvarint(version)
	e.uvarint(uint64(writtenUnix))
	schemas := repo.Schemas()
	e.uvarint(uint64(len(schemas)))
	for _, s := range schemas {
		if err := e.schema(s); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

// decodeBase rebuilds the repository and pins it at the persisted
// version (a fresh lineage continuing the original numbering).
func decodeBase(payload []byte) (*xmlschema.Snapshot, int64, error) {
	d := &decoder{b: payload}
	if f := d.uvarint(); d.err == nil && f != payloadFormat {
		return nil, 0, fmt.Errorf("%w: base format %d", ErrCorruptRecord, f)
	}
	version := d.uvarint()
	written := int64(d.uvarint())
	n := d.count(1)
	repo := xmlschema.NewRepository()
	for i := 0; i < n; i++ {
		s := d.schema()
		if d.err != nil {
			break
		}
		if err := repo.Add(s); err != nil {
			d.fail("base schema %d: %v", i, err)
			break
		}
	}
	if err := d.done(); err != nil {
		return nil, 0, err
	}
	snap, err := xmlschema.RestoreSnapshot(repo, version)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: base: %v", ErrCorruptRecord, err)
	}
	return snap, written, nil
}

// encodeDiff builds a diff-record payload from a pointer-level
// snapshot diff: removed schemas by name, replaced and added schemas
// by content.
func encodeDiff(diff xmlschema.Diff) ([]byte, error) {
	e := &encoder{}
	e.uvarint(payloadFormat)
	e.uvarint(diff.From)
	e.uvarint(diff.To)
	e.uvarint(uint64(len(diff.Removed)))
	for _, s := range diff.Removed {
		e.str(s.Name)
	}
	e.uvarint(uint64(len(diff.Replaced)))
	for _, ch := range diff.Replaced {
		if err := e.schema(ch.New); err != nil {
			return nil, err
		}
	}
	e.uvarint(uint64(len(diff.Added)))
	for _, s := range diff.Added {
		if err := e.schema(s); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

// decodedDiff is a diff record in replayable form.
type decodedDiff struct {
	from, to uint64
	removed  []string
	replaced []*xmlschema.Schema
	added    []*xmlschema.Schema
}

func decodeDiff(payload []byte) (*decodedDiff, error) {
	d := &decoder{b: payload}
	if f := d.uvarint(); d.err == nil && f != payloadFormat {
		return nil, fmt.Errorf("%w: diff format %d", ErrCorruptRecord, f)
	}
	dd := &decodedDiff{from: d.uvarint(), to: d.uvarint()}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		dd.removed = append(dd.removed, d.str())
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		dd.replaced = append(dd.replaced, d.schema())
	}
	for i, n := 0, d.count(1); i < n && d.err == nil; i++ {
		dd.added = append(dd.added, d.schema())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if dd.to <= dd.from {
		return nil, fmt.Errorf("%w: diff versions %d → %d", ErrCorruptRecord, dd.from, dd.to)
	}
	return dd, nil
}

// apply replays the diff onto snap, landing exactly on dd.to.
func (dd *decodedDiff) apply(snap *xmlschema.Snapshot) (*xmlschema.Snapshot, error) {
	var err error
	if len(dd.removed) > 0 {
		if snap, err = snap.Remove(dd.removed...); err != nil {
			return nil, err
		}
	}
	if len(dd.replaced) > 0 {
		if snap, err = snap.Replace(dd.replaced...); err != nil {
			return nil, err
		}
	}
	if len(dd.added) > 0 {
		if snap, err = snap.Add(dd.added...); err != nil {
			return nil, err
		}
	}
	return snap.AtVersion(dd.to)
}

// encodeIndex builds an index-record payload from a cluster-index
// state, stamped with the snapshot version it describes and the metric
// its distances came from.
func encodeIndex(version uint64, metric string, st *clustered.State) []byte {
	e := &encoder{}
	e.uvarint(payloadFormat)
	e.uvarint(version)
	e.str(metric)
	e.uvarint(uint64(st.K))
	e.uvarint(st.Seed)
	e.uvarint(uint64(st.Workers))
	e.f64(st.RebuildFraction)
	e.f64(st.Silhouette)
	e.uvarint(uint64(st.BaseNames))
	e.uvarint(uint64(st.Drift))
	for _, mn := range st.MedoidNames {
		e.str(mn)
	}
	names, clusters := st.SortedAssignments()
	e.uvarint(uint64(len(names)))
	for i, n := range names {
		e.str(n)
		e.uvarint(uint64(clusters[i]))
	}
	return e.b
}

// indexRecord is a decoded index hint, not yet validated against a
// repository (that is clustered.Restore's job).
type indexRecord struct {
	version uint64
	metric  string
	state   clustered.State
}

func decodeIndex(payload []byte) (*indexRecord, error) {
	d := &decoder{b: payload}
	if f := d.uvarint(); d.err == nil && f != payloadFormat {
		return nil, fmt.Errorf("%w: index format %d", ErrCorruptRecord, f)
	}
	ir := &indexRecord{version: d.uvarint(), metric: d.str()}
	k := d.count(1)
	ir.state.K = k
	ir.state.Seed = d.uvarint()
	ir.state.Workers = int(d.uvarint())
	ir.state.RebuildFraction = d.f64()
	ir.state.Silhouette = d.f64()
	ir.state.BaseNames = int(d.uvarint())
	ir.state.Drift = int(d.uvarint())
	for i := 0; i < k && d.err == nil; i++ {
		ir.state.MedoidNames = append(ir.state.MedoidNames, d.str())
	}
	n := d.count(2)
	ir.state.Assign = make(map[string]int, n)
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str()
		ir.state.Assign[name] = int(d.uvarint())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if len(ir.state.Assign) != n {
		return nil, fmt.Errorf("%w: duplicate index assignment names", ErrCorruptRecord)
	}
	return ir, nil
}

// encodeMemo builds a memo-record payload: the metric name and a
// bounded, (A, B)-sorted slice of memoized scores.
func encodeMemo(metric string, entries []engine.MemoEntry) []byte {
	e := &encoder{}
	e.uvarint(payloadFormat)
	e.str(metric)
	e.uvarint(uint64(len(entries)))
	for _, en := range entries {
		e.str(en.A)
		e.str(en.B)
		e.f64(en.Score)
	}
	return e.b
}

func decodeMemo(payload []byte) (metric string, entries []engine.MemoEntry, err error) {
	d := &decoder{b: payload}
	if f := d.uvarint(); d.err == nil && f != payloadFormat {
		return "", nil, fmt.Errorf("%w: memo format %d", ErrCorruptRecord, f)
	}
	metric = d.str()
	n := d.count(10)
	for i := 0; i < n && d.err == nil; i++ {
		entries = append(entries, engine.MemoEntry{A: d.str(), B: d.str(), Score: d.f64()})
	}
	if err := d.done(); err != nil {
		return "", nil, err
	}
	return metric, entries, nil
}

// LoadReport describes how a load went: how much of the file was
// usable and what was dropped.
type LoadReport struct {
	// Records is the number of committed records replayed (all types).
	Records int
	// DiffsReplayed counts the diff records applied after the last base.
	DiffsReplayed int
	// DroppedBytes is the length of the invalid suffix, zero for a
	// clean file.
	DroppedBytes int64
	// TailError is the typed reason the walk stopped before EOF
	// (ErrTruncatedLog / ErrCorruptRecord wrap), nil for a clean file.
	TailError error
}

// TenantState is the recovered durable state of one tenant.
type TenantState struct {
	// Name is the tenant name (empty when decoded from raw bytes).
	Name string
	// Snapshot is the recovered repository snapshot at exactly the last
	// committed version.
	Snapshot *xmlschema.Snapshot
	// LastCompaction is the unix-seconds stamp of the base record the
	// snapshot was replayed from (0: unknown).
	LastCompaction int64
	// Index is the persisted cluster-index state whose version matched
	// the final snapshot version; nil when absent or stale. It is a
	// hint: callers validate it with clustered.Restore before serving.
	Index *clustered.State
	// IndexMetric names the metric the index distances came from.
	IndexMetric string
	// MemoMetric and Memo are the persisted warm memo slice (empty when
	// absent). A hint: callers validate with engine.Memo.Seed.
	MemoMetric string
	Memo       []engine.MemoEntry
	// Report describes the load itself.
	Report LoadReport
}

// Version returns the recovered snapshot version.
func (ts *TenantState) Version() uint64 { return ts.Snapshot.Version() }

// decodeTail is the record walk shared by full loads and the appender's
// tail scan: it visits every committed record of data (header already
// expected), calling visit per record, and returns the byte length of
// the valid prefix plus the typed error that ended the walk early (nil
// at clean EOF). visit returning an error marks the current record
// invalid — the prefix ends before it.
func decodeTail(data []byte, visit func(typ byte, payload []byte) error) (validLen int64, tailErr error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return 0, ErrBadHeader
	}
	off := len(magic)
	for off < len(data) {
		typ, payload, next, err := nextRecord(data, off)
		if err != nil {
			return int64(off), err
		}
		if err := visit(typ, payload); err != nil {
			return int64(off), err
		}
		off = next
	}
	return int64(off), nil
}

// DecodeTenant recovers a tenant state from the raw bytes of one store
// file. It never panics on arbitrary input; it returns a state only
// when a base record and every chained diff of the valid prefix
// replayed consistently, and classifies everything else under the
// typed errors of this package. A file whose suffix is damaged still
// yields the state of its valid prefix, with Report.TailError naming
// the damage.
func DecodeTenant(data []byte) (*TenantState, error) {
	ts := &TenantState{}
	var snap *xmlschema.Snapshot
	var lastIndex *indexRecord
	validLen, tailErr := decodeTail(data, func(typ byte, payload []byte) error {
		switch typ {
		case recBase:
			s, written, err := decodeBase(payload)
			if err != nil {
				return err
			}
			// A base resets replay; versions may only move forward.
			if snap != nil && s.Version() < snap.Version() {
				return fmt.Errorf("%w: base record rewinds version %d to %d",
					ErrCorruptRecord, snap.Version(), s.Version())
			}
			snap = s
			ts.LastCompaction = written
			ts.Report.DiffsReplayed = 0
		case recDiff:
			dd, err := decodeDiff(payload)
			if err != nil {
				return err
			}
			if snap == nil {
				return fmt.Errorf("%w: diff record before any base", ErrCorruptRecord)
			}
			if dd.from != snap.Version() {
				return fmt.Errorf("%w: diff chains from version %d, log is at %d",
					ErrCorruptRecord, dd.from, snap.Version())
			}
			next, err := dd.apply(snap)
			if err != nil {
				return fmt.Errorf("%w: diff replay: %v", ErrCorruptRecord, err)
			}
			snap = next
			ts.Report.DiffsReplayed++
		case recIndex:
			ir, err := decodeIndex(payload)
			if err != nil {
				return err
			}
			lastIndex = ir
		case recMemo:
			metric, entries, err := decodeMemo(payload)
			if err != nil {
				return err
			}
			ts.MemoMetric, ts.Memo = metric, entries
		default:
			return fmt.Errorf("%w: unknown record type %q", ErrCorruptRecord, typ)
		}
		ts.Report.Records++
		return nil
	})
	ts.Report.DroppedBytes = int64(len(data)) - validLen
	ts.Report.TailError = tailErr
	if tailErr != nil && ts.Report.Records == 0 && validLen == 0 {
		// Not even the header was usable.
		return nil, tailErr
	}
	if snap == nil {
		if tailErr != nil {
			return nil, tailErr
		}
		return nil, ErrNoBase
	}
	ts.Snapshot = snap
	// The index hint is only meaningful for the snapshot it was taken
	// of; a stale one (diffs appended after it) is dropped here rather
	// than served wrong.
	if lastIndex != nil && lastIndex.version == snap.Version() {
		ts.Index = &lastIndex.state
		ts.IndexMetric = lastIndex.metric
	}
	return ts, nil
}
