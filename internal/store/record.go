package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Typed load failures. Callers branch with errors.Is; every corruption
// class wraps ErrCorruptRecord so one check covers them all.
var (
	// ErrCorruptRecord marks a record whose checksum, payload, or replay
	// consistency failed — the file holds bytes that were never written
	// by a correct appender (or were damaged since).
	ErrCorruptRecord = errors.New("store: corrupt record")
	// ErrTruncatedLog marks a file that ends mid-record: a torn final
	// append. The prefix before the torn record is intact.
	ErrTruncatedLog = fmt.Errorf("%w: truncated log", ErrCorruptRecord)
	// ErrBadHeader marks a file too short for, or not starting with, the
	// store magic.
	ErrBadHeader = fmt.Errorf("%w: bad or missing file header", ErrCorruptRecord)
	// ErrNoBase marks a log whose valid prefix holds no base record:
	// nothing can be recovered from it.
	ErrNoBase = errors.New("store: log has no base record")
	// ErrStaleCompact is returned by Compact when the snapshot offered
	// for the new base record is older than the log's committed tail.
	ErrStaleCompact = errors.New("store: compaction snapshot older than log tail")
)

// magic is the 8-byte file header; the trailing newline makes an
// accidental text file fail fast.
const magic = "MSTORE1\n"

// MaxRecordBytes bounds a single record's payload: a length prefix
// beyond it is treated as corruption rather than attempted as an
// allocation. 256 MiB is far above any real tenant record.
const MaxRecordBytes = 1 << 28

// recordOverhead is the framing cost per record: 4-byte length, 1-byte
// type, 4-byte CRC.
const recordOverhead = 9

// Record types.
const (
	recBase  byte = 'B'
	recDiff  byte = 'D'
	recIndex byte = 'I'
	recMemo  byte = 'M'
)

// castagnoli is the CRC32C polynomial table (the iSCSI/SSE4.2 one).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameRecord wraps a payload into one committed record frame.
func frameRecord(typ byte, payload []byte) []byte {
	buf := make([]byte, 0, recordOverhead+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// nextRecord parses the record frame starting at data[off], verifying
// length bound and CRC. It returns the record type, the payload, and
// the offset past the record.
func nextRecord(data []byte, off int) (typ byte, payload []byte, next int, err error) {
	if len(data)-off < recordOverhead {
		return 0, nil, off, ErrTruncatedLog
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n > MaxRecordBytes {
		return 0, nil, off, fmt.Errorf("%w: payload length %d exceeds bound", ErrCorruptRecord, n)
	}
	if len(data)-off < recordOverhead+n {
		return 0, nil, off, ErrTruncatedLog
	}
	body := data[off : off+5+n]
	want := binary.LittleEndian.Uint32(data[off+5+n:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorruptRecord, off)
	}
	return data[off+4], data[off+5 : off+5+n], off + recordOverhead + n, nil
}

// encoder builds record payloads from the primitive vocabulary the
// format spec names: uvarint, length-prefixed string, float64 LE.
type encoder struct{ b []byte }

func (e *encoder) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// decoder consumes a payload; the first malformed read poisons it and
// every later read returns zero values, so decode functions check err
// once at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptRecord}, args...)...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at payload offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds payload", n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail("short float64 at payload offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// count reads a uvarint element count and sanity-bounds it by the
// bytes remaining (each element costs at least min bytes), so a
// corrupt count cannot drive a huge allocation.
func (d *decoder) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(d.b)-d.off)/min)+1 {
		d.fail("element count %d exceeds payload", n)
		return 0
	}
	return int(n)
}

// done checks the payload was consumed exactly.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptRecord, len(d.b)-d.off)
	}
	return nil
}
