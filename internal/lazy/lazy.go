// Package lazy provides the one small build-once cell shared by the
// lazily constructed, generation-carried values of the serving layer
// (cluster indexes, scatter-gather searchers). The pattern appears
// wherever a snapshot generation owns an expensive derived structure:
// the first user builds it while concurrent users wait, an incremental
// update may instead seed the next generation's cell with an
// already-derived value (consuming the build), and observers need to
// ask "is it built?" without triggering a build.
package lazy

import (
	"errors"
	"sync"
)

// ErrBuildPanicked settles a cell whose build panicked: the panic
// propagates to the first caller, and every later caller observes this
// error instead of a zero value masquerading as a successful build.
var ErrBuildPanicked = errors.New("lazy: build panicked")

// Cell is a concurrency-safe, build-or-seed-once value. The zero value
// is an empty cell ready for use. Exactly one of the first Do or Seed
// call populates it; every later call returns or keeps the settled
// result. A Cell must not be copied after first use.
type Cell[T any] struct {
	once sync.Once
	mu   sync.Mutex
	done bool
	v    T
	err  error
}

// Do returns the cell's value, running build to populate it if no Do or
// Seed settled the cell yet. Concurrent first callers share one build;
// the build's outcome (including its error) is permanent. A build that
// panics settles the cell with ErrBuildPanicked before the panic
// propagates — sync.Once is consumed by a panicking Do, and without
// this later callers would read a zero value with a nil error.
func (c *Cell[T]) Do(build func() (T, error)) (T, error) {
	c.once.Do(func() {
		settled := false
		defer func() {
			if !settled {
				var zero T
				c.set(zero, ErrBuildPanicked)
			}
		}()
		v, err := build()
		settled = true
		c.set(v, err)
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v, c.err
}

// Seed settles the cell with an already-built value, consuming the
// build-once so a later Do adopts v instead of building. It is a no-op
// on a settled cell.
func (c *Cell[T]) Seed(v T, err error) {
	c.once.Do(func() { c.set(v, err) })
}

// Built returns the settled value without triggering a build; ok is
// false while the cell is empty or a build is still running.
func (c *Cell[T]) Built() (v T, err error, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v, c.err, c.done
}

func (c *Cell[T]) set(v T, err error) {
	c.mu.Lock()
	c.v, c.err, c.done = v, err, true
	c.mu.Unlock()
}
