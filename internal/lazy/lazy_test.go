package lazy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoBuildsOnce(t *testing.T) {
	var c Cell[int]
	var builds atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(func() (int, error) {
				builds.Add(1)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times", n)
	}
}

func TestErrorIsPermanent(t *testing.T) {
	var c Cell[string]
	boom := fmt.Errorf("boom")
	if _, err := c.Do(func() (string, error) { return "", boom }); err != boom {
		t.Fatalf("first Do err = %v", err)
	}
	// A later Do must not rebuild past the settled failure.
	if _, err := c.Do(func() (string, error) { return "fine", nil }); err != boom {
		t.Fatalf("second Do err = %v, want the settled failure", err)
	}
}

func TestSeedConsumesBuild(t *testing.T) {
	var c Cell[int]
	c.Seed(7, nil)
	v, err := c.Do(func() (int, error) {
		t.Fatal("build ran after Seed")
		return 0, nil
	})
	if v != 7 || err != nil {
		t.Fatalf("Do after Seed = (%d, %v)", v, err)
	}
	// Seeding a settled cell is a no-op.
	c.Seed(9, nil)
	if v, _, ok := c.Built(); !ok || v != 7 {
		t.Fatalf("Built after re-Seed = (%d, %v)", v, ok)
	}
}

func TestPanickedBuildSettlesWithError(t *testing.T) {
	var c Cell[*int]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("build panic did not propagate")
			}
		}()
		c.Do(func() (*int, error) { panic("boom") })
	}()
	// The once is consumed; later callers must see a typed error, not a
	// nil value with a nil error (which a nil-deref would then chase).
	v, err := c.Do(func() (*int, error) {
		t.Fatal("build re-ran after panic")
		return nil, nil
	})
	if v != nil || err != ErrBuildPanicked {
		t.Fatalf("Do after panicked build = (%v, %v), want (nil, ErrBuildPanicked)", v, err)
	}
}

func TestBuiltNeverBuilds(t *testing.T) {
	var c Cell[int]
	if _, _, ok := c.Built(); ok {
		t.Fatal("empty cell reports built")
	}
	c.Seed(3, nil)
	if v, err, ok := c.Built(); !ok || v != 3 || err != nil {
		t.Fatalf("Built = (%d, %v, %v)", v, err, ok)
	}
}
