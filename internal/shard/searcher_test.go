package shard

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/matchers/beam"
	"repro/internal/matchers/clustered"
	"repro/internal/matchers/topk"
	"repro/internal/matching"
	"repro/internal/xmlschema"
)

func testProblem(t *testing.T, snap *xmlschema.Snapshot, personal *xmlschema.Schema) *matching.Problem {
	t.Helper()
	prob, err := matching.NewProblem(personal, snap.Repository(), matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func identicalSets(t *testing.T, name string, got, want *matching.AnswerSet) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d answers vs %d", name, got.Len(), want.Len())
	}
	ga, wa := got.All(), want.All()
	for i := range ga {
		if !ga[i].Mapping.Equal(wa[i].Mapping) || ga[i].Score != wa[i].Score {
			t.Fatalf("%s: rank %d differs: %s@%v vs %s@%v", name, i,
				ga[i].Mapping.Key(), ga[i].Score, wa[i].Mapping.Key(), wa[i].Score)
		}
	}
}

// exhaustiveFactory builds the serial exhaustive matcher on any shard.
func exhaustiveFactory(*Shard) (matching.Matcher, error) { return matching.Exhaustive{}, nil }

// TestSearchParity: the scatter-gather union is bit-identical to the
// unsharded matcher for every matcher family, shard count, and
// strategy — including the clustered family, whose shard indexes derive
// from one global clustering.
func TestSearchParity(t *testing.T) {
	snap, sc := testSnapshot(t, 11, 30)
	prob := testProblem(t, snap, sc.Personal)
	const delta = 0.45
	ixCfg := clustered.IndexConfig{Seed: 17}

	gix, err := clustered.BuildIndex(snap.Repository(), ixCfg)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := beam.New(8)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := topk.New(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clustered.New(gix, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		direct  matching.Matcher
		factory func(*Shard) (matching.Matcher, error)
	}{
		{"exhaustive", matching.Exhaustive{}, exhaustiveFactory},
		{"parallel", matching.ParallelExhaustive{}, func(*Shard) (matching.Matcher, error) {
			return matching.ParallelExhaustive{Workers: 2}, nil
		}},
		{"beam:8", bm, func(*Shard) (matching.Matcher, error) { return beam.New(8) }},
		{"topk:0.05", tk, func(*Shard) (matching.Matcher, error) { return topk.New(0.05) }},
		{"clustered:2", cm, func(sh *Shard) (matching.Matcher, error) {
			ix, err := sh.Index()
			if err != nil {
				return nil, err
			}
			return clustered.New(ix, 2, sh.Scorer())
		}},
	}

	for _, tc := range cases {
		want, err := tc.direct.Match(prob, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{Hash{}, Cluster{Seed: 17}} {
			for _, k := range []int{1, 2, 3, 7} {
				sr, err := NewSearcher(snap, Config{K: k, Strategy: strat, Index: ixCfg})
				if err != nil {
					t.Fatal(err)
				}
				got, st, err := sr.Search(context.Background(), prob, delta, tc.factory)
				if err != nil {
					t.Fatalf("%s k=%d %s: %v", tc.name, k, strat.Name(), err)
				}
				identicalSets(t, fmt.Sprintf("%s/k=%d/%s", tc.name, k, strat.Name()), got, want)
				if st.Shards != k {
					t.Fatalf("stats report %d shards, want %d", st.Shards, k)
				}
				answers := 0
				for _, ps := range st.PerShard {
					answers += ps.Answers
				}
				if answers != want.Len() {
					t.Fatalf("per-shard answers sum to %d, want %d", answers, want.Len())
				}
			}
		}
	}
}

// TestSearchRejectsForeignProblem: a problem built over a different
// repository must not silently return partial answers.
func TestSearchRejectsForeignProblem(t *testing.T) {
	snap, sc := testSnapshot(t, 12, 8)
	other, osc := testSnapshot(t, 13, 8)
	sr, err := NewSearcher(snap, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = sc
	foreign := testProblem(t, other, osc.Personal)
	if _, _, err := sr.Search(context.Background(), foreign, 0.45, exhaustiveFactory); err == nil {
		t.Fatal("foreign problem accepted")
	}
}

// TestSearchCancellation: a cancelled context ends the scatter with
// ctx.Err(), a nil answer set, and all workers joined (the call
// returning is the join).
func TestSearchCancellation(t *testing.T) {
	snap, sc := testSnapshot(t, 14, 40)
	prob := testProblem(t, snap, sc.Personal)
	sr, err := NewSearcher(snap, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set, _, err := sr.Search(ctx, prob, 0.45, exhaustiveFactory)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if set != nil {
		t.Fatal("cancelled search returned a non-nil set")
	}

	// Mid-flight deadline: repeatedly searching under a shrinking
	// timeout must either finish with the full set or fail with the
	// deadline error — never a partial set.
	want, _, err := sr.Search(context.Background(), prob, 0.45, exhaustiveFactory)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond, time.Millisecond} {
		dctx, dcancel := context.WithTimeout(context.Background(), d)
		set, _, err := sr.Search(dctx, prob, 0.45, exhaustiveFactory)
		dcancel()
		if err != nil {
			if err != context.DeadlineExceeded {
				t.Fatalf("timeout %v: err = %v", d, err)
			}
			continue
		}
		identicalSets(t, fmt.Sprintf("timeout %v", d), set, want)
	}
}

// TestSearchShardErrorPropagates: a factory error on one shard fails
// the whole search (after joining), not silently drops the shard.
func TestSearchShardErrorPropagates(t *testing.T) {
	snap, sc := testSnapshot(t, 15, 12)
	prob := testProblem(t, snap, sc.Personal)
	sr, err := NewSearcher(snap, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	_, _, err = sr.Search(context.Background(), prob, 0.45, func(sh *Shard) (matching.Matcher, error) {
		if sh.ID() == 1 {
			return nil, boom
		}
		return matching.Exhaustive{}, nil
	})
	if err == nil {
		t.Fatal("shard error swallowed")
	}
}

// TestApplyTouchesOnlyAffectedShards: after a one-schema replacement,
// exactly the shard owning that schema rebuilds; every other shard's
// sub-snapshot, scorer, and built index transfer by pointer.
func TestApplyTouchesOnlyAffectedShards(t *testing.T) {
	snap, sc := testSnapshot(t, 16, 24)
	prob := testProblem(t, snap, sc.Personal)
	sr, err := NewSearcher(snap, Config{K: 3, Index: clustered.IndexConfig{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	// Build every shard's index up front so Apply has something to carry.
	for _, sh := range sr.Shards() {
		if sh.Len() == 0 {
			continue
		}
		if _, err := sh.Index(); err != nil {
			t.Fatal(err)
		}
	}

	victim := snap.Schemas()[0]
	repl, err := snap.Schemas()[1].CloneAs(victim.Name)
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Replace(repl)
	if err != nil {
		t.Fatal(err)
	}
	diff := xmlschema.DiffSnapshots(snap, next)
	ns, err := sr.Apply(next, diff, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hit, _ := sr.Plan().ShardOf(victim.Name)
	for i, old := range sr.Shards() {
		nsh := ns.Shards()[i]
		if nsh.Scorer() != old.Scorer() {
			t.Fatalf("shard %d scoring cache not carried over", i)
		}
		oix, _, _ := old.ix.Built()
		nix, _, built := nsh.ix.Built()
		if i == hit {
			if nsh.Snapshot() == old.Snapshot() {
				t.Fatalf("affected shard %d kept its old sub-snapshot", i)
			}
			if old.Len() > 0 && nsh.Len() > 0 {
				if !built || nix == nil {
					t.Fatalf("affected shard %d index not patched", i)
				}
				if nix == oix {
					t.Fatalf("affected shard %d index not re-derived", i)
				}
			}
			continue
		}
		if nsh.Snapshot() != old.Snapshot() {
			t.Fatalf("unaffected shard %d rebuilt its sub-snapshot", i)
		}
		if old.Len() > 0 && (!built || nix != oix) {
			t.Fatalf("unaffected shard %d index not shared by pointer", i)
		}
	}

	// And the applied searcher agrees with one built from scratch.
	nprob, err := prob.Rebase(next.Repository())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSearcher(next, Config{K: 3, Index: clustered.IndexConfig{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ns.Search(context.Background(), nprob, 0.45, exhaustiveFactory)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Search(context.Background(), nprob, 0.45, exhaustiveFactory)
	if err != nil {
		t.Fatal(err)
	}
	identicalSets(t, "applied vs fresh", got, want)

	// Clustered searches on the applied searcher still match the
	// unsharded matcher whose index was maintained the same way the
	// serving layer maintains it: incrementally, from the pre-update
	// build (a from-scratch BuildIndex over the new repository would
	// re-cluster and is a different — equally sound — restriction).
	gix0, err := clustered.BuildIndex(snap.Repository(), clustered.IndexConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	gix, err := gix0.Apply(next.Repository(), diff)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clustered.New(gix, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cwant, err := cm.Match(nprob, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	cgot, _, err := ns.Search(context.Background(), nprob, 0.45, func(sh *Shard) (matching.Matcher, error) {
		ix, err := sh.Index()
		if err != nil {
			return nil, err
		}
		return clustered.New(ix, 2, sh.Scorer())
	})
	if err != nil {
		t.Fatal(err)
	}
	identicalSets(t, "applied clustered vs unsharded", cgot, cwant)
}

// TestApplyAddRemoveSequence: a chain of add/remove/replace diffs keeps
// the applied searcher identical to a fresh one at every step.
func TestApplyAddRemoveSequence(t *testing.T) {
	snap, sc := testSnapshot(t, 18, 16)
	sr, err := NewSearcher(snap, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	cur := snap
	for step := 0; step < 4; step++ {
		var next *xmlschema.Snapshot
		var err error
		switch step % 3 {
		case 0:
			add, cerr := cur.Schemas()[step].CloneAs(fmt.Sprintf("grown%02d", step))
			if cerr != nil {
				t.Fatal(cerr)
			}
			next, err = cur.Add(add)
		case 1:
			next, err = cur.Remove(cur.Schemas()[0].Name)
		default:
			repl, cerr := cur.Schemas()[2].CloneAs(cur.Schemas()[3].Name)
			if cerr != nil {
				t.Fatal(cerr)
			}
			next, err = cur.Replace(repl)
		}
		if err != nil {
			t.Fatal(err)
		}
		ns, err := sr.Apply(next, xmlschema.DiffSnapshots(cur, next), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		prob := testProblem(t, next, sc.Personal)
		fresh, err := NewSearcher(next, Config{K: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ns.Search(context.Background(), prob, 0.4, exhaustiveFactory)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fresh.Search(context.Background(), prob, 0.4, exhaustiveFactory)
		if err != nil {
			t.Fatal(err)
		}
		identicalSets(t, fmt.Sprintf("step %d", step), got, want)
		sr, cur = ns, next
	}
}
