// Incremental searcher maintenance across snapshot swaps. The whole
// point of sharding a versioned repository: a diff touching d schemas
// invalidates at most d shards' sub-snapshots and indexes, while every
// other shard transfers to the next searcher generation by pointer —
// sub-snapshot, scoring cache, and derived index all stay warm.

package shard

import (
	"fmt"

	"repro/internal/candindex"
	"repro/internal/matchers/clustered"
	"repro/internal/xmlschema"
)

// Apply derives the searcher for the next snapshot generation from a
// snapshot diff. Unaffected shards keep their sub-snapshot, scoring
// cache, and built index (shared with the receiver, which stays fully
// valid for in-flight searches). Each affected shard — one holding a
// removed or replaced schema, or routed an added one — rebuilds its
// sub-snapshot from next and, when its index was built, patches it with
// the shard's slice of the diff via clustered.Index.Apply.
//
// globalIndex replaces the receiver's cfg.GlobalIndex provider for the
// new generation (nil disables the provider): the receiver's own
// closure was built for the repository it serves and must not leak into
// a searcher over next. When the receiver's clustering is built, the
// new generation's is settled eagerly — adopted from the fresh provider
// when it serves next's repository (identity-sharing the index the
// provider's owner maintains), else advanced with clustered.Index.Apply
// — and shard indexes carry over only while the clustering is the same:
// if it changed (drift-triggered re-cluster, or a provider that rebuilt
// from scratch), every shard re-derives lazily so the whole family
// keeps sharing one medoid set.
//
// globalCand likewise replaces cfg.GlobalCandidates for the new
// generation. A built global candidate index is settled the same way —
// adopted from the fresh provider when it serves next's repository,
// else advanced with candindex.Index.Apply — and built per-shard
// candidate indexes carry by pointer on unaffected shards and are
// patched with the shard's slice of the diff on affected ones. Unlike
// the clustering there is no cross-shard invariant to gate on: bounds
// are pure functions of the metric, so carried indexes always agree.
//
// next must be the snapshot diff leads to; an empty next is rejected.
func (sr *Searcher) Apply(next *xmlschema.Snapshot, diff xmlschema.Diff, globalIndex func() (*clustered.Index, error), globalCand func() (*candindex.Index, error)) (*Searcher, error) {
	if next == nil {
		return nil, fmt.Errorf("shard: nil snapshot")
	}
	if next.Len() == 0 {
		return nil, fmt.Errorf("shard: diff empties the repository")
	}
	nplan := sr.plan.apply(diff)
	affected := make(map[int]bool, diff.NumChanged())
	for _, sch := range diff.Removed {
		if s, ok := sr.plan.ShardOf(sch.Name); ok {
			affected[s] = true
		}
	}
	for _, ch := range diff.Replaced {
		if s, ok := sr.plan.ShardOf(ch.Old.Name); ok {
			affected[s] = true
		}
	}
	for _, sch := range diff.Added {
		if s, ok := nplan.ShardOf(sch.Name); ok {
			affected[s] = true
		}
	}

	ns := &Searcher{cfg: sr.cfg, plan: nplan, snap: next}
	ns.cfg.GlobalIndex = globalIndex
	ns.cfg.GlobalCandidates = globalCand

	// Settle the new generation's clustering while the old one is warm
	// (a never-built clustering stays lazy). sameClustering gates the
	// carrying of shard indexes below: carrying one derived from a
	// clustering the new generation no longer serves would silently
	// break the one-medoid-set invariant.
	sameClustering := false
	if gix, gixErr, built := sr.gix.Built(); built && gixErr == nil && gix != nil {
		var newGix *clustered.Index
		if globalIndex != nil {
			if ix, err := globalIndex(); err == nil && ix != nil && ix.Repository() == next.Repository() {
				newGix = ix
			}
		}
		if newGix == nil {
			if applied, err := gix.Apply(next.Repository(), diff); err == nil {
				newGix = applied
			}
		}
		if newGix != nil {
			ns.gix.Seed(newGix, nil)
			sameClustering = newGix.SameClustering(gix)
		}
	}

	// Settle the new generation's global candidate index the same way.
	if gc, gcErr, built := sr.gcand.Built(); built && gcErr == nil && gc != nil {
		var newGC *candindex.Index
		if globalCand != nil {
			if ix, err := globalCand(); err == nil && ix != nil && ix.Repository() == next.Repository() {
				newGC = ix
			}
		}
		if newGC == nil {
			if applied, err := gc.Apply(next.Repository(), diff); err == nil {
				newGC = applied
			}
		}
		if newGC != nil {
			ns.gcand.Seed(newGC, nil)
		}
	}

	ns.shards = make([]*Shard, len(sr.shards))
	for i, old := range sr.shards {
		nsh := &Shard{id: i, owner: ns, snap: old.snap, scorer: old.scorer}
		if affected[i] {
			rebuilt, err := ns.buildShard(i)
			if err != nil {
				return nil, err
			}
			nsh.snap = rebuilt.snap
		}
		if ix, ixErr, built := old.ix.Built(); built && ixErr == nil && ix != nil && sameClustering && nsh.Len() > 0 {
			if !affected[i] {
				nsh.ix.Seed(ix, nil)
			} else if applied, err := ix.Apply(nsh.Repository(), subDiff(diff, i, sr.plan, nplan)); err == nil {
				nsh.ix.Seed(applied, nil)
			}
		}
		if cix, cErr, built := old.cand.Built(); built && cErr == nil && cix != nil && nsh.Len() > 0 {
			if !affected[i] {
				nsh.cand.Seed(cix, nil)
			} else if applied, err := cix.Apply(nsh.Repository(), subDiff(diff, i, sr.plan, nplan)); err == nil {
				nsh.cand.Seed(applied, nil)
			}
		}
		ns.shards[i] = nsh
	}
	return ns, nil
}

// subDiff restricts a snapshot diff to shard i: added schemas the new
// plan routes there, removed and replaced schemas the old plan held
// there (replacement never moves a schema — assignment is by name).
func subDiff(diff xmlschema.Diff, i int, oldPlan, newPlan *Plan) xmlschema.Diff {
	sub := xmlschema.Diff{From: diff.From, To: diff.To}
	for _, sch := range diff.Added {
		if s, ok := newPlan.ShardOf(sch.Name); ok && s == i {
			sub.Added = append(sub.Added, sch)
		}
	}
	for _, sch := range diff.Removed {
		if s, ok := oldPlan.ShardOf(sch.Name); ok && s == i {
			sub.Removed = append(sub.Removed, sch)
		}
	}
	for _, ch := range diff.Replaced {
		if s, ok := oldPlan.ShardOf(ch.Old.Name); ok && s == i {
			sub.Replaced = append(sub.Replaced, ch)
		}
	}
	return sub
}
