package shard

import (
	"fmt"
	"testing"

	"repro/internal/synth"
	"repro/internal/xmlschema"
)

func testSnapshot(t *testing.T, seed uint64, schemas int) (*xmlschema.Snapshot, *synth.Scenario) {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.NumSchemas = schemas
	sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := xmlschema.NewSnapshot(sc.Repo)
	if err != nil {
		t.Fatal(err)
	}
	return snap, sc
}

// TestPlanCoversEverySchema: both strategies assign every schema to a
// shard in [0, K), and the plan reproduces the assignment via Route.
func TestPlanCoversEverySchema(t *testing.T) {
	snap, _ := testSnapshot(t, 5, 24)
	for _, strat := range []Strategy{Hash{}, Cluster{Seed: 17}} {
		for _, k := range []int{1, 2, 3, 7} {
			t.Run(fmt.Sprintf("%s/k=%d", strat.Name(), k), func(t *testing.T) {
				plan, err := strat.Plan(snap, k)
				if err != nil {
					t.Fatal(err)
				}
				if plan.K() != k {
					t.Fatalf("K() = %d, want %d", plan.K(), k)
				}
				total := 0
				for _, n := range plan.Sizes() {
					total += n
				}
				if total != snap.Len() {
					t.Fatalf("sizes sum to %d, want %d schemas", total, snap.Len())
				}
				for _, sch := range snap.Schemas() {
					s, ok := plan.ShardOf(sch.Name)
					if !ok {
						t.Fatalf("schema %q unassigned", sch.Name)
					}
					if s < 0 || s >= k {
						t.Fatalf("schema %q in shard %d outside [0,%d)", sch.Name, s, k)
					}
					if r := plan.Route(sch); r != s {
						t.Fatalf("Route(%q) = %d but plan assigned %d", sch.Name, r, s)
					}
				}
			})
		}
	}
}

// TestPlanDeterministic: rebuilding a plan from the same inputs yields
// the identical assignment — the property that lets independently
// constructed searchers agree.
func TestPlanDeterministic(t *testing.T) {
	snap, _ := testSnapshot(t, 6, 20)
	for _, strat := range []Strategy{Hash{}, Cluster{Seed: 3}} {
		a, err := strat.Plan(snap, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := strat.Plan(snap, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, sch := range snap.Schemas() {
			sa, _ := a.ShardOf(sch.Name)
			sb, _ := b.ShardOf(sch.Name)
			if sa != sb {
				t.Fatalf("%s: schema %q assigned %d then %d", strat.Name(), sch.Name, sa, sb)
			}
		}
	}
}

// TestPlanK1IsTrivial: one shard holds everything, for any strategy.
func TestPlanK1IsTrivial(t *testing.T) {
	snap, _ := testSnapshot(t, 7, 10)
	for _, strat := range []Strategy{Hash{}, Cluster{}} {
		plan, err := strat.Plan(snap, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n := plan.Sizes()[0]; n != snap.Len() {
			t.Fatalf("%s: shard 0 holds %d of %d schemas", strat.Name(), n, snap.Len())
		}
	}
}

// TestPlanApplyRoutesOnlyAdded: after a diff, removed schemas leave the
// assignment, replaced schemas keep their shard, and added schemas land
// where Route puts them.
func TestPlanApplyRoutesOnlyAdded(t *testing.T) {
	snap, _ := testSnapshot(t, 8, 12)
	plan, err := Hash{}.Plan(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	victim := snap.Schemas()[0]
	replTarget := snap.Schemas()[1]
	repl, err := victim.CloneAs(replTarget.Name)
	if err != nil {
		t.Fatal(err)
	}
	added, err := victim.CloneAs("freshly-added")
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Remove(victim.Name)
	if err != nil {
		t.Fatal(err)
	}
	next, err = next.Replace(repl)
	if err != nil {
		t.Fatal(err)
	}
	next, err = next.Add(added)
	if err != nil {
		t.Fatal(err)
	}
	nplan := plan.apply(xmlschema.DiffSnapshots(snap, next))
	if _, ok := nplan.ShardOf(victim.Name); ok {
		t.Fatalf("removed schema %q still assigned", victim.Name)
	}
	oldShard, _ := plan.ShardOf(replTarget.Name)
	newShard, ok := nplan.ShardOf(replTarget.Name)
	if !ok || newShard != oldShard {
		t.Fatalf("replaced schema moved: shard %d -> %d (ok=%v)", oldShard, newShard, ok)
	}
	got, ok := nplan.ShardOf("freshly-added")
	if !ok || got != plan.Route(added) {
		t.Fatalf("added schema in shard %d (ok=%v), Route says %d", got, ok, plan.Route(added))
	}
	// The original plan is untouched.
	if _, ok := plan.ShardOf("freshly-added"); ok {
		t.Fatal("apply mutated the source plan")
	}
}

// TestParseStrategy pins the strategy spec grammar.
func TestParseStrategy(t *testing.T) {
	for spec, want := range map[string]string{"": "hash", "hash": "hash", "cluster": "cluster"} {
		st, err := ParseStrategy(spec)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", spec, err)
		}
		if st.Name() != want {
			t.Fatalf("ParseStrategy(%q).Name() = %q, want %q", spec, st.Name(), want)
		}
	}
	if _, err := ParseStrategy("quantum"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown strategy")
	}
}

// TestPartitionValidation: nil/empty snapshots and k < 1 are rejected.
func TestPartitionValidation(t *testing.T) {
	snap, _ := testSnapshot(t, 9, 4)
	if _, err := (Hash{}).Plan(nil, 2); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := (Hash{}).Plan(snap, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSearcher(snap, Config{K: -1}); err == nil {
		t.Fatal("NewSearcher accepted k=-1")
	}
}
