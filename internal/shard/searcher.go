package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/candindex"
	"repro/internal/engine"
	"repro/internal/lazy"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/xmlschema"
)

// Config parameterizes a Searcher.
type Config struct {
	// K is the shard count (≥ 1). Shards may be empty when K exceeds
	// the schema count; empty shards are skipped by Search.
	K int
	// Strategy partitions the schemas. Nil selects Hash{}.
	Strategy Strategy
	// Index configures the repository-wide clustering that per-shard
	// clustered indexes derive from. Use the exact IndexConfig of the
	// unsharded index a sharded clustered search must agree with.
	Index clustered.IndexConfig
	// GlobalIndex, when non-nil, supplies an already-maintained
	// repository-wide clustered index (e.g. the serving layer's
	// unsharded index) instead of the searcher building its own from
	// Index — shards then derive from the exact index unsharded
	// requests search against, and the quadratic clustering is paid
	// once. The provider's index must be over the searcher's
	// repository; a mismatched or failed provider falls back to a
	// fresh build.
	GlobalIndex func() (*clustered.Index, error)
	// GlobalCandidates, when non-nil, supplies the repository-wide
	// candidate index (the serving layer's) that per-shard candidate
	// indexes derive from, sharing its name profiles and bounder. The
	// provider's index must be over the searcher's repository; there is
	// no fresh-build fallback — a candidate index needs the scorer's
	// metric, which only the provider's owner knows — so a missing or
	// mismatched provider leaves shards without candidate indexes.
	GlobalCandidates func() (*candindex.Index, error)
	// Workers bounds the scatter fan-out (< 1 selects GOMAXPROCS,
	// capped at the number of non-empty shards).
	Workers int
}

// Searcher serves scatter-gather matching over one snapshot generation:
// a Plan, one sub-snapshot + scoring cache + lazily derived clustered
// index per shard, and the repository-wide clustering the shard indexes
// share. A Searcher is immutable after construction and safe for
// concurrent Search calls; Apply derives the next generation from a
// snapshot diff.
type Searcher struct {
	cfg    Config
	plan   *Plan
	snap   *xmlschema.Snapshot
	shards []*Shard

	// gix is the repository-wide clustering, adopted from
	// cfg.GlobalIndex or built on the first clustered use (Shard.Index
	// derives from it) and advanced incrementally by Apply.
	gix lazy.Cell[*clustered.Index]

	// gcand is the repository-wide candidate index, adopted from
	// cfg.GlobalCandidates on first use (Shard.CandidateIndex derives
	// from it) and advanced incrementally by Apply.
	gcand lazy.Cell[*candindex.Index]
}

// Shard is one partition of a searcher: a sub-snapshot holding only its
// schemas (pointer-shared with the full snapshot), a scoring engine,
// and its derived clustered index.
type Shard struct {
	id     int
	owner  *Searcher
	snap   *xmlschema.Snapshot
	scorer engine.Scorer

	ix   lazy.Cell[*clustered.Index]
	cand lazy.Cell[*candindex.Index]
}

// ID returns the shard's index in [0, K).
func (sh *Shard) ID() int { return sh.id }

// Snapshot returns the shard's sub-snapshot.
func (sh *Shard) Snapshot() *xmlschema.Snapshot { return sh.snap }

// Repository returns the shard's sub-repository.
func (sh *Shard) Repository() *xmlschema.Repository { return sh.snap.Repository() }

// Len returns the number of schemas in the shard.
func (sh *Shard) Len() int { return sh.snap.Len() }

// Scorer returns the shard's scoring engine: the configured index
// scorer when one is set (so shard-local scoring agrees with — and
// warms — the cache the global clustering was built from), otherwise a
// shard-private memo that lives and dies with the shard.
func (sh *Shard) Scorer() engine.Scorer { return sh.scorer }

// Index returns the shard's clustered index, derived on first use from
// the searcher's repository-wide clustering (so every shard restricts
// candidates against the same medoid set — the parity invariant).
// Empty shards have no index.
func (sh *Shard) Index() (*clustered.Index, error) {
	return sh.ix.Do(func() (*clustered.Index, error) {
		if sh.snap.Len() == 0 {
			return nil, fmt.Errorf("shard: shard %d is empty", sh.id)
		}
		gix, err := sh.owner.GlobalIndex()
		if err != nil {
			return nil, err
		}
		return gix.Derive(sh.snap.Repository())
	})
}

// CandidateIndex returns the shard's candidate index, derived on first
// use from the searcher's repository-wide one (sharing its name
// profiles and bounder, so per-shard bounds are identical to the global
// index's). Empty shards have no candidate index, and neither does a
// searcher without a healthy GlobalCandidates provider.
func (sh *Shard) CandidateIndex() (*candindex.Index, error) {
	return sh.cand.Do(func() (*candindex.Index, error) {
		if sh.snap.Len() == 0 {
			return nil, fmt.Errorf("shard: shard %d is empty", sh.id)
		}
		gc, err := sh.owner.GlobalCandidates()
		if err != nil {
			return nil, err
		}
		return gc.Derive(sh.snap.Repository())
	})
}

// NewSearcher partitions snap into cfg.K shards and returns a searcher
// over them. Partitioning is the only eager work; per-shard indexes and
// the global clustering are built on first clustered use.
func NewSearcher(snap *xmlschema.Snapshot, cfg Config) (*Searcher, error) {
	if err := checkPartition(snap, cfg.K); err != nil {
		return nil, err
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Hash{}
	}
	plan, err := cfg.Strategy.Plan(snap, cfg.K)
	if err != nil {
		return nil, err
	}
	sr := &Searcher{cfg: cfg, plan: plan, snap: snap}
	sr.shards = make([]*Shard, cfg.K)
	for i := range sr.shards {
		sh, err := sr.buildShard(i)
		if err != nil {
			return nil, err
		}
		if cfg.Index.Scorer != nil {
			sh.scorer = cfg.Index.Scorer
		} else {
			sh.scorer = engine.New(nil)
		}
		sr.shards[i] = sh
	}
	return sr, nil
}

// buildShard filters the searcher's snapshot by its plan into shard
// i's sub-snapshot (insertion order preserved; schemas pointer-shared).
// The caller assigns the scorer.
func (sr *Searcher) buildShard(i int) (*Shard, error) {
	repo := xmlschema.NewRepository()
	for _, sch := range sr.snap.Schemas() {
		if s, ok := sr.plan.ShardOf(sch.Name); ok && s == i {
			if err := repo.Add(sch); err != nil {
				return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
			}
		}
	}
	sub, err := xmlschema.NewSnapshot(repo)
	if err != nil {
		return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
	}
	return &Shard{id: i, owner: sr, snap: sub}, nil
}

// K returns the shard count.
func (sr *Searcher) K() int { return len(sr.shards) }

// Plan returns the searcher's partitioning plan.
func (sr *Searcher) Plan() *Plan { return sr.plan }

// Snapshot returns the full snapshot the searcher partitions.
func (sr *Searcher) Snapshot() *xmlschema.Snapshot { return sr.snap }

// Shards returns the shards in id order. Callers must not modify the
// returned slice.
func (sr *Searcher) Shards() []*Shard { return sr.shards }

// GlobalIndex returns the repository-wide clustered index the shard
// indexes derive from: the cfg.GlobalIndex provider's index when it is
// healthy and over the searcher's repository, else a fresh build from
// cfg.Index.
func (sr *Searcher) GlobalIndex() (*clustered.Index, error) {
	return sr.gix.Do(func() (*clustered.Index, error) {
		if sr.cfg.GlobalIndex != nil {
			if ix, err := sr.cfg.GlobalIndex(); err == nil && ix != nil && ix.Repository() == sr.snap.Repository() {
				return ix, nil
			}
		}
		return clustered.BuildIndex(sr.snap.Repository(), sr.cfg.Index)
	})
}

// GlobalCandidates returns the repository-wide candidate index the
// per-shard candidate indexes derive from. Unlike GlobalIndex there is
// no fresh-build fallback: a candidate index is only admissible for the
// exact metric the scorer computes, which the searcher cannot know on
// its own.
func (sr *Searcher) GlobalCandidates() (*candindex.Index, error) {
	return sr.gcand.Do(func() (*candindex.Index, error) {
		if sr.cfg.GlobalCandidates != nil {
			if ix, err := sr.cfg.GlobalCandidates(); err == nil && ix != nil && ix.Repository() == sr.snap.Repository() {
				return ix, nil
			}
		}
		return nil, fmt.Errorf("shard: no global candidate index provider")
	})
}

// ShardStat is the per-shard record of one scatter-gather search.
type ShardStat struct {
	// Shard is the shard id.
	Shard int
	// Schemas is the shard's schema count (0 for a skipped empty shard).
	Schemas int
	// Wall is the shard's end-to-end time: matcher build, problem
	// rebase, and search.
	Wall time.Duration
	// Answers is the shard's answer count.
	Answers int
	// Search counts the shard's enumeration work (zero when the matcher
	// does not implement matching.StatsMatcher).
	Search matching.SearchStats
}

// Stats quantifies one scatter-gather search: the per-shard fan-out and
// the merge overhead.
type Stats struct {
	// Shards is the total shard count, including empty shards.
	Shards int
	// Searched counts the non-empty shards actually fanned out.
	Searched int
	// PerShard holds one record per shard, in id order.
	PerShard []ShardStat
	// Merge is the time spent unioning the per-shard answer sets after
	// the last shard finished.
	Merge time.Duration
	// Wall is the full scatter + merge time.
	Wall time.Duration
}

// MaxShardWall returns the slowest shard's wall time — the scatter
// critical path.
func (st Stats) MaxShardWall() time.Duration {
	var max time.Duration
	for _, s := range st.PerShard {
		if s.Wall > max {
			max = s.Wall
		}
	}
	return max
}

// SumShardWall returns the total per-shard work; the ratio to
// MaxShardWall is the parallel speedup the scatter achieved.
func (st Stats) SumShardWall() time.Duration {
	var sum time.Duration
	for _, s := range st.PerShard {
		sum += s.Wall
	}
	return sum
}

// SearchTotal sums the enumeration work across shards.
func (st Stats) SearchTotal() matching.SearchStats {
	var total matching.SearchStats
	for _, s := range st.PerShard {
		total.Add(s.Search)
	}
	return total
}

// Search fans prob out across the shards in parallel and merges the
// per-shard answer sets. build constructs the matcher for each shard
// (called once per non-empty shard, possibly concurrently); prob must
// be built over the searcher's repository — each shard rebases it onto
// its sub-repository, transferring cost tables by reference. The search
// honors ctx: on cancellation every shard unwinds at its next periodic
// check, all workers are joined, and ctx.Err() is returned with the
// stats accumulated so far. Any shard error cancels the remaining
// shards and is returned after the join.
func (sr *Searcher) Search(ctx context.Context, prob *matching.Problem, delta float64, build func(*Shard) (matching.Matcher, error)) (*matching.AnswerSet, Stats, error) {
	st := Stats{Shards: len(sr.shards), PerShard: make([]ShardStat, len(sr.shards))}
	if prob == nil {
		return nil, st, fmt.Errorf("shard: nil problem")
	}
	if prob.Repo != sr.snap.Repository() {
		return nil, st, fmt.Errorf("shard: problem built over a different repository")
	}
	var active []int
	for i, sh := range sr.shards {
		st.PerShard[i] = ShardStat{Shard: i, Schemas: sh.Len()}
		if sh.Len() > 0 {
			active = append(active, i)
		}
	}
	st.Searched = len(active)

	start := time.Now()
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}

	workers := sr.cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(active) {
		workers = len(active)
	}
	sets := make([]*matching.AnswerSet, len(sr.shards))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				set, err := sr.searchShard(sctx, sr.shards[i], prob, delta, build, &st.PerShard[i])
				if err != nil {
					fail(err)
					// Drain so the feeder never blocks; cancelled
					// siblings unwind on their own.
					for range jobs {
					}
					return
				}
				sets[i] = set
			}
		}()
	}
	done := sctx.Done()
feed:
	for _, i := range active {
		select {
		case jobs <- i:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		st.Wall = time.Since(start)
		return nil, st, err
	}
	if failErr != nil {
		st.Wall = time.Since(start)
		return nil, st, failErr
	}
	mergeStart := time.Now()
	merged := matching.Union(sets...)
	st.Merge = time.Since(mergeStart)
	obs.FromContext(ctx).Record("merge", mergeStart, time.Now()).
		SetInt("answers", int64(merged.Len()))
	st.Wall = time.Since(start)
	return merged, st, nil
}

// searchShard runs one shard's slice of the scatter.
func (sr *Searcher) searchShard(ctx context.Context, sh *Shard, prob *matching.Problem, delta float64, build func(*Shard) (matching.Matcher, error), rec *ShardStat) (*matching.AnswerSet, error) {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "shard")
	span.SetInt("shard", int64(sh.id))
	span.SetInt("schemas", int64(sh.Len()))
	defer func() {
		rec.Wall = time.Since(start)
		span.SetInt("answers", int64(rec.Answers))
		span.End()
	}()
	m, err := build(sh)
	if err != nil {
		return nil, fmt.Errorf("shard: shard %d matcher: %w", sh.id, err)
	}
	sp, err := prob.Rebase(sh.Repository())
	if err != nil {
		return nil, fmt.Errorf("shard: shard %d rebase: %w", sh.id, err)
	}
	var set *matching.AnswerSet
	if sm, ok := m.(matching.StatsMatcher); ok {
		set, rec.Search, err = sm.MatchStatsContext(ctx, sp, delta)
	} else {
		set, err = m.MatchContext(ctx, sp, delta)
	}
	if err != nil {
		return nil, err
	}
	rec.Answers = set.Len()
	return set, nil
}
