// Package shard partitions a schema repository into K shards and
// serves matching queries over them with scatter-gather search — the
// scaling layer between the versioned snapshot (xmlschema.Snapshot)
// and the matchers.
//
// # Partitioning
//
// A Strategy assigns every repository schema to one of K shards,
// producing a Plan. Two strategies ship:
//
//   - Hash (the default): a stable hash of the schema name. Shards are
//     balanced in expectation, assignment is a pure function of the
//     name, and no corpus analysis is needed.
//   - Cluster: element names are clustered into K groups with the same
//     k-medoids machinery the clustered matcher uses, and each schema
//     joins the shard holding the plurality of its element names.
//     Similar schemas co-locate, so each shard's clustered index covers
//     a tighter name population — at the cost of possible imbalance.
//
// Assignment is by schema name and survives snapshot mutations: a
// replaced schema stays in its shard, and only added schemas are routed
// (deterministically, via the plan's original strategy state). An
// update therefore touches exactly the shards owning the changed
// schemas.
//
// # Scatter-gather search
//
// A Searcher owns one sub-snapshot, one scoring engine cache, and one
// (lazily derived) clustered index per shard. Search fans a
// matching.Problem out across the shards in parallel — each shard
// rebases the problem onto its sub-repository, which transfers the
// already-built cost tables of its schemas by reference — runs the
// caller-built matcher per shard under the request context, and merges
// the per-shard answer sets with matching.Union.
//
// # Merge semantics and parity
//
// Every matcher in this repository searches repository schemas
// independently: the exhaustive enumeration, the beam frontier, and the
// top-k projection are all per-schema, and a mapping never spans
// schemas. Because shards partition the schemas, the union of per-shard
// answer sets at a global threshold δ is bit-identical to the
// unsharded answer set — same answers, same scores, same deterministic
// order — for the exhaustive, parallel, beam and topk families.
//
// The clustered matcher needs one extra invariant: its cluster
// selection depends on the index's medoid set. Shard indexes are
// therefore Derived from a single repository-wide clustering
// (clustered.Index.Derive), so every shard selects clusters against the
// same medoids and restricts candidates exactly as the global index
// would — making sharded clustered search, too, bit-identical to the
// unsharded matcher built over the same IndexConfig. Shard-local
// re-clustering is disabled on derived indexes; quality-driven rebuilds
// happen on the global clustering, after which shards re-derive.
//
// # Incremental updates
//
// Searcher.Apply carries a searcher across a snapshot swap using the
// snapshot diff: unaffected shards keep their sub-snapshot, scoring
// cache and index untouched (shared by pointer with the old searcher,
// which stays valid for in-flight searches), while each affected shard
// rebuilds its sub-snapshot and patches its index with the shard's
// slice of the diff via clustered.Index.Apply. This is the property
// that makes sharding multiply the value of versioned snapshots: a
// one-schema update re-indexes one shard, not the corpus.
package shard
