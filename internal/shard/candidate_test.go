package shard

import (
	"testing"

	"repro/internal/candindex"
	"repro/internal/xmlschema"
)

// globalCandFor builds a candidate index over the snapshot and returns
// it as a provider closure plus the index itself.
func globalCandFor(t *testing.T, snap *xmlschema.Snapshot) (func() (*candindex.Index, error), *candindex.Index) {
	t.Helper()
	gc, err := candindex.Build(snap.Repository(), candindex.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return func() (*candindex.Index, error) { return gc, nil }, gc
}

// probeBounds evaluates a bounder over every element of a repository
// for a fixed probe name set.
func probeBounds(t *testing.T, ix *candindex.Index, repo *xmlschema.Repository, probes []string) map[string][]float64 {
	t.Helper()
	bnd := ix.Prepare(probes)
	if bnd == nil {
		t.Fatal("default metric must be boundable")
	}
	out := make(map[string][]float64, repo.Len())
	for _, s := range repo.Schemas() {
		all := make([]float64, 0, len(probes)*s.Len())
		row := make([]float64, s.Len())
		for pi := range probes {
			if !bnd.BoundRow(pi, s, row) {
				t.Fatalf("BoundRow refused schema %s", s.Name)
			}
			all = append(all, row...)
		}
		out[s.Name] = all
	}
	return out
}

// TestShardCandidateDerivation: every shard's candidate index serves
// exactly the bounds of an index built directly over its sub-repository,
// and a searcher without a provider has none.
func TestShardCandidateDerivation(t *testing.T) {
	snap, _ := testSnapshot(t, 21, 24)
	provider, _ := globalCandFor(t, snap)
	sr, err := NewSearcher(snap, Config{K: 3, GlobalCandidates: provider})
	if err != nil {
		t.Fatal(err)
	}
	probes := []string{"book", "title", "author", "price", "unrelated_zz"}
	for _, sh := range sr.Shards() {
		if sh.Len() == 0 {
			continue
		}
		shIx, err := sh.CandidateIndex()
		if err != nil {
			t.Fatalf("shard %d: %v", sh.ID(), err)
		}
		direct, err := candindex.Build(sh.Repository(), candindex.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got := probeBounds(t, shIx, sh.Repository(), probes)
		want := probeBounds(t, direct, sh.Repository(), probes)
		for name, g := range got {
			w := want[name]
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("shard %d schema %s bound %d: derived %v, direct %v",
						sh.ID(), name, i, g[i], w[i])
				}
			}
		}
	}

	bare, err := NewSearcher(snap, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range bare.Shards() {
		if sh.Len() == 0 {
			continue
		}
		if _, err := sh.CandidateIndex(); err == nil {
			t.Fatal("CandidateIndex succeeded without a GlobalCandidates provider")
		}
		break
	}
}

// TestShardCandidateCarry: across Apply, unaffected shards keep their
// candidate index by pointer while affected shards get a diff-patched
// one that matches a from-scratch derivation.
func TestShardCandidateCarry(t *testing.T) {
	snap, _ := testSnapshot(t, 23, 24)
	provider, _ := globalCandFor(t, snap)
	sr, err := NewSearcher(snap, Config{K: 4, GlobalCandidates: provider})
	if err != nil {
		t.Fatal(err)
	}
	// Build every shard's candidate index so there is something to carry.
	before := make([]*candindex.Index, sr.K())
	for i, sh := range sr.Shards() {
		if sh.Len() == 0 {
			continue
		}
		ix, err := sh.CandidateIndex()
		if err != nil {
			t.Fatal(err)
		}
		before[i] = ix
	}

	victim := snap.Schemas()[0]
	repl, err := snap.Schemas()[1].CloneAs(victim.Name)
	if err != nil {
		t.Fatal(err)
	}
	next, err := snap.Replace(repl)
	if err != nil {
		t.Fatal(err)
	}
	diff := xmlschema.DiffSnapshots(snap, next)
	nextProvider, _ := globalCandFor(t, next)
	ns, err := sr.Apply(next, diff, nil, nextProvider)
	if err != nil {
		t.Fatal(err)
	}
	hit, _ := sr.Plan().ShardOf(victim.Name)
	probes := []string{"book", "title", "author", "price"}
	for i, nsh := range ns.Shards() {
		if nsh.Len() == 0 || before[i] == nil {
			continue
		}
		ix, err := nsh.CandidateIndex()
		if err != nil {
			t.Fatalf("shard %d after apply: %v", i, err)
		}
		if i != hit {
			if ix != before[i] {
				t.Fatalf("unaffected shard %d rebuilt its candidate index", i)
			}
			continue
		}
		if ix == before[i] {
			t.Fatalf("affected shard %d kept its stale candidate index", i)
		}
		direct, err := candindex.Build(nsh.Repository(), candindex.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got := probeBounds(t, ix, nsh.Repository(), probes)
		want := probeBounds(t, direct, nsh.Repository(), probes)
		for name, g := range got {
			w := want[name]
			for j := range g {
				if g[j] != w[j] {
					t.Fatalf("affected shard %d schema %s bound %d diverges after carry", i, name, j)
				}
			}
		}
	}
}
