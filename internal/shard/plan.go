package shard

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// Strategy decides which shard each repository schema lives in. A
// strategy is consulted once to build the initial Plan; routing of
// schemas added later goes through the plan, which captures whatever
// state the strategy needs, so assignment stays deterministic for the
// lifetime of a shard family.
type Strategy interface {
	// Name identifies the strategy in specs and reports ("hash",
	// "cluster").
	Name() string
	// Plan partitions the snapshot's schemas into k shards.
	Plan(snap *xmlschema.Snapshot, k int) (*Plan, error)
}

// ParseStrategy resolves a strategy spec string: "hash" (also the
// default for the empty string) or "cluster". The returned Cluster
// strategy has zero-value knobs; callers wanting a shared scorer or a
// pinned seed construct Cluster directly.
func ParseStrategy(spec string) (Strategy, error) {
	switch spec {
	case "", "hash":
		return Hash{}, nil
	case "cluster":
		return Cluster{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown strategy %q (known: hash, cluster)", spec)
	}
}

// Plan is a stable assignment of schema names to shards. Plans are
// immutable; apply derives the next plan of a lineage from a snapshot
// diff, routing only the added schemas.
type Plan struct {
	k        int
	strategy string
	assign   map[string]int
	// route assigns a schema the plan has not seen, deterministically
	// from the strategy state captured at build time.
	route func(s *xmlschema.Schema) int
}

// K returns the shard count.
func (p *Plan) K() int { return p.k }

// Strategy returns the name of the strategy that built the plan.
func (p *Plan) Strategy() string { return p.strategy }

// ShardOf returns the shard holding the named schema.
func (p *Plan) ShardOf(name string) (int, bool) {
	s, ok := p.assign[name]
	return s, ok
}

// Route returns the shard a new schema would be assigned to. It is a
// pure function of the schema and the plan's build-time state.
func (p *Plan) Route(s *xmlschema.Schema) int { return p.route(s) }

// Sizes returns how many schemas each shard holds.
func (p *Plan) Sizes() []int {
	sizes := make([]int, p.k)
	for _, s := range p.assign {
		sizes[s]++
	}
	return sizes
}

// apply derives the plan after a snapshot diff: removed schemas leave
// the assignment, added schemas are routed, replaced schemas keep their
// shard (assignment is by name).
func (p *Plan) apply(diff xmlschema.Diff) *Plan {
	if len(diff.Added) == 0 && len(diff.Removed) == 0 {
		return p
	}
	assign := make(map[string]int, len(p.assign))
	for n, s := range p.assign {
		assign[n] = s
	}
	for _, sch := range diff.Removed {
		delete(assign, sch.Name)
	}
	for _, sch := range diff.Added {
		assign[sch.Name] = p.route(sch)
	}
	return &Plan{k: p.k, strategy: p.strategy, assign: assign, route: p.route}
}

// newPlan assigns every schema of snap through route.
func newPlan(snap *xmlschema.Snapshot, k int, strategy string, route func(*xmlschema.Schema) int) *Plan {
	assign := make(map[string]int, snap.Len())
	for _, sch := range snap.Schemas() {
		assign[sch.Name] = route(sch)
	}
	return &Plan{k: k, strategy: strategy, assign: assign, route: route}
}

func checkPartition(snap *xmlschema.Snapshot, k int) error {
	if snap == nil {
		return fmt.Errorf("shard: nil snapshot")
	}
	if snap.Len() == 0 {
		return fmt.Errorf("shard: empty repository")
	}
	if k < 1 {
		return fmt.Errorf("shard: shard count %d < 1", k)
	}
	return nil
}

// Hash is the default strategy: shard = FNV-1a(schema name) mod K.
// Assignment is a pure function of the name — balanced in expectation,
// zero analysis cost, and trivially stable under snapshot churn.
type Hash struct{}

// Name implements Strategy.
func (Hash) Name() string { return "hash" }

// Plan implements Strategy.
func (Hash) Plan(snap *xmlschema.Snapshot, k int) (*Plan, error) {
	if err := checkPartition(snap, k); err != nil {
		return nil, err
	}
	route := func(s *xmlschema.Schema) int {
		h := fnv.New64a()
		h.Write([]byte(s.Name))
		return int(h.Sum64() % uint64(k))
	}
	return newPlan(snap, k, Hash{}.Name(), route), nil
}

// Cluster is the similarity-aware strategy: the repository's distinct
// element names are clustered into (at most) K groups with the same
// distance matrix + k-medoids machinery the clustered matcher's index
// uses, and each schema joins the shard whose name cluster holds the
// plurality of its elements (ties to the lowest shard). Schemas sharing
// vocabulary co-locate, which tightens each shard's name population —
// the property that makes per-shard clustered indexes more selective —
// at the price of possible shard imbalance.
type Cluster struct {
	// Scorer supplies name similarities for the distance matrix and for
	// routing names unseen at build time. Nil selects a fresh memoized
	// engine; pass a shared scorer to keep its memo warm.
	Scorer engine.Scorer
	// Seed drives the k-medoids initialization.
	Seed uint64
	// Workers bounds the distance-matrix build pool (< 1 = GOMAXPROCS).
	Workers int
}

// Name implements Strategy.
func (Cluster) Name() string { return "cluster" }

// Plan implements Strategy.
func (c Cluster) Plan(snap *xmlschema.Snapshot, k int) (*Plan, error) {
	if err := checkPartition(snap, k); err != nil {
		return nil, err
	}
	scorer := c.Scorer
	if scorer == nil {
		scorer = engine.New(nil)
	}
	counts := make(map[string]int)
	for _, sch := range snap.Schemas() {
		sch.Walk(func(e *xmlschema.Element) bool {
			counts[e.Name]++
			return true
		})
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	kc := k
	if kc > len(names) {
		kc = len(names)
	}
	mat, err := cluster.NewNameMatrix(names, scorer, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("shard: building distance matrix: %w", err)
	}
	cl, err := cluster.KMedoids(mat, kc, stats.NewRNG(c.Seed))
	if err != nil {
		return nil, fmt.Errorf("shard: clustering names: %w", err)
	}
	nameCluster := make(map[string]int, len(names))
	for i, n := range names {
		nameCluster[n] = cl.Assign[i]
	}
	medoidNames := make([]string, cl.K)
	for ci, md := range cl.Medoids {
		medoidNames[ci] = names[md]
	}
	route := func(s *xmlschema.Schema) int {
		return voteShard(s, nameCluster, medoidNames, scorer)
	}
	return newPlan(snap, k, Cluster{}.Name(), route), nil
}

// voteShard assigns a schema to the name cluster holding the plurality
// of its elements; names unseen at clustering time vote for their
// nearest medoid's cluster, by the same package-shared assignment rule
// the clustered index uses (cluster.NearestMedoid), so routing is
// deterministic under any (possibly asymmetric) metric. Ties keep the
// lowest shard.
func voteShard(s *xmlschema.Schema, nameCluster map[string]int, medoidNames []string, sc engine.Scorer) int {
	votes := make([]int, len(medoidNames))
	s.Walk(func(e *xmlschema.Element) bool {
		c, ok := nameCluster[e.Name]
		if !ok {
			c = cluster.NearestMedoid(e.Name, medoidNames, sc)
		}
		votes[c]++
		return true
	})
	best := 0
	for c := 1; c < len(votes); c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}
