// Package lru provides the one small recency-evicting keyed map shared
// by the caches that must stay bounded in long-lived processes (the
// engine's scorer cache, the match service's session cache). It is
// deliberately minimal: no concurrency (callers hold their own locks)
// and linear-time touch — both uses hold tens of entries keyed far off
// any per-pair hot path.
package lru

// Map is a keyed map evicting the least recently used entry beyond
// Limit. A Limit < 1 disables eviction (plain map semantics).
type Map[K comparable, V any] struct {
	limit int
	vals  map[K]V
	// order tracks keys from least to most recently used; maintained
	// only when eviction is enabled.
	order []K
}

// New returns an empty map evicting beyond limit (< 1 = unbounded).
func New[K comparable, V any](limit int) *Map[K, V] {
	return &Map[K, V]{limit: limit, vals: make(map[K]V)}
}

// Limit returns the eviction bound (0 = unbounded).
func (m *Map[K, V]) Limit() int { return m.limit }

// Len returns the number of entries held.
func (m *Map[K, V]) Len() int { return len(m.vals) }

// Get returns the value for k, marking it most recently used.
func (m *Map[K, V]) Get(k K) (V, bool) {
	v, ok := m.vals[k]
	if ok {
		m.touch(k)
	}
	return v, ok
}

// Peek returns the value for k without touching recency — for
// observers (stats, debugging) that must not distort eviction order.
func (m *Map[K, V]) Peek(k K) (V, bool) {
	v, ok := m.vals[k]
	return v, ok
}

// Put inserts or replaces k, marking it most recently used and
// evicting the least recently used entries beyond the limit.
func (m *Map[K, V]) Put(k K, v V) {
	_, existed := m.vals[k]
	m.vals[k] = v
	if m.limit < 1 {
		return
	}
	if existed {
		m.touch(k)
	} else {
		m.order = append(m.order, k)
	}
	for len(m.vals) > m.limit {
		evict := m.order[0]
		m.order = m.order[1:]
		delete(m.vals, evict)
	}
}

// Reset drops every entry.
func (m *Map[K, V]) Reset() {
	m.vals = make(map[K]V)
	m.order = nil
}

// Each visits every entry without touching recency, in least-to-most
// recently used order (map iteration order when eviction is disabled).
// fn must not mutate the map.
func (m *Map[K, V]) Each(fn func(K, V)) {
	if m.limit >= 1 {
		for _, k := range m.order {
			fn(k, m.vals[k])
		}
		return
	}
	for k, v := range m.vals {
		fn(k, v)
	}
}

// RemoveFunc removes every entry for which pred returns true and
// returns how many were removed, preserving the recency order of the
// survivors. It is the predicate-scoped alternative to Reset: callers
// holding version-keyed entries drop one generation without discarding
// every other warm entry.
func (m *Map[K, V]) RemoveFunc(pred func(K, V) bool) int {
	removed := 0
	for k, v := range m.vals {
		if pred(k, v) {
			delete(m.vals, k)
			removed++
		}
	}
	if removed > 0 && m.limit >= 1 {
		kept := m.order[:0]
		for _, k := range m.order {
			if _, ok := m.vals[k]; ok {
				kept = append(kept, k)
			}
		}
		m.order = kept
	}
	return removed
}

// Purge drops every entry, invoking onEvict (when non-nil) for each in
// least-to-most recently used order (map iteration order when eviction
// is disabled). Unlike Reset it gives owners of the evicted values a
// hook to release per-entry resources.
func (m *Map[K, V]) Purge(onEvict func(K, V)) {
	if onEvict != nil {
		if m.limit >= 1 {
			for _, k := range m.order {
				onEvict(k, m.vals[k])
			}
		} else {
			for k, v := range m.vals {
				onEvict(k, v)
			}
		}
	}
	m.Reset()
}

// touch moves k to the most-recently-used end of the order.
func (m *Map[K, V]) touch(k K) {
	if m.limit < 1 {
		return
	}
	for i, key := range m.order {
		if key == k {
			m.order = append(append(m.order[:i:i], m.order[i+1:]...), k)
			return
		}
	}
}
