package lru

import "testing"

func TestUnbounded(t *testing.T) {
	m := New[string, int](0)
	for i, k := range []string{"a", "b", "c", "d"} {
		m.Put(k, i)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Get("a"); !ok || v != 0 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
}

func TestEvictsLRU(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Get("a")    // b is now LRU
	m.Put("c", 3) // evicts b
	if _, ok := m.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestPutExistingTouches(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("a", 10) // refresh a: b is LRU
	m.Put("c", 3)  // evicts b
	if v, ok := m.Get("a"); !ok || v != 10 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := m.Get("b"); ok {
		t.Error("b survived eviction after a was refreshed")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Peek("a"); !ok || v != 1 {
		t.Errorf("Peek(a) = %d, %v", v, ok)
	}
	m.Put("c", 3) // evicts a: the Peek must not have refreshed it
	if _, ok := m.Peek("a"); ok {
		t.Error("a survived eviction — Peek touched recency")
	}
	if _, ok := m.Peek("nope"); ok {
		t.Error("Peek invented a missing key")
	}
}

func TestReset(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("Len after Reset = %d", m.Len())
	}
	m.Put("b", 2)
	m.Put("c", 3)
	m.Put("d", 4)
	if m.Len() != 2 {
		t.Errorf("Len = %d — limit lost after Reset", m.Len())
	}
}
