package lru

import "testing"

func TestUnbounded(t *testing.T) {
	m := New[string, int](0)
	for i, k := range []string{"a", "b", "c", "d"} {
		m.Put(k, i)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Get("a"); !ok || v != 0 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
}

func TestEvictsLRU(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Get("a")    // b is now LRU
	m.Put("c", 3) // evicts b
	if _, ok := m.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestPutExistingTouches(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("a", 10) // refresh a: b is LRU
	m.Put("c", 3)  // evicts b
	if v, ok := m.Get("a"); !ok || v != 10 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := m.Get("b"); ok {
		t.Error("b survived eviction after a was refreshed")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Peek("a"); !ok || v != 1 {
		t.Errorf("Peek(a) = %d, %v", v, ok)
	}
	m.Put("c", 3) // evicts a: the Peek must not have refreshed it
	if _, ok := m.Peek("a"); ok {
		t.Error("a survived eviction — Peek touched recency")
	}
	if _, ok := m.Peek("nope"); ok {
		t.Error("Peek invented a missing key")
	}
}

func TestRemoveFunc(t *testing.T) {
	m := New[string, int](4)
	for i, k := range []string{"a", "b", "c", "d"} {
		m.Put(k, i)
	}
	if n := m.RemoveFunc(func(k string, v int) bool { return v%2 == 0 }); n != 2 {
		t.Fatalf("RemoveFunc removed %d, want 2", n)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d after RemoveFunc", m.Len())
	}
	if _, ok := m.Peek("a"); ok {
		t.Error("a (even) survived RemoveFunc")
	}
	if _, ok := m.Peek("b"); !ok {
		t.Error("b (odd) was removed")
	}
	// Recency order survives: b is LRU, d is MRU; adding three more
	// evicts b first.
	m.Put("e", 5)
	m.Put("f", 6)
	m.Put("g", 7)
	if _, ok := m.Peek("b"); ok {
		t.Error("b should have been the first eviction after RemoveFunc")
	}
	if _, ok := m.Peek("d"); !ok {
		t.Error("d lost its recency slot across RemoveFunc")
	}
	if n := m.RemoveFunc(func(string, int) bool { return false }); n != 0 {
		t.Errorf("no-op RemoveFunc removed %d", n)
	}
}

func TestRemoveFuncUnbounded(t *testing.T) {
	m := New[string, int](0)
	m.Put("a", 1)
	m.Put("b", 2)
	if n := m.RemoveFunc(func(k string, _ int) bool { return k == "a" }); n != 1 {
		t.Fatalf("RemoveFunc removed %d, want 1", n)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestEachVisitsInRecencyOrder(t *testing.T) {
	m := New[string, int](3)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("c", 3)
	m.Get("a")
	var keys []string
	m.Each(func(k string, _ int) { keys = append(keys, k) })
	if len(keys) != 3 || keys[0] != "b" || keys[1] != "c" || keys[2] != "a" {
		t.Fatalf("Each order = %v, want [b c a]", keys)
	}
	// Each must not touch recency: b is still LRU.
	m.Put("d", 4)
	if _, ok := m.Peek("b"); ok {
		t.Error("b survived — Each touched recency")
	}
	// Unbounded maps are visited too (order unspecified).
	u := New[string, int](0)
	u.Put("x", 1)
	n := 0
	u.Each(func(string, int) { n++ })
	if n != 1 {
		t.Errorf("unbounded Each visited %d entries", n)
	}
}

func TestPurge(t *testing.T) {
	m := New[string, int](3)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("c", 3)
	m.Get("a") // a becomes MRU: purge order should be b, c, a
	var keys []string
	m.Purge(func(k string, v int) { keys = append(keys, k) })
	if m.Len() != 0 {
		t.Fatalf("Len after Purge = %d", m.Len())
	}
	if len(keys) != 3 || keys[0] != "b" || keys[1] != "c" || keys[2] != "a" {
		t.Fatalf("purge callback order = %v, want [b c a]", keys)
	}
	// Purge with nil callback and on an empty map are both fine.
	m.Purge(nil)
	m.Put("x", 1)
	m.Purge(nil)
	if m.Len() != 0 {
		t.Fatalf("Len after nil-callback Purge = %d", m.Len())
	}
}

func TestReset(t *testing.T) {
	m := New[string, int](2)
	m.Put("a", 1)
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("Len after Reset = %d", m.Len())
	}
	m.Put("b", 2)
	m.Put("c", 3)
	m.Put("d", 4)
	if m.Len() != 2 {
		t.Errorf("Len = %d — limit lost after Reset", m.Len())
	}
}
