package xmlschema

import (
	"bytes"
	"strings"
	"testing"
)

func TestEqual(t *testing.T) {
	a := NewElement("r").Add(NewTypedElement("x", "int"), NewElement("y"))
	b := NewElement("r").Add(NewTypedElement("x", "int"), NewElement("y"))
	if !Equal(a, b) {
		t.Error("identical trees not equal")
	}
	c := NewElement("r").Add(NewTypedElement("x", "string"), NewElement("y"))
	if Equal(a, c) {
		t.Error("type difference missed")
	}
	d := NewElement("r").Add(NewElement("y"), NewTypedElement("x", "int"))
	if Equal(a, d) {
		t.Error("child order difference missed")
	}
	e := NewElement("r").Add(NewTypedElement("x", "int"))
	if Equal(a, e) {
		t.Error("arity difference missed")
	}
	if !Equal(nil, nil) {
		t.Error("nil/nil should be equal")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("nil vs tree should differ")
	}
}

func TestFragment(t *testing.T) {
	s := buildLibrary(t)
	book := s.FindByName("book")[0]
	frag, err := Fragment(s, book.ID(), "book-only")
	if err != nil {
		t.Fatal(err)
	}
	if frag.Name != "book-only" || frag.Len() != 3 {
		t.Errorf("fragment = %s (%d elements)", frag.Name, frag.Len())
	}
	if frag.Root().Name != "book" {
		t.Errorf("fragment root = %s", frag.Root().Name)
	}
	// The fragment is independent: mutating it leaves the original intact.
	frag.Root().Children[0].Name = "renamed"
	if s.FindByName("title") == nil {
		t.Error("fragment shares nodes with source schema")
	}
	if _, err := Fragment(s, 99, "x"); err == nil {
		t.Error("unknown root ID should error")
	}
}

func TestFragmentEqualsOriginalSubtree(t *testing.T) {
	s := buildLibrary(t)
	book := s.FindByName("book")[0]
	frag, err := Fragment(s, book.ID(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(frag.Root(), book) {
		t.Error("fragment differs from source subtree")
	}
}

func TestWriteDOT(t *testing.T) {
	s := buildLibrary(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		`digraph "lib"`,
		`label="library"`,
		`label="title : string"`,
		"n0 -> n1;",
		"n1 -> n2;",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, out)
		}
	}
	// Node and edge counts: 5 nodes, 4 edges.
	if n := strings.Count(out, "[label="); n != 5 {
		t.Errorf("%d labeled nodes, want 5", n)
	}
	if n := strings.Count(out, "->"); n != 4 {
		t.Errorf("%d edges, want 4", n)
	}
}
