package xmlschema

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// randomTreeFrom builds a deterministic pseudo-random tree from a byte
// seed slice: each byte chooses the parent of the next node.
func randomTreeFrom(seed []byte) *Element {
	root := NewElement("n0")
	nodes := []*Element{root}
	for i, b := range seed {
		if len(nodes) >= 30 {
			break
		}
		parent := nodes[int(b)%len(nodes)]
		child := NewElement(fmt.Sprintf("n%d", i+1))
		if b%3 == 0 {
			child.Type = "string"
		}
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return root
}

// Property: every generated tree survives schema construction, XML
// round trip, and cloning with full structural equality.
func TestSchemaRoundTripProperty(t *testing.T) {
	f := func(seed []byte) bool {
		s, err := NewSchema("prop", randomTreeFrom(seed))
		if err != nil {
			return false
		}
		// Clone equality.
		if !Equal(s.Root(), s.Clone().Root()) {
			return false
		}
		// XML round trip equality.
		var buf bytes.Buffer
		if err := WriteSchema(&buf, s); err != nil {
			return false
		}
		back, err := ReadSchema(&buf)
		if err != nil {
			return false
		}
		return Equal(s.Root(), back.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: pre-order IDs are dense, parents precede children, and
// Depth is consistent with parent chains.
func TestPreorderInvariantsProperty(t *testing.T) {
	f := func(seed []byte) bool {
		s, err := NewSchema("prop", randomTreeFrom(seed))
		if err != nil {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			e := s.ByID(i)
			if e == nil || e.ID() != i {
				return false
			}
			if p := e.Parent(); p != nil {
				if p.ID() >= i {
					return false // pre-order: parent before child
				}
				if e.Depth() != p.Depth()+1 {
					return false
				}
			} else if i != 0 || e.Depth() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: TreeDistance is a metric on each tree: symmetric, zero iff
// same node, triangle inequality.
func TestTreeDistanceMetricProperty(t *testing.T) {
	f := func(seed []byte, i1, i2, i3 uint8) bool {
		s, err := NewSchema("prop", randomTreeFrom(seed))
		if err != nil {
			return false
		}
		a := s.ByID(int(i1) % s.Len())
		b := s.ByID(int(i2) % s.Len())
		c := s.ByID(int(i3) % s.Len())
		dab := TreeDistance(a, b)
		dba := TreeDistance(b, a)
		if dab != dba || dab < 0 {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return TreeDistance(a, c) <= dab+TreeDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
