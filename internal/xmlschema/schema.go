// Package xmlschema models XML schemas as rooted, ordered, labeled
// trees — the representation used throughout the reproduced paper's
// line of work (Smiljanić et al., DEXA 2005): a schema matching problem
// matches a small personal schema tree against schemas in a large
// repository, and a schema mapping assigns every personal-schema
// element to one repository element.
//
// The package supplies the tree model, construction and validation,
// navigation (paths, ancestors, traversal), and an XML serialization so
// corpora can be written to and read from disk.
package xmlschema

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Element is one node of a schema tree: a named, optionally typed XML
// element with ordered children. Elements belong to exactly one Schema
// and carry a schema-local integer ID assigned in pre-order during
// Schema construction (the root always has ID 0).
type Element struct {
	// Name is the element tag name (e.g. "author").
	Name string
	// Type is an optional simple-type annotation (e.g. "string", "int").
	Type string
	// Children are the ordered sub-elements.
	Children []*Element

	id     int
	parent *Element
}

// NewElement returns a leaf element with the given name.
func NewElement(name string) *Element { return &Element{Name: name} }

// NewTypedElement returns a leaf element with a name and a type.
func NewTypedElement(name, typ string) *Element { return &Element{Name: name, Type: typ} }

// Add appends children to e and returns e for chaining.
func (e *Element) Add(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// ID returns the schema-local identifier assigned by Schema
// construction (pre-order, root = 0). It is 0 for unattached elements.
func (e *Element) ID() int { return e.id }

// Parent returns the parent element, or nil for the root or an
// unattached element.
func (e *Element) Parent() *Element { return e.parent }

// IsLeaf reports whether e has no children.
func (e *Element) IsLeaf() bool { return len(e.Children) == 0 }

// Depth returns the number of edges from e up to its root.
func (e *Element) Depth() int {
	d := 0
	for p := e.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Ancestors returns e's ancestors from parent to root.
func (e *Element) Ancestors() []*Element {
	var out []*Element
	for p := e.parent; p != nil; p = p.parent {
		out = append(out, p)
	}
	return out
}

// HasAncestor reports whether anc is a proper ancestor of e.
func (e *Element) HasAncestor(anc *Element) bool {
	for p := e.parent; p != nil; p = p.parent {
		if p == anc {
			return true
		}
	}
	return false
}

// Path returns the slash-separated name path from the root to e,
// e.g. "library/book/title".
func (e *Element) Path() string {
	names := []string{e.Name}
	for p := e.parent; p != nil; p = p.parent {
		names = append(names, p.Name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, "/")
}

// Walk visits e and its descendants in pre-order, stopping early when
// visit returns false for a subtree (children of a rejected node are
// skipped, traversal of siblings continues).
func (e *Element) Walk(visit func(*Element) bool) {
	if !visit(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(visit)
	}
}

// Size returns the number of elements in the subtree rooted at e.
func (e *Element) Size() int {
	n := 0
	e.Walk(func(*Element) bool { n++; return true })
	return n
}

// Height returns the number of edges on the longest downward path
// from e.
func (e *Element) Height() int {
	h := 0
	for _, c := range e.Children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Schema is a named, validated schema tree with pre-order element IDs
// and an ID index for O(1) lookup. Build one with NewSchema; the
// constructor owns ID assignment and validation.
type Schema struct {
	// Name identifies the schema inside a repository; unique per Repository.
	Name string

	root  *Element
	byID  []*Element
	count int
}

// Validation errors returned by NewSchema.
var (
	ErrNilRoot      = errors.New("xmlschema: schema root is nil")
	ErrEmptyName    = errors.New("xmlschema: element with empty name")
	ErrSharedNode   = errors.New("xmlschema: element reachable twice (tree required)")
	ErrEmptySchema  = errors.New("xmlschema: schema name is empty")
	ErrReusedRoot   = errors.New("xmlschema: element already belongs to another schema")
	ErrUnknownDelim = errors.New("xmlschema: invalid path")
)

// NewSchema validates the tree under root, assigns pre-order IDs and
// parent pointers, and returns the Schema. The tree must be a proper
// tree (no node reachable twice), every element must have a non-empty
// name, and root must not already belong to a schema.
func NewSchema(name string, root *Element) (*Schema, error) {
	if name == "" {
		return nil, ErrEmptySchema
	}
	if root == nil {
		return nil, ErrNilRoot
	}
	if root.parent != nil {
		return nil, ErrReusedRoot
	}
	s := &Schema{Name: name, root: root}
	seen := make(map[*Element]bool)
	var build func(e, parent *Element) error
	build = func(e, parent *Element) error {
		if e == nil {
			return ErrNilRoot
		}
		if e.Name == "" {
			return ErrEmptyName
		}
		if seen[e] {
			return fmt.Errorf("%w: %q", ErrSharedNode, e.Name)
		}
		seen[e] = true
		e.parent = parent
		e.id = s.count
		s.count++
		s.byID = append(s.byID, e)
		for _, c := range e.Children {
			if err := build(c, e); err != nil {
				return err
			}
		}
		return nil
	}
	root.parent = nil // allow the root itself
	if err := build(root, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the root element.
func (s *Schema) Root() *Element { return s.root }

// Len returns the number of elements in the schema.
func (s *Schema) Len() int { return s.count }

// ByID returns the element with the given schema-local ID, or nil.
func (s *Schema) ByID(id int) *Element {
	if id < 0 || id >= len(s.byID) {
		return nil
	}
	return s.byID[id]
}

// Elements returns all elements in pre-order (ID order). The returned
// slice is shared; callers must not modify it.
func (s *Schema) Elements() []*Element { return s.byID }

// Walk visits all elements in pre-order.
func (s *Schema) Walk(visit func(*Element) bool) { s.root.Walk(visit) }

// FindByName returns all elements whose Name equals name, in ID order.
func (s *Schema) FindByName(name string) []*Element {
	var out []*Element
	for _, e := range s.byID {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// FindByPath resolves a slash path ("library/book/title") starting at
// the root. The first segment must match the root name. It returns nil
// when the path does not resolve.
func (s *Schema) FindByPath(path string) *Element {
	segs := strings.Split(path, "/")
	if len(segs) == 0 || segs[0] != s.root.Name {
		return nil
	}
	cur := s.root
outer:
	for _, seg := range segs[1:] {
		for _, c := range cur.Children {
			if c.Name == seg {
				cur = c
				continue outer
			}
		}
		return nil
	}
	return cur
}

// Names returns the sorted multiset of element names (duplicates kept).
func (s *Schema) Names() []string {
	out := make([]string, 0, s.count)
	for _, e := range s.byID {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the schema (fresh elements, same names,
// types and structure, IDs re-assigned identically because pre-order is
// preserved).
func (s *Schema) Clone() *Schema {
	var cp func(e *Element) *Element
	cp = func(e *Element) *Element {
		ne := &Element{Name: e.Name, Type: e.Type}
		for _, c := range e.Children {
			ne.Children = append(ne.Children, cp(c))
		}
		return ne
	}
	clone, err := NewSchema(s.Name, cp(s.root))
	if err != nil {
		// A valid schema always clones into a valid schema.
		panic("xmlschema: clone of valid schema failed: " + err.Error())
	}
	return clone
}

// CloneAs returns a deep copy of the schema under a different name —
// the building block for snapshot updates that register a variant of an
// existing schema (or re-register one under a fresh name).
func (s *Schema) CloneAs(name string) (*Schema, error) {
	clone := s.Clone()
	if name == s.Name {
		return clone, nil
	}
	return NewSchema(name, clone.root)
}

// String renders the schema as an indented outline, for debugging and
// golden tests.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", s.Name)
	var rec func(e *Element, depth int)
	rec = func(e *Element, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(e.Name)
		if e.Type != "" {
			b.WriteString(":" + e.Type)
		}
		b.WriteByte('\n')
		for _, c := range e.Children {
			rec(c, depth+1)
		}
	}
	rec(s.root, 0)
	return b.String()
}

// LCA returns the lowest common ancestor of a and b, which must belong
// to the same schema; it returns nil if they do not.
func LCA(a, b *Element) *Element {
	da, db := a.Depth(), b.Depth()
	for da > db {
		a = a.parent
		da--
	}
	for db > da {
		b = b.parent
		db--
	}
	for a != b {
		if a == nil || b == nil {
			return nil
		}
		a, b = a.parent, b.parent
	}
	return a
}

// TreeDistance returns the number of edges on the path between a and b
// through their LCA, or -1 when they are in different trees.
func TreeDistance(a, b *Element) int {
	l := LCA(a, b)
	if l == nil {
		return -1
	}
	return a.Depth() + b.Depth() - 2*l.Depth()
}
