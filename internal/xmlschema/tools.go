package xmlschema

import (
	"fmt"
	"io"
	"strings"
)

// Equal reports whether two elements root structurally identical trees
// (same names, types, child order).
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Type != b.Type || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Fragment extracts the subtree of s rooted at the element with the
// given ID as a fresh standalone schema named name. It returns an
// error when the ID is unknown.
func Fragment(s *Schema, rootID int, name string) (*Schema, error) {
	root := s.ByID(rootID)
	if root == nil {
		return nil, fmt.Errorf("xmlschema: no element %d in schema %q", rootID, s.Name)
	}
	var cp func(e *Element) *Element
	cp = func(e *Element) *Element {
		ne := &Element{Name: e.Name, Type: e.Type}
		for _, c := range e.Children {
			ne.Children = append(ne.Children, cp(c))
		}
		return ne
	}
	return NewSchema(name, cp(root))
}

// WriteDOT renders the schema as a Graphviz digraph, one node per
// element labeled with its name (and type when present). Useful for
// inspecting generated corpora and for documentation.
func WriteDOT(w io.Writer, s *Schema) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", s.Name)
	for _, e := range s.Elements() {
		label := e.Name
		if e.Type != "" {
			label += " : " + e.Type
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", e.ID(), label)
	}
	for _, e := range s.Elements() {
		for _, c := range e.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.ID(), c.ID())
		}
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("xmlschema: writing DOT: %w", err)
	}
	return nil
}
