package xmlschema

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func twoSchemaRepo(t *testing.T) *Repository {
	t.Helper()
	rep := NewRepository()
	a, err := NewSchema("a", NewElement("ra").Add(NewElement("x"), NewElement("y")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchema("b", NewElement("rb").Add(NewElement("z")))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := rep.Add(b); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRepositoryBasics(t *testing.T) {
	rep := twoSchemaRepo(t)
	if rep.Len() != 2 {
		t.Errorf("Len = %d", rep.Len())
	}
	if rep.NumElements() != 5 {
		t.Errorf("NumElements = %d, want 5", rep.NumElements())
	}
	if rep.Schema("a") == nil || rep.Schema("missing") != nil {
		t.Error("Schema lookup broken")
	}
	ss := rep.Schemas()
	if len(ss) != 2 || ss[0].Name != "a" || ss[1].Name != "b" {
		t.Errorf("Schemas order = %v", ss)
	}
}

func TestRepositoryAddErrors(t *testing.T) {
	rep := twoSchemaRepo(t)
	if err := rep.Add(nil); err == nil {
		t.Error("nil schema should error")
	}
	dup, _ := NewSchema("a", NewElement("again"))
	if err := rep.Add(dup); err == nil {
		t.Error("duplicate name should error")
	}
}

func TestResolveAndRefOf(t *testing.T) {
	rep := twoSchemaRepo(t)
	s := rep.Schema("a")
	x := s.FindByName("x")[0]
	ref := RefOf(s, x)
	if ref.Schema != "a" || ref.ID != x.ID() {
		t.Errorf("RefOf = %v", ref)
	}
	if got := rep.Resolve(ref); got != x {
		t.Error("Resolve round-trip failed")
	}
	if rep.Resolve(Ref{Schema: "missing", ID: 0}) != nil {
		t.Error("Resolve of unknown schema should be nil")
	}
	if rep.Resolve(Ref{Schema: "a", ID: 99}) != nil {
		t.Error("Resolve of unknown ID should be nil")
	}
	if ref.String() != "a#1" {
		t.Errorf("Ref.String = %q", ref.String())
	}
}

func TestAllRefsAndSort(t *testing.T) {
	rep := twoSchemaRepo(t)
	refs := rep.AllRefs()
	if len(refs) != 5 {
		t.Fatalf("AllRefs = %d", len(refs))
	}
	// Shuffle-ish then sort.
	refs[0], refs[4] = refs[4], refs[0]
	SortRefs(refs)
	for i := 1; i < len(refs); i++ {
		if refs[i].Less(refs[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, refs)
		}
	}
}

func TestRefLessTotalOrder(t *testing.T) {
	f := func(s1 string, id1 int, s2 string, id2 int) bool {
		a := Ref{Schema: s1, ID: id1}
		b := Ref{Schema: s2, ID: id2}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeStats(t *testing.T) {
	rep := twoSchemaRepo(t)
	st := rep.ComputeStats()
	if st.Schemas != 2 || st.Elements != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxDepth != 1 {
		t.Errorf("MaxDepth = %d, want 1", st.MaxDepth)
	}
	if st.MeanSize != 2.5 {
		t.Errorf("MeanSize = %v", st.MeanSize)
	}
	// 3 leaves of 5 elements.
	if st.LeafRatio != 0.6 {
		t.Errorf("LeafRatio = %v", st.LeafRatio)
	}
	empty := NewRepository().ComputeStats()
	if empty.Schemas != 0 || empty.MeanSize != 0 || empty.LeafRatio != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestSchemaXMLRoundTrip(t *testing.T) {
	root := NewElement("order").Add(
		NewTypedElement("id", "int"),
		NewElement("customer").Add(NewTypedElement("name", "string")),
	)
	s, err := NewSchema("orders", root)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchema(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Errorf("round trip changed schema:\n%s\nvs\n%s", back, s)
	}
}

func TestRepositoryXMLRoundTrip(t *testing.T) {
	rep := twoSchemaRepo(t)
	var buf bytes.Buffer
	if err := WriteRepository(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rep.Len() || back.NumElements() != rep.NumElements() {
		t.Errorf("round trip: %d/%d vs %d/%d", back.Len(), back.NumElements(), rep.Len(), rep.NumElements())
	}
	for _, s := range rep.Schemas() {
		if back.Schema(s.Name).String() != s.String() {
			t.Errorf("schema %s differs after round trip", s.Name)
		}
	}
}

func TestReadSchemaErrors(t *testing.T) {
	if _, err := ReadSchema(strings.NewReader("not xml at all <<<")); err == nil {
		t.Error("garbage input should error")
	}
	// Valid XML, invalid schema (empty element name).
	bad := `<schema name="s"><element name=""/></schema>`
	if _, err := ReadSchema(strings.NewReader(bad)); err == nil {
		t.Error("empty element name should error")
	}
}

func TestReadRepositoryErrors(t *testing.T) {
	if _, err := ReadRepository(strings.NewReader("<<<")); err == nil {
		t.Error("garbage input should error")
	}
	dup := `<repository>
	  <schema name="s"><element name="r"/></schema>
	  <schema name="s"><element name="r"/></schema>
	</repository>`
	if _, err := ReadRepository(strings.NewReader(dup)); err == nil {
		t.Error("duplicate schema names should error")
	}
}
