package xmlschema

import (
	"errors"
	"testing"
)

// snapTestRepo builds a three-schema repository.
func snapTestRepo(t *testing.T) *Repository {
	t.Helper()
	repo := NewRepository()
	for _, name := range []string{"a", "b", "c"} {
		s, err := NewSchema(name,
			NewElement(name+"root").Add(
				NewElement(name+"leaf1"),
				NewElement(name+"leaf2"),
			))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

func mustSchema(t *testing.T, name string) *Schema {
	t.Helper()
	s, err := NewSchema(name, NewElement(name+"root").Add(NewElement(name+"kid")))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSnapshotSealsRepository(t *testing.T) {
	repo := snapTestRepo(t)
	snap, err := NewSnapshot(repo)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", snap.Version())
	}
	if !repo.Sealed() {
		t.Fatal("snapshot repository not sealed")
	}
	if err := repo.Add(mustSchema(t, "d")); !errors.Is(err, ErrSealed) {
		t.Fatalf("Add on sealed repo: err = %v, want ErrSealed", err)
	}
	if _, err := NewSnapshot(nil); err == nil {
		t.Fatal("NewSnapshot(nil) should error")
	}
}

func TestSnapshotAddSharesUnchangedSchemas(t *testing.T) {
	snap, err := NewSnapshot(snapTestRepo(t))
	if err != nil {
		t.Fatal(err)
	}
	d := mustSchema(t, "d")
	next, err := snap.Add(d)
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() <= snap.Version() {
		t.Fatalf("version not monotonic: %d -> %d", snap.Version(), next.Version())
	}
	// Old snapshot untouched.
	if snap.Len() != 3 || snap.Schema("d") != nil {
		t.Fatal("Add mutated the source snapshot")
	}
	if next.Len() != 4 || next.Schema("d") != d {
		t.Fatal("Add did not take in the new snapshot")
	}
	// Structural sharing: unchanged schemas are pointer-identical.
	for _, name := range []string{"a", "b", "c"} {
		if snap.Schema(name) != next.Schema(name) {
			t.Fatalf("schema %q copied instead of shared", name)
		}
	}
	if !next.Repository().Sealed() {
		t.Fatal("derived repository not sealed")
	}
	// Duplicate adds are typed.
	if _, err := next.Add(mustSchema(t, "a")); !errors.Is(err, ErrDuplicateSchema) {
		t.Fatalf("duplicate Add: err = %v, want ErrDuplicateSchema", err)
	}
	if _, err := next.Add(nil); err == nil {
		t.Fatal("Add(nil) should error")
	}
}

func TestSnapshotRemoveAndReplace(t *testing.T) {
	snap, err := NewSnapshot(snapTestRepo(t))
	if err != nil {
		t.Fatal(err)
	}
	removed, err := snap.Remove("b")
	if err != nil {
		t.Fatal(err)
	}
	if removed.Len() != 2 || removed.Schema("b") != nil {
		t.Fatal("Remove did not drop the schema")
	}
	if snap.Schema("b") == nil {
		t.Fatal("Remove mutated the source snapshot")
	}
	// Insertion order preserved for survivors.
	got := removed.Schemas()
	if got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("order after Remove = [%s %s], want [a c]", got[0].Name, got[1].Name)
	}

	if _, err := snap.Remove("zzz"); !errors.Is(err, ErrUnknownSchema) {
		t.Fatalf("Remove unknown: err = %v, want ErrUnknownSchema", err)
	}

	b2 := mustSchema(t, "b")
	replaced, err := snap.Replace(b2)
	if err != nil {
		t.Fatal(err)
	}
	if replaced.Schema("b") != b2 {
		t.Fatal("Replace did not substitute the schema")
	}
	if replaced.Schema("a") != snap.Schema("a") {
		t.Fatal("Replace copied an unchanged schema")
	}
	names := replaced.Schemas()
	if names[0].Name != "a" || names[1].Name != "b" || names[2].Name != "c" {
		t.Fatal("Replace changed insertion order")
	}
	if _, err := snap.Replace(mustSchema(t, "nope")); !errors.Is(err, ErrUnknownSchema) {
		t.Fatalf("Replace unknown: err = %v, want ErrUnknownSchema", err)
	}
}

func TestSnapshotVersionsMonotonicAcrossBranches(t *testing.T) {
	snap, err := NewSnapshot(snapTestRepo(t))
	if err != nil {
		t.Fatal(err)
	}
	left, err := snap.Add(mustSchema(t, "l"))
	if err != nil {
		t.Fatal(err)
	}
	right, err := snap.Add(mustSchema(t, "r"))
	if err != nil {
		t.Fatal(err)
	}
	if left.Version() == right.Version() {
		t.Fatalf("sibling snapshots share version %d", left.Version())
	}
	if left.Version() <= snap.Version() || right.Version() <= snap.Version() {
		t.Fatal("derived snapshot version not above parent")
	}
}

func TestDiffSnapshots(t *testing.T) {
	snap, err := NewSnapshot(snapTestRepo(t))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffSnapshots(snap, snap); !d.Empty() || d.NumChanged() != 0 {
		t.Fatalf("self-diff not empty: %+v", d)
	}

	d1 := mustSchema(t, "d")
	b2 := mustSchema(t, "b")
	next, err := snap.Add(d1)
	if err != nil {
		t.Fatal(err)
	}
	next, err = next.Replace(b2)
	if err != nil {
		t.Fatal(err)
	}
	next, err = next.Remove("c")
	if err != nil {
		t.Fatal(err)
	}

	diff := DiffSnapshots(snap, next)
	if diff.From != snap.Version() || diff.To != next.Version() {
		t.Fatalf("diff versions %d->%d, want %d->%d", diff.From, diff.To, snap.Version(), next.Version())
	}
	if len(diff.Added) != 1 || diff.Added[0] != d1 {
		t.Fatalf("Added = %v", diff.Added)
	}
	if len(diff.Removed) != 1 || diff.Removed[0].Name != "c" {
		t.Fatalf("Removed = %v", diff.Removed)
	}
	if len(diff.Replaced) != 1 || diff.Replaced[0].New != b2 || diff.Replaced[0].Old != snap.Schema("b") {
		t.Fatalf("Replaced = %v", diff.Replaced)
	}
	if diff.NumChanged() != 3 {
		t.Fatalf("NumChanged = %d, want 3", diff.NumChanged())
	}

	// The reverse diff mirrors the forward one.
	rev := DiffSnapshots(next, snap)
	if len(rev.Added) != 1 || rev.Added[0].Name != "c" ||
		len(rev.Removed) != 1 || rev.Removed[0] != d1 ||
		len(rev.Replaced) != 1 || rev.Replaced[0].Old != b2 {
		t.Fatalf("reverse diff = %+v", rev)
	}
}

func TestCloneAs(t *testing.T) {
	s := mustSchema(t, "orig")
	c, err := s.CloneAs("copy")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "copy" || c.Len() != s.Len() {
		t.Fatalf("CloneAs produced %q with %d elements", c.Name, c.Len())
	}
	if c.Root() == s.Root() {
		t.Fatal("CloneAs shared the element tree")
	}
	if c.Root().Name != s.Root().Name {
		t.Fatal("CloneAs changed element names")
	}
	same, err := s.CloneAs("orig")
	if err != nil {
		t.Fatal(err)
	}
	if same.Name != "orig" || same.Root() == s.Root() {
		t.Fatal("CloneAs with same name must still deep-copy")
	}
}
