package xmlschema

import (
	"fmt"
	"sort"
)

// Ref identifies one element globally across a repository: the schema
// name plus the schema-local element ID. Refs are the currency of the
// matching layer — answer sets, mappings and clusters all speak Refs.
type Ref struct {
	Schema string
	ID     int
}

// String renders the Ref as "schema#id".
func (r Ref) String() string { return fmt.Sprintf("%s#%d", r.Schema, r.ID) }

// Less orders Refs by schema name, then ID (for deterministic output).
func (r Ref) Less(o Ref) bool {
	if r.Schema != o.Schema {
		return r.Schema < o.Schema
	}
	return r.ID < o.ID
}

// Repository is a collection of uniquely named schemas with global
// element lookup. It is the "large schema repository" of the paper's
// matching problem.
type Repository struct {
	schemas map[string]*Schema
	order   []string
	// sealed marks a repository that backs a Snapshot: it is immutable
	// and Add fails with ErrSealed. See NewSnapshot.
	sealed bool
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{schemas: make(map[string]*Schema)}
}

// Add inserts s. Adding two schemas with the same name fails with
// ErrDuplicateSchema (the error string names the colliding schema);
// adding to a sealed repository fails with ErrSealed.
func (r *Repository) Add(s *Schema) error {
	if r.sealed {
		return ErrSealed
	}
	if s == nil {
		return fmt.Errorf("xmlschema: adding nil schema")
	}
	if _, dup := r.schemas[s.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateSchema, s.Name)
	}
	r.schemas[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// Sealed reports whether the repository backs a Snapshot and rejects
// direct mutation.
func (r *Repository) Sealed() bool { return r.sealed }

// Schema returns the schema named name, or nil.
func (r *Repository) Schema(name string) *Schema { return r.schemas[name] }

// Schemas returns all schemas in insertion order.
func (r *Repository) Schemas() []*Schema {
	out := make([]*Schema, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.schemas[n])
	}
	return out
}

// Len returns the number of schemas.
func (r *Repository) Len() int { return len(r.order) }

// NumElements returns the total number of elements across all schemas —
// the size of the repository the paper's efficiency concern is about.
func (r *Repository) NumElements() int {
	n := 0
	for _, s := range r.schemas {
		n += s.Len()
	}
	return n
}

// Resolve returns the element identified by ref, or nil when either the
// schema or the ID is unknown.
func (r *Repository) Resolve(ref Ref) *Element {
	s := r.schemas[ref.Schema]
	if s == nil {
		return nil
	}
	return s.ByID(ref.ID)
}

// RefOf returns the Ref of an element that belongs to schema s.
func RefOf(s *Schema, e *Element) Ref { return Ref{Schema: s.Name, ID: e.id} }

// AllRefs returns the Refs of every element in the repository, ordered
// by schema insertion order and element ID.
func (r *Repository) AllRefs() []Ref {
	out := make([]Ref, 0, r.NumElements())
	for _, n := range r.order {
		s := r.schemas[n]
		for _, e := range s.byID {
			out = append(out, Ref{Schema: n, ID: e.id})
		}
	}
	return out
}

// SortRefs orders refs deterministically in place.
func SortRefs(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
}

// Stats summarizes a repository for reports.
type Stats struct {
	Schemas   int
	Elements  int
	MaxDepth  int
	MeanSize  float64
	LeafRatio float64
}

// ComputeStats walks the repository once and returns summary figures.
func (r *Repository) ComputeStats() Stats {
	st := Stats{Schemas: r.Len()}
	leaves := 0
	for _, s := range r.Schemas() {
		st.Elements += s.Len()
		if h := s.Root().Height(); h > st.MaxDepth {
			st.MaxDepth = h
		}
		s.Walk(func(e *Element) bool {
			if e.IsLeaf() {
				leaves++
			}
			return true
		})
	}
	if st.Schemas > 0 {
		st.MeanSize = float64(st.Elements) / float64(st.Schemas)
	}
	if st.Elements > 0 {
		st.LeafRatio = float64(leaves) / float64(st.Elements)
	}
	return st
}
