package xmlschema

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Typed mutation errors. Callers branch on them with errors.Is; the
// wrapped forms carry the offending schema name.
var (
	// ErrDuplicateSchema is returned when a schema is added under a
	// name the repository (or snapshot) already holds.
	ErrDuplicateSchema = errors.New("xmlschema: duplicate schema name")
	// ErrUnknownSchema is returned when a snapshot mutation names a
	// schema the snapshot does not hold.
	ErrUnknownSchema = errors.New("xmlschema: unknown schema")
	// ErrSealed is returned by Repository.Add on a repository that
	// backs a Snapshot: snapshot repositories are immutable and must be
	// mutated through Snapshot.Add/Remove/Replace instead.
	ErrSealed = errors.New("xmlschema: repository is sealed (backs a snapshot); mutate via Snapshot")
)

// Snapshot is an immutable, versioned view of a schema repository.
// Mutations (Add, Remove, Replace) are copy-on-write: they return a new
// Snapshot sharing every unchanged *Schema with the old one, and the
// old Snapshot stays fully valid — in-flight searches, cost tables and
// cluster indexes built against it keep working unchanged. Versions are
// monotonically increasing within one lineage (every snapshot derived,
// directly or transitively, from the same NewSnapshot call), so a newer
// snapshot always carries a larger Version.
//
// Because unchanged schemas are shared by pointer, the difference
// between any two snapshots of a lineage is computable in O(schemas)
// pointer comparisons — see DiffSnapshots.
type Snapshot struct {
	repo    *Repository
	version uint64
	counter *atomic.Uint64
}

// NewSnapshot wraps repo as version 1 of a new snapshot lineage. The
// repository is sealed: further Repository.Add calls fail with
// ErrSealed, and all mutation goes through the returned Snapshot. The
// schemas themselves are shared, not copied — they are immutable after
// NewSchema by contract.
func NewSnapshot(repo *Repository) (*Snapshot, error) {
	if repo == nil {
		return nil, fmt.Errorf("xmlschema: nil repository")
	}
	repo.sealed = true
	counter := new(atomic.Uint64)
	counter.Store(1)
	return &Snapshot{repo: repo, version: 1, counter: counter}, nil
}

// RestoreSnapshot wraps repo as a new snapshot lineage whose first
// snapshot carries the given version instead of 1 — the durable-store
// recovery path, where a repository reconstructed from a base record
// must resume the version numbering of the lineage it was persisted
// from. Later derives continue past version as usual.
func RestoreSnapshot(repo *Repository, version uint64) (*Snapshot, error) {
	if version < 1 {
		return nil, fmt.Errorf("xmlschema: restore version %d < 1", version)
	}
	s, err := NewSnapshot(repo)
	if err != nil {
		return nil, err
	}
	s.version = version
	s.counter.Store(version)
	return s, nil
}

// AtVersion returns a snapshot of the same repository pinned at
// version v ≥ the receiver's version, raising the lineage counter so
// later derives continue past v. It exists for diff-log replay: one
// logical update can derive several intermediate snapshots (bumping
// the version by more than one), and replaying its collapsed diff must
// still land on exactly the version the original update reached.
func (s *Snapshot) AtVersion(v uint64) (*Snapshot, error) {
	if v < s.version {
		return nil, fmt.Errorf("xmlschema: version %d behind snapshot version %d", v, s.version)
	}
	if v == s.version {
		return s, nil
	}
	for {
		cur := s.counter.Load()
		if cur >= v || s.counter.CompareAndSwap(cur, v) {
			break
		}
	}
	return &Snapshot{repo: s.repo, version: v, counter: s.counter}, nil
}

// Version returns the snapshot's monotonic version within its lineage.
func (s *Snapshot) Version() uint64 { return s.version }

// Repository returns the sealed repository backing this snapshot. It is
// safe to share with any reader (matchers, index builds); writes fail.
func (s *Snapshot) Repository() *Repository { return s.repo }

// Schemas returns the snapshot's schemas in insertion order.
func (s *Snapshot) Schemas() []*Schema { return s.repo.Schemas() }

// Schema returns the schema named name, or nil.
func (s *Snapshot) Schema(name string) *Schema { return s.repo.Schema(name) }

// Len returns the number of schemas.
func (s *Snapshot) Len() int { return s.repo.Len() }

// derive returns a new snapshot of the same lineage over repo, with the
// next version of the lineage counter.
func (s *Snapshot) derive(repo *Repository) *Snapshot {
	repo.sealed = true
	return &Snapshot{repo: repo, version: s.counter.Add(1), counter: s.counter}
}

// clone returns a mutable copy of the snapshot's repository: fresh map
// and order, shared *Schema values.
func (s *Snapshot) clone() *Repository {
	cp := &Repository{
		schemas: make(map[string]*Schema, len(s.repo.schemas)),
		order:   append([]string(nil), s.repo.order...),
	}
	for n, sch := range s.repo.schemas {
		cp.schemas[n] = sch
	}
	return cp
}

// Add returns a new snapshot additionally holding schemas. Adding a
// nil schema or a name the snapshot already holds (including a
// duplicate within the arguments) fails with ErrDuplicateSchema and
// produces no new snapshot.
func (s *Snapshot) Add(schemas ...*Schema) (*Snapshot, error) {
	cp := s.clone()
	for _, sch := range schemas {
		if sch == nil {
			return nil, fmt.Errorf("xmlschema: adding nil schema")
		}
		if _, dup := cp.schemas[sch.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateSchema, sch.Name)
		}
		cp.schemas[sch.Name] = sch
		cp.order = append(cp.order, sch.Name)
	}
	return s.derive(cp), nil
}

// Remove returns a new snapshot without the named schemas. Removing a
// name the snapshot does not hold fails with ErrUnknownSchema.
func (s *Snapshot) Remove(names ...string) (*Snapshot, error) {
	cp := s.clone()
	for _, name := range names {
		if _, ok := cp.schemas[name]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, name)
		}
		delete(cp.schemas, name)
	}
	kept := cp.order[:0]
	for _, n := range cp.order {
		if _, ok := cp.schemas[n]; ok {
			kept = append(kept, n)
		}
	}
	cp.order = kept
	return s.derive(cp), nil
}

// Replace returns a new snapshot where each schema substitutes the
// current schema of the same name, keeping its position in insertion
// order. Replacing a name the snapshot does not hold fails with
// ErrUnknownSchema.
func (s *Snapshot) Replace(schemas ...*Schema) (*Snapshot, error) {
	cp := s.clone()
	for _, sch := range schemas {
		if sch == nil {
			return nil, fmt.Errorf("xmlschema: replacing with nil schema")
		}
		if _, ok := cp.schemas[sch.Name]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, sch.Name)
		}
		cp.schemas[sch.Name] = sch
	}
	return s.derive(cp), nil
}

// SchemaChange is one replaced schema of a Diff: the schema the old
// snapshot held under the name, and the one the new snapshot holds.
type SchemaChange struct {
	Old, New *Schema
}

// Diff describes how one snapshot differs from another, schema by
// schema. Unchanged schemas (pointer-identical in both snapshots) never
// appear; a schema whose name exists in both but whose pointer differs
// is Replaced. Diffs drive incremental maintenance: index and cost
// table updates touch exactly the schemas listed here.
type Diff struct {
	// From and To are the versions the diff leads between.
	From, To uint64
	// Added holds schemas present only in the target snapshot, in its
	// insertion order.
	Added []*Schema
	// Removed holds schemas present only in the source snapshot, in its
	// insertion order.
	Removed []*Schema
	// Replaced holds same-name schema substitutions, in the target's
	// insertion order.
	Replaced []SchemaChange
}

// Empty reports whether the diff changes nothing.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Replaced) == 0
}

// NumChanged returns the number of schema-level changes.
func (d Diff) NumChanged() int {
	return len(d.Added) + len(d.Removed) + len(d.Replaced)
}

// DiffSnapshots computes the schema-level difference between two
// snapshots by pointer comparison — O(schemas), independent of schema
// sizes, thanks to structural sharing. It works across arbitrary
// snapshots (not only parent/child), including snapshots of different
// lineages, as long as unchanged schemas are shared by pointer.
func DiffSnapshots(from, to *Snapshot) Diff {
	d := Diff{From: from.version, To: to.version}
	for _, n := range to.repo.order {
		ns := to.repo.schemas[n]
		os, ok := from.repo.schemas[n]
		switch {
		case !ok:
			d.Added = append(d.Added, ns)
		case os != ns:
			d.Replaced = append(d.Replaced, SchemaChange{Old: os, New: ns})
		}
	}
	for _, n := range from.repo.order {
		if _, ok := to.repo.schemas[n]; !ok {
			d.Removed = append(d.Removed, from.repo.schemas[n])
		}
	}
	return d
}
