package xmlschema

import (
	"encoding/xml"
	"fmt"
	"io"
)

// The on-disk corpus format is plain XML:
//
//	<schema name="library">
//	  <element name="library">
//	    <element name="book">
//	      <element name="title" type="string"/>
//	    </element>
//	  </element>
//	</schema>
//
// A repository file is a sequence of <schema> documents wrapped in
// <repository>.

type xmlElement struct {
	XMLName  xml.Name     `xml:"element"`
	Name     string       `xml:"name,attr"`
	Type     string       `xml:"type,attr,omitempty"`
	Children []xmlElement `xml:"element"`
}

type xmlSchema struct {
	XMLName xml.Name   `xml:"schema"`
	Name    string     `xml:"name,attr"`
	Root    xmlElement `xml:"element"`
}

type xmlRepository struct {
	XMLName xml.Name    `xml:"repository"`
	Schemas []xmlSchema `xml:"schema"`
}

func toXML(e *Element) xmlElement {
	xe := xmlElement{Name: e.Name, Type: e.Type}
	for _, c := range e.Children {
		xe.Children = append(xe.Children, toXML(c))
	}
	return xe
}

func fromXML(xe xmlElement) *Element {
	e := &Element{Name: xe.Name, Type: xe.Type}
	for _, c := range xe.Children {
		e.Children = append(e.Children, fromXML(c))
	}
	return e
}

// WriteSchema serializes s as XML to w.
func WriteSchema(w io.Writer, s *Schema) error {
	doc := xmlSchema{Name: s.Name, Root: toXML(s.root)}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlschema: encoding schema %s: %w", s.Name, err)
	}
	return nil
}

// ReadSchema parses one schema document from r.
func ReadSchema(r io.Reader) (*Schema, error) {
	var doc xmlSchema
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlschema: decoding schema: %w", err)
	}
	s, err := NewSchema(doc.Name, fromXML(doc.Root))
	if err != nil {
		return nil, fmt.Errorf("xmlschema: invalid schema %q: %w", doc.Name, err)
	}
	return s, nil
}

// WriteRepository serializes all schemas of rep to w as one XML
// document.
func WriteRepository(w io.Writer, rep *Repository) error {
	doc := xmlRepository{}
	for _, s := range rep.Schemas() {
		doc.Schemas = append(doc.Schemas, xmlSchema{Name: s.Name, Root: toXML(s.root)})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlschema: encoding repository: %w", err)
	}
	return nil
}

// ReadRepository parses a repository document from r.
func ReadRepository(r io.Reader) (*Repository, error) {
	var doc xmlRepository
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlschema: decoding repository: %w", err)
	}
	rep := NewRepository()
	for _, xs := range doc.Schemas {
		s, err := NewSchema(xs.Name, fromXML(xs.Root))
		if err != nil {
			return nil, fmt.Errorf("xmlschema: invalid schema %q in repository: %w", xs.Name, err)
		}
		if err := rep.Add(s); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
