package xmlschema

import (
	"strings"
	"testing"
)

// library/book/{title,author}, library/member is the running example.
func buildLibrary(t *testing.T) *Schema {
	t.Helper()
	root := NewElement("library").Add(
		NewElement("book").Add(
			NewTypedElement("title", "string"),
			NewTypedElement("author", "string"),
		),
		NewElement("member"),
	)
	s, err := NewSchema("lib", root)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaAssignsPreorderIDs(t *testing.T) {
	s := buildLibrary(t)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	wantNames := []string{"library", "book", "title", "author", "member"}
	for id, name := range wantNames {
		e := s.ByID(id)
		if e == nil || e.Name != name {
			t.Errorf("ByID(%d) = %v, want %s", id, e, name)
		}
		if e.ID() != id {
			t.Errorf("element %s ID = %d, want %d", name, e.ID(), id)
		}
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", NewElement("r")); err != ErrEmptySchema {
		t.Errorf("empty name err = %v", err)
	}
	if _, err := NewSchema("s", nil); err != ErrNilRoot {
		t.Errorf("nil root err = %v", err)
	}
	if _, err := NewSchema("s", NewElement("r").Add(NewElement(""))); err == nil {
		t.Error("empty element name should be rejected")
	}
	shared := NewElement("shared")
	dag := NewElement("r").Add(shared, NewElement("mid").Add(shared))
	if _, err := NewSchema("s", dag); err == nil {
		t.Error("DAG should be rejected")
	}
}

func TestNewSchemaRejectsReusedRoot(t *testing.T) {
	root := NewElement("r").Add(NewElement("c"))
	if _, err := NewSchema("a", root); err != nil {
		t.Fatal(err)
	}
	// The child now has a parent; using it as another schema's root
	// must fail.
	if _, err := NewSchema("b", root.Children[0]); err != ErrReusedRoot {
		t.Errorf("reused element err = %v, want ErrReusedRoot", err)
	}
}

func TestParentsAndDepth(t *testing.T) {
	s := buildLibrary(t)
	title := s.FindByName("title")[0]
	if title.Depth() != 2 {
		t.Errorf("title depth = %d, want 2", title.Depth())
	}
	if title.Parent().Name != "book" {
		t.Errorf("title parent = %s", title.Parent().Name)
	}
	if s.Root().Parent() != nil {
		t.Error("root parent should be nil")
	}
	anc := title.Ancestors()
	if len(anc) != 2 || anc[0].Name != "book" || anc[1].Name != "library" {
		t.Errorf("ancestors = %v", anc)
	}
	if !title.HasAncestor(s.Root()) {
		t.Error("title should have library as ancestor")
	}
	if title.HasAncestor(title) {
		t.Error("element is not its own ancestor")
	}
	member := s.FindByName("member")[0]
	if title.HasAncestor(member) {
		t.Error("member is not an ancestor of title")
	}
}

func TestPath(t *testing.T) {
	s := buildLibrary(t)
	title := s.FindByName("title")[0]
	if got := title.Path(); got != "library/book/title" {
		t.Errorf("Path = %q", got)
	}
	if got := s.Root().Path(); got != "library" {
		t.Errorf("root Path = %q", got)
	}
}

func TestFindByPath(t *testing.T) {
	s := buildLibrary(t)
	if e := s.FindByPath("library/book/title"); e == nil || e.Name != "title" {
		t.Errorf("FindByPath failed: %v", e)
	}
	if e := s.FindByPath("library"); e != s.Root() {
		t.Error("FindByPath root failed")
	}
	for _, bad := range []string{"", "nosuch", "library/nosuch", "library/book/title/deeper"} {
		if e := s.FindByPath(bad); e != nil {
			t.Errorf("FindByPath(%q) = %v, want nil", bad, e)
		}
	}
}

func TestWalkPreorderAndPrune(t *testing.T) {
	s := buildLibrary(t)
	var order []string
	s.Walk(func(e *Element) bool { order = append(order, e.Name); return true })
	want := "library,book,title,author,member"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("pre-order = %s, want %s", got, want)
	}
	// Prune the book subtree: its children must not be visited.
	order = order[:0]
	s.Walk(func(e *Element) bool {
		order = append(order, e.Name)
		return e.Name != "book"
	})
	if got := strings.Join(order, ","); got != "library,book,member" {
		t.Errorf("pruned order = %s", got)
	}
}

func TestSizeHeight(t *testing.T) {
	s := buildLibrary(t)
	if s.Root().Size() != 5 {
		t.Errorf("Size = %d", s.Root().Size())
	}
	if s.Root().Height() != 2 {
		t.Errorf("Height = %d", s.Root().Height())
	}
	leaf := s.FindByName("member")[0]
	if leaf.Height() != 0 || leaf.Size() != 1 || !leaf.IsLeaf() {
		t.Error("leaf invariants violated")
	}
}

func TestFindByName(t *testing.T) {
	root := NewElement("r").Add(NewElement("x"), NewElement("y").Add(NewElement("x")))
	s, err := NewSchema("dup", root)
	if err != nil {
		t.Fatal(err)
	}
	xs := s.FindByName("x")
	if len(xs) != 2 {
		t.Fatalf("FindByName = %d matches, want 2", len(xs))
	}
	if xs[0].ID() > xs[1].ID() {
		t.Error("FindByName should return ID order")
	}
	if got := s.FindByName("zzz"); got != nil {
		t.Errorf("missing name = %v", got)
	}
}

func TestClone(t *testing.T) {
	s := buildLibrary(t)
	c := s.Clone()
	if c.String() != s.String() {
		t.Errorf("clone differs:\n%s\nvs\n%s", c, s)
	}
	// Mutating the clone must not affect the original.
	c.Root().Children[0].Name = "tome"
	if s.Root().Children[0].Name != "book" {
		t.Error("clone shares nodes with original")
	}
	if c.Len() != s.Len() {
		t.Errorf("clone Len = %d", c.Len())
	}
}

func TestNamesSorted(t *testing.T) {
	s := buildLibrary(t)
	names := s.Names()
	if len(names) != 5 {
		t.Fatalf("Names len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestLCAAndTreeDistance(t *testing.T) {
	s := buildLibrary(t)
	title := s.FindByName("title")[0]
	author := s.FindByName("author")[0]
	member := s.FindByName("member")[0]
	if l := LCA(title, author); l == nil || l.Name != "book" {
		t.Errorf("LCA(title,author) = %v", l)
	}
	if l := LCA(title, member); l == nil || l.Name != "library" {
		t.Errorf("LCA(title,member) = %v", l)
	}
	if l := LCA(title, title); l != title {
		t.Error("LCA of element with itself should be itself")
	}
	if d := TreeDistance(title, author); d != 2 {
		t.Errorf("dist(title,author) = %d, want 2", d)
	}
	if d := TreeDistance(title, member); d != 3 {
		t.Errorf("dist(title,member) = %d, want 3", d)
	}
	if d := TreeDistance(title, title); d != 0 {
		t.Errorf("dist self = %d", d)
	}
	// Different trees.
	other, _ := NewSchema("o", NewElement("solo"))
	if d := TreeDistance(title, other.Root()); d != -1 {
		t.Errorf("cross-tree distance = %d, want -1", d)
	}
}

func TestSchemaString(t *testing.T) {
	s := buildLibrary(t)
	out := s.String()
	for _, frag := range []string{"schema lib", "library", "title:string", "member"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String missing %q:\n%s", frag, out)
		}
	}
}
