package synth

import (
	"testing"

	"repro/internal/xmlschema"
)

func TestGenerateMultiPlantsEveryPersonal(t *testing.T) {
	personals := []*xmlschema.Schema{
		PersonalLibrary(), PersonalContact(), PersonalOrder(),
	}
	cfg := DefaultConfig(11)
	cfg.NumSchemas = 120
	sc, err := GenerateMulti(personals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Repo.Len() != cfg.NumSchemas {
		t.Fatalf("repo has %d schemas, want %d", sc.Repo.Len(), cfg.NumSchemas)
	}
	if len(sc.Truth) != len(personals) {
		t.Fatalf("truth for %d personals, want %d", len(sc.Truth), len(personals))
	}
	total := 0
	for i, ms := range sc.Truth {
		if len(ms) == 0 {
			t.Errorf("personal %d accrued no planted truth over %d schemas", i, cfg.NumSchemas)
		}
		total += len(ms)
		for _, m := range ms {
			if len(m.Targets) != personals[i].Len() {
				t.Fatalf("personal %d: mapping arity %d, want %d", i, len(m.Targets), personals[i].Len())
			}
			s := sc.Repo.Schema(m.Schema)
			if s == nil {
				t.Fatalf("personal %d: truth points at unknown schema %q", i, m.Schema)
			}
			for _, id := range m.Targets {
				if s.ByID(id) == nil {
					t.Fatalf("personal %d: truth target %d missing from %s", i, id, m.Schema)
				}
			}
		}
	}
	// Plant rate 0.5 over 120 schemas: the total number of planted
	// copies should be in the statistical neighborhood of 60.
	if total < 30 || total > 90 {
		t.Errorf("total planted copies = %d, far from NumSchemas·PlantRate = 60", total)
	}
}

func TestGenerateMultiDeterministic(t *testing.T) {
	build := func() *MultiScenario {
		cfg := DefaultConfig(5)
		cfg.NumSchemas = 40
		sc, err := GenerateMulti([]*xmlschema.Schema{PersonalLibrary(), PersonalContact()}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := build(), build()
	for i := range a.Truth {
		if len(a.Truth[i]) != len(b.Truth[i]) {
			t.Fatalf("personal %d: %d vs %d planted mappings across identical seeds",
				i, len(a.Truth[i]), len(b.Truth[i]))
		}
		for j := range a.Truth[i] {
			if !a.Truth[i][j].Equal(b.Truth[i][j]) {
				t.Fatalf("personal %d mapping %d differs across identical seeds", i, j)
			}
		}
	}
	if a.Repo.NumElements() != b.Repo.NumElements() {
		t.Fatalf("repositories differ across identical seeds: %d vs %d elements",
			a.Repo.NumElements(), b.Repo.NumElements())
	}
}

func TestGenerateMultiValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	if _, err := GenerateMulti(nil, cfg); err == nil {
		t.Error("no personals should error")
	}
	if _, err := GenerateMulti([]*xmlschema.Schema{nil}, cfg); err == nil {
		t.Error("nil personal should error")
	}
	bad := cfg
	bad.NumSchemas = 0
	if _, err := GenerateMulti([]*xmlschema.Schema{PersonalLibrary()}, bad); err == nil {
		t.Error("zero schemas should error")
	}
}

func TestGenerateTenants(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.NumSchemas = 25
	tenants, err := GenerateTenants(42, 3, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 3 {
		t.Fatalf("got %d tenants, want 3", len(tenants))
	}
	names := make(map[string]bool)
	for _, tn := range tenants {
		if names[tn.Name] {
			t.Fatalf("duplicate tenant name %q", tn.Name)
		}
		names[tn.Name] = true
		if got := len(tn.Personals()); got != 4 {
			t.Fatalf("%s has %d personals, want 4", tn.Name, got)
		}
		if tn.Repo().Len() != cfg.NumSchemas {
			t.Fatalf("%s repo has %d schemas, want %d", tn.Name, tn.Repo().Len(), cfg.NumSchemas)
		}
	}
	// Tenant repositories must differ (distinct derived seeds), and no
	// schema pointers may be shared across tenants.
	if tenants[0].Repo() == tenants[1].Repo() {
		t.Error("tenants share a repository pointer")
	}
	for i, a := range tenants {
		for j, b := range tenants {
			if i >= j {
				continue
			}
			for _, pa := range a.Personals() {
				for _, pb := range b.Personals() {
					if pa == pb {
						t.Fatalf("tenants %d and %d share personal schema pointer %q", i, j, pa.Name)
					}
				}
			}
		}
	}

	if _, err := GenerateTenants(1, 0, 1, cfg); err == nil {
		t.Error("zero tenants should error")
	}
	if _, err := GenerateTenants(1, 1, 0, cfg); err == nil {
		t.Error("zero personals per tenant should error")
	}
}
