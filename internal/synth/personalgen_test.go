package synth

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/xmlschema"
)

func TestRandomPersonalShape(t *testing.T) {
	for _, size := range []int{1, 3, 5, 8} {
		s, err := RandomPersonal(uint64(size)*7, size)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != size {
			t.Errorf("size %d: got %d elements", size, s.Len())
		}
		if h := s.Root().Height(); h > 3 {
			t.Errorf("size %d: height %d too deep for a personal schema", size, h)
		}
		// Distinct names.
		seen := map[string]bool{}
		for _, e := range s.Elements() {
			if seen[e.Name] {
				t.Errorf("size %d: duplicate name %q", size, e.Name)
			}
			seen[e.Name] = true
			if len(e.Children) > 3 {
				t.Errorf("size %d: branching %d", size, len(e.Children))
			}
		}
	}
}

func TestRandomPersonalValidation(t *testing.T) {
	if _, err := RandomPersonal(1, 0); err == nil {
		t.Error("size 0 should error")
	}
}

func TestRandomPersonalDeterministic(t *testing.T) {
	a, err := RandomPersonal(99, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPersonal(99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !xmlschema.Equal(a.Root(), b.Root()) {
		t.Error("same seed produced different schemas")
	}
	c, err := RandomPersonal(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if xmlschema.Equal(a.Root(), c.Root()) {
		t.Error("different seeds produced identical schemas")
	}
}

// TestRandomPersonalUsableInScenario: a generated personal schema
// drives the full generator + matcher pipeline.
func TestRandomPersonalUsableInScenario(t *testing.T) {
	personal, err := RandomPersonal(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(6)
	cfg.NumSchemas = 20
	sc, err := Generate(personal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(personal, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sc.Truth {
		if !prob.Valid(m) {
			t.Errorf("planted mapping %s invalid for random personal schema", m.Key())
		}
	}
}
