// Package synth generates synthetic schema matching scenarios with
// planted ground truth, in the manner of the synthetic-scenario tuning
// approach the paper discusses (Sayyadian et al., VLDB 2005): known
// correct mappings are transformed into a large number of different
// schemas. It replaces the two artifacts the original evaluation could
// not publish — the web-crawled XML schema corpus and the human
// relevance judgments H.
//
// A Scenario consists of a personal schema, a repository, and the set
// H of planted correct mappings. Repository schemas are random
// background trees; a configurable fraction additionally embeds a
// perturbed copy of the personal schema (synonym renames,
// abbreviations, typos, compounds, and edge stretching), and the
// element-by-element correspondence of each embedded copy is recorded
// as one correct mapping. The generator is fully deterministic from
// its seed.
package synth

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/matching"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// Config parameterizes Generate. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// Seed makes the scenario reproducible.
	Seed uint64
	// NumSchemas is the number of repository schemas to generate.
	NumSchemas int
	// PlantRate is the fraction of schemas receiving one perturbed copy
	// of the personal schema (0..1).
	PlantRate float64
	// MinSize and MaxSize bound the background tree size (elements)
	// before planting.
	MinSize, MaxSize int
	// MaxChildren bounds the branching factor of background trees.
	MaxChildren int
	// PerturbStrength in [0,1] scales every perturbation probability:
	// 0 plants verbatim copies, 1 perturbs aggressively.
	PerturbStrength float64
	// SizeDist selects how background tree sizes are drawn from
	// [MinSize, MaxSize]: "" or "uniform" draws uniformly, "zipf" draws
	// heavy-tailed (most schemas near MinSize, a long tail of large
	// ones — the shape real web-crawled schema corpora exhibit).
	SizeDist string
	// ZipfS is the zipf exponent when SizeDist is "zipf": the
	// probability of size MinSize+r is proportional to 1/(r+1)^ZipfS.
	// Values ≤ 0 select the default 1.2.
	ZipfS float64
	// Dict supplies synonym classes for renames. Nil selects
	// similarity.DefaultSchemaSynonyms.
	Dict *similarity.SynonymDict
}

// DefaultConfig returns the generator settings shared by the
// experiments: 200 schemas of 8–24 elements, half of them containing a
// planted copy, moderate perturbation.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		NumSchemas:      200,
		PlantRate:       0.5,
		MinSize:         8,
		MaxSize:         24,
		MaxChildren:     5,
		PerturbStrength: 0.6,
	}
}

// Scenario is a generated matching problem with known ground truth.
type Scenario struct {
	Personal *xmlschema.Schema
	Repo     *xmlschema.Repository
	// Truth holds the planted correct mappings — the set H a human
	// evaluator would have produced.
	Truth []matching.Mapping
	// Provenance[i] records how Truth[i]'s planted copy was perturbed,
	// enabling recall-by-perturbation analyses no real corpus allows.
	// It is nil for corpora read from disk.
	Provenance []PlantInfo
}

// PerturbKind labels the name perturbation applied to one planted
// element.
type PerturbKind int

// The perturbation kinds applied by the generator.
const (
	PerturbNone PerturbKind = iota
	PerturbSynonym
	PerturbAbbrev
	PerturbTypo
	PerturbCompound
)

// String returns the kind's label.
func (k PerturbKind) String() string {
	switch k {
	case PerturbNone:
		return "none"
	case PerturbSynonym:
		return "synonym"
	case PerturbAbbrev:
		return "abbrev"
	case PerturbTypo:
		return "typo"
	case PerturbCompound:
		return "compound"
	default:
		return fmt.Sprintf("PerturbKind(%d)", int(k))
	}
}

// PlantInfo is the provenance of one planted copy.
type PlantInfo struct {
	// Kinds[pid] is the perturbation applied to personal element pid.
	Kinds []PerturbKind
	// StretchedEdges counts personal edges stretched across an extra
	// repository level.
	StretchedEdges int
}

// H returns |H|, the number of correct mappings.
func (s *Scenario) H() int { return len(s.Truth) }

// TruthKeys returns the canonical keys of all correct mappings.
func (s *Scenario) TruthKeys() map[string]bool {
	out := make(map[string]bool, len(s.Truth))
	for _, m := range s.Truth {
		out[m.Key()] = true
	}
	return out
}

// vocabulary is the name pool for background elements: every word the
// synonym dictionary knows plus neutral filler nouns, so that
// background trees contain both near-miss distractors and unrelated
// noise.
func vocabulary(dict *similarity.SynonymDict) []string {
	words := dict.Words()
	filler := []string{
		"alpha", "beta", "gamma", "delta2", "epsilon", "zeta", "theta",
		"lambda", "sigma", "omega", "widget", "gadget", "sprocket",
		"flange", "bracket", "panel", "module2", "segment", "sector",
		"record", "entry", "field", "node", "branch", "leaf2", "root2",
		"container", "wrapper", "header", "footer", "body", "section",
		"detail", "meta", "config", "param", "option", "setting",
		"version", "revision", "snapshot", "archive", "bundle",
		"packet", "frame", "slot", "bucket", "zone", "area", "block",
	}
	return append(words, filler...)
}

// validate rejects configurations outside the generator's domain.
func (cfg Config) validate() error {
	if cfg.NumSchemas < 1 {
		return fmt.Errorf("synth: NumSchemas %d < 1", cfg.NumSchemas)
	}
	if cfg.PlantRate < 0 || cfg.PlantRate > 1 {
		return fmt.Errorf("synth: PlantRate %v out of [0,1]", cfg.PlantRate)
	}
	if cfg.MinSize < 1 || cfg.MaxSize < cfg.MinSize {
		return fmt.Errorf("synth: invalid size range [%d,%d]", cfg.MinSize, cfg.MaxSize)
	}
	if cfg.MaxChildren < 1 {
		return fmt.Errorf("synth: MaxChildren %d < 1", cfg.MaxChildren)
	}
	if cfg.PerturbStrength < 0 || cfg.PerturbStrength > 1 {
		return fmt.Errorf("synth: PerturbStrength %v out of [0,1]", cfg.PerturbStrength)
	}
	switch cfg.SizeDist {
	case "", "uniform", "zipf":
	default:
		return fmt.Errorf("synth: unknown SizeDist %q (want uniform or zipf)", cfg.SizeDist)
	}
	return nil
}

// sizeSampler returns a draw function over [MinSize, MaxSize] for the
// configured size distribution.
func (cfg Config) sizeSampler() func(rng *stats.RNG) int {
	if cfg.SizeDist != "zipf" {
		return func(rng *stats.RNG) int {
			return cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
		}
	}
	s := cfg.ZipfS
	if s <= 0 {
		s = 1.2
	}
	// Precompute the CDF of P(size = MinSize+r) ∝ 1/(r+1)^s and invert
	// it by binary search per draw.
	n := cfg.MaxSize - cfg.MinSize + 1
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		cdf[r] = total
	}
	return func(rng *stats.RNG) int {
		u := rng.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return cfg.MinSize + lo
	}
}

// defaultDict returns the synonym dictionary a nil Config.Dict selects.
func defaultDict() *similarity.SynonymDict { return similarity.DefaultSchemaSynonyms() }

// Generate builds a scenario for the given personal schema.
func Generate(personal *xmlschema.Schema, cfg Config) (*Scenario, error) {
	if personal == nil || personal.Len() == 0 {
		return nil, fmt.Errorf("synth: empty personal schema")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dict := cfg.Dict
	if dict == nil {
		dict = defaultDict()
	}
	rng := stats.NewRNG(cfg.Seed)
	vocab := vocabulary(dict)
	pert := &perturber{rng: rng, dict: dict, strength: cfg.PerturbStrength, vocab: vocab}

	repo := xmlschema.NewRepository()
	var truth []matching.Mapping
	var provenance []PlantInfo
	sizeOf := cfg.sizeSampler()
	for i := 0; i < cfg.NumSchemas; i++ {
		name := fmt.Sprintf("schema%04d", i)
		size := sizeOf(rng)
		root := randomTree(rng, vocab, size, cfg.MaxChildren)
		var planted map[int]*xmlschema.Element
		var info PlantInfo
		if rng.Bool(cfg.PlantRate) {
			planted, info = plantCopy(rng, pert, root, personal, vocab)
		}
		schema, err := xmlschema.NewSchema(name, root)
		if err != nil {
			return nil, fmt.Errorf("synth: generated invalid schema: %w", err)
		}
		if err := repo.Add(schema); err != nil {
			return nil, err
		}
		if planted != nil {
			targets := make([]int, personal.Len())
			for pid, el := range planted {
				targets[pid] = el.ID()
			}
			truth = append(truth, matching.Mapping{Schema: name, Targets: targets})
			provenance = append(provenance, info)
		}
	}
	return &Scenario{Personal: personal, Repo: repo, Truth: truth, Provenance: provenance}, nil
}

// randomTree builds a background tree with exactly size elements.
func randomTree(rng *stats.RNG, vocab []string, size, maxChildren int) *xmlschema.Element {
	root := xmlschema.NewElement(stats.Pick(rng, vocab))
	nodes := []*xmlschema.Element{root}
	for len(nodes) < size {
		parent := stats.Pick(rng, nodes)
		if len(parent.Children) >= maxChildren {
			continue
		}
		child := xmlschema.NewElement(stats.Pick(rng, vocab))
		parent.Add(child)
		nodes = append(nodes, child)
	}
	return root
}

// plantCopy embeds a perturbed copy of the personal schema under a
// random node of root and returns the personal-ID → planted-element
// correspondence. Each planted parent-child edge is stretched across
// an extra intermediate noise node with a probability scaled by the
// perturbation strength (at most one extra level, so planted mappings
// stay inside the default search space).
func plantCopy(rng *stats.RNG, pert *perturber, root *xmlschema.Element, personal *xmlschema.Schema, vocab []string) (map[int]*xmlschema.Element, PlantInfo) {
	// Candidate attachment points: any existing node.
	var nodes []*xmlschema.Element
	root.Walk(func(e *xmlschema.Element) bool { nodes = append(nodes, e); return true })
	attach := stats.Pick(rng, nodes)

	info := PlantInfo{Kinds: make([]PerturbKind, personal.Len())}
	planted := make(map[int]*xmlschema.Element, personal.Len())
	var embed func(pe *xmlschema.Element, under *xmlschema.Element)
	embed = func(pe *xmlschema.Element, under *xmlschema.Element) {
		newName, kind := pert.nameWithKind(pe.Name)
		copyEl := xmlschema.NewElement(newName)
		info.Kinds[pe.ID()] = kind
		parent := under
		if rng.Bool(0.3 * pert.strength) {
			// Stretch the edge: interpose a noise node.
			mid := xmlschema.NewElement(stats.Pick(rng, vocab))
			under.Add(mid)
			parent = mid
			info.StretchedEdges++
		}
		parent.Add(copyEl)
		planted[pe.ID()] = copyEl
		for _, c := range pe.Children {
			embed(c, copyEl)
		}
	}
	embed(personal.Root(), attach)
	return planted, info
}

// perturber rewrites element names.
type perturber struct {
	rng      *stats.RNG
	dict     *similarity.SynonymDict
	strength float64
	vocab    []string
}

// nameWithKind perturbs one element name and reports which
// perturbation was applied. With probability proportional to the
// strength it applies exactly one of: synonym swap, abbreviation,
// adjacent-character typo, or compounding with a filler word. Multiple
// weak perturbations would make planted copies unrecoverable by any
// matcher; one per name mirrors how real-world schemas actually vary.
func (p *perturber) nameWithKind(orig string) (string, PerturbKind) {
	if !p.rng.Bool(p.strength) {
		return orig, PerturbNone
	}
	switch p.rng.Intn(4) {
	case 0: // synonym swap of one token
		toks := similarity.Tokenize(orig)
		if len(toks) > 0 {
			i := p.rng.Intn(len(toks))
			class := p.dict.ClassOf(toks[i])
			if len(class) > 1 {
				toks[i] = class[p.rng.Intn(len(class))]
				return strings.Join(toks, "_"), PerturbSynonym
			}
		}
		return orig, PerturbNone
	case 1: // abbreviation: truncate to a prefix
		rs := []rune(orig)
		if len(rs) > 4 {
			keep := 3 + p.rng.Intn(2)
			return string(rs[:keep]), PerturbAbbrev
		}
		return orig, PerturbNone
	case 2: // typo: transpose two adjacent characters
		rs := []rune(orig)
		if len(rs) >= 3 {
			i := 1 + p.rng.Intn(len(rs)-2)
			rs[i], rs[i+1] = rs[i+1], rs[i]
			return string(rs), PerturbTypo
		}
		return orig, PerturbNone
	default: // compound with a short filler
		if p.rng.Bool(0.5) {
			return orig + "_" + stats.Pick(p.rng, p.vocab), PerturbCompound
		}
		return stats.Pick(p.rng, p.vocab) + "_" + orig, PerturbCompound
	}
}

// name is nameWithKind without the provenance.
func (p *perturber) name(orig string) string {
	n, _ := p.nameWithKind(orig)
	return n
}

// PersonalLibrary returns the "personal schema" of the running example
// used throughout the experiments: a small book search schema.
func PersonalLibrary() *xmlschema.Schema {
	s, err := xmlschema.NewSchema("personal-library",
		xmlschema.NewElement("book").Add(
			xmlschema.NewElement("title"),
			xmlschema.NewElement("author"),
			xmlschema.NewElement("price"),
		))
	if err != nil {
		panic("synth: invalid builtin schema: " + err.Error())
	}
	return s
}

// PersonalContact returns a second canonical personal schema (address
// book flavor).
func PersonalContact() *xmlschema.Schema {
	s, err := xmlschema.NewSchema("personal-contact",
		xmlschema.NewElement("contact").Add(
			xmlschema.NewElement("name"),
			xmlschema.NewElement("phone"),
			xmlschema.NewElement("address").Add(
				xmlschema.NewElement("city"),
			),
		))
	if err != nil {
		panic("synth: invalid builtin schema: " + err.Error())
	}
	return s
}

// PersonalOrder returns a third canonical personal schema (commerce
// flavor).
func PersonalOrder() *xmlschema.Schema {
	s, err := xmlschema.NewSchema("personal-order",
		xmlschema.NewElement("order").Add(
			xmlschema.NewElement("customer"),
			xmlschema.NewElement("item").Add(
				xmlschema.NewElement("price"),
			),
		))
	if err != nil {
		panic("synth: invalid builtin schema: " + err.Error())
	}
	return s
}
