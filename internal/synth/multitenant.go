package synth

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// Multi-tenant corpus generation: a serving layer hosts many named
// repositories at once, each queried by several personal schemas. The
// helpers here synthesize that world — one repository per tenant with
// planted copies of *several* personals, and whole fleets of tenants —
// so the load harness and the concurrency tests exercise realistic
// cross-tenant traffic with known ground truth, fully deterministic
// from one seed.

// MultiScenario is a matching corpus shared by several personal
// schemas: one repository in which each planted schema embeds a
// perturbed copy of one of the personals, with the correspondence
// recorded per personal.
type MultiScenario struct {
	Personals []*xmlschema.Schema
	Repo      *xmlschema.Repository
	// Truth[i] holds the planted correct mappings of Personals[i].
	Truth [][]matching.Mapping
}

// TruthKeys returns the canonical keys of the correct mappings of
// Personals[i].
func (s *MultiScenario) TruthKeys(i int) map[string]bool {
	out := make(map[string]bool, len(s.Truth[i]))
	for _, m := range s.Truth[i] {
		out[m.Key()] = true
	}
	return out
}

// GenerateMulti builds one repository shared by all the given personal
// schemas: background trees as in Generate, and each schema selected
// for planting (cfg.PlantRate) embeds a perturbed copy of one personal
// chosen uniformly, so every personal accrues ground truth across the
// corpus. Element names must be distinct within each personal (as the
// built-ins and RandomPersonal guarantee).
func GenerateMulti(personals []*xmlschema.Schema, cfg Config) (*MultiScenario, error) {
	if len(personals) == 0 {
		return nil, fmt.Errorf("synth: no personal schemas")
	}
	for i, p := range personals {
		if p == nil || p.Len() == 0 {
			return nil, fmt.Errorf("synth: empty personal schema %d", i)
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dict := cfg.Dict
	if dict == nil {
		dict = defaultDict()
	}
	rng := stats.NewRNG(cfg.Seed)
	vocab := vocabulary(dict)
	pert := &perturber{rng: rng, dict: dict, strength: cfg.PerturbStrength, vocab: vocab}

	repo := xmlschema.NewRepository()
	truth := make([][]matching.Mapping, len(personals))
	for i := 0; i < cfg.NumSchemas; i++ {
		name := fmt.Sprintf("schema%04d", i)
		size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
		root := randomTree(rng, vocab, size, cfg.MaxChildren)
		plantInto := -1
		var planted map[int]*xmlschema.Element
		if rng.Bool(cfg.PlantRate) {
			plantInto = rng.Intn(len(personals))
			planted, _ = plantCopy(rng, pert, root, personals[plantInto], vocab)
		}
		schema, err := xmlschema.NewSchema(name, root)
		if err != nil {
			return nil, fmt.Errorf("synth: generated invalid schema: %w", err)
		}
		if err := repo.Add(schema); err != nil {
			return nil, err
		}
		if planted != nil {
			p := personals[plantInto]
			targets := make([]int, p.Len())
			for pid, el := range planted {
				targets[pid] = el.ID()
			}
			truth[plantInto] = append(truth[plantInto], matching.Mapping{Schema: name, Targets: targets})
		}
	}
	return &MultiScenario{Personals: personals, Repo: repo, Truth: truth}, nil
}

// Tenant is one synthetic tenant of a multi-tenant serving corpus: a
// named repository plus the personal schemas its users query with, and
// the planted truth per personal. Tenants generated together share no
// schema pointers, so per-tenant services never alias sessions.
type Tenant struct {
	Name string
	// Scenario holds the tenant's repository, personals, and truth.
	Scenario *MultiScenario
}

// Personals returns the tenant's query schemas.
func (t *Tenant) Personals() []*xmlschema.Schema { return t.Scenario.Personals }

// Repo returns the tenant's repository.
func (t *Tenant) Repo() *xmlschema.Repository { return t.Scenario.Repo }

// GenerateTenants synthesizes a fleet of tenants for serving-layer
// experiments: each tenant gets personalsPerTenant query schemas (the
// three canonical built-ins first, then small random ones) and one
// repository generated from cfg with a tenant-specific seed derived
// from seed. The whole fleet is deterministic from seed.
func GenerateTenants(seed uint64, tenants, personalsPerTenant int, cfg Config) ([]*Tenant, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("synth: tenant count %d < 1", tenants)
	}
	if personalsPerTenant < 1 {
		return nil, fmt.Errorf("synth: personals per tenant %d < 1", personalsPerTenant)
	}
	out := make([]*Tenant, 0, tenants)
	for ti := 0; ti < tenants; ti++ {
		personals := make([]*xmlschema.Schema, 0, personalsPerTenant)
		builtins := []func() *xmlschema.Schema{PersonalLibrary, PersonalContact, PersonalOrder}
		for pi := 0; pi < personalsPerTenant; pi++ {
			if pi < len(builtins) {
				personals = append(personals, builtins[pi]())
				continue
			}
			// Distinct seeds per (tenant, personal) keep shapes diverse.
			p, err := RandomPersonal(seed+uint64(ti)*1009+uint64(pi)*31, 3+pi%3)
			if err != nil {
				return nil, err
			}
			personals = append(personals, p)
		}
		tcfg := cfg
		tcfg.Seed = seed + uint64(ti)*7919
		sc, err := GenerateMulti(personals, tcfg)
		if err != nil {
			return nil, fmt.Errorf("synth: tenant %d: %w", ti, err)
		}
		out = append(out, &Tenant{
			Name:     fmt.Sprintf("tenant%03d", ti),
			Scenario: sc,
		})
	}
	return out, nil
}
