package synth

import (
	"testing"

	"repro/internal/matching"
)

func domainConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.NumSchemas = 40
	return cfg
}

func TestDomainNames(t *testing.T) {
	names := DomainNames()
	if len(names) < 5 {
		t.Fatalf("only %d domains", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad domain name list: %v", names)
		}
		seen[n] = true
	}
}

func TestGenerateDomainValidation(t *testing.T) {
	p := PersonalLibrary()
	if _, err := GenerateDomain(nil, domainConfig(1), 0.5); err == nil {
		t.Error("nil personal should error")
	}
	if _, err := GenerateDomain(p, domainConfig(1), -0.1); err == nil {
		t.Error("negative templateFrac should error")
	}
	if _, err := GenerateDomain(p, domainConfig(1), 1.1); err == nil {
		t.Error("templateFrac > 1 should error")
	}
	bad := domainConfig(1)
	bad.NumSchemas = 0
	if _, err := GenerateDomain(p, bad, 0.5); err == nil {
		t.Error("zero schemas should error")
	}
	bad2 := domainConfig(1)
	bad2.PlantRate = 2
	if _, err := GenerateDomain(p, bad2, 0.5); err == nil {
		t.Error("invalid plant rate should error")
	}
}

func TestGenerateDomainDeterministic(t *testing.T) {
	p := PersonalLibrary()
	a, err := GenerateDomain(p, domainConfig(5), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDomain(p, domainConfig(5), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Repo.Len() != b.Repo.Len() || a.H() != b.H() {
		t.Fatal("same seed differs")
	}
	for _, s := range a.Repo.Schemas() {
		if b.Repo.Schema(s.Name).String() != s.String() {
			t.Fatalf("schema %s differs", s.Name)
		}
	}
}

func TestGenerateDomainTruthValid(t *testing.T) {
	p := PersonalLibrary()
	sc, err := GenerateDomain(p, domainConfig(9), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if sc.H() == 0 {
		t.Fatal("no planted truth")
	}
	prob, err := matching.NewProblem(p, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range sc.Truth {
		if !prob.Valid(m) {
			t.Errorf("truth %d (%s) outside search space", i, m.Key())
		}
	}
}

// TestDomainCorporaAreHarder: with structured near-miss distractors the
// exhaustive system's precision at a mid threshold should be lower on
// a template corpus than on a pure-random one — the point of the
// template generator.
func TestDomainCorporaAreHarder(t *testing.T) {
	p := PersonalLibrary()
	cfg := domainConfig(11)
	cfg.NumSchemas = 60

	random, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	templ, err := GenerateDomain(p, cfg, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	midPrecision := func(sc *Scenario) float64 {
		prob, err := matching.NewProblem(p, sc.Repo, matching.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		set, err := matching.Exhaustive{}.Match(prob, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		keys := sc.TruthKeys()
		correct := 0
		for _, a := range set.All() {
			if keys[a.Mapping.Key()] {
				correct++
			}
		}
		if set.Len() == 0 {
			return 1
		}
		return float64(correct) / float64(set.Len())
	}
	pr := midPrecision(random)
	pt := midPrecision(templ)
	if pt > pr+0.05 {
		t.Errorf("template corpus precision (%v) should not exceed random corpus (%v) by much — distractors too easy", pt, pr)
	}
	t.Logf("precision at δ=0.3: random corpus %.3f, template corpus %.3f", pr, pt)
}

func TestTemplateInstancesVary(t *testing.T) {
	p := PersonalLibrary()
	cfg := domainConfig(13)
	cfg.NumSchemas = 30
	cfg.PlantRate = 0 // templates only, no planted copies
	sc, err := GenerateDomain(p, cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// At perturbation 0.6, instances of the same template should not
	// all be identical.
	distinct := map[string]bool{}
	for _, s := range sc.Repo.Schemas() {
		distinct[s.String()] = true
	}
	if len(distinct) < sc.Repo.Len()/2 {
		t.Errorf("only %d distinct schemas of %d; perturbation ineffective", len(distinct), sc.Repo.Len())
	}
}
