package synth

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// Domain templates: realistic schema skeletons from the vocabularies
// the XML schema matching literature evaluates on (bibliography,
// commerce, HR, travel, music). The template-based generator populates
// the repository with *perturbed template instances* instead of purely
// random trees, so distractors are structured near-misses — much
// closer to what a web-crawled repository looks like than random
// noise, and a harder test for the matchers.

// template builders return fresh element trees (never shared).
var domainTemplates = []struct {
	name  string
	build func() *xmlschema.Element
}{
	{"bibliography", func() *xmlschema.Element {
		return xmlschema.NewElement("library").Add(
			xmlschema.NewElement("book").Add(
				xmlschema.NewElement("title"),
				xmlschema.NewElement("author").Add(
					xmlschema.NewElement("first"),
					xmlschema.NewElement("last"),
				),
				xmlschema.NewElement("year"),
				xmlschema.NewElement("publisher"),
				xmlschema.NewElement("isbn"),
				xmlschema.NewElement("price"),
			),
			xmlschema.NewElement("member").Add(
				xmlschema.NewElement("name"),
				xmlschema.NewElement("email"),
			),
		)
	}},
	{"commerce", func() *xmlschema.Element {
		return xmlschema.NewElement("store").Add(
			xmlschema.NewElement("order").Add(
				xmlschema.NewElement("id"),
				xmlschema.NewElement("date"),
				xmlschema.NewElement("customer").Add(
					xmlschema.NewElement("name"),
					xmlschema.NewElement("address").Add(
						xmlschema.NewElement("city"),
						xmlschema.NewElement("zip"),
						xmlschema.NewElement("country"),
					),
				),
				xmlschema.NewElement("item").Add(
					xmlschema.NewElement("product"),
					xmlschema.NewElement("quantity"),
					xmlschema.NewElement("price"),
				),
				xmlschema.NewElement("total"),
			),
		)
	}},
	{"hr", func() *xmlschema.Element {
		return xmlschema.NewElement("company").Add(
			xmlschema.NewElement("department").Add(
				xmlschema.NewElement("name"),
				xmlschema.NewElement("manager"),
				xmlschema.NewElement("employee").Add(
					xmlschema.NewElement("id"),
					xmlschema.NewElement("name"),
					xmlschema.NewElement("salary"),
					xmlschema.NewElement("birth"),
					xmlschema.NewElement("phone"),
				),
			),
		)
	}},
	{"travel", func() *xmlschema.Element {
		return xmlschema.NewElement("agency").Add(
			xmlschema.NewElement("trip").Add(
				xmlschema.NewElement("flight").Add(
					xmlschema.NewElement("from"),
					xmlschema.NewElement("to"),
					xmlschema.NewElement("date"),
					xmlschema.NewElement("price"),
				),
				xmlschema.NewElement("hotel").Add(
					xmlschema.NewElement("name"),
					xmlschema.NewElement("city"),
					xmlschema.NewElement("room").Add(
						xmlschema.NewElement("type"),
						xmlschema.NewElement("price"),
					),
				),
			),
			xmlschema.NewElement("customer").Add(
				xmlschema.NewElement("name"),
				xmlschema.NewElement("email"),
				xmlschema.NewElement("phone"),
			),
		)
	}},
	{"music", func() *xmlschema.Element {
		return xmlschema.NewElement("catalog").Add(
			xmlschema.NewElement("album").Add(
				xmlschema.NewElement("title"),
				xmlschema.NewElement("artist"),
				xmlschema.NewElement("year"),
				xmlschema.NewElement("track").Add(
					xmlschema.NewElement("title"),
					xmlschema.NewElement("duration"),
				),
				xmlschema.NewElement("genre"),
				xmlschema.NewElement("price"),
			),
		)
	}},
}

// DomainNames lists the built-in template domains.
func DomainNames() []string {
	out := make([]string, len(domainTemplates))
	for i, t := range domainTemplates {
		out[i] = t.name
	}
	return out
}

// GenerateDomain builds a scenario whose repository mixes perturbed
// instances of the built-in domain templates with purely random
// background trees. The cfg fields have the same meaning as for
// Generate; MinSize/MaxSize/MaxChildren apply only to the random
// background portion. templateFrac in [0,1] is the fraction of
// schemas instantiated from templates (the rest are random).
func GenerateDomain(personal *xmlschema.Schema, cfg Config, templateFrac float64) (*Scenario, error) {
	if personal == nil || personal.Len() == 0 {
		return nil, fmt.Errorf("synth: empty personal schema")
	}
	if templateFrac < 0 || templateFrac > 1 {
		return nil, fmt.Errorf("synth: templateFrac %v out of [0,1]", templateFrac)
	}
	if cfg.NumSchemas < 1 {
		return nil, fmt.Errorf("synth: NumSchemas %d < 1", cfg.NumSchemas)
	}
	if cfg.PlantRate < 0 || cfg.PlantRate > 1 {
		return nil, fmt.Errorf("synth: PlantRate %v out of [0,1]", cfg.PlantRate)
	}
	if cfg.MinSize < 1 || cfg.MaxSize < cfg.MinSize {
		return nil, fmt.Errorf("synth: invalid size range [%d,%d]", cfg.MinSize, cfg.MaxSize)
	}
	if cfg.MaxChildren < 1 {
		return nil, fmt.Errorf("synth: MaxChildren %d < 1", cfg.MaxChildren)
	}
	if cfg.PerturbStrength < 0 || cfg.PerturbStrength > 1 {
		return nil, fmt.Errorf("synth: PerturbStrength %v out of [0,1]", cfg.PerturbStrength)
	}
	dict := cfg.Dict
	if dict == nil {
		dict = similarity.DefaultSchemaSynonyms()
	}
	rng := stats.NewRNG(cfg.Seed)
	vocab := vocabulary(dict)
	pert := &perturber{rng: rng, dict: dict, strength: cfg.PerturbStrength, vocab: vocab}

	repo := xmlschema.NewRepository()
	var truth []matching.Mapping
	var provenance []PlantInfo
	for i := 0; i < cfg.NumSchemas; i++ {
		name := fmt.Sprintf("schema%04d", i)
		var root *xmlschema.Element
		if rng.Bool(templateFrac) {
			tmpl := domainTemplates[rng.Intn(len(domainTemplates))]
			root = perturbTree(rng, pert, tmpl.build(), vocab)
		} else {
			size := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
			root = randomTree(rng, vocab, size, cfg.MaxChildren)
		}
		var planted map[int]*xmlschema.Element
		var info PlantInfo
		if rng.Bool(cfg.PlantRate) {
			planted, info = plantCopy(rng, pert, root, personal, vocab)
		}
		schema, err := xmlschema.NewSchema(name, root)
		if err != nil {
			return nil, fmt.Errorf("synth: generated invalid schema: %w", err)
		}
		if err := repo.Add(schema); err != nil {
			return nil, err
		}
		if planted != nil {
			targets := make([]int, personal.Len())
			for pid, el := range planted {
				targets[pid] = el.ID()
			}
			truth = append(truth, matching.Mapping{Schema: name, Targets: targets})
			provenance = append(provenance, info)
		}
	}
	return &Scenario{Personal: personal, Repo: repo, Truth: truth, Provenance: provenance}, nil
}

// perturbTree renames every element of a template instance through the
// perturber and occasionally drops a leaf or grafts a noise child, so
// no two instances of the same template are identical.
func perturbTree(rng *stats.RNG, pert *perturber, root *xmlschema.Element, vocab []string) *xmlschema.Element {
	var rec func(e *xmlschema.Element) *xmlschema.Element
	rec = func(e *xmlschema.Element) *xmlschema.Element {
		ne := xmlschema.NewElement(pert.name(e.Name))
		for _, c := range e.Children {
			if c.IsLeaf() && rng.Bool(0.15*pert.strength) {
				continue // drop a leaf
			}
			ne.Add(rec(c))
		}
		if rng.Bool(0.2 * pert.strength) {
			ne.Add(xmlschema.NewElement(stats.Pick(rng, vocab)))
		}
		return ne
	}
	return rec(root)
}
