package synth

import (
	"fmt"

	"repro/internal/similarity"
	"repro/internal/stats"
	"repro/internal/xmlschema"
)

// RandomPersonal generates a small random personal schema of the given
// size, drawing names from the synonym dictionary's vocabulary so the
// corpus generator can rename planted copies meaningfully. Personal
// schemas are the queries of the matching problem; a random generator
// turns the three built-ins into an unbounded workload for
// multi-query (Workload) experiments.
//
// The tree shape is biased flat (branching ≤ 3, depth ≤ 3), matching
// the "small user-defined schema" of the paper's personal-schema
// querying scenario. Element names within one schema are distinct, so
// planted copies remain injective under light perturbation.
func RandomPersonal(seed uint64, size int) (*xmlschema.Schema, error) {
	if size < 1 {
		return nil, fmt.Errorf("synth: personal schema size %d < 1", size)
	}
	rng := stats.NewRNG(seed)
	dict := similarity.DefaultSchemaSynonyms()
	vocab := dict.Words()

	used := make(map[string]bool, size)
	pick := func() string {
		for tries := 0; tries < 100; tries++ {
			w := stats.Pick(rng, vocab)
			if !used[w] {
				used[w] = true
				return w
			}
		}
		// Vocabulary exhausted (only possible for very large sizes):
		// synthesize a unique name.
		w := fmt.Sprintf("elem%d", len(used))
		used[w] = true
		return w
	}

	root := xmlschema.NewElement(pick())
	nodes := []*xmlschema.Element{root}
	depth := map[*xmlschema.Element]int{root: 0}
	for len(nodes) < size {
		parent := stats.Pick(rng, nodes)
		if len(parent.Children) >= 3 || depth[parent] >= 2 {
			continue
		}
		child := xmlschema.NewElement(pick())
		parent.Add(child)
		depth[child] = depth[parent] + 1
		nodes = append(nodes, child)
	}
	return xmlschema.NewSchema(fmt.Sprintf("personal-rand-%d", seed), root)
}
