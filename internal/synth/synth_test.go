package synth

import (
	"testing"

	"repro/internal/matching"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.NumSchemas = 30
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	p := PersonalLibrary()
	bad := []Config{
		{NumSchemas: 0, MinSize: 1, MaxSize: 2, MaxChildren: 2},
		{NumSchemas: 1, MinSize: 0, MaxSize: 2, MaxChildren: 2},
		{NumSchemas: 1, MinSize: 3, MaxSize: 2, MaxChildren: 2},
		{NumSchemas: 1, MinSize: 1, MaxSize: 2, MaxChildren: 0},
		{NumSchemas: 1, MinSize: 1, MaxSize: 2, MaxChildren: 2, PlantRate: 1.5},
		{NumSchemas: 1, MinSize: 1, MaxSize: 2, MaxChildren: 2, PerturbStrength: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(p, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := Generate(nil, smallConfig(1)); err == nil {
		t.Error("nil personal schema should be rejected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := PersonalLibrary()
	a, err := Generate(p, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Repo.Len() != b.Repo.Len() || a.H() != b.H() {
		t.Fatalf("same seed, different scenario: %d/%d vs %d/%d",
			a.Repo.Len(), a.H(), b.Repo.Len(), b.H())
	}
	for _, s := range a.Repo.Schemas() {
		if b.Repo.Schema(s.Name).String() != s.String() {
			t.Fatalf("schema %s differs between same-seed runs", s.Name)
		}
	}
	for i := range a.Truth {
		if !a.Truth[i].Equal(b.Truth[i]) {
			t.Fatalf("truth %d differs between same-seed runs", i)
		}
	}
	c, err := Generate(p, smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	different := c.Repo.Len() != a.Repo.Len()
	for _, s := range a.Repo.Schemas() {
		if cs := c.Repo.Schema(s.Name); cs == nil || cs.String() != s.String() {
			different = true
		}
	}
	if !different {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	p := PersonalLibrary()
	cfg := smallConfig(3)
	sc, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Repo.Len() != cfg.NumSchemas {
		t.Errorf("repo has %d schemas, want %d", sc.Repo.Len(), cfg.NumSchemas)
	}
	if sc.H() == 0 {
		t.Fatal("no planted mappings at PlantRate 0.5")
	}
	if sc.H() > cfg.NumSchemas {
		t.Errorf("more truths (%d) than schemas (%d)", sc.H(), cfg.NumSchemas)
	}
	// Planted fraction should be near PlantRate.
	frac := float64(sc.H()) / float64(cfg.NumSchemas)
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("planted fraction = %v, want near 0.5", frac)
	}
	stats := sc.Repo.ComputeStats()
	// Planted copies enlarge schemas beyond MaxSize; allow headroom.
	if stats.MeanSize < float64(cfg.MinSize) || stats.MeanSize > float64(cfg.MaxSize+2*p.Len()) {
		t.Errorf("mean schema size = %v outside expected band", stats.MeanSize)
	}
}

func TestTruthMappingsAreInSearchSpace(t *testing.T) {
	personal := PersonalContact()
	sc, err := Generate(personal, smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(personal, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range sc.Truth {
		if !prob.Valid(m) {
			t.Errorf("truth %d (%s) outside search space", i, m.Key())
		}
		if _, err := prob.Score(m); err != nil {
			t.Errorf("truth %d unscorable: %v", i, err)
		}
	}
}

func TestTruthMappingsScoreWell(t *testing.T) {
	personal := PersonalLibrary()
	sc, err := Generate(personal, smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(personal, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Planted mappings are perturbed but should mostly remain among the
	// better-scored region of [0,1]; the median must be clearly below a
	// random mapping's typical cost (~0.7 name weight alone).
	var scores []float64
	for _, m := range sc.Truth {
		s, err := prob.Score(m)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, s)
	}
	below := 0
	for _, s := range scores {
		if s < 0.35 {
			below++
		}
	}
	if frac := float64(below) / float64(len(scores)); frac < 0.5 {
		t.Errorf("only %.0f%% of planted mappings score < 0.35; generator too aggressive", frac*100)
	}
}

func TestTruthKeysMatchTruth(t *testing.T) {
	sc, err := Generate(PersonalOrder(), smallConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	keys := sc.TruthKeys()
	if len(keys) != sc.H() {
		t.Errorf("TruthKeys len %d != H %d (duplicate truths?)", len(keys), sc.H())
	}
	for _, m := range sc.Truth {
		if !keys[m.Key()] {
			t.Errorf("truth %s missing from key set", m.Key())
		}
	}
}

func TestZeroPerturbationPlantsVerbatim(t *testing.T) {
	personal := PersonalLibrary()
	cfg := smallConfig(19)
	cfg.PerturbStrength = 0
	sc, err := Generate(personal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := matching.NewProblem(personal, sc.Repo, matching.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sc.Truth {
		s, err := prob.Score(m)
		if err != nil {
			t.Fatal(err)
		}
		if s > 1e-9 {
			t.Errorf("verbatim planted mapping %s scored %v, want 0", m.Key(), s)
		}
		// Names must be identical to the personal schema's.
		schema := sc.Repo.Schema(m.Schema)
		for pid, rid := range m.Targets {
			if schema.ByID(rid).Name != personal.ByID(pid).Name {
				t.Errorf("verbatim plant renamed %q to %q",
					personal.ByID(pid).Name, schema.ByID(rid).Name)
			}
		}
	}
}

func TestBuiltinPersonalSchemas(t *testing.T) {
	for _, s := range []struct {
		name   string
		schema interface{ Len() int }
	}{
		{"library", PersonalLibrary()},
		{"contact", PersonalContact()},
		{"order", PersonalOrder()},
	} {
		if s.schema.Len() < 3 {
			t.Errorf("builtin %s schema too small", s.name)
		}
	}
}
