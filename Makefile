# Tier-1 gate: formatting, vet, build, race-enabled tests. CI and
# pre-commit both run `make ci`.

GO ?= go

.PHONY: ci fmt vet build test bench bench-smoke race

ci: fmt vet build race

# gofmt enforcement: fail (listing the offenders) when any tracked Go
# file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine memoization benchmarks (memoized vs uncached scoring).
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchmem .

# Perf-harness smoke: run every engine and figure benchmark for a
# single iteration so harness rot (broken fixtures, diverged answer
# sets) is caught by the gate without paying full benchmark time.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkFig' -benchtime 1x .
