# Tier-1 gate: vet, build, race-enabled tests. CI and pre-commit both
# run `make ci`.

GO ?= go

.PHONY: ci vet build test bench race

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine memoization benchmarks (memoized vs uncached scoring).
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchmem .
