# Tier-1 gate: formatting, vet, build, race-enabled tests, shuffled
# tests, and a short parser fuzz smoke. CI and pre-commit both run
# `make ci`.

GO ?= go

.PHONY: ci fmt vet build test bench bench-smoke bench-record bench-check race shuffle fuzz-smoke load-smoke churn-smoke shard-prop cand-prop

ci: fmt vet build race shard-prop cand-prop fuzz-smoke bench-check

# gofmt enforcement: fail (listing the offenders) when any tracked Go
# file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detection and order-independence in one suite run: -shuffle=on
# randomizes test and subtest order so hidden inter-test state can't
# go stale undetected, without paying for a second full execution.
race:
	$(GO) test -race -shuffle=on ./...

# The shuffled suite without the race detector (faster local loop).
shuffle:
	$(GO) test -shuffle=on ./...

# Sharded-search parity anchor: the scatter-gather answer sets must be
# bit-identical to the unsharded matchers for every registry family,
# strategy, and shard count — run shuffled and race-enabled so the
# concurrent fan-out is exercised in both orders. (The full `race`
# target also runs it; this explicit shuffled pass keeps the property
# gated even if the suite run above is ever narrowed.)
shard-prop:
	$(GO) test -race -shuffle=on -run 'TestShardParityProperty|TestSearchParity' ./match ./internal/shard

# Candidate-pruning parity anchor: a service with WithCandidateIndex
# must return answer sets bit-identical to one without, for every
# registry matcher family, threshold, and shard count — including
# across live snapshot churn — and Apply-maintained indexes must equal
# from-scratch builds. Race-enabled and shuffled like shard-prop.
cand-prop:
	$(GO) test -race -shuffle=on \
		-run 'TestCandidateParityProperty|TestCandidateParityUnderChurn|TestFilteredProblemParity|TestApplyMatchesScratch|TestShardCandidate' \
		./match ./internal/matching ./internal/candindex ./internal/shard

# Short native-fuzzing smoke on the registry parser: five seconds is
# enough to catch grammar regressions (the full corpus lives in the
# fuzz cache of whoever runs longer sessions).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzParseSpec' -fuzztime 5s ./match

# Serving-layer smoke: the multi-tenant load driver on a tiny corpus,
# including the batched-vs-sequential throughput comparison.
load-smoke:
	$(GO) run ./cmd/matchload -tenants 2 -personals 2 -schemas 12 \
		-requests 40 -queue 64 -compare

# Live-update smoke under the race detector: schema churn interleaved
# with query traffic must complete with zero failed in-flight requests
# (the driver errors out otherwise) and no data races.
churn-smoke:
	$(GO) run -race ./cmd/matchload -tenants 2 -personals 2 -schemas 10 \
		-requests 40 -rate 150 -queue 64 -churn-rate 25

# Engine memoization benchmarks (memoized vs uncached scoring).
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchmem .

# Perf-harness smoke: run every engine and figure benchmark — plus the
# incremental-vs-rebuild index maintenance benchmark and the 1-vs-4
# shard scatter-gather comparison — for a single iteration so harness
# rot (broken fixtures, diverged answer sets) is caught by the gate
# without paying full benchmark time.
bench-smoke:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkEngine|BenchmarkFig|BenchmarkIndexIncrementalVsRebuild|BenchmarkShardedScatterGather|BenchmarkCandidateIndex' \
		-benchtime 1x .

# Record the perf trajectory: run the benchmark suite plus a short
# matchload replay and write the parsed results to the next free
# BENCH_<n>.json (see cmd/benchrecord).
bench-record:
	$(GO) run ./cmd/benchrecord

# Perf regression gate: compare the two most recent BENCH_<n>.json and
# fail on >50% ns/op regressions. Passes trivially with fewer than two
# recordings, so `ci` stays green on fresh checkouts.
bench-check:
	$(GO) run ./cmd/benchrecord -check
