# Tier-1 gate: formatting, vet, build, race-enabled tests, shuffled
# tests, and a short parser fuzz smoke. CI and pre-commit both run
# `make ci`.

GO ?= go

.PHONY: ci fmt vet build test bench bench-smoke bench-record bench-check race shuffle fuzz-smoke load-smoke churn-smoke serve-smoke store-smoke shard-prop cand-prop store-prop

ci: fmt vet build race shard-prop cand-prop store-prop fuzz-smoke serve-smoke store-smoke bench-check

# gofmt enforcement: fail (listing the offenders) when any tracked Go
# file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detection and order-independence in one suite run: -shuffle=on
# randomizes test and subtest order so hidden inter-test state can't
# go stale undetected, without paying for a second full execution.
race:
	$(GO) test -race -shuffle=on ./...

# The shuffled suite without the race detector (faster local loop).
shuffle:
	$(GO) test -shuffle=on ./...

# Sharded-search parity anchor: the scatter-gather answer sets must be
# bit-identical to the unsharded matchers for every registry family,
# strategy, and shard count — run shuffled and race-enabled so the
# concurrent fan-out is exercised in both orders. (The full `race`
# target also runs it; this explicit shuffled pass keeps the property
# gated even if the suite run above is ever narrowed.)
shard-prop:
	$(GO) test -race -shuffle=on -run 'TestShardParityProperty|TestSearchParity' ./match ./internal/shard

# Candidate-pruning parity anchor: a service with WithCandidateIndex
# must return answer sets bit-identical to one without, for every
# registry matcher family, threshold, and shard count — including
# across live snapshot churn — and Apply-maintained indexes must equal
# from-scratch builds. Race-enabled and shuffled like shard-prop.
cand-prop:
	$(GO) test -race -shuffle=on \
		-run 'TestCandidateParityProperty|TestCandidateParityUnderChurn|TestFilteredProblemParity|TestApplyMatchesScratch|TestShardCandidate' \
		./match ./internal/matching ./internal/candindex ./internal/shard

# Crash-safety anchor: the writer is killed at a random byte offset on
# every round, the store is reopened, and recovery must be bit-identical
# to the last committed state — run race-enabled and shuffled like the
# other property anchors, so it stays gated even if the suite run above
# is ever narrowed.
store-prop:
	$(GO) test -race -shuffle=on -run 'TestCrashRecoveryProperty' ./internal/store

# Short native-fuzzing smoke on the registry parser and the durable
# store loader: five seconds each is enough to catch grammar and
# framing regressions (the full corpus lives in the fuzz cache of
# whoever runs longer sessions).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzParseSpec' -fuzztime 5s ./match
	$(GO) test -run '^$$' -fuzz 'FuzzLoadTenant' -fuzztime 5s ./internal/store
	$(GO) test -run '^$$' -fuzz 'FuzzKernelParity' -fuzztime 5s ./internal/similarity

# Serving-layer smoke: the multi-tenant load driver on a tiny corpus,
# including the batched-vs-sequential throughput comparison.
load-smoke:
	$(GO) run ./cmd/matchload -tenants 2 -personals 2 -schemas 12 \
		-requests 40 -queue 64 -compare

# Live-update smoke under the race detector: schema churn interleaved
# with query traffic must complete with zero failed in-flight requests
# (the driver errors out otherwise) and no data races.
churn-smoke:
	$(GO) run -race ./cmd/matchload -tenants 2 -personals 2 -schemas 10 \
		-requests 40 -rate 150 -queue 64 -churn-rate 25

# Network-serving smoke: generate a corpus with schemagen, start
# matchd on a random port with tracing at 100% sampling, drive it over
# the wire with matchload -remote -trace (same seed and fleet shape,
# so tenant names and personals agree; the replay scrapes /metrics,
# validates every inline span trace against the request wall, and
# scrapes /debug/traces requiring well-formed span trees), then
# SIGTERM and require a clean drain — matchd exits non-zero if any
# admitted request was abandoned.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	cleanup() { [ -n "$$pid" ] && kill "$$pid" 2>/dev/null; rm -rf "$$tmp"; }; \
	trap cleanup EXIT; \
	$(GO) run ./cmd/schemagen -out "$$tmp/corpus" -tenants 2 -personals 2 -schemas 12 -seed 1 >/dev/null; \
	$(GO) build -o "$$tmp/matchd" ./cmd/matchd; \
	"$$tmp/matchd" -corpus "$$tmp/corpus" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" \
		-admin-token smoke-admin -trace-sample 1 -quiet & pid=$$!; \
	i=0; while [ ! -s "$$tmp/addr" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s "$$tmp/addr" ] || { echo "serve-smoke: matchd never wrote its address file"; exit 1; }; \
	$(GO) run ./cmd/matchload -tenants 2 -personals 2 -schemas 12 \
		-requests 40 -queue 64 -seed 1 -remote "$$(cat $$tmp/addr)" \
		-trace -remote-admin-token smoke-admin -quiet; \
	kill -TERM "$$pid"; wait "$$pid"; pid=""; \
	echo "serve-smoke: clean drain"

# Durable-store smoke, the full power-cycle: generate a corpus, boot
# matchd with -store-dir, churn every tenant over the wire (full-
# repository PUTs via matchload's remote churner), SIGTERM into the
# shutdown compaction, archive the store, reboot matchd from the store
# alone (no corpus), SIGTERM again, archive again — the two dumps must
# be bit-identical (the dump format is deterministic and carries no
# timestamps), and the dump must verify against the live store.
store-smoke:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	cleanup() { [ -n "$$pid" ] && kill "$$pid" 2>/dev/null; rm -rf "$$tmp"; }; \
	trap cleanup EXIT; \
	$(GO) run ./cmd/schemagen -out "$$tmp/corpus" -tenants 2 -personals 2 -schemas 12 -seed 1 >/dev/null; \
	$(GO) build -o "$$tmp/matchd" ./cmd/matchd; \
	$(GO) build -o "$$tmp/matcharchive" ./cmd/matcharchive; \
	"$$tmp/matchd" -corpus "$$tmp/corpus" -store-dir "$$tmp/store" -admin-token smoke-admin \
		-addr 127.0.0.1:0 -addr-file "$$tmp/addr1" -quiet & pid=$$!; \
	i=0; while [ ! -s "$$tmp/addr1" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s "$$tmp/addr1" ] || { echo "store-smoke: matchd never wrote its address file"; exit 1; }; \
	$(GO) run ./cmd/matchload -tenants 2 -personals 2 -schemas 12 \
		-requests 40 -rate 150 -queue 64 -seed 1 -churn-rate 25 \
		-remote "$$(cat $$tmp/addr1)" -remote-admin-token smoke-admin -quiet; \
	kill -TERM "$$pid"; wait "$$pid"; pid=""; \
	"$$tmp/matcharchive" archive -store "$$tmp/store" -o "$$tmp/dump1"; \
	"$$tmp/matcharchive" verify -i "$$tmp/dump1" -store "$$tmp/store" >/dev/null; \
	"$$tmp/matchd" -store-dir "$$tmp/store" \
		-addr 127.0.0.1:0 -addr-file "$$tmp/addr2" -quiet & pid=$$!; \
	i=0; while [ ! -s "$$tmp/addr2" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s "$$tmp/addr2" ] || { echo "store-smoke: matchd never recovered from the store"; exit 1; }; \
	kill -TERM "$$pid"; wait "$$pid"; pid=""; \
	"$$tmp/matcharchive" archive -store "$$tmp/store" -o "$$tmp/dump2"; \
	cmp "$$tmp/dump1" "$$tmp/dump2"; \
	echo "store-smoke: durable state bit-identical across the power cycle"

# Engine memoization benchmarks (memoized vs uncached scoring).
bench:
	$(GO) test -bench 'BenchmarkEngine' -benchmem .

# Perf-harness smoke: run every engine and figure benchmark — plus the
# incremental-vs-rebuild index maintenance benchmark and the 1-vs-4
# shard scatter-gather comparison — for a single iteration so harness
# rot (broken fixtures, diverged answer sets) is caught by the gate
# without paying full benchmark time.
bench-smoke:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkEngine|BenchmarkFig|BenchmarkIndexIncrementalVsRebuild|BenchmarkShardedScatterGather|BenchmarkCandidateIndex|BenchmarkKernel' \
		-benchtime 1x .

# Record the perf trajectory: run the benchmark suite plus a short
# matchload replay and write the parsed results to the next free
# BENCH_<n>.json (see cmd/benchrecord).
bench-record:
	$(GO) run ./cmd/benchrecord

# Perf regression gate: compare the two most recent BENCH_<n>.json and
# fail on >50% ns/op regressions. Passes trivially with fewer than two
# recordings, so `ci` stays green on fresh checkouts.
bench-check:
	$(GO) run ./cmd/benchrecord -check
