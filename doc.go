// Package repro is a from-scratch Go reproduction of
//
//	M. Smiljanić, M. van Keulen, W. Jonker.
//	"Effectiveness Bounds for Non-Exhaustive Schema Matching Systems."
//	ICDE 2006.
//
// The library computes guaranteed lower and upper bounds on the
// precision and recall of a non-exhaustive improvement of an
// exhaustive schema matching system, using only the original system's
// P/R curve and the answer-set sizes of both systems — no human
// relevance judgments. Every substrate the paper depends on (XML
// schema model, similarity measures, exhaustive and non-exhaustive
// matchers, clustering, synthetic corpora with planted truth, and the
// P/R evaluation machinery) is implemented here with the standard
// library only.
//
// See README.md for a package tour and how to regenerate the paper's
// figures. The root package holds the benchmark harness
// (bench_test.go): one benchmark per reproduced figure, matcher and
// bounds ablations, and the scoring-engine memoization benchmarks.
package repro
