// Package repro is a from-scratch Go reproduction of
//
//	M. Smiljanić, M. van Keulen, W. Jonker.
//	"Effectiveness Bounds for Non-Exhaustive Schema Matching Systems."
//	ICDE 2006.
//
// The library computes guaranteed lower and upper bounds on the
// precision and recall of a non-exhaustive improvement of an
// exhaustive schema matching system, using only the original system's
// P/R curve and the answer-set sizes of both systems — no human
// relevance judgments.
//
// The public entry point is the repro/match package: a long-lived
// Service built once over a schema repository, serving concurrent
// context-aware Match(ctx, Request) calls with per-request stats and
// guaranteed bounds attached to non-exhaustive results. Every
// substrate the paper depends on (XML schema model, similarity
// measures, the shared scoring engine, exhaustive and non-exhaustive
// matchers, clustering, synthetic corpora with planted truth, and the
// P/R evaluation machinery) is implemented under internal/ with the
// standard library only. For callers outside the process, cmd/matchd
// serves a multi-tenant match.Server over HTTP (internal/httpserve:
// JSON wire protocol, bearer auth, deadline propagation, Prometheus
// metrics, graceful drain).
//
// See README.md for a package tour and how to regenerate the paper's
// figures. The root package holds the benchmark harness
// (bench_test.go): one benchmark per reproduced figure, matcher and
// bounds ablations, and the scoring-engine memoization benchmarks;
// `make bench-smoke` runs each for one iteration as a rot check.
package repro
