// Benchmark harness: one benchmark per evaluation artifact of the
// paper (Figures 5, 6, 8, 9, 10, 11, 12, 13), plus ablation benchmarks
// for the design choices DESIGN.md calls out (matcher families, bounds
// algorithms, metric choices).
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bounds"
	"repro/internal/candindex"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/beam"
	"repro/internal/matchers/clustered"
	"repro/internal/matchers/topk"
	"repro/internal/matching"
	"repro/internal/shard"
	"repro/internal/similarity"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

// The shared experiment fixture: built once, reused by every figure
// benchmark so that each benchmark times only its own figure's work.
var (
	fixOnce sync.Once
	fix     struct {
		pl       *core.Pipeline
		runOne   *core.Run
		runTwo   *core.Run
		problem  *matching.Problem
		scenario *synth.Scenario
	}
)

func fixture(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		scfg := synth.DefaultConfig(1)
		scfg.NumSchemas = 100
		pl, err := core.NewPipeline(core.Options{
			Synth:      scfg,
			Thresholds: eval.Thresholds(0, 0.45, 15),
		})
		if err != nil {
			panic(err)
		}
		one, two, err := pl.StandardImprovements()
		if err != nil {
			panic(err)
		}
		runOne, err := pl.RunImprovement(one)
		if err != nil {
			panic(err)
		}
		runTwo, err := pl.RunImprovement(two)
		if err != nil {
			panic(err)
		}
		fix.pl = pl
		fix.runOne = runOne
		fix.runTwo = runTwo
		fix.problem = pl.Problem
		fix.scenario = pl.Scenario
	})
}

// ---------------------------------------------------------------------------
// Figure benchmarks
// ---------------------------------------------------------------------------

// BenchmarkFig5MeasuredCurve times measuring S1's P/R curve (Figure 5):
// threshold sweep over the exhaustive answer set against truth.
func BenchmarkFig5MeasuredCurve(b *testing.B) {
	fixture(b)
	truth := fix.pl.Truth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.MeasuredCurve(fix.pl.S1, truth, fix.pl.Thresholds)
	}
}

// BenchmarkFig6Interpolated times the 11-point interpolation (Figure 6).
func BenchmarkFig6Interpolated(b *testing.B) {
	fixture(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Interpolate(fix.pl.S1Curve)
	}
}

// BenchmarkFig8Incremental times the worked example's incremental
// bound computation (Figure 8).
func BenchmarkFig8Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9FixedRatio times bounds for the fixed-ratio-0.9
// hypothetical system (Figure 9).
func BenchmarkFig9FixedRatio(b *testing.B) {
	fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure9(fix.pl, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10RatioCurves times measuring the answer-size-ratio
// curves of both real improvements (Figure 10), including the matcher
// runs — the expensive part the paper's Section 3.3 describes.
func BenchmarkFig10RatioCurves(b *testing.B) {
	fixture(b)
	one, two, err := fix.pl.StandardImprovements()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := fix.pl.RunImprovement(one)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := fix.pl.RunImprovement(two)
		if err != nil {
			b.Fatal(err)
		}
		_ = core.Figure10(fix.pl, r1, r2)
	}
}

// BenchmarkFig11BothSystems times the full bounds computation for both
// improvements from precomputed runs (Figure 11).
func BenchmarkFig11BothSystems(b *testing.B) {
	fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Figure11(fix.pl, fix.runOne, fix.runTwo)
	}
}

// BenchmarkFig12InterpolatedInput times the §4.1 pipeline: interpolated
// curve + |H| guess → reconstructed curve → bounds (Figure 12).
func BenchmarkFig12InterpolatedInput(b *testing.B) {
	fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure12(fix.pl, 15000, fix.runOne, fix.runTwo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13SubIncrement times the sub-increment boundary sweep
// (Figure 13).
func BenchmarkFig13SubIncrement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure13(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks: matcher families (the efficiency side of the
// efficiency/effectiveness trade-off)
// ---------------------------------------------------------------------------

func BenchmarkMatcherExhaustive(b *testing.B) {
	fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (matching.Exhaustive{}).Match(fix.problem, 0.45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatcherBeam32(b *testing.B) {
	fixture(b)
	bm, err := beam.New(32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Match(fix.problem, 0.45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatcherTopkMargin(b *testing.B) {
	fixture(b)
	tk, err := topk.New(0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tk.Match(fix.problem, 0.45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatcherClustered(b *testing.B) {
	fixture(b)
	ix, err := clustered.BuildIndex(fix.scenario.Repo, clustered.IndexConfig{Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	cm, err := clustered.New(ix, ix.K()/6+1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.Match(fix.problem, 0.45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusteredIndexBuild(b *testing.B) {
	fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clustered.BuildIndex(fix.scenario.Repo, clustered.IndexConfig{Seed: 17}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexIncrementalVsRebuild compares the two ways of keeping
// the cluster index current after a single-schema repository update on
// the Figure-8/9 workload (the 100-schema fixture corpus): Index.Apply
// of the snapshot diff (incremental membership maintenance) versus a
// full BuildIndex of the updated repository. The incremental path must
// win for single-schema diffs — that is the premise of live tenant
// updates.
func BenchmarkIndexIncrementalVsRebuild(b *testing.B) {
	fixture(b)
	snap, err := xmlschema.NewSnapshot(fix.scenario.Repo)
	if err != nil {
		b.Fatal(err)
	}
	victim := snap.Schemas()[0]
	repl, err := snap.Schemas()[1].CloneAs(victim.Name)
	if err != nil {
		b.Fatal(err)
	}
	next, err := snap.Replace(repl)
	if err != nil {
		b.Fatal(err)
	}
	diff := xmlschema.DiffSnapshots(snap, next)
	// Forcing RebuildFraction < 0 pins Apply to the incremental path so
	// the two sub-benchmarks measure what their names claim.
	ix, err := clustered.BuildIndex(snap.Repository(), clustered.IndexConfig{Seed: 17, RebuildFraction: -1})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Apply(next.Repository(), diff); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clustered.BuildIndex(next.Repository(), clustered.IndexConfig{Seed: 17}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedScatterGather compares single-shard and multi-shard
// scatter-gather exhaustive search on the Figure-8/9 workload (the
// 100-schema fixture corpus). The shards partition the repository
// schemas, so the merged answer set is bit-identical to the unsharded
// exhaustive system (verified each iteration against the fixture's S1);
// on ≥ 2 CPUs the 4-shard scatter must beat the 1-shard wall-clock —
// the premise of the sharded serving path. The per-shard problems reuse
// the fixture problem's cost tables via Rebase, so the timing isolates
// the scatter itself.
func BenchmarkShardedScatterGather(b *testing.B) {
	fixture(b)
	snap, err := xmlschema.NewSnapshot(fix.scenario.Repo)
	if err != nil {
		b.Fatal(err)
	}
	delta := fix.pl.MaxDelta()
	exhaustive := func(*shard.Shard) (matching.Matcher, error) { return matching.Exhaustive{}, nil }
	for _, k := range []int{1, 4} {
		sr, err := shard.NewSearcher(snap, shard.Config{K: k})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set, _, err := sr.Search(context.Background(), fix.problem, delta, exhaustive)
				if err != nil {
					b.Fatal(err)
				}
				if set.Len() != fix.pl.S1.Len() {
					b.Fatalf("answer set diverged: %d answers, want %d", set.Len(), fix.pl.S1.Len())
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Engine benchmarks: memoized vs uncached scoring on the Figure-8/9
// workload (the 100-schema scenario every figure benchmark runs on).
// Each benchmark builds the problem's cost tables through its scorer
// and runs the parallel exhaustive matcher at δ = 0.45, then checks the
// answer set is identical to the fixture's exhaustive baseline — the
// speedup must come purely from memoization, never from changed scores.
// ---------------------------------------------------------------------------

// benchEngineBuildAndMatch is the shared body: problem build + S1 match
// through the given scorer, with output verification against fix.pl.S1.
func benchEngineBuildAndMatch(b *testing.B, scorer func() engine.Scorer) {
	fixture(b)
	delta := fix.pl.MaxDelta()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := matching.DefaultConfig()
		cfg.Scorer = scorer()
		prob, err := matching.NewProblem(fix.scenario.Personal, fix.scenario.Repo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		set, err := matching.ParallelExhaustive{}.Match(prob, delta)
		if err != nil {
			b.Fatal(err)
		}
		if set.Len() != fix.pl.S1.Len() {
			b.Fatalf("answer set diverged: %d answers, want %d", set.Len(), fix.pl.S1.Len())
		}
		if err := set.SubsetOf(fix.pl.S1); err != nil {
			b.Fatalf("answer set diverged: %v", err)
		}
	}
}

// BenchmarkEngineUncached is the baseline: every problem build pays the
// full string-metric cost for every (personal, repository) name pair.
func BenchmarkEngineUncached(b *testing.B) {
	benchEngineBuildAndMatch(b, func() engine.Scorer { return engine.NewUncached(nil) })
}

// BenchmarkEngineMemoizedCold starts from an empty memo every
// iteration: the speedup over BenchmarkEngineUncached is what repeated
// names within one corpus are worth.
func BenchmarkEngineMemoizedCold(b *testing.B) {
	benchEngineBuildAndMatch(b, func() engine.Scorer { return engine.New(nil) })
}

// BenchmarkEngineMemoizedShared reuses one memo across iterations —
// the steady state of a pipeline that shares its scorer across deltas,
// improvements, and repeated problem builds.
func BenchmarkEngineMemoizedShared(b *testing.B) {
	shared := engine.New(nil)
	benchEngineBuildAndMatch(b, func() engine.Scorer { return shared })
}

// ---------------------------------------------------------------------------
// Ablation benchmarks: bounds algorithms
// ---------------------------------------------------------------------------

func boundsInput(b *testing.B) bounds.Input {
	b.Helper()
	fixture(b)
	return bounds.Input{
		S1:        fix.pl.S1Curve,
		Sizes2:    fix.runTwo.Sizes2,
		HOverride: fix.pl.Truth.Size(),
	}
}

func BenchmarkBoundsNaive(b *testing.B) {
	in := boundsInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.Naive(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundsIncremental(b *testing.B) {
	in := boundsInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.Incremental(in); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks: name metrics (the dominant cost of matching)
// ---------------------------------------------------------------------------

func benchMetric(b *testing.B, m similarity.Metric) {
	pairs := [][2]string{
		{"customerName", "client_name"},
		{"zipcode", "postal_code"},
		{"title", "booktitle"},
		{"unrelated", "completely_different"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		_ = m.Similarity(p[0], p[1])
	}
}

func BenchmarkMetricEdit(b *testing.B)        { benchMetric(b, similarity.EditSim{}) }
func BenchmarkMetricJaroWinkler(b *testing.B) { benchMetric(b, similarity.JaroWinklerSim{}) }
func BenchmarkMetricDefault(b *testing.B)     { benchMetric(b, similarity.DefaultNameMetric()) }
func BenchmarkMetricDefaultCached(b *testing.B) {
	benchMetric(b, similarity.NewCached(similarity.DefaultNameMetric()))
}

// kernelBenchShapes are the pair shapes the kernel perf trail pins:
// short ASCII (the common case, single-word Myers), long Unicode
// (multi-word blocks on the rune-mapped path), and token-heavy names
// (the synonym alignment loop).
var kernelBenchShapes = []struct {
	name string
	a, b string
}{
	{"ShortASCII", "customerName", "client_name"},
	{"LongUnicode", strings.Repeat("Ωμέγα", 30) + "ß", strings.Repeat("schemaÉlement", 12)},
	{"TokenHeavy", "customer full name address line", "client_name-address.line_two"},
}

// BenchmarkKernel times the compiled default-metric kernel on warm
// interned profiles (allocs/op must read 0) against the reference
// Metric.Similarity on raw strings — the per-pair speedup the batched
// row scorers multiply out.
func BenchmarkKernel(b *testing.B) {
	for _, sh := range kernelBenchShapes {
		b.Run(sh.name, func(b *testing.B) {
			sess := similarity.NewKernel(nil).Session()
			defer sess.Close()
			sess.Similarity(sh.a, sh.b) // warm: intern profiles, grow scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sess.Similarity(sh.a, sh.b)
			}
		})
		b.Run(sh.name+"Reference", func(b *testing.B) {
			m := similarity.DefaultNameMetric()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Similarity(sh.a, sh.b)
			}
		})
	}
}

// BenchmarkScenarioGeneration times corpus generation (the substrate
// substituted for the paper's web crawl).
func BenchmarkScenarioGeneration(b *testing.B) {
	cfg := synth.DefaultConfig(1)
	cfg.NumSchemas = 100
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.PersonalLibrary(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Candidate-index benchmarks: cost-table build with and without the
// inverted q-gram candidate filter at a tight threshold, on a corpus an
// order of magnitude larger than the figure fixture. The filtered build
// must return the bit-identical answer set — the speedup comes purely
// from provably safe pruning. Run on two corpus shapes: uniform schema
// sizes and a heavy-tailed (zipf) size distribution.
// ---------------------------------------------------------------------------

// candBenchDelta is the request threshold and the index's pruning
// horizon: tight enough that most of the corpus is prunable.
const candBenchDelta = 0.15

type candBenchShape struct {
	scenario *synth.Scenario
	index    *candindex.Index
	answers  *matching.AnswerSet // unfiltered exhaustive baseline at candBenchDelta
	shared   *engine.Memo        // warm memo: the service's steady state
}

var (
	candBenchOnce sync.Once
	candBenchFix  map[string]*candBenchShape
)

// candBenchFixture generates the two 1200-schema corpora, builds one
// candidate index per corpus, and records the unfiltered exhaustive
// answer set each filtered run is checked against.
func candBenchFixture(b *testing.B) map[string]*candBenchShape {
	b.Helper()
	candBenchOnce.Do(func() {
		candBenchFix = make(map[string]*candBenchShape)
		for _, shape := range []string{"uniform", "zipf"} {
			cfg := synth.DefaultConfig(17)
			cfg.NumSchemas = 1200
			cfg.PlantRate = 0.05
			cfg.PerturbStrength = 0.8
			cfg.SizeDist = shape
			sc, err := synth.Generate(synth.PersonalLibrary(), cfg)
			if err != nil {
				panic(err)
			}
			scorer := engine.New(nil)
			ix, err := candindex.Build(sc.Repo, candindex.Config{Metric: scorer.Metric()})
			if err != nil {
				panic(err)
			}
			shared := engine.New(nil)
			mcfg := matching.DefaultConfig()
			mcfg.Scorer = shared // the baseline build warms the memo
			prob, err := matching.NewProblem(sc.Personal, sc.Repo, mcfg)
			if err != nil {
				panic(err)
			}
			set, err := matching.ParallelExhaustive{}.Match(prob, candBenchDelta)
			if err != nil {
				panic(err)
			}
			candBenchFix[shape] = &candBenchShape{scenario: sc, index: ix, answers: set, shared: shared}
		}
	})
	return candBenchFix
}

// candBenchProblem builds one problem over a shape's corpus — filtered
// through its candidate index or unfiltered — through the given scorer.
func candBenchProblem(b *testing.B, sh *candBenchShape, scorer engine.Scorer, filtered bool) *matching.Problem {
	cfg := matching.DefaultConfig()
	cfg.Scorer = scorer
	if filtered {
		cfg.Candidates = sh.index
		cfg.CandidateDelta = candBenchDelta
	}
	prob, err := matching.NewProblem(sh.scenario.Personal, sh.scenario.Repo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// candBenchVerify asserts a problem reproduces the shape's unfiltered
// exhaustive answer set at candBenchDelta, scores included.
func candBenchVerify(b *testing.B, sh *candBenchShape, prob *matching.Problem) {
	b.Helper()
	set, err := matching.ParallelExhaustive{}.Match(prob, candBenchDelta)
	if err != nil {
		b.Fatal(err)
	}
	if set.Len() != sh.answers.Len() {
		b.Fatalf("answer set diverged: %d answers, want %d", set.Len(), sh.answers.Len())
	}
	if err := set.SubsetOf(sh.answers); err != nil {
		b.Fatalf("answer set diverged: %v", err)
	}
}

// BenchmarkCandidateIndex times the cost-table build (problem
// construction) on the 1200-schema corpus, filtered vs unfiltered, on
// both corpus shapes. "cold" pays a fresh memo's metric evaluations
// every iteration; the unsuffixed variants share one warm memo — the
// service's steady state, where the table fill itself is the cost and
// the candidate filter's pruning shows its full effect. Every filtered
// sub-benchmark verifies answer-set parity before timing and reports
// the fraction of pairs pruned.
func BenchmarkCandidateIndex(b *testing.B) {
	shapes := candBenchFixture(b)
	for _, shape := range []string{"uniform", "zipf"} {
		sh := shapes[shape]
		scorers := []struct {
			name string
			mk   func() engine.Scorer
		}{
			{"cold", func() engine.Scorer { return engine.New(nil) }},
			{"", func() engine.Scorer { return sh.shared }},
		}
		for _, sc := range scorers {
			suffix := ""
			if sc.name != "" {
				suffix = "-" + sc.name
			}
			b.Run(shape+"/unfiltered"+suffix, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					prob := candBenchProblem(b, sh, sc.mk(), false)
					if i == 0 {
						b.StopTimer()
						candBenchVerify(b, sh, prob)
						b.StartTimer()
					}
				}
			})
			b.Run(shape+"/filtered"+suffix, func(b *testing.B) {
				var cs matching.CandidateStats
				for i := 0; i < b.N; i++ {
					prob := candBenchProblem(b, sh, sc.mk(), true)
					var ok bool
					if cs, ok = prob.CandidateStats(); !ok {
						b.Fatal("filtered problem reports no candidate stats")
					}
					if i == 0 {
						b.StopTimer()
						candBenchVerify(b, sh, prob)
						b.StartTimer()
					}
				}
				b.ReportMetric(cs.Ratio(), "pruned/pairs")
				b.ReportMetric(float64(cs.SkippedSchemas), "schemas-skipped")
			})
		}
	}
}

// BenchmarkCandidateIndexApply times one incremental index maintenance
// step — a single-schema replace diff — against rebuilding the index
// from scratch over the changed repository.
func BenchmarkCandidateIndexApply(b *testing.B) {
	sh := candBenchFixture(b)["uniform"]
	snap, err := xmlschema.NewSnapshot(sh.scenario.Repo)
	if err != nil {
		b.Fatal(err)
	}
	victim := snap.Schemas()[0]
	repl, err := snap.Schemas()[1].CloneAs(victim.Name)
	if err != nil {
		b.Fatal(err)
	}
	next, err := snap.Replace(repl)
	if err != nil {
		b.Fatal(err)
	}
	diff := xmlschema.DiffSnapshots(snap, next)
	b.Run("apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sh.index.Apply(next.Repository(), diff); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := candindex.Build(next.Repository(), candindex.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
