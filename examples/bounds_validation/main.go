// Bounds validation: machine-check the paper's guarantee at scale.
//
// The paper's technique is "an analytical and exact result, not an
// estimate" — if experimental validation were possible, the technique
// would not be needed. Our synthetic corpora make the impossible
// validation possible: this example runs many scenarios (different
// seeds, personal schemas, and improvements), computes bounds blind,
// then reveals the planted truth and counts containment violations.
// The expected number is zero, at every threshold, in every scenario.
//
// It also quantifies two of the paper's qualitative claims:
//   - the incremental bounds are tighter than the naive ones, and
//   - the random-system baseline is a much tighter practical lower
//     bound than the worst case.
//
// Run with: go run ./examples/bounds_validation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

func main() {
	personals := []struct {
		name   string
		schema *xmlschema.Schema
	}{
		{"library", synth.PersonalLibrary()},
		{"contact", synth.PersonalContact()},
		{"order", synth.PersonalOrder()},
	}
	checked, violations := 0, 0
	naiveGapSum, incGapSum, randGapSum := 0.0, 0.0, 0.0
	gapPoints := 0

	for _, p := range personals {
		for seed := uint64(1); seed <= 3; seed++ {
			scfg := synth.DefaultConfig(seed)
			scfg.NumSchemas = 80
			pl, err := core.NewPipeline(core.Options{
				Personal:   p.schema,
				Synth:      scfg,
				Thresholds: eval.Thresholds(0, 0.45, 9),
			})
			if err != nil {
				log.Fatal(err)
			}
			one, two, err := pl.StandardImprovements()
			if err != nil {
				log.Fatal(err)
			}
			r1, err := pl.RunImprovement(one)
			if err != nil {
				log.Fatal(err)
			}
			r2, err := pl.RunImprovement(two)
			if err != nil {
				log.Fatal(err)
			}
			for _, run := range []*core.Run{r1, r2} {
				checked++
				if err := run.ValidateBounds(); err != nil {
					violations++
					fmt.Printf("VIOLATION [%s seed %d]: %v\n", p.name, seed, err)
					continue
				}
				// Tightness: mean width of the precision interval.
				for i := range run.Bounds {
					naiveGapSum += run.NaiveBounds[i].BestP - run.NaiveBounds[i].WorstP
					incGapSum += run.Bounds[i].BestP - run.Bounds[i].WorstP
					randGapSum += run.Bounds[i].BestP - run.Bounds[i].RandomP
					gapPoints++
				}
			}
		}
	}
	fmt.Printf("scenarios checked: %d (3 personal schemas × 3 seeds × 2 improvements)\n", checked)
	fmt.Printf("bound violations:  %d (expected 0 — the bounds are a theorem)\n\n", violations)
	fmt.Printf("mean precision interval width across %d curve points:\n", gapPoints)
	fmt.Printf("  naive   [worst, best]:  %.4f\n", naiveGapSum/float64(gapPoints))
	fmt.Printf("  increm. [worst, best]:  %.4f  (never wider than naive)\n", incGapSum/float64(gapPoints))
	fmt.Printf("  increm. [random, best]: %.4f  (the paper's practical lower bound)\n", randGapSum/float64(gapPoints))
}
