// Workload: aggregated guarantees over many personal schemas.
//
// A single matching problem is an anecdote; a validation campaign
// matches a workload of personal schemas and reports micro-averaged
// effectiveness. The bounds arithmetic is additive in count space, so
// the guarantee survives aggregation: this example builds a workload
// of random personal schemas (plus the three built-ins), runs a
// cluster-restricted improvement on each problem, aggregates the
// counts, and reports workload-level bounds — then verifies them
// against the planted truth and compares the exact interval with a
// Monte Carlo estimate of the random-retention null model.
//
// Run with: go run ./examples/workload
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/xmlschema"
)

func main() {
	// A workload: three canonical schemas plus three random ones.
	personals := []*xmlschema.Schema{
		synth.PersonalLibrary(),
		synth.PersonalContact(),
		synth.PersonalOrder(),
	}
	for seed := uint64(1); seed <= 3; seed++ {
		p, err := synth.RandomPersonal(seed, 4)
		if err != nil {
			log.Fatal(err)
		}
		personals = append(personals, p)
	}
	// Every problem of the workload shares one scoring engine: element
	// names repeat heavily across the generated corpora, so later
	// pipelines build their cost tables mostly from cache hits.
	scorer := engine.New(nil)
	var opts []core.Options
	for i, p := range personals {
		scfg := synth.DefaultConfig(uint64(10 + i))
		scfg.NumSchemas = 60
		opts = append(opts, core.Options{
			Personal:   p,
			Synth:      scfg,
			Thresholds: eval.Thresholds(0, 0.45, 9),
			Scorer:     scorer,
			// Pin the cluster-index seed to 7 so the printed table
			// matches the quickstart and clustering_tradeoff examples,
			// which cluster the same corpora. A zero Index selects the
			// paper-figure default (Seed 17, see core.Options.Index) — a
			// valid but different clustering, hence different numbers.
			Index: clustered.IndexConfig{Seed: 7},
		})
	}
	w, err := core.NewWorkload(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d matching problems, Σ|H| = %d\n\n", len(w.Pipelines), w.TotalH())

	// Each problem's improvement comes from its pipeline's match
	// service: the "clustered" registry spec resolves against the
	// service's lazily built index (default selection K/6+1, Seed 7 as
	// pinned above), so no matcher is constructed by hand anywhere in
	// the workload.
	run, err := w.Run(func(pl *core.Pipeline) (matching.Matcher, error) {
		return pl.Service().Matcher("clustered")
	})
	if err != nil {
		log.Fatal(err)
	}

	mc, err := bounds.Simulate(bounds.Input{
		S1:        run.S1Curve,
		Sizes2:    run.Sizes2,
		HOverride: w.TotalH(),
	}, 2000, stats.NewRNG(99))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("aggregated (micro-averaged) guarantees for", run.Name)
	fmt.Println("delta   worstP  mc05    mcMean  mc95    bestP   trueP")
	for i, b := range run.Bounds {
		fmt.Printf("%.3f   %.4f  %.4f  %.4f  %.4f  %.4f  %.4f\n",
			b.Delta, b.WorstP, mc[i].P05, mc[i].MeanP, mc[i].P95, b.BestP,
			run.TrueCurve[i].Precision)
	}
	if err := run.ValidateBounds(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworkload-level truth lies inside the aggregated bounds at every threshold;")
	fmt.Println("the Monte Carlo envelope (5th–95th pct of random retention) sits strictly inside them")
}
