// Pooling comparison: why bounds instead of pooled judgments?
//
// Section 1 of the paper surveys the text-retrieval answer to costly
// evaluation: TREC-style pooling — judge only the union of every
// participating system's top-100. Pooling works when the pool covers
// (nearly) all correct answers; for a NEW system whose correct answers
// fall outside the old pool, pooled evaluation silently undercounts.
//
// This example builds the pool from the exhaustive system and one
// improvement, then evaluates a second improvement two ways:
//
//  1. against pooled judgments (what a pooling-based benchmark would
//     report), and
//  2. with the paper's bounds (no judgments at all).
//
// The pooled numbers are point estimates that may drift below truth;
// the bounds are intervals that always contain it.
//
// Run with: go run ./examples/pooling_comparison
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/beam"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/synth"
)

func main() {
	scenario, err := synth.Generate(synth.PersonalLibrary(), synth.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	scorer := engine.New(nil)
	mcfg := matching.DefaultConfig()
	mcfg.Scorer = scorer
	problem, err := matching.NewProblem(scenario.Personal, scenario.Repo, mcfg)
	if err != nil {
		log.Fatal(err)
	}
	thresholds := eval.Thresholds(0, 0.45, 9)
	maxDelta := thresholds[len(thresholds)-1]
	truth := eval.NewTruth(scenario.TruthKeys())

	s1, err := matching.Exhaustive{}.Match(problem, maxDelta)
	if err != nil {
		log.Fatal(err)
	}
	bm, err := beam.New(8)
	if err != nil {
		log.Fatal(err)
	}
	pooledSys, err := bm.Match(problem, maxDelta)
	if err != nil {
		log.Fatal(err)
	}

	// The pool: top-50 of the systems that existed when the benchmark
	// was built (S1 and the beam system).
	pool := eval.Pool([]*matching.AnswerSet{s1, pooledSys}, 50)
	pooledTruth := eval.PooledTruth(truth, pool)
	fmt.Printf("full truth |H| = %d; pooled judgments cover %d of them\n\n",
		truth.Size(), pooledTruth.Size())

	// The NEW system being evaluated: cluster-restricted search, which
	// retrieves correct answers the pool never saw.
	index, err := clustered.BuildIndex(scenario.Repo, clustered.IndexConfig{Seed: 3, Scorer: scorer})
	if err != nil {
		log.Fatal(err)
	}
	newSys, err := clustered.New(index, index.K()/5+1, scorer)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := newSys.Match(problem, maxDelta)
	if err != nil {
		log.Fatal(err)
	}

	sizes2 := make([]int, len(thresholds))
	for i, d := range thresholds {
		sizes2[i] = s2.CountAt(d)
	}
	b, err := bounds.Incremental(bounds.Input{S1: eval.MeasuredCurve(s1, truth, thresholds),
		Sizes2: sizes2, HOverride: truth.Size()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("evaluating the new system two ways (correct counts at each δ):")
	fmt.Println("delta   pooled-correct  true-correct  bound-interval-P      pooled-P  true-P")
	for i, d := range thresholds {
		answers := s2.At(d)
		pooledCorrect := pooledTruth.CountCorrect(answers)
		trueCorrect := truth.CountCorrect(answers)
		pp, _ := eval.PR(answers, pooledTruth)
		tp, _ := eval.PR(answers, truth)
		fmt.Printf("%.3f   %14d  %12d  [%.4f, %.4f]      %.4f    %.4f\n",
			d, pooledCorrect, trueCorrect, b[i].WorstP, b[i].BestP, pp, tp)
	}
	fmt.Println("\npooled evaluation undercounts whenever the new system retrieves correct")
	fmt.Println("answers outside the old pool; the bounds interval always contains the truth")
}
