// Pooling comparison: why bounds instead of pooled judgments?
//
// Section 1 of the paper surveys the text-retrieval answer to costly
// evaluation: TREC-style pooling — judge only the union of every
// participating system's top-100. Pooling works when the pool covers
// (nearly) all correct answers; for a NEW system whose correct answers
// fall outside the old pool, pooled evaluation silently undercounts.
//
// This example drives every system through one match.Service: the pool
// is built from the exhaustive baseline and a beam improvement, then a
// second improvement (cluster-restricted search) is evaluated two ways:
//
//  1. against pooled judgments (what a pooling-based benchmark would
//     report), and
//  2. with the bounds the service attaches to the request (no
//     judgments at all).
//
// The pooled numbers are point estimates that may drift below truth;
// the bounds are intervals that always contain it.
//
// Run with: go run ./examples/pooling_comparison
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/synth"
	"repro/match"
)

func main() {
	scenario, err := synth.Generate(synth.PersonalLibrary(), synth.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	truth := eval.NewTruth(scenario.TruthKeys())
	thresholds := eval.Thresholds(0, 0.45, 9)
	maxDelta := thresholds[len(thresholds)-1]

	svc, err := match.NewService(scenario.Repo,
		match.WithThresholds(thresholds),
		match.WithTruth(truth),
		match.WithIndexConfig(clustered.IndexConfig{Seed: 3}),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	s1, _, err := svc.Baseline(ctx, scenario.Personal)
	if err != nil {
		log.Fatal(err)
	}
	pooledRes, err := svc.Match(ctx, match.Request{
		Personal: scenario.Personal, Delta: maxDelta, Matcher: "beam:8",
	})
	if err != nil {
		log.Fatal(err)
	}

	// The pool: top-50 of the systems that existed when the benchmark
	// was built (S1 and the beam system).
	pool := eval.Pool([]*matching.AnswerSet{s1, pooledRes.Set}, 50)
	pooledTruth := eval.PooledTruth(truth, pool)
	fmt.Printf("full truth |H| = %d; pooled judgments cover %d of them\n\n",
		truth.Size(), pooledTruth.Size())

	// The NEW system being evaluated: cluster-restricted search, which
	// retrieves correct answers the pool never saw. The service
	// attaches its guaranteed bounds to the same request.
	index, err := svc.Index()
	if err != nil {
		log.Fatal(err)
	}
	newRes, err := svc.Match(ctx, match.Request{
		Personal: scenario.Personal,
		Delta:    maxDelta,
		Matcher:  fmt.Sprintf("clustered:%d", index.K()/5+1),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("evaluating the new system two ways (correct counts at each δ):")
	fmt.Println("delta   pooled-correct  true-correct  bound-interval-P      pooled-P  true-P")
	for i, d := range thresholds {
		answers := newRes.Set.At(d)
		pooledCorrect := pooledTruth.CountCorrect(answers)
		trueCorrect := truth.CountCorrect(answers)
		pp, _ := eval.PR(answers, pooledTruth)
		tp, _ := eval.PR(answers, truth)
		b := newRes.Bounds[i]
		fmt.Printf("%.3f   %14d  %12d  [%.4f, %.4f]      %.4f    %.4f\n",
			d, pooledCorrect, trueCorrect, b.WorstP, b.BestP, pp, tp)
	}
	fmt.Println("\npooled evaluation undercounts whenever the new system retrieves correct")
	fmt.Println("answers outside the old pool; the bounds interval always contains the truth")
}
