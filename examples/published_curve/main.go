// Published curve: bounds from literature numbers only (Section 4.1).
//
// Suppose an original system S1 is NOT available — only its published
// 11-point interpolated P/R curve. You rebuild S1 from its published
// objective function (the ranking is identical, so effectiveness
// carries over), run it and your improvement on your own large
// collection, and want effectiveness bounds for the improvement.
//
// The missing link is |H|: an interpolated curve has no threshold
// anchors. This example reconstructs measured curves for several |H|
// guesses and shows the bounds are nearly insensitive to the guess —
// the paper's suspicion ("a rough estimate suffices").
//
// Run with: go run ./examples/published_curve
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/eval"
)

func main() {
	// The published 11-point curve (precision at recall 0, 0.1, … 1.0)
	// of a hypothetical schema matching paper.
	published := eval.Interpolated{
		0.95, 0.92, 0.88, 0.82, 0.74, 0.64, 0.52, 0.38, 0.24, 0.12, 0.04,
	}
	fmt.Println("published 11-point interpolated curve:")
	for l := 0; l <= 10; l++ {
		fmt.Printf("  R=%.1f → P=%.2f\n", float64(l)/10, published.At(l))
	}

	// Your improvement's measured answer-size ratio per increment on
	// the large collection (a smoothly declining S2-one-like system).
	ratios := []float64{1, 1, 0.98, 0.95, 0.92, 0.88, 0.83, 0.76, 0.68, 0.58, 0.45}

	fmt.Println("\nworst-case precision guarantees for three |H| guesses:")
	fmt.Println("recall-level  |H|=1000  |H|=15000  |H|=200000")
	type row struct{ vals [3]float64 }
	var rows [11]row
	for gi, hGuess := range []int{1000, 15000, 200000} {
		curve, err := bounds.FromInterpolated(published, hGuess)
		if err != nil {
			log.Fatal(err)
		}
		// Apply the measured per-increment ratios to the reconstructed
		// answer counts.
		sizes2 := make([]int, len(curve))
		prev1, prev2 := 0, 0.0
		for i, pt := range curve {
			prev2 += ratios[i] * float64(pt.Answers-prev1)
			sizes2[i] = int(prev2)
			prev1 = pt.Answers
		}
		b, err := bounds.Incremental(bounds.Input{S1: curve, Sizes2: sizes2, HOverride: hGuess})
		if err != nil {
			log.Fatal(err)
		}
		for i := range b {
			rows[i].vals[gi] = b[i].WorstP
		}
	}
	for l := 0; l <= 10; l++ {
		fmt.Printf("    %.1f       %8.4f  %9.4f  %10.4f\n",
			float64(l)/10, rows[l].vals[0], rows[l].vals[1], rows[l].vals[2])
	}
	fmt.Println("\nthe guarantee barely moves across a 200x range of |H| guesses —")
	fmt.Println("publishing sizes, not judgments, is enough (Section 4.1)")
}
