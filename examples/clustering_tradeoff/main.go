// Clustering trade-off: the use case that motivated the paper.
//
// The authors' clustering technique speeds up XML schema matching by
// searching only the most promising clusters — but how much
// effectiveness does each setting sacrifice? Validating every setting
// with human judges is exactly the cost the paper's technique removes:
// here we sweep the "clusters searched per personal element" parameter
// and, for each setting, report measured speedup, answer retention and
// the guaranteed worst-case precision/recall at a top-interest
// threshold — all computed without ground truth ("quick evaluation of
// many different parameter settings", Section 1).
//
// Run with: go run ./examples/clustering_tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/synth"
)

func main() {
	scenario, err := synth.Generate(synth.PersonalContact(), synth.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	scorer := engine.New(nil)
	mcfg := matching.DefaultConfig()
	mcfg.Scorer = scorer
	problem, err := matching.NewProblem(scenario.Personal, scenario.Repo, mcfg)
	if err != nil {
		log.Fatal(err)
	}
	thresholds := eval.Thresholds(0, 0.45, 9)
	maxDelta := thresholds[len(thresholds)-1]
	// The threshold whose guarantees we report: the "top-N region" the
	// paper says matters most.
	const reportIdx = 4

	start := time.Now()
	s1, err := matching.Exhaustive{}.Match(problem, maxDelta)
	if err != nil {
		log.Fatal(err)
	}
	exhaustiveTime := time.Since(start)
	truth := eval.NewTruth(scenario.TruthKeys())
	s1Curve := eval.MeasuredCurve(s1, truth, thresholds)
	fmt.Printf("exhaustive: %d answers in %v\n", s1.Len(), exhaustiveTime.Round(time.Microsecond))
	fmt.Printf("reporting guarantees at δ = %.2f (S1: P=%.3f R=%.3f)\n\n",
		thresholds[reportIdx], s1Curve[reportIdx].Precision, s1Curve[reportIdx].Recall)

	index, err := clustered.BuildIndex(scenario.Repo, clustered.IndexConfig{Seed: 7, Scorer: scorer})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d clusters over %d distinct names (silhouette %.3f)\n\n",
		index.K(), index.DistinctNames(), index.Silhouette())

	fmt.Println("top  speedup  retained  guaranteedP  guaranteedR  (worst case at report δ)")
	for _, top := range []int{1, 2, 3, 5, 8, 12, 20} {
		if top > index.K() {
			break
		}
		sys, err := clustered.New(index, top, scorer)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s2, err := sys.Match(problem, maxDelta)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		sizes2 := make([]int, len(thresholds))
		for i, d := range thresholds {
			sizes2[i] = s2.CountAt(d)
		}
		b, err := bounds.Incremental(bounds.Input{S1: s1Curve, Sizes2: sizes2, HOverride: truth.Size()})
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(exhaustiveTime) / float64(elapsed)
		retained := 0.0
		if s1.Len() > 0 {
			retained = float64(s2.Len()) / float64(s1.Len())
		}
		fmt.Printf("%3d  %6.1fx  %7.1f%%  %11.4f  %11.4f\n",
			top, speedup, retained*100, b[reportIdx].WorstP, b[reportIdx].WorstR)
	}
	fmt.Println("\nreading: pick the smallest 'top' whose worst-case guarantee is acceptable;")
	fmt.Println("no human evaluation was needed for any row")
}
