// Clustering trade-off: the use case that motivated the paper.
//
// The authors' clustering technique speeds up XML schema matching by
// searching only the most promising clusters — but how much
// effectiveness does each setting sacrifice? Validating every setting
// with human judges is exactly the cost the paper's technique removes:
// here we sweep the "clusters searched per personal element" registry
// spec ("clustered:1" … "clustered:20") against one match.Service and,
// for each setting, report measured speedup, answer retention and the
// guaranteed worst-case precision/recall at a top-interest threshold —
// all straight from Result.Stats and Result.Bounds, no ground truth
// consulted ("quick evaluation of many different parameter settings",
// Section 1).
//
// Run with: go run ./examples/clustering_tradeoff
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/synth"
	"repro/match"
)

func main() {
	scenario, err := synth.Generate(synth.PersonalContact(), synth.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	truth := eval.NewTruth(scenario.TruthKeys())
	thresholds := eval.Thresholds(0, 0.45, 9)
	maxDelta := thresholds[len(thresholds)-1]
	// The threshold whose guarantees we report: the "top-N region" the
	// paper says matters most.
	const reportIdx = 4

	// The serial exhaustive system is both the timing reference and
	// the bounds baseline, so one run (the session's cached baseline)
	// serves both.
	svc, err := match.NewService(scenario.Repo,
		match.WithThresholds(thresholds),
		match.WithTruth(truth),
		match.WithBaseline("exhaustive"),
		match.WithIndexConfig(clustered.IndexConfig{Seed: 7}),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Warm the cost tables first so the timed window is pure search.
	if _, err := svc.Problem(scenario.Personal); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	s1, s1Curve, err := svc.Baseline(ctx, scenario.Personal)
	if err != nil {
		log.Fatal(err)
	}
	exhaustiveTime := time.Since(start)
	fmt.Printf("exhaustive: %d answers in %v\n", s1.Len(),
		exhaustiveTime.Round(time.Microsecond))
	fmt.Printf("reporting guarantees at δ = %.2f (S1: P=%.3f R=%.3f)\n\n",
		thresholds[reportIdx], s1Curve[reportIdx].Precision, s1Curve[reportIdx].Recall)

	index, err := svc.Index()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d clusters over %d distinct names (silhouette %.3f)\n\n",
		index.K(), index.DistinctNames(), index.Silhouette())

	fmt.Println("top  speedup  retained  guaranteedP  guaranteedR  (worst case at report δ)")
	for _, top := range []int{1, 2, 3, 5, 8, 12, 20} {
		if top > index.K() {
			break
		}
		res, err := svc.Match(ctx, match.Request{
			Personal: scenario.Personal,
			Delta:    maxDelta,
			Matcher:  fmt.Sprintf("clustered:%d", top),
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(exhaustiveTime) / float64(res.Stats.Wall)
		retained := 0.0
		if s1.Len() > 0 {
			retained = float64(res.Set.Len()) / float64(s1.Len())
		}
		fmt.Printf("%3d  %6.1fx  %7.1f%%  %11.4f  %11.4f\n",
			top, speedup, retained*100, res.Bounds[reportIdx].WorstP, res.Bounds[reportIdx].WorstR)
	}
	fmt.Println("\nreading: pick the smallest 'top' whose worst-case guarantee is acceptable;")
	fmt.Println("no human evaluation was needed for any row")
}
