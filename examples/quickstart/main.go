// Quickstart: the end-to-end effectiveness-bounds workflow in one
// page, through the public match service façade.
//
//  1. Generate a synthetic schema repository with planted ground truth.
//  2. Build one match.Service over the repository — it owns the shared
//     scoring engine, the cluster index, and the baseline answers.
//  3. Ask for a non-exhaustive match ("clustered" spec): the service
//     runs the cluster-restricted search AND attaches guaranteed
//     effectiveness bounds, computed from the baseline's curve and the
//     answer-set sizes alone.
//  4. Because this corpus is synthetic we DO know the truth, so verify
//     the guarantee: S2's true P/R lies inside the bounds everywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/synth"
	"repro/match"
)

func main() {
	// 1. A personal schema (book/{title,author,price}) matched against
	//    120 synthetic repository schemas, half containing a perturbed
	//    copy whose correspondence is recorded as ground truth H.
	personal := synth.PersonalLibrary()
	scenario, err := synth.Generate(personal, synth.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	truth := eval.NewTruth(scenario.TruthKeys())
	fmt.Printf("repository: %d schemas, %d elements, |H| = %d\n",
		scenario.Repo.Len(), scenario.Repo.NumElements(), scenario.H())

	// 2. One service over the repository. WithTruth enables bounds:
	//    the service measures the exhaustive baseline's curve itself.
	thresholds := eval.Thresholds(0, 0.45, 9)
	svc, err := match.NewService(scenario.Repo,
		match.WithThresholds(thresholds),
		match.WithTruth(truth),
		match.WithIndexConfig(clustered.IndexConfig{Seed: 7}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A non-exhaustive request: search only the clusters most
	//    similar to each personal element. One call runs the matcher
	//    and attaches the guaranteed bounds.
	maxDelta := thresholds[len(thresholds)-1]
	res, err := svc.Match(context.Background(), match.Request{
		Personal: personal,
		Delta:    maxDelta,
		Matcher:  "clustered",
	})
	if err != nil {
		log.Fatal(err)
	}
	s1, _, err := svc.Baseline(context.Background(), personal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S2 (%s) found %d of %d mappings in %s (%d candidates examined)\n\n",
		res.Stats.Matcher, res.Set.Len(), s1.Len(), res.Stats.Wall.Round(0),
		res.Stats.Search.Candidates)

	// 4. Verify the guarantee against the (normally unknown) truth.
	s2Curve := eval.MeasuredCurve(res.Set, truth, thresholds)
	fmt.Println("delta   worstP  trueP   bestP  |  worstR  trueR   bestR")
	for i, b := range res.Bounds {
		tp, tr := s2Curve[i].Precision, s2Curve[i].Recall
		mark := " "
		if !b.Contains(tp, tr) {
			mark = " VIOLATION"
		}
		fmt.Printf("%.3f   %.4f  %.4f  %.4f |  %.4f  %.4f  %.4f%s\n",
			b.Delta, b.WorstP, tp, b.BestP, b.WorstR, tr, b.BestR, mark)
	}
	fmt.Println("\nthe true P/R always lies inside [worst, best] — the paper's guarantee")
}
