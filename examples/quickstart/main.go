// Quickstart: the end-to-end effectiveness-bounds workflow in one page.
//
//  1. Generate a synthetic schema repository with planted ground truth.
//  2. Run the exhaustive matcher S1 and measure its P/R curve.
//  3. Run a non-exhaustive improvement S2 (cluster-restricted search).
//  4. Compute guaranteed effectiveness bounds for S2 WITHOUT using the
//     ground truth — only from S1's curve and the answer-set sizes.
//  5. Because this corpus is synthetic we DO know the truth, so verify
//     the guarantee: S2's true P/R lies inside the bounds everywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/matchers/clustered"
	"repro/internal/matching"
	"repro/internal/synth"
)

func main() {
	// 1. A personal schema (book/{title,author,price}) matched against
	//    120 synthetic repository schemas, half containing a perturbed
	//    copy whose correspondence is recorded as ground truth H.
	personal := synth.PersonalLibrary()
	scenario, err := synth.Generate(personal, synth.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d schemas, %d elements, |H| = %d\n",
		scenario.Repo.Len(), scenario.Repo.NumElements(), scenario.H())

	// 2. The exhaustive system S1. One memoized scoring engine feeds
	//    the problem's cost tables, the cluster index, and the online
	//    cluster selection below.
	scorer := engine.New(nil)
	mcfg := matching.DefaultConfig()
	mcfg.Scorer = scorer
	problem, err := matching.NewProblem(personal, scenario.Repo, mcfg)
	if err != nil {
		log.Fatal(err)
	}
	thresholds := eval.Thresholds(0, 0.45, 9)
	maxDelta := thresholds[len(thresholds)-1]
	s1, err := matching.Exhaustive{}.Match(problem, maxDelta)
	if err != nil {
		log.Fatal(err)
	}
	truth := eval.NewTruth(scenario.TruthKeys())
	s1Curve := eval.MeasuredCurve(s1, truth, thresholds)
	fmt.Printf("S1 found %d mappings at δ ≤ %.2f\n\n", s1.Len(), maxDelta)

	// 3. A non-exhaustive improvement: search only the clusters most
	//    similar to each personal element.
	index, err := clustered.BuildIndex(scenario.Repo, clustered.IndexConfig{Seed: 7, Scorer: scorer})
	if err != nil {
		log.Fatal(err)
	}
	s2sys, err := clustered.New(index, index.K()/6+1, scorer)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := s2sys.Match(problem, maxDelta)
	if err != nil {
		log.Fatal(err)
	}
	if err := s2.SubsetOf(s1); err != nil {
		log.Fatal(err) // same objective function ⇒ never happens
	}
	fmt.Printf("S2 (%s) found %d of %d mappings\n\n", s2sys.Name(), s2.Len(), s1.Len())

	// 4. Bounds from sizes alone (this is the paper's contribution: no
	//    human judgments needed on the large collection).
	sizes2 := make([]int, len(thresholds))
	for i, d := range thresholds {
		sizes2[i] = s2.CountAt(d)
	}
	bnds, err := bounds.Incremental(bounds.Input{
		S1:        s1Curve,
		Sizes2:    sizes2,
		HOverride: truth.Size(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Verify the guarantee against the (normally unknown) truth.
	s2Curve := eval.MeasuredCurve(s2, truth, thresholds)
	fmt.Println("delta   worstP  trueP   bestP  |  worstR  trueR   bestR")
	for i, b := range bnds {
		tp, tr := s2Curve[i].Precision, s2Curve[i].Recall
		ok := tp >= b.WorstP-1e-9 && tp <= b.BestP+1e-9 &&
			tr >= b.WorstR-1e-9 && tr <= b.BestR+1e-9
		mark := " "
		if !ok {
			mark = " VIOLATION"
		}
		fmt.Printf("%.3f   %.4f  %.4f  %.4f |  %.4f  %.4f  %.4f%s\n",
			b.Delta, b.WorstP, tp, b.BestP, b.WorstR, tr, b.BestR, mark)
	}
	fmt.Println("\nthe true P/R always lies inside [worst, best] — the paper's guarantee")
}
