// Durable-store integration. The match layer does not know how bytes
// reach disk — it talks to a TenantStore (internal/store.Tenant
// implements it) and guarantees ordering: the diff of an Update is
// appended only after the in-memory swap succeeded, so the store never
// records a transition the service refused.

package match

import (
	"fmt"

	"repro/internal/matchers/clustered"
	"repro/internal/xmlschema"
)

// TenantStore is the durability contract a Service appends through.
// Implementations must be safe for concurrent use and idempotent under
// replayed transitions: AppendDiff with a diff the log already covers
// (diff.To at or behind the durable tail) must be a no-op, and a diff
// that does not chain onto the tail must be healed (e.g. by persisting
// a full base from next) rather than rejected — the serving layer
// legitimately replays transitions during residency fast-forwards.
// internal/store.Tenant is the canonical implementation.
type TenantStore interface {
	// SaveBase persists repo as a full snapshot at version, replacing
	// any previous durable state of the tenant.
	SaveBase(version uint64, repo *xmlschema.Repository) error
	// AppendDiff makes the transition to snapshot next (described by
	// diff, with diff.To == next.Version()) durable.
	AppendDiff(next *xmlschema.Snapshot, diff xmlschema.Diff) error
}

// WithStore attaches a durable store to the service: every successful
// Update appends its diff after the in-memory swap. An append failure
// is returned from Update wrapped as a durability error — the swap is
// NOT rolled back (requests already see the new snapshot), the caller
// decides whether to retry, heal, or alert. See the package
// documentation's durability section.
func WithStore(ts TenantStore) Option { return func(c *config) { c.store = ts } }

// WithRestoredIndex seeds the service's first serving generation with
// an already-built cluster index (typically clustered.Restore over
// persisted state), so the first clustered request serves warm instead
// of re-clustering. The index must be built over the same repository
// the service snapshot wraps; NewServiceFromSnapshot fails otherwise.
func WithRestoredIndex(ix *clustered.Index) Option {
	return func(c *config) { c.restoredIndex = ix }
}

// NewServiceFromSnapshot builds a service over an existing repository
// snapshot — the recovery path: a snapshot replayed from a durable log
// keeps its persisted Version() instead of restarting at 1, so diffs
// appended by later Updates chain onto the log's tail. Options are
// those of NewService.
func NewServiceFromSnapshot(snap *xmlschema.Snapshot, opts ...Option) (*Service, error) {
	if snap == nil {
		return nil, fmt.Errorf("match: nil snapshot")
	}
	return newService(func() (*xmlschema.Snapshot, error) { return snap, nil }, opts...)
}

// IndexState exports the current generation's cluster-index state when
// the index is already built, without ever triggering a build — the
// compaction path persists a warm-start hint only if one exists.
func (s *Service) IndexState() (*clustered.State, bool) {
	ix, err, done := s.currentState().builtIndex()
	if !done || err != nil || ix == nil {
		return nil, false
	}
	return ix.State(), true
}

// WithServerStore attaches a per-tenant durable store provider to the
// server: every tenant added with AddTenant gets WithStore(provider(
// name)) appended to its service options, plus an eager SaveBase of
// its registration repository, so a tenant is durable from the moment
// it is registered — not from its first request. A nil provider result
// leaves that tenant un-persisted. Tenants registered through Register
// with a custom factory are unaffected (the factory attaches its own
// store; the recovery path does exactly that).
func WithServerStore(provider func(tenant string) TenantStore) ServerOption {
	return func(c *serverConfig) { c.storeFor = provider }
}
