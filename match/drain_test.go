package match

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xmlschema"
)

// TestServerDrainRaces races Drain against live Match, MatchBatch, and
// UpdateTenant traffic: every request admitted before (or during) the
// drain must complete successfully — the drain itself never fails
// admitted work — rejections must all be the typed admission errors,
// the drained server must report zero in-flight groups, and no
// goroutine may outlive it.
func TestServerDrainRaces(t *testing.T) {
	before := runtime.NumGoroutine()
	fleet := testTenants(t, 11, 3, 2, 10)
	srv := NewServer(WithWorkers(4), WithQueueDepth(16))
	addAll(t, srv, fleet)

	ctx := context.Background()
	var (
		wg         sync.WaitGroup
		unexpected atomic.Int64
		succeeded  atomic.Int64
		firstErr   atomic.Value
	)
	record := func(err error) (stop bool) {
		switch {
		case err == nil:
			succeeded.Add(1)
		case errors.Is(err, ErrServerClosed):
			return true
		case errors.Is(err, ErrOverloaded):
			// Admission rejection: the request was never admitted, so
			// the drain guarantee does not cover it.
		default:
			unexpected.Add(1)
			firstErr.CompareAndSwap(nil, err)
		}
		return false
	}

	// Open-loop single matchers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				tn := fleet[(g+i)%len(fleet)]
				_, err := srv.Match(ctx, tn.Name, Request{
					Personal: tn.Personals()[i%len(tn.Personals())],
					Delta:    0.3,
					Matcher:  "beam:8",
				})
				if record(err) {
					return
				}
			}
		}(g)
	}
	// Closed-loop batchers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				var reqs []BatchRequest
				for _, tn := range fleet {
					reqs = append(reqs, BatchRequest{
						Tenant: tn.Name,
						Request: Request{
							Personal: tn.Personals()[(g+i)%len(tn.Personals())],
							Delta:    0.3,
							Matcher:  "topk:0.05",
						},
					})
				}
				closed := false
				for _, r := range srv.MatchBatch(ctx, reqs) {
					if record(r.Err) {
						closed = true
					}
				}
				if closed {
					return
				}
			}
		}(g)
	}
	// Live updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			tn := fleet[i%len(fleet)]
			extra, err := xmlschema.NewSchema(fmt.Sprintf("drain-extra-%d", i), xmlschema.NewElement("root"))
			if err != nil {
				t.Error(err)
				return
			}
			err = srv.UpdateTenant(tn.Name, func(s *xmlschema.Snapshot) (*xmlschema.Snapshot, error) {
				return s.Add(extra)
			})
			if errors.Is(err, ErrServerClosed) {
				return
			}
			if err != nil {
				t.Errorf("UpdateTenant: %v", err)
				return
			}
		}
	}()

	// Let the traffic establish itself — at least one request must have
	// completed, or the drain races nothing (a fixed sleep flakes on a
	// loaded machine where the first lazy service build exceeds it) —
	// then drain under it.
	establish := time.Now().Add(10 * time.Second)
	for succeeded.Load() == 0 {
		if time.Now().After(establish) {
			t.Fatal("no request completed within 10s — traffic never established")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()

	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d admitted requests failed during drain (first: %v)", n, firstErr.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("no request completed before the drain — the race never happened")
	}
	st := srv.Stats()
	if !st.Draining {
		t.Fatal("drained server does not report Draining")
	}
	if st.InFlight != 0 {
		t.Fatalf("drained server reports %d in-flight groups", st.InFlight)
	}
	if st.Accepted != st.Completed {
		t.Fatalf("accepted %d != completed %d after drain", st.Accepted, st.Completed)
	}
	if _, err := srv.Match(ctx, fleet[0].Name, Request{Personal: fleet[0].Personals()[0], Delta: 0.3}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-drain Match: got %v, want ErrServerClosed", err)
	}
	// Second drain of a closed server is a no-op.
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	waitGoroutines(t, before)
}

// TestServerDrainDeadline proves the timeout contract: a Drain whose
// ctx ends with work still in flight returns ctx.Err() without failing
// that work — the in-flight request still completes successfully — and
// admission stays off.
func TestServerDrainDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	fleet := testTenants(t, 12, 1, 1, 8)
	tn := fleet[0]
	srv := NewServer(WithWorkers(1), WithQueueDepth(4))

	// A factory blocked on a channel pins the request in flight for as
	// long as the test needs.
	gate := make(chan struct{})
	var built sync.Once
	if err := srv.Register(tn.Name, func() (*Service, error) {
		built.Do(func() { <-gate })
		return NewService(tn.Repo())
	}); err != nil {
		t.Fatal(err)
	}

	type res struct {
		r   *Result
		err error
	}
	done := make(chan res, 1)
	go func() {
		r, err := srv.Match(context.Background(), tn.Name, Request{Personal: tn.Personals()[0], Delta: 0.3})
		done <- res{r, err}
	}()
	// Wait for the request to be admitted (in flight), then drain with
	// an already-expired ctx.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with expired ctx: got %v, want context.Canceled", err)
	}
	// Admission is off even though the drain timed out.
	if _, err := srv.Match(context.Background(), tn.Name, Request{Personal: tn.Personals()[0], Delta: 0.3}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Match during drain: got %v, want ErrServerClosed", err)
	}
	// Unblock the build: the admitted request must still succeed.
	close(gate)
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during timed-out drain: %v", r.err)
	}
	if r.r == nil || r.r.Set == nil {
		t.Fatal("in-flight request returned no result")
	}
	// A second Drain now completes and closes the server.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
	waitGoroutines(t, before)
}
